package repro

import (
	"os"
	"strconv"
	"testing"

	"repro/internal/backfill"
	"repro/internal/cluster"
	"repro/internal/experiments"
	"repro/internal/lublin"
	"repro/internal/sched"
	"repro/internal/shard"
	"repro/internal/sim"
	"repro/internal/trace"
)

// hugeJobs resolves the huge-scenario trace length: one million jobs unless
// RLBF_HUGE_JOBS overrides it (useful for locally iterating on the scenario
// without the full generation and replay cost).
func hugeJobs(tb testing.TB) int {
	tb.Helper()
	n := 1_000_000
	if s := os.Getenv("RLBF_HUGE_JOBS"); s != "" {
		v, err := strconv.Atoi(s)
		if err != nil || v <= 0 {
			tb.Fatalf("bad RLBF_HUGE_JOBS %q", s)
		}
		n = v
	}
	return n
}

// hugeTrace generates the huge-scale scenario: a million-job composition of
// Lublin partition streams on a 4096-node machine at 0.8 utilization.
func hugeTrace(tb testing.TB) *trace.Trace {
	tb.Helper()
	return experiments.HugeTrace(lublin.Huge(0, 0, 0), hugeJobs(tb), 1)
}

// BenchmarkSimulatorHuge replays the huge-scale scenario under conservative
// backfilling — the profile-heaviest heuristic, whose reservation skyline
// grows with the backlog and therefore leans hardest on the indexed
// FindStart. "seq" is the single-engine replay with the index at its default
// threshold; "seq-walk" pins the same replay to the plain monotonic walk
// (cluster.DefaultIndexThreshold = -1), so the pair records the end-to-end
// win the block index buys on an organically deep backlog; "sharded-auto"
// replays 64K-job windows with drain-aware auto-sized flanks (Overlap 0)
// stitched back in trace order. CI runs this at -benchtime 1x as the
// standing million-job regression record; set RLBF_HUGE_JOBS to iterate
// locally at smaller scales.
func BenchmarkSimulatorHuge(b *testing.B) {
	tr := hugeTrace(b)
	mk := func() backfill.Backfiller { return backfill.NewConservative(backfill.ActualRuntime{}) }
	seq := func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, err := sim.Run(tr, sim.Config{Policy: sched.FCFS{}, Backfiller: mk()})
			if err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				b.Logf("%d jobs, mean bsld %.3f", tr.Len(), res.Summary.MeanBSLD)
			}
		}
	}
	b.Run("conservative-seq", seq)
	b.Run("conservative-seq-walk", func(b *testing.B) {
		defer func(old int) { cluster.DefaultIndexThreshold = old }(cluster.DefaultIndexThreshold)
		cluster.DefaultIndexThreshold = -1
		seq(b)
	})
	b.Run("conservative-sharded-auto", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := shard.ReplayWith(tr, sched.FCFS{}, mk,
				shard.Config{Window: 1 << 16, MinJobs: 1}, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// TestHugeShardStitch is the huge-scale stitching differential: the
// auto-sized sharded replay of the million-job scenario must be
// byte-identical to the sequential one, record for record. The full run
// costs several sequential replays' worth of CPU, so it is opt-in: the CI
// bench job runs it with RLBF_HUGE=1 (and the artifact records the log);
// plain `go test` skips it.
func TestHugeShardStitch(t *testing.T) {
	if os.Getenv("RLBF_HUGE") == "" {
		t.Skip("set RLBF_HUGE=1 (and optionally RLBF_HUGE_JOBS) to run the million-job stitch differential")
	}
	tr := hugeTrace(t)
	mk := func() backfill.Backfiller { return backfill.NewConservative(backfill.ActualRuntime{}) }
	seq, err := shard.ReplayWith(tr, sched.FCFS{}, mk, shard.Config{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	sh, err := shard.ReplayWith(tr, sched.FCFS{}, mk, shard.Config{Window: 1 << 16, MinJobs: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq.Records) != len(sh.Records) {
		t.Fatalf("record counts differ: sequential %d, sharded %d", len(seq.Records), len(sh.Records))
	}
	bad := 0
	for i := range seq.Records {
		if seq.Records[i] != sh.Records[i] {
			bad++
		}
	}
	if bad > 0 {
		t.Fatalf("%d of %d records differ between sequential and auto-sized sharded replay",
			bad, len(seq.Records))
	}
	if seq.Summary != sh.Summary {
		t.Fatalf("summaries differ: sequential %+v, sharded %+v", seq.Summary, sh.Summary)
	}
	t.Logf("huge stitch: %d records byte-identical, mean bsld %.3f", len(seq.Records), seq.Summary.MeanBSLD)
}
