// Command traceinfo prints Table 2-style characteristics for workloads:
// built-in names or SWF files.
//
// Usage:
//
//	traceinfo sdsc-sp2 hpc2n lublin-1 lublin-2
//	traceinfo -n 1000000 huge
//	traceinfo /data/HPC2N-2002-2.2-cln.swf
//
// Built-in workloads without enrichment stream through a statistics
// accumulator job-by-job, so even million-job summaries run in constant
// memory.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
	"repro/internal/trace"
)

func main() {
	n := flag.Int("n", 10000, "jobs to generate for built-in workloads (SWF files use all jobs)")
	seed := flag.Uint64("seed", 1, "generator seed for built-in workloads")
	memDist := flag.String("mem-dist", trace.MemDistNone, "enrich with per-job memory demands before reporting: none, prop or uniform")
	memPerProc := flag.Int("mem-per-proc", 0, "machine memory per processor in KB when enriching")
	tiers := flag.Int("priority-tiers", 0, "enrich with geometric priority tiers before reporting (0 or 1 = none)")
	flag.Parse()

	args := flag.Args()
	if len(args) == 0 {
		args = []string{"sdsc-sp2", "hpc2n", "lublin-1", "lublin-2"}
	}
	exit := 0
	for _, arg := range args {
		spec := trace.EnrichSpec{MemDist: *memDist, MemPerProc: *memPerProc, PriorityTiers: *tiers, Seed: *seed}
		// Summary fast path: a plain built-in workload streams job-by-job
		// through the accumulator — no job slice is ever materialized, so
		// inspecting a million-job workload runs in constant memory.
		if !spec.Enabled() {
			if ts, ok := experiments.ResolveStream(arg, *n, *seed); ok {
				acc := trace.NewStatsAccum(ts.Name, ts.Procs, 0)
				if err := ts.Run(func(j *trace.Job) error { acc.Add(j); return nil }); err != nil {
					fmt.Fprintf(os.Stderr, "traceinfo: %v\n", err)
					exit = 1
					continue
				}
				printStats(acc.Stats())
				continue
			}
		}
		// SWF files use all their jobs; -n only caps built-in generators.
		nArg := *n
		if !experiments.IsBuiltin(arg) {
			nArg = 0
		}
		tr, err := experiments.ResolveTrace(arg, nArg, *seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "traceinfo: %v\n", err)
			exit = 1
			continue
		}
		if spec.Enabled() {
			if tr, err = trace.Enrich(tr, spec); err != nil {
				fmt.Fprintf(os.Stderr, "traceinfo: %v\n", err)
				exit = 1
				continue
			}
		}
		printStats(trace.ComputeStats(tr))
	}
	os.Exit(exit)
}

func printStats(st trace.Stats) {
	fmt.Println(st.String())
	if pt := st.PriorityTable(); pt != "" {
		fmt.Printf("%-10s tier distribution: %s\n", "", pt)
	}
}
