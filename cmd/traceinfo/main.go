// Command traceinfo prints Table 2-style characteristics for workloads:
// built-in names or SWF files.
//
// Usage:
//
//	traceinfo sdsc-sp2 hpc2n lublin-1 lublin-2
//	traceinfo /data/HPC2N-2002-2.2-cln.swf
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
	"repro/internal/trace"
)

func main() {
	n := flag.Int("n", 10000, "jobs to generate for built-in workloads (SWF files use all jobs)")
	seed := flag.Uint64("seed", 1, "generator seed for built-in workloads")
	memDist := flag.String("mem-dist", trace.MemDistNone, "enrich with per-job memory demands before reporting: none, prop or uniform")
	memPerProc := flag.Int("mem-per-proc", 0, "machine memory per processor in KB when enriching")
	tiers := flag.Int("priority-tiers", 0, "enrich with geometric priority tiers before reporting (0 or 1 = none)")
	flag.Parse()

	args := flag.Args()
	if len(args) == 0 {
		args = []string{"sdsc-sp2", "hpc2n", "lublin-1", "lublin-2"}
	}
	exit := 0
	for _, arg := range args {
		tr, err := experiments.ResolveTrace(arg, *n, *seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "traceinfo: %v\n", err)
			exit = 1
			continue
		}
		spec := trace.EnrichSpec{MemDist: *memDist, MemPerProc: *memPerProc, PriorityTiers: *tiers, Seed: *seed}
		if spec.Enabled() {
			if tr, err = trace.Enrich(tr, spec); err != nil {
				fmt.Fprintf(os.Stderr, "traceinfo: %v\n", err)
				exit = 1
				continue
			}
		}
		st := trace.ComputeStats(tr)
		fmt.Println(st.String())
		if pt := st.PriorityTable(); pt != "" {
			fmt.Printf("%-10s tier distribution: %s\n", "", pt)
		}
	}
	os.Exit(exit)
}
