// Command traceinfo prints Table 2-style characteristics for workloads:
// built-in names or SWF files.
//
// Usage:
//
//	traceinfo sdsc-sp2 hpc2n lublin-1 lublin-2
//	traceinfo /data/HPC2N-2002-2.2-cln.swf
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
	"repro/internal/trace"
)

func main() {
	n := flag.Int("n", 10000, "jobs to generate for built-in workloads (SWF files use all jobs)")
	seed := flag.Uint64("seed", 1, "generator seed for built-in workloads")
	flag.Parse()

	args := flag.Args()
	if len(args) == 0 {
		args = []string{"sdsc-sp2", "hpc2n", "lublin-1", "lublin-2"}
	}
	exit := 0
	for _, arg := range args {
		tr, err := experiments.ResolveTrace(arg, *n, *seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "traceinfo: %v\n", err)
			exit = 1
			continue
		}
		fmt.Println(trace.ComputeStats(tr).String())
	}
	os.Exit(exit)
}
