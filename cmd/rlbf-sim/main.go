// Command rlbf-sim replays a workload through the scheduling simulator with
// a chosen base policy and backfilling strategy, printing the scheduling
// metrics, a utilization sparkline, and (optionally) a per-job CSV.
//
// Usage:
//
//	rlbf-sim -trace sdsc-sp2 -policy SJF -backfill easy
//	rlbf-sim -trace lublin-1 -policy F1 -backfill conservative -csv jobs.csv
//	rlbf-sim -trace hpc2n -policy FCFS -backfill rlbf -model rl.json
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/backfill"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/sched"
	"repro/internal/shard"
	"repro/internal/sim"
	"repro/internal/trace"
)

func main() {
	traceArg := flag.String("trace", "sdsc-sp2", "built-in workload name or SWF file path")
	jobs := flag.Int("jobs", 5000, "jobs to use from the trace")
	seed := flag.Uint64("seed", 1, "generator seed for built-in workloads")
	policyArg := flag.String("policy", "FCFS", "FCFS, SJF, WFP3, F1, F2, F3, F4 or SAF")
	bfArg := flag.String("backfill", "easy", "none, easy, easy-ar, easy-sjf, conservative, slack or rlbf")
	modelArg := flag.String("model", "", "model file for -backfill rlbf")
	noise := flag.Float64("noise", 0, "prediction noise level for easy (+x, e.g. 0.2)")
	csvPath := flag.String("csv", "", "write per-job records to this CSV file")
	shardWindow := flag.Int("shard-window", 0, "jobs per shard window for parallel replay (0 = sequential)")
	shardSeconds := flag.Int64("shard-seconds", 0, "simulated seconds per shard window (wall-clock cuts; takes precedence over -shard-window)")
	shardOverlap := flag.Int("shard-overlap", 0, "warm-up/cool-down jobs per window flank (0 = drain-aware auto-sizing)")
	shardWorkers := flag.Int("shard-workers", 0, "concurrently simulated windows (0 = GOMAXPROCS)")
	memDist := flag.String("mem-dist", trace.MemDistNone, "enrich the trace with per-job memory demands: none, prop or uniform")
	memPerProc := flag.Int("mem-per-proc", 0, "machine memory per processor in KB when enriching")
	tiers := flag.Int("priority-tiers", 0, "enrich the trace with geometric priority tiers (0 or 1 = none)")
	priorities := flag.Bool("priorities", false, "schedule with priority-tier ordering")
	starvationBound := flag.Float64("starvation-bound", 0, "aging bound: a job starves once wait exceeds bound x request (0 = off)")
	flag.Parse()

	policy, err := sched.ByNameExtended(*policyArg)
	if err != nil {
		fatal("%v", err)
	}
	tr, err := experiments.ResolveTrace(*traceArg, *jobs, *seed)
	if err != nil {
		fatal("%v", err)
	}
	spec := trace.EnrichSpec{MemDist: *memDist, MemPerProc: *memPerProc, PriorityTiers: *tiers, Seed: *seed}
	if spec.Enabled() {
		if tr, err = trace.Enrich(tr, spec); err != nil {
			fatal("%v", err)
		}
	}
	scn := sched.Scenario{Priorities: *priorities, StarvationBound: *starvationBound}
	est := experiments.Estimator(tr)
	if *noise > 0 {
		est = backfill.Noisy{Level: *noise, Seed: *seed + 77}
	}

	var bf backfill.Backfiller
	switch strings.ToLower(*bfArg) {
	case "none":
	case "easy":
		bf = &backfill.EASY{Est: est, Scn: scn}
	case "easy-ar":
		bf = &backfill.EASY{Est: backfill.ActualRuntime{}, Scn: scn}
	case "easy-sjf":
		bf = &backfill.EASY{Est: est, Order: backfill.SJFOrder, Scn: scn}
	case "conservative":
		bf = backfill.NewConservative(est)
	case "slack":
		s := backfill.NewSlack(est)
		s.Scn = scn
		bf = s
	case "rlbf":
		if *modelArg == "" {
			fatal("-backfill rlbf needs -model")
		}
		m, err := core.LoadModelFile(*modelArg)
		if err != nil {
			fatal("%v", err)
		}
		agent, err := m.Agent()
		if err != nil {
			fatal("%v", err)
		}
		bf = agent
	default:
		fatal("unknown backfill strategy %q", *bfArg)
	}

	// Sharding only engages for a cloneable (or absent) backfiller and more
	// than one window; otherwise shard.Replay would silently run
	// sequentially, so keep the probe and tell the user why. Wall-clock
	// windows produce a second window exactly when the submit span reaches
	// the width (shard.Config.cutIndices).
	sharded := *shardWindow > 0 && *shardWindow < tr.Len()
	if *shardSeconds > 0 {
		sharded = tr.Len() > 1 && tr.Jobs[tr.Len()-1].Submit-tr.Jobs[0].Submit >= *shardSeconds
	}
	if sharded && bf != nil {
		if _, ok := bf.(backfill.Cloneable); !ok {
			fmt.Fprintf(os.Stderr, "rlbf-sim: sharding ignored: backfiller %s cannot be cloned across windows\n", bf.Name())
			sharded = false
		}
	}
	// Both modes go through shard.Replay — a zero shard.Config is a
	// sequential replay — so the records (and any CSV) come back in trace
	// order either way and the two outputs stay row-for-row comparable. A
	// probe observes the whole engine timeline, which a stitched replay
	// cannot reproduce, so the sparkline exists only in sequential mode.
	var probe *sim.TimelineProbe
	var shardCfg shard.Config
	simCfg := sim.Config{Policy: policy, Scenario: scn, Backfiller: bf}
	if sharded {
		shardCfg = shard.Config{Window: *shardWindow, WindowSeconds: *shardSeconds,
			Overlap: *shardOverlap, MinJobs: 1, Workers: *shardWorkers}
	} else {
		probe = &sim.TimelineProbe{}
		simCfg.Probe = probe // assigned only when non-nil: a typed-nil probe would defeat the engine's nil check
	}
	res, err := shard.Replay(tr, simCfg, shardCfg, nil)
	if err != nil {
		fatal("%v", err)
	}
	bfName := "none"
	if bf != nil {
		bfName = bf.Name()
	}
	fmt.Printf("%s | policy %s | backfill %s\n", trace.ComputeStats(tr), policy.Name(), bfName)
	fmt.Println(res.Summary)
	if probe != nil {
		fmt.Println(probe)
		fmt.Printf("util |%s|\n", probe.Sparkline(72))
	} else {
		if *shardSeconds > 0 {
			fmt.Printf("sharded replay: window %ds of simulated time, overlap %d jobs (timeline probe off)\n", *shardSeconds, *shardOverlap)
		} else {
			fmt.Printf("sharded replay: window %d, overlap %d (timeline probe off)\n", *shardWindow, *shardOverlap)
		}
	}

	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			fatal("%v", err)
		}
		fmt.Fprintln(f, "job,submit,start,end,wait,procs,runtime,request,bsld")
		for _, r := range res.Records {
			fmt.Fprintf(f, "%d,%d,%d,%d,%d,%d,%d,%d,%.3f\n",
				r.Job.ID, r.Job.Submit, r.Start, r.End, r.Wait(), r.Job.Procs,
				r.Job.Runtime, r.Job.Request, r.BoundedSlowdown())
		}
		if err := f.Close(); err != nil {
			fatal("%v", err)
		}
		fmt.Printf("wrote %d records to %s\n", len(res.Records), *csvPath)
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "rlbf-sim: "+format+"\n", args...)
	os.Exit(1)
}
