// Command tracegen generates a synthetic workload (SDSC-SP2/HPC2N surrogate
// or Lublin model) and writes it in Standard Workload Format, so it can be
// inspected or fed to other SWF-consuming tools.
//
// Usage:
//
//	tracegen -workload lublin-1 -n 10000 -seed 7 -o lublin1.swf
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
	"repro/internal/trace"
)

func main() {
	workload := flag.String("workload", "sdsc-sp2", "sdsc-sp2, hpc2n, lublin-1 or lublin-2")
	n := flag.Int("n", 10000, "number of jobs")
	seed := flag.Uint64("seed", 1, "generator seed")
	out := flag.String("o", "", "output SWF path (default stdout)")
	flag.Parse()

	tr, err := experiments.ResolveTrace(*workload, *n, *seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
		os.Exit(1)
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := trace.WriteSWF(w, tr); err != nil {
		fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
		os.Exit(1)
	}
	if *out != "" {
		fmt.Fprintf(os.Stderr, "tracegen: wrote %d jobs to %s\n", tr.Len(), *out)
	}
}
