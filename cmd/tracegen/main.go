// Command tracegen generates a synthetic workload (SDSC-SP2/HPC2N surrogate,
// Lublin model, or the huge multi-partition Lublin composition) and writes it
// in Standard Workload Format, so it can be inspected or fed to other
// SWF-consuming tools.
//
// Usage:
//
//	tracegen -workload lublin-1 -n 10000 -seed 7 -o lublin1.swf
//	tracegen -workload sdsc-sp2 -mem-dist prop -priority-tiers 3 -o sdsc-sc.swf
//	tracegen -workload huge -n 1000000 -nodes 4096 -load 0.8 -o huge.swf
//
// The -mem-dist and -priority-tiers flags enrich the workload with per-job
// memory demands and priority tiers (the scenario dimensions); the SWF output
// then carries a MaxMemory header, requested-memory column and queue-encoded
// tiers, and round-trips through the parser.
//
// Without enrichment, built-in workloads stream straight from the generator
// to the SWF writer — jobs are written as they are drawn and never collected
// into a slice, so generating a million-job archive runs in constant memory.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/experiments"
	"repro/internal/lublin"
	"repro/internal/trace"
)

func main() {
	workload := flag.String("workload", "sdsc-sp2", "sdsc-sp2, hpc2n, lublin-1, lublin-2 or huge")
	n := flag.Int("n", 10000, "number of jobs")
	seed := flag.Uint64("seed", 1, "generator seed")
	out := flag.String("o", "", "output SWF path (default stdout)")
	memDist := flag.String("mem-dist", trace.MemDistNone, "per-job memory enrichment: none, prop or uniform")
	memPerProc := flag.Int("mem-per-proc", 0, "machine memory per processor in KB (default "+fmt.Sprint(trace.DefaultMemPerProc)+" when enriching)")
	tiers := flag.Int("priority-tiers", 0, "priority tiers to synthesize (geometric; 0 or 1 = none)")
	nodes := flag.Int("nodes", 0, "huge workload: machine size in processors (0 = 4096)")
	streams := flag.Int("streams", 0, "huge workload: partition streams composed (0 = nodes/256)")
	load := flag.Float64("load", 0, "huge workload: target machine utilization (0 = 0.8)")
	flag.Parse()

	w := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}

	isHuge := false
	switch strings.ToLower(*workload) {
	case "huge", "lublin-huge":
		isHuge = true
	}
	spec := trace.EnrichSpec{MemDist: *memDist, MemPerProc: *memPerProc, PriorityTiers: *tiers, Seed: *seed}

	// Streaming path: enrichment needs the whole trace, but a plain built-in
	// workload goes straight from the generator to the SWF rows.
	if !spec.Enabled() {
		var ts experiments.TraceStream
		var ok bool
		if isHuge {
			ts, ok = experiments.HugeStream(lublin.Huge(*nodes, *streams, *load), *n, *seed), true
		} else {
			ts, ok = experiments.ResolveStream(*workload, *n, *seed)
		}
		if ok {
			sw, err := trace.NewSWFWriter(w, ts.Name, ts.Procs, 0)
			if err == nil {
				err = ts.Run(func(j *trace.Job) error { return sw.WriteJob(j) })
			}
			if err == nil {
				err = sw.Flush()
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
				os.Exit(1)
			}
			if *out != "" {
				fmt.Fprintf(os.Stderr, "tracegen: wrote %d jobs to %s\n", *n, *out)
			}
			return
		}
	}

	var tr *trace.Trace
	var err error
	if isHuge {
		tr = experiments.HugeTrace(lublin.Huge(*nodes, *streams, *load), *n, *seed)
	} else {
		tr, err = experiments.ResolveTrace(*workload, *n, *seed)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
		os.Exit(1)
	}
	if spec.Enabled() {
		tr, err = trace.Enrich(tr, spec)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
			os.Exit(1)
		}
	}
	if err := trace.WriteSWF(w, tr); err != nil {
		fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
		os.Exit(1)
	}
	if *out != "" {
		fmt.Fprintf(os.Stderr, "tracegen: wrote %d jobs to %s\n", tr.Len(), *out)
	}
}
