// Command tracegen generates a synthetic workload (SDSC-SP2/HPC2N surrogate
// or Lublin model) and writes it in Standard Workload Format, so it can be
// inspected or fed to other SWF-consuming tools.
//
// Usage:
//
//	tracegen -workload lublin-1 -n 10000 -seed 7 -o lublin1.swf
//	tracegen -workload sdsc-sp2 -mem-dist prop -priority-tiers 3 -o sdsc-sc.swf
//
// The -mem-dist and -priority-tiers flags enrich the workload with per-job
// memory demands and priority tiers (the scenario dimensions); the SWF output
// then carries a MaxMemory header, requested-memory column and queue-encoded
// tiers, and round-trips through the parser.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
	"repro/internal/trace"
)

func main() {
	workload := flag.String("workload", "sdsc-sp2", "sdsc-sp2, hpc2n, lublin-1 or lublin-2")
	n := flag.Int("n", 10000, "number of jobs")
	seed := flag.Uint64("seed", 1, "generator seed")
	out := flag.String("o", "", "output SWF path (default stdout)")
	memDist := flag.String("mem-dist", trace.MemDistNone, "per-job memory enrichment: none, prop or uniform")
	memPerProc := flag.Int("mem-per-proc", 0, "machine memory per processor in KB (default "+fmt.Sprint(trace.DefaultMemPerProc)+" when enriching)")
	tiers := flag.Int("priority-tiers", 0, "priority tiers to synthesize (geometric; 0 or 1 = none)")
	flag.Parse()

	tr, err := experiments.ResolveTrace(*workload, *n, *seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
		os.Exit(1)
	}
	spec := trace.EnrichSpec{MemDist: *memDist, MemPerProc: *memPerProc, PriorityTiers: *tiers, Seed: *seed}
	if spec.Enabled() {
		tr, err = trace.Enrich(tr, spec)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
			os.Exit(1)
		}
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := trace.WriteSWF(w, tr); err != nil {
		fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
		os.Exit(1)
	}
	if *out != "" {
		fmt.Fprintf(os.Stderr, "tracegen: wrote %d jobs to %s\n", tr.Len(), *out)
	}
}
