// Command rlbf-eval evaluates a trained RLBackfilling model against the
// heuristic baselines on a workload, using the paper's protocol (§4.3):
// random job sequences scheduled under a base policy, mean bounded slowdown
// reported.
//
// Usage:
//
//	rlbf-eval -model rl-sdsc.json -trace hpc2n -policy FCFS -seqs 10 -seqlen 1024
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/backfill"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/sched"
	"repro/internal/shard"
)

func main() {
	modelPath := flag.String("model", "", "model JSON produced by rlbf-train (optional)")
	traceArg := flag.String("trace", "sdsc-sp2", "built-in workload name or SWF file path")
	jobs := flag.Int("jobs", 10000, "jobs to use from the trace")
	policyArg := flag.String("policy", "FCFS", "base scheduling policy: FCFS, SJF, WFP3, F1")
	seqs := flag.Int("seqs", 10, "number of sampled job sequences")
	seqLen := flag.Int("seqlen", 1024, "jobs per sequence")
	seed := flag.Uint64("seed", 2023, "sampling seed")
	workers := flag.Int("workers", 0, "concurrent sequence replays (0 or 1 = sequential)")
	shardWindow := flag.Int("shard-window", 0, "jobs per shard window for long sequence replays (0 = off)")
	shardSeconds := flag.Int64("shard-seconds", 0, "simulated seconds per shard window (wall-clock cuts; takes precedence over -shard-window)")
	shardOverlap := flag.Int("shard-overlap", 0, "warm-up/cool-down jobs per window flank (0 = drain-aware auto-sizing)")
	flag.Parse()

	policy, err := sched.ByName(*policyArg)
	if err != nil {
		fatal("%v", err)
	}
	tr, err := experiments.ResolveTrace(*traceArg, *jobs, *seed)
	if err != nil {
		fatal("%v", err)
	}
	evalCfg := core.EvalConfig{Sequences: *seqs, SeqLen: *seqLen, Seed: *seed, Workers: *workers,
		Shard: shard.Config{Window: *shardWindow, WindowSeconds: *shardSeconds, Overlap: *shardOverlap, MinJobs: 1}}
	est := experiments.Estimator(tr)

	fmt.Printf("workload %s (%d jobs, %d procs), base policy %s, %d x %d-job sequences (seed %d)\n",
		tr.Name, tr.Len(), tr.Procs, policy.Name(), *seqs, *seqLen, *seed)

	report := func(name string, mean float64, per []float64) {
		fmt.Printf("%-14s mean bsld %10.2f  per-sequence:", name, mean)
		for _, v := range per {
			fmt.Printf(" %.1f", v)
		}
		fmt.Println()
	}

	if mean, per, err := core.EvaluateStrategy(tr, policy, nil, evalCfg); err == nil {
		report("no-backfill", mean, per)
	} else {
		fatal("%v", err)
	}
	if _, isAR := est.(backfill.ActualRuntime); !isAR {
		if mean, per, err := core.EvaluateStrategy(tr, policy, backfill.NewEASY(backfill.RequestTime{}), evalCfg); err == nil {
			report("EASY", mean, per)
		} else {
			fatal("%v", err)
		}
	}
	if mean, per, err := core.EvaluateStrategy(tr, policy, backfill.NewEASY(backfill.ActualRuntime{}), evalCfg); err == nil {
		report("EASY-AR", mean, per)
	} else {
		fatal("%v", err)
	}

	if *modelPath != "" {
		model, err := core.LoadModelFile(*modelPath)
		if err != nil {
			fatal("loading model: %v", err)
		}
		agent, err := model.Agent()
		if err != nil {
			fatal("%v", err)
		}
		mean, per, err := core.EvaluateAgent(agent, tr, policy, evalCfg)
		if err != nil {
			fatal("%v", err)
		}
		report(fmt.Sprintf("RLBF(%s)", model.TrainedOn), mean, per)
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "rlbf-eval: "+format+"\n", args...)
	os.Exit(1)
}
