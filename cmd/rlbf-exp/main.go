// Command rlbf-exp regenerates the paper's tables and figures.
//
// Usage:
//
//	rlbf-exp -exp fig1,table4 -scale quick
//	rlbf-exp -exp all -scale paper -out results.txt
//
// Experiments: fig1, fig4, table2, table4, table5, ablation-skip,
// ablation-penalty, ablation-obs, conservative (or "all"). Scales: tiny,
// quick, paper.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/experiments"
	"repro/internal/shard"
)

func main() {
	exp := flag.String("exp", "all", "comma-separated experiment IDs or 'all'")
	scale := flag.String("scale", "quick", "scale: tiny, quick or paper")
	out := flag.String("out", "", "write results to this file instead of stdout")
	quiet := flag.Bool("quiet", false, "suppress progress logging")
	list := flag.Bool("list", false, "list available experiments and exit")
	seed := flag.Uint64("seed", 0, "override the scale's master seed")
	jobs := flag.Int("jobs", 0, "override the per-trace job count")
	epochs := flag.Int("epochs", 0, "override the training epoch count")
	traj := flag.Int("traj", 0, "override the trajectories per training epoch")
	workers := flag.Int("workers", 0, "worker-pool size for parallel experiment cells (0 = GOMAXPROCS)")
	shardWindow := flag.Int("shard-window", 0, "jobs per shard window for long whole-trace replays (0 = off)")
	shardSeconds := flag.Int64("shard-seconds", 0, "simulated seconds per shard window (wall-clock cuts; takes precedence over -shard-window)")
	shardOverlap := flag.Int("shard-overlap", 0, "warm-up/cool-down jobs per window flank (0 = drain-aware auto-sizing)")
	shardMinJobs := flag.Int("shard-min-jobs", 0, "shard replays of at least this many jobs (0 = default 2048; lower it to shard the eval sequences too)")
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(experiments.Names(), "\n"))
		return
	}
	sc, ok := experiments.ByName(*scale)
	if !ok {
		fmt.Fprintf(os.Stderr, "rlbf-exp: unknown scale %q (tiny, quick, paper)\n", *scale)
		os.Exit(2)
	}
	if *seed != 0 {
		sc.Seed = *seed
	}
	if *jobs > 0 {
		sc.TraceJobs = *jobs
	}
	if *epochs > 0 {
		sc.Epochs = *epochs
	}
	if *traj > 0 {
		sc.TrajPerEpoch = *traj
	}
	if *workers > 0 {
		sc.Workers = *workers
	}
	if *shardWindow > 0 || *shardSeconds > 0 {
		// RunMany propagates this into the eval protocol as well. The
		// default MinJobs threshold (2048) keeps sub-threshold replays —
		// including every named scale's eval sequences — sequential;
		// -shard-min-jobs lowers it to pull those in too.
		sc.Shard = shard.Config{Window: *shardWindow, WindowSeconds: *shardSeconds,
			Overlap: *shardOverlap, MinJobs: *shardMinJobs}
	}

	var log io.Writer = os.Stderr
	if *quiet {
		log = io.Discard
	}
	result, err := experiments.RunMany(strings.Split(*exp, ","), sc, log)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rlbf-exp: %v\n", err)
		os.Exit(1)
	}
	if *out == "" {
		fmt.Print(result)
		return
	}
	if err := os.WriteFile(*out, []byte(result), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "rlbf-exp: writing %s: %v\n", *out, err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "rlbf-exp: wrote %s\n", *out)
}
