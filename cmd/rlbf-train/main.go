// Command rlbf-train trains an RLBackfilling model on a workload and saves
// it as JSON for rlbf-eval (the Table 5 "train on X, apply to Y" protocol).
//
// Usage:
//
//	rlbf-train -trace sdsc-sp2 -policy FCFS -epochs 20 -o rl-sdsc.json
//	rlbf-train -trace /data/SDSC-SP2-1998-4.2-cln.swf -jobs 10000 -scale paper -o m.json
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/sched"
)

func main() {
	traceArg := flag.String("trace", "sdsc-sp2", "built-in workload name or SWF file path")
	jobs := flag.Int("jobs", 0, "jobs to use from the trace (0 = scale default)")
	policyArg := flag.String("policy", "FCFS", "base scheduling policy: FCFS, SJF, WFP3, F1")
	epochs := flag.Int("epochs", 0, "training epochs (0 = scale default)")
	scaleArg := flag.String("scale", "quick", "scale preset: tiny, quick, paper")
	seed := flag.Uint64("seed", 0, "master seed (0 = scale default)")
	out := flag.String("o", "rlbf-model.json", "output model path")
	curve := flag.String("curve", "", "write the per-epoch training curve (Figure 4 data) to this CSV file")
	flag.Parse()

	sc, ok := experiments.ByName(*scaleArg)
	if !ok {
		fatal("unknown scale %q", *scaleArg)
	}
	if *jobs > 0 {
		sc.TraceJobs = *jobs
	}
	if *epochs > 0 {
		sc.Epochs = *epochs
	}
	if *seed != 0 {
		sc.Seed = *seed
	}
	policy, err := sched.ByName(*policyArg)
	if err != nil {
		fatal("%v", err)
	}
	tr, err := experiments.ResolveTrace(*traceArg, sc.TraceJobs, sc.Seed)
	if err != nil {
		fatal("%v", err)
	}

	cfg := core.DefaultTrainConfig()
	cfg.BasePolicy = policy
	cfg.Est = experiments.Estimator(tr)
	cfg.Obs.MaxObs = sc.MaxObs
	cfg.TrajPerEpoch = sc.TrajPerEpoch
	cfg.EpisodeLen = sc.EpisodeLen
	cfg.Seed = sc.Seed
	cfg.PPO.PiIters = sc.PiIters
	cfg.PPO.VIters = sc.VIters
	cfg.PPO.MiniBatch = 2048

	trainer, err := core.NewTrainer(tr, cfg)
	if err != nil {
		fatal("%v", err)
	}
	fmt.Fprintf(os.Stderr, "training on %s (%d jobs, %d procs) with %s base policy, %d epochs\n",
		tr.Name, tr.Len(), tr.Procs, policy.Name(), sc.Epochs)
	hist, err := trainer.Train(sc.Epochs, func(st core.EpochStats) {
		fmt.Fprintf(os.Stderr, "epoch %3d: bsld=%8.2f baseline=%8.2f reward=%+.3f steps=%5d violations=%d kl=%.4f\n",
			st.Epoch, st.MeanBSLD, st.BaselineBSLD, st.MeanReward, st.Steps, st.Violations, st.Update.KL)
	})
	if err != nil {
		fatal("training: %v", err)
	}
	if best := core.BestEpoch(hist); best >= 0 {
		fmt.Fprintf(os.Stderr, "best epoch %d (bsld %.2f); converged=%v\n",
			best, hist[best].MeanBSLD, core.Converged(hist, 5, 0.01))
	}
	if *curve != "" {
		f, err := os.Create(*curve)
		if err != nil {
			fatal("%v", err)
		}
		if err := core.WriteHistoryCSV(f, hist); err != nil {
			f.Close()
			fatal("writing curve: %v", err)
		}
		if err := f.Close(); err != nil {
			fatal("%v", err)
		}
		fmt.Fprintf(os.Stderr, "wrote training curve to %s\n", *curve)
	}

	model := core.ExportModel(trainer.Agent(), policy.Name(), tr.Name, sc.Epochs)
	if err := core.SaveModelFile(*out, model); err != nil {
		fatal("saving model: %v", err)
	}
	fmt.Fprintf(os.Stderr, "saved model to %s\n", *out)
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "rlbf-train: "+format+"\n", args...)
	os.Exit(1)
}
