// Command rlbf-serve runs the scheduling simulator as a long-lived service:
// an HTTP/JSON daemon accepting live job submissions, cancellations and
// status queries from concurrent clients, driving a single authoritative
// engine in real or scaled time and answering "when will my job start?"
// from the reservation profile (DESIGN.md §12).
//
// Usage:
//
//	rlbf-serve -addr :8080 -procs 128 -policy FCFS -backfill conservative
//	rlbf-serve -addr :8080 -procs 128 -scale 3600 -snapshot state.json -snapshot-every 10s
//	rlbf-serve -resume state.json -addr :8080 -procs 128
//
// Replicated deployment (DESIGN.md §14): a primary plus warm-standby
// followers that tail its command WAL over HTTP, byte-verify the derived
// schedule, and promote themselves (bumping the WAL generation — the fencing
// token) when the primary's lease expires:
//
//	rlbf-serve -addr :8080 -wal a.wal -snapshot a.json -peer http://host2:8080
//	rlbf-serve -addr :8081 -wal b.wal -snapshot b.json -follow -peer http://host1:8080
//
// Load-generation client mode (drives a running daemon; -addr may list
// several endpoints, failing over between them):
//
//	rlbf-serve -loadgen -addr http://127.0.0.1:8080,http://127.0.0.1:8081 -submitters 1000 -duration 20s
//
// On SIGTERM or SIGINT the daemon drains: intake closes (submissions get
// 503), in-flight requests finish, a final state snapshot is written, and
// the process exits 0 with a "drained clean" log line — the contract the
// serve-load CI gate asserts.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/backfill"
	"repro/internal/sched"
	"repro/internal/serve"
	"repro/internal/serveclient"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address (daemon) or base URL (-loadgen)")
	name := flag.String("name", "rlbf-serve", "deployment name")
	procs := flag.Int("procs", 128, "machine size in processors")
	mem := flag.Int("mem", 0, "machine memory capacity (0 = no memory dimension)")
	policyArg := flag.String("policy", "FCFS", "base policy: FCFS, SJF, WFP3, F1, F2, F3, F4 or SAF")
	bfArg := flag.String("backfill", "conservative", "none, easy, easy-sjf or conservative")
	scale := flag.Float64("scale", 1, "simulated seconds per wall second")
	priorities := flag.Bool("priorities", false, "schedule with priority-tier ordering")
	starvationBound := flag.Float64("starvation-bound", 0, "aging bound: a job starves once wait exceeds bound x request (0 = off)")
	snapshotPath := flag.String("snapshot", "", "write periodic JSON state snapshots to this file")
	snapshotEvery := flag.Duration("snapshot-every", 30*time.Second, "snapshot cadence (needs -snapshot)")
	resume := flag.String("resume", "", "resume from a state snapshot written by -snapshot")
	walPath := flag.String("wal", "", "durable write-ahead log path (needs -snapshot); recovers automatically from existing files")
	walNoSync := flag.Bool("wal-nosync", false, "skip the per-command WAL fsync (faster, may lose acked work on crash)")
	compactEvery := flag.Int("compact-every", 4096, "rotate snapshot+WAL after this many log records")
	follow := flag.Bool("follow", false, "run as a warm-standby follower of -peer (needs -wal)")
	peerArg := flag.String("peer", "", "comma-separated base URLs of the other replicas")
	lease := flag.Duration("lease", 3*time.Second, "primary lease: a follower promotes after this long without stream progress")
	ackTimeout := flag.Duration("ack-timeout", time.Second, "semi-sync replication ack timeout before an ack degrades to async")
	roundBudget := flag.Duration("round-budget", 2*time.Second, "watchdog: flag a scheduling round that exceeds this and dump goroutines (0 = off)")
	maxInflight := flag.Int("max-inflight", 256, "concurrently handled HTTP requests")
	maxQueued := flag.Int("max-queued", 0, "waiting HTTP requests before 429 load shedding (0 = 4x max-inflight)")
	predictCap := flag.Int("predict-cap", 4096, "max queue depth for predicted-start answers")

	loadgen := flag.Bool("loadgen", false, "run as load-generation client against -addr")
	submitters := flag.Int("submitters", 100, "loadgen: concurrent submitters")
	duration := flag.Duration("duration", 10*time.Second, "loadgen: run length")
	rate := flag.Float64("rate", 0, "loadgen: aggregate jobs/second (0 = unpaced)")
	statusEvery := flag.Int("status-every", 4, "loadgen: status query per N submissions per worker (0 = off)")
	cancelEvery := flag.Int("cancel-every", 0, "loadgen: cancel every Nth submission per worker (0 = off)")
	seed := flag.Uint64("seed", 1, "loadgen: workload seed")
	retries := flag.Int("retries", 0, "loadgen: retry budget per submission (backoff with jitter)")
	report := flag.String("report", "", "loadgen: write the JSON report to this file")
	minThroughput := flag.Float64("min-throughput", 0, "loadgen: fail unless submitted jobs/sec reaches this")
	maxP99 := flag.Float64("max-p99-ms", 0, "loadgen: fail if client submit p99 exceeds this many ms")
	flag.Parse()

	if *loadgen {
		runLoadgen(loadgenConfig{
			endpoints: splitEndpoints(*addr), submitters: *submitters, duration: *duration, rate: *rate,
			statusEvery: *statusEvery, cancelEvery: *cancelEvery, seed: *seed,
			retries: *retries, report: *report, minThroughput: *minThroughput, maxP99: *maxP99,
		})
		return
	}

	policy, err := sched.ByNameExtended(*policyArg)
	if err != nil {
		fatal("%v", err)
	}
	scn := sched.Scenario{Priorities: *priorities, StarvationBound: *starvationBound}
	est := backfill.Estimator(backfill.RequestTime{})
	var bf backfill.Backfiller
	switch strings.ToLower(*bfArg) {
	case "none":
	case "easy":
		bf = &backfill.EASY{Est: est, Scn: scn}
	case "easy-sjf":
		bf = &backfill.EASY{Est: est, Order: backfill.SJFOrder, Scn: scn}
	case "conservative":
		bf = backfill.NewConservative(est)
	default:
		fatal("unknown backfill strategy %q", *bfArg)
	}

	peers := splitEndpoints(*peerArg)
	cfg := serve.Config{
		Name: *name, Procs: *procs, Mem: *mem,
		Policy: policy, Backfiller: bf, Scenario: scn, Estimator: est,
		TimeScale: *scale, SnapshotPath: *snapshotPath, SnapshotEvery: *snapshotEvery,
		PredictCap: *predictCap,
		WALPath:    *walPath, WALNoSync: *walNoSync, CompactEvery: *compactEvery,
		Lease: *lease, Peers: peers, ReplAckTimeout: *ackTimeout, RoundBudget: *roundBudget,
	}
	if *snapshotPath == "" {
		cfg.SnapshotEvery = 0
	}
	if *walPath != "" && *snapshotPath == "" {
		fatal("-wal requires -snapshot (compaction rotates through the snapshot file)")
	}

	var sched *serve.Scheduler
	var follower *serve.Follower
	switch {
	case *follow:
		if *walPath == "" {
			fatal("-follow requires -wal (the follower mirrors the primary's log)")
		}
		if len(peers) == 0 {
			fatal("-follow requires -peer")
		}
		if follower, err = serve.NewFollower(cfg, serve.FollowConfig{Peers: peers}); err != nil {
			fatal("follower: %v", err)
		}
		sched = follower.Scheduler()
		log.Printf("rlbf-serve: %s following %v at generation %d (%d records applied): recovery verified against primary digest",
			*name, peers, sched.WALGen(), sched.WALApplied())
	case *walPath != "":
		// Fencing handshake first, against the ON-DISK generation: recovery
		// itself compacts (bumping the local generation), which could mask a
		// tie with a follower that promoted while this primary was down.
		fencePeer, fenceGen, fenced := serve.FenceCheck(cfg, peers, nil)
		// Recover handles every on-disk combination: a full triple after a
		// crash, a partial one after a crash mid-rotation, or nothing at all
		// (fresh start). New would truncate existing logs, so WAL mode always
		// goes through Recover. A fenced zombie recovers WITHOUT the final
		// compaction: bumping its generation would rebase an unreplicated WAL
		// tail into a lineage that ties with the promoted peer's, and the
		// stale on-disk generation is what lets a later -follow restart know
		// to re-bootstrap.
		var info *serve.RecoveryInfo
		if fenced {
			sched, info, err = serve.RecoverFenced(cfg)
		} else {
			sched, info, err = serve.Recover(cfg)
		}
		if err != nil {
			fatal("recover: %v", err)
		}
		log.Printf("rlbf-serve: recovery verified: gen %d, %d prior records, %d commands replayed, %d records re-derived (%d byte-verified, %d re-appended, %d orphans dropped) in %s",
			info.WALGen, info.PriorRecords, info.Applied, info.Rederived, info.Verified,
			info.HistoryAppended, info.HistoryTruncated, info.Elapsed.Round(time.Microsecond))
		if fenced {
			sched.Fence(fencePeer, fenceGen)
		}
	case *resume != "":
		st, err := serve.ReadState(*resume)
		if err != nil {
			fatal("%v", err)
		}
		if sched, err = serve.NewFromState(cfg, st); err != nil {
			fatal("%v", err)
		}
		log.Printf("rlbf-serve: resumed %s at sim clock %d: %d queued, %d running, %d records",
			st.Name, st.SimClock, len(st.Queued), len(st.Running), len(st.Records))
	default:
		if sched, err = serve.New(cfg); err != nil {
			fatal("%v", err)
		}
	}
	if follower != nil {
		follower.Start()
	} else {
		sched.Start()
		if len(peers) > 0 && *walPath != "" {
			// Runtime fencing guard: keep probing peers and self-fence the
			// moment any reachable replica reports a newer generation.
			defer serve.WatchPeers(sched, peers, time.Second, nil)()
		}
	}

	server := serve.NewServer(sched, *maxInflight, *maxQueued)
	httpSrv := &http.Server{Addr: *addr, Handler: server.Handler()}
	go func() {
		log.Printf("rlbf-serve: %s listening on %s (%d procs, policy %s, backfill %s, scale %gx)",
			*name, *addr, *procs, policy.Name(), bfName(bf), *scale)
		if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			fatal("%v", err)
		}
	}()

	sigC := make(chan os.Signal, 1)
	signal.Notify(sigC, syscall.SIGTERM, syscall.SIGINT)
	sig := <-sigC
	log.Printf("rlbf-serve: %v received, draining", sig)
	if follower != nil {
		follower.Stop()
		if ferr := follower.Err(); ferr != nil {
			log.Printf("rlbf-serve: follower stream had stopped: %v", ferr)
		}
	}

	// Drain sequence: stop accepting submissions, let in-flight HTTP finish,
	// then stop the scheduler loop and persist the final state.
	sched.StartDraining()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		log.Printf("rlbf-serve: http shutdown: %v", err)
	}
	server.Close()
	st, err := sched.Drain()
	if err != nil {
		fatal("drain: %v", err)
	}
	// `accounted` is the zero-loss invariant the serve-crash CI gate checks:
	// every job the daemon ever acknowledged is either recorded (dispatched),
	// still queued or pending, or was explicitly canceled.
	accounted := len(st.Records) + len(st.Queued) + len(st.Pending) + len(st.Canceled)
	log.Printf("rlbf-serve: drained clean at sim clock %d: %d jobs recorded, %d queued, %d running, %d accounted",
		st.SimClock, len(st.Records), len(st.Queued), len(st.Running), accounted)
}

type loadgenConfig struct {
	endpoints             []string
	submitters            int
	duration              time.Duration
	rate                  float64
	statusEvery           int
	cancelEvery           int
	seed                  uint64
	retries               int
	report                string
	minThroughput, maxP99 float64
}

// splitEndpoints parses a comma-separated endpoint list, normalizing bare
// ports and host:port forms to http URLs.
func splitEndpoints(s string) []string {
	var out []string
	for _, e := range strings.Split(s, ",") {
		e = strings.TrimSpace(e)
		if e == "" {
			continue
		}
		if !strings.HasPrefix(e, "http") {
			e = "http://" + strings.TrimPrefix(e, ":")
		}
		out = append(out, e)
	}
	return out
}

func runLoadgen(c loadgenConfig) {
	rep, err := serveclient.RunLoad(serveclient.LoadConfig{
		Endpoints: c.endpoints, Submitters: c.submitters, Duration: c.duration, Rate: c.rate,
		StatusEvery: c.statusEvery, CancelEvery: c.cancelEvery, Seed: c.seed,
		Retries: c.retries,
	})
	if err != nil {
		fatal("%v", err)
	}
	out, _ := json.MarshalIndent(rep, "", "  ")
	fmt.Println(string(out))
	if c.report != "" {
		if err := os.WriteFile(c.report, append(out, '\n'), 0o644); err != nil {
			fatal("%v", err)
		}
	}
	if rep.Errors > 0 {
		fatal("loadgen: %d transport errors", rep.Errors)
	}
	if c.minThroughput > 0 && rep.Throughput < c.minThroughput {
		fatal("loadgen: throughput %.1f jobs/s below gate %.1f", rep.Throughput, c.minThroughput)
	}
	if c.maxP99 > 0 && rep.SubmitP99Ms > c.maxP99 {
		fatal("loadgen: submit p99 %.2fms above gate %.2fms", rep.SubmitP99Ms, c.maxP99)
	}
}

func bfName(bf backfill.Backfiller) string {
	if bf == nil {
		return "none"
	}
	return bf.Name()
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "rlbf-serve: "+format+"\n", args...)
	os.Exit(1)
}
