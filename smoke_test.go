package repro

import (
	"strings"
	"testing"

	"repro/internal/experiments"
)

// TestFigure1TinySmoke exercises the benchmark harness code path in the
// tier-1 test run: one Figure 1 regeneration at tiny scale (the same entry
// point BenchmarkFigure1 drives). It keeps `go test ./...` covering the root
// package instead of reporting "no tests to run".
func TestFigure1TinySmoke(t *testing.T) {
	sc, ok := experiments.ByName("tiny")
	if !ok {
		t.Fatal("tiny scale missing")
	}
	tbl, err := experiments.Figure1(sc, nil)
	if err != nil {
		t.Fatal(err)
	}
	out := tbl.String()
	if !strings.Contains(out, "Figure 1") {
		t.Fatalf("unexpected table title:\n%s", out)
	}
	// One row per Table 3 policy, each with a bsld value per estimator.
	for _, policy := range []string{"FCFS", "SJF", "WFP3", "F1"} {
		if !strings.Contains(out, policy) {
			t.Fatalf("Figure 1 output missing %s row:\n%s", policy, out)
		}
	}
}

// TestBenchScaleSelection pins the RLBF_BENCH_SCALE contract the benchmarks
// rely on: tiny is the default, and every documented scale resolves.
func TestBenchScaleSelection(t *testing.T) {
	for _, name := range []string{"tiny", "quick", "paper"} {
		sc, ok := experiments.ByName(name)
		if !ok {
			t.Fatalf("scale %q not resolvable", name)
		}
		if sc.Name != name {
			t.Fatalf("scale %q resolves to %q", name, sc.Name)
		}
	}
	if _, ok := experiments.ByName("bogus"); ok {
		t.Fatal("unknown scale accepted")
	}
}
