package stats

import (
	"math"
	"sort"
)

// KSStatistic returns the two-sample Kolmogorov-Smirnov statistic: the
// maximum distance between the empirical CDFs of a and b. It is used to
// check that surrogate workload generators produce the same distributions
// across seeds (distributional stability), and to compare against reference
// samples.
func KSStatistic(a, b []float64) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 1
	}
	as := append([]float64(nil), a...)
	bs := append([]float64(nil), b...)
	sort.Float64s(as)
	sort.Float64s(bs)
	var i, j int
	var d float64
	for i < len(as) || j < len(bs) {
		// Evaluate at the next distinct sample value, consuming every tied
		// observation from both samples so ties do not inflate the distance.
		var v float64
		switch {
		case i >= len(as):
			v = bs[j]
		case j >= len(bs):
			v = as[i]
		case as[i] <= bs[j]:
			v = as[i]
		default:
			v = bs[j]
		}
		for i < len(as) && as[i] == v {
			i++
		}
		for j < len(bs) && bs[j] == v {
			j++
		}
		fa := float64(i) / float64(len(as))
		fb := float64(j) / float64(len(bs))
		if diff := math.Abs(fa - fb); diff > d {
			d = diff
		}
	}
	return d
}

// KSCritical returns the large-sample critical value of the two-sample KS
// statistic at significance alpha (supported: 0.10, 0.05, 0.01). Samples
// with KSStatistic below this are statistically indistinguishable at that
// level.
func KSCritical(nA, nB int, alpha float64) float64 {
	if nA <= 0 || nB <= 0 {
		return 1
	}
	var c float64
	switch {
	case alpha <= 0.01:
		c = 1.63
	case alpha <= 0.05:
		c = 1.36
	default:
		c = 1.22
	}
	return c * math.Sqrt(float64(nA+nB)/float64(nA)/float64(nB))
}

// Histogram bins xs into `bins` equal-width buckets over [min, max] and
// returns the bucket counts plus the bucket width.
func Histogram(xs []float64, bins int) (counts []int, lo, width float64) {
	if len(xs) == 0 || bins <= 0 {
		return nil, 0, 0
	}
	lo, hi := xs[0], xs[0]
	for _, x := range xs {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	counts = make([]int, bins)
	if hi == lo {
		counts[0] = len(xs)
		return counts, lo, 0
	}
	width = (hi - lo) / float64(bins)
	for _, x := range xs {
		b := int((x - lo) / width)
		if b >= bins {
			b = bins - 1
		}
		counts[b]++
	}
	return counts, lo, width
}
