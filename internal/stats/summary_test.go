package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMeanStd(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); !almostEq(m, 5, 1e-12) {
		t.Fatalf("Mean = %v, want 5", m)
	}
	// sample std with n-1 denominator: variance = 32/7
	want := math.Sqrt(32.0 / 7.0)
	if s := Std(xs); !almostEq(s, want, 1e-12) {
		t.Fatalf("Std = %v, want %v", s, want)
	}
}

func TestMeanEmpty(t *testing.T) {
	if Mean(nil) != 0 || Std(nil) != 0 {
		t.Fatal("empty-slice statistics should be zero")
	}
	if Percentile(nil, 50) != 0 {
		t.Fatal("empty percentile should be zero")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ p, want float64 }{
		{0, 1}, {25, 2}, {50, 3}, {75, 4}, {100, 5}, {-5, 1}, {110, 5},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); !almostEq(got, c.want, 1e-12) {
			t.Fatalf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestPercentileInterpolation(t *testing.T) {
	xs := []float64{10, 20}
	if got := Percentile(xs, 50); !almostEq(got, 15, 1e-12) {
		t.Fatalf("Percentile(50) = %v, want 15", got)
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatal("Percentile mutated its input")
	}
}

func TestSummarize(t *testing.T) {
	xs := []float64{5, 1, 3}
	s := Summarize(xs)
	if s.N != 3 || s.Min != 1 || s.Max != 5 || !almostEq(s.Mean, 3, 1e-12) || !almostEq(s.Median, 3, 1e-12) {
		t.Fatalf("unexpected summary %+v", s)
	}
}

func TestSummarizeOrderInvariant(t *testing.T) {
	r := NewRNG(77)
	f := func(n uint8) bool {
		m := int(n%20) + 2
		xs := make([]float64, m)
		for i := range xs {
			xs[i] = r.Normal(0, 10)
		}
		a := Summarize(xs)
		perm := r.Perm(m)
		ys := make([]float64, m)
		for i, j := range perm {
			ys[i] = xs[j]
		}
		b := Summarize(ys)
		return almostEq(a.Mean, b.Mean, 1e-9) && almostEq(a.Median, b.Median, 1e-9) &&
			a.Min == b.Min && a.Max == b.Max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMeanInt64(t *testing.T) {
	if m := MeanInt64([]int64{1, 2, 3, 4}); !almostEq(m, 2.5, 1e-12) {
		t.Fatalf("MeanInt64 = %v", m)
	}
	if MeanInt64(nil) != 0 {
		t.Fatal("MeanInt64(nil) should be 0")
	}
}

// Property: percentile is monotone in p.
func TestPercentileMonotone(t *testing.T) {
	r := NewRNG(123)
	xs := make([]float64, 101)
	for i := range xs {
		xs[i] = r.Float64() * 100
	}
	prev := math.Inf(-1)
	for p := 0.0; p <= 100; p += 2.5 {
		v := Percentile(xs, p)
		if v < prev {
			t.Fatalf("percentile not monotone at p=%v: %v < %v", p, v, prev)
		}
		prev = v
	}
}
