package stats

import (
	"testing"
)

func TestKSIdenticalSamples(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if d := KSStatistic(xs, xs); d > 1e-12 {
		t.Fatalf("KS of identical samples = %v", d)
	}
}

func TestKSDisjointSamples(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{10, 11, 12}
	if d := KSStatistic(a, b); d != 1 {
		t.Fatalf("KS of disjoint samples = %v, want 1", d)
	}
}

func TestKSEmpty(t *testing.T) {
	if KSStatistic(nil, []float64{1}) != 1 {
		t.Fatal("empty sample should give maximal distance")
	}
}

func TestKSSameDistributionDifferentSeeds(t *testing.T) {
	r1, r2 := NewRNG(1), NewRNG(2)
	const n = 5000
	a := make([]float64, n)
	b := make([]float64, n)
	for i := 0; i < n; i++ {
		a[i] = r1.Gamma(2, 3)
		b[i] = r2.Gamma(2, 3)
	}
	d := KSStatistic(a, b)
	if crit := KSCritical(n, n, 0.01); d > crit {
		t.Fatalf("same-distribution KS %v exceeds critical %v", d, crit)
	}
}

func TestKSDetectsDifferentDistributions(t *testing.T) {
	r1, r2 := NewRNG(1), NewRNG(2)
	const n = 5000
	a := make([]float64, n)
	b := make([]float64, n)
	for i := 0; i < n; i++ {
		a[i] = r1.Gamma(2, 3)
		b[i] = r2.Gamma(2, 5) // different scale
	}
	d := KSStatistic(a, b)
	if crit := KSCritical(n, n, 0.01); d <= crit {
		t.Fatalf("different distributions not detected: KS %v <= %v", d, crit)
	}
}

func TestKSCriticalShrinksWithSamples(t *testing.T) {
	if KSCritical(100, 100, 0.05) <= KSCritical(10000, 10000, 0.05) {
		t.Fatal("critical value should shrink with sample size")
	}
	if KSCritical(0, 10, 0.05) != 1 {
		t.Fatal("degenerate sample sizes should give 1")
	}
	if KSCritical(100, 100, 0.01) <= KSCritical(100, 100, 0.10) {
		t.Fatal("stricter alpha should give larger critical value")
	}
}

func TestHistogram(t *testing.T) {
	counts, lo, width := Histogram([]float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}, 5)
	if lo != 0 || width != 1.8 {
		t.Fatalf("lo=%v width=%v", lo, width)
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != 10 {
		t.Fatalf("histogram lost values: %v", counts)
	}
	if counts[0] != 2 || counts[4] != 2 {
		t.Fatalf("bucket counts %v", counts)
	}
}

func TestHistogramDegenerate(t *testing.T) {
	counts, _, width := Histogram([]float64{5, 5, 5}, 4)
	if width != 0 || counts[0] != 3 {
		t.Fatalf("constant sample histogram wrong: %v width %v", counts, width)
	}
	if c, _, _ := Histogram(nil, 4); c != nil {
		t.Fatal("empty histogram should be nil")
	}
}
