package stats

import (
	"math"
	"sort"
)

// Summary holds descriptive statistics of a sample.
type Summary struct {
	N      int
	Mean   float64
	Std    float64 // sample standard deviation (n-1 denominator)
	Min    float64
	Max    float64
	Median float64
	P90    float64
	P99    float64
}

// Mean returns the arithmetic mean of xs (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Std returns the sample standard deviation of xs (0 for fewer than two
// observations).
func Std(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)-1))
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using linear
// interpolation between closest ranks. It returns 0 for an empty slice.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Summarize computes descriptive statistics for xs.
func Summarize(xs []float64) Summary {
	s := Summary{N: len(xs)}
	if len(xs) == 0 {
		return s
	}
	s.Mean = Mean(xs)
	s.Std = Std(xs)
	s.Min = xs[0]
	s.Max = xs[0]
	for _, x := range xs {
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Median = Percentile(xs, 50)
	s.P90 = Percentile(xs, 90)
	s.P99 = Percentile(xs, 99)
	return s
}

// MeanInt64 returns the mean of an int64 slice as float64.
func MeanInt64(xs []int64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += float64(x)
	}
	return s / float64(len(xs))
}
