package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewRNGDeterministic(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestNewRNGDifferentSeeds(t *testing.T) {
	a := NewRNG(1)
	b := NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("seeds 1 and 2 produced %d/100 identical outputs", same)
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(7)
	f := func(_ uint8) bool {
		v := r.Float64()
		return v >= 0 && v < 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestFloat64Mean(t *testing.T) {
	r := NewRNG(11)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean = %v, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := NewRNG(3)
	seen := make(map[int]bool)
	for i := 0; i < 10000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d out of range", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Fatalf("Intn(7) covered only %d values", len(seen))
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestNormalMoments(t *testing.T) {
	r := NewRNG(5)
	const n = 200000
	var sum, sq float64
	for i := 0; i < n; i++ {
		v := r.Normal(3, 2)
		sum += v
		sq += v * v
	}
	mean := sum / n
	variance := sq/n - mean*mean
	if math.Abs(mean-3) > 0.05 {
		t.Fatalf("normal mean = %v, want ~3", mean)
	}
	if math.Abs(variance-4) > 0.15 {
		t.Fatalf("normal variance = %v, want ~4", variance)
	}
}

func TestExponentialMean(t *testing.T) {
	r := NewRNG(9)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		v := r.Exponential(50)
		if v < 0 {
			t.Fatalf("negative exponential sample %v", v)
		}
		sum += v
	}
	mean := sum / n
	if math.Abs(mean-50) > 1.5 {
		t.Fatalf("exponential mean = %v, want ~50", mean)
	}
}

func TestGammaMoments(t *testing.T) {
	cases := []struct{ shape, scale float64 }{
		{0.5, 2.0},
		{1.0, 1.0},
		{4.2, 0.94},
		{9.0, 0.5},
	}
	for _, c := range cases {
		r := NewRNG(uint64(c.shape*1000) + uint64(c.scale*10))
		const n = 200000
		var sum, sq float64
		for i := 0; i < n; i++ {
			v := r.Gamma(c.shape, c.scale)
			if v <= 0 {
				t.Fatalf("Gamma(%v,%v) produced non-positive %v", c.shape, c.scale, v)
			}
			sum += v
			sq += v * v
		}
		mean := sum / n
		variance := sq/n - mean*mean
		wantMean := c.shape * c.scale
		wantVar := c.shape * c.scale * c.scale
		if math.Abs(mean-wantMean) > 0.05*wantMean+0.02 {
			t.Fatalf("Gamma(%v,%v) mean = %v, want ~%v", c.shape, c.scale, mean, wantMean)
		}
		if math.Abs(variance-wantVar) > 0.10*wantVar+0.05 {
			t.Fatalf("Gamma(%v,%v) variance = %v, want ~%v", c.shape, c.scale, variance, wantVar)
		}
	}
}

func TestGammaPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Gamma(0, 1) did not panic")
		}
	}()
	NewRNG(1).Gamma(0, 1)
}

func TestLogNormalPositive(t *testing.T) {
	r := NewRNG(13)
	for i := 0; i < 10000; i++ {
		if v := r.LogNormal(1, 2); v <= 0 || math.IsInf(v, 0) || math.IsNaN(v) {
			t.Fatalf("LogNormal produced %v", v)
		}
	}
}

func TestTwoStageUniformRange(t *testing.T) {
	r := NewRNG(17)
	lo, med, hi := 1.0, 4.0, 8.0
	nLow := 0
	const n = 100000
	for i := 0; i < n; i++ {
		v := r.TwoStageUniform(lo, med, hi, 0.7)
		if v < lo || v > hi {
			t.Fatalf("TwoStageUniform out of range: %v", v)
		}
		if v < med {
			nLow++
		}
	}
	frac := float64(nLow) / n
	if math.Abs(frac-0.7) > 0.02 {
		t.Fatalf("low-stage fraction = %v, want ~0.7", frac)
	}
}

func TestHyperGammaMixture(t *testing.T) {
	r := NewRNG(23)
	// components with well separated means: 2*1=2 and 100*1=100
	const n = 100000
	small := 0
	for i := 0; i < n; i++ {
		v := r.HyperGamma(2, 1, 100, 1, 0.8)
		if v <= 0 {
			t.Fatalf("HyperGamma produced %v", v)
		}
		if v < 30 {
			small++
		}
	}
	frac := float64(small) / n
	if math.Abs(frac-0.8) > 0.02 {
		t.Fatalf("first-component fraction = %v, want ~0.8", frac)
	}
}

func TestSplitIndependence(t *testing.T) {
	r := NewRNG(99)
	a := r.Split()
	b := r.Split()
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("split streams overlapped in %d/100 outputs", same)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(31)
	f := func(n uint8) bool {
		m := int(n%50) + 1
		p := r.Perm(m)
		if len(p) != m {
			return false
		}
		seen := make([]bool, m)
		for _, v := range p {
			if v < 0 || v >= m || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestBoolProbability(t *testing.T) {
	r := NewRNG(41)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if r.Bool(0.25) {
			hits++
		}
	}
	frac := float64(hits) / n
	if math.Abs(frac-0.25) > 0.01 {
		t.Fatalf("Bool(0.25) hit fraction = %v", frac)
	}
}
