// Package stats provides the deterministic random-number and statistics
// substrate used by the workload generators and the reinforcement-learning
// stack. It is self-contained (stdlib only) so that generated traces and
// training runs are reproducible across platforms and Go releases.
package stats

import "math"

// RNG is a seedable xoshiro256** pseudo-random generator with helpers for
// the distributions the workload models need. The zero value is not valid;
// use NewRNG.
type RNG struct {
	s [4]uint64
	// cached second normal variate from the Box-Muller transform
	hasGauss bool
	gauss    float64
}

// NewRNG returns a generator seeded from seed via SplitMix64, matching the
// initialisation recommended by the xoshiro authors.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	for i := range r.s {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
	// xoshiro must not be seeded with all zeros; SplitMix64 cannot produce
	// four zero outputs in a row, but guard anyway.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 1
	}
	return r
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next raw 64-bit value.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Split derives an independent generator from the current stream. It is used
// to give each rollout worker its own deterministic stream.
func (r *RNG) Split() *RNG { return NewRNG(r.Uint64()) }

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) * (1.0 / (1 << 53))
}

// Uniform returns a uniform value in [lo, hi).
func (r *RNG) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63n returns a uniform int64 in [0, n). It panics if n <= 0.
func (r *RNG) Int63n(n int64) int64 {
	if n <= 0 {
		panic("stats: Int63n with non-positive n")
	}
	return int64(r.Uint64() % uint64(n))
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool { return r.Float64() < p }

// Normal returns a normally distributed value with the given mean and
// standard deviation, using the Box-Muller transform.
func (r *RNG) Normal(mean, stddev float64) float64 {
	if r.hasGauss {
		r.hasGauss = false
		return mean + stddev*r.gauss
	}
	var u, v, s float64
	for {
		u = 2*r.Float64() - 1
		v = 2*r.Float64() - 1
		s = u*u + v*v
		if s > 0 && s < 1 {
			break
		}
	}
	f := math.Sqrt(-2 * math.Log(s) / s)
	r.gauss = v * f
	r.hasGauss = true
	return mean + stddev*u*f
}

// Exponential returns an exponentially distributed value with the given mean.
func (r *RNG) Exponential(mean float64) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -mean * math.Log(u)
}

// Gamma returns a Gamma(shape, scale)-distributed value using the
// Marsaglia-Tsang squeeze method (with the Ahrens-Dieter boost for shape<1).
func (r *RNG) Gamma(shape, scale float64) float64 {
	if shape <= 0 || scale <= 0 {
		panic("stats: Gamma with non-positive parameters")
	}
	if shape < 1 {
		// boost: Gamma(a) = Gamma(a+1) * U^(1/a)
		u := r.Float64()
		for u == 0 {
			u = r.Float64()
		}
		return r.Gamma(shape+1, scale) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1.0 / math.Sqrt(9*d)
	for {
		x := r.Normal(0, 1)
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := r.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v * scale
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v * scale
		}
	}
}

// LogNormal returns exp(Normal(mu, sigma)).
func (r *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(r.Normal(mu, sigma))
}

// TwoStageUniform implements the two-stage uniform distribution from the
// Lublin-Feitelson workload model: with probability prob the value is uniform
// in [lo, med], otherwise uniform in [med, hi].
func (r *RNG) TwoStageUniform(lo, med, hi, prob float64) float64 {
	if r.Float64() < prob {
		return r.Uniform(lo, med)
	}
	return r.Uniform(med, hi)
}

// HyperGamma draws from a two-component gamma mixture: with probability p the
// sample comes from Gamma(a1, b1), otherwise from Gamma(a2, b2). This is the
// runtime distribution of the Lublin-Feitelson model.
func (r *RNG) HyperGamma(a1, b1, a2, b2, p float64) float64 {
	if r.Float64() < p {
		return r.Gamma(a1, b1)
	}
	return r.Gamma(a2, b2)
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}
