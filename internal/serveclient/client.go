// Package serveclient is the client side of the rlbf-serve HTTP API: a
// failover-aware submitter that spreads requests over every known replica
// endpoint, plus the load generator built on it.
//
// Failover policy: the client remembers the last endpoint that accepted a
// write and keeps using it. A connection failure, a 503 (follower or
// draining) or a 409 (fenced ex-primary) rotates to the next endpoint; a 503
// carrying an X-Rlbf-Leader header jumps straight to the advertised leader
// when it is one of the configured endpoints. Retry-After is honored as a
// backoff floor. Every submission should carry an idempotency key, so a
// retry that lands on the new primary after the old one crashed
// mid-acknowledgement deduplicates instead of double-enqueueing.
package serveclient

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/serve"
)

// Client is a multi-endpoint rlbf-serve API client. Safe for concurrent use.
type Client struct {
	endpoints []string
	hc        *http.Client
	preferred atomic.Int32
}

// New returns a client over the given base URLs (e.g. http://host:port).
// hc nil means http.DefaultClient.
func New(endpoints []string, hc *http.Client) *Client {
	if hc == nil {
		hc = http.DefaultClient
	}
	return &Client{endpoints: append([]string(nil), endpoints...), hc: hc}
}

// Endpoint returns the currently preferred endpoint.
func (c *Client) Endpoint() string { return c.endpoints[c.preferred.Load()] }

// rotate moves preference off a failed endpoint (CAS so concurrent failures
// advance once, not once per goroutine).
func (c *Client) rotate(from int32) {
	c.preferred.CompareAndSwap(from, (from+1)%int32(len(c.endpoints)))
}

// adopt jumps preference to the advertised leader, if configured.
func (c *Client) adopt(leader string) bool {
	for i, e := range c.endpoints {
		if e == leader {
			c.preferred.Store(int32(i))
			return true
		}
	}
	return false
}

// Result is the outcome of one HTTP attempt, before retry classification.
type Result struct {
	// Code is the HTTP status (0 on transport error).
	Code int
	// RetryAfter is the server-provided backoff floor, if any.
	RetryAfter time.Duration
	// Submit holds the decoded acknowledgement on 202.
	Submit *serve.SubmitResult
}

// failover reports whether an attempt outcome should move to another
// endpoint: transport failure, follower/draining (503), or fenced (409).
func failover(code int, err error) bool {
	return err != nil || code == http.StatusServiceUnavailable || code == http.StatusConflict
}

// SubmitOnce posts one submission to the preferred endpoint, following a
// leader hint or rotating on a failover-worthy outcome so the next attempt
// lands elsewhere. The caller owns retry pacing.
func (c *Client) SubmitOnce(req serve.JobRequest) (Result, error) {
	cur := c.preferred.Load()
	res, err := c.post(c.endpoints[cur], req)
	if failover(res.Code, err) {
		if res.leader == "" || !c.adopt(res.leader) {
			c.rotate(cur)
		}
	}
	return res.Result, err
}

// Submit posts one logical submission, retrying transport failures, 429 load
// shedding, 5xx and fenced 409s with jittered exponential backoff (10ms
// doubling to 1s, Retry-After honored as a floor) until the attempt budget or
// deadline runs out. jitter is called with the current backoff and returns
// the sleep to take; nil gets the default full-jitter policy seeded from the
// clock-free fallback (deterministic callers pass their own RNG).
func (c *Client) Submit(req serve.JobRequest, retries int, deadline time.Time, jitter func(time.Duration) time.Duration) (Result, int64, error) {
	if jitter == nil {
		jitter = func(d time.Duration) time.Duration { return d }
	}
	var nRetries int64
	backoff := 10 * time.Millisecond
	for {
		res, err := c.SubmitOnce(req)
		retryable := err != nil || res.Code == http.StatusTooManyRequests ||
			res.Code == http.StatusConflict || res.Code >= 500
		if !retryable || nRetries >= int64(retries) {
			return res, nRetries, err
		}
		d := jitter(backoff)
		if res.RetryAfter > d {
			d = res.RetryAfter
		}
		if !deadline.IsZero() && time.Now().Add(d).After(deadline) {
			return res, nRetries, err
		}
		time.Sleep(d)
		if backoff < time.Second {
			backoff *= 2
		}
		nRetries++
	}
}

type postResult struct {
	Result
	leader string
}

func (c *Client) post(base string, req serve.JobRequest) (postResult, error) {
	body, _ := json.Marshal(req)
	hreq, err := http.NewRequest(http.MethodPost, base+"/v1/jobs", bytes.NewReader(body))
	if err != nil {
		return postResult{}, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	if req.IdemKey != "" {
		hreq.Header.Set("Idempotency-Key", req.IdemKey)
	}
	resp, err := c.hc.Do(hreq)
	if err != nil {
		return postResult{}, err
	}
	defer drainClose(resp)
	out := postResult{
		Result: Result{Code: resp.StatusCode},
		leader: resp.Header.Get("X-Rlbf-Leader"),
	}
	if s := resp.Header.Get("Retry-After"); s != "" {
		if secs, err := strconv.Atoi(s); err == nil && secs > 0 {
			out.RetryAfter = time.Duration(secs) * time.Second
		}
	}
	if resp.StatusCode != http.StatusAccepted {
		return out, nil
	}
	var sr serve.SubmitResult
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		return out, err
	}
	out.Submit = &sr
	return out, nil
}

// Status fetches a job's status from the preferred endpoint (any replica can
// answer reads; a transport failure rotates).
func (c *Client) Status(id int) (*serve.JobStatus, error) {
	cur := c.preferred.Load()
	resp, err := c.hc.Get(fmt.Sprintf("%s/v1/jobs/%d", c.endpoints[cur], id))
	if err != nil {
		c.rotate(cur)
		return nil, err
	}
	defer drainClose(resp)
	var st serve.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Cancel cancels a job via the preferred endpoint, rotating on failover
// outcomes like SubmitOnce. It reports whether the daemon canceled the job.
func (c *Client) Cancel(id int) (bool, error) {
	cur := c.preferred.Load()
	req, err := http.NewRequest(http.MethodDelete, fmt.Sprintf("%s/v1/jobs/%d", c.endpoints[cur], id), nil)
	if err != nil {
		return false, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		c.rotate(cur)
		return false, err
	}
	defer drainClose(resp)
	if failover(resp.StatusCode, nil) {
		if leader := resp.Header.Get("X-Rlbf-Leader"); leader == "" || !c.adopt(leader) {
			c.rotate(cur)
		}
		return false, fmt.Errorf("serveclient: cancel: %s", resp.Status)
	}
	return resp.StatusCode == http.StatusOK, nil
}

// Statz fetches the daemon accounting from the preferred endpoint.
func (c *Client) Statz() (*serve.Stats, error) {
	resp, err := c.hc.Get(c.Endpoint() + "/statz")
	if err != nil {
		return nil, err
	}
	defer drainClose(resp)
	var st serve.Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, err
	}
	return &st, nil
}

func drainClose(resp *http.Response) {
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
}
