package serveclient

import (
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
	"repro/internal/serve"
	"repro/internal/stats"
)

// LoadConfig drives a load-generation run against one or more daemons.
type LoadConfig struct {
	// Endpoints are the daemon addresses, e.g. http://127.0.0.1:8080. With
	// more than one, submissions fail over between them (primary + standbys).
	Endpoints []string
	// Submitters is the number of concurrent client goroutines.
	Submitters int
	// Duration bounds the wall-clock run.
	Duration time.Duration
	// Rate is the target aggregate submission rate in jobs/second; 0 means
	// unpaced (each submitter loops as fast as the daemon replies).
	Rate float64
	// MaxProcs caps the processor width of generated jobs (default 8).
	MaxProcs int
	// MaxRuntime caps generated runtimes in simulated seconds (default 3600).
	MaxRuntime int64
	// StatusEvery issues a status query after every Nth submission per
	// worker (0 disables status traffic).
	StatusEvery int
	// CancelEvery cancels every Nth submitted job per worker (0 disables
	// cancellation traffic).
	CancelEvery int
	// Seed makes the generated workload reproducible.
	Seed uint64
	// Retries is the retry budget per logical submission: connection
	// failures, 5xx responses, 429 load shedding and 409 fencing are retried
	// with jittered exponential backoff (honoring Retry-After) up to this
	// many extra attempts, failing over between Endpoints. Every submission
	// carries an idempotency key, so a retry whose predecessor actually
	// landed cannot double-enqueue. 0 disables retries.
	Retries int
}

// LoadReport summarizes a load run from the client's side.
type LoadReport struct {
	Submitters    int          `json:"submitters"`
	DurationSec   float64      `json:"duration_sec"`
	Submitted     int64        `json:"submitted"`
	Rejected      int64        `json:"rejected"`
	Errors        int64        `json:"errors"`
	Retries       int64        `json:"retries"`
	Shed          int64        `json:"shed"`
	Duplicates    int64        `json:"duplicates"`
	StatusQueries int64        `json:"status_queries"`
	Cancels       int64        `json:"cancels"`
	Throughput    float64      `json:"throughput_jobs_per_sec"`
	SubmitP50Ms   float64      `json:"submit_p50_ms"`
	SubmitP90Ms   float64      `json:"submit_p90_ms"`
	SubmitP99Ms   float64      `json:"submit_p99_ms"`
	SubmitMaxMs   float64      `json:"submit_max_ms"`
	Server        *serve.Stats `json:"server,omitempty"`
}

// RunLoad floods the daemon(s) with concurrent submitters and reports
// client-observed latency quantiles plus the server's own accounting. This is
// the harness behind the serve-load and serve-failover CI gates: thousands of
// goroutines sharing one pooled HTTP client, each submitting a random but
// seed-reproducible job stream, optionally mixing in status and cancel
// traffic, and failing over between endpoints when the primary dies mid-run.
func RunLoad(cfg LoadConfig) (*LoadReport, error) {
	if len(cfg.Endpoints) == 0 {
		return nil, fmt.Errorf("serveclient: RunLoad needs at least one endpoint")
	}
	if cfg.Submitters < 1 {
		cfg.Submitters = 1
	}
	if cfg.MaxProcs < 1 {
		cfg.MaxProcs = 8
	}
	if cfg.MaxRuntime < 1 {
		cfg.MaxRuntime = 3600
	}
	hc := &http.Client{
		Timeout: 30 * time.Second,
		Transport: &http.Transport{
			MaxIdleConns:        cfg.Submitters,
			MaxIdleConnsPerHost: cfg.Submitters,
		},
	}
	cl := New(cfg.Endpoints, hc)
	// Client-side latency histogram: reuse the daemon's lock-free histogram
	// so thousands of submitters record without a contended mutex.
	hist := metrics.NewRegistry().NewHistogram("loadgen_submit_seconds", "client submit latency", nil)
	var submitted, rejected, errCount, statusQ, cancels, retries, shed, dups atomic.Int64

	var pace time.Duration
	if cfg.Rate > 0 {
		pace = time.Duration(float64(cfg.Submitters) / cfg.Rate * float64(time.Second))
	}
	deadline := time.Now().Add(cfg.Duration)
	var wg sync.WaitGroup
	for w := 0; w < cfg.Submitters; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := stats.NewRNG(cfg.Seed + uint64(w)*0x9e3779b97f4a7c15)
			if pace > 0 {
				// Stagger worker phases so paced submitters do not arrive in
				// lockstep bursts.
				time.Sleep(time.Duration(rng.Uint64() % uint64(pace)))
			}
			// Jitter in [backoff/2, 3*backoff/2) decorrelates the retry storm
			// a daemon restart would otherwise face.
			jitter := func(backoff time.Duration) time.Duration {
				return backoff/2 + time.Duration(rng.Uint64()%uint64(backoff))
			}
			n := 0
			for time.Now().Before(deadline) {
				req := serve.JobRequest{
					Procs:   1 + int(rng.Uint64()%uint64(cfg.MaxProcs)),
					Runtime: 1 + int64(rng.Uint64()%uint64(cfg.MaxRuntime)),
				}
				req.Request = req.Runtime + int64(rng.Uint64()%600)
				req.IdemKey = fmt.Sprintf("lg-%x-%d-%d", cfg.Seed, w, n)
				t0 := time.Now()
				res, nTries, err := cl.Submit(req, cfg.Retries, deadline, jitter)
				hist.Observe(time.Since(t0).Seconds())
				retries.Add(nTries)
				if res.Code == http.StatusTooManyRequests {
					shed.Add(1)
				}
				switch {
				case err != nil || res.Code == 0:
					errCount.Add(1)
				case res.Code == http.StatusAccepted:
					submitted.Add(1)
					if res.Submit != nil && res.Submit.Duplicate {
						dups.Add(1)
					}
				default:
					rejected.Add(1)
				}
				n++
				if err == nil && res.Submit != nil {
					if cfg.StatusEvery > 0 && n%cfg.StatusEvery == 0 {
						if _, serr := cl.Status(res.Submit.ID); serr == nil {
							statusQ.Add(1)
						}
					}
					if cfg.CancelEvery > 0 && n%cfg.CancelEvery == 0 {
						if _, cerr := cl.Cancel(res.Submit.ID); cerr == nil {
							cancels.Add(1)
						}
					}
				}
				if pace > 0 {
					time.Sleep(pace)
				}
			}
		}(w)
	}
	wg.Wait()

	rep := &LoadReport{
		Submitters:    cfg.Submitters,
		DurationSec:   cfg.Duration.Seconds(),
		Submitted:     submitted.Load(),
		Rejected:      rejected.Load(),
		Errors:        errCount.Load(),
		Retries:       retries.Load(),
		Shed:          shed.Load(),
		Duplicates:    dups.Load(),
		StatusQueries: statusQ.Load(),
		Cancels:       cancels.Load(),
		Throughput:    float64(submitted.Load()) / cfg.Duration.Seconds(),
		SubmitP50Ms:   hist.Quantile(0.5) * 1000,
		SubmitP90Ms:   hist.Quantile(0.9) * 1000,
		SubmitP99Ms:   hist.Quantile(0.99) * 1000,
		SubmitMaxMs:   hist.Max() * 1000,
	}
	if st, err := cl.Statz(); err == nil {
		rep.Server = st
	}
	return rep, nil
}
