package serveclient

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/backfill"
	"repro/internal/sched"
	"repro/internal/serve"
)

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

// newTestDaemon spins a real-clock daemon at high time scale behind an
// httptest server.
func newTestDaemon(t *testing.T, procs int, scale float64) (*serve.Scheduler, *httptest.Server) {
	t.Helper()
	s, err := serve.New(serve.Config{
		Name: "test", Procs: procs,
		Policy:     sched.FCFS{},
		Backfiller: backfill.NewConservative(backfill.RequestTime{}),
		TimeScale:  scale,
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	ts := httptest.NewServer(serve.NewServer(s, 64, 0).Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// TestServeLoadgenSmoke runs the load harness end to end against a live
// daemon: non-zero throughput, zero transport errors, sane latency report.
func TestServeLoadgenSmoke(t *testing.T) {
	s, ts := newTestDaemon(t, 256, 50000)
	rep, err := RunLoad(LoadConfig{
		Endpoints:   []string{ts.URL},
		Submitters:  32,
		Duration:    400 * time.Millisecond,
		StatusEvery: 3,
		CancelEvery: 7,
		Seed:        1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 {
		t.Fatalf("loadgen transport errors: %d", rep.Errors)
	}
	if rep.Submitted == 0 || rep.Throughput <= 0 {
		t.Fatalf("loadgen made no progress: %+v", rep)
	}
	if rep.SubmitP99Ms <= 0 || rep.SubmitP99Ms < rep.SubmitP50Ms {
		t.Fatalf("implausible latency report: %+v", rep)
	}
	if rep.Server == nil || rep.Server.Accepted != rep.Submitted {
		t.Fatalf("server accounting mismatch: client %d, server %+v", rep.Submitted, rep.Server)
	}
	st, err := s.Drain()
	if err != nil {
		t.Fatal(err)
	}
	if got := int64(len(st.Records) + len(st.Queued) + len(st.Pending) + len(st.Canceled)); got != rep.Submitted {
		t.Fatalf("drained state accounts for %d jobs, client submitted %d", got, rep.Submitted)
	}
}

// TestServeLoadgenRetries pins the client-side robustness satellite: 5xx
// responses are retried with backoff under stable idempotency keys, so a
// flaky front end costs retries, not errors or duplicates.
func TestServeLoadgenRetries(t *testing.T) {
	var mu sync.Mutex
	attempts := map[string]int{}
	var ids atomic.Int64
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/jobs" || r.Method != http.MethodPost {
			http.NotFound(w, r)
			return
		}
		key := r.Header.Get("Idempotency-Key")
		if key == "" {
			t.Error("submission without an idempotency key")
		}
		mu.Lock()
		attempts[key]++
		n := attempts[key]
		mu.Unlock()
		if n > 2 {
			t.Errorf("key %s attempted %d times; one failure should cost one retry", key, n)
		}
		if n == 1 {
			// First attempt of every logical submission fails.
			writeJSON(w, http.StatusInternalServerError, map[string]string{"error": "transient"})
			return
		}
		writeJSON(w, http.StatusAccepted, serve.SubmitResult{ID: int(ids.Add(1)), PredictedStart: -1})
	})
	ts := httptest.NewServer(h)
	defer ts.Close()

	rep, err := RunLoad(LoadConfig{
		Endpoints:  []string{ts.URL},
		Submitters: 4,
		Duration:   300 * time.Millisecond,
		Retries:    3,
		Seed:       7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 {
		t.Fatalf("errors %d with retries enabled, want 0", rep.Errors)
	}
	if rep.Submitted == 0 {
		t.Fatalf("no submissions made it through: %+v", rep)
	}
	if rep.Retries < rep.Submitted {
		t.Fatalf("retries %d < submitted %d; every submission needed one retry", rep.Retries, rep.Submitted)
	}
	// rep.Rejected is deliberately unchecked: submissions issued near the run
	// deadline fail their first attempt and cannot retry without sleeping
	// past the deadline, so the client correctly gives up on them and the
	// tail of the run accumulates rejections. The handler-side attempt
	// counter above is the real retry-discipline assertion.
}

// TestClientFailoverConverges pins the multi-endpoint contract: a client
// whose preferred endpoint answers follower-503 with a leader hint converges
// onto the primary within one retry, and a fenced 409 rotates too.
func TestClientFailoverConverges(t *testing.T) {
	var ids atomic.Int64
	var primaryURL atomic.Value
	primary := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusAccepted, serve.SubmitResult{ID: int(ids.Add(1)), PredictedStart: -1})
	}))
	defer primary.Close()
	primaryURL.Store(primary.URL)
	var followerHits atomic.Int64
	follower := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		followerHits.Add(1)
		w.Header().Set("Retry-After", "1")
		w.Header().Set("X-Rlbf-Leader", primaryURL.Load().(string))
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"error": "replica is a follower"})
	}))
	defer follower.Close()

	cl := New([]string{follower.URL, primary.URL}, nil)
	noSleep := func(time.Duration) time.Duration { return time.Nanosecond }
	for i := 0; i < 5; i++ {
		res, _, err := cl.Submit(serve.JobRequest{Procs: 1, Runtime: 10, IdemKey: "k"}, 3, time.Time{}, noSleep)
		if err != nil || res.Code != http.StatusAccepted {
			t.Fatalf("submit %d: code %d err %v", i, res.Code, err)
		}
	}
	if cl.Endpoint() != primary.URL {
		t.Fatalf("client did not converge on the leader: preferred %s", cl.Endpoint())
	}
	// The first submit hits the follower once and adopts the hint; later
	// submissions go straight to the primary.
	if h := followerHits.Load(); h != 1 {
		t.Fatalf("follower was hit %d times, want exactly 1 (leader hint should stick)", h)
	}

	// Fenced 409 from the adopted endpoint rotates away and retries land.
	fenced := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusConflict, map[string]string{"error": "fenced"})
	}))
	defer fenced.Close()
	cl2 := New([]string{fenced.URL, primary.URL}, nil)
	res, retries, err := cl2.Submit(serve.JobRequest{Procs: 1, Runtime: 10, IdemKey: "k2"}, 2, time.Time{}, noSleep)
	if err != nil || res.Code != http.StatusAccepted {
		t.Fatalf("submit via fenced endpoint: code %d retries %d err %v", res.Code, retries, err)
	}
}
