package metrics

import (
	"fmt"
	"sort"
	"strings"
)

// Class partitions jobs into the classic short/long x narrow/wide quadrants
// used to analyse which job classes a scheduling strategy helps or hurts.
type Class int

// Quadrants. "Short" and "narrow" are relative to the breakdown's medians.
const (
	ShortNarrow Class = iota
	ShortWide
	LongNarrow
	LongWide
	numClasses
)

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case ShortNarrow:
		return "short-narrow"
	case ShortWide:
		return "short-wide"
	case LongNarrow:
		return "long-narrow"
	case LongWide:
		return "long-wide"
	}
	return fmt.Sprintf("Class(%d)", int(c))
}

// Breakdown reports per-quadrant scheduling quality.
type Breakdown struct {
	// RuntimeSplit and ProcsSplit are the medians that divide the quadrants.
	RuntimeSplit int64
	ProcsSplit   int
	// Jobs and MeanBSLD/MeanWait are indexed by Class.
	Jobs     [numClasses]int
	MeanBSLD [numClasses]float64
	MeanWait [numClasses]float64
}

// ComputeBreakdown classifies every record against the median runtime and
// processor count and aggregates bsld and waits per quadrant.
func ComputeBreakdown(records []Record) Breakdown {
	var b Breakdown
	if len(records) == 0 {
		return b
	}
	runs := make([]int64, len(records))
	procs := make([]int, len(records))
	for i, r := range records {
		runs[i] = r.Job.Runtime
		procs[i] = r.Job.Procs
	}
	b.RuntimeSplit = medianInt64(runs)
	b.ProcsSplit = medianInt(procs)
	for _, r := range records {
		c := classify(r, b.RuntimeSplit, b.ProcsSplit)
		b.Jobs[c]++
		b.MeanBSLD[c] += r.BoundedSlowdown()
		b.MeanWait[c] += float64(r.Wait())
	}
	for c := Class(0); c < numClasses; c++ {
		if b.Jobs[c] > 0 {
			b.MeanBSLD[c] /= float64(b.Jobs[c])
			b.MeanWait[c] /= float64(b.Jobs[c])
		}
	}
	return b
}

func classify(r Record, runSplit int64, procSplit int) Class {
	short := r.Job.Runtime <= runSplit
	narrow := r.Job.Procs <= procSplit
	switch {
	case short && narrow:
		return ShortNarrow
	case short && !narrow:
		return ShortWide
	case !short && narrow:
		return LongNarrow
	default:
		return LongWide
	}
}

// String renders a small per-quadrant table.
func (b Breakdown) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "split: runtime %ds, procs %d\n", b.RuntimeSplit, b.ProcsSplit)
	for c := Class(0); c < numClasses; c++ {
		fmt.Fprintf(&sb, "  %-13s jobs=%-6d bsld=%-8.2f wait=%.0fs\n",
			c, b.Jobs[c], b.MeanBSLD[c], b.MeanWait[c])
	}
	return sb.String()
}

func medianInt64(xs []int64) int64 {
	s := append([]int64(nil), xs...)
	sort.Slice(s, func(a, b int) bool { return s[a] < s[b] })
	return s[(len(s)-1)/2]
}

func medianInt(xs []int) int {
	s := append([]int(nil), xs...)
	sort.Ints(s)
	return s[(len(s)-1)/2]
}
