package metrics

import (
	"strings"
	"testing"

	"repro/internal/trace"
)

func TestClassString(t *testing.T) {
	names := map[Class]string{
		ShortNarrow: "short-narrow", ShortWide: "short-wide",
		LongNarrow: "long-narrow", LongWide: "long-wide",
	}
	for c, want := range names {
		if c.String() != want {
			t.Fatalf("%d -> %q, want %q", c, c.String(), want)
		}
	}
	if !strings.Contains(Class(99).String(), "99") {
		t.Fatal("unknown class string")
	}
}

func TestComputeBreakdown(t *testing.T) {
	recs := []Record{
		rec(0, 0, 10, 1),       // short narrow
		rec(0, 0, 10, 100),     // short wide
		rec(0, 0, 1000, 1),     // long narrow
		rec(0, 100, 1000, 100), // long wide, waits 100
	}
	b := ComputeBreakdown(recs)
	total := 0
	for c := Class(0); c < numClasses; c++ {
		total += b.Jobs[c]
	}
	if total != 4 {
		t.Fatalf("breakdown lost jobs: %+v", b.Jobs)
	}
	if b.Jobs[LongWide] != 1 {
		t.Fatalf("long-wide count %d", b.Jobs[LongWide])
	}
	if b.MeanWait[LongWide] != 100 {
		t.Fatalf("long-wide wait %v", b.MeanWait[LongWide])
	}
	if b.MeanBSLD[ShortNarrow] < 1 {
		t.Fatal("bsld below 1")
	}
	s := b.String()
	if !strings.Contains(s, "short-narrow") || !strings.Contains(s, "split") {
		t.Fatalf("breakdown render: %q", s)
	}
}

func TestComputeBreakdownEmpty(t *testing.T) {
	b := ComputeBreakdown(nil)
	if b.Jobs[ShortNarrow] != 0 {
		t.Fatal("empty breakdown not empty")
	}
}

func TestKilledJobSemantics(t *testing.T) {
	// job runs 100s but requested only 60: killed at 60
	r := Record{Job: &trace.Job{Submit: 0, Runtime: 100, Request: 60, Procs: 1}, Start: 0, End: 60}
	if !r.Killed() {
		t.Fatal("over-limit job not reported killed")
	}
	if r.RunSeconds() != 60 {
		t.Fatalf("RunSeconds = %d", r.RunSeconds())
	}
	ok := Record{Job: &trace.Job{Submit: 0, Runtime: 50, Request: 60, Procs: 1}, Start: 0, End: 50}
	if ok.Killed() {
		t.Fatal("normal job reported killed")
	}
}
