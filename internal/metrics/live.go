package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// Live-service instrumentation for the serve daemon: lock-free counters,
// gauges and fixed-bucket histograms collected in a Registry and exported in
// the Prometheus text exposition format at /metrics. Everything here is
// deliberately dependency-free and cheap enough to sit on the submit path —
// an Observe is a handful of atomic adds.

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	name, help string
	v          atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add increases the counter by n (n must be >= 0 to keep it monotone).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

func (c *Counter) write(w io.Writer) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", c.name, c.help, c.name, c.name, c.v.Load())
}

// Gauge is an atomically settable instantaneous value.
type Gauge struct {
	name, help string
	v          atomic.Int64
}

// Set stores the current value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

func (g *Gauge) write(w io.Writer) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", g.name, g.help, g.name, g.name, g.v.Load())
}

// FGauge is an atomically settable float gauge, for instantaneous values
// that are naturally fractional (replication lag in seconds, lease age).
type FGauge struct {
	name, help string
	bits       atomic.Uint64 // float64 bits
}

// Set stores the current value.
func (g *FGauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the current value.
func (g *FGauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

func (g *FGauge) write(w io.Writer) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %s\n",
		g.name, g.help, g.name, g.name, strconv.FormatFloat(g.Value(), 'g', -1, 64))
}

// Histogram is a fixed-bucket cumulative histogram with atomic buckets. The
// bounds are upper bucket limits in ascending order; observations beyond the
// last bound land in an implicit overflow (+Inf) bucket. Quantiles are
// estimated by linear interpolation within the winning bucket, which is the
// standard Prometheus-side estimate — exact enough for the p50/p99
// decision-latency gates, and trend-stable because the bounds never move.
type Histogram struct {
	name, help string
	bounds     []float64
	buckets    []atomic.Int64 // len(bounds)+1, last is overflow
	count      atomic.Int64
	sumBits    atomic.Uint64 // float64 bits of the running sum
	maxBits    atomic.Uint64 // float64 bits of the running max
}

// DefLatencyBuckets spans 100 microseconds to 10 seconds, the range a
// scheduling decision under load can realistically land in.
var DefLatencyBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			break
		}
	}
	for {
		old := h.maxBits.Load()
		if v <= math.Float64frombits(old) && old != 0 {
			break
		}
		if h.maxBits.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Max returns the largest observation seen.
func (h *Histogram) Max() float64 { return math.Float64frombits(h.maxBits.Load()) }

// Quantile estimates the q-quantile (q in [0,1]) from the bucket counts,
// interpolating linearly within the winning bucket. Observations in the
// overflow bucket report the observed maximum. Returns 0 with no data.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	if rank < 1 {
		rank = 1
	}
	var cum int64
	lower := 0.0
	for i, bound := range h.bounds {
		c := h.buckets[i].Load()
		cum += c
		if float64(cum) >= rank {
			frac := (rank - float64(cum-c)) / float64(c)
			est := lower + (bound-lower)*frac
			// Interpolation can overshoot the observed maximum when the
			// winning bucket is sparsely filled; the max is a hard bound.
			if max := h.Max(); max > 0 && est > max {
				est = max
			}
			return est
		}
		lower = bound
	}
	return h.Max()
}

func (h *Histogram) write(w io.Writer) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", h.name, h.help, h.name)
	var cum int64
	for i, bound := range h.bounds {
		cum += h.buckets[i].Load()
		fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", h.name, strconv.FormatFloat(bound, 'g', -1, 64), cum)
	}
	cum += h.buckets[len(h.bounds)].Load()
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", h.name, cum)
	fmt.Fprintf(w, "%s_sum %s\n", h.name, strconv.FormatFloat(h.Sum(), 'g', -1, 64))
	fmt.Fprintf(w, "%s_count %d\n", h.name, h.count.Load())
}

// metric is anything the registry can render.
type metric interface {
	write(w io.Writer)
}

// Registry collects metrics for the /metrics endpoint. Registration takes a
// lock; the metrics themselves are lock-free afterwards.
type Registry struct {
	mu      sync.Mutex
	metrics []metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// NewCounter registers and returns a counter.
func (r *Registry) NewCounter(name, help string) *Counter {
	c := &Counter{name: name, help: help}
	r.add(c)
	return c
}

// NewGauge registers and returns a gauge.
func (r *Registry) NewGauge(name, help string) *Gauge {
	g := &Gauge{name: name, help: help}
	r.add(g)
	return g
}

// NewFGauge registers and returns a float gauge.
func (r *Registry) NewFGauge(name, help string) *FGauge {
	g := &FGauge{name: name, help: help}
	r.add(g)
	return g
}

// NewHistogram registers and returns a histogram over the given ascending
// upper bounds (nil means DefLatencyBuckets).
func (r *Registry) NewHistogram(name, help string, bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DefLatencyBuckets
	}
	h := &Histogram{name: name, help: help, bounds: bounds, buckets: make([]atomic.Int64, len(bounds)+1)}
	r.add(h)
	return h
}

func (r *Registry) add(m metric) {
	r.mu.Lock()
	r.metrics = append(r.metrics, m)
	r.mu.Unlock()
}

// WritePrometheus renders every registered metric in the Prometheus text
// exposition format, in registration order.
func (r *Registry) WritePrometheus(w io.Writer) {
	r.mu.Lock()
	ms := append([]metric(nil), r.metrics...)
	r.mu.Unlock()
	for _, m := range ms {
		m.write(w)
	}
}
