// Package metrics computes the job-scheduling quality metrics the paper
// reports, chiefly the average bounded job slowdown (bsld) of Feitelson &
// Rudolph with the conventional 10-second interactive threshold.
package metrics

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/trace"
)

// BoundedSlowdownThreshold is the interactive threshold tau (seconds) that
// keeps very short jobs from dominating the slowdown metric (§1).
const BoundedSlowdownThreshold = 10

// Record captures the scheduling outcome of one job.
type Record struct {
	Job   *trace.Job
	Start int64 // time the job began executing
	End   int64 // time the job finished (Start + Runtime)
}

// Wait returns the queueing delay of the job.
func (r Record) Wait() int64 { return r.Start - r.Job.Submit }

// Turnaround returns submission-to-completion time.
func (r Record) Turnaround() int64 { return r.End - r.Job.Submit }

// RunSeconds returns the time the job actually occupied the machine, which
// is the runtime unless the scheduler killed it at its wall-time limit.
func (r Record) RunSeconds() int64 { return r.End - r.Start }

// Killed reports whether the job exceeded its request and was terminated.
func (r Record) Killed() bool { return r.RunSeconds() < r.Job.Runtime }

// BoundedSlowdown returns max((wait+run)/max(run, tau), 1).
func (r Record) BoundedSlowdown() float64 {
	run := float64(r.RunSeconds())
	wait := float64(r.Wait())
	denom := math.Max(run, BoundedSlowdownThreshold)
	return math.Max((wait+run)/denom, 1)
}

// Slowdown returns the unbounded slowdown (turnaround/runtime), guarding
// against zero-length jobs.
func (r Record) Slowdown() float64 {
	run := math.Max(float64(r.RunSeconds()), 1)
	return float64(r.Turnaround()) / run
}

// Summary aggregates a full schedule.
type Summary struct {
	Jobs            int
	MeanBSLD        float64
	MedianBSLD      float64
	MaxBSLD         float64
	MeanWait        float64
	MeanTurnaround  float64
	Makespan        int64
	Utilization     float64 // fraction of proc-seconds busy over the makespan
	ViolationEvents int     // backfill actions that delayed the reserved job
}

// Summarize computes the aggregate metrics for a schedule run on a machine
// with the given processor count.
func Summarize(records []Record, procs int) Summary {
	s := Summary{Jobs: len(records)}
	if len(records) == 0 {
		return s
	}
	bslds := make([]float64, len(records))
	var firstSubmit, lastEnd int64
	firstSubmit = records[0].Job.Submit
	var procSeconds float64
	for i, r := range records {
		bslds[i] = r.BoundedSlowdown()
		s.MeanBSLD += bslds[i]
		s.MeanWait += float64(r.Wait())
		s.MeanTurnaround += float64(r.Turnaround())
		if r.Job.Submit < firstSubmit {
			firstSubmit = r.Job.Submit
		}
		if r.End > lastEnd {
			lastEnd = r.End
		}
		procSeconds += float64(r.Job.Procs) * float64(r.RunSeconds())
	}
	n := float64(len(records))
	s.MeanBSLD /= n
	s.MeanWait /= n
	s.MeanTurnaround /= n
	sort.Float64s(bslds)
	s.MedianBSLD = bslds[len(bslds)/2]
	s.MaxBSLD = bslds[len(bslds)-1]
	s.Makespan = lastEnd - firstSubmit
	if s.Makespan > 0 && procs > 0 {
		s.Utilization = procSeconds / (float64(s.Makespan) * float64(procs))
	}
	return s
}

// String renders the headline numbers.
func (s Summary) String() string {
	return fmt.Sprintf("jobs=%d bsld=%.2f (median %.2f, max %.2f) wait=%.0fs util=%.1f%%",
		s.Jobs, s.MeanBSLD, s.MedianBSLD, s.MaxBSLD, s.MeanWait, s.Utilization*100)
}
