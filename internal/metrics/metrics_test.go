package metrics

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/stats"
	"repro/internal/trace"
)

func rec(submit, start, run int64, procs int) Record {
	return Record{
		Job:   &trace.Job{Submit: submit, Runtime: run, Request: run, Procs: procs},
		Start: start,
		End:   start + run,
	}
}

func TestWaitTurnaround(t *testing.T) {
	r := rec(100, 150, 60, 2)
	if r.Wait() != 50 {
		t.Fatalf("Wait = %d", r.Wait())
	}
	if r.Turnaround() != 110 {
		t.Fatalf("Turnaround = %d", r.Turnaround())
	}
}

func TestBoundedSlowdownLongJob(t *testing.T) {
	// wait 100, run 100: (100+100)/100 = 2
	r := rec(0, 100, 100, 1)
	if got := r.BoundedSlowdown(); math.Abs(got-2) > 1e-12 {
		t.Fatalf("bsld = %v, want 2", got)
	}
}

func TestBoundedSlowdownShortJobUsesThreshold(t *testing.T) {
	// run 1s, wait 9s: (9+1)/max(1,10) = 1 -> bounded at threshold
	r := rec(0, 9, 1, 1)
	if got := r.BoundedSlowdown(); math.Abs(got-1) > 1e-12 {
		t.Fatalf("bsld = %v, want 1 (threshold-bounded)", got)
	}
	// run 1s, wait 99s: (99+1)/10 = 10
	r = rec(0, 99, 1, 1)
	if got := r.BoundedSlowdown(); math.Abs(got-10) > 1e-12 {
		t.Fatalf("bsld = %v, want 10", got)
	}
}

func TestBoundedSlowdownFloorsAtOne(t *testing.T) {
	r := rec(0, 0, 3, 1) // no wait, 3s run: (0+3)/10 = 0.3 -> floored to 1
	if got := r.BoundedSlowdown(); got != 1 {
		t.Fatalf("bsld = %v, want 1", got)
	}
}

// Property: bsld >= 1 always, and increases with wait time.
func TestBoundedSlowdownProperties(t *testing.T) {
	f := func(wait16, run16 uint16) bool {
		wait := int64(wait16)
		run := int64(run16%5000) + 1
		r := rec(0, wait, run, 1)
		b := r.BoundedSlowdown()
		if b < 1 {
			return false
		}
		r2 := rec(0, wait+100, run, 1)
		return r2.BoundedSlowdown() >= b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestSummarize(t *testing.T) {
	recs := []Record{
		rec(0, 0, 100, 2),   // bsld 1
		rec(0, 100, 100, 2), // bsld 2
	}
	s := Summarize(recs, 4)
	if s.Jobs != 2 {
		t.Fatalf("Jobs = %d", s.Jobs)
	}
	if math.Abs(s.MeanBSLD-1.5) > 1e-12 {
		t.Fatalf("MeanBSLD = %v, want 1.5", s.MeanBSLD)
	}
	if s.MaxBSLD != 2 {
		t.Fatalf("MaxBSLD = %v", s.MaxBSLD)
	}
	if s.Makespan != 200 {
		t.Fatalf("Makespan = %d", s.Makespan)
	}
	// proc-seconds = 2*100 + 2*100 = 400 over 4 procs * 200s = 800
	if math.Abs(s.Utilization-0.5) > 1e-12 {
		t.Fatalf("Utilization = %v, want 0.5", s.Utilization)
	}
	if s.MeanWait != 50 {
		t.Fatalf("MeanWait = %v", s.MeanWait)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil, 4)
	if s.Jobs != 0 || s.MeanBSLD != 0 {
		t.Fatalf("empty summary: %+v", s)
	}
	_ = s.String()
}

func TestSummarizeUtilizationBounded(t *testing.T) {
	rng := stats.NewRNG(3)
	f := func(n uint8) bool {
		m := int(n%30) + 1
		recs := make([]Record, m)
		clock := int64(0)
		for i := range recs {
			// sequential schedule on one processor: utilization <= 1
			run := rng.Int63n(100) + 1
			recs[i] = rec(clock, clock, run, 1)
			clock += run
		}
		s := Summarize(recs, 1)
		return s.Utilization <= 1.0000001 && s.Utilization > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
