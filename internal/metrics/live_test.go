package metrics

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("rlbf_test_total", "a counter")
	g := r.NewGauge("rlbf_test_depth", "a gauge")
	c.Inc()
	c.Add(4)
	g.Set(17)
	if c.Value() != 5 || g.Value() != 17 {
		t.Fatalf("counter=%d gauge=%d, want 5/17", c.Value(), g.Value())
	}
	var sb strings.Builder
	r.WritePrometheus(&sb)
	out := sb.String()
	for _, want := range []string{
		"# TYPE rlbf_test_total counter", "rlbf_test_total 5",
		"# TYPE rlbf_test_depth gauge", "rlbf_test_depth 17",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, out)
		}
	}
}

func TestHistogramQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("rlbf_test_latency_seconds", "latency", []float64{0.001, 0.01, 0.1, 1})
	// 90 fast observations and 10 slow ones: p50 in the first bucket, p99 in
	// the slow one.
	for i := 0; i < 90; i++ {
		h.Observe(0.0005)
	}
	for i := 0; i < 10; i++ {
		h.Observe(0.05)
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d, want 100", h.Count())
	}
	if got := h.Sum(); math.Abs(got-(90*0.0005+10*0.05)) > 1e-9 {
		t.Fatalf("sum = %v", got)
	}
	p50 := h.Quantile(0.5)
	if p50 <= 0 || p50 > 0.001 {
		t.Fatalf("p50 = %v, want within first bucket (0, 0.001]", p50)
	}
	p99 := h.Quantile(0.99)
	if p99 <= 0.01 || p99 > 0.1 {
		t.Fatalf("p99 = %v, want within (0.01, 0.1]", p99)
	}
	if h.Max() != 0.05 {
		t.Fatalf("max = %v, want 0.05", h.Max())
	}
}

func TestHistogramOverflowAndEmpty(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("rlbf_test_over", "overflow", []float64{0.001})
	if h.Quantile(0.99) != 0 {
		t.Fatalf("empty histogram quantile should be 0")
	}
	h.Observe(5)
	if got := h.Quantile(0.99); got != 5 {
		t.Fatalf("overflow quantile = %v, want max 5", got)
	}
	var sb strings.Builder
	r.WritePrometheus(&sb)
	if !strings.Contains(sb.String(), `rlbf_test_over_bucket{le="+Inf"} 1`) {
		t.Fatalf("missing +Inf bucket:\n%s", sb.String())
	}
}

func TestHistogramConcurrent(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("rlbf_test_conc", "concurrent", nil)
	var wg sync.WaitGroup
	const workers, per = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(float64(i%100) / 1000)
			}
		}(w)
	}
	wg.Wait()
	if h.Count() != workers*per {
		t.Fatalf("count = %d, want %d", h.Count(), workers*per)
	}
}

func TestFGauge(t *testing.T) {
	r := NewRegistry()
	g := r.NewFGauge("rlbf_test_lease_age_seconds", "an fgauge")
	if g.Value() != 0 {
		t.Fatalf("zero value = %v, want 0", g.Value())
	}
	g.Set(1.25)
	if g.Value() != 1.25 {
		t.Fatalf("value = %v, want 1.25", g.Value())
	}
	g.Set(0.5)
	var sb strings.Builder
	r.WritePrometheus(&sb)
	out := sb.String()
	for _, want := range []string{
		"# TYPE rlbf_test_lease_age_seconds gauge",
		"rlbf_test_lease_age_seconds 0.5",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, out)
		}
	}
}
