package sched

import (
	"math"
	"sort"

	"repro/internal/trace"
)

// Scenario layers production scheduling semantics — priority tiers and
// aging-based starvation bounds, per kube-batch's backfill/starvation design
// — on top of the paper's base policies. The zero value disables both, and
// every scenario-aware code path degenerates to the exact priority-unaware
// comparison in that case, which is what keeps the classic simulator
// byte-identical.
type Scenario struct {
	// Priorities enables tier ordering: a higher-Priority job ranks ahead of
	// any lower-Priority job regardless of base policy score.
	Priorities bool
	// StarvationBound B > 0 enables aging: a job whose wait reaches
	// B*max(Request,1) is starving. Starving jobs rank ahead of everything
	// non-starving (even higher tiers — the bound is an anti-starvation
	// guarantee, not a preference), and backfilling must preserve their
	// reservations, mirroring kube-batch's StarvationThreshold semantics.
	StarvationBound float64
}

// Enabled reports whether the scenario changes scheduling at all.
func (s Scenario) Enabled() bool { return s.Priorities || s.StarvationBound > 0 }

// Aging reports whether the starvation bound is active.
func (s Scenario) Aging() bool { return s.StarvationBound > 0 }

// TimeVarying reports whether queue order can change with the clock even
// under a static base policy. Aging is the only clock-dependent term.
func (s Scenario) TimeVarying() bool { return s.Aging() }

// StarvesAt returns the first instant at which j counts as starving, or
// math.MaxInt64 when aging is off.
func (s Scenario) StarvesAt(j *trace.Job) int64 {
	if !s.Aging() {
		return math.MaxInt64
	}
	req := j.Request
	if req < 1 {
		req = 1
	}
	d := int64(math.Ceil(s.StarvationBound * float64(req)))
	if d < 0 || j.Submit > math.MaxInt64-d { // overflow guard
		return math.MaxInt64
	}
	return j.Submit + d
}

// Starving reports whether j's wait has reached the starvation bound.
func (s Scenario) Starving(j *trace.Job, now int64) bool {
	return now >= s.StarvesAt(j)
}

// Less is the scenario queue order: starving jobs first, then priority tiers
// (higher first), then the canonical base order (score, submit, ID). With a
// zero scenario it is exactly Less, and with uniform priorities and no
// starving jobs it likewise reduces to Less — the degenerate-case identity
// the differential tests pin down.
func (s Scenario) Less(a, b *trace.Job, sa, sb float64, now int64) bool {
	if s.Aging() {
		as, bs := s.Starving(a, now), s.Starving(b, now)
		if as != bs {
			return as
		}
	}
	if s.Priorities && a.Priority != b.Priority {
		return a.Priority > b.Priority
	}
	return Less(a, b, sa, sb)
}

// scoredSc decorates a job with everything the scenario comparison needs so
// each term is computed once per sort, not O(n log n) times.
type scoredSc struct {
	job      *trace.Job
	score    float64
	starving bool
	pri      int
}

// SortScenario orders jobs in place by the scenario Less order, computing
// each job's score and starvation state exactly once. A disabled scenario
// routes to the classic Sort so the hot path is untouched.
func (s *Sorter) SortScenario(jobs []*trace.Job, scores []float64, p Policy, now int64, sc Scenario) {
	if !sc.Enabled() {
		s.Sort(jobs, scores, p, now)
		return
	}
	if scores != nil && len(scores) != len(jobs) {
		panic("sched: scores length does not match jobs")
	}
	if cap(s.scBuf) < len(jobs) {
		s.scBuf = make([]scoredSc, len(jobs))
	}
	buf := s.scBuf[:len(jobs)]
	for i, j := range jobs {
		buf[i] = scoredSc{job: j, score: p.Score(j, now), starving: sc.Starving(j, now), pri: j.Priority}
	}
	priorities := sc.Priorities
	sort.SliceStable(buf, func(a, b int) bool {
		if buf[a].starving != buf[b].starving {
			return buf[a].starving
		}
		if priorities && buf[a].pri != buf[b].pri {
			return buf[a].pri > buf[b].pri
		}
		return Less(buf[a].job, buf[b].job, buf[a].score, buf[b].score)
	})
	for i, e := range buf {
		jobs[i] = e.job
		if scores != nil {
			scores[i] = e.score
		}
	}
}
