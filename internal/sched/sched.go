// Package sched implements the base scheduling policies of Table 3 of the
// paper: FCFS, SJF, WFP3 and F1. A policy assigns every waiting job a score;
// the simulator runs the lowest-scoring job first.
package sched

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/trace"
)

// Policy orders the waiting queue. Lower Score runs first. Score may depend
// on the current time (WFP3's waiting-time term), so the simulator re-sorts
// at every scheduling event.
type Policy interface {
	Name() string
	Score(j *trace.Job, now int64) float64
}

// FCFS schedules jobs in submission order: score(t) = s_t.
type FCFS struct{}

// Name implements Policy.
func (FCFS) Name() string { return "FCFS" }

// Score implements Policy.
func (FCFS) Score(j *trace.Job, _ int64) float64 { return float64(j.Submit) }

// SJF runs the job with the shortest requested time first: score(t) = r_t.
type SJF struct{}

// Name implements Policy.
func (SJF) Name() string { return "SJF" }

// Score implements Policy.
func (SJF) Score(j *trace.Job, _ int64) float64 { return float64(j.Request) }

// WFP3 favours jobs with long waits, short requests and few processors
// (Tang et al. 2009): score(t) = -(w_t/r_t)^3 * n_t.
type WFP3 struct{}

// Name implements Policy.
func (WFP3) Name() string { return "WFP3" }

// Score implements Policy.
func (WFP3) Score(j *trace.Job, now int64) float64 {
	wait := float64(now - j.Submit)
	if wait < 0 {
		wait = 0
	}
	rt := math.Max(float64(j.Request), 1)
	ratio := wait / rt
	return -(ratio * ratio * ratio) * float64(j.Procs)
}

// F1 is the best non-linear-regression policy from Carastan-Santos & de
// Camargo (SC'17): score(t) = log10(r_t)*n_t + 870*log10(s_t).
type F1 struct{}

// Name implements Policy.
func (F1) Name() string { return "F1" }

// Score implements Policy.
func (F1) Score(j *trace.Job, _ int64) float64 {
	rt := math.Max(float64(j.Request), 1)
	st := math.Max(float64(j.Submit), 1) // log10 needs a positive argument
	return math.Log10(rt)*float64(j.Procs) + 870*math.Log10(st)
}

// ByName returns the policy with the given (case-sensitive) Table 3 name.
func ByName(name string) (Policy, error) {
	switch name {
	case "FCFS":
		return FCFS{}, nil
	case "SJF":
		return SJF{}, nil
	case "WFP3":
		return WFP3{}, nil
	case "F1":
		return F1{}, nil
	}
	return nil, fmt.Errorf("sched: unknown policy %q (want FCFS, SJF, WFP3 or F1)", name)
}

// All returns every Table 3 policy in the paper's order.
func All() []Policy { return []Policy{FCFS{}, SJF{}, WFP3{}, F1{}} }

// Sort orders jobs in place by ascending policy score, breaking ties by
// submission time then ID so that schedules are deterministic.
func Sort(jobs []*trace.Job, p Policy, now int64) {
	sort.SliceStable(jobs, func(a, b int) bool {
		sa, sb := p.Score(jobs[a], now), p.Score(jobs[b], now)
		if sa != sb {
			return sa < sb
		}
		if jobs[a].Submit != jobs[b].Submit {
			return jobs[a].Submit < jobs[b].Submit
		}
		return jobs[a].ID < jobs[b].ID
	})
}
