// Package sched implements the base scheduling policies of Table 3 of the
// paper: FCFS, SJF, WFP3 and F1. A policy assigns every waiting job a score;
// the simulator runs the lowest-scoring job first.
package sched

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/trace"
)

// Policy orders the waiting queue. Lower Score runs first. Score may depend
// on the current time (WFP3's waiting-time term); TimeVarying tells the
// simulator whether it does, so that static policies can keep an
// incrementally maintained sorted queue instead of re-sorting at every
// scheduling event.
type Policy interface {
	Name() string
	Score(j *trace.Job, now int64) float64
	// TimeVarying reports whether Score depends on the `now` argument. When
	// false, Score(j, t1) == Score(j, t2) for all t1, t2, and schedulers may
	// cache scores computed at any time.
	TimeVarying() bool
}

// FCFS schedules jobs in submission order: score(t) = s_t.
type FCFS struct{}

// Name implements Policy.
func (FCFS) Name() string { return "FCFS" }

// Score implements Policy.
func (FCFS) Score(j *trace.Job, _ int64) float64 { return float64(j.Submit) }

// TimeVarying implements Policy.
func (FCFS) TimeVarying() bool { return false }

// SJF runs the job with the shortest requested time first: score(t) = r_t.
type SJF struct{}

// Name implements Policy.
func (SJF) Name() string { return "SJF" }

// Score implements Policy.
func (SJF) Score(j *trace.Job, _ int64) float64 { return float64(j.Request) }

// TimeVarying implements Policy.
func (SJF) TimeVarying() bool { return false }

// WFP3 favours jobs with long waits, short requests and few processors
// (Tang et al. 2009): score(t) = -(w_t/r_t)^3 * n_t.
type WFP3 struct{}

// Name implements Policy.
func (WFP3) Name() string { return "WFP3" }

// Score implements Policy.
func (WFP3) Score(j *trace.Job, now int64) float64 {
	wait := float64(now - j.Submit)
	if wait < 0 {
		wait = 0
	}
	rt := math.Max(float64(j.Request), 1)
	ratio := wait / rt
	return -(ratio * ratio * ratio) * float64(j.Procs)
}

// TimeVarying implements Policy: the waiting-time term makes WFP3 scores
// clock-dependent.
func (WFP3) TimeVarying() bool { return true }

// F1 is the best non-linear-regression policy from Carastan-Santos & de
// Camargo (SC'17): score(t) = log10(r_t)*n_t + 870*log10(s_t).
type F1 struct{}

// Name implements Policy.
func (F1) Name() string { return "F1" }

// Score implements Policy.
func (F1) Score(j *trace.Job, _ int64) float64 {
	rt := math.Max(float64(j.Request), 1)
	st := math.Max(float64(j.Submit), 1) // log10 needs a positive argument
	return math.Log10(rt)*float64(j.Procs) + 870*math.Log10(st)
}

// TimeVarying implements Policy: F1 depends on the submission time, not the
// current time.
func (F1) TimeVarying() bool { return false }

// ByName returns the policy with the given (case-sensitive) Table 3 name.
func ByName(name string) (Policy, error) {
	switch name {
	case "FCFS":
		return FCFS{}, nil
	case "SJF":
		return SJF{}, nil
	case "WFP3":
		return WFP3{}, nil
	case "F1":
		return F1{}, nil
	}
	return nil, fmt.Errorf("sched: unknown policy %q (want FCFS, SJF, WFP3 or F1)", name)
}

// All returns every Table 3 policy in the paper's order.
func All() []Policy { return []Policy{FCFS{}, SJF{}, WFP3{}, F1{}} }

// Less is the canonical queue order: ascending policy score (sa, sb are the
// scores of a and b), breaking ties by submission time then ID so that
// schedules are deterministic. Every queue in the simulator — whether
// re-sorted per event or maintained incrementally — uses exactly this
// comparison, which is what keeps kernel variants bit-identical.
func Less(a, b *trace.Job, sa, sb float64) bool {
	if sa != sb {
		return sa < sb
	}
	if a.Submit != b.Submit {
		return a.Submit < b.Submit
	}
	return a.ID < b.ID
}

// scored decorates a job with its policy score so the score is computed
// exactly once per sort instead of O(n log n) times inside the comparator.
type scored struct {
	job   *trace.Job
	score float64
}

// Sorter sorts job queues with a reusable decoration buffer, avoiding the
// per-event allocation and repeated Score calls of the naive comparator
// sort. The zero value is ready to use; a Sorter is not goroutine-safe.
type Sorter struct {
	buf   []scored
	scBuf []scoredSc // scenario-decorated variant, see SortScenario
}

// Sort orders jobs in place by the canonical Less order, computing each
// job's score exactly once. When scores is non-nil it must have
// len(scores) == len(jobs) and receives the sorted jobs' scores (aligned
// index-for-index with the sorted queue).
func (s *Sorter) Sort(jobs []*trace.Job, scores []float64, p Policy, now int64) {
	if scores != nil && len(scores) != len(jobs) {
		panic("sched: scores length does not match jobs")
	}
	if cap(s.buf) < len(jobs) {
		s.buf = make([]scored, len(jobs))
	}
	buf := s.buf[:len(jobs)]
	for i, j := range jobs {
		buf[i] = scored{job: j, score: p.Score(j, now)}
	}
	sort.SliceStable(buf, func(a, b int) bool {
		return Less(buf[a].job, buf[b].job, buf[a].score, buf[b].score)
	})
	for i, e := range buf {
		jobs[i] = e.job
		if scores != nil {
			scores[i] = e.score
		}
	}
}

// Sort orders jobs in place by ascending policy score, breaking ties by
// submission time then ID so that schedules are deterministic. Hot paths
// should hold a Sorter instead to reuse its scratch buffer across events.
func Sort(jobs []*trace.Job, p Policy, now int64) {
	var s Sorter
	s.Sort(jobs, nil, p, now)
}
