package sched

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/stats"
	"repro/internal/trace"
)

func job(id int, submit, request int64, procs int) *trace.Job {
	return &trace.Job{ID: id, Submit: submit, Request: request, Runtime: request, Procs: procs}
}

func TestFCFSOrdersBySubmit(t *testing.T) {
	jobs := []*trace.Job{job(1, 300, 10, 1), job(2, 100, 999, 1), job(3, 200, 5, 1)}
	Sort(jobs, FCFS{}, 1000)
	if jobs[0].ID != 2 || jobs[1].ID != 3 || jobs[2].ID != 1 {
		t.Fatalf("FCFS order: %d %d %d", jobs[0].ID, jobs[1].ID, jobs[2].ID)
	}
}

func TestSJFOrdersByRequest(t *testing.T) {
	jobs := []*trace.Job{job(1, 0, 300, 1), job(2, 1, 100, 1), job(3, 2, 200, 1)}
	Sort(jobs, SJF{}, 1000)
	if jobs[0].ID != 2 || jobs[1].ID != 3 || jobs[2].ID != 1 {
		t.Fatalf("SJF order: %d %d %d", jobs[0].ID, jobs[1].ID, jobs[2].ID)
	}
}

func TestWFP3Formula(t *testing.T) {
	j := job(1, 100, 50, 4)
	// at now=200: wait=100, ratio=2, score = -(2^3)*4 = -32
	if got := (WFP3{}).Score(j, 200); math.Abs(got+32) > 1e-9 {
		t.Fatalf("WFP3 score = %v, want -32", got)
	}
	// negative wait clamps to 0
	if got := (WFP3{}).Score(j, 50); got != 0 {
		t.Fatalf("WFP3 score before submit = %v, want 0", got)
	}
}

func TestWFP3PrefersLongWaiters(t *testing.T) {
	longWait := job(1, 0, 100, 2)
	shortWait := job(2, 900, 100, 2)
	if (WFP3{}).Score(longWait, 1000) >= (WFP3{}).Score(shortWait, 1000) {
		t.Fatal("WFP3 must prefer the longer-waiting job")
	}
}

func TestF1Formula(t *testing.T) {
	j := job(1, 1000, 100, 8)
	want := math.Log10(100)*8 + 870*math.Log10(1000)
	if got := (F1{}).Score(j, 0); math.Abs(got-want) > 1e-9 {
		t.Fatalf("F1 score = %v, want %v", got, want)
	}
}

func TestF1HandlesZeroSubmit(t *testing.T) {
	j := job(1, 0, 100, 8)
	if got := (F1{}).Score(j, 0); math.IsInf(got, 0) || math.IsNaN(got) {
		t.Fatalf("F1 score at submit=0 is %v", got)
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"FCFS", "SJF", "WFP3", "F1"} {
		p, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if p.Name() != name {
			t.Fatalf("ByName(%q).Name() = %q", name, p.Name())
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

func TestAllHasFourPolicies(t *testing.T) {
	if got := len(All()); got != 4 {
		t.Fatalf("All() has %d policies, want 4", got)
	}
}

func TestSortDeterministicTieBreak(t *testing.T) {
	// equal scores: ties broken by submit then ID
	jobs := []*trace.Job{job(5, 10, 100, 1), job(2, 10, 100, 1), job(9, 5, 100, 1)}
	Sort(jobs, SJF{}, 0)
	if jobs[0].ID != 9 || jobs[1].ID != 2 || jobs[2].ID != 5 {
		t.Fatalf("tie-break order: %d %d %d", jobs[0].ID, jobs[1].ID, jobs[2].ID)
	}
}

func TestTimeVaryingCapability(t *testing.T) {
	for _, p := range Extended() {
		want := p.Name() == "WFP3"
		if got := p.TimeVarying(); got != want {
			t.Fatalf("%s.TimeVarying() = %v, want %v", p.Name(), got, want)
		}
	}
	// The capability must be truthful: a static policy's score cannot move
	// with the clock, a time-varying one must (for a waiting job).
	j := job(1, 100, 500, 4)
	for _, p := range Extended() {
		a, b := p.Score(j, 1000), p.Score(j, 5000)
		if p.TimeVarying() && a == b {
			t.Fatalf("%s claims time-varying but scores are clock-independent", p.Name())
		}
		if !p.TimeVarying() && a != b {
			t.Fatalf("%s claims static but Score(1000)=%v != Score(5000)=%v", p.Name(), a, b)
		}
	}
}

// The decorated Sorter must order exactly like the naive comparator sort and
// report scores aligned with the sorted queue.
func TestSorterMatchesNaiveSort(t *testing.T) {
	rng := stats.NewRNG(23)
	for _, p := range Extended() {
		for round := 0; round < 20; round++ {
			n := rng.Intn(40) + 2
			a := make([]*trace.Job, n)
			for i := range a {
				a[i] = job(i+1, rng.Int63n(1000), rng.Int63n(5000)+1, rng.Intn(64)+1)
			}
			b := append([]*trace.Job(nil), a...)
			now := int64(10000)
			Sort(a, p, now)

			var s Sorter
			scores := make([]float64, n)
			s.Sort(b, scores, p, now)
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("%s: Sorter order diverges from Sort at %d", p.Name(), i)
				}
				if scores[i] != p.Score(b[i], now) {
					t.Fatalf("%s: score %d misaligned: %v vs %v", p.Name(), i, scores[i], p.Score(b[i], now))
				}
			}
		}
	}
}

func TestSorterScratchReuseAcrossSizes(t *testing.T) {
	var s Sorter
	for _, n := range []int{17, 3, 29, 1, 0, 8} {
		jobs := make([]*trace.Job, n)
		for i := range jobs {
			jobs[i] = job(i+1, int64(100-i), int64(i*7+1), 1)
		}
		scores := make([]float64, n)
		s.Sort(jobs, scores, FCFS{}, 0)
		for i := 1; i < n; i++ {
			if scores[i-1] > scores[i] {
				t.Fatalf("n=%d: scores not sorted after scratch reuse", n)
			}
		}
	}
}

func TestSorterRejectsMisalignedScores(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched scores slice accepted")
		}
	}()
	var s Sorter
	s.Sort([]*trace.Job{job(1, 0, 1, 1)}, make([]float64, 2), FCFS{}, 0)
}

func TestLessTotalOrderTieBreaks(t *testing.T) {
	a, b := job(1, 10, 100, 1), job(2, 10, 100, 1)
	if !Less(a, b, 5, 5) || Less(b, a, 5, 5) {
		t.Fatal("ID tie-break broken")
	}
	c := job(3, 5, 100, 1)
	if !Less(c, a, 5, 5) {
		t.Fatal("submit tie-break broken")
	}
	if !Less(b, c, 4, 5) {
		t.Fatal("score must dominate tie-breaks")
	}
}

// Property: Sort produces a non-decreasing score sequence for every policy.
func TestSortMonotoneScores(t *testing.T) {
	rng := stats.NewRNG(17)
	for _, p := range All() {
		f := func(n uint8) bool {
			m := int(n%30) + 2
			jobs := make([]*trace.Job, m)
			for i := range jobs {
				jobs[i] = job(i+1, rng.Int63n(10000), rng.Int63n(5000)+1, rng.Intn(64)+1)
			}
			now := int64(20000)
			Sort(jobs, p, now)
			for i := 1; i < m; i++ {
				if p.Score(jobs[i-1], now) > p.Score(jobs[i], now) {
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
	}
}
