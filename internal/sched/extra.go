package sched

import (
	"math"

	"repro/internal/trace"
)

// The paper's Table 3 lists FCFS, SJF, WFP3 and F1. The F-family of learned
// priority functions from Carastan-Santos & de Camargo (SC'17) has three
// more members (F2-F4) that the RLScheduler line of work — which the paper
// builds on — also evaluates; they are provided here for completeness, along
// with SAF, the classic smallest-area heuristic. All follow the same
// convention: lower score runs first.

// F2 is score(t) = sqrt(r_t)*n_t + 25600*log10(s_t).
type F2 struct{}

// Name implements Policy.
func (F2) Name() string { return "F2" }

// Score implements Policy.
func (F2) Score(j *trace.Job, _ int64) float64 {
	rt := math.Max(float64(j.Request), 1)
	st := math.Max(float64(j.Submit), 1)
	return math.Sqrt(rt)*float64(j.Procs) + 25600*math.Log10(st)
}

// TimeVarying implements Policy.
func (F2) TimeVarying() bool { return false }

// F3 is score(t) = r_t*n_t + 6860000*log10(s_t).
type F3 struct{}

// Name implements Policy.
func (F3) Name() string { return "F3" }

// Score implements Policy.
func (F3) Score(j *trace.Job, _ int64) float64 {
	rt := math.Max(float64(j.Request), 1)
	st := math.Max(float64(j.Submit), 1)
	return rt*float64(j.Procs) + 6860000*math.Log10(st)
}

// TimeVarying implements Policy.
func (F3) TimeVarying() bool { return false }

// F4 is score(t) = r_t*sqrt(n_t) + 530000*log10(s_t).
type F4 struct{}

// Name implements Policy.
func (F4) Name() string { return "F4" }

// Score implements Policy.
func (F4) Score(j *trace.Job, _ int64) float64 {
	rt := math.Max(float64(j.Request), 1)
	st := math.Max(float64(j.Submit), 1)
	return rt*math.Sqrt(float64(j.Procs)) + 530000*math.Log10(st)
}

// TimeVarying implements Policy.
func (F4) TimeVarying() bool { return false }

// SAF (smallest area first) prioritises jobs by requested runtime x
// processors — the resource "area" the job will occupy.
type SAF struct{}

// Name implements Policy.
func (SAF) Name() string { return "SAF" }

// Score implements Policy.
func (SAF) Score(j *trace.Job, _ int64) float64 {
	return float64(j.Request) * float64(j.Procs)
}

// TimeVarying implements Policy.
func (SAF) TimeVarying() bool { return false }

// Extended returns every implemented policy: Table 3's four plus the
// F-family completions and SAF.
func Extended() []Policy {
	return append(All(), F2{}, F3{}, F4{}, SAF{})
}

// ByNameExtended resolves any implemented policy, including the non-Table 3
// extras.
func ByNameExtended(name string) (Policy, error) {
	if p, err := ByName(name); err == nil {
		return p, nil
	}
	switch name {
	case "F2":
		return F2{}, nil
	case "F3":
		return F3{}, nil
	case "F4":
		return F4{}, nil
	case "SAF":
		return SAF{}, nil
	}
	return ByName(name) // reuse the error message
}
