package sched

import (
	"math"
	"testing"
)

func TestF2Formula(t *testing.T) {
	j := job(1, 100, 400, 4)
	want := math.Sqrt(400)*4 + 25600*math.Log10(100)
	if got := (F2{}).Score(j, 0); math.Abs(got-want) > 1e-9 {
		t.Fatalf("F2 = %v, want %v", got, want)
	}
}

func TestF3Formula(t *testing.T) {
	j := job(1, 100, 400, 4)
	want := 400.0*4 + 6860000*math.Log10(100)
	if got := (F3{}).Score(j, 0); math.Abs(got-want) > 1e-9 {
		t.Fatalf("F3 = %v, want %v", got, want)
	}
}

func TestF4Formula(t *testing.T) {
	j := job(1, 100, 400, 4)
	want := 400*math.Sqrt(4) + 530000*math.Log10(100)
	if got := (F4{}).Score(j, 0); math.Abs(got-want) > 1e-9 {
		t.Fatalf("F4 = %v, want %v", got, want)
	}
}

func TestSAFOrdersByArea(t *testing.T) {
	small := job(1, 0, 100, 2) // area 200
	big := job(2, 0, 50, 100)  // area 5000
	if (SAF{}).Score(small, 0) >= (SAF{}).Score(big, 0) {
		t.Fatal("SAF must prefer the smaller-area job")
	}
}

func TestFFamilyHandlesZeroSubmit(t *testing.T) {
	j := job(1, 0, 100, 4)
	for _, p := range []Policy{F2{}, F3{}, F4{}} {
		if v := p.Score(j, 0); math.IsInf(v, 0) || math.IsNaN(v) {
			t.Fatalf("%s score at submit=0 is %v", p.Name(), v)
		}
	}
}

func TestExtendedContainsAll(t *testing.T) {
	ext := Extended()
	if len(ext) != 8 {
		t.Fatalf("Extended has %d policies, want 8", len(ext))
	}
	seen := map[string]bool{}
	for _, p := range ext {
		seen[p.Name()] = true
	}
	for _, want := range []string{"FCFS", "SJF", "WFP3", "F1", "F2", "F3", "F4", "SAF"} {
		if !seen[want] {
			t.Fatalf("Extended missing %s", want)
		}
	}
}

func TestByNameExtended(t *testing.T) {
	for _, name := range []string{"FCFS", "SJF", "WFP3", "F1", "F2", "F3", "F4", "SAF"} {
		p, err := ByNameExtended(name)
		if err != nil || p.Name() != name {
			t.Fatalf("ByNameExtended(%q) -> %v, %v", name, p, err)
		}
	}
	if _, err := ByNameExtended("nope"); err == nil {
		t.Fatal("unknown policy accepted")
	}
}
