package replica

import (
	"testing"
	"time"
)

func recsOf(ss ...string) [][]byte {
	out := make([][]byte, len(ss))
	for i, s := range ss {
		out[i] = []byte(s)
	}
	return out
}

func TestFeedPublishAndTail(t *testing.T) {
	f := NewFeed()
	f.Rotate(1, []byte(`{}`), 0, 0)
	f.Publish(recsOf("a", "b"), 2, 0xdead)

	b := f.WaitBatch(1, 0, 0)
	if b.SnapshotNeeded || b.Closed {
		t.Fatalf("batch at (1,0): %+v", b)
	}
	if b.Gen != 1 || b.Seq != 0 || len(b.Records) != 2 || b.HistCount != 2 || b.HistDigest != 0xdead {
		t.Fatalf("batch %+v", b)
	}
	// Caught up: an expired long-poll returns an empty liveness batch.
	b = f.WaitBatch(1, 2, time.Millisecond)
	if len(b.Records) != 0 || b.SnapshotNeeded || b.NextGen != 0 {
		t.Fatalf("caught-up batch %+v", b)
	}
	// A waiter parked mid-poll is woken by a publish.
	done := make(chan Batch, 1)
	go func() { done <- f.WaitBatch(1, 2, 2*time.Second) }()
	time.Sleep(10 * time.Millisecond)
	f.Publish(recsOf("c"), 3, 0xbeef)
	select {
	case b = <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("publish did not wake the waiter")
	}
	if len(b.Records) != 1 || string(b.Records[0]) != "c" || b.Seq != 2 {
		t.Fatalf("woken batch %+v", b)
	}
}

func TestFeedRotationServesPreviousGeneration(t *testing.T) {
	f := NewFeed()
	f.Rotate(1, []byte(`{"gen":1}`), 0, 0)
	f.Publish(recsOf("a", "b", "c"), 3, 0x1)
	f.Rotate(2, []byte(`{"gen":2}`), 3, 0x2)
	f.Publish(recsOf("d"), 4, 0x3)

	// A follower mid-generation-1 gets the remainder plus the rotation signal
	// with the hist cursor at the rotation point.
	b := f.WaitBatch(1, 1, 0)
	if b.SnapshotNeeded || len(b.Records) != 2 || b.NextGen != 2 || b.HistCount != 3 || b.HistDigest != 0x2 {
		t.Fatalf("prev-gen batch %+v", b)
	}
	// Fully caught up on gen 1: empty records, still the rotation signal.
	b = f.WaitBatch(1, 3, 0)
	if len(b.Records) != 0 || b.NextGen != 2 {
		t.Fatalf("prev-gen tail batch %+v", b)
	}
	// Gen 2 serves normally.
	b = f.WaitBatch(2, 0, 0)
	if len(b.Records) != 1 || string(b.Records[0]) != "d" {
		t.Fatalf("gen-2 batch %+v", b)
	}
	// Two rotations back is gone: bootstrap required.
	f.Rotate(3, []byte(`{"gen":3}`), 4, 0x4)
	b = f.WaitBatch(1, 0, 0)
	if !b.SnapshotNeeded {
		t.Fatalf("ancient position should need a snapshot, got %+v", b)
	}
	gen, snap, hc, hd := f.Snapshot()
	if gen != 3 || string(snap) != `{"gen":3}` || hc != 4 || hd != 0x4 {
		t.Fatalf("snapshot (%d, %s, %d, %x)", gen, snap, hc, hd)
	}
}

func TestFeedSeedResumesMidGeneration(t *testing.T) {
	f := NewFeed()
	// A restarted replica resumes generation 5 with 7 records already in its
	// local WAL; later publishes carry absolute sequence numbers.
	f.Seed(5, 7, 3, 0xabc)
	f.Publish(recsOf("h"), 4, 0xdef)

	if b := f.WaitBatch(5, 7, 0); len(b.Records) != 1 || b.Seq != 7 {
		t.Fatalf("mid-gen batch %+v", b)
	}
	// Positions before the seed base cannot be served.
	if b := f.WaitBatch(5, 3, 0); !b.SnapshotNeeded {
		t.Fatalf("pre-base position should need a snapshot, got %+v", b)
	}
	// No rotation snapshot exists for a seeded generation.
	if _, snap, _, _ := f.Snapshot(); snap != nil {
		t.Fatal("seeded feed must not serve a rotation snapshot")
	}
	// A position claiming records never published (zombie tail) is refused.
	if b := f.WaitBatch(5, 99, 0); !b.SnapshotNeeded {
		t.Fatalf("phantom position should need a snapshot, got %+v", b)
	}
}

func TestFeedWaitApplied(t *testing.T) {
	f := NewFeed()
	f.Rotate(1, []byte(`{}`), 0, 0)
	f.Publish(recsOf("a", "b"), 2, 0)

	window := time.Minute
	if f.HasFollower(window) {
		t.Fatal("no sessions yet")
	}
	if f.WaitApplied(1, 2, time.Millisecond, window) {
		t.Fatal("ack satisfied with no sessions")
	}
	f.Ack("s1", 1, 1)
	if !f.HasFollower(window) || f.Followers(window) != 1 {
		t.Fatal("session not counted")
	}
	if f.Lag(window) != 1 {
		t.Fatalf("lag %d, want 1", f.Lag(window))
	}
	// Ack arriving mid-wait satisfies the waiter.
	done := make(chan bool, 1)
	go func() { done <- f.WaitApplied(1, 2, 2*time.Second, window) }()
	time.Sleep(10 * time.Millisecond)
	f.Ack("s1", 1, 2)
	select {
	case ok := <-done:
		if !ok {
			t.Fatal("ack did not satisfy the wait")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("WaitApplied never returned")
	}
	// A session on a later generation satisfies any earlier-generation wait.
	f.Ack("s2", 2, 0)
	if !f.WaitApplied(1, 100, time.Millisecond, window) {
		t.Fatal("later-generation session should satisfy")
	}
	// Closing wakes waiters with failure.
	f2 := NewFeed()
	done2 := make(chan bool, 1)
	go func() { done2 <- f2.WaitApplied(1, 1, 2*time.Second, window) }()
	time.Sleep(10 * time.Millisecond)
	f2.Close()
	if ok := <-done2; ok {
		t.Fatal("closed feed satisfied an ack wait")
	}
}

func TestFeedClose(t *testing.T) {
	f := NewFeed()
	f.Rotate(1, []byte(`{}`), 0, 0)
	done := make(chan Batch, 1)
	go func() { done <- f.WaitBatch(1, 0, 5*time.Second) }()
	time.Sleep(10 * time.Millisecond)
	f.Close()
	select {
	case b := <-done:
		if !b.Closed {
			t.Fatalf("waiter got %+v, want Closed", b)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("close did not wake the waiter")
	}
	// Post-close operations are inert.
	f.Publish(recsOf("x"), 1, 0)
	if b := f.WaitBatch(1, 0, 0); !b.Closed {
		t.Fatalf("closed feed served %+v", b)
	}
}
