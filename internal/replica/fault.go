package replica

import (
	"bytes"
	"errors"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"
)

// FaultTransport is an http.RoundTripper double that injects the network
// failures a replication stream must survive: dropped requests, duplicated
// responses (an old batch delivered again), stalled chunks, and corrupted
// bodies. Faults fire on a countdown over stream requests, mirroring the
// FaultFS countdown style: DropEvery=5 drops every 5th stream request.
//
// Only /replica/stream requests are faulted; snapshot/history/health pass
// through, so tests can aim chaos at the tail protocol specifically.
type FaultTransport struct {
	// Inner performs the real round trips; nil means http.DefaultTransport.
	Inner http.RoundTripper

	// DropEvery returns a transport error on every Nth stream request.
	DropEvery int
	// DupEvery serves the previous stream response again (duplicate
	// delivery) on every Nth stream request, discarding the real one.
	DupEvery int
	// CorruptEvery flips one byte of the response body on every Nth
	// record-carrying stream response — the follower's frame checksums must
	// catch it. The countdown skips idle long-poll responses (empty bodies):
	// there is nothing to corrupt in them.
	CorruptEvery int
	// StallEvery sleeps StallFor before every Nth stream request.
	StallEvery int
	StallFor   time.Duration

	mu       sync.Mutex
	n        int
	nb       int // record-carrying responses seen (CorruptEvery countdown)
	requests int
	drops    int
	dups     int
	corrupts int
	stalls   int
	lastBody []byte
	lastHdr  http.Header
	lastCode int
}

// ErrInjectedDrop is the transport error returned for dropped requests.
var ErrInjectedDrop = errors.New("replica: injected network drop")

func fires(every, n int) bool { return every > 0 && n%every == 0 }

// RoundTrip implements http.RoundTripper.
func (t *FaultTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	inner := t.Inner
	if inner == nil {
		inner = http.DefaultTransport
	}
	if !strings.Contains(req.URL.Path, pathStream) {
		return inner.RoundTrip(req)
	}

	t.mu.Lock()
	t.n++
	t.requests++
	n := t.n
	stall := fires(t.StallEvery, n)
	drop := fires(t.DropEvery, n)
	dup := fires(t.DupEvery, n)
	t.mu.Unlock()

	if stall {
		t.mu.Lock()
		t.stalls++
		t.mu.Unlock()
		time.Sleep(t.StallFor)
	}
	if drop {
		t.mu.Lock()
		t.drops++
		t.mu.Unlock()
		return nil, ErrInjectedDrop
	}

	resp, err := inner.RoundTrip(req)
	if err != nil {
		return nil, err
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return nil, err
	}

	t.mu.Lock()
	if dup && t.lastHdr != nil {
		// Deliver the previous response again; the real one is discarded
		// and its records will be re-requested (at-least-once delivery).
		t.dups++
		dupResp := &http.Response{
			StatusCode: t.lastCode,
			Status:     http.StatusText(t.lastCode),
			Header:     t.lastHdr.Clone(),
			Body:       io.NopCloser(bytes.NewReader(t.lastBody)),
			Request:    req,
		}
		t.mu.Unlock()
		return dupResp, nil
	}
	t.lastBody = append([]byte(nil), body...)
	t.lastHdr = resp.Header.Clone()
	t.lastCode = resp.StatusCode
	if len(body) > 0 {
		t.nb++
		if fires(t.CorruptEvery, t.nb) {
			t.corrupts++
			body = append([]byte(nil), body...)
			body[len(body)/2] ^= 0x40
		}
	}
	t.mu.Unlock()

	resp.Body = io.NopCloser(bytes.NewReader(body))
	return resp, nil
}

// Counts reports how many stream requests were seen and how many faults of
// each kind fired.
func (t *FaultTransport) Counts() (requests, drops, dups, corrupts, stalls int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.requests, t.drops, t.dups, t.corrupts, t.stalls
}
