// Package replica implements warm-standby replication for the serve daemon.
//
// The primary publishes its command-WAL records into a Feed as it appends
// them; followers tail the feed over HTTP (long-poll, resumable by
// (generation, sequence) position) and apply the records into their own WAL
// and engine replica. Compactions rotate the feed to a new generation and
// carry the rotation snapshot, so a freshly attached follower can bootstrap
// from the snapshot plus the history log and then join the live tail.
//
// Every batch carries the primary's history cursor — the count of derived
// dispatch records and a chained CRC32C digest over their encoded bytes — as
// of the batch's end. A follower replays the batch, re-derives the same
// dispatch records through its own engine, and compares: any divergence is
// detected within one batch, not at the next failover.
//
// The WAL generation doubles as the fencing token. A follower promotes by
// rotating its WAL to generation+1 before accepting writes; a zombie primary
// restarted afterwards observes the higher generation during its handshake
// and refuses writes by construction.
package replica

import (
	"errors"
	"sync"
	"time"
)

// ErrClosed reports a feed that has been shut down (drain, crash teardown, or
// durability loss on the primary — a degraded primary must stop replicating,
// because its WAL no longer advances).
var ErrClosed = errors.New("replica: feed closed")

// Batch is one chunk of the replication stream.
type Batch struct {
	// Gen is the WAL generation the records belong to.
	Gen uint64
	// Seq is the index within Gen of the first record in Records.
	Seq int
	// Records holds encoded WAL payloads (without frame headers) in append
	// order. The follower appends them verbatim to its own WAL.
	Records [][]byte
	// HistCount and HistDigest describe the primary's derived dispatch
	// record stream as of the end of this batch: the number of history-log
	// records and the chained CRC32C digest over their encoded payloads.
	HistCount  int
	HistDigest uint32
	// NextGen, when non-zero, tells the follower to rotate its local WAL to
	// this generation after applying Records — the primary compacted.
	NextGen uint64
	// SnapshotNeeded reports that the requested position is no longer in
	// the feed; the follower must bootstrap from /replica/snapshot.
	SnapshotNeeded bool
	// Closed reports the feed has shut down.
	Closed bool
}

type session struct {
	gen     uint64
	applied int
	last    time.Time
}

// Feed is the primary-side replication buffer. It retains every published
// record of the current WAL generation plus the full previous generation (so
// a follower that is mid-generation when the primary compacts can finish it),
// bounded in practice by the compaction interval.
//
// All methods are safe for concurrent use; the scheduler's single-writer
// goroutine publishes, HTTP handler goroutines read.
type Feed struct {
	mu     sync.Mutex
	wake   chan struct{} // closed and replaced on every state change
	closed bool

	gen        uint64
	base       int // sequence number of recs[0]: 0 after a rotation, >0 when a restarted replica resumed mid-generation
	recs       [][]byte
	histCount  int
	histDigest uint32

	// Rotation snapshot for the current generation (state at Seq 0); nil on
	// a replica that resumed mid-generation (Seed), which then cannot serve
	// bootstraps until its next rotation.
	snap           []byte
	snapHistCount  int
	snapHistDigest uint32

	// Previous generation, retained for laggy followers. Its hist cursor is
	// the state at the rotation point (== snapHistCount/snapHistDigest).
	prevSet  bool
	prevGen  uint64
	prevBase int
	prevRecs [][]byte

	sessions map[string]*session
}

// NewFeed returns an empty feed. It serves SnapshotNeeded until the first
// Rotate seeds it with a generation and snapshot.
func NewFeed() *Feed {
	return &Feed{wake: make(chan struct{}), sessions: make(map[string]*session)}
}

func (f *Feed) broadcast() {
	close(f.wake)
	f.wake = make(chan struct{})
}

// Publish appends records to the current generation with the history cursor
// as of after the last of them. The feed takes ownership of recs and its
// payloads; the caller must not reuse them.
func (f *Feed) Publish(recs [][]byte, histCount int, histDigest uint32) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return
	}
	f.recs = append(f.recs, recs...)
	f.histCount = histCount
	f.histDigest = histDigest
	f.broadcast()
}

// Rotate starts a new generation: the primary compacted, snapshot is the
// rotation state (JSON) at the new generation's Seq 0, and the hist cursor is
// the state at the rotation point. The previous generation's records are
// retained for followers still finishing it.
func (f *Feed) Rotate(gen uint64, snapshot []byte, histCount int, histDigest uint32) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return
	}
	f.prevSet, f.prevGen, f.prevBase, f.prevRecs = f.gen != 0, f.gen, f.base, f.recs
	f.gen, f.base, f.recs = gen, 0, nil
	f.snap = snapshot
	f.snapHistCount, f.snapHistDigest = histCount, histDigest
	f.histCount, f.histDigest = histCount, histDigest
	f.broadcast()
}

// Seed primes the feed of a replica that resumed an existing generation
// mid-stream (follower restart): subsequent publishes carry sequence numbers
// from base up. No rotation snapshot exists for it, so bootstrap serving
// stays unavailable until the next Rotate.
func (f *Feed) Seed(gen uint64, base int, histCount int, histDigest uint32) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return
	}
	f.gen, f.base, f.recs = gen, base, nil
	f.snap = nil
	f.histCount, f.histDigest = histCount, histDigest
	f.broadcast()
}

// Snapshot returns the current generation's rotation snapshot and its hist
// cursor, for follower bootstrap. The snapshot is nil before the first
// Rotate.
func (f *Feed) Snapshot() (gen uint64, snapshot []byte, histCount int, histDigest uint32) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.gen, f.snap, f.snapHistCount, f.snapHistDigest
}

// Gen returns the current generation.
func (f *Feed) Gen() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.gen
}

// tryBatch returns (batch, false) when there is something to report now, or
// (zero, true) when the caller should wait for new records.
func (f *Feed) tryBatch(gen uint64, seq int) (Batch, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return Batch{Closed: true}, false
	}
	switch {
	case gen == f.gen:
		i := seq - f.base
		if i < 0 || i > len(f.recs) {
			// Either the follower wants records from before this replica
			// resumed, or it claims records never published (a zombie
			// primary's unreplicated tail). Force a fresh bootstrap rather
			// than guessing.
			return Batch{SnapshotNeeded: true}, false
		}
		if i == len(f.recs) {
			return Batch{}, true // caught up; wait
		}
		return Batch{
			Gen: gen, Seq: seq, Records: f.recs[i:],
			HistCount: f.histCount, HistDigest: f.histDigest,
		}, false
	case f.prevSet && gen == f.prevGen:
		i := seq - f.prevBase
		if i < 0 || i > len(f.prevRecs) {
			return Batch{SnapshotNeeded: true}, false
		}
		// Serve the remainder of the finished generation (possibly empty)
		// and tell the follower to rotate. The hist cursor is the state at
		// the rotation point, which is exactly the end of this batch.
		return Batch{
			Gen: gen, Seq: seq, Records: f.prevRecs[i:],
			HistCount: f.snapHistCount, HistDigest: f.snapHistDigest,
			NextGen: f.gen,
		}, false
	default:
		return Batch{SnapshotNeeded: true}, false
	}
}

// WaitBatch returns the next batch at (gen, seq), long-polling up to wait for
// new records when the follower is caught up. A caught-up poll that times out
// returns an empty batch with Gen set — still a liveness signal.
func (f *Feed) WaitBatch(gen uint64, seq int, wait time.Duration) Batch {
	deadline := time.Now().Add(wait)
	for {
		f.mu.Lock()
		wake := f.wake
		f.mu.Unlock()
		b, retry := f.tryBatch(gen, seq)
		if !retry {
			return b
		}
		remain := time.Until(deadline)
		if remain <= 0 {
			return Batch{Gen: gen, Seq: seq}
		}
		t := time.NewTimer(remain)
		select {
		case <-wake:
		case <-t.C:
		}
		t.Stop()
	}
}

// Ack records a follower session's durably applied position. Sessions are
// keyed by an opaque follower-chosen ID and expire implicitly: HasFollower
// and WaitApplied only count sessions heard from recently.
func (f *Feed) Ack(id string, gen uint64, applied int) {
	if id == "" {
		return
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	s := f.sessions[id]
	if s == nil {
		s = &session{}
		f.sessions[id] = s
	}
	s.gen, s.applied, s.last = gen, applied, time.Now()
	f.broadcast()
}

func (f *Feed) appliedSatisfied(gen uint64, count int, window time.Duration) bool {
	now := time.Now()
	for _, s := range f.sessions {
		if now.Sub(s.last) > window {
			continue
		}
		if s.gen > gen || (s.gen == gen && s.applied >= count) {
			return true
		}
	}
	return false
}

// WaitApplied blocks until some live follower session has durably applied at
// least count records of gen (or any record of a later generation), or the
// timeout expires. It reports whether the ack arrived in time. This is the
// semi-synchronous ack: the primary calls it after fsyncing a client-visible
// append, so an acked job survives the loss of the primary's disk whenever a
// healthy follower is attached.
func (f *Feed) WaitApplied(gen uint64, count int, timeout, window time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for {
		f.mu.Lock()
		wake := f.wake
		closed := f.closed
		ok := f.appliedSatisfied(gen, count, window)
		f.mu.Unlock()
		if ok {
			return true
		}
		if closed {
			return false
		}
		remain := time.Until(deadline)
		if remain <= 0 {
			return false
		}
		t := time.NewTimer(remain)
		select {
		case <-wake:
		case <-t.C:
		}
		t.Stop()
	}
}

// HasFollower reports whether any session has been heard from within window.
func (f *Feed) HasFollower(window time.Duration) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	now := time.Now()
	for _, s := range f.sessions {
		if now.Sub(s.last) <= window {
			return true
		}
	}
	return false
}

// Followers counts sessions heard from within window.
func (f *Feed) Followers(window time.Duration) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	n, now := 0, time.Now()
	for _, s := range f.sessions {
		if now.Sub(s.last) <= window {
			n++
		}
	}
	return n
}

// Lag returns the current generation's published record count minus the most
// advanced live session's applied count (0 with no sessions, which reads as
// "nothing confirmed behind" rather than "caught up").
func (f *Feed) Lag(window time.Duration) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	total := f.base + len(f.recs)
	best, have := 0, false
	now := time.Now()
	for _, s := range f.sessions {
		if now.Sub(s.last) > window {
			continue
		}
		switch {
		case s.gen == f.gen:
			if !have || s.applied > best {
				best, have = s.applied, true
			}
		case s.gen > f.gen:
			best, have = total, true
		}
	}
	if !have || best > total {
		return 0
	}
	return total - best
}

// Close shuts the feed down, waking every waiter with Closed batches.
func (f *Feed) Close() {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return
	}
	f.closed = true
	f.broadcast()
}
