package replica

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"repro/internal/wal"
)

// HTTP wire protocol. Three endpoints on the primary:
//
//	GET /replica/stream?gen=G&seq=N&session=S&applied=A&wait_ms=W
//	    Long-poll tail. 200 with WAL-framed record payloads in the body and
//	    batch metadata in X-Rlbf-* headers; 409 when the position is not in
//	    the feed (bootstrap needed); 503 when the feed is closed. The
//	    session/applied pair doubles as the durability ack that drives the
//	    primary's semi-sync submit path.
//	GET /replica/snapshot
//	    Rotation snapshot of the current generation (JSON), for bootstrap.
//	GET /replica/history?to=H
//	    The first H history-log records, WAL-framed, so a bootstrapping
//	    follower can verify and extend the derived record stream.
//
// Record payloads reuse the WAL's length+CRC32C framing (wal.AppendFrame /
// wal.ParseFrames): a corrupted chunk fails checksum verification on the
// follower and is re-requested, exactly like a torn disk frame would be
// truncated.

const (
	pathStream   = "/replica/stream"
	pathSnapshot = "/replica/snapshot"
	pathHistory  = "/replica/history"

	hdrGen        = "X-Rlbf-Gen"
	hdrSeq        = "X-Rlbf-Seq"
	hdrHistCount  = "X-Rlbf-Hist-Count"
	hdrHistDigest = "X-Rlbf-Hist-Digest"
	hdrNextGen    = "X-Rlbf-Next-Gen"

	// maxWait caps the server-side long-poll so follower sessions refresh
	// their liveness at least this often even when the primary is idle.
	maxWait = time.Second
)

// Health is the /healthz wire body, shared by the serve daemon (writer) and
// the replication/fencing probes (readers).
type Health struct {
	Status  string  `json:"status"`
	Reason  string  `json:"reason,omitempty"`
	Name    string  `json:"name"`
	Role    string  `json:"role"`
	Gen     uint64  `json:"gen"`
	Applied int64   `json:"applied"` // WAL records in the current generation
	LeaseMS float64 `json:"lease_ms,omitempty"`
}

// HistorySource serves the history-log prefix for follower bootstrap.
type HistorySource interface {
	// HistoryFrames returns the first `to` history records as encoded
	// payloads (it may return more than requested; the client truncates).
	HistoryFrames(to int) ([][]byte, error)
}

// Handler serves the replication endpoints for a primary's feed.
type Handler struct {
	feed *Feed
	hist HistorySource
}

// NewHandler returns a handler over feed and hist.
func NewHandler(feed *Feed, hist HistorySource) *Handler {
	return &Handler{feed: feed, hist: hist}
}

// Register mounts the replication endpoints on mux.
func (h *Handler) Register(mux *http.ServeMux) {
	mux.HandleFunc(pathStream, h.handleStream)
	mux.HandleFunc(pathSnapshot, h.handleSnapshot)
	mux.HandleFunc(pathHistory, h.handleHistory)
}

func queryInt(q url.Values, key string) (int, error) {
	v := q.Get(key)
	if v == "" {
		return 0, nil
	}
	return strconv.Atoi(v)
}

func (h *Handler) handleStream(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	gen, err1 := strconv.ParseUint(q.Get("gen"), 10, 64)
	seq, err2 := queryInt(q, "seq")
	applied, err3 := queryInt(q, "applied")
	waitMS, err4 := queryInt(q, "wait_ms")
	if err1 != nil || err2 != nil || err3 != nil || err4 != nil || seq < 0 {
		http.Error(w, "bad stream position", http.StatusBadRequest)
		return
	}
	wait := min(time.Duration(waitMS)*time.Millisecond, maxWait)
	h.feed.Ack(q.Get("session"), gen, applied)
	b := h.feed.WaitBatch(gen, seq, wait)
	switch {
	case b.Closed:
		http.Error(w, "feed closed", http.StatusServiceUnavailable)
	case b.SnapshotNeeded:
		http.Error(w, "position not in feed; bootstrap from snapshot", http.StatusConflict)
	default:
		w.Header().Set(hdrGen, strconv.FormatUint(b.Gen, 10))
		w.Header().Set(hdrSeq, strconv.Itoa(b.Seq))
		w.Header().Set(hdrHistCount, strconv.Itoa(b.HistCount))
		w.Header().Set(hdrHistDigest, strconv.FormatUint(uint64(b.HistDigest), 16))
		if b.NextGen != 0 {
			w.Header().Set(hdrNextGen, strconv.FormatUint(b.NextGen, 10))
		}
		var buf []byte
		for _, rec := range b.Records {
			buf = wal.AppendFrame(buf, rec)
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Write(buf)
	}
}

// SnapshotReply is the /replica/snapshot body.
type SnapshotReply struct {
	Gen        uint64          `json:"gen"`
	HistCount  int             `json:"hist_count"`
	HistDigest uint32          `json:"hist_digest"`
	State      json.RawMessage `json:"state"`
}

func (h *Handler) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	gen, snap, hc, hd := h.feed.Snapshot()
	if snap == nil {
		http.Error(w, "no snapshot yet", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(SnapshotReply{Gen: gen, HistCount: hc, HistDigest: hd, State: snap})
}

func (h *Handler) handleHistory(w http.ResponseWriter, r *http.Request) {
	to, err := queryInt(r.URL.Query(), "to")
	if err != nil || to < 0 {
		http.Error(w, "bad history bound", http.StatusBadRequest)
		return
	}
	frames, err := h.hist.HistoryFrames(to)
	if err != nil {
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	}
	if len(frames) > to {
		frames = frames[:to]
	}
	var buf []byte
	for _, rec := range frames {
		buf = wal.AppendFrame(buf, rec)
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(buf)
}

// Client is a follower's view of one primary endpoint.
type Client struct {
	// Base is the primary's base URL (e.g. http://host:port).
	Base string
	// Session identifies this follower in durability acks.
	Session string
	// HTTP is the transport; nil means http.DefaultClient. Tests inject a
	// FaultTransport here.
	HTTP *http.Client
}

func (c *Client) client() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

func (c *Client) get(path string) (*http.Response, error) {
	return c.client().Get(strings.TrimRight(c.Base, "/") + path)
}

// Stream fetches the next batch at (gen, seq), reporting applied as this
// follower's durably applied count of gen. A 409 maps to SnapshotNeeded; any
// framing or checksum error is returned as err for the caller to retry.
func (c *Client) Stream(gen uint64, seq, applied int, wait time.Duration) (*Batch, error) {
	path := fmt.Sprintf("%s?gen=%d&seq=%d&applied=%d&session=%s&wait_ms=%d",
		pathStream, gen, seq, applied, url.QueryEscape(c.Session), wait.Milliseconds())
	resp, err := c.get(path)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return nil, err
	}
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusConflict:
		return &Batch{SnapshotNeeded: true}, nil
	default:
		return nil, fmt.Errorf("replica: stream: %s: %s", resp.Status, strings.TrimSpace(string(body)))
	}
	b := &Batch{}
	if b.Gen, err = strconv.ParseUint(resp.Header.Get(hdrGen), 10, 64); err != nil {
		return nil, fmt.Errorf("replica: stream: bad %s header: %w", hdrGen, err)
	}
	if b.Seq, err = strconv.Atoi(resp.Header.Get(hdrSeq)); err != nil {
		return nil, fmt.Errorf("replica: stream: bad %s header: %w", hdrSeq, err)
	}
	if b.HistCount, err = strconv.Atoi(resp.Header.Get(hdrHistCount)); err != nil {
		return nil, fmt.Errorf("replica: stream: bad %s header: %w", hdrHistCount, err)
	}
	hd, err := strconv.ParseUint(resp.Header.Get(hdrHistDigest), 16, 32)
	if err != nil {
		return nil, fmt.Errorf("replica: stream: bad %s header: %w", hdrHistDigest, err)
	}
	b.HistDigest = uint32(hd)
	if ng := resp.Header.Get(hdrNextGen); ng != "" {
		if b.NextGen, err = strconv.ParseUint(ng, 10, 64); err != nil {
			return nil, fmt.Errorf("replica: stream: bad %s header: %w", hdrNextGen, err)
		}
	}
	if b.Records, err = wal.ParseFrames(body); err != nil {
		return nil, fmt.Errorf("replica: stream: %w", err)
	}
	return b, nil
}

// Snapshot fetches the bootstrap snapshot.
func (c *Client) Snapshot() (*SnapshotReply, error) {
	resp, err := c.get(pathSnapshot)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("replica: snapshot: %s", resp.Status)
	}
	var sn SnapshotReply
	if err := json.NewDecoder(io.LimitReader(resp.Body, 256<<20)).Decode(&sn); err != nil {
		return nil, fmt.Errorf("replica: snapshot: %w", err)
	}
	return &sn, nil
}

// History fetches the first `to` history records.
func (c *Client) History(to int) ([][]byte, error) {
	resp, err := c.get(fmt.Sprintf("%s?to=%d", pathHistory, to))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("replica: history: %s", resp.Status)
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<30))
	if err != nil {
		return nil, err
	}
	frames, err := wal.ParseFrames(body)
	if err != nil {
		return nil, fmt.Errorf("replica: history: %w", err)
	}
	return frames, nil
}

// Health probes the peer's /healthz.
func (c *Client) Health() (*Health, error) {
	resp, err := c.get("/healthz")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var h Health
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&h); err != nil {
		return nil, fmt.Errorf("replica: healthz: %w", err)
	}
	return &h, nil
}
