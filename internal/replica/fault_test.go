package replica

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/wal"
)

// histStub serves a fixed history prefix.
type histStub struct{ frames [][]byte }

func (h histStub) HistoryFrames(to int) ([][]byte, error) { return h.frames, nil }

func newStreamServer(t *testing.T) (*Feed, *httptest.Server) {
	t.Helper()
	f := NewFeed()
	mux := http.NewServeMux()
	NewHandler(f, histStub{}).Register(mux)
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return f, ts
}

// TestClientStreamRoundTrip pins the wire protocol end to end: framed
// payloads, batch headers, 409 on unknown positions.
func TestClientStreamRoundTrip(t *testing.T) {
	f, ts := newStreamServer(t)
	f.Rotate(3, []byte(`{}`), 1, 0xaa)
	f.Publish(recsOf("alpha", "beta"), 2, 0xbb)

	cl := &Client{Base: ts.URL, Session: "s1"}
	b, err := cl.Stream(3, 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if b.Gen != 3 || b.Seq != 0 || len(b.Records) != 2 ||
		string(b.Records[0]) != "alpha" || string(b.Records[1]) != "beta" ||
		b.HistCount != 2 || b.HistDigest != 0xbb {
		t.Fatalf("batch %+v", b)
	}
	// Unknown generation → SnapshotNeeded via 409.
	b, err = cl.Stream(99, 0, 0, 0)
	if err != nil || !b.SnapshotNeeded {
		t.Fatalf("unknown gen: batch %+v err %v", b, err)
	}
	// The session ack registered through the stream request.
	if !f.HasFollower(replWindow) {
		t.Fatal("stream request did not register the session")
	}
}

const replWindow = 10 * 1e9 // 10s in time.Duration units

// TestFaultTransportDropDupCorrupt pins each fault kind's observable effect:
// drops surface as transport errors, duplicates replay the previous response,
// corruption is caught by the frame checksums — never silently accepted.
func TestFaultTransportDropDupCorrupt(t *testing.T) {
	f, ts := newStreamServer(t)
	f.Rotate(1, []byte(`{}`), 0, 0)
	f.Publish(recsOf("r0", "r1", "r2"), 3, 0x1)

	t.Run("drop", func(t *testing.T) {
		ft := &FaultTransport{DropEvery: 1}
		cl := &Client{Base: ts.URL, HTTP: &http.Client{Transport: ft}}
		if _, err := cl.Stream(1, 0, 0, 0); !errors.Is(err, ErrInjectedDrop) {
			t.Fatalf("err %v, want injected drop", err)
		}
	})
	t.Run("dup", func(t *testing.T) {
		ft := &FaultTransport{DupEvery: 2} // every 2nd request replays the previous response
		cl := &Client{Base: ts.URL, HTTP: &http.Client{Transport: ft}}
		b1, err := cl.Stream(1, 0, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		// Second request asks from seq 1 but receives the seq-0 response again.
		b2, err := cl.Stream(1, 1, 1, 0)
		if err != nil {
			t.Fatal(err)
		}
		if b2.Seq != b1.Seq || len(b2.Records) != len(b1.Records) {
			t.Fatalf("dup not replayed: first %+v, second %+v", b1, b2)
		}
		if _, _, dups, _, _ := ft.Counts(); dups != 1 {
			t.Fatalf("dups %d, want 1", dups)
		}
	})
	t.Run("corrupt", func(t *testing.T) {
		ft := &FaultTransport{CorruptEvery: 1}
		cl := &Client{Base: ts.URL, HTTP: &http.Client{Transport: ft}}
		_, err := cl.Stream(1, 0, 0, 0)
		if err == nil {
			t.Fatal("corrupted body passed frame verification")
		}
		if !errors.Is(err, wal.ErrBadFrame) {
			t.Fatalf("corruption surfaced as %v, want a frame checksum error", err)
		}
	})
}
