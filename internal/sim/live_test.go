package sim

import (
	"testing"

	"repro/internal/backfill"
	"repro/internal/metrics"
	"repro/internal/sched"
	"repro/internal/stats"
	"repro/internal/trace"
)

// liveTrace builds a small random workload for the live-ingestion tests.
func liveTrace(seed uint64, n, procs int) *trace.Trace {
	rng := stats.NewRNG(seed)
	t := &trace.Trace{Name: "live-test", Procs: procs}
	var submit int64
	for i := 0; i < n; i++ {
		submit += int64(rng.Uint64() % 40)
		run := 1 + int64(rng.Uint64()%300)
		t.Jobs = append(t.Jobs, &trace.Job{
			ID:      i + 1,
			Submit:  submit,
			Runtime: run,
			Request: run + int64(rng.Uint64()%60),
			Procs:   1 + int(rng.Uint64()%uint64(procs)),
			Status:  1,
		})
	}
	return t
}

// TestLiveInjectMatchesBatchReplay drives the same workload through the
// batch path (Run over the full trace) and the live path (inject each job
// just before the clock reaches its submit time), and pins the schedules
// identical. This is the core guarantee the serve daemon builds on: a live
// engine is the batch engine, fed incrementally.
func TestLiveInjectMatchesBatchReplay(t *testing.T) {
	for _, seed := range []uint64{1, 7, 42} {
		tr := liveTrace(seed, 400, 32)
		for _, mk := range []func() backfill.Backfiller{
			func() backfill.Backfiller { return nil },
			func() backfill.Backfiller { return &backfill.EASY{Est: backfill.RequestTime{}} },
			func() backfill.Backfiller { return backfill.NewConservative(backfill.RequestTime{}) },
		} {
			batch, err := Run(tr, Config{Policy: sched.FCFS{}, Backfiller: mk()})
			if err != nil {
				t.Fatal(err)
			}
			live, err := NewLiveEngine("live-test", tr.Procs, 0, Config{Policy: sched.FCFS{}, Backfiller: mk()})
			if err != nil {
				t.Fatal(err)
			}
			for _, j := range tr.Jobs {
				// Advance strictly past everything before the submit instant,
				// then inject: events at the submit instant itself are
				// processed together with the arrival, exactly as in batch.
				if j.Submit > 0 {
					live.RunUntil(j.Submit - 1)
				}
				if err := live.Inject(j.Clone()); err != nil {
					t.Fatalf("seed %d: inject job %d: %v", seed, j.ID, err)
				}
			}
			live.RunToCompletion()
			lr := live.Records()
			if len(lr) != len(batch.Records) {
				t.Fatalf("seed %d: live %d records, batch %d", seed, len(lr), len(batch.Records))
			}
			for i := range lr {
				b := batch.Records[i]
				if lr[i].Job.ID != b.Job.ID || lr[i].Start != b.Start || lr[i].End != b.End {
					t.Fatalf("seed %d: record %d live {job %d %d-%d} != batch {job %d %d-%d}",
						seed, i, lr[i].Job.ID, lr[i].Start, lr[i].End, b.Job.ID, b.Start, b.End)
				}
			}
		}
	}
}

func TestInjectValidation(t *testing.T) {
	e, err := NewLiveEngine("v", 8, 0, Config{Policy: sched.FCFS{}})
	if err != nil {
		t.Fatal(err)
	}
	ok := &trace.Job{ID: 1, Submit: 10, Runtime: 5, Request: 5, Procs: 2, Status: 1}
	if err := e.Inject(ok); err != nil {
		t.Fatal(err)
	}
	cases := []*trace.Job{
		{ID: 2, Submit: 10, Runtime: 5, Request: 5, Procs: 9, Status: 1}, // too wide
		{ID: 3, Submit: 5, Runtime: 5, Request: 5, Procs: 1, Status: 1},  // before pending arrival
		{ID: 4, Submit: 10, Runtime: 5, Request: 0, Procs: 1, Status: 1}, // invalid request
	}
	for _, j := range cases {
		if err := e.Inject(j); err == nil {
			t.Fatalf("inject job %d should have failed", j.ID)
		}
	}
	e.RunToCompletion()
	if err := e.Inject(&trace.Job{ID: 5, Submit: 3, Runtime: 5, Request: 5, Procs: 1, Status: 1}); err == nil {
		t.Fatal("inject before engine clock should have failed")
	}
	// At or after the clock is fine even with everything drained.
	if err := e.Inject(&trace.Job{ID: 6, Submit: e.Now(), Runtime: 5, Request: 5, Procs: 1, Status: 1}); err != nil {
		t.Fatal(err)
	}
}

func TestCancelPendingAndQueued(t *testing.T) {
	e, err := NewLiveEngine("c", 2, 0, Config{Policy: sched.FCFS{}, Backfiller: &backfill.EASY{Est: backfill.RequestTime{}}})
	if err != nil {
		t.Fatal(err)
	}
	mk := func(id int, submit int64, procs int) *trace.Job {
		return &trace.Job{ID: id, Submit: submit, Runtime: 100, Request: 100, Procs: procs, Status: 1}
	}
	// Job 1 occupies the machine; 2 and 3 queue behind it; 4 stays pending.
	for _, j := range []*trace.Job{mk(1, 0, 2), mk(2, 1, 2), mk(3, 2, 2), mk(4, 50, 1)} {
		if err := e.Inject(j); err != nil {
			t.Fatal(err)
		}
	}
	e.RunUntil(10)
	if e.QueueLen() != 2 || e.PendingArrivals() != 1 || e.RunningCount() != 1 {
		t.Fatalf("queue=%d pending=%d running=%d, want 2/1/1", e.QueueLen(), e.PendingArrivals(), e.RunningCount())
	}
	if !e.Cancel(4) {
		t.Fatal("canceling pending job 4 failed")
	}
	if !e.Cancel(2) {
		t.Fatal("canceling queued job 2 failed")
	}
	if e.Cancel(1) {
		t.Fatal("canceling running job 1 should fail")
	}
	if e.Cancel(99) {
		t.Fatal("canceling unknown job should fail")
	}
	e.RunToCompletion()
	// Only jobs 1 and 3 ever run.
	recs := e.Records()
	if len(recs) != 2 || recs[0].Job.ID != 1 || recs[1].Job.ID != 3 {
		t.Fatalf("records %v, want jobs 1 then 3", recs)
	}
	// Job 3 starts when job 1 finishes — job 2's cancellation freed its slot.
	if recs[1].Start != 100 {
		t.Fatalf("job 3 started at %d, want 100", recs[1].Start)
	}
}

// TestCancelKeepsSnapshotResumable pins that a cancel interleaved with
// snapshot/resume leaves the remaining schedule byte-identical to an engine
// that never saw the canceled job.
func TestCancelKeepsSnapshotResumable(t *testing.T) {
	tr := liveTrace(3, 200, 16)
	cfg := func() Config {
		return Config{Policy: sched.FCFS{}, Backfiller: backfill.NewConservative(backfill.RequestTime{})}
	}
	const victim = 101

	// Reference: replay the trace without the victim job at all.
	ref := &trace.Trace{Name: tr.Name, Procs: tr.Procs}
	for _, j := range tr.Jobs {
		if j.ID != victim {
			ref.Jobs = append(ref.Jobs, j)
		}
	}
	want, err := Run(ref, cfg())
	if err != nil {
		t.Fatal(err)
	}

	// Live: inject everything, cancel the victim while it waits (before its
	// submit time is reached it is still pending), then snapshot and resume.
	live, err := NewLiveEngine(tr.Name, tr.Procs, 0, cfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range tr.Jobs {
		if err := live.Inject(j.Clone()); err != nil {
			t.Fatal(err)
		}
	}
	if !live.Cancel(victim) {
		t.Fatal("cancel failed")
	}
	mid := tr.Jobs[len(tr.Jobs)/2].Submit
	live.RunUntil(mid)
	snap := live.Snapshot()
	rest := &trace.Trace{Name: tr.Name, Procs: tr.Procs, Jobs: live.AppendPending(nil)}
	snap.NextArrival = 0
	resumed, err := NewEngineFromSnapshot(rest, cfg(), snap)
	if err != nil {
		t.Fatal(err)
	}
	resumed.RunToCompletion()

	got := append(append([]metrics.Record{}, live.Records()...), resumed.Records()...)
	if len(got) != len(want.Records) {
		t.Fatalf("%d records, want %d", len(got), len(want.Records))
	}
	for i := range got {
		w := want.Records[i]
		if got[i].Job.ID != w.Job.ID || got[i].Start != w.Start || got[i].End != w.End {
			t.Fatalf("record %d: {job %d %d-%d} != reference {job %d %d-%d}",
				i, got[i].Job.ID, got[i].Start, got[i].End, w.Job.ID, w.Start, w.End)
		}
	}
}
