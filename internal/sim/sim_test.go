package sim

import (
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/backfill"
	"repro/internal/sched"
	"repro/internal/stats"
	"repro/internal/trace"
)

func mkTrace(procs int, jobs ...*trace.Job) *trace.Trace {
	return &trace.Trace{Name: "t", Procs: procs, Jobs: jobs}
}

func job(id int, submit, run, req int64, procs int) *trace.Job {
	return &trace.Job{ID: id, Submit: submit, Runtime: run, Request: req, Procs: procs}
}

func mustRun(t *testing.T, tr *trace.Trace, cfg Config) *Result {
	t.Helper()
	res, err := Run(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func startOf(t *testing.T, res *Result, id int) int64 {
	t.Helper()
	for _, r := range res.Records {
		if r.Job.ID == id {
			return r.Start
		}
	}
	t.Fatalf("job %d not in records", id)
	return 0
}

func TestSingleJobRunsImmediately(t *testing.T) {
	tr := mkTrace(4, job(1, 5, 100, 100, 4))
	res := mustRun(t, tr, Config{Policy: sched.FCFS{}})
	if got := startOf(t, res, 1); got != 5 {
		t.Fatalf("start = %d, want 5", got)
	}
	if res.Summary.MeanBSLD != 1 {
		t.Fatalf("bsld = %v, want 1", res.Summary.MeanBSLD)
	}
}

func TestBlockedJobWaitsForCompletion(t *testing.T) {
	tr := mkTrace(4,
		job(1, 0, 100, 100, 4),
		job(2, 10, 50, 50, 4),
	)
	res := mustRun(t, tr, Config{Policy: sched.FCFS{}})
	if got := startOf(t, res, 2); got != 100 {
		t.Fatalf("job 2 start = %d, want 100", got)
	}
}

func TestRunRejectsNilPolicy(t *testing.T) {
	if _, err := Run(mkTrace(4), Config{}); err == nil {
		t.Fatal("nil policy accepted")
	}
}

func TestRunRejectsInvalidTrace(t *testing.T) {
	tr := mkTrace(4, job(1, 0, 10, 10, 9)) // bigger than machine
	if _, err := Run(tr, Config{Policy: sched.FCFS{}}); err == nil {
		t.Fatal("invalid trace accepted")
	}
}

// The canonical EASY scenario: a wide head job waits for a running job, a
// short narrow job jumps ahead without delaying the head.
func TestEASYBackfillsShortJob(t *testing.T) {
	tr := mkTrace(10,
		job(1, 0, 100, 100, 8), // running, leaves 2 free
		job(2, 1, 50, 50, 10),  // head: needs the whole machine at t=100
		job(3, 2, 50, 50, 2),   // finishes at ~52 <= 100: backfillable
		job(4, 3, 200, 200, 2), // would run past the shadow and delay head
	)
	res := mustRun(t, tr, Config{Policy: sched.FCFS{}, Backfiller: backfill.NewEASY(backfill.RequestTime{})})
	if got := startOf(t, res, 3); got != 2 {
		t.Fatalf("job 3 (safe backfill) start = %d, want 2", got)
	}
	if got := startOf(t, res, 2); got != 100 {
		t.Fatalf("head job start = %d, want 100 (must not be delayed)", got)
	}
	if got := startOf(t, res, 4); got < 100 {
		t.Fatalf("job 4 started at %d, must not backfill past shadow", got)
	}
}

// Without backfilling, the short job is stuck behind the wide head.
func TestNoBackfillBlocks(t *testing.T) {
	tr := mkTrace(10,
		job(1, 0, 100, 100, 8),
		job(2, 1, 50, 50, 10),
		job(3, 2, 50, 50, 2),
	)
	res := mustRun(t, tr, Config{Policy: sched.FCFS{}})
	if got := startOf(t, res, 3); got <= 100 {
		t.Fatalf("job 3 started at %d without backfilling", got)
	}
}

// Extra-node rule: a long narrow job may backfill if it only consumes
// processors the head does not need at its shadow time.
func TestEASYExtraNodesRule(t *testing.T) {
	tr := mkTrace(10,
		job(1, 0, 100, 100, 6), // running, 4 free
		job(2, 1, 50, 50, 8),   // head: at shadow t=100 there will be 10 free, extra = 2
		job(3, 2, 500, 500, 2), // long but fits in the 2 extra procs
		job(4, 3, 500, 500, 4), // long and too wide: would delay the head
	)
	res := mustRun(t, tr, Config{Policy: sched.FCFS{}, Backfiller: backfill.NewEASY(backfill.RequestTime{})})
	if got := startOf(t, res, 3); got != 2 {
		t.Fatalf("extra-node job start = %d, want 2", got)
	}
	if got := startOf(t, res, 2); got != 100 {
		t.Fatalf("head start = %d, want 100", got)
	}
}

func TestEASYARUsesActualRuntime(t *testing.T) {
	// Job 3 requests 500s but actually runs 40s. With request-time EASY it
	// cannot backfill (500 > shadow); with EASY-AR it can.
	mk := func() *trace.Trace {
		return mkTrace(10,
			job(1, 0, 100, 100, 8),
			job(2, 1, 50, 50, 10),
			job(3, 2, 40, 500, 2),
		)
	}
	rt := mustRun(t, mk(), Config{Policy: sched.FCFS{}, Backfiller: backfill.NewEASY(backfill.RequestTime{})})
	ar := mustRun(t, mk(), Config{Policy: sched.FCFS{}, Backfiller: backfill.NewEASY(backfill.ActualRuntime{})})
	if got := startOf(t, rt, 3); got <= 2 {
		t.Fatalf("RT-EASY backfilled an over-requested job (start %d)", got)
	}
	if got := startOf(t, ar, 3); got != 2 {
		t.Fatalf("AR-EASY start = %d, want 2", got)
	}
}

func TestSJFPolicyReordersQueue(t *testing.T) {
	tr := mkTrace(4,
		job(1, 0, 100, 100, 4),
		job(2, 1, 500, 500, 4), // arrives first, long
		job(3, 2, 10, 10, 4),   // short: SJF runs it before job 2
	)
	res := mustRun(t, tr, Config{Policy: sched.SJF{}})
	if startOf(t, res, 3) >= startOf(t, res, 2) {
		t.Fatal("SJF did not run the short job first")
	}
}

func TestAllJobsRunExactlyOnce(t *testing.T) {
	tr := trace.SyntheticSDSCSP2(300, 11)
	res := mustRun(t, tr, Config{Policy: sched.FCFS{}, Backfiller: backfill.NewEASY(backfill.RequestTime{})})
	if len(res.Records) != 300 {
		t.Fatalf("%d records for 300 jobs", len(res.Records))
	}
	seen := map[int]bool{}
	for _, r := range res.Records {
		if seen[r.Job.ID] {
			t.Fatalf("job %d ran twice", r.Job.ID)
		}
		seen[r.Job.ID] = true
		if r.Start < r.Job.Submit {
			t.Fatalf("job %d started before submission", r.Job.ID)
		}
		if r.End != r.Start+r.Job.Runtime {
			t.Fatalf("job %d end mismatch", r.Job.ID)
		}
	}
}

// capacityRespected reconstructs processor usage over time from the records
// and verifies the machine is never oversubscribed.
func capacityRespected(res *Result, procs int) bool {
	type ev struct {
		t int64
		d int
	}
	var evs []ev
	for _, r := range res.Records {
		evs = append(evs, ev{r.Start, r.Job.Procs}, ev{r.End, -r.Job.Procs})
	}
	sort.Slice(evs, func(a, b int) bool {
		if evs[a].t != evs[b].t {
			return evs[a].t < evs[b].t
		}
		return evs[a].d < evs[b].d // releases before allocations at ties
	})
	used := 0
	for _, e := range evs {
		used += e.d
		if used > procs || used < 0 {
			return false
		}
	}
	return true
}

func TestCapacityNeverExceeded(t *testing.T) {
	for _, bf := range []backfill.Backfiller{
		nil,
		backfill.NewEASY(backfill.RequestTime{}),
		backfill.NewEASY(backfill.ActualRuntime{}),
		backfill.NewConservative(backfill.RequestTime{}),
	} {
		tr := trace.SyntheticHPC2N(200, 5)
		res := mustRun(t, tr, Config{Policy: sched.FCFS{}, Backfiller: bf})
		if !capacityRespected(res, tr.Procs) {
			name := "none"
			if bf != nil {
				name = bf.Name()
			}
			t.Fatalf("capacity violated with backfiller %s", name)
		}
	}
}

// violationChecker wraps a backfiller and fails the test if a backfill round
// pushes the head job's estimated reservation later (EASY's guarantee when
// estimates are conservative).
type violationChecker struct {
	inner backfill.Backfiller
	est   backfill.Estimator
	t     *testing.T
}

func (v *violationChecker) Name() string { return "check-" + v.inner.Name() }

func (v *violationChecker) Backfill(st backfill.State, head *trace.Job, queue []*trace.Job) {
	before := backfill.ComputeReservation(st, head, v.est)
	v.inner.Backfill(st, head, queue)
	after := backfill.ComputeReservation(st, head, v.est)
	if after.Shadow > before.Shadow {
		v.t.Fatalf("EASY delayed head job %d: shadow %d -> %d", head.ID, before.Shadow, after.Shadow)
	}
}

func TestEASYNeverDelaysHeadReservation(t *testing.T) {
	for _, seed := range []uint64{1, 2, 3} {
		tr := trace.SyntheticSDSCSP2(400, seed)
		est := backfill.RequestTime{}
		cfg := Config{
			Policy:     sched.FCFS{},
			Backfiller: &violationChecker{inner: backfill.NewEASY(est), est: est, t: t},
		}
		mustRun(t, tr, cfg)
	}
}

func TestEASYSJFOrderNeverDelaysHeadEither(t *testing.T) {
	tr := trace.SyntheticHPC2N(300, 9)
	est := backfill.RequestTime{}
	easy := &backfill.EASY{Est: est, Order: backfill.SJFOrder}
	cfg := Config{Policy: sched.FCFS{}, Backfiller: &violationChecker{inner: easy, est: est, t: t}}
	mustRun(t, tr, cfg)
}

func TestDeterminism(t *testing.T) {
	run := func() *Result {
		tr := trace.SyntheticSDSCSP2(250, 21)
		return mustRun(t, tr, Config{Policy: sched.WFP3{}, Backfiller: backfill.NewEASY(backfill.RequestTime{})})
	}
	a, b := run(), run()
	if len(a.Records) != len(b.Records) {
		t.Fatal("record counts differ")
	}
	for i := range a.Records {
		if a.Records[i].Job.ID != b.Records[i].Job.ID || a.Records[i].Start != b.Records[i].Start {
			t.Fatalf("record %d differs between identical runs", i)
		}
	}
}

func TestBackfillingImprovesUtilization(t *testing.T) {
	tr := trace.SyntheticSDSCSP2(500, 33)
	plain := mustRun(t, tr.Clone(), Config{Policy: sched.FCFS{}})
	easy := mustRun(t, tr.Clone(), Config{Policy: sched.FCFS{}, Backfiller: backfill.NewEASY(backfill.RequestTime{})})
	if easy.Summary.MeanBSLD > plain.Summary.MeanBSLD {
		t.Fatalf("EASY worsened bsld on a loaded trace: %.2f > %.2f",
			easy.Summary.MeanBSLD, plain.Summary.MeanBSLD)
	}
}

func TestConservativeBackfills(t *testing.T) {
	tr := mkTrace(10,
		job(1, 0, 100, 100, 8),
		job(2, 1, 50, 50, 10),
		job(3, 2, 50, 50, 2),
	)
	res := mustRun(t, tr, Config{Policy: sched.FCFS{}, Backfiller: backfill.NewConservative(backfill.RequestTime{})})
	if got := startOf(t, res, 3); got != 2 {
		t.Fatalf("conservative did not backfill safe job (start %d)", got)
	}
	if got := startOf(t, res, 2); got != 100 {
		t.Fatalf("conservative delayed head to %d", got)
	}
}

// Property: for random small traces, every scheduler/backfiller combination
// completes all jobs without capacity violations and with starts >= submits.
func TestScheduleInvariantsQuick(t *testing.T) {
	f := func(seed uint16) bool {
		r := stats.NewRNG(uint64(seed))
		n := r.Intn(60) + 5
		procs := []int{8, 32, 100}[r.Intn(3)]
		tr := &trace.Trace{Name: "q", Procs: procs}
		var submit int64
		for i := 0; i < n; i++ {
			submit += r.Int63n(200)
			run := r.Int63n(400) + 1
			tr.Jobs = append(tr.Jobs, job(i+1, submit, run, run+r.Int63n(400), r.Intn(procs)+1))
		}
		for _, p := range sched.All() {
			for _, bf := range []backfill.Backfiller{nil, backfill.NewEASY(backfill.RequestTime{})} {
				res, err := Run(tr.Clone(), Config{Policy: p, Backfiller: bf})
				if err != nil {
					return false
				}
				if len(res.Records) != n {
					return false
				}
				if !capacityRespected(res, procs) {
					return false
				}
				for _, rec := range res.Records {
					if rec.Start < rec.Job.Submit {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Step must be an exact decomposition of RunToCompletion.
func TestStepwiseMatchesRunToCompletion(t *testing.T) {
	tr := trace.SyntheticSDSCSP2(200, 3)
	whole := mustRun(t, tr.Clone(), Config{Policy: sched.SJF{}, Backfiller: backfill.NewEASY(backfill.RequestTime{})})

	e, err := NewEngine(tr.Clone(), Config{Policy: sched.SJF{}, Backfiller: backfill.NewEASY(backfill.RequestTime{})})
	if err != nil {
		t.Fatal(err)
	}
	steps := 0
	for e.Step() {
		steps++
	}
	if steps == 0 {
		t.Fatal("Step never advanced")
	}
	if len(e.Records()) != len(whole.Records) {
		t.Fatalf("stepwise records %d vs %d", len(e.Records()), len(whole.Records))
	}
	for i, w := range whole.Records {
		g := e.Records()[i]
		if g.Job.ID != w.Job.ID || g.Start != w.Start || g.End != w.End {
			t.Fatalf("record %d differs between stepwise and whole-run replay", i)
		}
	}
}

// Running must stay ID-sorted at every instant of the simulation (it is the
// engine's live, incrementally maintained bookkeeping).
func TestRunningStaysSortedByID(t *testing.T) {
	tr := trace.SyntheticHPC2N(250, 17)
	e, err := NewEngine(tr, Config{Policy: sched.FCFS{}, Backfiller: backfill.NewEASY(backfill.RequestTime{})})
	if err != nil {
		t.Fatal(err)
	}
	for e.Step() {
		rs := e.Running()
		for i := 1; i < len(rs); i++ {
			if rs[i-1].Job.ID >= rs[i].Job.ID {
				t.Fatalf("running set not ID-sorted at t=%d", e.Now())
			}
		}
	}
}

func TestNoisyEstimatorIsConsistentPerJob(t *testing.T) {
	est := backfill.Noisy{Level: 0.4, Seed: 7}
	j := job(42, 0, 1000, 2000, 4)
	a, b := est.Estimate(j), est.Estimate(j)
	if a != b {
		t.Fatalf("noisy estimate not stable: %d vs %d", a, b)
	}
	if a < 1000 || a > 1400 {
		t.Fatalf("noisy estimate %d outside [AR, AR*1.4]", a)
	}
}

func TestJobKilledAtRequestLimit(t *testing.T) {
	// Actual runtime 100 but request 40: the scheduler kills it at t=40 and
	// the next job starts then.
	tr := mkTrace(4,
		&trace.Job{ID: 1, Submit: 0, Runtime: 100, Request: 40, Procs: 4},
		job(2, 5, 10, 10, 4),
	)
	res := mustRun(t, tr, Config{Policy: sched.FCFS{}})
	if got := startOf(t, res, 2); got != 40 {
		t.Fatalf("job 2 start = %d, want 40 (after the kill)", got)
	}
	for _, r := range res.Records {
		if r.Job.ID == 1 {
			if !r.Killed() || r.RunSeconds() != 40 {
				t.Fatalf("job 1 not killed correctly: run %d killed=%v", r.RunSeconds(), r.Killed())
			}
		}
	}
}

// Arrivals are fed lazily from the submit-sorted trace, so the event heap
// holds only pending completions: its size must never exceed the running
// set, instead of starting at one event per trace job.
func TestLazyArrivalsKeepEventHeapSmall(t *testing.T) {
	tr := trace.SyntheticSDSCSP2(500, 5)
	e, err := NewEngine(tr.Clone(), Config{Policy: sched.FCFS{}, Backfiller: backfill.NewEASY(backfill.RequestTime{})})
	if err != nil {
		t.Fatal(err)
	}
	if got := e.events.Len(); got != 0 {
		t.Fatalf("fresh engine queued %d events, want 0 (lazy arrivals)", got)
	}
	for e.Step() {
		if e.events.Len() > len(e.running) {
			t.Fatalf("at t=%d the heap holds %d events > %d running jobs",
				e.Now(), e.events.Len(), len(e.running))
		}
	}
	if len(e.Records()) != tr.Len() {
		t.Fatalf("completed %d jobs, want %d", len(e.Records()), tr.Len())
	}
}
