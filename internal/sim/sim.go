// Package sim is the event-driven HPC scheduling simulator (the paper's
// "Simulated Environment", §3.4): it replays a job trace against a
// homogeneous cluster under a base scheduling policy, invoking a pluggable
// backfiller whenever the head of the queue cannot start.
package sim

import (
	"fmt"
	"sort"

	"repro/internal/backfill"
	"repro/internal/cluster"
	"repro/internal/eventq"
	"repro/internal/metrics"
	"repro/internal/sched"
	"repro/internal/trace"
)

// Config selects the scheduling behaviour for a run.
type Config struct {
	// Policy is the base scheduling policy (Table 3). Required.
	Policy sched.Policy
	// Backfiller runs when the head job cannot start. nil disables
	// backfilling entirely (pure FCFS-style blocking).
	Backfiller backfill.Backfiller
	// Probe, when non-nil, observes the engine after every event batch
	// (instrumentation only; it cannot influence scheduling).
	Probe Probe
}

// Result is the outcome of simulating a trace.
type Result struct {
	Records []metrics.Record
	Summary metrics.Summary
}

// Engine is the simulator state machine. It implements backfill.State so
// backfillers (including the RL agent) can inspect and act on it. Use Run
// for the common replay-a-whole-trace case.
type Engine struct {
	cfg     Config
	procs   int
	clock   int64
	cluster *cluster.Cluster
	events  eventq.Queue
	queue   []*trace.Job
	running map[int]backfill.Running
	records []metrics.Record
}

// NewEngine prepares an engine for the given trace. The trace is validated;
// all submissions are pre-loaded as arrival events.
func NewEngine(t *trace.Trace, cfg Config) (*Engine, error) {
	if cfg.Policy == nil {
		return nil, fmt.Errorf("sim: config needs a base scheduling policy")
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	e := &Engine{
		cfg:     cfg,
		procs:   t.Procs,
		cluster: cluster.New(t.Procs),
		running: make(map[int]backfill.Running),
		records: make([]metrics.Record, 0, len(t.Jobs)),
	}
	for _, j := range t.Jobs {
		e.events.Push(eventq.Event{Time: j.Submit, Kind: eventq.Arrive, Payload: j})
	}
	return e, nil
}

// Run replays the whole trace to completion and returns per-job records plus
// aggregate metrics.
func Run(t *trace.Trace, cfg Config) (*Result, error) {
	e, err := NewEngine(t, cfg)
	if err != nil {
		return nil, err
	}
	e.RunToCompletion()
	return &Result{Records: e.records, Summary: metrics.Summarize(e.records, t.Procs)}, nil
}

// RunToCompletion processes every event until all jobs have finished.
func (e *Engine) RunToCompletion() {
	for {
		ev, ok := e.events.Pop()
		if !ok {
			return
		}
		e.clock = ev.Time
		e.apply(ev)
		// Drain all events with the same timestamp before scheduling, so a
		// single decision sees every completion/arrival at this instant.
		for {
			next, ok := e.events.Peek()
			if !ok || next.Time != e.clock {
				break
			}
			ev, _ = e.events.Pop()
			e.apply(ev)
		}
		e.schedule()
		if e.cfg.Probe != nil {
			e.cfg.Probe.Observe(e.clock, len(e.queue), e.cluster.Free(), e.procs)
		}
	}
}

func (e *Engine) apply(ev eventq.Event) {
	switch ev.Kind {
	case eventq.Arrive:
		e.queue = append(e.queue, ev.Payload.(*trace.Job))
	case eventq.Finish:
		j := ev.Payload.(*trace.Job)
		if err := e.cluster.Release(j.ID); err != nil {
			panic(fmt.Sprintf("sim: releasing job %d: %v", j.ID, err))
		}
		delete(e.running, j.ID)
	}
}

// schedule starts queue-head jobs while they fit, then gives the backfiller
// one round if the head is blocked.
func (e *Engine) schedule() {
	if len(e.queue) == 0 {
		return
	}
	sched.Sort(e.queue, e.cfg.Policy, e.clock)
	for len(e.queue) > 0 && e.cluster.Fits(e.queue[0].Procs) {
		e.StartJob(e.queue[0])
	}
	if len(e.queue) == 0 || e.cfg.Backfiller == nil {
		return
	}
	head := e.queue[0]
	rest := append([]*trace.Job(nil), e.queue[1:]...)
	e.cfg.Backfiller.Backfill(e, head, rest)
}

// Now implements backfill.State.
func (e *Engine) Now() int64 { return e.clock }

// FreeProcs implements backfill.State.
func (e *Engine) FreeProcs() int { return e.cluster.Free() }

// TotalProcs implements backfill.State.
func (e *Engine) TotalProcs() int { return e.procs }

// Running implements backfill.State; the slice is sorted by job ID for
// determinism.
func (e *Engine) Running() []backfill.Running {
	rs := make([]backfill.Running, 0, len(e.running))
	for _, r := range e.running {
		rs = append(rs, r)
	}
	sort.Slice(rs, func(a, b int) bool { return rs[a].Job.ID < rs[b].Job.ID })
	return rs
}

// StartJob implements backfill.State: it allocates processors, removes the
// job from the waiting queue, and schedules its completion. As on a real
// system (§2.1.2: "the scheduler will cancel or kill jobs that surpass their
// Request Time"), a job whose actual runtime exceeds its request is killed
// when the wall-time limit expires.
func (e *Engine) StartJob(j *trace.Job) {
	if err := e.cluster.Alloc(j.ID, j.Procs); err != nil {
		panic(fmt.Sprintf("sim: starting job %d: %v", j.ID, err))
	}
	removed := false
	for i, q := range e.queue {
		if q == j {
			e.queue = append(e.queue[:i], e.queue[i+1:]...)
			removed = true
			break
		}
	}
	if !removed {
		panic(fmt.Sprintf("sim: job %d started but not in queue", j.ID))
	}
	run := j.Runtime
	if j.Request > 0 && run > j.Request {
		run = j.Request // killed at the wall-time limit
	}
	e.running[j.ID] = backfill.Running{Job: j, Start: e.clock}
	e.events.Push(eventq.Event{Time: e.clock + run, Kind: eventq.Finish, Payload: j})
	e.records = append(e.records, metrics.Record{Job: j, Start: e.clock, End: e.clock + run})
}

// QueueLen returns the number of waiting jobs (useful for instrumentation).
func (e *Engine) QueueLen() int { return len(e.queue) }

// Records returns the per-job outcomes recorded so far.
func (e *Engine) Records() []metrics.Record { return e.records }
