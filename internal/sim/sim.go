// Package sim is the event-driven HPC scheduling simulator (the paper's
// "Simulated Environment", §3.4): it replays a job trace against a
// homogeneous cluster under a base scheduling policy, invoking a pluggable
// backfiller whenever the head of the queue cannot start.
//
// The simulator is the inner loop of every PPO rollout, so the per-event
// scheduling kernel is engineered for throughput: static-score policies
// (Policy.TimeVarying() == false) keep the waiting queue incrementally
// sorted — each arrival is binary-inserted once and the queue is never
// re-sorted — while time-varying policies (WFP3) fall back to a decorated
// re-sort that computes each score exactly once per event. Queue removal
// locates jobs by binary search on their score instead of a linear scan, and
// the running set is maintained as an ID-sorted slice so backfillers'
// reservation computations never trigger a rebuild-and-sort. All orderings
// use sched.Less (score, then submit time, then ID), and arrivals are fed
// lazily from the submit-sorted trace instead of being heap-pushed one event
// per job up front — the event heap holds only pending completions (size ~
// running jobs, not trace length) — which keeps schedules bit-identical to a
// naive sort-every-event kernel.
package sim

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/backfill"
	"repro/internal/cluster"
	"repro/internal/eventq"
	"repro/internal/metrics"
	"repro/internal/sched"
	"repro/internal/trace"
)

// Config selects the scheduling behaviour for a run.
type Config struct {
	// Policy is the base scheduling policy (Table 3). Required.
	Policy sched.Policy
	// Backfiller runs when the head job cannot start. nil disables
	// backfilling entirely (pure FCFS-style blocking).
	Backfiller backfill.Backfiller
	// Scenario layers priority tiers and the aging-based starvation bound
	// onto the base policy (see sched.Scenario). The zero value keeps the
	// classic, byte-identical scheduling semantics. Backfillers that honour
	// scenarios (EASY, Slack) carry their own copy; callers should configure
	// both from the same value.
	Scenario sched.Scenario
	// Probe, when non-nil, observes the engine after every event batch
	// (instrumentation only; it cannot influence scheduling).
	Probe Probe
}

// Result is the outcome of simulating a trace.
type Result struct {
	Records []metrics.Record
	Summary metrics.Summary
}

// Engine is the simulator state machine. It implements backfill.State so
// backfillers (including the RL agent) can inspect and act on it. Use Run
// for the common replay-a-whole-trace case.
type Engine struct {
	cfg     Config
	procs   int
	clock   int64
	cluster *cluster.Cluster
	// events holds Finish events (arrivals are fed lazily from the
	// submit-sorted trace below, so the heap never exceeds the number of
	// concurrently running jobs instead of starting at size n) plus, under
	// an aging scenario, Wake ticks at starvation-transition instants.
	events eventq.Queue
	// arrivals is the validated, submit-sorted job list; nextArr indexes the
	// first job not yet admitted to the waiting queue.
	arrivals []*trace.Job
	nextArr  int
	// queue holds the waiting jobs; qscore[i] is queue[i]'s policy score.
	// For static policies both stay sorted (sched.Less) at all times; for
	// time-varying policies they are re-sorted at the top of every
	// scheduling round, so they are ordered whenever StartJob can run.
	queue  []*trace.Job
	qscore []float64
	static bool
	scnOn  bool // cfg.Scenario.Enabled(), hoisted off the hot paths
	sorter sched.Sorter
	// running is kept sorted by job ID (insert on start, remove on finish),
	// so State.Running needs no per-call rebuild.
	running []backfill.Running
	restBuf []*trace.Job // scratch: the backfiller's view of queue[1:]
	records []metrics.Record
}

// NewEngine prepares an engine for the given trace. The trace is validated
// (which guarantees submit-sorted jobs); arrivals are fed lazily from that
// order rather than heap-pushed up front, so the event queue stays
// proportional to the running set.
func NewEngine(t *trace.Trace, cfg Config) (*Engine, error) {
	if cfg.Policy == nil {
		return nil, fmt.Errorf("sim: config needs a base scheduling policy")
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return &Engine{
		cfg:      cfg,
		procs:    t.Procs,
		cluster:  cluster.NewWithMem(t.Procs, t.Mem),
		static:   !cfg.Policy.TimeVarying() && !cfg.Scenario.TimeVarying(),
		scnOn:    cfg.Scenario.Enabled(),
		arrivals: t.Jobs,
		records:  make([]metrics.Record, 0, len(t.Jobs)),
	}, nil
}

// Run replays the whole trace to completion and returns per-job records plus
// aggregate metrics.
func Run(t *trace.Trace, cfg Config) (*Result, error) {
	e, err := NewEngine(t, cfg)
	if err != nil {
		return nil, err
	}
	e.RunToCompletion()
	return &Result{Records: e.records, Summary: metrics.Summarize(e.records, t.Procs)}, nil
}

// RunToCompletion processes every event until all jobs have finished.
func (e *Engine) RunToCompletion() {
	for e.Step() {
	}
}

// Step advances the simulation by one event batch: it drains every event at
// the earliest pending timestamp (so a single scheduling decision sees all
// completions and arrivals at that instant), runs one scheduling round, and
// notifies the probe. It reports false when no events remain. Completions
// apply before arrivals at the same instant — the same ordering the event
// heap enforced when arrivals were queued as events — so freed processors
// are visible to the newly arrived jobs, and arrivals enter in trace order,
// matching the heap's insertion-order tie-break.
func (e *Engine) Step() bool {
	now, ok := e.nextTime()
	if !ok {
		return false
	}
	e.clock = now
	for {
		next, ok := e.events.Peek()
		if !ok || next.Time != now {
			break
		}
		ev, _ := e.events.Pop()
		switch ev.Kind {
		case eventq.Finish:
			e.applyFinish(ev.Payload.(*trace.Job))
		case eventq.Wake:
			// Starvation-transition tick: no state changes here — the
			// scheduling round below re-ranks the queue at this instant.
		}
	}
	for e.nextArr < len(e.arrivals) && e.arrivals[e.nextArr].Submit == now {
		e.enqueue(e.arrivals[e.nextArr])
		e.nextArr++
	}
	e.schedule()
	if e.cfg.Probe != nil {
		e.cfg.Probe.Observe(e.clock, len(e.queue), e.cluster.Free(), e.procs)
	}
	return true
}

// nextTime returns the earliest pending timestamp across the finish heap and
// the unfed arrivals, or ok=false when the simulation is drained.
func (e *Engine) nextTime() (int64, bool) {
	var t int64
	have := false
	if ev, ok := e.events.Peek(); ok {
		t, have = ev.Time, true
	}
	if e.nextArr < len(e.arrivals) {
		if s := e.arrivals[e.nextArr].Submit; !have || s < t {
			t, have = s, true
		}
	}
	return t, have
}

func (e *Engine) applyFinish(j *trace.Job) {
	if err := e.cluster.Release(j.ID); err != nil {
		panic(fmt.Sprintf("sim: releasing job %d: %v", j.ID, err))
	}
	if i := e.runningIndex(j.ID); i < len(e.running) && e.running[i].Job.ID == j.ID {
		e.running = append(e.running[:i], e.running[i+1:]...)
	}
}

// enqueue adds an arriving job to the waiting queue. Static policies
// binary-insert at the job's final position (scores never change, so the
// queue stays sorted forever); time-varying policies — including any static
// base policy under an aging scenario — just append and let schedule
// re-sort. With aging on, the job's starvation-transition instant is queued
// as a Wake event so its rank change cannot overshoot an event drought.
func (e *Engine) enqueue(j *trace.Job) {
	if e.scnOn && e.cfg.Scenario.Aging() {
		if sa := e.cfg.Scenario.StarvesAt(j); sa > e.clock && sa != math.MaxInt64 {
			e.events.Push(eventq.Event{Time: sa, Kind: eventq.Wake, Payload: j})
		}
	}
	if !e.static {
		e.queue = append(e.queue, j)
		e.qscore = append(e.qscore, 0)
		return
	}
	score := e.cfg.Policy.Score(j, e.clock)
	var i int
	if e.scnOn {
		// Aging is off here (static would be false), so scenario order is
		// time-invariant and binary insertion stays valid.
		i = sort.Search(len(e.queue), func(i int) bool {
			return e.cfg.Scenario.Less(j, e.queue[i], score, e.qscore[i], e.clock)
		})
	} else {
		i = sort.Search(len(e.queue), func(i int) bool {
			return sched.Less(j, e.queue[i], score, e.qscore[i])
		})
	}
	e.queue = append(e.queue, nil)
	copy(e.queue[i+1:], e.queue[i:])
	e.queue[i] = j
	e.qscore = append(e.qscore, 0)
	copy(e.qscore[i+1:], e.qscore[i:])
	e.qscore[i] = score
}

// schedule starts queue-head jobs while they fit, then gives the backfiller
// one round if the head is blocked.
func (e *Engine) schedule() {
	if len(e.queue) == 0 {
		return
	}
	if !e.static {
		// Time-varying scores: one decorated sort per event, each score
		// computed exactly once. SortScenario routes straight to the classic
		// sort when no scenario is configured.
		e.sorter.SortScenario(e.queue, e.qscore, e.cfg.Policy, e.clock, e.cfg.Scenario)
	}
	for len(e.queue) > 0 && e.cluster.FitsRes(e.queue[0].Procs, e.queue[0].Mem) {
		e.StartJob(e.queue[0])
	}
	if len(e.queue) == 0 || e.cfg.Backfiller == nil {
		return
	}
	head := e.queue[0]
	e.restBuf = append(e.restBuf[:0], e.queue[1:]...)
	e.cfg.Backfiller.Backfill(e, head, e.restBuf)
}

// Now implements backfill.State.
func (e *Engine) Now() int64 { return e.clock }

// FreeProcs implements backfill.State.
func (e *Engine) FreeProcs() int { return e.cluster.Free() }

// TotalProcs implements backfill.State.
func (e *Engine) TotalProcs() int { return e.procs }

// FreeMem implements backfill.MemState.
func (e *Engine) FreeMem() int { return e.cluster.FreeMem() }

// TotalMem implements backfill.MemState; 0 means the machine (trace) has no
// memory dimension and every memory constraint is inert.
func (e *Engine) TotalMem() int { return e.cluster.TotalMem() }

// Running implements backfill.State; the slice is sorted by job ID. It is
// the engine's live bookkeeping (maintained incrementally, never rebuilt):
// callers must treat it as read-only and must not retain it across StartJob
// calls or simulation steps.
func (e *Engine) Running() []backfill.Running { return e.running }

// runningIndex returns the position of job id in the ID-sorted running
// slice, or the insertion point if absent.
func (e *Engine) runningIndex(id int) int {
	return sort.Search(len(e.running), func(i int) bool { return e.running[i].Job.ID >= id })
}

// queueIndex locates a waiting job. The queue is sorted whenever starts can
// happen, so a binary search on the job's score finds it in O(log n); a
// linear scan remains as a defensive fallback (it cannot be wrong, only
// slower).
func (e *Engine) queueIndex(j *trace.Job) int {
	if len(e.queue) > 0 && e.queue[0] == j {
		return 0 // the common case: starting the head
	}
	score := e.cfg.Policy.Score(j, e.clock)
	var i int
	if e.scnOn {
		i = sort.Search(len(e.queue), func(i int) bool {
			return !e.cfg.Scenario.Less(e.queue[i], j, e.qscore[i], score, e.clock)
		})
	} else {
		i = sort.Search(len(e.queue), func(i int) bool {
			return !sched.Less(e.queue[i], j, e.qscore[i], score)
		})
	}
	if i < len(e.queue) && e.queue[i] == j {
		return i
	}
	for k, q := range e.queue {
		if q == j {
			return k
		}
	}
	return -1
}

// StartJob implements backfill.State: it allocates processors, removes the
// job from the waiting queue, and schedules its completion. As on a real
// system (§2.1.2: "the scheduler will cancel or kill jobs that surpass their
// Request Time"), a job whose actual runtime exceeds its request is killed
// when the wall-time limit expires.
func (e *Engine) StartJob(j *trace.Job) {
	if err := e.cluster.AllocRes(j.ID, j.Procs, j.Mem); err != nil {
		panic(fmt.Sprintf("sim: starting job %d: %v", j.ID, err))
	}
	i := e.queueIndex(j)
	if i < 0 {
		panic(fmt.Sprintf("sim: job %d started but not in queue", j.ID))
	}
	e.queue = append(e.queue[:i], e.queue[i+1:]...)
	e.qscore = append(e.qscore[:i], e.qscore[i+1:]...)
	run := effectiveRuntime(j)
	e.insertRunning(j, e.clock)
	e.events.Push(eventq.Event{Time: e.clock + run, Kind: eventq.Finish, Payload: j})
	e.records = append(e.records, metrics.Record{Job: j, Start: e.clock, End: e.clock + run})
}

// effectiveRuntime is the time a started job occupies the machine: its
// actual runtime, clamped to the wall-time limit it is killed at.
func effectiveRuntime(j *trace.Job) int64 {
	if j.Request > 0 && j.Runtime > j.Request {
		return j.Request // killed at the wall-time limit
	}
	return j.Runtime
}

// insertRunning adds a job to the ID-sorted running set (shared by StartJob
// and snapshot restore, so the representation cannot drift between them).
func (e *Engine) insertRunning(j *trace.Job, start int64) {
	ri := e.runningIndex(j.ID)
	e.running = append(e.running, backfill.Running{})
	copy(e.running[ri+1:], e.running[ri:])
	e.running[ri] = backfill.Running{Job: j, Start: start}
}

// QueueLen returns the number of waiting jobs (useful for instrumentation).
func (e *Engine) QueueLen() int { return len(e.queue) }

// Records returns the per-job outcomes recorded so far.
func (e *Engine) Records() []metrics.Record { return e.records }
