package sim

import (
	"math"
	"strings"
	"testing"

	"repro/internal/backfill"
	"repro/internal/sched"
	"repro/internal/trace"
)

func TestTimelineProbeObservesRun(t *testing.T) {
	tr := trace.SyntheticSDSCSP2(300, 13)
	probe := &TimelineProbe{}
	_, err := Run(tr, Config{
		Policy:     sched.FCFS{},
		Backfiller: backfill.NewEASY(backfill.RequestTime{}),
		Probe:      probe,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(probe.Times) == 0 {
		t.Fatal("probe saw no events")
	}
	if len(probe.Times) != len(probe.Queue) || len(probe.Times) != len(probe.Util) {
		t.Fatal("probe series lengths differ")
	}
	var prev int64 = -1
	for i, tm := range probe.Times {
		if tm < prev {
			t.Fatalf("time went backwards at sample %d", i)
		}
		prev = tm
		if probe.Util[i] < 0 || probe.Util[i] > 1 {
			t.Fatalf("utilization %v out of range", probe.Util[i])
		}
		if probe.Queue[i] < 0 {
			t.Fatal("negative queue depth")
		}
	}
	mu := probe.MeanUtilization()
	if mu <= 0 || mu > 1 || math.IsNaN(mu) {
		t.Fatalf("mean utilization %v", mu)
	}
	if probe.MaxQueue == 0 {
		t.Fatal("a loaded trace should have queued at some point")
	}
}

func TestTimelineProbeSparkline(t *testing.T) {
	p := &TimelineProbe{Util: []float64{0, 0.5, 1}}
	s := p.Sparkline(6)
	if len(s) != 6 {
		t.Fatalf("sparkline length %d", len(s))
	}
	if s[0] != ' ' || s[5] != '@' {
		t.Fatalf("sparkline extremes wrong: %q", s)
	}
	if (&TimelineProbe{}).Sparkline(5) != "" {
		t.Fatal("empty probe should render empty sparkline")
	}
}

func TestTimelineProbeString(t *testing.T) {
	p := &TimelineProbe{}
	p.Observe(0, 3, 2, 4)
	p.Observe(10, 1, 4, 4)
	s := p.String()
	if !strings.Contains(s, "max-queue=3") {
		t.Fatalf("probe summary %q", s)
	}
	// mean utilization over [0,10] at 50% busy
	if got := p.MeanUtilization(); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("mean utilization %v, want 0.5", got)
	}
}

func TestProbeDoesNotAlterSchedule(t *testing.T) {
	tr := trace.SyntheticHPC2N(200, 17)
	cfg := Config{Policy: sched.SJF{}, Backfiller: backfill.NewEASY(backfill.RequestTime{})}
	plain, err := Run(tr.Clone(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Probe = &TimelineProbe{}
	probed, err := Run(tr.Clone(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Summary.MeanBSLD != probed.Summary.MeanBSLD {
		t.Fatal("probe changed scheduling results")
	}
}
