package sim

// This file pins the scheduling kernel's behaviour: the optimised engine
// (incrementally sorted queue, binary-search removal, incrementally
// maintained running set, scratch-buffer backfillers) must produce schedules
// bit-identical to the original naive kernel (full stable re-sort at every
// event, linear-scan removal, rebuild-and-sort running set, allocate-per-call
// backfillers). The reference implementations below are verbatim copies of
// that original code, kept only here as the golden model.

import (
	"sort"
	"testing"

	"repro/internal/backfill"
	"repro/internal/cluster"
	"repro/internal/eventq"
	"repro/internal/metrics"
	"repro/internal/sched"
	"repro/internal/stats"
	"repro/internal/trace"
)

// ---- reference kernel (the pre-optimisation engine, verbatim) ----

type refEngine struct {
	policy     sched.Policy
	backfiller backfill.Backfiller
	procs      int
	clock      int64
	cluster    *cluster.Cluster
	events     eventq.Queue
	queue      []*trace.Job
	running    map[int]backfill.Running
	records    []metrics.Record
}

func newRefEngine(t *trace.Trace, p sched.Policy, bf backfill.Backfiller) *refEngine {
	e := &refEngine{
		policy:     p,
		backfiller: bf,
		procs:      t.Procs,
		cluster:    cluster.New(t.Procs),
		running:    make(map[int]backfill.Running),
	}
	for _, j := range t.Jobs {
		e.events.Push(eventq.Event{Time: j.Submit, Kind: eventq.Arrive, Payload: j})
	}
	return e
}

func (e *refEngine) run() []metrics.Record {
	for {
		ev, ok := e.events.Pop()
		if !ok {
			return e.records
		}
		e.clock = ev.Time
		e.apply(ev)
		for {
			next, ok := e.events.Peek()
			if !ok || next.Time != e.clock {
				break
			}
			ev, _ = e.events.Pop()
			e.apply(ev)
		}
		e.schedule()
	}
}

func (e *refEngine) apply(ev eventq.Event) {
	switch ev.Kind {
	case eventq.Arrive:
		e.queue = append(e.queue, ev.Payload.(*trace.Job))
	case eventq.Finish:
		j := ev.Payload.(*trace.Job)
		if err := e.cluster.Release(j.ID); err != nil {
			panic(err)
		}
		delete(e.running, j.ID)
	}
}

// refSort is the original comparator sort: Score is recomputed inside the
// comparator O(n log n) times per event.
func refSort(jobs []*trace.Job, p sched.Policy, now int64) {
	sort.SliceStable(jobs, func(a, b int) bool {
		sa, sb := p.Score(jobs[a], now), p.Score(jobs[b], now)
		if sa != sb {
			return sa < sb
		}
		if jobs[a].Submit != jobs[b].Submit {
			return jobs[a].Submit < jobs[b].Submit
		}
		return jobs[a].ID < jobs[b].ID
	})
}

func (e *refEngine) schedule() {
	if len(e.queue) == 0 {
		return
	}
	refSort(e.queue, e.policy, e.clock)
	for len(e.queue) > 0 && e.cluster.Fits(e.queue[0].Procs) {
		e.StartJob(e.queue[0])
	}
	if len(e.queue) == 0 || e.backfiller == nil {
		return
	}
	head := e.queue[0]
	rest := append([]*trace.Job(nil), e.queue[1:]...)
	e.backfiller.Backfill(e, head, rest)
}

func (e *refEngine) Now() int64      { return e.clock }
func (e *refEngine) FreeProcs() int  { return e.cluster.Free() }
func (e *refEngine) TotalProcs() int { return e.procs }

func (e *refEngine) Running() []backfill.Running {
	rs := make([]backfill.Running, 0, len(e.running))
	for _, r := range e.running {
		rs = append(rs, r)
	}
	sort.Slice(rs, func(a, b int) bool { return rs[a].Job.ID < rs[b].Job.ID })
	return rs
}

func (e *refEngine) StartJob(j *trace.Job) {
	if err := e.cluster.Alloc(j.ID, j.Procs); err != nil {
		panic(err)
	}
	removed := false
	for i, q := range e.queue {
		if q == j {
			e.queue = append(e.queue[:i], e.queue[i+1:]...)
			removed = true
			break
		}
	}
	if !removed {
		panic("ref: job started but not in queue")
	}
	run := j.Runtime
	if j.Request > 0 && run > j.Request {
		run = j.Request
	}
	e.running[j.ID] = backfill.Running{Job: j, Start: e.clock}
	e.events.Push(eventq.Event{Time: e.clock + run, Kind: eventq.Finish, Payload: j})
	e.records = append(e.records, metrics.Record{Job: j, Start: e.clock, End: e.clock + run})
}

// ---- reference backfillers (pre-optimisation, verbatim) ----

func refComputeReservation(st backfill.State, head *trace.Job, est backfill.Estimator) backfill.Reservation {
	free := st.FreeProcs()
	if free >= head.Procs {
		return backfill.Reservation{Shadow: st.Now(), Extra: free - head.Procs}
	}
	running := append([]backfill.Running(nil), st.Running()...)
	sort.Slice(running, func(a, b int) bool {
		ea := running[a].Start + est.Estimate(running[a].Job)
		eb := running[b].Start + est.Estimate(running[b].Job)
		if ea != eb {
			return ea < eb
		}
		return running[a].Job.ID < running[b].Job.ID
	})
	avail := free
	for _, r := range running {
		avail += r.Job.Procs
		if avail >= head.Procs {
			end := r.Start + est.Estimate(r.Job)
			if end < st.Now() {
				end = st.Now()
			}
			return backfill.Reservation{Shadow: end, Extra: avail - head.Procs}
		}
	}
	return backfill.Reservation{Shadow: st.Now(), Extra: 0}
}

type refEASY struct {
	est      backfill.Estimator
	sjfOrder bool
}

func (e *refEASY) Name() string { return "ref-easy" }

func (e *refEASY) Backfill(st backfill.State, head *trace.Job, queue []*trace.Job) {
	res := refComputeReservation(st, head, e.est)
	now := st.Now()
	free := st.FreeProcs()
	extra := res.Extra

	cands := queue
	if e.sjfOrder {
		cands = append([]*trace.Job(nil), queue...)
		sort.SliceStable(cands, func(a, b int) bool {
			ea, eb := e.est.Estimate(cands[a]), e.est.Estimate(cands[b])
			if ea != eb {
				return ea < eb
			}
			return cands[a].ID < cands[b].ID
		})
	}

	for _, j := range cands {
		if j.Procs > free {
			continue
		}
		endsByShadow := now+e.est.Estimate(j) <= res.Shadow
		usesExtraOnly := j.Procs <= extra
		if !endsByShadow && !usesExtraOnly {
			continue
		}
		st.StartJob(j)
		free -= j.Procs
		if !endsByShadow {
			extra -= j.Procs
		}
		if free == 0 {
			return
		}
	}
}

type refConservative struct {
	est backfill.Estimator
}

func (c *refConservative) Name() string { return "ref-cons" }

func (c *refConservative) Backfill(st backfill.State, head *trace.Job, queue []*trace.Job) {
	for {
		started := c.backfillOne(st, head, queue)
		if started == nil {
			return
		}
		out := queue[:0]
		for _, j := range queue {
			if j != started {
				out = append(out, j)
			}
		}
		queue = out
	}
}

func (c *refConservative) backfillOne(st backfill.State, head *trace.Job, queue []*trace.Job) *trace.Job {
	now := st.Now()

	reserve := func(p *cluster.Profile, skip *trace.Job) bool {
		jobs := append([]*trace.Job{head}, queue...)
		for _, j := range jobs {
			if j == skip {
				continue
			}
			dur := c.est.Estimate(j)
			start := p.FindStart(now, dur, j.Procs)
			if err := p.Reserve(start, start+dur, j.Procs); err != nil {
				return false
			}
		}
		return true
	}

	baseline := c.profile(st, now)
	if !reserve(baseline, nil) {
		return nil
	}
	starts := c.reservationStarts(st, now, head, queue)

	for _, j := range queue {
		if j.Procs > st.FreeProcs() {
			continue
		}
		p := c.profile(st, now)
		dur := c.est.Estimate(j)
		if p.MinFree(now, now+dur) < j.Procs {
			continue
		}
		if err := p.Reserve(now, now+dur, j.Procs); err != nil {
			continue
		}
		ok := true
		jobs := append([]*trace.Job{head}, queue...)
		for _, o := range jobs {
			if o == j {
				continue
			}
			odur := c.est.Estimate(o)
			s := p.FindStart(now, odur, o.Procs)
			if err := p.Reserve(s, s+odur, o.Procs); err != nil {
				ok = false
				break
			}
			if s > starts[o.ID] {
				ok = false
				break
			}
		}
		if ok {
			st.StartJob(j)
			return j
		}
	}
	return nil
}

func (c *refConservative) profile(st backfill.State, now int64) *cluster.Profile {
	p := cluster.NewProfile(st.TotalProcs(), now)
	for _, r := range st.Running() {
		end := r.Start + c.est.Estimate(r.Job)
		if end <= now {
			end = now + 1
		}
		_ = p.Reserve(now, end, r.Job.Procs)
	}
	return p
}

func (c *refConservative) reservationStarts(st backfill.State, now int64, head *trace.Job, queue []*trace.Job) map[int]int64 {
	p := c.profile(st, now)
	starts := make(map[int]int64, len(queue)+1)
	for _, j := range append([]*trace.Job{head}, queue...) {
		dur := c.est.Estimate(j)
		s := p.FindStart(now, dur, j.Procs)
		_ = p.Reserve(s, s+dur, j.Procs)
		starts[j.ID] = s
	}
	return starts
}

type refSlack struct {
	est    backfill.Estimator
	factor float64
}

func (s *refSlack) Name() string { return "ref-slack" }

func (s *refSlack) Backfill(st backfill.State, head *trace.Job, queue []*trace.Job) {
	for {
		started := s.backfillOne(st, head, queue)
		if started == nil {
			return
		}
		out := queue[:0]
		for _, j := range queue {
			if j != started {
				out = append(out, j)
			}
		}
		queue = out
	}
}

func (s *refSlack) backfillOne(st backfill.State, head *trace.Job, queue []*trace.Job) *trace.Job {
	now := st.Now()
	baseStarts := s.reservationStarts(st, now, head, queue, nil)

	for _, cand := range queue {
		if cand.Procs > st.FreeProcs() {
			continue
		}
		newStarts := s.reservationStarts(st, now, head, queue, cand)
		if newStarts == nil {
			continue
		}
		ok := true
		for _, o := range append([]*trace.Job{head}, queue...) {
			if o == cand {
				continue
			}
			allowed := baseStarts[o.ID]
			if o != head {
				allowed += int64(s.factor * float64(s.est.Estimate(o)))
			}
			if newStarts[o.ID] > allowed {
				ok = false
				break
			}
		}
		if ok {
			st.StartJob(cand)
			return cand
		}
	}
	return nil
}

func (s *refSlack) reservationStarts(st backfill.State, now int64, head *trace.Job, queue []*trace.Job, runNow *trace.Job) map[int]int64 {
	p := cluster.NewProfile(st.TotalProcs(), now)
	for _, r := range st.Running() {
		end := r.Start + s.est.Estimate(r.Job)
		if end <= now {
			end = now + 1
		}
		_ = p.Reserve(now, end, r.Job.Procs)
	}
	if runNow != nil {
		dur := s.est.Estimate(runNow)
		if p.MinFree(now, now+dur) < runNow.Procs {
			return nil
		}
		if err := p.Reserve(now, now+dur, runNow.Procs); err != nil {
			return nil
		}
	}
	starts := make(map[int]int64, len(queue)+1)
	for _, j := range append([]*trace.Job{head}, queue...) {
		if j == runNow {
			continue
		}
		dur := s.est.Estimate(j)
		start := p.FindStart(now, dur, j.Procs)
		_ = p.Reserve(start, start+dur, j.Procs)
		starts[j.ID] = start
	}
	return starts
}

// ---- the differential test itself ----

// backfillPair yields a freshly constructed (reference, optimised)
// backfiller pair per call: backfillers carry scratch state, so each replay
// gets its own instances.
type backfillPair struct {
	name string
	mk   func() (ref backfill.Backfiller, opt backfill.Backfiller)
}

func backfillPairs() []backfillPair {
	return []backfillPair{
		{"none", func() (backfill.Backfiller, backfill.Backfiller) { return nil, nil }},
		{"easy-rt", func() (backfill.Backfiller, backfill.Backfiller) {
			return &refEASY{est: backfill.RequestTime{}}, backfill.NewEASY(backfill.RequestTime{})
		}},
		{"easy-ar", func() (backfill.Backfiller, backfill.Backfiller) {
			return &refEASY{est: backfill.ActualRuntime{}}, backfill.NewEASY(backfill.ActualRuntime{})
		}},
		{"easy-rt-sjf", func() (backfill.Backfiller, backfill.Backfiller) {
			return &refEASY{est: backfill.RequestTime{}, sjfOrder: true},
				&backfill.EASY{Est: backfill.RequestTime{}, Order: backfill.SJFOrder}
		}},
		{"cons-rt", func() (backfill.Backfiller, backfill.Backfiller) {
			return &refConservative{est: backfill.RequestTime{}}, backfill.NewConservative(backfill.RequestTime{})
		}},
		{"slack-rt", func() (backfill.Backfiller, backfill.Backfiller) {
			return &refSlack{est: backfill.RequestTime{}, factor: 0.5}, backfill.NewSlack(backfill.RequestTime{})
		}},
	}
}

func diffRecords(t *testing.T, label string, want, got []metrics.Record) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: record count %d (reference) vs %d (optimised)", label, len(want), len(got))
	}
	for i := range want {
		w, g := want[i], got[i]
		if w.Job.ID != g.Job.ID || w.Start != g.Start || w.End != g.End {
			t.Fatalf("%s: record %d differs: reference job %d [%d,%d), optimised job %d [%d,%d)",
				label, i, w.Job.ID, w.Start, w.End, g.Job.ID, g.Start, g.End)
		}
	}
}

// TestKernelDifferential replays traces under the original and the optimised
// kernels for every Table 3 policy and every backfilling strategy, and
// requires bit-identical schedules (same jobs, same starts, same ends, in
// the same record order).
func TestKernelDifferential(t *testing.T) {
	traces := []*trace.Trace{
		trace.SyntheticSDSCSP2(400, 7),
		trace.SyntheticHPC2N(300, 13),
	}
	for _, tr := range traces {
		for _, p := range sched.All() {
			for _, pair := range backfillPairs() {
				label := tr.Name + "/" + p.Name() + "/" + pair.name
				if pair.name == "cons-rt" || pair.name == "slack-rt" {
					// Profile-based strategies are O(n^2) per event; keep the
					// differential run fast with a truncated trace.
					short := tr.Clone()
					short.Jobs = short.Jobs[:120]
					refBF, optBF := pair.mk()
					want := newRefEngine(short.Clone(), p, refBF).run()
					res, err := Run(short.Clone(), Config{Policy: p, Backfiller: optBF})
					if err != nil {
						t.Fatal(err)
					}
					diffRecords(t, label, want, res.Records)
					continue
				}
				refBF, optBF := pair.mk()
				want := newRefEngine(tr.Clone(), p, refBF).run()
				res, err := Run(tr.Clone(), Config{Policy: p, Backfiller: optBF})
				if err != nil {
					t.Fatal(err)
				}
				diffRecords(t, label, want, res.Records)
			}
		}
	}
}

// TestKernelDifferentialRandom fuzzes the comparison over random small
// traces: bursty arrivals force deep queues and many same-timestamp event
// batches, which is where incremental maintenance could diverge.
func TestKernelDifferentialRandom(t *testing.T) {
	for seed := uint64(1); seed <= 12; seed++ {
		r := stats.NewRNG(seed)
		procs := []int{8, 32, 100}[r.Intn(3)]
		n := r.Intn(80) + 10
		tr := &trace.Trace{Name: "fuzz", Procs: procs}
		var submit int64
		for i := 0; i < n; i++ {
			if r.Intn(3) > 0 { // bursts: 1/3 of jobs share a submit time
				submit += r.Int63n(150)
			}
			run := r.Int63n(500) + 1
			req := run + r.Int63n(500)
			tr.Jobs = append(tr.Jobs, &trace.Job{
				ID: i + 1, Submit: submit, Runtime: run, Request: req, Procs: r.Intn(procs) + 1,
			})
		}
		for _, p := range sched.All() {
			for _, pair := range backfillPairs() {
				refBF, optBF := pair.mk()
				want := newRefEngine(tr.Clone(), p, refBF).run()
				res, err := Run(tr.Clone(), Config{Policy: p, Backfiller: optBF})
				if err != nil {
					t.Fatal(err)
				}
				diffRecords(t, p.Name()+"/"+pair.name, want, res.Records)
			}
		}
	}
}
