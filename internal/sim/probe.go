package sim

import (
	"fmt"
	"strings"
)

// Probe observes the engine after every processed event batch, enabling
// queue-depth and utilization instrumentation without touching the
// scheduling logic. Attach one via Config.Probe.
type Probe interface {
	Observe(now int64, queueLen, freeProcs, totalProcs int)
}

// TimelineProbe records a (time, queue depth, utilization) sample per
// simulator event, plus running maxima — the data behind utilization and
// backlog plots.
type TimelineProbe struct {
	Times    []int64
	Queue    []int
	Util     []float64
	MaxQueue int
	// BusyIntegral accumulates utilization x elapsed time, so the mean
	// utilization over the run is BusyIntegral / (last - first).
	BusyIntegral float64

	lastTime int64
	lastUtil float64
	started  bool
}

// Observe implements Probe.
func (p *TimelineProbe) Observe(now int64, queueLen, freeProcs, totalProcs int) {
	util := 1 - float64(freeProcs)/float64(totalProcs)
	p.Times = append(p.Times, now)
	p.Queue = append(p.Queue, queueLen)
	p.Util = append(p.Util, util)
	if queueLen > p.MaxQueue {
		p.MaxQueue = queueLen
	}
	if p.started {
		p.BusyIntegral += p.lastUtil * float64(now-p.lastTime)
	}
	p.started = true
	p.lastTime = now
	p.lastUtil = util
}

// MeanUtilization returns the time-weighted mean utilization observed.
func (p *TimelineProbe) MeanUtilization() float64 {
	if len(p.Times) < 2 {
		return 0
	}
	span := p.Times[len(p.Times)-1] - p.Times[0]
	if span <= 0 {
		return 0
	}
	return p.BusyIntegral / float64(span)
}

// Sparkline renders the utilization series as a coarse ASCII strip of the
// given width — a quick visual check in CLI output.
func (p *TimelineProbe) Sparkline(width int) string {
	if len(p.Util) == 0 || width <= 0 {
		return ""
	}
	levels := []byte(" .:-=+*#%@")
	var sb strings.Builder
	for i := 0; i < width; i++ {
		idx := i * len(p.Util) / width
		l := int(p.Util[idx] * float64(len(levels)-1))
		if l < 0 {
			l = 0
		}
		if l >= len(levels) {
			l = len(levels) - 1
		}
		sb.WriteByte(levels[l])
	}
	return sb.String()
}

// String summarises the probe.
func (p *TimelineProbe) String() string {
	return fmt.Sprintf("events=%d max-queue=%d mean-util=%.1f%%",
		len(p.Times), p.MaxQueue, p.MeanUtilization()*100)
}
