package sim

import (
	"fmt"

	"repro/internal/trace"
)

// Live-ingestion engine API: the serve daemon (internal/serve) drives one
// authoritative Engine from streaming job submissions instead of a fully
// known trace. The batch replay path is untouched — a live engine is an
// ordinary Engine whose arrival stream starts empty and grows via Inject, so
// every kernel invariant (incrementally sorted queue, lazy arrival feeding,
// snapshot/resume) applies verbatim.

// NewLiveEngine prepares an engine over an initially empty arrival stream on
// a machine of the given size. Jobs are admitted later via Inject; mem == 0
// disables the memory dimension exactly as for batch traces.
func NewLiveEngine(name string, procs, mem int, cfg Config) (*Engine, error) {
	return NewEngine(&trace.Trace{Name: name, Procs: procs, Mem: mem}, cfg)
}

// Inject appends a job to the engine's arrival stream. The job must satisfy
// the same invariants trace.Validate enforces for batch replays: it must fit
// the machine, and its submit time must be at or after both the engine clock
// and the last not-yet-admitted arrival, so the stream stays submit-sorted.
// The job is admitted to the waiting queue when the clock reaches its submit
// time (Step/RunUntil), exactly like a batch arrival.
func (e *Engine) Inject(j *trace.Job) error {
	if err := j.Validate(); err != nil {
		return err
	}
	if j.Procs > e.procs {
		return fmt.Errorf("sim: job %d requests %d procs > machine size %d", j.ID, j.Procs, e.procs)
	}
	if mt := e.cluster.TotalMem(); mt > 0 && j.Mem > mt {
		return fmt.Errorf("sim: job %d requests %d mem > machine capacity %d", j.ID, j.Mem, mt)
	}
	if j.Submit < e.clock {
		return fmt.Errorf("sim: job %d submitted at %d before engine clock %d", j.ID, j.Submit, e.clock)
	}
	if n := len(e.arrivals); n > e.nextArr && j.Submit < e.arrivals[n-1].Submit {
		return fmt.Errorf("sim: job %d submitted at %d before pending arrival at %d", j.ID, j.Submit, e.arrivals[n-1].Submit)
	}
	e.arrivals = append(e.arrivals, j)
	return nil
}

// Cancel removes a not-yet-started job by ID — either still pending in the
// arrival stream or waiting in the queue — and reports whether it was found.
// Running and finished jobs cannot be canceled (the simulator has no
// preemption); callers distinguish "too late" from "unknown" themselves.
// Removing a queued job preserves the queue's sort order, and any Wake event
// already scheduled for the job becomes a harmless timed no-op.
func (e *Engine) Cancel(id int) bool {
	for i := e.nextArr; i < len(e.arrivals); i++ {
		if e.arrivals[i].ID == id {
			e.arrivals = append(e.arrivals[:i], e.arrivals[i+1:]...)
			return true
		}
	}
	for i, j := range e.queue {
		if j.ID == id {
			e.queue = append(e.queue[:i], e.queue[i+1:]...)
			e.qscore = append(e.qscore[:i], e.qscore[i+1:]...)
			return true
		}
	}
	return false
}

// NextEventTime returns the earliest pending timestamp (finish event, wake
// tick or unadmitted arrival), or ok=false when the engine is drained. The
// serve daemon maps it to a wall-clock deadline through its clock adapter.
func (e *Engine) NextEventTime() (int64, bool) { return e.nextTime() }

// AppendQueued appends the waiting jobs in queue order to buf and returns
// it. For static policies the order is the authoritative scheduling order;
// callers must not mutate the jobs.
func (e *Engine) AppendQueued(buf []*trace.Job) []*trace.Job {
	return append(buf, e.queue...)
}

// AppendPending appends the injected-but-not-yet-admitted arrivals (submit
// time still in the future, or not yet advanced to) in submit order.
func (e *Engine) AppendPending(buf []*trace.Job) []*trace.Job {
	return append(buf, e.arrivals[e.nextArr:]...)
}

// PendingArrivals returns the number of injected jobs not yet admitted to
// the waiting queue.
func (e *Engine) PendingArrivals() int { return len(e.arrivals) - e.nextArr }

// RunningCount returns the number of executing jobs.
func (e *Engine) RunningCount() int { return len(e.running) }
