package sim

import (
	"math"
	"sort"
	"testing"

	"repro/internal/backfill"
	"repro/internal/metrics"
	"repro/internal/sched"
	"repro/internal/stats"
	"repro/internal/trace"
)

// This file pins the enriched scenario semantics (resource vectors, priority
// tiers, aging-based starvation bounds) against a naive per-event-time
// reference simulator, the same way differential_test.go pins the classic
// kernel. The reference makes every decision from first principles at each
// event instant: a full stable sort of the queue by Scenario.Less, plain
// free-processor/free-memory counters, and — for the profile-based
// backfillers — a reservation-list availability model whose feasibility
// checks scan every reservation. Nothing is incremental, so any divergence
// points at the optimised engine's bookkeeping.

// scnProf is a naive two-dimensional availability profile: a flat list of
// reservations, with feasibility decided by scanning all of them at every
// boundary instant. It mirrors cluster.VecProfile's semantics (FindStart
// returns the earliest feasible start, both dimensions jointly) at O(n^2)
// cost.
type scnProf struct {
	total, memTotal int
	res             []scnRes
}

type scnRes struct {
	start, end int64
	procs, mem int
}

func (p *scnProf) clone() *scnProf {
	return &scnProf{total: p.total, memTotal: p.memTotal, res: append([]scnRes(nil), p.res...)}
}

func (p *scnProf) add(start, end int64, procs, mem int) {
	p.res = append(p.res, scnRes{start, end, procs, mem})
}

// freeAt scans every reservation overlapping instant t.
func (p *scnProf) freeAt(t int64) (int, int) {
	fp, fm := p.total, p.memTotal
	for _, r := range p.res {
		if r.start <= t && t < r.end {
			fp -= r.procs
			fm -= r.mem
		}
	}
	return fp, fm
}

// fits checks both dimensions at the window start and at every reservation
// boundary strictly inside the window (the free functions are piecewise
// constant between boundaries).
func (p *scnProf) fits(start, end int64, procs, mem int) bool {
	if fp, fm := p.freeAt(start); fp < procs || fm < mem {
		return false
	}
	for _, r := range p.res {
		for _, t := range [2]int64{r.start, r.end} {
			if t > start && t < end {
				if fp, fm := p.freeAt(t); fp < procs || fm < mem {
					return false
				}
			}
		}
	}
	return true
}

// findStart returns the earliest t >= after with [t, t+dur) jointly feasible.
// Candidate starts are `after` and every reservation end beyond it: free
// resources only increase at reservation ends, so the earliest feasible start
// is always one of those instants.
func (p *scnProf) findStart(after, dur int64, procs, mem int) int64 {
	cands := []int64{after}
	for _, r := range p.res {
		if r.end > after {
			cands = append(cands, r.end)
		}
	}
	sort.Slice(cands, func(a, b int) bool { return cands[a] < cands[b] })
	for _, c := range cands {
		if p.fits(c, c+dur, procs, mem) {
			return c
		}
	}
	// Unreachable for valid inputs: the instant past the last reservation is
	// an empty machine.
	return cands[len(cands)-1]
}

// scnRefBF is a reference backfiller: invoked with the (already sorted) head
// and rest of the queue, it may start jobs via e.start.
type scnRefBF func(e *scnRefEngine, head *trace.Job, queue []*trace.Job)

// scnRefRun is one executing job in the reference engine.
type scnRefRun struct {
	job        *trace.Job
	start, end int64
}

// scnRefEngine is the naive scenario reference simulator. It advances to the
// next event instant (arrival, completion, or a queued job's starvation
// transition), applies completions before arrivals, and runs one scheduling
// pass with a full scenario sort.
type scnRefEngine struct {
	policy sched.Policy
	scn    sched.Scenario
	est    backfill.Estimator
	bf     scnRefBF

	totalProcs, totalMem int
	freeProcs, freeMem   int
	clock                int64

	pending []*trace.Job // submit-sorted, not yet arrived
	pi      int
	queue   []*trace.Job
	running []scnRefRun
	// wakes mirrors the engine's Wake events one-for-one: a job's starvation
	// instant is recorded at arrival and the reference wakes at it even if
	// the job has long started, because the optimised engine's stale Wake
	// events also trigger a scheduling pass at that instant.
	wakes   []int64
	records []metrics.Record
}

func newScnRef(t *trace.Trace, p sched.Policy, scn sched.Scenario, est backfill.Estimator, bf scnRefBF) *scnRefEngine {
	return &scnRefEngine{
		policy: p, scn: scn, est: est, bf: bf,
		totalProcs: t.Procs, totalMem: t.Mem,
		freeProcs: t.Procs, freeMem: t.Mem,
		pending: t.Jobs,
	}
}

// mem is the job's effective memory demand: zero whenever the machine has no
// memory dimension, matching backfill.memDemand.
func (e *scnRefEngine) mem(j *trace.Job) int {
	if e.totalMem == 0 {
		return 0
	}
	return j.Mem
}

func (e *scnRefEngine) run() []metrics.Record {
	for {
		next := int64(math.MaxInt64)
		if e.pi < len(e.pending) {
			next = e.pending[e.pi].Submit
		}
		for _, r := range e.running {
			if r.end < next {
				next = r.end
			}
		}
		for _, w := range e.wakes {
			if w > e.clock && w < next {
				next = w
			}
		}
		if next == math.MaxInt64 {
			return e.records
		}
		e.clock = next
		// Completions before arrivals at the same instant, all drained before
		// the single scheduling pass — the engine's Step ordering.
		keep := e.running[:0]
		for _, r := range e.running {
			if r.end == e.clock {
				e.freeProcs += r.job.Procs
				e.freeMem += e.mem(r.job)
			} else {
				keep = append(keep, r)
			}
		}
		e.running = keep
		for e.pi < len(e.pending) && e.pending[e.pi].Submit == e.clock {
			j := e.pending[e.pi]
			e.queue = append(e.queue, j)
			if e.scn.Aging() {
				if sa := e.scn.StarvesAt(j); sa > e.clock && sa != math.MaxInt64 {
					e.wakes = append(e.wakes, sa)
				}
			}
			e.pi++
		}
		kw := e.wakes[:0]
		for _, w := range e.wakes {
			if w > e.clock {
				kw = append(kw, w)
			}
		}
		e.wakes = kw
		e.schedule()
	}
}

func (e *scnRefEngine) schedule() {
	if len(e.queue) == 0 {
		return
	}
	now := e.clock
	sort.SliceStable(e.queue, func(a, b int) bool {
		ja, jb := e.queue[a], e.queue[b]
		return e.scn.Less(ja, jb, e.policy.Score(ja, now), e.policy.Score(jb, now), now)
	})
	for len(e.queue) > 0 {
		h := e.queue[0]
		if h.Procs > e.freeProcs || e.mem(h) > e.freeMem {
			break
		}
		e.start(h)
	}
	if len(e.queue) == 0 || e.bf == nil {
		return
	}
	head := e.queue[0]
	rest := append([]*trace.Job(nil), e.queue[1:]...)
	e.bf(e, head, rest)
}

func (e *scnRefEngine) start(j *trace.Job) {
	for i, q := range e.queue {
		if q == j {
			e.queue = append(e.queue[:i], e.queue[i+1:]...)
			break
		}
	}
	e.freeProcs -= j.Procs
	e.freeMem -= e.mem(j)
	run := j.Runtime
	if j.Request > 0 && run > j.Request {
		run = j.Request
	}
	e.running = append(e.running, scnRefRun{job: j, start: e.clock, end: e.clock + run})
	e.records = append(e.records, metrics.Record{Job: j, Start: e.clock, End: e.clock + run})
}

// reservation recomputes a job's EASY reservation from scratch: sort the
// running set by (estimated end, ID) and accumulate until both dimensions
// cover the demand.
func (e *scnRefEngine) reservation(head *trace.Job) backfill.Reservation {
	needMem := e.mem(head)
	if e.freeProcs >= head.Procs && e.freeMem >= needMem {
		return backfill.Reservation{Shadow: e.clock, Extra: e.freeProcs - head.Procs, ExtraMem: e.freeMem - needMem}
	}
	ends := append([]scnRefRun(nil), e.running...)
	sort.Slice(ends, func(a, b int) bool {
		ea := ends[a].start + e.est.Estimate(ends[a].job)
		eb := ends[b].start + e.est.Estimate(ends[b].job)
		if ea != eb {
			return ea < eb
		}
		return ends[a].job.ID < ends[b].job.ID
	})
	avail, availMem := e.freeProcs, e.freeMem
	for _, r := range ends {
		avail += r.job.Procs
		availMem += e.mem(r.job)
		if avail >= head.Procs && availMem >= needMem {
			end := r.start + e.est.Estimate(r.job)
			if end < e.clock {
				end = e.clock
			}
			return backfill.Reservation{Shadow: end, Extra: avail - head.Procs, ExtraMem: availMem - needMem}
		}
	}
	return backfill.Reservation{Shadow: e.clock, Extra: 0}
}

// scnRefEASY is the reference scenario-aware EASY: head reservation plus one
// blocking reservation per starving queued job, candidates scanned in queue
// or SJF order.
func scnRefEASY(sjf bool) scnRefBF {
	return func(e *scnRefEngine, head *trace.Job, queue []*trace.Job) {
		res := e.reservation(head)
		now := e.clock
		free, memFree := e.freeProcs, e.freeMem
		extra, extraMem := res.Extra, res.ExtraMem

		type protection struct {
			job *trace.Job
			res backfill.Reservation
		}
		var prots []protection
		if e.scn.Aging() {
			for _, j := range queue {
				if e.scn.Starving(j, now) {
					prots = append(prots, protection{job: j, res: e.reservation(j)})
				}
			}
		}

		cands := append([]*trace.Job(nil), queue...)
		if sjf {
			scnOrder := e.scn.Enabled()
			pri := e.scn.Priorities
			sort.SliceStable(cands, func(a, b int) bool {
				ja, jb := cands[a], cands[b]
				if scnOrder {
					as, bs := e.scn.Starving(ja, now), e.scn.Starving(jb, now)
					if as != bs {
						return as
					}
					if pri && ja.Priority != jb.Priority {
						return ja.Priority > jb.Priority
					}
				}
				ea, eb := e.est.Estimate(ja), e.est.Estimate(jb)
				if ea != eb {
					return ea < eb
				}
				return ja.ID < jb.ID
			})
		}

		for _, j := range cands {
			jm := e.mem(j)
			if j.Procs > free || jm > memFree {
				continue
			}
			end := now + e.est.Estimate(j)
			endsByShadow := end <= res.Shadow
			usesExtraOnly := j.Procs <= extra && jm <= extraMem
			if !endsByShadow && !usesExtraOnly {
				continue
			}
			clear := true
			for pi := range prots {
				p := &prots[pi]
				if p.job == j {
					continue
				}
				if end <= p.res.Shadow || (j.Procs <= p.res.Extra && jm <= p.res.ExtraMem) {
					continue
				}
				clear = false
				break
			}
			if !clear {
				continue
			}
			e.start(j)
			free -= j.Procs
			memFree -= jm
			if !endsByShadow {
				extra -= j.Procs
				extraMem -= jm
			}
			for pi := 0; pi < len(prots); pi++ {
				p := &prots[pi]
				if p.job == j {
					prots = append(prots[:pi], prots[pi+1:]...)
					pi--
					continue
				}
				if end > p.res.Shadow {
					p.res.Extra -= j.Procs
					p.res.ExtraMem -= jm
				}
			}
			if free == 0 {
				return
			}
		}
	}
}

// scnRefEntry is one job's base placement in a reference planning round.
type scnRefEntry struct {
	job   *trace.Job
	dur   int64
	start int64
}

// scnRefPlanBF is the reference profile-based backfiller (conservative and
// slack share it, differing only in setLimits): rebuild the availability
// profile from the running set, place everyone in queue order, and start the
// first candidate whose immediate execution keeps every other job within its
// limit. Rounds repeat until no candidate is admissible.
func scnRefPlanBF(setLimits func(scn sched.Scenario, plan []scnRefEntry) []int64) scnRefBF {
	return func(e *scnRefEngine, head *trace.Job, queue []*trace.Job) {
		for {
			started := scnRefPlanRound(e, head, queue, setLimits)
			if started == nil {
				return
			}
			out := queue[:0]
			for _, j := range queue {
				if j != started {
					out = append(out, j)
				}
			}
			queue = out
		}
	}
}

func scnRefPlanRound(e *scnRefEngine, head *trace.Job, queue []*trace.Job, setLimits func(scn sched.Scenario, plan []scnRefEntry) []int64) *trace.Job {
	now := e.clock
	base := &scnProf{total: e.totalProcs, memTotal: e.totalMem}
	for _, r := range e.running {
		end := r.start + e.est.Estimate(r.job)
		if end <= now {
			end = now + 1
		}
		base.add(now, end, r.job.Procs, e.mem(r.job))
	}
	prof := base.clone()
	plan := make([]scnRefEntry, 0, len(queue)+1)
	for _, j := range append([]*trace.Job{head}, queue...) {
		dur := e.est.Estimate(j)
		s := prof.findStart(now, dur, j.Procs, e.mem(j))
		prof.add(s, s+dur, j.Procs, e.mem(j))
		plan = append(plan, scnRefEntry{job: j, dur: dur, start: s})
	}
	limit := setLimits(e.scn, plan)
	for ci := 1; ci < len(plan); ci++ {
		cand := plan[ci]
		cm := e.mem(cand.job)
		if cand.job.Procs > e.freeProcs || cm > e.freeMem {
			continue
		}
		candEnd := now + cand.dur
		trial := base.clone()
		if !trial.fits(now, candEnd, cand.job.Procs, cm) {
			continue
		}
		trial.add(now, candEnd, cand.job.Procs, cm)
		ok := true
		for i := range plan {
			if i == ci {
				continue
			}
			en := plan[i]
			s := trial.findStart(now, en.dur, en.job.Procs, e.mem(en.job))
			trial.add(s, s+en.dur, en.job.Procs, e.mem(en.job))
			if s > limit[i] {
				ok = false
				break
			}
		}
		if ok {
			e.start(cand.job)
			return cand.job
		}
	}
	return nil
}

// scnConsLimits pins every reservation to its base start (zero slip).
func scnConsLimits(_ sched.Scenario, plan []scnRefEntry) []int64 {
	limit := make([]int64, len(plan))
	for i, en := range plan {
		limit[i] = en.start
	}
	return limit
}

// scnSlackLimits allows each non-head job to slip by factor x its estimate;
// with aging on, a starving (or about-to-starve) job's limit is pinned back
// to max(base start, its starvation instant).
func scnSlackLimits(factor float64) func(scn sched.Scenario, plan []scnRefEntry) []int64 {
	return func(scn sched.Scenario, plan []scnRefEntry) []int64 {
		limit := make([]int64, len(plan))
		aging := scn.Aging()
		for i, en := range plan {
			limit[i] = en.start
			if i > 0 {
				limit[i] += int64(factor * float64(en.dur))
				if aging {
					if sa := scn.StarvesAt(en.job); sa < limit[i] {
						limit[i] = max(sa, en.start)
					}
				}
			}
		}
		return limit
	}
}

// scnBackfillPair pairs a reference backfiller with the optimised one under
// the same scenario.
type scnBackfillPair struct {
	name  string
	heavy bool // profile-based: O(n^2) per event, run on truncated traces
	mkRef func(scn sched.Scenario) scnRefBF
	mkOpt func(scn sched.Scenario) backfill.Backfiller
}

func scnBackfillPairs() []scnBackfillPair {
	est := backfill.RequestTime{}
	return []scnBackfillPair{
		{name: "none",
			mkRef: func(sched.Scenario) scnRefBF { return nil },
			mkOpt: func(sched.Scenario) backfill.Backfiller { return nil }},
		{name: "easy",
			mkRef: func(scn sched.Scenario) scnRefBF { return scnRefEASY(false) },
			mkOpt: func(scn sched.Scenario) backfill.Backfiller { return &backfill.EASY{Est: est, Scn: scn} }},
		{name: "easy-sjf",
			mkRef: func(scn sched.Scenario) scnRefBF { return scnRefEASY(true) },
			mkOpt: func(scn sched.Scenario) backfill.Backfiller {
				return &backfill.EASY{Est: est, Order: backfill.SJFOrder, Scn: scn}
			}},
		{name: "cons", heavy: true,
			mkRef: func(scn sched.Scenario) scnRefBF { return scnRefPlanBF(scnConsLimits) },
			mkOpt: func(scn sched.Scenario) backfill.Backfiller { return backfill.NewConservative(est) }},
		{name: "slack", heavy: true,
			mkRef: func(scn sched.Scenario) scnRefBF { return scnRefPlanBF(scnSlackLimits(0.5)) },
			mkOpt: func(scn sched.Scenario) backfill.Backfiller {
				s := backfill.NewSlack(est)
				s.Scn = scn
				return s
			}},
	}
}

func mustEnrich(t *testing.T, tr *trace.Trace, spec trace.EnrichSpec) *trace.Trace {
	t.Helper()
	out, err := trace.Enrich(tr, spec)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestScenarioDifferential replays enriched traces (memory vectors, priority
// tiers) under every scenario x policy x backfiller combination through both
// the naive reference and the optimised engine, requiring bit-identical
// schedules. The zero scenario on an enriched trace exercises the memory
// dimension alone; the other scenarios layer tiers and aging on top.
func TestScenarioDifferential(t *testing.T) {
	traces := []*trace.Trace{
		// Memory + tiers: the full scenario surface.
		mustEnrich(t, trace.SyntheticSDSCSP2(260, 7),
			trace.EnrichSpec{MemDist: trace.MemDistProp, PriorityTiers: 3, Seed: 11}),
		// Anti-correlated memory, no tiers: memory pressure alone.
		mustEnrich(t, trace.SyntheticHPC2N(220, 13),
			trace.EnrichSpec{MemDist: trace.MemDistUniform, Seed: 17}),
		// Tiers only, no memory: priority ordering on the scalar machine.
		mustEnrich(t, trace.SyntheticSDSCSP2(200, 21),
			trace.EnrichSpec{PriorityTiers: 4, Seed: 23}),
	}
	scenarios := []sched.Scenario{
		{},
		{Priorities: true},
		{StarvationBound: 2},
		{Priorities: true, StarvationBound: 4},
	}
	policies := []sched.Policy{sched.FCFS{}, sched.WFP3{}}
	for _, tr := range traces {
		for _, scn := range scenarios {
			for _, p := range policies {
				for _, pair := range scnBackfillPairs() {
					label := tr.Name + "/" + p.Name() + "/" + pair.name + "/" + scnLabel(scn)
					run := tr
					if pair.heavy {
						short := tr.Clone()
						if len(short.Jobs) > 100 {
							short.Jobs = short.Jobs[:100]
						}
						run = short
					}
					want := newScnRef(run.Clone(), p, scn, backfill.RequestTime{}, pair.mkRef(scn)).run()
					res, err := Run(run.Clone(), Config{Policy: p, Scenario: scn, Backfiller: pair.mkOpt(scn)})
					if err != nil {
						t.Fatal(err)
					}
					diffRecords(t, label, want, res.Records)
				}
			}
		}
	}
}

func scnLabel(s sched.Scenario) string {
	switch {
	case s.Priorities && s.Aging():
		return "pri+aging"
	case s.Priorities:
		return "pri"
	case s.Aging():
		return "aging"
	}
	return "off"
}

// TestScenarioDifferentialRandom fuzzes the comparison over random bursty
// traces with random memory demands and tiers — deep queues with many
// same-instant events and starvation transitions landing between events.
func TestScenarioDifferentialRandom(t *testing.T) {
	for seed := uint64(1); seed <= 10; seed++ {
		r := stats.NewRNG(seed)
		procs := []int{8, 32, 100}[r.Intn(3)]
		n := r.Intn(60) + 10
		tr := &trace.Trace{Name: "fuzz-scn", Procs: procs}
		if r.Intn(2) == 0 {
			tr.Mem = procs * 100
		}
		var submit int64
		for i := 0; i < n; i++ {
			if r.Intn(3) > 0 {
				submit += r.Int63n(150)
			}
			run := r.Int63n(500) + 1
			req := run + r.Int63n(500)
			j := &trace.Job{
				ID: i + 1, Submit: submit, Runtime: run, Request: req,
				Procs: r.Intn(procs) + 1, Priority: r.Intn(3),
			}
			if tr.Mem > 0 {
				j.Mem = r.Intn(tr.Mem) + 1
			}
			tr.Jobs = append(tr.Jobs, j)
		}
		scn := sched.Scenario{Priorities: r.Intn(2) == 0, StarvationBound: float64(r.Intn(3))}
		for _, p := range []sched.Policy{sched.FCFS{}, sched.SJF{}, sched.WFP3{}} {
			for _, pair := range scnBackfillPairs() {
				label := p.Name() + "/" + pair.name + "/" + scnLabel(scn)
				want := newScnRef(tr.Clone(), p, scn, backfill.RequestTime{}, pair.mkRef(scn)).run()
				res, err := Run(tr.Clone(), Config{Policy: p, Scenario: scn, Backfiller: pair.mkOpt(scn)})
				if err != nil {
					t.Fatal(err)
				}
				diffRecords(t, label, want, res.Records)
			}
		}
	}
}

// TestStarvationBoundRescuesLowTier pins the aging semantics on a crafted
// trace: a machine-filling stream of high-tier jobs starves a low-tier job
// indefinitely under pure priority scheduling, and the starvation bound is
// what rescues it at exactly its starvation instant.
func TestStarvationBoundRescuesLowTier(t *testing.T) {
	mk := func() *trace.Trace {
		tr := &trace.Trace{Name: "starve", Procs: 4}
		// The low-tier victim: 1 proc, requests 100s.
		tr.Jobs = append(tr.Jobs, &trace.Job{ID: 1, Submit: 0, Runtime: 50, Request: 100, Procs: 1, Priority: 0})
		// Ten machine-filling high-tier jobs arriving back to back.
		for i := 0; i < 10; i++ {
			tr.Jobs = append(tr.Jobs, &trace.Job{
				ID: 2 + i, Submit: int64(100 * i), Runtime: 100, Request: 100, Procs: 4, Priority: 1,
			})
		}
		sort.SliceStable(tr.Jobs, func(a, b int) bool { return tr.Jobs[a].Submit < tr.Jobs[b].Submit })
		return tr
	}
	runWith := func(scn sched.Scenario) int64 {
		res, err := Run(mk(), Config{Policy: sched.FCFS{}, Scenario: scn})
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range res.Records {
			if r.Job.ID == 1 {
				return r.Start
			}
		}
		t.Fatal("victim job never ran")
		return -1
	}
	// Priorities alone: the victim waits out the whole high-tier stream.
	if got := runWith(sched.Scenario{Priorities: true}); got != 1000 {
		t.Fatalf("priorities only: victim started at %d, want 1000", got)
	}
	// Bound 2: StarvesAt = 0 + 2*100 = 200; the completion event at t=200 is
	// the first instant the (now starving) victim ranks first and fits.
	if got := runWith(sched.Scenario{Priorities: true, StarvationBound: 2}); got != 200 {
		t.Fatalf("starvation bound 2: victim started at %d, want 200", got)
	}
}

// TestStarvationOrderProperty fuzzes the aging guarantee: with no backfiller,
// a non-starving job can never start while a starving job that would also
// have fit (fewer procs, no more memory) is left waiting. Starving jobs sort
// ahead of everything non-starving, and without backfilling only the queue
// head can start, so any such pair is an ordering bug.
func TestStarvationOrderProperty(t *testing.T) {
	scn := sched.Scenario{Priorities: true, StarvationBound: 2}
	for seed := uint64(1); seed <= 8; seed++ {
		r := stats.NewRNG(seed * 91)
		tr := &trace.Trace{Name: "starve-fuzz", Procs: 16}
		var submit int64
		for i := 0; i < 60; i++ {
			if r.Intn(4) > 0 {
				submit += r.Int63n(60)
			}
			run := r.Int63n(400) + 1
			tr.Jobs = append(tr.Jobs, &trace.Job{
				ID: i + 1, Submit: submit, Runtime: run, Request: run + r.Int63n(200),
				Procs: r.Intn(16) + 1, Priority: r.Intn(3),
			})
		}
		for _, p := range []sched.Policy{sched.FCFS{}, sched.WFP3{}} {
			res, err := Run(tr.Clone(), Config{Policy: p, Scenario: scn})
			if err != nil {
				t.Fatal(err)
			}
			starts := make(map[int]int64, len(res.Records))
			for _, rec := range res.Records {
				starts[rec.Job.ID] = rec.Start
			}
			for _, x := range res.Records {
				if x.Start >= scn.StarvesAt(x.Job) {
					continue // x itself starving: starving-vs-starving order is by tier/base policy
				}
				for _, y := range res.Records {
					if y.Job == x.Job || y.Job.Submit > x.Start || starts[y.Job.ID] <= x.Start {
						continue // y not waiting strictly past x's start
					}
					if x.Start >= scn.StarvesAt(y.Job) && y.Job.Procs <= x.Job.Procs {
						t.Fatalf("seed %d %s: non-starving job %d started at %d while starving job %d (procs %d <= %d) kept waiting until %d",
							seed, p.Name(), x.Job.ID, x.Start, y.Job.ID, y.Job.Procs, x.Job.Procs, starts[y.Job.ID])
					}
				}
			}
		}
	}
}
