package sim

import (
	"fmt"

	"repro/internal/backfill"
	"repro/internal/eventq"
	"repro/internal/trace"
)

// Snapshot captures the scheduling state of an engine mid-trace: the clock,
// the waiting queue (in queue order), the running set and the arrival cursor.
// A snapshot plus the not-yet-admitted suffix of the trace is enough to
// resume the replay exactly where it stopped (see NewEngineFromSnapshot), so
// a long replay can be cut into bounded-horizon segments whose concatenated
// records equal the straight-through run. The sharded replayer
// (internal/shard) builds on the same invariant: engine state at an instant
// plus the remaining arrivals fully determines the rest of the schedule.
type Snapshot struct {
	// Clock is the simulation time the snapshot was taken at.
	Clock int64
	// Queued holds the waiting jobs in the engine's queue order.
	Queued []*trace.Job
	// Running holds the executing jobs (ID-sorted, as Engine.Running
	// maintains them) with their recorded start times.
	Running []backfill.Running
	// NextArrival is the index into the original trace's job list of the
	// first job not yet admitted; the caller resumes with a trace containing
	// Jobs[NextArrival:].
	NextArrival int
}

// Snapshot captures the engine's current scheduling state. The queue and
// running slices are copied, but the jobs themselves are shared (the engine
// never mutates jobs), so a snapshot is cheap even with a deep backlog.
func (e *Engine) Snapshot() Snapshot {
	return Snapshot{
		Clock:       e.clock,
		Queued:      append([]*trace.Job(nil), e.queue...),
		Running:     append([]backfill.Running(nil), e.running...),
		NextArrival: e.nextArr,
	}
}

// NewEngineFromSnapshot prepares an engine that resumes from a mid-trace
// snapshot: the cluster, running set, finish events and waiting queue are
// rebuilt from snap, and t supplies the remaining arrivals (the suffix of
// the original trace from snap.NextArrival on). Records are emitted only for
// jobs started after the resume — jobs already running at the snapshot were
// recorded by the segment that started them.
func NewEngineFromSnapshot(t *trace.Trace, cfg Config, snap Snapshot) (*Engine, error) {
	e, err := NewEngine(t, cfg)
	if err != nil {
		return nil, err
	}
	e.clock = snap.Clock
	for _, r := range snap.Running {
		j := r.Job
		if err := e.cluster.AllocRes(j.ID, j.Procs, j.Mem); err != nil {
			return nil, fmt.Errorf("sim: restoring running job %d: %v", j.ID, err)
		}
		end := r.Start + effectiveRuntime(j)
		if end < snap.Clock {
			return nil, fmt.Errorf("sim: running job %d finished at %d before snapshot clock %d", j.ID, end, snap.Clock)
		}
		e.insertRunning(j, r.Start)
		e.events.Push(eventq.Event{Time: end, Kind: eventq.Finish, Payload: j})
	}
	// Re-inserting in snapshot (queue) order reproduces the original queue
	// exactly: binary insertion places equal-score jobs after their existing
	// equals, and time-varying queues are re-sorted every round anyway.
	for _, j := range snap.Queued {
		e.enqueue(j)
	}
	return e, nil
}

// RunUntil is the bounded-horizon replay entry point: it processes event
// batches while the next pending timestamp is <= horizon, then stops. It
// reports whether any events remain (false = the replay is complete). After
// RunUntil returns true, Snapshot captures a state from which
// NewEngineFromSnapshot continues the replay exactly.
func (e *Engine) RunUntil(horizon int64) bool {
	for {
		t, ok := e.nextTime()
		if !ok {
			return false
		}
		if t > horizon {
			return true
		}
		e.Step()
	}
}
