package sim

import (
	"testing"

	"repro/internal/backfill"
	"repro/internal/metrics"
	"repro/internal/sched"
	"repro/internal/trace"
)

// TestSnapshotResumeDifferential pins the resume invariant the sharded
// replayer's stitching argument rests on: engine state plus the remaining
// arrivals fully determines the rest of the schedule. A replay cut at an
// arbitrary horizon and resumed via NewEngineFromSnapshot must produce, as
// the concatenation of both segments' records, exactly the straight-through
// run — for static and time-varying policies, with and without backfilling.
func TestSnapshotResumeDifferential(t *testing.T) {
	tr := trace.SyntheticSDSCSP2(800, 1)
	cases := []struct {
		name string
		cfg  func() Config
	}{
		{"FCFS+EASY", func() Config {
			return Config{Policy: sched.FCFS{}, Backfiller: backfill.NewEASY(backfill.RequestTime{})}
		}},
		{"SJF+slack", func() Config {
			return Config{Policy: sched.SJF{}, Backfiller: backfill.NewSlack(backfill.RequestTime{})}
		}},
		{"WFP3+none", func() Config {
			return Config{Policy: sched.WFP3{}}
		}},
	}
	for _, tc := range cases {
		full, err := Run(tr.Clone(), tc.cfg())
		if err != nil {
			t.Fatal(err)
		}
		makespan := full.Summary.Makespan
		for _, frac := range []float64{0.25, 0.5, 0.9} {
			horizon := int64(float64(makespan) * frac)
			work := tr.Clone()
			a, err := NewEngine(work, tc.cfg())
			if err != nil {
				t.Fatal(err)
			}
			if !a.RunUntil(horizon) {
				t.Fatalf("%s: replay drained before horizon %d", tc.name, horizon)
			}
			snap := a.Snapshot()
			rest := &trace.Trace{Name: work.Name, Procs: work.Procs, Jobs: work.Jobs[snap.NextArrival:]}
			b, err := NewEngineFromSnapshot(rest, tc.cfg(), snap)
			if err != nil {
				t.Fatal(err)
			}
			b.RunToCompletion()
			recs := append(append([]metrics.Record(nil), a.Records()...), b.Records()...)
			if len(recs) != len(full.Records) {
				t.Fatalf("%s@%.2f: %d records after resume, want %d", tc.name, frac, len(recs), len(full.Records))
			}
			for i := range recs {
				w, g := full.Records[i], recs[i]
				if w.Job.ID != g.Job.ID || w.Start != g.Start || w.End != g.End {
					t.Fatalf("%s@%.2f: record %d differs: full {job %d %d-%d} vs resumed {job %d %d-%d}",
						tc.name, frac, i, w.Job.ID, w.Start, w.End, g.Job.ID, g.Start, g.End)
				}
			}
		}
	}
}

// TestRunUntilCompletes pins RunUntil's return contract: false once the
// replay has drained, true while events remain past the horizon.
func TestRunUntilCompletes(t *testing.T) {
	tr := trace.SyntheticSDSCSP2(200, 1)
	e, err := NewEngine(tr.Clone(), Config{Policy: sched.FCFS{}, Backfiller: backfill.NewEASY(backfill.RequestTime{})})
	if err != nil {
		t.Fatal(err)
	}
	if !e.RunUntil(0) {
		t.Fatal("RunUntil(0) drained a 200-job trace")
	}
	if e.RunUntil(1 << 62) {
		t.Fatal("RunUntil(max) reports pending events after draining")
	}
	if len(e.Records()) != 200 {
		t.Fatalf("%d records after full drain, want 200", len(e.Records()))
	}
}
