package wal

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func testRecords(n int) [][]byte {
	recs := make([][]byte, n)
	for i := range recs {
		recs[i] = []byte(fmt.Sprintf("record-%04d-%s", i, bytes.Repeat([]byte{byte(i)}, i%37)))
	}
	return recs
}

func writeLog(t *testing.T, fs FS, path string, gen uint64, recs [][]byte) {
	t.Helper()
	l, err := Create(fs, path, gen)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestWALRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.wal")
	recs := testRecords(100)
	writeLog(t, OSFS{}, path, 7, recs)

	res, err := Replay(OSFS{}, path)
	if err != nil {
		t.Fatal(err)
	}
	if res.Gen != 7 {
		t.Fatalf("gen %d, want 7", res.Gen)
	}
	if res.Torn {
		t.Fatalf("clean log reported torn: %s", res.TornReason)
	}
	if len(res.Records) != len(recs) {
		t.Fatalf("%d records, want %d", len(res.Records), len(recs))
	}
	for i, r := range res.Records {
		if !bytes.Equal(r, recs[i]) {
			t.Fatalf("record %d mismatch", i)
		}
	}
	fi, _ := os.Stat(path)
	if res.GoodSize != fi.Size() {
		t.Fatalf("good size %d, file size %d", res.GoodSize, fi.Size())
	}
}

func TestWALEmptyAndHeader(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "x.wal")
	writeLog(t, OSFS{}, path, 3, nil)
	res, err := Replay(OSFS{}, path)
	if err != nil || len(res.Records) != 0 || res.Torn || res.Gen != 3 {
		t.Fatalf("empty log replay: %+v err %v", res, err)
	}

	// Damaged magic is fatal, not torn.
	data, _ := os.ReadFile(path)
	data[0] ^= 0xff
	bad := filepath.Join(dir, "bad.wal")
	os.WriteFile(bad, data, 0o644)
	if _, err := Replay(OSFS{}, bad); !errors.Is(err, ErrCorruptHeader) {
		t.Fatalf("corrupt magic: %v, want ErrCorruptHeader", err)
	}

	// A file shorter than the header is fatal too.
	os.WriteFile(bad, data[:5], 0o644)
	if _, err := Replay(OSFS{}, bad); !errors.Is(err, ErrCorruptHeader) {
		t.Fatalf("short header: %v, want ErrCorruptHeader", err)
	}

	if _, err := Replay(OSFS{}, filepath.Join(dir, "missing.wal")); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("missing file: %v, want ErrNotExist", err)
	}
}

func TestWALOpenAppendAfterTorn(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.wal")
	recs := testRecords(10)
	writeLog(t, OSFS{}, path, 1, recs)

	// Tear the tail: chop 3 bytes off the last record.
	fi, _ := os.Stat(path)
	if err := os.Truncate(path, fi.Size()-3); err != nil {
		t.Fatal(err)
	}
	res, err := Replay(OSFS{}, path)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Torn || len(res.Records) != 9 {
		t.Fatalf("torn replay: %d records torn=%v", len(res.Records), res.Torn)
	}

	// Reopen for append: the torn tail is truncated away and new records
	// extend the valid prefix.
	l, err := OpenAppend(OSFS{}, path, res)
	if err != nil {
		t.Fatal(err)
	}
	if l.Records() != 9 || l.Gen() != 1 {
		t.Fatalf("reopened log: %d records gen %d", l.Records(), l.Gen())
	}
	if err := l.Append([]byte("after-repair")); err != nil {
		t.Fatal(err)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	l.Close()

	res2, err := Replay(OSFS{}, path)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Torn || len(res2.Records) != 10 {
		t.Fatalf("after repair: %d records torn=%v", len(res2.Records), res2.Torn)
	}
	if string(res2.Records[9]) != "after-repair" {
		t.Fatalf("appended record %q", res2.Records[9])
	}
}

func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.json")
	if err := WriteFileAtomic(OSFS{}, path, []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if err := WriteFileAtomic(OSFS{}, path, []byte("v2")); err != nil {
		t.Fatal(err)
	}
	got, _ := os.ReadFile(path)
	if string(got) != "v2" {
		t.Fatalf("content %q", got)
	}
	if _, err := os.Stat(path + ".tmp"); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("temp file left behind: %v", err)
	}

	// A failed rename leaves the previous content intact and no temp file.
	ffs := NewFaultFS(OSFS{})
	ffs.FailRenamesAfter(0)
	if err := WriteFileAtomic(ffs, path, []byte("v3")); !errors.Is(err, ErrInjected) {
		t.Fatalf("rename fault: %v", err)
	}
	got, _ = os.ReadFile(path)
	if string(got) != "v2" {
		t.Fatalf("content after failed replace %q, want v2", got)
	}
	if _, err := os.Stat(path + ".tmp"); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("temp file left behind after failed rename: %v", err)
	}

	// A failed write mid-file also leaves the target untouched.
	ffs = NewFaultFS(OSFS{})
	ffs.FailWritesAfter(0)
	if err := WriteFileAtomic(ffs, path, []byte("v4")); !errors.Is(err, ErrInjected) {
		t.Fatalf("write fault: %v", err)
	}
	got, _ = os.ReadFile(path)
	if string(got) != "v2" {
		t.Fatalf("content after failed write %q, want v2", got)
	}
}

// TestFaultFSCrashLosesUnsynced pins the crash model: appended-but-unsynced
// bytes vanish at Crash, synced bytes survive.
func TestFaultFSCrashLosesUnsynced(t *testing.T) {
	ffs := NewFaultFS(OSFS{})
	path := filepath.Join(t.TempDir(), "x.wal")
	l, err := Create(ffs, path, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := l.Append([]byte(fmt.Sprintf("synced-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := l.Append([]byte(fmt.Sprintf("lost-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// No sync: these three records are in the page cache only.
	if err := ffs.Crash(); err != nil {
		t.Fatal(err)
	}
	res, err := Replay(OSFS{}, path)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 5 || res.Torn {
		t.Fatalf("after crash: %d records torn=%v, want the 5 synced ones", len(res.Records), res.Torn)
	}
	for i, r := range res.Records {
		if want := fmt.Sprintf("synced-%d", i); string(r) != want {
			t.Fatalf("record %d = %q, want %q", i, r, want)
		}
	}
}

// TestFaultFSShortWriteTearsRecord pins that an injected short write leaves
// a torn tail the replayer repairs around.
func TestFaultFSShortWriteTearsRecord(t *testing.T) {
	ffs := NewFaultFS(OSFS{})
	ffs.ShortWrites(true)
	path := filepath.Join(t.TempDir(), "x.wal")
	l, err := Create(ffs, path, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(bytes.Repeat([]byte("a"), 100)); err != nil {
		t.Fatal(err)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	ffs.FailWritesAfter(0)
	if err := l.Append(bytes.Repeat([]byte("b"), 100)); !errors.Is(err, ErrInjected) {
		t.Fatalf("append with write fault: %v", err)
	}
	l.Close()
	res, err := Replay(OSFS{}, path)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 1 || !res.Torn {
		t.Fatalf("after short write: %d records torn=%v, want 1 record + torn tail", len(res.Records), res.Torn)
	}
}

// TestWALSyncFailureSurfaces pins that a failing fsync reports the error
// (the daemon's trigger for degraded mode) and does not mark data durable.
func TestWALSyncFailureSurfaces(t *testing.T) {
	ffs := NewFaultFS(OSFS{})
	path := filepath.Join(t.TempDir(), "x.wal")
	l, err := Create(ffs, path, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append([]byte("r1")); err != nil {
		t.Fatal(err)
	}
	ffs.FailSyncsAfter(0)
	if err := l.Sync(); !errors.Is(err, ErrInjected) {
		t.Fatalf("sync fault: %v", err)
	}
	if err := ffs.Crash(); err != nil {
		t.Fatal(err)
	}
	res, err := Replay(OSFS{}, path)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 0 {
		t.Fatalf("record survived a failed sync + crash: %d records", len(res.Records))
	}
}
