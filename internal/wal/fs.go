// Package wal provides the durability substrate behind the serve daemon
// (DESIGN.md §13): an append-only, fsync'd, CRC-framed write-ahead log, an
// atomic file-replace helper with directory fsync, and a filesystem
// abstraction with a fault-injecting implementation for crash testing.
//
// The package is deliberately generic — records are opaque byte payloads.
// The serve layer defines its own record encoding on top (submit / cancel /
// clock-advance commands and the derived job-record history).
package wal

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// File is the subset of *os.File the log needs. Every implementation must
// honor the durability contract: data is crash-safe only after Sync returns
// nil.
type File interface {
	io.Writer
	io.Closer
	Sync() error
	Truncate(size int64) error
}

// FS abstracts the filesystem so tests can inject faults (see FaultFS). The
// zero-dependency production implementation is OSFS.
type FS interface {
	// OpenFile opens name with os.OpenFile semantics.
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	// ReadFile reads the whole file.
	ReadFile(name string) ([]byte, error)
	// Rename atomically replaces newname with oldname.
	Rename(oldname, newname string) error
	// Remove deletes a file.
	Remove(name string) error
	// Stat reports file metadata.
	Stat(name string) (os.FileInfo, error)
	// SyncDir fsyncs a directory, making previous renames and creates in it
	// crash-durable (rename alone is not durable on ext4/xfs until the
	// containing directory is synced).
	SyncDir(name string) error
}

// OSFS is the production filesystem.
type OSFS struct{}

// OpenFile implements FS.
func (OSFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}

// ReadFile implements FS.
func (OSFS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }

// Rename implements FS.
func (OSFS) Rename(oldname, newname string) error { return os.Rename(oldname, newname) }

// Remove implements FS.
func (OSFS) Remove(name string) error { return os.Remove(name) }

// Stat implements FS.
func (OSFS) Stat(name string) (os.FileInfo, error) { return os.Stat(name) }

// SyncDir implements FS.
func (OSFS) SyncDir(name string) error {
	d, err := os.Open(name)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// WriteFileAtomic crash-safely replaces path with data: write to a sibling
// temporary file, fsync it, rename over the target, then fsync the directory
// so the rename itself is durable. A crash at any point leaves either the old
// file or the new one, never a torn mix. The temporary name is deterministic
// (path + ".tmp"), which is safe under the single-writer discipline every
// caller in this repo follows.
func WriteFileAtomic(fs FS, path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := fs.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		fs.Remove(tmp)
		return fmt.Errorf("wal: write %s: %w", tmp, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		fs.Remove(tmp)
		return fmt.Errorf("wal: sync %s: %w", tmp, err)
	}
	if err := f.Close(); err != nil {
		fs.Remove(tmp)
		return fmt.Errorf("wal: close %s: %w", tmp, err)
	}
	if err := fs.Rename(tmp, path); err != nil {
		fs.Remove(tmp)
		return err
	}
	return fs.SyncDir(filepath.Dir(path))
}
