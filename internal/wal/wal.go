package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
)

// File layout:
//
//	header  = magic[8] ("RLBFWAL\x01") + generation uint64 (little-endian)
//	record  = length uint32 + crc32c(payload) uint32 + payload bytes
//
// Records are framed independently, so a reader can always tell a clean end
// of log from a torn tail: a frame whose length runs past EOF, or whose CRC
// does not match, marks the end of the valid prefix. Everything before the
// first bad frame is trusted; everything from it on is discarded (append-only
// logs cannot contain valid data after a torn write).

const (
	headerSize = 16
	frameSize  = 8 // length + crc
	// MaxRecord bounds one payload; a length prefix above it is treated as
	// corruption rather than an allocation request.
	MaxRecord = 16 << 20
)

var magic = [8]byte{'R', 'L', 'B', 'F', 'W', 'A', 'L', 1}

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrCorruptHeader reports a log whose fixed header is damaged or from a
// different format version. Unlike a torn tail, nothing in the file can be
// trusted.
var ErrCorruptHeader = errors.New("wal: corrupt or incompatible log header")

// ErrBadFrame reports a damaged frame inside an all-or-nothing message
// (see ParseFrames). The replication transport matches on it to distinguish
// in-flight corruption — re-request the chunk — from protocol errors.
var ErrBadFrame = errors.New("wal: bad frame")

// Log is an append-only record log. It is not safe for concurrent use; the
// serve daemon's single-writer loop is the intended caller.
type Log struct {
	fs      FS
	f       File
	path    string
	gen     uint64
	buf     []byte
	records int
	size    int64
	synced  int64 // size at the last successful Sync
}

// Create creates (or truncates) the log at path with the given generation
// and makes the empty log durable: header written, file synced, directory
// synced. The generation ties a log to the snapshot it extends — recovery
// discards a log whose generation is older than the snapshot's.
func Create(fs FS, path string, gen uint64) (*Log, error) {
	f, err := fs.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	l := &Log{fs: fs, f: f, path: path, gen: gen}
	hdr := make([]byte, headerSize)
	copy(hdr, magic[:])
	binary.LittleEndian.PutUint64(hdr[8:], gen)
	if _, err := f.Write(hdr); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: write header %s: %w", path, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: sync header %s: %w", path, err)
	}
	if err := fs.SyncDir(filepath.Dir(path)); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: sync dir for %s: %w", path, err)
	}
	l.size = headerSize
	l.synced = headerSize
	return l, nil
}

// OpenAppend reopens an existing log for appending after a replay: the file
// is truncated to res.GoodSize (dropping any torn tail) and subsequent
// Appends extend the valid prefix. The returned log reports the replayed
// record count and generation.
func OpenAppend(fs FS, path string, res *ReplayResult) (*Log, error) {
	f, err := fs.OpenFile(path, os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	if err := f.Truncate(res.GoodSize); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: truncate %s to %d: %w", path, res.GoodSize, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: sync %s after truncate: %w", path, err)
	}
	f.Close()
	// Reopen in append mode so writes land at the (possibly repaired) end.
	f, err = fs.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return &Log{
		fs: fs, f: f, path: path, gen: res.Gen,
		records: len(res.Records), size: res.GoodSize, synced: res.GoodSize,
	}, nil
}

// Append frames one payload and writes it. The record is crash-durable only
// after the next successful Sync.
func (l *Log) Append(payload []byte) error {
	if len(payload) > MaxRecord {
		return fmt.Errorf("wal: record of %d bytes exceeds max %d", len(payload), MaxRecord)
	}
	l.buf = AppendFrame(l.buf[:0], payload)
	if _, err := l.f.Write(l.buf); err != nil {
		return fmt.Errorf("wal: append %s: %w", l.path, err)
	}
	l.records++
	l.size += int64(len(l.buf))
	return nil
}

// AppendFrame appends one length+CRC framed payload to buf and returns the
// extended slice. This is the log's on-disk record framing, reused verbatim
// by the replication stream so a follower can checksum-verify every chunk it
// receives over the network with the same code path that guards the disk.
func AppendFrame(buf, payload []byte) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(payload)))
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(payload, castagnoli))
	return append(buf, payload...)
}

// ParseFrames strictly decodes a concatenation of frames produced by
// AppendFrame. Unlike Replay — which tolerates a torn tail because crashes
// legitimately leave one — a network message is all-or-nothing: any short,
// oversized or checksum-failing frame is an error and the caller should
// discard the whole message and re-request it. The returned payload slices
// alias data.
func ParseFrames(data []byte) ([][]byte, error) {
	var out [][]byte
	off := 0
	for off < len(data) {
		if off+frameSize > len(data) {
			return nil, fmt.Errorf("%w: truncated frame header at offset %d", ErrBadFrame, off)
		}
		length := int(binary.LittleEndian.Uint32(data[off:]))
		crc := binary.LittleEndian.Uint32(data[off+4:])
		if length > MaxRecord {
			return nil, fmt.Errorf("%w: implausible frame length %d at offset %d", ErrBadFrame, length, off)
		}
		if off+frameSize+length > len(data) {
			return nil, fmt.Errorf("%w: frame of %d bytes runs past end of message at offset %d", ErrBadFrame, length, off)
		}
		payload := data[off+frameSize : off+frameSize+length]
		if crc32.Checksum(payload, castagnoli) != crc {
			return nil, fmt.Errorf("%w: frame checksum mismatch at offset %d", ErrBadFrame, off)
		}
		out = append(out, payload)
		off += frameSize + length
	}
	return out, nil
}

// Digest extends a running CRC32C digest with one payload. The serve layer
// chains it over every history-log record, giving primaries and followers a
// cheap incremental fingerprint of the full derived record stream to compare
// during replication.
func Digest(sum uint32, payload []byte) uint32 {
	return crc32.Update(sum, castagnoli, payload)
}

// PeekGen reads just the generation stamped in the log header at path — the
// fencing handshake needs the on-disk generation before any recovery has
// run.
func PeekGen(fs FS, path string) (uint64, error) {
	data, err := fs.ReadFile(path)
	if err != nil {
		return 0, err
	}
	if len(data) < headerSize || [8]byte(data[:8]) != magic {
		return 0, fmt.Errorf("%w: %s", ErrCorruptHeader, path)
	}
	return binary.LittleEndian.Uint64(data[8:16]), nil
}

// Sync makes every appended record crash-durable.
func (l *Log) Sync() error {
	if l.synced == l.size {
		return nil
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: sync %s: %w", l.path, err)
	}
	l.synced = l.size
	return nil
}

// Records returns the number of records appended (plus replayed, for
// OpenAppend logs) since creation.
func (l *Log) Records() int { return l.records }

// Size returns the log's byte length including the header.
func (l *Log) Size() int64 { return l.size }

// Gen returns the log's generation.
func (l *Log) Gen() uint64 { return l.gen }

// Path returns the log's file path.
func (l *Log) Path() string { return l.path }

// Close closes the underlying file without syncing.
func (l *Log) Close() error { return l.f.Close() }

// ReplayResult is the outcome of scanning a log.
type ReplayResult struct {
	// Gen is the generation stamped in the header.
	Gen uint64
	// Records holds the valid payloads in append order. Slices alias one
	// backing read of the file; callers must not retain them past decoding.
	Records [][]byte
	// GoodSize is the byte length of the valid prefix (header + intact
	// records). Truncating the file to GoodSize repairs a torn tail.
	GoodSize int64
	// Torn reports that the file extended past the valid prefix with a
	// damaged or incomplete frame — the expected aftermath of a crash mid
	// append. TornReason says what was wrong.
	Torn       bool
	TornReason string
}

// Replay scans the log at path, returning every intact record and the
// position of the first damaged or incomplete frame, if any. A torn tail is
// not an error: crashes legitimately leave one, and recovery proceeds with
// the valid prefix. Only a damaged header — which invalidates the whole
// file — is fatal.
func Replay(fs FS, path string) (*ReplayResult, error) {
	data, err := fs.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(data) < headerSize || [8]byte(data[:8]) != magic {
		return nil, fmt.Errorf("%w: %s", ErrCorruptHeader, path)
	}
	res := &ReplayResult{
		Gen:      binary.LittleEndian.Uint64(data[8:16]),
		GoodSize: headerSize,
	}
	off := int64(headerSize)
	n := int64(len(data))
	for off < n {
		if off+frameSize > n {
			res.Torn, res.TornReason = true, fmt.Sprintf("truncated frame header at offset %d", off)
			break
		}
		length := int64(binary.LittleEndian.Uint32(data[off:]))
		crc := binary.LittleEndian.Uint32(data[off+4:])
		if length > MaxRecord {
			res.Torn, res.TornReason = true, fmt.Sprintf("implausible record length %d at offset %d", length, off)
			break
		}
		if off+frameSize+length > n {
			res.Torn, res.TornReason = true, fmt.Sprintf("record of %d bytes runs past end of file at offset %d", length, off)
			break
		}
		payload := data[off+frameSize : off+frameSize+length]
		if crc32.Checksum(payload, castagnoli) != crc {
			res.Torn, res.TornReason = true, fmt.Sprintf("checksum mismatch at offset %d", off)
			break
		}
		res.Records = append(res.Records, payload)
		off += frameSize + length
		res.GoodSize = off
	}
	return res, nil
}
