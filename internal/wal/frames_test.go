package wal

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
)

// TestFramesRoundTrip pins the network framing: AppendFrame output parses
// back byte-identically, including empty payloads and concatenated frames.
func TestFramesRoundTrip(t *testing.T) {
	recs := append(testRecords(9), []byte{})
	var buf []byte
	for _, r := range recs {
		buf = AppendFrame(buf, r)
	}
	got, err := ParseFrames(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("parsed %d frames, wrote %d", len(got), len(recs))
	}
	for i := range recs {
		if string(got[i]) != string(recs[i]) {
			t.Fatalf("frame %d mismatch: %q != %q", i, got[i], recs[i])
		}
	}
	// Empty input is a valid empty message, not an error.
	if out, err := ParseFrames(nil); err != nil || len(out) != 0 {
		t.Fatalf("empty message: %v, %v", out, err)
	}
}

// TestFramesAllOrNothing pins the strict decode contract used on the
// replication wire: any damage anywhere fails the whole message with
// ErrBadFrame — a follower never applies a prefix of a corrupt chunk.
func TestFramesAllOrNothing(t *testing.T) {
	var clean []byte
	for _, r := range testRecords(4) {
		clean = AppendFrame(clean, r)
	}
	mut := func(f func(b []byte) []byte) []byte {
		b := append([]byte(nil), clean...)
		return f(b)
	}
	cases := map[string][]byte{
		"truncated header": clean[:len(clean)-3],
		"truncated body": mut(func(b []byte) []byte {
			return AppendFrame(b, []byte("tail"))[:len(b)+frameSize+2]
		}),
		"flipped payload bit": mut(func(b []byte) []byte {
			b[frameSize+1] ^= 0x10
			return b
		}),
		"flipped crc": mut(func(b []byte) []byte {
			b[5] ^= 0x01
			return b
		}),
		"implausible length": mut(func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b, MaxRecord+1)
			return b
		}),
	}
	for name, data := range cases {
		if _, err := ParseFrames(data); !errors.Is(err, ErrBadFrame) {
			t.Errorf("%s: err %v, want ErrBadFrame", name, err)
		}
	}
}

// TestDigestChaining pins the incremental history digest: chaining per-record
// updates equals one CRC over the concatenation, is order-sensitive, and is
// the same value primaries and followers compute independently.
func TestDigestChaining(t *testing.T) {
	recs := testRecords(5)
	var chained uint32
	var flat []byte
	for _, r := range recs {
		chained = Digest(chained, r)
		flat = append(flat, r...)
	}
	if whole := crc32.Checksum(flat, castagnoli); chained != whole {
		t.Fatalf("chained digest %08x != whole-buffer crc %08x", chained, whole)
	}
	var swapped uint32
	for i := len(recs) - 1; i >= 0; i-- {
		swapped = Digest(swapped, recs[i])
	}
	if swapped == chained {
		t.Fatal("digest is not order-sensitive")
	}
}

// TestPeekGen pins the fencing probe: it must read the on-disk generation
// without replaying (or repairing) anything, and fail loudly on damage.
func TestPeekGen(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "cmd.wal")
	fs := OSFS{}
	writeLog(t, fs, path, 42, testRecords(3))

	gen, err := PeekGen(fs, path)
	if err != nil || gen != 42 {
		t.Fatalf("PeekGen = (%d, %v), want (42, nil)", gen, err)
	}
	// A torn tail does not disturb the peek — only the header matters.
	data, _ := os.ReadFile(path)
	if err := os.WriteFile(path, append(data, 0xff, 0xee), 0o644); err != nil {
		t.Fatal(err)
	}
	if gen, err = PeekGen(fs, path); err != nil || gen != 42 {
		t.Fatalf("PeekGen on torn log = (%d, %v), want (42, nil)", gen, err)
	}
	// Missing file surfaces as os.ErrNotExist so callers can treat "never
	// ran here" as generation zero.
	if _, err := PeekGen(fs, filepath.Join(dir, "absent.wal")); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("missing file: %v, want ErrNotExist", err)
	}
	// Damaged magic is ErrCorruptHeader: nothing in the file can be trusted.
	data[0] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := PeekGen(fs, path); !errors.Is(err, ErrCorruptHeader) {
		t.Fatalf("bad magic: %v, want ErrCorruptHeader", err)
	}
}
