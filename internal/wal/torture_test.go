package wal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// TestTortureTailEveryOffset is the crash-at-every-record torture test: a
// valid log's tail record is truncated at every possible byte length and
// corrupted at every byte position, and in every case recovery must either
// replay the record exactly (untouched log) or drop only that record — never
// panic, never mis-parse, never lose an earlier record.
func TestTortureTailEveryOffset(t *testing.T) {
	dir := t.TempDir()
	ref := filepath.Join(dir, "ref.wal")
	recs := testRecords(20)
	writeLog(t, OSFS{}, ref, 5, recs)
	full, err := os.ReadFile(ref)
	if err != nil {
		t.Fatal(err)
	}

	// Find the byte offset of the final record by replaying the intact log
	// and subtracting its frame.
	res, err := Replay(OSFS{}, ref)
	if err != nil || res.Torn || len(res.Records) != len(recs) {
		t.Fatalf("reference replay: %+v err %v", res, err)
	}
	lastLen := int64(len(recs[len(recs)-1]))
	tailStart := res.GoodSize - frameSize - lastLen

	check := func(t *testing.T, data []byte, wantFull, wantTorn bool) {
		t.Helper()
		p := filepath.Join(dir, "case.wal")
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Fatal(err)
		}
		got, err := Replay(OSFS{}, p)
		if err != nil {
			t.Fatalf("replay errored: %v", err)
		}
		want := len(recs) - 1
		if wantFull {
			want = len(recs)
		}
		if len(got.Records) != want {
			t.Fatalf("%d records, want %d (torn=%v: %s)", len(got.Records), want, got.Torn, got.TornReason)
		}
		for i := 0; i < want; i++ {
			if !bytes.Equal(got.Records[i], recs[i]) {
				t.Fatalf("record %d mis-parsed", i)
			}
		}
		if got.Torn != wantTorn {
			t.Fatalf("torn=%v, want %v", got.Torn, wantTorn)
		}
		if got.GoodSize > int64(len(data)) {
			t.Fatalf("good size %d beyond file size %d", got.GoodSize, len(data))
		}
		// The repaired prefix must itself replay clean: truncate and rescan.
		if got.Torn {
			if err := os.Truncate(p, got.GoodSize); err != nil {
				t.Fatal(err)
			}
			again, err := Replay(OSFS{}, p)
			if err != nil || again.Torn || len(again.Records) != want {
				t.Fatalf("repaired prefix not clean: %+v err %v", again, err)
			}
		}
	}

	// Truncation at every length of the tail record's frame + payload. A cut
	// exactly at the record boundary is a clean EOF (the record simply never
	// landed); any partial prefix is a torn tail; the full length replays
	// everything.
	for cut := tailStart; cut <= int64(len(full)); cut++ {
		check(t, full[:cut], cut == int64(len(full)), cut != tailStart && cut != int64(len(full)))
	}

	// Corruption of every byte in the tail record (frame and payload).
	for off := tailStart; off < int64(len(full)); off++ {
		data := append([]byte(nil), full...)
		data[off] ^= 0x5a
		check(t, data, false, true)
	}
}

// TestTortureMidFileCorruption documents the append-only trust model: a
// corrupt byte in the middle of the log ends the valid prefix there —
// records before it survive, records after it are unrecoverable (and
// reported torn), and the replayer never panics.
func TestTortureMidFileCorruption(t *testing.T) {
	dir := t.TempDir()
	ref := filepath.Join(dir, "ref.wal")
	recs := testRecords(10)
	writeLog(t, OSFS{}, ref, 1, recs)
	full, err := os.ReadFile(ref)
	if err != nil {
		t.Fatal(err)
	}

	for _, off := range []int64{headerSize, headerSize + 10, int64(len(full)) / 2} {
		data := append([]byte(nil), full...)
		data[off] ^= 0xff
		p := filepath.Join(dir, fmt.Sprintf("mid-%d.wal", off))
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Fatal(err)
		}
		got, err := Replay(OSFS{}, p)
		if err != nil {
			t.Fatalf("offset %d: replay errored: %v", off, err)
		}
		if !got.Torn {
			t.Fatalf("offset %d: corruption not detected", off)
		}
		if len(got.Records) >= len(recs) {
			t.Fatalf("offset %d: %d records survived corruption", off, len(got.Records))
		}
		for i, r := range got.Records {
			if !bytes.Equal(r, recs[i]) {
				t.Fatalf("offset %d: surviving record %d mis-parsed", off, i)
			}
		}
	}
}

// TestTortureCrashAtEveryRecordCount writes the log through the fault
// injector, crashing after every prefix of synced records, and asserts the
// replayed prefix is exact each time.
func TestTortureCrashAtEveryRecordCount(t *testing.T) {
	dir := t.TempDir()
	recs := testRecords(30)
	for k := 0; k <= len(recs); k++ {
		ffs := NewFaultFS(OSFS{})
		path := filepath.Join(dir, fmt.Sprintf("crash-%d.wal", k))
		l, err := Create(ffs, path, 1)
		if err != nil {
			t.Fatal(err)
		}
		for i, r := range recs {
			if err := l.Append(r); err != nil {
				t.Fatal(err)
			}
			if i == k-1 {
				if err := l.Sync(); err != nil {
					t.Fatal(err)
				}
			}
		}
		// Crash: only the first k records were synced.
		if err := ffs.Crash(); err != nil {
			t.Fatal(err)
		}
		got, err := Replay(OSFS{}, path)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if len(got.Records) != k {
			t.Fatalf("k=%d: %d records survived", k, len(got.Records))
		}
		for i := 0; i < k; i++ {
			if !bytes.Equal(got.Records[i], recs[i]) {
				t.Fatalf("k=%d: record %d mismatch", k, i)
			}
		}
	}
}
