package wal

import (
	"errors"
	"os"
	"sync"
)

// ErrInjected is the error every injected fault returns, so tests can
// distinguish deliberate failures from real ones.
var ErrInjected = errors.New("wal: injected fault")

// FaultFS wraps a real filesystem with SQLite-torture-style fault injection
// for crash testing:
//
//   - countdown write/sync/rename failures (disk full, dying disk),
//   - short writes (a failing write persists a prefix — a torn record),
//   - Crash(), which models an OS crash by truncating every tracked file
//     back to its last successfully synced size: everything an fsync did not
//     cover is gone, exactly the data a real power cut loses.
//
// The wrapper tracks the synced-vs-written byte position of every file
// opened through it (append-only usage assumed, which is how the WAL writes),
// including files already closed, so Crash can revoke their unsynced tails
// too. Safe for concurrent use.
type FaultFS struct {
	inner FS

	mu          sync.Mutex
	files       map[string]*fileTrack
	failWrites  int // countdown; <0 disabled; 0 = fail now and onward
	failSyncs   int
	failRenames int
	shortWrites bool
	writes      int
	syncs       int
}

type fileTrack struct {
	written int64
	synced  int64
}

// NewFaultFS wraps inner (usually OSFS) with no faults armed.
func NewFaultFS(inner FS) *FaultFS {
	return &FaultFS{
		inner:       inner,
		files:       make(map[string]*fileTrack),
		failWrites:  -1,
		failSyncs:   -1,
		failRenames: -1,
	}
}

// FailWritesAfter arms write failure: the next n writes succeed, every write
// after that fails with ErrInjected. n = 0 fails the very next write.
func (f *FaultFS) FailWritesAfter(n int) { f.mu.Lock(); f.failWrites = n; f.mu.Unlock() }

// FailSyncsAfter arms sync failure (file and directory syncs share the
// countdown).
func (f *FaultFS) FailSyncsAfter(n int) { f.mu.Lock(); f.failSyncs = n; f.mu.Unlock() }

// FailRenamesAfter arms rename failure.
func (f *FaultFS) FailRenamesAfter(n int) { f.mu.Lock(); f.failRenames = n; f.mu.Unlock() }

// ShortWrites makes failing writes persist the first half of their buffer
// before reporting the error — the torn-record case.
func (f *FaultFS) ShortWrites(on bool) { f.mu.Lock(); f.shortWrites = on; f.mu.Unlock() }

// Writes returns the number of write calls observed.
func (f *FaultFS) Writes() int { f.mu.Lock(); defer f.mu.Unlock(); return f.writes }

// Crash models an OS crash: every tracked file is truncated back to its last
// synced size (unsynced appends vanish), and all armed faults are cleared so
// the "rebooted" process can recover through the same FS.
func (f *FaultFS) Crash() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.failWrites, f.failSyncs, f.failRenames = -1, -1, -1
	f.shortWrites = false
	var firstErr error
	for path, tr := range f.files {
		if tr.written > tr.synced {
			if err := os.Truncate(path, tr.synced); err != nil && firstErr == nil {
				firstErr = err
			}
			tr.written = tr.synced
		}
	}
	return firstErr
}

// takeWriteFault reports whether the current write must fail, consuming one
// countdown step otherwise.
func (f *FaultFS) takeWriteFault() (fail, short bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.writes++
	if f.failWrites < 0 {
		return false, false
	}
	if f.failWrites == 0 {
		return true, f.shortWrites
	}
	f.failWrites--
	return false, false
}

func (f *FaultFS) takeSyncFault() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.syncs++
	if f.failSyncs < 0 {
		return false
	}
	if f.failSyncs == 0 {
		return true
	}
	f.failSyncs--
	return false
}

func (f *FaultFS) takeRenameFault() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.failRenames < 0 {
		return false
	}
	if f.failRenames == 0 {
		return true
	}
	f.failRenames--
	return false
}

// track returns the persistent per-path bookkeeping entry.
func (f *FaultFS) track(path string) *fileTrack {
	f.mu.Lock()
	defer f.mu.Unlock()
	tr, ok := f.files[path]
	if !ok {
		tr = &fileTrack{}
		f.files[path] = tr
	}
	return tr
}

// OpenFile implements FS.
func (f *FaultFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	inner, err := f.inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	tr := f.track(name)
	f.mu.Lock()
	if flag&os.O_TRUNC != 0 {
		tr.written, tr.synced = 0, 0
	} else if fi, err := f.inner.Stat(name); err == nil {
		// Content present at open survived to be reopened; treat it as the
		// durable baseline.
		tr.written, tr.synced = fi.Size(), fi.Size()
	}
	f.mu.Unlock()
	return &faultFile{fs: f, inner: inner, path: name, tr: tr}, nil
}

// ReadFile implements FS.
func (f *FaultFS) ReadFile(name string) ([]byte, error) { return f.inner.ReadFile(name) }

// Rename implements FS.
func (f *FaultFS) Rename(oldname, newname string) error {
	if f.takeRenameFault() {
		return ErrInjected
	}
	err := f.inner.Rename(oldname, newname)
	if err == nil {
		f.mu.Lock()
		if tr, ok := f.files[oldname]; ok {
			f.files[newname] = tr
			delete(f.files, oldname)
		}
		f.mu.Unlock()
	}
	return err
}

// Remove implements FS.
func (f *FaultFS) Remove(name string) error {
	err := f.inner.Remove(name)
	if err == nil {
		f.mu.Lock()
		delete(f.files, name)
		f.mu.Unlock()
	}
	return err
}

// Stat implements FS.
func (f *FaultFS) Stat(name string) (os.FileInfo, error) { return f.inner.Stat(name) }

// SyncDir implements FS.
func (f *FaultFS) SyncDir(name string) error {
	if f.takeSyncFault() {
		return ErrInjected
	}
	return f.inner.SyncDir(name)
}

type faultFile struct {
	fs    *FaultFS
	inner File
	path  string
	tr    *fileTrack
}

func (ff *faultFile) Write(p []byte) (int, error) {
	fail, short := ff.fs.takeWriteFault()
	if fail {
		if short && len(p) > 1 {
			n, _ := ff.inner.Write(p[:len(p)/2])
			ff.fs.mu.Lock()
			ff.tr.written += int64(n)
			ff.fs.mu.Unlock()
			return n, ErrInjected
		}
		return 0, ErrInjected
	}
	n, err := ff.inner.Write(p)
	ff.fs.mu.Lock()
	ff.tr.written += int64(n)
	ff.fs.mu.Unlock()
	return n, err
}

func (ff *faultFile) Sync() error {
	if ff.fs.takeSyncFault() {
		return ErrInjected
	}
	if err := ff.inner.Sync(); err != nil {
		return err
	}
	ff.fs.mu.Lock()
	ff.tr.synced = ff.tr.written
	ff.fs.mu.Unlock()
	return nil
}

func (ff *faultFile) Truncate(size int64) error {
	if err := ff.inner.Truncate(size); err != nil {
		return err
	}
	ff.fs.mu.Lock()
	if ff.tr.written > size {
		ff.tr.written = size
	}
	if ff.tr.synced > size {
		ff.tr.synced = size
	}
	ff.fs.mu.Unlock()
	return nil
}

func (ff *faultFile) Close() error { return ff.inner.Close() }
