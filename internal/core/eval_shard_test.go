package core

import (
	"math"
	"testing"

	"repro/internal/backfill"
	"repro/internal/sched"
	"repro/internal/shard"
	"repro/internal/trace"
)

// TestEvaluateStrategyShardedMatches pins the eval-protocol integration:
// sharding the per-sequence replays must leave the evaluation unchanged up
// to float summation order (the stitched records are byte-identical with
// sufficient overlap; only the summary's accumulation order differs).
func TestEvaluateStrategyShardedMatches(t *testing.T) {
	tr := trace.ScaleLoad(trace.SyntheticSDSCSP2(4000, 1), 0.5)
	cfg := EvalConfig{Sequences: 3, SeqLen: 2000, Seed: 7, Workers: 2}
	mean, per, err := EvaluateStrategy(tr, sched.FCFS{}, backfill.NewEASY(backfill.RequestTime{}), cfg)
	if err != nil {
		t.Fatal(err)
	}
	shCfg := cfg
	shCfg.Shard = shard.Config{Window: 500, Overlap: 512, MinJobs: 1}
	shMean, shPer, err := EvaluateStrategy(tr, sched.FCFS{}, backfill.NewEASY(backfill.RequestTime{}), shCfg)
	if err != nil {
		t.Fatal(err)
	}
	const tol = 1e-9
	if rel := math.Abs(shMean-mean) / mean; rel > tol {
		t.Fatalf("sharded mean bsld %.12f vs sequential %.12f (rel %.2e)", shMean, mean, rel)
	}
	for i := range per {
		if rel := math.Abs(shPer[i]-per[i]) / per[i]; rel > tol {
			t.Fatalf("sequence %d: sharded bsld %.12f vs sequential %.12f (rel %.2e)", i, shPer[i], per[i], rel)
		}
	}
}

// TestEvaluateStrategyShardAutoOff pins that a shard config below its
// threshold leaves evaluation bit-identical to the unsharded path: the
// sequences replay through the exact same sim.Run call.
func TestEvaluateStrategyShardAutoOff(t *testing.T) {
	tr := trace.SyntheticSDSCSP2(1500, 1)
	cfg := EvalConfig{Sequences: 2, SeqLen: 256, Seed: 7}
	mean, per, err := EvaluateStrategy(tr, sched.FCFS{}, backfill.NewEASY(backfill.RequestTime{}), cfg)
	if err != nil {
		t.Fatal(err)
	}
	offCfg := cfg
	offCfg.Shard = shard.Config{Window: 64} // default MinJobs ≫ SeqLen: stays off
	offMean, offPer, err := EvaluateStrategy(tr, sched.FCFS{}, backfill.NewEASY(backfill.RequestTime{}), offCfg)
	if err != nil {
		t.Fatal(err)
	}
	if mean != offMean {
		t.Fatalf("auto-off changed the mean: %v vs %v", offMean, mean)
	}
	for i := range per {
		if per[i] != offPer[i] {
			t.Fatalf("auto-off changed sequence %d: %v vs %v", i, offPer[i], per[i])
		}
	}
}
