package core
