package core

import (
	"repro/internal/backfill"
	"repro/internal/nn"
	"repro/internal/ppo"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Agent is the RLBackfilling decision maker. It implements
// backfill.Backfiller: at every backfill opportunity it repeatedly picks one
// fitting waiting job (or skip) from the policy network's masked softmax
// until it skips or no candidate fits (§3.4 "the actions are simply the
// selected jobs for backfilling").
//
// During evaluation the most probable action is taken (§3.3.1); during
// training (when a recorder is attached) actions are sampled and every
// decision is logged as a PPO step. A large negative reward is credited when
// a backfill delays the head job's estimated reservation (§3.4).
type Agent struct {
	Policy *nn.MLP // kernel network: JobFeatures -> ... -> 1
	Value  *nn.MLP // critic: FlatDim -> ... -> 1
	Obs    ObsConfig
	// Est provides the runtime estimates used for reservations, the safe
	// flag, and violation detection. RLBackfilling itself does not need
	// accurate predictions; the default is the user request time.
	Est backfill.Estimator

	// rollout state (nil outside training)
	rec *recorder

	pCache *nn.Cache
	vCache *nn.Cache
	scores []float64
	// res is the reservation scratch: the agent recomputes the head job's
	// reservation twice per decision, on the simulator's hottest path.
	res backfill.ReservationScratch
}

type recorder struct {
	rng              *stats.RNG
	steps            []ppo.Step
	violations       int
	violationPenalty float64
}

// NetworkSpec controls the network shapes; zero values give the paper's
// architecture (§3.3: kernel 32-16-8, 3-layer value MLP).
type NetworkSpec struct {
	KernelHidden []int
	ValueHidden  []int
	Act          nn.Activation
}

func (s NetworkSpec) withDefaults() NetworkSpec {
	if len(s.KernelHidden) == 0 {
		s.KernelHidden = []int{32, 16, 8}
	}
	if len(s.ValueHidden) == 0 {
		s.ValueHidden = []int{64, 32}
	}
	if s.Act == "" {
		s.Act = nn.ReLU
	}
	return s
}

// NewAgent creates an untrained agent with freshly initialised networks.
func NewAgent(obs ObsConfig, spec NetworkSpec, est backfill.Estimator, seed uint64) *Agent {
	obs = obs.withDefaults()
	spec = spec.withDefaults()
	rng := stats.NewRNG(seed)
	pSizes := append([]int{JobFeatures}, spec.KernelHidden...)
	pSizes = append(pSizes, 1)
	vSizes := append([]int{obs.FlatDim()}, spec.ValueHidden...)
	vSizes = append(vSizes, 1)
	if est == nil {
		est = backfill.RequestTime{}
	}
	a := &Agent{
		Policy: nn.NewMLP(pSizes, spec.Act, rng),
		Value:  nn.NewMLP(vSizes, spec.Act, rng),
		Obs:    obs,
		Est:    est,
	}
	a.initBuffers()
	return a
}

func (a *Agent) initBuffers() {
	a.pCache = nn.NewCache(a.Policy)
	a.vCache = nn.NewCache(a.Value)
	a.scores = make([]float64, a.Obs.Rows())
}

// CloneForRollout returns an agent sharing the (read-only) networks but with
// its own caches and recorder, so parallel rollout workers do not race.
func (a *Agent) CloneForRollout(rng *stats.RNG, violationPenalty float64) *Agent {
	c := &Agent{Policy: a.Policy, Value: a.Value, Obs: a.Obs, Est: a.Est}
	c.initBuffers()
	c.rec = &recorder{rng: rng, violationPenalty: violationPenalty}
	return c
}

// Name implements backfill.Backfiller.
func (a *Agent) Name() string { return "RLBF" }

// Backfill implements backfill.Backfiller.
func (a *Agent) Backfill(st backfill.State, head *trace.Job, queue []*trace.Job) {
	remaining := append([]*trace.Job(nil), queue...)
	for {
		res := a.res.Compute(st, head, a.Est)
		obs := BuildObservation(a.Obs, st, head, remaining, a.Est, res)
		if obs.Selectable == 0 {
			return // nothing can start now; no decision to make
		}
		probs := a.distribution(obs)

		var action int
		if a.rec != nil {
			action = nn.SampleCategorical(probs, a.rec.rng)
		} else {
			action = nn.Argmax(probs)
		}

		var step *ppo.Step
		if a.rec != nil {
			flat := append([]float64(nil), obs.Flat...)
			rows := make([][]float64, len(obs.Rows))
			for i := range obs.Rows {
				rows[i] = flat[i*JobFeatures : (i+1)*JobFeatures]
			}
			a.rec.steps = append(a.rec.steps, ppo.Step{
				Obs:     rows,
				FlatObs: flat,
				Mask:    append([]bool(nil), obs.Mask...),
				Action:  action,
				LogP:    nn.LogProb(probs, action),
				Value:   a.Value.Forward(obs.Flat, a.vCache)[0],
			})
			step = &a.rec.steps[len(a.rec.steps)-1]
		}

		if action == obs.SkipRow {
			return
		}
		job := obs.Jobs[action]
		st.StartJob(job)
		// Violation check (§3.4): did this action delay the head job's
		// estimated reservation?
		after := a.res.Compute(st, head, a.Est)
		if after.Shadow > res.Shadow {
			if a.rec != nil {
				a.rec.violations++
				step.Reward += a.rec.violationPenalty
			}
		}
		// drop the started job from the local queue view
		for i, j := range remaining {
			if j == job {
				remaining = append(remaining[:i], remaining[i+1:]...)
				break
			}
		}
		if len(remaining) == 0 {
			return
		}
	}
}

func (a *Agent) distribution(obs *Observation) []float64 {
	for i, row := range obs.Rows {
		if !obs.Mask[i] {
			a.scores[i] = 0
			continue
		}
		a.scores[i] = a.Policy.Forward(row, a.pCache)[0]
	}
	return nn.MaskedSoftmax(a.scores[:len(obs.Rows)], obs.Mask)
}

// takeTrajectory finishes a training episode: the terminal reward is added
// to the last step and the recorded steps are returned (empty when no
// backfill decision occurred).
func (a *Agent) takeTrajectory(terminalReward float64) (ppo.Trajectory, int) {
	steps := a.rec.steps
	if len(steps) > 0 {
		steps[len(steps)-1].Reward += terminalReward
	}
	v := a.rec.violations
	a.rec.steps = nil
	a.rec.violations = 0
	return ppo.Trajectory{Steps: steps}, v
}
