package core

import (
	"repro/internal/backfill"
	"repro/internal/nn"
	"repro/internal/ppo"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Agent is the RLBackfilling decision maker. It implements
// backfill.Backfiller: at every backfill opportunity it repeatedly picks one
// fitting waiting job (or skip) from the policy network's masked softmax
// until it skips or no candidate fits (§3.4 "the actions are simply the
// selected jobs for backfilling").
//
// During evaluation the most probable action is taken (§3.3.1); during
// training (when a recorder is attached) actions are sampled and every
// decision is logged as a PPO step. A large negative reward is credited when
// a backfill delays the head job's estimated reservation (§3.4).
type Agent struct {
	Policy *nn.MLP // kernel network: JobFeatures -> ... -> 1
	Value  *nn.MLP // critic: FlatDim -> ... -> 1
	Obs    ObsConfig
	// Est provides the runtime estimates used for reservations, the safe
	// flag, and violation detection. RLBackfilling itself does not need
	// accurate predictions; the default is the user request time.
	Est backfill.Estimator

	// rollout state (nil outside training)
	rec *recorder

	// pBatch scores all of a decision's candidate rows with one batched
	// kernel-network forward (one GEMM per layer) instead of a MulVec chain
	// per row; vBatch (allocated lazily, training only) batches the critic
	// over a whole episode's recorded steps.
	pBatch *nn.BatchCache
	vBatch *nn.BatchCache
	scores []float64
	probs  []float64
	gather []int
	// obs and remaining are reused across decisions so the per-decision
	// encode allocates nothing (BuildObservationInto).
	obs       *Observation
	remaining []*trace.Job
	// res is the reservation scratch: the agent recomputes the head job's
	// reservation twice per decision, on the simulator's hottest path.
	res backfill.ReservationScratch
}

type recorder struct {
	rng              *stats.RNG
	steps            []ppo.Step
	violations       int
	violationPenalty float64
}

// NetworkSpec controls the network shapes; zero values give the paper's
// architecture (§3.3: kernel 32-16-8, 3-layer value MLP).
type NetworkSpec struct {
	KernelHidden []int
	ValueHidden  []int
	Act          nn.Activation
}

func (s NetworkSpec) withDefaults() NetworkSpec {
	if len(s.KernelHidden) == 0 {
		s.KernelHidden = []int{32, 16, 8}
	}
	if len(s.ValueHidden) == 0 {
		s.ValueHidden = []int{64, 32}
	}
	if s.Act == "" {
		s.Act = nn.ReLU
	}
	return s
}

// NewAgent creates an untrained agent with freshly initialised networks.
func NewAgent(obs ObsConfig, spec NetworkSpec, est backfill.Estimator, seed uint64) *Agent {
	obs = obs.withDefaults()
	spec = spec.withDefaults()
	rng := stats.NewRNG(seed)
	pSizes := append([]int{JobFeatures}, spec.KernelHidden...)
	pSizes = append(pSizes, 1)
	vSizes := append([]int{obs.FlatDim()}, spec.ValueHidden...)
	vSizes = append(vSizes, 1)
	if est == nil {
		est = backfill.RequestTime{}
	}
	a := &Agent{
		Policy: nn.NewMLP(pSizes, spec.Act, rng),
		Value:  nn.NewMLP(vSizes, spec.Act, rng),
		Obs:    obs,
		Est:    est,
	}
	a.initBuffers()
	return a
}

func (a *Agent) initBuffers() {
	rows := a.Obs.Rows()
	a.pBatch = nn.NewBatchCache(a.Policy, rows)
	a.scores = make([]float64, rows)
	a.probs = make([]float64, rows)
	a.gather = make([]int, rows)
	a.obs = NewObservation(a.Obs)
}

// CloneForRollout returns an agent sharing the (read-only) networks but with
// its own caches and recorder, so parallel rollout workers do not race.
func (a *Agent) CloneForRollout(rng *stats.RNG, violationPenalty float64) *Agent {
	c := &Agent{Policy: a.Policy, Value: a.Value, Obs: a.Obs, Est: a.Est}
	c.initBuffers()
	c.rec = &recorder{rng: rng, violationPenalty: violationPenalty}
	return c
}

// Name implements backfill.Backfiller.
func (a *Agent) Name() string { return "RLBF" }

// Fresh implements backfill.Cloneable: a greedy evaluation clone sharing the
// read-only networks with its own scratch, so parallel eval sequences and
// sharded replay windows never race.
func (a *Agent) Fresh() backfill.Backfiller {
	c := &Agent{Policy: a.Policy, Value: a.Value, Obs: a.Obs, Est: a.Est}
	c.initBuffers()
	return c
}

// Backfill implements backfill.Backfiller.
func (a *Agent) Backfill(st backfill.State, head *trace.Job, queue []*trace.Job) {
	a.remaining = append(a.remaining[:0], queue...)
	remaining := a.remaining
	for {
		res := a.res.Compute(st, head, a.Est)
		obs := BuildObservationInto(a.Obs, st, head, remaining, a.Est, res, a.obs)
		if obs.Selectable == 0 {
			return // nothing can start now; no decision to make
		}
		probs := a.distribution(obs)

		var action int
		if a.rec != nil {
			action = nn.SampleCategorical(probs, a.rec.rng)
		} else {
			action = nn.Argmax(probs)
		}

		var step *ppo.Step
		if a.rec != nil {
			flat := append([]float64(nil), obs.Flat...)
			rows := make([][]float64, len(obs.Rows))
			for i := range obs.Rows {
				rows[i] = flat[i*JobFeatures : (i+1)*JobFeatures]
			}
			// Value is filled in one batched critic forward over the whole
			// episode when the trajectory is taken: the weights do not change
			// mid-rollout, so deferring is bit-identical to scoring here.
			a.rec.steps = append(a.rec.steps, ppo.Step{
				Obs:     rows,
				FlatObs: flat,
				Mask:    append([]bool(nil), obs.Mask...),
				Action:  action,
				LogP:    nn.LogProb(probs, action),
			})
			step = &a.rec.steps[len(a.rec.steps)-1]
		}

		if action == obs.SkipRow {
			return
		}
		job := obs.Jobs[action]
		st.StartJob(job)
		// Violation check (§3.4): did this action delay the head job's
		// estimated reservation?
		after := a.res.Compute(st, head, a.Est)
		if after.Shadow > res.Shadow {
			if a.rec != nil {
				a.rec.violations++
				step.Reward += a.rec.violationPenalty
			}
		}
		// drop the started job from the local queue view
		for i, j := range remaining {
			if j == job {
				remaining = append(remaining[:i], remaining[i+1:]...)
				break
			}
		}
		if len(remaining) == 0 {
			return
		}
	}
}

// distribution scores every selectable candidate row with one batched
// kernel-network forward and returns the masked-softmax action distribution
// (a view into the agent's scratch; valid until the next call). Scores are
// bit-identical to the per-row Forward loop this replaces
// (nn.TestBatchedKernelDifferential), and the call is allocation-free.
func (a *Agent) distribution(obs *Observation) []float64 {
	n := len(obs.Rows)
	probs, _ := a.Policy.ScoreMasked(obs.Rows, obs.Mask, a.pBatch, a.gather, a.scores[:n], a.probs[:n])
	return probs
}

// valueBlockRows bounds the critic batch when filling step values: at the
// paper's 1290-wide flat observation one block is ~0.7 MB of cache.
const valueBlockRows = 64

// estimateValues fills Step.Value for every recorded step of an episode with
// one batched critic forward per valueBlockRows block — replacing the
// per-decision single-row critic evaluation, the most expensive network call
// of the rollout path. The critic's weights are frozen during a rollout, so
// the deferred values are bit-identical to scoring at decision time.
func (a *Agent) estimateValues(steps []ppo.Step) {
	if a.vBatch == nil {
		a.vBatch = nn.NewBatchCache(a.Value, valueBlockRows)
	}
	for lo := 0; lo < len(steps); lo += valueBlockRows {
		hi := lo + valueBlockRows
		if hi > len(steps) {
			hi = len(steps)
		}
		in := a.vBatch.Input(hi - lo)
		for r := lo; r < hi; r++ {
			copy(in.Row(r-lo), steps[r].FlatObs)
		}
		out := a.Value.ForwardBatch(in, a.vBatch)
		for r := lo; r < hi; r++ {
			steps[r].Value = out.At(r-lo, 0)
		}
	}
}

// takeTrajectory finishes a training episode: the terminal reward is added
// to the last step, the critic values are filled in batch, and the recorded
// steps are returned (empty when no backfill decision occurred).
func (a *Agent) takeTrajectory(terminalReward float64) (ppo.Trajectory, int) {
	steps := a.rec.steps
	if len(steps) > 0 {
		steps[len(steps)-1].Reward += terminalReward
		a.estimateValues(steps)
	}
	v := a.rec.violations
	a.rec.steps = nil
	a.rec.violations = 0
	return ppo.Trajectory{Steps: steps}, v
}
