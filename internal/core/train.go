package core

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/backfill"
	"repro/internal/metrics"
	"repro/internal/ppo"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Goal selects the scheduling metric the reward optimises. The paper trains
// for average bounded slowdown and names other goals (average waiting time)
// as future work (§3.1); both are implemented.
type Goal int

const (
	// GoalBSLD optimises average bounded job slowdown (the paper's choice).
	GoalBSLD Goal = iota
	// GoalWait optimises average waiting time.
	GoalWait
)

// metric extracts the goal's value from a schedule summary. Waiting time is
// shifted by one second so the relative-improvement reward (base-x)/base
// stays well-defined on idle traces where every wait is zero.
func (g Goal) metric(s metrics.Summary) float64 {
	if g == GoalWait {
		return s.MeanWait + 1
	}
	return s.MeanBSLD
}

// String implements fmt.Stringer.
func (g Goal) String() string {
	if g == GoalWait {
		return "wait"
	}
	return "bsld"
}

// TrainConfig holds everything one training run needs (§4.1.1).
type TrainConfig struct {
	// BasePolicy is the base scheduling policy the agent backfills for
	// (FCFS in the paper's training experiments).
	BasePolicy sched.Policy
	// Goal is the optimisation target of the reward (default GoalBSLD).
	Goal Goal
	// Est is the estimator used for reservations/violations (request time
	// unless the trace lacks user estimates).
	Est backfill.Estimator
	Obs ObsConfig
	Net NetworkSpec
	PPO ppo.Config
	// TrajPerEpoch trajectories are gathered per epoch (paper: 100), each
	// scheduling EpisodeLen consecutive jobs (paper: 256).
	TrajPerEpoch int
	EpisodeLen   int
	// ViolationPenalty is the large negative reward for delaying the head
	// job's reservation (§3.4).
	ViolationPenalty float64
	Seed             uint64
	// Workers parallelises rollouts and gradient computation
	// (default GOMAXPROCS). Results are independent of the worker count.
	Workers int
	// Scn threads the scheduling scenario (priority tiers, starvation bound)
	// into every rollout and baseline engine, and into the observation encoder
	// (Obs.Scn is overwritten with this value). The zero value trains on the
	// paper's classic semantics.
	Scn sched.Scenario
}

// DefaultTrainConfig returns the paper-scale settings: 100 trajectories of
// 256 jobs per epoch, 80 policy/value iterations, lr 1e-3.
func DefaultTrainConfig() TrainConfig {
	return TrainConfig{
		BasePolicy:       sched.FCFS{},
		Est:              backfill.RequestTime{},
		Obs:              DefaultObsConfig(),
		PPO:              ppo.DefaultConfig(),
		TrajPerEpoch:     100,
		EpisodeLen:       256,
		ViolationPenalty: -2,
		Seed:             1,
	}
}

// QuickTrainConfig returns a scaled-down configuration (smaller observation,
// fewer/shorter trajectories, fewer update iterations) that exercises the
// identical code path in seconds instead of hours. Used by tests, examples
// and the default benchmark scale; see DESIGN.md's substitution table.
func QuickTrainConfig() TrainConfig {
	cfg := DefaultTrainConfig()
	cfg.Obs.MaxObs = 32
	cfg.TrajPerEpoch = 16
	cfg.EpisodeLen = 128
	cfg.PPO.PiIters = 20
	cfg.PPO.VIters = 20
	cfg.PPO.MiniBatch = 1024
	return cfg
}

func (c TrainConfig) withDefaults() TrainConfig {
	if c.BasePolicy == nil {
		c.BasePolicy = sched.FCFS{}
	}
	if c.Est == nil {
		c.Est = backfill.RequestTime{}
	}
	c.Obs = c.Obs.withDefaults()
	c.Obs.Scn = c.Scn
	if c.TrajPerEpoch <= 0 {
		c.TrajPerEpoch = 100
	}
	if c.EpisodeLen <= 0 {
		c.EpisodeLen = 256
	}
	if c.ViolationPenalty > 0 {
		c.ViolationPenalty = -c.ViolationPenalty
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.PPO.ClipRatio == 0 {
		c.PPO = ppo.DefaultConfig()
	}
	c.PPO.Workers = c.Workers
	c.PPO.Seed = c.Seed + 0x9e37
	return c
}

// EpochStats reports one training epoch (one point on Figure 4's curves).
type EpochStats struct {
	Epoch int
	// MeanBSLD is the average bounded slowdown over the epoch's episodes.
	MeanBSLD float64
	// BaselineBSLD is the FCFS + SJF-ordered-EASY baseline on the same
	// episodes (the reward's reference, §3.4).
	BaselineBSLD float64
	// MeanReward is the mean terminal reward (sjf - bsld)/sjf.
	MeanReward float64
	// Violations counts reservation-delaying backfills across the epoch.
	Violations int
	// Steps is the number of recorded decisions.
	Steps int
	// Update reports the PPO optimisation statistics.
	Update ppo.UpdateStats
}

// Trainer drives RLBackfilling training on one workload.
type Trainer struct {
	cfg   TrainConfig
	trace *trace.Trace
	agent *Agent
	opt   *ppo.PPO
	epoch int

	mu       sync.Mutex
	baseline map[int]float64 // start index -> baseline bsld

	// workers recycles rollout clones across episodes: a clone's batch
	// caches and observation scratch are per-decision overwritten and carry
	// no cross-episode state, so reuse is semantics-free (results depend
	// only on the shared networks and the per-episode RNG) but saves the
	// MB-scale cache allocations every episode.
	workers sync.Pool
}

// NewTrainer prepares training on the given trace.
func NewTrainer(tr *trace.Trace, cfg TrainConfig) (*Trainer, error) {
	cfg = cfg.withDefaults()
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	if tr.Len() == 0 {
		return nil, fmt.Errorf("core: cannot train on an empty trace")
	}
	agent := NewAgent(cfg.Obs, cfg.Net, cfg.Est, cfg.Seed)
	return &Trainer{
		cfg:      cfg,
		trace:    tr,
		agent:    agent,
		opt:      ppo.New(agent.Policy, agent.Value, cfg.PPO),
		baseline: make(map[int]float64),
	}, nil
}

// Agent returns the trained (or in-training) agent.
func (t *Trainer) Agent() *Agent { return t.agent }

// Config returns the effective configuration.
func (t *Trainer) Config() TrainConfig { return t.cfg }

// RunEpoch gathers TrajPerEpoch trajectories with the current policy and
// performs one PPO update.
func (t *Trainer) RunEpoch() (EpochStats, error) {
	n := t.cfg.TrajPerEpoch
	trajs := make([]ppo.Trajectory, n)
	bslds := make([]float64, n)
	bases := make([]float64, n)
	rewards := make([]float64, n)
	violations := make([]int, n)
	errs := make([]error, n)

	var wg sync.WaitGroup
	sem := make(chan struct{}, t.cfg.Workers)
	for i := 0; i < n; i++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			// The seed depends only on (master seed, epoch, index) so the
			// run is reproducible regardless of goroutine scheduling.
			rng := stats.NewRNG(t.cfg.Seed + uint64(t.epoch)*1000003 + uint64(i)*7919 + 17)
			trajs[i], bslds[i], bases[i], rewards[i], violations[i], errs[i] = t.rollout(rng)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return EpochStats{}, err
		}
	}

	st := EpochStats{Epoch: t.epoch}
	for i := 0; i < n; i++ {
		st.MeanBSLD += bslds[i]
		st.BaselineBSLD += bases[i]
		st.MeanReward += rewards[i]
		st.Violations += violations[i]
		st.Steps += len(trajs[i].Steps)
	}
	fn := float64(n)
	st.MeanBSLD /= fn
	st.BaselineBSLD /= fn
	st.MeanReward /= fn

	st.Update = t.opt.Update(trajs)
	t.epoch++
	return st, nil
}

// Train runs `epochs` epochs, invoking cb (if non-nil) after each.
func (t *Trainer) Train(epochs int, cb func(EpochStats)) ([]EpochStats, error) {
	out := make([]EpochStats, 0, epochs)
	for e := 0; e < epochs; e++ {
		st, err := t.RunEpoch()
		if err != nil {
			return out, err
		}
		out = append(out, st)
		if cb != nil {
			cb(st)
		}
	}
	return out, nil
}

// rollout samples one EpisodeLen-job sequence, schedules it with the
// sampling agent, and returns the trajectory with the terminal reward
// (sjf - bsld)/sjf applied (§3.4).
func (t *Trainer) rollout(rng *stats.RNG) (ppo.Trajectory, float64, float64, float64, int, error) {
	start := 0
	if t.trace.Len() > t.cfg.EpisodeLen {
		start = rng.Intn(t.trace.Len() - t.cfg.EpisodeLen + 1)
	}
	seq := trace.Slice(t.trace, start, t.cfg.EpisodeLen)

	base, err := t.baselineFor(start, seq)
	if err != nil {
		return ppo.Trajectory{}, 0, 0, 0, 0, err
	}

	worker := t.rolloutWorker(rng)
	res, err := sim.Run(seq, sim.Config{Policy: t.cfg.BasePolicy, Scenario: t.cfg.Scn, Backfiller: worker})
	if err != nil {
		return ppo.Trajectory{}, 0, 0, 0, 0, err
	}
	got := t.cfg.Goal.metric(res.Summary)
	reward := (base - got) / base
	traj, viol := worker.takeTrajectory(reward)
	t.workers.Put(worker) // takeTrajectory reset the recorder; scratch is reusable
	return traj, got, base, reward, viol, nil
}

// rolloutWorker hands out a sampling clone for one episode, recycling the
// scratch of a previous episode's clone when one is pooled.
func (t *Trainer) rolloutWorker(rng *stats.RNG) *Agent {
	if v := t.workers.Get(); v != nil {
		w := v.(*Agent)
		w.rec.rng = rng
		return w
	}
	return t.agent.CloneForRollout(rng, t.cfg.ViolationPenalty)
}

// baselineFor returns (computing and caching on first use) the reward
// baseline for the sequence starting at the given index: FCFS scheduling
// with SJF-ordered EASY backfilling (§3.4).
func (t *Trainer) baselineFor(start int, seq *trace.Trace) (float64, error) {
	t.mu.Lock()
	if v, ok := t.baseline[start]; ok {
		t.mu.Unlock()
		return v, nil
	}
	t.mu.Unlock()

	res, err := sim.Run(seq.Clone(), sim.Config{
		Policy:     sched.FCFS{},
		Scenario:   t.cfg.Scn,
		Backfiller: &backfill.EASY{Est: t.cfg.Est, Order: backfill.SJFOrder, Scn: t.cfg.Scn},
	})
	if err != nil {
		return 0, err
	}
	v := t.cfg.Goal.metric(res.Summary)
	t.mu.Lock()
	t.baseline[start] = v
	t.mu.Unlock()
	return v, nil
}
