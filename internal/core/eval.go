package core

import (
	"sync"
	"sync/atomic"

	"repro/internal/backfill"
	"repro/internal/pool"
	"repro/internal/sched"
	"repro/internal/shard"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
)

// EvalConfig mirrors the paper's test protocol (§4.3): nSeq random sequences
// of SeqLen jobs (paper: 10 sequences of 1024 jobs — four times the training
// length, to surface overfitting), scheduled with a base policy plus the
// strategy under test; the mean bounded slowdown over the sequences is
// reported.
type EvalConfig struct {
	Sequences int
	SeqLen    int
	Seed      uint64
	// Workers replays the sequences concurrently (0 or 1 = sequential).
	// Sequence sampling is derived from Seed alone and results are collected
	// by sequence index, so the outcome is identical at any worker count.
	Workers int
	// Shard, when enabled and SeqLen is at or above its threshold, replays
	// each sampled sequence as overlapping windows on a pool shared by all
	// sequences (internal/shard). Below the threshold — every existing test
	// and the paper's 1024-job sequences under the default threshold — the
	// replay path is exactly the unsharded one. A sharded replay sums its
	// summary over trace order rather than start order, so per-sequence
	// bslds can differ from the unsharded value in the last float bits (the
	// records themselves are byte-identical given sufficient overlap; see
	// DESIGN.md §7).
	Shard shard.Config
	// Scn threads the scheduling scenario (priority tiers, starvation bound)
	// into every replayed sequence's engine. The zero value is the classic
	// evaluation.
	Scn sched.Scenario
}

// DefaultEvalConfig returns the paper's evaluation protocol.
func DefaultEvalConfig() EvalConfig { return EvalConfig{Sequences: 10, SeqLen: 1024, Seed: 2023} }

func (c EvalConfig) workers() int {
	if c.Workers < 1 {
		return 1
	}
	if c.Workers > c.Sequences {
		return c.Sequences
	}
	return c.Workers
}

// sequenceStarts derives the sequence sample offsets from the seed, so every
// strategy evaluated with the same config sees the exact same job sequences.
func sequenceStarts(t *trace.Trace, cfg EvalConfig) []int {
	rng := stats.NewRNG(cfg.Seed)
	starts := make([]int, cfg.Sequences)
	for i := range starts {
		if t.Len() > cfg.SeqLen {
			starts[i] = rng.Intn(t.Len() - cfg.SeqLen + 1)
		}
	}
	return starts
}

// runSequences replays every sampled sequence, fanning across cfg.Workers
// goroutines. mkBF yields the backfiller for one worker: backfillers carry
// scratch state, so each concurrent replay needs its own instance. Results
// are written by sequence index — never by completion order — so the output
// is bit-identical at any worker count.
func runSequences(t *trace.Trace, base sched.Policy, cfg EvalConfig,
	mkBF func() backfill.Backfiller) (float64, []float64, error) {
	starts := sequenceStarts(t, cfg)
	per := make([]float64, len(starts))
	errs := make([]error, len(starts))

	w := cfg.workers()
	// All sequences' windows share one pool, so total machine pressure stays
	// bounded no matter how many sequences replay concurrently (the sequence
	// goroutines hold no tokens, like RunMany's experiment coordinators).
	// The pool defaults to the eval worker budget — NOT GOMAXPROCS — so an
	// evaluation embedded in a weight-1 experiment cell never multiplies the
	// parallelism its caller configured; an explicit Shard.Workers overrides.
	var shardPool *pool.Pool
	if cfg.Shard.Active(cfg.SeqLen) {
		sw := cfg.Shard.Workers
		if sw <= 0 {
			sw = w
		}
		shardPool = pool.New(sw)
	}
	var wg sync.WaitGroup
	var failed atomic.Bool
	sem := make(chan struct{}, w)
	for i, start := range starts {
		if failed.Load() {
			break // fail-fast: the result is already lost
		}
		wg.Add(1)
		sem <- struct{}{}
		go func(i, start int) {
			defer wg.Done()
			defer func() { <-sem }()
			seq := trace.Slice(t, start, cfg.SeqLen)
			var res *sim.Result
			var err error
			if cfg.Shard.Active(seq.Len()) {
				res, err = shard.ReplayScenario(seq, base, cfg.Scn, mkBF, cfg.Shard, shardPool)
			} else {
				res, err = sim.Run(seq, sim.Config{Policy: base, Scenario: cfg.Scn, Backfiller: mkBF()})
			}
			if err != nil {
				errs[i] = err
				failed.Store(true)
				return
			}
			per[i] = res.Summary.MeanBSLD
		}(i, start)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return 0, nil, err
		}
	}
	return stats.Mean(per), per, nil
}

// EvaluateStrategy measures a base policy plus heuristic backfiller
// (nil = no backfilling) under the paper's protocol, returning the mean and
// per-sequence bounded slowdowns. With cfg.Workers > 1 the sequences replay
// concurrently when the backfiller is nil or backfill.Cloneable; a stateful
// backfiller that cannot be cloned falls back to a sequential run.
func EvaluateStrategy(t *trace.Trace, base sched.Policy, bf backfill.Backfiller, cfg EvalConfig) (float64, []float64, error) {
	mkBF := func() backfill.Backfiller { return bf }
	if bf != nil {
		if c, ok := bf.(backfill.Cloneable); ok {
			mkBF = func() backfill.Backfiller { return c.Fresh() }
		} else {
			cfg.Workers = 1 // cannot share scratch state between replays
			cfg.Shard = shard.Config{}
		}
	}
	return runSequences(t, base, cfg, mkBF)
}

// EvaluateAgent measures a trained agent (greedy action selection, §3.3.1)
// under the same protocol; each concurrent replay gets a greedy clone
// sharing the read-only networks. The agent may have been trained on a
// different trace — that is exactly the paper's generality experiment
// (Table 5).
func EvaluateAgent(a *Agent, t *trace.Trace, base sched.Policy, cfg EvalConfig) (float64, []float64, error) {
	return runSequences(t, base, cfg, a.Fresh)
}
