package core

import (
	"repro/internal/backfill"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
)

// EvalConfig mirrors the paper's test protocol (§4.3): nSeq random sequences
// of SeqLen jobs (paper: 10 sequences of 1024 jobs — four times the training
// length, to surface overfitting), scheduled with a base policy plus the
// strategy under test; the mean bounded slowdown over the sequences is
// reported.
type EvalConfig struct {
	Sequences int
	SeqLen    int
	Seed      uint64
}

// DefaultEvalConfig returns the paper's evaluation protocol.
func DefaultEvalConfig() EvalConfig { return EvalConfig{Sequences: 10, SeqLen: 1024, Seed: 2023} }

// sequenceStarts derives the sequence sample offsets from the seed, so every
// strategy evaluated with the same config sees the exact same job sequences.
func sequenceStarts(t *trace.Trace, cfg EvalConfig) []int {
	rng := stats.NewRNG(cfg.Seed)
	starts := make([]int, cfg.Sequences)
	for i := range starts {
		if t.Len() > cfg.SeqLen {
			starts[i] = rng.Intn(t.Len() - cfg.SeqLen + 1)
		}
	}
	return starts
}

// EvaluateStrategy measures a base policy plus heuristic backfiller
// (nil = no backfilling) under the paper's protocol, returning the mean and
// per-sequence bounded slowdowns.
func EvaluateStrategy(t *trace.Trace, base sched.Policy, bf backfill.Backfiller, cfg EvalConfig) (float64, []float64, error) {
	per := make([]float64, 0, cfg.Sequences)
	for _, start := range sequenceStarts(t, cfg) {
		seq := trace.Slice(t, start, cfg.SeqLen)
		res, err := sim.Run(seq, sim.Config{Policy: base, Backfiller: bf})
		if err != nil {
			return 0, nil, err
		}
		per = append(per, res.Summary.MeanBSLD)
	}
	return stats.Mean(per), per, nil
}

// EvaluateAgent measures a trained agent (greedy action selection, §3.3.1)
// under the same protocol. The agent may have been trained on a different
// trace — that is exactly the paper's generality experiment (Table 5).
func EvaluateAgent(a *Agent, t *trace.Trace, base sched.Policy, cfg EvalConfig) (float64, []float64, error) {
	greedy := &Agent{Policy: a.Policy, Value: a.Value, Obs: a.Obs, Est: a.Est}
	greedy.initBuffers()
	per := make([]float64, 0, cfg.Sequences)
	for _, start := range sequenceStarts(t, cfg) {
		seq := trace.Slice(t, start, cfg.SeqLen)
		res, err := sim.Run(seq, sim.Config{Policy: base, Backfiller: greedy})
		if err != nil {
			return 0, nil, err
		}
		per = append(per, res.Summary.MeanBSLD)
	}
	return stats.Mean(per), per, nil
}
