package core

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/backfill"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
)

// fakeState is a minimal backfill.State for observation tests.
type fakeState struct {
	now     int64
	free    int
	total   int
	running []backfill.Running
	started []*trace.Job
}

func (f *fakeState) Now() int64                  { return f.now }
func (f *fakeState) FreeProcs() int              { return f.free }
func (f *fakeState) TotalProcs() int             { return f.total }
func (f *fakeState) Running() []backfill.Running { return f.running }
func (f *fakeState) StartJob(j *trace.Job) {
	f.started = append(f.started, j)
	f.free -= j.Procs
	f.running = append(f.running, backfill.Running{Job: j, Start: f.now})
}

func job(id int, submit, run, req int64, procs int) *trace.Job {
	return &trace.Job{ID: id, Submit: submit, Runtime: run, Request: req, Procs: procs}
}

func TestObsConfigShapes(t *testing.T) {
	cfg := ObsConfig{MaxObs: 16}
	if cfg.Rows() != 17 {
		t.Fatalf("Rows = %d, want 17 (MaxObs + skip)", cfg.Rows())
	}
	if cfg.FlatDim() != 17*JobFeatures {
		t.Fatalf("FlatDim = %d", cfg.FlatDim())
	}
	var zero ObsConfig
	if zero.Rows() != 129 {
		t.Fatalf("default Rows = %d, want 129", zero.Rows())
	}
}

func buildObs(cfg ObsConfig, st backfill.State, head *trace.Job, queue []*trace.Job) *Observation {
	est := backfill.RequestTime{}
	res := backfill.ComputeReservation(st, head, est)
	return BuildObservation(cfg, st, head, queue, est, res)
}

func TestObservationMasksHeadAndPadding(t *testing.T) {
	st := &fakeState{now: 100, free: 4, total: 16,
		running: []backfill.Running{{Job: job(1, 0, 1000, 1000, 12), Start: 0}}}
	head := job(2, 10, 100, 100, 10)
	queue := []*trace.Job{
		job(3, 20, 50, 50, 2), // fits: selectable
		job(4, 30, 50, 50, 8), // too wide for 4 free: masked
	}
	cfg := ObsConfig{MaxObs: 8, SkipAction: true}
	o := buildObs(cfg, st, head, queue)

	if o.Mask[0] {
		t.Fatal("head job must be masked (§3.2)")
	}
	if o.Rows[0][featRJob] != 1 {
		t.Fatal("head row must carry the rjob flag")
	}
	if !o.Mask[1] {
		t.Fatal("fitting job must be selectable")
	}
	if o.Mask[2] {
		t.Fatal("too-wide job must be masked")
	}
	if !o.Mask[o.SkipRow] {
		t.Fatal("skip slot must be selectable when enabled")
	}
	if o.Selectable != 1 {
		t.Fatalf("Selectable = %d, want 1", o.Selectable)
	}
	// padding rows are zero and masked
	for i := 3; i < o.SkipRow; i++ {
		if o.Mask[i] {
			t.Fatalf("padding row %d selectable", i)
		}
		for _, v := range o.Rows[i] {
			if v != 0 {
				t.Fatalf("padding row %d not zeroed", i)
			}
		}
	}
}

func TestObservationFeatureRanges(t *testing.T) {
	st := &fakeState{now: 1000, free: 8, total: 16,
		running: []backfill.Running{{Job: job(1, 0, 5000, 5000, 8), Start: 0}}}
	head := job(2, 10, 100, 100, 16)
	queue := []*trace.Job{job(3, 50, 123456, 234567, 4)}
	o := buildObs(ObsConfig{MaxObs: 4, SkipAction: true}, st, head, queue)
	for i, row := range o.Rows {
		for k, v := range row {
			if v < 0 || v > 1 || math.IsNaN(v) {
				t.Fatalf("row %d feature %d out of [0,1]: %v", i, k, v)
			}
		}
	}
	// free fraction appended to every job row (§3.2)
	if o.Rows[0][featFree] != 0.5 || o.Rows[1][featFree] != 0.5 {
		t.Fatal("free fraction not appended to job vectors")
	}
}

func TestObservationCutsByFCFS(t *testing.T) {
	st := &fakeState{now: 1000, free: 1, total: 16,
		running: []backfill.Running{{Job: job(1, 0, 5000, 5000, 15), Start: 0}}}
	head := job(2, 500, 100, 100, 16)
	var queue []*trace.Job
	for i := 0; i < 20; i++ {
		queue = append(queue, job(10+i, int64(20-i), 50, 50, 1)) // later IDs submitted earlier
	}
	cfg := ObsConfig{MaxObs: 5, SkipAction: false}
	o := buildObs(cfg, st, head, queue)
	// Rows: head + the 4 earliest-submitted jobs (IDs 29, 28, 27, 26).
	if o.Jobs[0] != head {
		t.Fatal("head must occupy row 0")
	}
	for i, wantID := range []int{29, 28, 27, 26} {
		if o.Jobs[i+1] == nil || o.Jobs[i+1].ID != wantID {
			t.Fatalf("row %d holds job %+v, want ID %d (FCFS cut, §3.3.2)", i+1, o.Jobs[i+1], wantID)
		}
	}
}

func TestObservationSafeFlag(t *testing.T) {
	// Running job ends (per request) at t=100; head needs the full machine.
	st := &fakeState{now: 0, free: 2, total: 10,
		running: []backfill.Running{{Job: job(1, 0, 100, 100, 8), Start: 0}}}
	head := job(2, 0, 50, 50, 10)
	short := job(3, 0, 50, 50, 2)  // ends at 50 <= shadow 100: safe
	long := job(4, 0, 500, 500, 2) // overruns shadow, extra=0: unsafe
	o := buildObs(ObsConfig{MaxObs: 8}, st, head, []*trace.Job{short, long})
	if o.Rows[1][featSafe] != 1 {
		t.Fatal("short job should be flagged EASY-safe")
	}
	if o.Rows[2][featSafe] != 0 {
		t.Fatal("long job should not be flagged safe")
	}
}

func TestAgentGreedyPicksArgmax(t *testing.T) {
	a := NewAgent(ObsConfig{MaxObs: 8, SkipAction: false}, NetworkSpec{}, backfill.RequestTime{}, 3)
	st := &fakeState{now: 0, free: 2, total: 10,
		running: []backfill.Running{{Job: job(1, 0, 100, 100, 8), Start: 0}}}
	head := job(2, 0, 50, 50, 10)
	queue := []*trace.Job{job(3, 0, 50, 50, 2), job(4, 0, 60, 60, 2)}
	a.Backfill(st, head, queue)
	// with 2 free procs, exactly one of the two 2-proc jobs can start
	if len(st.started) != 1 {
		t.Fatalf("agent started %d jobs, want 1", len(st.started))
	}
}

func TestAgentNeverStartsHeadOrMasked(t *testing.T) {
	for seed := uint64(1); seed <= 10; seed++ {
		a := NewAgent(ObsConfig{MaxObs: 8, SkipAction: true}, NetworkSpec{}, backfill.RequestTime{}, seed)
		worker := a.CloneForRollout(stats.NewRNG(seed), -5)
		st := &fakeState{now: 0, free: 4, total: 16,
			running: []backfill.Running{{Job: job(1, 0, 100, 100, 12), Start: 0}}}
		head := job(2, 0, 50, 50, 16)
		queue := []*trace.Job{job(3, 0, 50, 50, 2), job(4, 0, 50, 50, 8)}
		worker.Backfill(st, head, queue)
		for _, s := range st.started {
			if s.ID == 2 {
				t.Fatal("agent backfilled the head job")
			}
			if s.ID == 4 {
				t.Fatal("agent started a job wider than the free processors")
			}
		}
	}
}

func TestAgentRecordsSteps(t *testing.T) {
	a := NewAgent(ObsConfig{MaxObs: 8, SkipAction: true}, NetworkSpec{}, backfill.RequestTime{}, 5)
	worker := a.CloneForRollout(stats.NewRNG(7), -5)
	st := &fakeState{now: 0, free: 4, total: 16,
		running: []backfill.Running{{Job: job(1, 0, 100, 100, 12), Start: 0}}}
	head := job(2, 0, 50, 50, 16)
	queue := []*trace.Job{job(3, 0, 50, 50, 2), job(4, 0, 50, 50, 2)}
	worker.Backfill(st, head, queue)
	traj, _ := worker.takeTrajectory(0.5)
	if len(traj.Steps) == 0 {
		t.Fatal("no steps recorded during training rollout")
	}
	last := traj.Steps[len(traj.Steps)-1]
	if last.Reward < 0.5-5.0-1e-9 || last.Reward > 0.5+1e-9 {
		t.Fatalf("terminal reward %v not applied sensibly", last.Reward)
	}
	for _, s := range traj.Steps {
		if !s.Mask[s.Action] {
			t.Fatal("recorded action was masked")
		}
		if s.LogP > 0 {
			t.Fatalf("log probability %v > 0", s.LogP)
		}
	}
}

func TestAgentViolationPenalty(t *testing.T) {
	// Construct a state where the only candidate delays the head: free 2,
	// running job ends at 100, head needs 10 (shadow=100, extra=0), the
	// candidate runs 500s on 2 procs -> overruns shadow and eats the head's
	// processors.
	a := NewAgent(ObsConfig{MaxObs: 4, SkipAction: false}, NetworkSpec{}, backfill.RequestTime{}, 1)
	worker := a.CloneForRollout(stats.NewRNG(2), -5)
	st := &fakeState{now: 0, free: 2, total: 10,
		running: []backfill.Running{{Job: job(1, 0, 100, 100, 8), Start: 0}}}
	head := job(2, 0, 50, 50, 10)
	long := job(3, 0, 500, 500, 2)
	worker.Backfill(st, head, []*trace.Job{long})
	traj, viol := worker.takeTrajectory(0)
	if len(st.started) != 1 {
		t.Fatalf("agent started %d jobs", len(st.started))
	}
	if viol != 1 {
		t.Fatalf("violations = %d, want 1", viol)
	}
	found := false
	for _, s := range traj.Steps {
		if s.Reward == -5 {
			found = true
		}
	}
	if !found {
		t.Fatal("violation penalty not credited to a step")
	}
}

func TestAgentInSimulator(t *testing.T) {
	tr := trace.SyntheticSDSCSP2(200, 8)
	a := NewAgent(ObsConfig{MaxObs: 16, SkipAction: true}, NetworkSpec{}, backfill.RequestTime{}, 3)
	res, err := sim.Run(tr, sim.Config{Policy: sched.FCFS{}, Backfiller: a})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 200 {
		t.Fatalf("agent-backfilled run finished %d/200 jobs", len(res.Records))
	}
}

func TestTrainerSmoke(t *testing.T) {
	tr := trace.SyntheticSDSCSP2(600, 4)
	cfg := QuickTrainConfig()
	cfg.TrajPerEpoch = 6
	cfg.EpisodeLen = 80
	cfg.Obs.MaxObs = 16
	cfg.PPO.PiIters = 5
	cfg.PPO.VIters = 5
	cfg.Seed = 11
	cfg.Workers = 2
	trainer, err := NewTrainer(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	hist, err := trainer.Train(2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(hist) != 2 {
		t.Fatalf("%d epochs recorded", len(hist))
	}
	for _, h := range hist {
		if h.Steps == 0 {
			t.Fatal("epoch recorded no decisions")
		}
		if math.IsNaN(h.MeanReward) || math.IsInf(h.MeanReward, 0) {
			t.Fatalf("non-finite reward %v", h.MeanReward)
		}
		if h.BaselineBSLD < 1 {
			t.Fatalf("baseline bsld %v < 1", h.BaselineBSLD)
		}
	}
}

func TestTrainerDeterministicAcrossWorkerCounts(t *testing.T) {
	run := func(workers int) float64 {
		tr := trace.SyntheticSDSCSP2(400, 4)
		cfg := QuickTrainConfig()
		cfg.TrajPerEpoch = 4
		cfg.EpisodeLen = 60
		cfg.Obs.MaxObs = 16
		cfg.PPO.PiIters = 3
		cfg.PPO.VIters = 3
		cfg.PPO.MiniBatch = 0
		cfg.Seed = 5
		cfg.Workers = workers
		trainer, err := NewTrainer(tr, cfg)
		if err != nil {
			t.Fatal(err)
		}
		st, err := trainer.RunEpoch()
		if err != nil {
			t.Fatal(err)
		}
		return st.MeanBSLD
	}
	// Rollout results must not depend on parallelism.
	if a, b := run(1), run(4); a != b {
		t.Fatalf("rollout bsld differs across worker counts: %v vs %v", a, b)
	}
}

func TestTrainerRejectsEmptyTrace(t *testing.T) {
	if _, err := NewTrainer(&trace.Trace{Name: "x", Procs: 4}, QuickTrainConfig()); err == nil {
		t.Fatal("empty trace accepted")
	}
}

func TestEvaluateStrategyAndAgentUseSameSequences(t *testing.T) {
	tr := trace.SyntheticSDSCSP2(2000, 6)
	cfg := EvalConfig{Sequences: 3, SeqLen: 150, Seed: 99}
	easy := backfill.NewEASY(backfill.RequestTime{})
	m1, per1, err := EvaluateStrategy(tr, sched.FCFS{}, easy, cfg)
	if err != nil {
		t.Fatal(err)
	}
	m2, per2, err := EvaluateStrategy(tr, sched.FCFS{}, easy, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m1 != m2 {
		t.Fatal("evaluation not reproducible")
	}
	for i := range per1 {
		if per1[i] != per2[i] {
			t.Fatal("per-sequence results differ")
		}
	}
	a := NewAgent(ObsConfig{MaxObs: 16}, NetworkSpec{}, backfill.RequestTime{}, 1)
	am, aper, err := EvaluateAgent(a, tr, sched.FCFS{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(aper) != 3 || am <= 0 {
		t.Fatalf("agent eval: mean %v over %d sequences", am, len(aper))
	}
}

func TestModelRoundTrip(t *testing.T) {
	a := NewAgent(ObsConfig{MaxObs: 16, SkipAction: true}, NetworkSpec{}, backfill.RequestTime{}, 9)
	m := ExportModel(a, "FCFS", "SDSC-SP2", 42)
	var buf bytes.Buffer
	if err := m.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.TrainedOn != "SDSC-SP2" || got.BasePolicy != "FCFS" || got.Epochs != 42 {
		t.Fatalf("metadata lost: %+v", got)
	}
	b, err := got.Agent()
	if err != nil {
		t.Fatal(err)
	}
	// identical behaviour on an identical observation
	st := &fakeState{now: 0, free: 4, total: 16,
		running: []backfill.Running{{Job: job(1, 0, 100, 100, 12), Start: 0}}}
	head := job(2, 0, 50, 50, 16)
	queue := []*trace.Job{job(3, 0, 50, 50, 2), job(4, 0, 70, 70, 2)}
	est := backfill.RequestTime{}
	res := backfill.ComputeReservation(st, head, est)
	obs := BuildObservation(a.Obs, st, head, queue, est, res)
	pa := a.distribution(obs)
	pb := b.distribution(obs)
	for i := range pa {
		if pa[i] != pb[i] {
			t.Fatalf("loaded model differs at action %d: %v vs %v", i, pa[i], pb[i])
		}
	}
}

func TestModelAgentValidation(t *testing.T) {
	if _, err := (Model{}).Agent(); err == nil {
		t.Fatal("empty model accepted")
	}
	a := NewAgent(ObsConfig{MaxObs: 16}, NetworkSpec{}, nil, 1)
	m := ExportModel(a, "FCFS", "x", 1)
	m.Obs.MaxObs = 64 // now value net no longer matches
	if _, err := m.Agent(); err == nil {
		t.Fatal("obs/value shape mismatch accepted")
	}
	m2 := ExportModel(a, "FCFS", "x", 1)
	m2.Estimator = "bogus"
	if _, err := m2.Agent(); err == nil {
		t.Fatal("unknown estimator accepted")
	}
}

func TestNewAgentUsesPaperArchitecture(t *testing.T) {
	a := NewAgent(DefaultObsConfig(), NetworkSpec{}, nil, 1)
	wantKernel := []int{JobFeatures, 32, 16, 8, 1}
	for i, s := range wantKernel {
		if a.Policy.Sizes[i] != s {
			t.Fatalf("kernel sizes %v, want %v", a.Policy.Sizes, wantKernel)
		}
	}
	if a.Value.Sizes[0] != 129*JobFeatures {
		t.Fatalf("value input %d, want %d", a.Value.Sizes[0], 129*JobFeatures)
	}
}

// The headline smoke test: on a small workload the quick configuration must
// produce an agent whose greedy policy is at least competitive with (not
// catastrophically worse than) random behaviour, and training must improve
// the mean reward over epochs on average.
func TestTrainingImprovesReward(t *testing.T) {
	if testing.Short() {
		t.Skip("training test skipped in -short mode")
	}
	tr := trace.SyntheticSDSCSP2(1500, 10)
	cfg := QuickTrainConfig()
	cfg.TrajPerEpoch = 12
	cfg.EpisodeLen = 100
	cfg.Obs.MaxObs = 16
	cfg.PPO.PiIters = 15
	cfg.PPO.VIters = 15
	cfg.Seed = 21
	trainer, err := NewTrainer(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	hist, err := trainer.Train(8, nil)
	if err != nil {
		t.Fatal(err)
	}
	early := (hist[0].MeanReward + hist[1].MeanReward) / 2
	late := (hist[len(hist)-2].MeanReward + hist[len(hist)-1].MeanReward) / 2
	if late < early-0.3 {
		t.Fatalf("reward regressed badly during training: early %.3f late %.3f", early, late)
	}
}
