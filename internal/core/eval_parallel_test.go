package core

import (
	"testing"

	"repro/internal/backfill"
	"repro/internal/sched"
	"repro/internal/trace"
)

// Parallel evaluation must be invisible in the results: per-sequence bslds
// and the mean are bit-identical at any worker count, because sequence
// sampling depends only on the seed and results land by sequence index.
func TestEvaluateStrategyParallelMatchesSequential(t *testing.T) {
	tr := trace.SyntheticSDSCSP2(1500, 11)
	base := EvalConfig{Sequences: 4, SeqLen: 120, Seed: 42}
	seqMean, seqPer, err := EvaluateStrategy(tr, sched.FCFS{}, backfill.NewEASY(backfill.RequestTime{}), base)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 4, 8} {
		cfg := base
		cfg.Workers = w
		mean, per, err := EvaluateStrategy(tr, sched.FCFS{}, backfill.NewEASY(backfill.RequestTime{}), cfg)
		if err != nil {
			t.Fatal(err)
		}
		if mean != seqMean {
			t.Fatalf("Workers=%d mean %v, sequential %v", w, mean, seqMean)
		}
		for i := range per {
			if per[i] != seqPer[i] {
				t.Fatalf("Workers=%d sequence %d: %v vs %v", w, i, per[i], seqPer[i])
			}
		}
	}
}

func TestEvaluateAgentParallelMatchesSequential(t *testing.T) {
	tr := trace.SyntheticSDSCSP2(1500, 12)
	a := NewAgent(ObsConfig{MaxObs: 16}, NetworkSpec{}, backfill.RequestTime{}, 5)
	base := EvalConfig{Sequences: 4, SeqLen: 120, Seed: 42}
	_, seqPer, err := EvaluateAgent(a, tr, sched.SJF{}, base)
	if err != nil {
		t.Fatal(err)
	}
	cfg := base
	cfg.Workers = 4
	_, per, err := EvaluateAgent(a, tr, sched.SJF{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range per {
		if per[i] != seqPer[i] {
			t.Fatalf("sequence %d: parallel %v vs sequential %v", i, per[i], seqPer[i])
		}
	}
}

// opaqueBackfiller hides EASY behind a type without Fresh, so evaluation
// cannot clone it and must fall back to a sequential replay.
type opaqueBackfiller struct{ inner backfill.Backfiller }

func (o *opaqueBackfiller) Name() string { return o.inner.Name() }
func (o *opaqueBackfiller) Backfill(st backfill.State, head *trace.Job, queue []*trace.Job) {
	o.inner.Backfill(st, head, queue)
}

func TestEvaluateStrategyNonCloneableFallsBack(t *testing.T) {
	tr := trace.SyntheticSDSCSP2(1500, 13)
	cfg := EvalConfig{Sequences: 3, SeqLen: 120, Seed: 7, Workers: 8}
	_, wantPer, err := EvaluateStrategy(tr, sched.FCFS{}, backfill.NewEASY(backfill.RequestTime{}), cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, gotPer, err := EvaluateStrategy(tr, sched.FCFS{},
		&opaqueBackfiller{inner: backfill.NewEASY(backfill.RequestTime{})}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range wantPer {
		if gotPer[i] != wantPer[i] {
			t.Fatalf("sequence %d: opaque %v vs cloneable %v", i, gotPer[i], wantPer[i])
		}
	}
}
