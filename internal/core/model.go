package core

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"repro/internal/backfill"
	"repro/internal/nn"
)

// Model is the serialisable form of a trained RLBackfilling agent, carrying
// enough metadata to reproduce Table 5's "RL-X applied to Y" protocol.
type Model struct {
	Policy     *nn.MLP   `json:"policy"`
	Value      *nn.MLP   `json:"value"`
	Obs        ObsConfig `json:"obs"`
	Estimator  string    `json:"estimator"`   // "RT" or "AR"
	BasePolicy string    `json:"base_policy"` // policy used during training
	TrainedOn  string    `json:"trained_on"`  // trace name
	Epochs     int       `json:"epochs"`
}

// ExportModel captures the agent's networks and metadata.
func ExportModel(a *Agent, basePolicy, trainedOn string, epochs int) Model {
	estName := "RT"
	if _, ok := a.Est.(backfill.ActualRuntime); ok {
		estName = "AR"
	}
	return Model{
		Policy:     a.Policy,
		Value:      a.Value,
		Obs:        a.Obs,
		Estimator:  estName,
		BasePolicy: basePolicy,
		TrainedOn:  trainedOn,
		Epochs:     epochs,
	}
}

// Agent reconstructs a ready-to-use greedy agent from the model.
func (m Model) Agent() (*Agent, error) {
	if m.Policy == nil || m.Value == nil {
		return nil, fmt.Errorf("core: model is missing networks")
	}
	if m.Policy.Sizes[0] != JobFeatures {
		return nil, fmt.Errorf("core: model kernel expects %d features, library uses %d",
			m.Policy.Sizes[0], JobFeatures)
	}
	if m.Value.Sizes[0] != m.Obs.FlatDim() {
		return nil, fmt.Errorf("core: model value input %d does not match obs dim %d",
			m.Value.Sizes[0], m.Obs.FlatDim())
	}
	var est backfill.Estimator = backfill.RequestTime{}
	switch m.Estimator {
	case "RT", "":
	case "AR":
		est = backfill.ActualRuntime{}
	default:
		return nil, fmt.Errorf("core: unknown estimator %q in model", m.Estimator)
	}
	a := &Agent{Policy: m.Policy, Value: m.Value, Obs: m.Obs, Est: est}
	a.initBuffers()
	return a, nil
}

// Write serialises the model as JSON.
func (m Model) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(m)
}

// ReadModel parses a model written by Write.
func ReadModel(r io.Reader) (Model, error) {
	var m Model
	if err := json.NewDecoder(r).Decode(&m); err != nil {
		return Model{}, fmt.Errorf("core: reading model: %w", err)
	}
	return m, nil
}

// SaveModelFile writes the model to path.
func SaveModelFile(path string, m Model) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := m.Write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadModelFile reads a model from path.
func LoadModelFile(path string) (Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return Model{}, err
	}
	defer f.Close()
	return ReadModel(f)
}
