package core

import (
	"testing"

	"repro/internal/backfill"
	"repro/internal/trace"
)

// allocFixture builds a decision point with a part-filled queue: some
// selectable rows, some masked, some padding — the shape every per-decision
// hot-path call sees.
func allocFixture() (ObsConfig, *fakeState, *trace.Job, []*trace.Job, backfill.Estimator, backfill.Reservation) {
	st := &fakeState{now: 1000, free: 8, total: 32,
		running: []backfill.Running{{Job: job(1, 0, 5000, 5000, 24), Start: 0}}}
	head := job(2, 10, 100, 100, 32)
	var queue []*trace.Job
	for i := 0; i < 24; i++ {
		procs := 2
		if i%3 == 0 {
			procs = 16 // masked: wider than the free processors
		}
		queue = append(queue, job(10+i, int64(500-7*i), 60, 90, procs))
	}
	est := backfill.RequestTime{}
	res := backfill.ComputeReservation(st, head, est)
	return ObsConfig{MaxObs: 16, SkipAction: true}, st, head, queue, est, res
}

// TestBuildObservationIntoNoAllocs guards the reusable-buffer encode: after
// the first call the per-decision observation build is allocation-free (the
// make churn of the original BuildObservation is gone).
func TestBuildObservationIntoNoAllocs(t *testing.T) {
	cfg, st, head, queue, est, res := allocFixture()
	o := NewObservation(cfg)
	BuildObservationInto(cfg, st, head, queue, est, res, o) // warm the sort scratch
	if avg := testing.AllocsPerRun(200, func() {
		BuildObservationInto(cfg, st, head, queue, est, res, o)
	}); avg != 0 {
		t.Fatalf("BuildObservationInto allocates %v per run, want 0", avg)
	}
}

// TestBuildObservationIntoMatchesFresh pins that the reused path encodes
// exactly what a fresh BuildObservation does, including after a previous,
// differently-shaped decision left stale state in the buffers.
func TestBuildObservationIntoMatchesFresh(t *testing.T) {
	cfg, st, head, queue, est, res := allocFixture()
	o := NewObservation(cfg)
	// dirty the buffers with a full-queue decision first
	BuildObservationInto(cfg, st, head, queue, est, res, o)
	// then rebuild with a shorter queue: stale rows must read as padding
	short := queue[:3]
	got := BuildObservationInto(cfg, st, head, short, est, res, o)
	want := BuildObservation(cfg, st, head, short, est, res)
	if got.Selectable != want.Selectable || got.SkipRow != want.SkipRow {
		t.Fatalf("selectable/skip differ: got %d/%d want %d/%d",
			got.Selectable, got.SkipRow, want.Selectable, want.SkipRow)
	}
	for i := range want.Flat {
		if got.Flat[i] != want.Flat[i] {
			t.Fatalf("flat[%d] = %v, want %v", i, got.Flat[i], want.Flat[i])
		}
	}
	for i := range want.Mask {
		if got.Mask[i] != want.Mask[i] || got.Jobs[i] != want.Jobs[i] {
			t.Fatalf("mask/jobs differ at row %d", i)
		}
	}
}

// TestDistributionNoAllocs guards the evaluation-path decision: batched
// scoring plus masked softmax over reused scratch allocates nothing.
func TestDistributionNoAllocs(t *testing.T) {
	cfg, st, head, queue, est, res := allocFixture()
	a := NewAgent(cfg, NetworkSpec{}, est, 7)
	obs := BuildObservation(cfg, st, head, queue, est, res)
	if obs.Selectable == 0 {
		t.Fatal("fixture produced no selectable rows")
	}
	if avg := testing.AllocsPerRun(200, func() {
		a.distribution(obs)
	}); avg != 0 {
		t.Fatalf("distribution allocates %v per run, want 0", avg)
	}
}

// TestAgentEvalBackfillNoAllocs covers the whole greedy decision loop — the
// eval path Backfill: reservation, observation encode, batched scoring,
// argmax — which must not allocate once the scratch is warm. The fake state
// is reset (not rebuilt) between runs so only the agent's own allocations
// are counted.
func TestAgentEvalBackfillNoAllocs(t *testing.T) {
	cfg, _, head, queue, est, _ := allocFixture()
	a := NewAgent(cfg, NetworkSpec{}, est, 7)
	st := &fakeState{
		running: make([]backfill.Running, 1, 16),
		started: make([]*trace.Job, 0, 16),
	}
	runner := job(1, 0, 5000, 5000, 24)
	reset := func() {
		st.now, st.free, st.total = 1000, 8, 32
		st.running = st.running[:1]
		st.running[0] = backfill.Running{Job: runner, Start: 0}
		st.started = st.started[:0]
	}
	reset()
	a.Backfill(st, head, queue) // warm remaining/reservation scratch
	if avg := testing.AllocsPerRun(100, func() {
		reset()
		a.Backfill(st, head, queue)
	}); avg != 0 {
		t.Fatalf("eval Backfill allocates %v per run, want 0", avg)
	}
}
