package core

import (
	"math"
	"testing"

	"repro/internal/backfill"
	"repro/internal/trace"
)

func TestObservationWindowFeature(t *testing.T) {
	// Shadow at t=100 -> window 100s. A 50s job uses half the window; a 500s
	// job saturates the feature at 1.
	st := &fakeState{now: 0, free: 2, total: 10,
		running: []backfill.Running{{Job: job(1, 0, 100, 100, 8), Start: 0}}}
	head := job(2, 0, 50, 50, 10)
	half := job(3, 0, 50, 50, 2)
	over := job(4, 0, 500, 500, 2)
	o := buildObs(ObsConfig{MaxObs: 8}, st, head, []*trace.Job{half, over})
	if got := o.Rows[1][featWindow]; math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("half-window feature = %v, want 0.5", got)
	}
	if got := o.Rows[2][featWindow]; got != 1 {
		t.Fatalf("over-window feature = %v, want 1 (capped)", got)
	}
}

func TestObservationExtraFitFeature(t *testing.T) {
	// Running 6 procs until 100; head needs 8 -> shadow 100, extra = (4+6)-8 = 2.
	st := &fakeState{now: 0, free: 4, total: 10,
		running: []backfill.Running{{Job: job(1, 0, 100, 100, 6), Start: 0}}}
	head := job(2, 0, 50, 50, 8)
	narrow := job(3, 0, 500, 500, 2) // fits the 2 extra procs
	wide := job(4, 0, 500, 500, 4)   // does not
	o := buildObs(ObsConfig{MaxObs: 8}, st, head, []*trace.Job{narrow, wide})
	if o.Rows[1][featExtraFit] != 1 {
		t.Fatal("narrow job should have the extra-fit flag")
	}
	if o.Rows[2][featExtraFit] != 0 {
		t.Fatal("wide job should not have the extra-fit flag")
	}
	// extra-fit implies EASY-safe even for long jobs
	if o.Rows[1][featSafe] != 1 {
		t.Fatal("extra-fitting long job should be safe")
	}
}

func TestSkipRowAggregates(t *testing.T) {
	st := &fakeState{now: 0, free: 4, total: 8,
		running: []backfill.Running{{Job: job(1, 0, 100, 100, 4), Start: 0}}}
	head := job(2, 0, 50, 50, 8)
	safe := job(3, 0, 50, 50, 2)     // ends before shadow
	unsafe := job(4, 0, 500, 500, 4) // overruns, too wide for extra
	o := buildObs(ObsConfig{MaxObs: 8, SkipAction: true}, st, head, []*trace.Job{safe, unsafe})
	skip := o.Rows[o.SkipRow]
	if skip[featSkip] != 1 {
		t.Fatal("skip indicator not set")
	}
	if math.Abs(skip[featSafe]-0.5) > 1e-12 {
		t.Fatalf("skip safe-fraction = %v, want 0.5 (1 of 2 candidates safe)", skip[featSafe])
	}
	if skip[featFree] != 0.5 {
		t.Fatalf("skip free fraction = %v, want 0.5", skip[featFree])
	}
	if math.Abs(skip[featProcs]-2.0/8.0) > 1e-12 {
		t.Fatalf("skip queue-fill = %v, want 0.25", skip[featProcs])
	}
}

func TestSkipRowZeroWhenDisabled(t *testing.T) {
	st := &fakeState{now: 0, free: 4, total: 8,
		running: []backfill.Running{{Job: job(1, 0, 100, 100, 4), Start: 0}}}
	head := job(2, 0, 50, 50, 8)
	o := buildObs(ObsConfig{MaxObs: 8, SkipAction: false}, st, head, []*trace.Job{job(3, 0, 50, 50, 2)})
	if o.Mask[o.SkipRow] {
		t.Fatal("skip selectable while disabled")
	}
	for _, v := range o.Rows[o.SkipRow] {
		if v != 0 {
			t.Fatal("disabled skip row should stay zero")
		}
	}
}

func TestObservationZeroWindowWhenHeadFits(t *testing.T) {
	// Head fits immediately: shadow == now, window 0 -> feature saturates.
	st := &fakeState{now: 50, free: 8, total: 8}
	head := job(1, 0, 50, 50, 4)
	o := buildObs(ObsConfig{MaxObs: 4}, st, head, nil)
	if o.Rows[0][featWindow] != 1 {
		t.Fatalf("zero-window feature = %v, want 1", o.Rows[0][featWindow])
	}
}
