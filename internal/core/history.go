package core

import (
	"fmt"
	"io"
)

// WriteHistoryCSV renders training epoch statistics as CSV (one row per
// epoch) for external plotting — the raw data behind Figure 4.
func WriteHistoryCSV(w io.Writer, hist []EpochStats) error {
	if _, err := fmt.Fprintln(w, "epoch,mean_bsld,baseline_bsld,mean_reward,violations,steps,pi_iters,kl,entropy,pi_loss,v_loss"); err != nil {
		return err
	}
	for _, h := range hist {
		if _, err := fmt.Fprintf(w, "%d,%.4f,%.4f,%.5f,%d,%d,%d,%.6f,%.4f,%.6f,%.6f\n",
			h.Epoch, h.MeanBSLD, h.BaselineBSLD, h.MeanReward, h.Violations, h.Steps,
			h.Update.PiIters, h.Update.KL, h.Update.Entropy, h.Update.PiLossLast, h.Update.VLossLast); err != nil {
			return err
		}
	}
	return nil
}

// BestEpoch returns the index of the epoch with the lowest mean bounded
// slowdown (-1 for an empty history).
func BestEpoch(hist []EpochStats) int {
	best := -1
	for i, h := range hist {
		if best < 0 || h.MeanBSLD < hist[best].MeanBSLD {
			best = i
		}
	}
	return best
}

// Converged reports whether the reward curve has flattened: the mean reward
// of the last `window` epochs improved by less than tol over the preceding
// window. It is a practical stopping signal for open-ended training runs.
func Converged(hist []EpochStats, window int, tol float64) bool {
	if window <= 0 || len(hist) < 2*window {
		return false
	}
	var recent, previous float64
	for _, h := range hist[len(hist)-window:] {
		recent += h.MeanReward
	}
	for _, h := range hist[len(hist)-2*window : len(hist)-window] {
		previous += h.MeanReward
	}
	recent /= float64(window)
	previous /= float64(window)
	return recent-previous < tol
}
