// Package core implements RLBackfilling, the paper's contribution (§3): a
// PPO-trained agent that directly decides which waiting jobs to backfill
// when the head of the queue cannot start, learning the trade-off between
// runtime-prediction accuracy and backfilling opportunity end-to-end instead
// of relying on a heuristic over predicted runtimes.
package core

import (
	"math"
	"sort"

	"repro/internal/backfill"
	"repro/internal/sched"
	"repro/internal/trace"
)

// JobFeatures is the length of each per-job observation vector (§3.2): job
// attributes plus the appended resource availability, so every row carries
// the machine state the kernel network needs. The last three slots encode
// the scenario dimensions (memory, priority tier, aging progress); they read
// zero on classic procs-only traces, so the wider encoding subsumes the old
// one behind the same fixed-width layout.
const JobFeatures = 13

// Feature vector layout.
const (
	featWait     = iota // log-normalised waiting time
	featEstimate        // log-normalised estimated runtime
	featProcs           // requested processors / machine size
	featFitNow          // 1 if the job fits the free resources
	featSafe            // 1 if backfilling it cannot delay the head (EASY-safe)
	featExtraFit        // 1 if the job fits in the head's extra resources
	featWindow          // estimated runtime / head's backfill window (capped at 1)
	featFree            // free processors / machine size (availability, appended per §3.2)
	featRJob            // 1 for the relative job (present but masked, §3.2)
	featSkip            // 1 for the skip slot (its safe/free slots carry queue aggregates)
	featMem             // requested memory / machine memory (0 when the dimension is off)
	featPriority        // priority tier squashed to [0, 1): p/(p+1)
	featAge             // wait / starvation bound (clamped; 0 when aging is off)
)

// ObsConfig shapes the observation.
type ObsConfig struct {
	// MaxObs is MAX_OBSV_SIZE (§3.3.2): at most this many jobs are observed;
	// shorter queues are zero-padded, longer ones are cut after FCFS
	// sorting. Default 128 (the paper's value).
	MaxObs int
	// SkipAction appends an always-valid all-zero action row that ends the
	// backfill round; the kernel network's biases act as a learned "do
	// nothing" threshold. See DESIGN.md (the paper leaves this implicit).
	SkipAction bool
	// MaxWait and MaxRun cap the log normalisation of waiting/estimate
	// features (seconds).
	MaxWait float64
	MaxRun  float64
	// Scn supplies the scenario semantics the encoder surfaces: the
	// starvation bound normalises featAge, and (with the free-memory state)
	// memory demands gate the selectable mask exactly as they gate
	// StartJob. The zero scenario zeroes featAge and leaves the mask
	// procs-only on memless machines.
	Scn sched.Scenario
}

// DefaultObsConfig returns the paper's observation settings.
func DefaultObsConfig() ObsConfig {
	return ObsConfig{MaxObs: 128, SkipAction: true, MaxWait: 1e6, MaxRun: 1e6}
}

func (c ObsConfig) withDefaults() ObsConfig {
	if c.MaxObs <= 0 {
		c.MaxObs = 128
	}
	if c.MaxWait <= 0 {
		c.MaxWait = 1e6
	}
	if c.MaxRun <= 0 {
		c.MaxRun = 1e6
	}
	return c
}

// Rows returns the number of action slots: MaxObs job rows plus the skip
// slot (always present so model shapes do not depend on the flag).
func (c ObsConfig) Rows() int { return c.withDefaults().MaxObs + 1 }

// FlatDim returns the flattened observation length for the value network.
func (c ObsConfig) FlatDim() int { return c.Rows() * JobFeatures }

// Observation is one decision point's encoded state. Observations may be
// freshly built (BuildObservation) or reused across decisions
// (BuildObservationInto), which makes the per-decision encode allocation-free
// on the simulator's hottest RL path.
type Observation struct {
	// Rows has Rows() feature vectors (padded with zeros).
	Rows [][]float64
	// Mask marks selectable rows: waiting jobs that fit the free processors,
	// plus the skip slot when enabled. The head job and padding are masked.
	Mask []bool
	// Flat is the flattened observation for the value network.
	Flat []float64
	// Jobs maps row index to the job it encodes (nil for skip/padding).
	Jobs []*trace.Job
	// SkipRow is the index of the skip slot.
	SkipRow int
	// Selectable counts the selectable job rows (excluding the skip slot);
	// when it is zero no backfill decision is needed.
	Selectable int

	// sortBuf is the scratch for the FCFS cut; the pointer-receiver sorter
	// keeps sort.Stable allocation-free (a closure-based sort.SliceStable
	// escapes per call).
	sortBuf jobsBySubmit
}

// jobsBySubmit sorts by (Submit, ID): FCFS order for the MaxObs cut.
type jobsBySubmit []*trace.Job

func (s *jobsBySubmit) Len() int      { return len(*s) }
func (s *jobsBySubmit) Swap(i, j int) { (*s)[i], (*s)[j] = (*s)[j], (*s)[i] }
func (s *jobsBySubmit) Less(i, j int) bool {
	a, b := (*s)[i], (*s)[j]
	if a.Submit != b.Submit {
		return a.Submit < b.Submit
	}
	return a.ID < b.ID
}

// NewObservation allocates an observation shaped for cfg, ready for
// BuildObservationInto.
func NewObservation(cfg ObsConfig) *Observation {
	cfg = cfg.withDefaults()
	o := &Observation{
		Rows:    make([][]float64, cfg.Rows()),
		Mask:    make([]bool, cfg.Rows()),
		Flat:    make([]float64, cfg.FlatDim()),
		Jobs:    make([]*trace.Job, cfg.Rows()),
		SkipRow: cfg.Rows() - 1,
	}
	for i := range o.Rows {
		o.Rows[i] = o.Flat[i*JobFeatures : (i+1)*JobFeatures]
	}
	return o
}

// BuildObservation encodes the backfilling state per §3.2-3.3: head plus
// waiting jobs sorted by submission time (head forced in, longest-waiting
// kept when cutting to MaxObs), one feature vector per job with the free
// resource fraction appended, and a mask that excludes the head job, jobs
// that cannot start now, and padding.
func BuildObservation(cfg ObsConfig, st backfill.State, head *trace.Job, queue []*trace.Job,
	est backfill.Estimator, res backfill.Reservation) *Observation {
	return BuildObservationInto(cfg, st, head, queue, est, res, NewObservation(cfg))
}

// BuildObservationInto is BuildObservation writing into a reused observation
// (from NewObservation with the same config), producing identical encodings
// with zero allocations per decision.
func BuildObservationInto(cfg ObsConfig, st backfill.State, head *trace.Job, queue []*trace.Job,
	est backfill.Estimator, res backfill.Reservation, o *Observation) *Observation {

	cfg = cfg.withDefaults()
	if len(o.Rows) != cfg.Rows() {
		panic("core: observation shape does not match the config")
	}
	now := st.Now()
	free := st.FreeProcs()
	total := st.TotalProcs()
	freeFrac := float64(free) / float64(total)
	memFree, memTotal := backfill.MemOf(st)
	aging := cfg.Scn.Aging()

	// reset the reused buffers: padding rows must read as zero
	for i := range o.Flat {
		o.Flat[i] = 0
	}
	for i := range o.Mask {
		o.Mask[i] = false
		o.Jobs[i] = nil
	}
	o.Selectable = 0

	// queue sorted by submit (FCFS order for cutting, §3.3.2); the head is
	// always retained in row 0.
	o.sortBuf = append(o.sortBuf[:0], queue...)
	sort.Stable(&o.sortBuf)
	jobs := []*trace.Job(o.sortBuf)
	if len(jobs) > cfg.MaxObs-1 {
		jobs = jobs[:cfg.MaxObs-1]
	}

	window := float64(res.Shadow - now) // the head's backfill window (Figure 2)
	safeCount := 0
	for i := 0; i <= len(jobs); i++ {
		j := head
		if i > 0 {
			j = jobs[i-1]
		}
		row := o.Rows[i]
		o.Jobs[i] = j
		wait := float64(now - j.Submit)
		if wait < 0 {
			wait = 0
		}
		estimate := float64(est.Estimate(j))
		row[featWait] = logNorm(wait, cfg.MaxWait)
		row[featEstimate] = logNorm(estimate, cfg.MaxRun)
		row[featProcs] = clamp01(float64(j.Procs) / float64(total))
		jm := 0
		if memTotal > 0 {
			jm = j.Mem
			row[featMem] = clamp01(float64(jm) / float64(memTotal))
		}
		if j.Priority > 0 {
			row[featPriority] = float64(j.Priority) / float64(j.Priority+1)
		}
		if aging {
			if sa := cfg.Scn.StarvesAt(j); sa > j.Submit && sa != math.MaxInt64 {
				row[featAge] = clamp01(wait / float64(sa-j.Submit))
			} else if sa <= j.Submit {
				row[featAge] = 1
			}
		}
		fits := j.Procs <= free && jm <= memFree
		if fits {
			row[featFitNow] = 1
		}
		extraFit := j.Procs <= res.Extra && jm <= res.ExtraMem
		if extraFit {
			row[featExtraFit] = 1
		}
		safe := fits && (now+est.Estimate(j) <= res.Shadow || extraFit)
		if safe {
			row[featSafe] = 1
		}
		if window > 0 {
			row[featWindow] = clamp01(estimate / window)
		} else {
			row[featWindow] = 1
		}
		row[featFree] = freeFrac
		if i == 0 {
			row[featRJob] = 1 // the relative job: visible, never selectable
		} else if fits {
			o.Mask[i] = true
			o.Selectable++
			if safe {
				safeCount++
			}
		}
	}
	if cfg.SkipAction {
		o.Mask[o.SkipRow] = true
		// The skip row carries queue-level aggregates so "stop backfilling"
		// can be weighed against the current candidates rather than acting
		// as a fixed bias threshold.
		skip := o.Rows[o.SkipRow]
		skip[featSkip] = 1
		skip[featFree] = freeFrac
		if o.Selectable > 0 {
			skip[featSafe] = float64(safeCount) / float64(o.Selectable)
		}
		skip[featProcs] = clamp01(float64(o.Selectable) / float64(cfg.MaxObs))
	}
	return o
}

// logNorm maps x in [0, cap] to [0, 1] on a log scale (robust to the
// heavy-tailed wait/runtime distributions of HPC workloads).
func logNorm(x, capV float64) float64 {
	if x < 0 {
		x = 0
	}
	if x > capV {
		x = capV
	}
	return math.Log1p(x) / math.Log1p(capV)
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
