package core

import (
	"testing"

	"repro/internal/metrics"
	"repro/internal/trace"
)

func TestGoalMetric(t *testing.T) {
	s := metrics.Summary{MeanBSLD: 7, MeanWait: 120}
	if GoalBSLD.metric(s) != 7 {
		t.Fatalf("bsld goal = %v", GoalBSLD.metric(s))
	}
	if GoalWait.metric(s) != 121 {
		t.Fatalf("wait goal = %v (should be shifted by 1)", GoalWait.metric(s))
	}
	if GoalBSLD.String() != "bsld" || GoalWait.String() != "wait" {
		t.Fatal("goal names wrong")
	}
}

func TestTrainerWithWaitGoal(t *testing.T) {
	tr := trace.SyntheticSDSCSP2(400, 6)
	cfg := QuickTrainConfig()
	cfg.Goal = GoalWait
	cfg.TrajPerEpoch = 4
	cfg.EpisodeLen = 60
	cfg.Obs.MaxObs = 16
	cfg.PPO.PiIters = 2
	cfg.PPO.VIters = 2
	cfg.Workers = 1
	trainer, err := NewTrainer(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	st, err := trainer.RunEpoch()
	if err != nil {
		t.Fatal(err)
	}
	// with the wait goal the "bsld" fields carry wait-based values >= 1
	if st.BaselineBSLD < 1 || st.MeanBSLD < 1 {
		t.Fatalf("wait-goal metrics implausible: %+v", st)
	}
}
