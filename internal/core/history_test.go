package core

import (
	"strings"
	"testing"
)

func hist(rewards ...float64) []EpochStats {
	out := make([]EpochStats, len(rewards))
	for i, r := range rewards {
		out[i] = EpochStats{Epoch: i, MeanReward: r, MeanBSLD: 10 - r}
	}
	return out
}

func TestWriteHistoryCSV(t *testing.T) {
	var sb strings.Builder
	if err := WriteHistoryCSV(&sb, hist(0.1, 0.2)); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("CSV has %d lines, want header + 2", len(lines))
	}
	if !strings.HasPrefix(lines[0], "epoch,mean_bsld") {
		t.Fatalf("header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "0,") || !strings.HasPrefix(lines[2], "1,") {
		t.Fatalf("rows wrong: %v", lines[1:])
	}
}

func TestBestEpoch(t *testing.T) {
	if BestEpoch(nil) != -1 {
		t.Fatal("empty history should give -1")
	}
	h := hist(0.1, 0.5, 0.3) // bsld = 9.9, 9.5, 9.7 -> best is index 1
	if got := BestEpoch(h); got != 1 {
		t.Fatalf("BestEpoch = %d, want 1", got)
	}
}

func TestConverged(t *testing.T) {
	// strongly improving: not converged
	improving := hist(0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7)
	if Converged(improving, 3, 0.01) {
		t.Fatal("improving run reported converged")
	}
	// flat: converged
	flat := hist(0.5, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5)
	if !Converged(flat, 3, 0.01) {
		t.Fatal("flat run not reported converged")
	}
	// too short: never converged
	if Converged(hist(0.5, 0.5), 3, 0.01) {
		t.Fatal("short history reported converged")
	}
	if Converged(flat, 0, 0.01) {
		t.Fatal("zero window reported converged")
	}
}
