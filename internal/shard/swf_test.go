package shard

import (
	"math"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/backfill"
	"repro/internal/sched"
	"repro/internal/trace"
)

// TestSWFArchiveShardedReplay is the opt-in real-archive path (ROADMAP:
// "Vendored SWF ingestion"): point RLBF_SWF_DIR at a directory holding
// Parallel Workloads Archive files (e.g. SDSC-SP2-1998-4.2-cln.swf,
// HPC2N-2002-2.2-cln.swf) and every *.swf found there is replayed through
// the sharded pipeline and compared to the sequential replay. Real archives
// carry deeper backlogs than the synthetic surrogates, so the assertion is
// the documented aggregate tolerance (mean bsld within 1%, DESIGN.md §7)
// rather than byte-identity; the per-record mismatch count is logged so a
// drifting stitch is visible in the test output.
func TestSWFArchiveShardedReplay(t *testing.T) {
	dir := os.Getenv("RLBF_SWF_DIR")
	if dir == "" {
		t.Skip("RLBF_SWF_DIR not set; skipping real-archive sharded replay")
	}
	paths, err := filepath.Glob(filepath.Join(dir, "*.swf"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatalf("RLBF_SWF_DIR=%s contains no *.swf files", dir)
	}
	const jobs = 10000 // the paper's per-trace horizon (§4.1.2)
	for _, path := range paths {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			tr, err := trace.LoadSWFFile(path)
			if err != nil {
				t.Fatal(err)
			}
			tr = tr.Head(jobs)
			mk := func() backfill.Backfiller { return backfill.NewEASY(backfill.RequestTime{}) }
			seq, err := ReplayWith(tr, sched.FCFS{}, mk, Config{}, nil)
			if err != nil {
				t.Fatal(err)
			}
			sh, err := ReplayWith(tr, sched.FCFS{}, mk, Config{Window: 2500, Overlap: 1000, MinJobs: 1}, nil)
			if err != nil {
				t.Fatal(err)
			}
			bad, exact := recordsEqual(seq.Records, sh.Records)
			rel := 0.0
			if seq.Summary.MeanBSLD > 0 {
				rel = math.Abs(sh.Summary.MeanBSLD-seq.Summary.MeanBSLD) / seq.Summary.MeanBSLD
			}
			t.Logf("%s: %d jobs, %d procs: %d/%d records differ, seq bsld %.3f vs sharded %.3f (drift %.3f%%)",
				tr.Name, tr.Len(), tr.Procs, bad, len(seq.Records),
				seq.Summary.MeanBSLD, sh.Summary.MeanBSLD, rel*100)
			if !exact && rel > 0.01 {
				t.Fatalf("sharded replay of %s drifted %.2f%% from sequential (tolerance 1%%)", tr.Name, rel*100)
			}
		})
	}
}
