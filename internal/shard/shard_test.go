package shard

import (
	"math"
	"testing"

	"repro/internal/backfill"
	"repro/internal/metrics"
	"repro/internal/pool"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/trace"
)

// strategies is the heuristic matrix the differential pins (the same set the
// kernel differential covers, minus the RL agent which needs a trained
// model): nil, EASY, SJF-ordered EASY, conservative and slack backfilling.
var strategies = []struct {
	name string
	mk   func() backfill.Backfiller
}{
	{"none", func() backfill.Backfiller { return nil }},
	{"EASY", func() backfill.Backfiller { return backfill.NewEASY(backfill.RequestTime{}) }},
	{"EASY-SJF", func() backfill.Backfiller {
		return &backfill.EASY{Est: backfill.RequestTime{}, Order: backfill.SJFOrder}
	}},
	{"conservative", func() backfill.Backfiller { return backfill.NewConservative(backfill.RequestTime{}) }},
	{"slack", func() backfill.Backfiller { return backfill.NewSlack(backfill.RequestTime{}) }},
}

// moderateLoadTrace returns a workload whose backlog drains regularly, so a
// 512-job overlap spans a drain interval at every window boundary (the
// exactness precondition, see the package comment and DESIGN.md §7).
func moderateLoadTrace(n int) *trace.Trace {
	return trace.ScaleLoad(trace.SyntheticSDSCSP2(n, 1), 0.5)
}

func sequentialResult(t *testing.T, tr *trace.Trace, mk func() backfill.Backfiller) *sim.Result {
	t.Helper()
	res, err := Replay(tr, sim.Config{Policy: sched.FCFS{}, Backfiller: mk()}, Config{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func shardedResult(t *testing.T, tr *trace.Trace, mk func() backfill.Backfiller, cfg Config) *sim.Result {
	t.Helper()
	res, err := ReplayWith(tr, sched.FCFS{}, mk, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// recordsEqual compares two trace-ordered record streams field by field
// (jobs are compared by ID: the two replays may or may not share pointers).
func recordsEqual(a, b []metrics.Record) (int, bool) {
	if len(a) != len(b) {
		return -1, false
	}
	bad := 0
	for i := range a {
		if a[i].Job.ID != b[i].Job.ID || a[i].Start != b[i].Start || a[i].End != b[i].End {
			bad++
		}
	}
	return bad, bad == 0
}

// TestShardDifferential pins the tentpole guarantee, in the style of
// TestKernelDifferential: with sufficient overlap the sharded replay is
// byte-identical to the sequential replay — records AND summary — for every
// heuristic backfiller, on two synthetic archives.
func TestShardDifferential(t *testing.T) {
	cfg := Config{Window: 625, Overlap: 512, MinJobs: 1}
	traces := []*trace.Trace{
		trace.ScaleLoad(trace.SyntheticSDSCSP2(2500, 1), 0.5),
		trace.ScaleLoad(trace.SyntheticHPC2N(2500, 3), 0.5),
	}
	for _, tr := range traces {
		for _, s := range strategies {
			if testing.Short() && (s.name == "conservative" || s.name == "slack") && tr.Name == "SDSC-SP2" {
				continue // profile-based strategies dominate the runtime
			}
			seq := sequentialResult(t, tr, s.mk)
			sh := shardedResult(t, tr, s.mk, cfg)
			if bad, ok := recordsEqual(seq.Records, sh.Records); !ok {
				t.Errorf("%s/%s: %d of %d records differ between sequential and sharded replay",
					tr.Name, s.name, bad, len(seq.Records))
				continue
			}
			if seq.Summary != sh.Summary {
				t.Errorf("%s/%s: summaries differ: sequential %+v, sharded %+v",
					tr.Name, s.name, seq.Summary, sh.Summary)
			}
		}
	}
}

// TestShardDeterministicAcrossWorkers pins that the stitched output is
// byte-identical at any worker count: windows write disjoint index ranges,
// so completion order cannot matter.
func TestShardDeterministicAcrossWorkers(t *testing.T) {
	tr := moderateLoadTrace(2500)
	mk := strategies[1].mk // EASY
	cfg := Config{Window: 400, Overlap: 512, MinJobs: 1}
	var ref *sim.Result
	for _, w := range []int{1, 2, 8} {
		cfg.Workers = w
		res := shardedResult(t, tr, mk, cfg)
		if ref == nil {
			ref = res
			continue
		}
		if bad, ok := recordsEqual(ref.Records, res.Records); !ok {
			t.Fatalf("Workers=%d: %d records differ from Workers=1", w, bad)
		}
		if ref.Summary != res.Summary {
			t.Fatalf("Workers=%d: summary differs from Workers=1", w)
		}
	}
}

// TestShardUndersizedPool pins that windows degrade gracefully on a pool
// smaller than the window count: with one token the 7 windows run strictly
// sequentially through the shared pool, and the output is unchanged.
func TestShardUndersizedPool(t *testing.T) {
	tr := moderateLoadTrace(2500)
	mk := strategies[1].mk // EASY
	cfg := Config{Window: 400, Overlap: 512, MinJobs: 1, Workers: 8}
	want := shardedResult(t, tr, mk, cfg)
	res, err := ReplayWith(tr, sched.FCFS{}, mk, cfg, pool.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if bad, ok := recordsEqual(want.Records, res.Records); !ok {
		t.Fatalf("pool of 1 token: %d records differ", bad)
	}
}

// TestShardWindowShorterThanWarmup: a window narrower than the overlap means
// every replay range spans several neighbouring windows; the stitch must
// still be exact.
func TestShardWindowShorterThanWarmup(t *testing.T) {
	tr := moderateLoadTrace(1200)
	for _, s := range strategies[:3] { // none, EASY, EASY-SJF
		seq := sequentialResult(t, tr, s.mk)
		sh := shardedResult(t, tr, s.mk, Config{Window: 150, Overlap: 400, MinJobs: 1})
		if bad, ok := recordsEqual(seq.Records, sh.Records); !ok {
			t.Errorf("%s: %d records differ with Window=150 < Overlap=400", s.name, bad)
		}
	}
}

// TestShardJobSpanningWindowBoundary: a machine-wide job submitted in window
// 0 keeps window 1's jobs queued long past the boundary. With the overlap
// covering the long job the stitch is exact; with the long job outside the
// warm-up, window 1 must visibly diverge (this pins that the warm-up is what
// carries cross-boundary state, not an accident of the workload).
func TestShardJobSpanningWindowBoundary(t *testing.T) {
	tr := &trace.Trace{Name: "boundary", Procs: 4}
	tr.Jobs = append(tr.Jobs, &trace.Job{ID: 1, Submit: 0, Runtime: 1000, Request: 1000, Procs: 4})
	for i := 2; i <= 8; i++ {
		tr.Jobs = append(tr.Jobs, &trace.Job{ID: i, Submit: int64(i), Runtime: 5, Request: 10, Procs: 1})
	}
	mk := func() backfill.Backfiller { return backfill.NewEASY(backfill.RequestTime{}) }
	seq := sequentialResult(t, tr, mk)

	exact := shardedResult(t, tr, mk, Config{Window: 4, Overlap: 8, MinJobs: 1})
	if bad, ok := recordsEqual(seq.Records, exact.Records); !ok {
		t.Fatalf("overlap covering the spanning job: %d records differ", bad)
	}
	// Window 1's jobs must all have waited for the machine-wide job.
	for _, r := range exact.Records[4:] {
		if r.Start < 1000 {
			t.Fatalf("job %d started at %d, before the spanning job's completion at 1000", r.Job.ID, r.Start)
		}
	}

	short := shardedResult(t, tr, mk, Config{Window: 4, Overlap: 2, MinJobs: 1})
	if _, ok := recordsEqual(seq.Records, short.Records); ok {
		t.Fatal("overlap 2 cannot see the spanning job, yet the stitch matched; warm-up is not being exercised")
	}
}

// TestShardFinalPartialWindow: a trace that does not divide evenly leaves a
// short last window; every job must still be recorded exactly once.
func TestShardFinalPartialWindow(t *testing.T) {
	tr := moderateLoadTrace(1050)
	mk := strategies[1].mk // EASY
	seq := sequentialResult(t, tr, mk)
	sh := shardedResult(t, tr, mk, Config{Window: 500, Overlap: 400, MinJobs: 1})
	if len(sh.Records) != 1050 {
		t.Fatalf("%d records, want 1050", len(sh.Records))
	}
	for i, r := range sh.Records {
		if r.Job == nil {
			t.Fatalf("record %d never filled (job unstitched)", i)
		}
	}
	if bad, ok := recordsEqual(seq.Records, sh.Records); !ok {
		t.Fatalf("partial final window: %d records differ", bad)
	}
}

// TestShardEmptyTrace: a trace with no jobs replays to an empty result on
// every path.
func TestShardEmptyTrace(t *testing.T) {
	tr := &trace.Trace{Name: "empty", Procs: 8}
	for _, cfg := range []Config{{}, {Window: 100, Overlap: 50, MinJobs: 1}} {
		res, err := Replay(tr, sim.Config{Policy: sched.FCFS{}}, cfg, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Records) != 0 || res.Summary.Jobs != 0 {
			t.Fatalf("cfg %+v: non-empty result %+v from empty trace", cfg, res.Summary)
		}
	}
}

// TestShardAutoOff pins the activation threshold: sharding only engages at
// MinJobs (DefaultMinJobs when unset), so short tests and eval sequences
// replay exactly as before.
func TestShardAutoOff(t *testing.T) {
	cfg := Config{Window: 100}
	if cfg.Active(DefaultMinJobs - 1) {
		t.Fatal("sharding active below DefaultMinJobs")
	}
	if !cfg.Active(DefaultMinJobs) {
		t.Fatal("sharding inactive at DefaultMinJobs")
	}
	if (Config{}).Active(1 << 20) {
		t.Fatal("zero config must stay disabled at any length")
	}
	cfg = Config{Window: 100, MinJobs: 10}
	if !cfg.Active(10) || cfg.Active(9) {
		t.Fatal("explicit MinJobs threshold not honoured")
	}
}

// noClone hides the Fresh method of a cloneable backfiller, modelling a
// stateful strategy that cannot be duplicated across windows.
type noClone struct{ inner backfill.Backfiller }

func (n noClone) Name() string { return n.inner.Name() }
func (n noClone) Backfill(st backfill.State, head *trace.Job, queue []*trace.Job) {
	n.inner.Backfill(st, head, queue)
}

// TestShardNonCloneableFallsBack: a backfiller without Fresh must replay
// sequentially (sharing scratch between concurrent windows would race), and
// the result must equal the cloneable sequential replay.
func TestShardNonCloneableFallsBack(t *testing.T) {
	tr := moderateLoadTrace(1200)
	want := sequentialResult(t, tr, strategies[1].mk)
	res, err := Replay(tr, sim.Config{
		Policy:     sched.FCFS{},
		Backfiller: noClone{inner: backfill.NewEASY(backfill.RequestTime{})},
	}, Config{Window: 200, Overlap: 200, MinJobs: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if bad, ok := recordsEqual(want.Records, res.Records); !ok {
		t.Fatalf("non-cloneable fallback differs from sequential replay (%d records)", bad)
	}
}

// TestShardProbeFallsBack: probes observe the whole engine timeline, which a
// stitched replay cannot reproduce, so a configured probe forces the
// sequential path (and still returns trace-ordered records).
func TestShardProbeFallsBack(t *testing.T) {
	tr := moderateLoadTrace(1200)
	want := sequentialResult(t, tr, strategies[1].mk)
	probe := &sim.TimelineProbe{}
	res, err := Replay(tr, sim.Config{
		Policy:     sched.FCFS{},
		Backfiller: backfill.NewEASY(backfill.RequestTime{}),
		Probe:      probe,
	}, Config{Window: 200, Overlap: 200, MinJobs: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if bad, ok := recordsEqual(want.Records, res.Records); !ok {
		t.Fatalf("probe fallback differs from sequential replay (%d records)", bad)
	}
	if len(probe.Times) == 0 {
		t.Fatal("probe saw no samples on the fallback path")
	}
}

// TestShardInsufficientOverlapTolerance documents the graceful-degradation
// contract: on a near-saturated workload a 128-job overlap is NOT enough for
// byte-identity, but the stitched mean bounded slowdown stays within the
// documented 10% tolerance of the sequential value (DESIGN.md §7).
func TestShardInsufficientOverlapTolerance(t *testing.T) {
	tr := trace.ScaleLoad(trace.SyntheticSDSCSP2(2500, 1), 0.9)
	mk := strategies[1].mk // EASY
	seq := sequentialResult(t, tr, mk)
	sh := shardedResult(t, tr, mk, Config{Window: 625, Overlap: 128, MinJobs: 1})
	bad, ok := recordsEqual(seq.Records, sh.Records)
	if ok {
		t.Fatal("overlap 128 unexpectedly exact on the saturated trace; the tolerance case is not being exercised")
	}
	rel := math.Abs(sh.Summary.MeanBSLD-seq.Summary.MeanBSLD) / seq.Summary.MeanBSLD
	if rel > 0.10 {
		t.Fatalf("insufficient overlap drifted %.1f%% (%d bad records): sequential bsld %.3f, sharded %.3f",
			rel*100, bad, seq.Summary.MeanBSLD, sh.Summary.MeanBSLD)
	}
	t.Logf("insufficient overlap: %d/%d records differ, mean bsld drift %.2f%% (tolerance 10%%)",
		bad, len(seq.Records), rel*100)
}
