package shard

import (
	"testing"

	"repro/internal/trace"
)

// TestShardTimeWindowDifferential pins the wall-clock window mode against
// the sequential replay at two cut widths (a handful of wide windows and
// many narrow ones), for a no-backfill, an EASY and a profile-based
// strategy: with sufficient overlap the stitch must stay byte-identical
// regardless of where the time boundaries land relative to arrival bursts.
func TestShardTimeWindowDifferential(t *testing.T) {
	tr := moderateLoadTrace(2500)
	span := tr.Jobs[tr.Len()-1].Submit - tr.Jobs[0].Submit
	if span <= 0 {
		t.Fatalf("degenerate trace span %d", span)
	}
	for _, div := range []int64{4, 11} {
		secs := span/div + 1
		cfg := Config{WindowSeconds: secs, Overlap: 512, MinJobs: 1}
		if got := len(cfg.cutIndices(tr)) - 1; got < 2 {
			t.Fatalf("div=%d: only %d windows; widen the test trace", div, got)
		}
		for _, s := range []int{0, 1, 3} { // none, EASY, conservative
			st := strategies[s]
			seq := sequentialResult(t, tr, st.mk)
			sh := shardedResult(t, tr, st.mk, cfg)
			if bad, ok := recordsEqual(seq.Records, sh.Records); !ok {
				t.Errorf("%s at %ds windows: %d of %d records differ from sequential",
					st.name, secs, bad, len(seq.Records))
				continue
			}
			if seq.Summary != sh.Summary {
				t.Errorf("%s at %ds windows: summaries differ", st.name, secs)
			}
		}
	}
}

// TestShardTimeWindowCuts pins cutIndices directly: boundaries land where
// submit times cross multiples of WindowSeconds from the first submit,
// windows are contiguous and exhaustive, and empty time slices (arrival
// gaps) produce no empty windows.
func TestShardTimeWindowCuts(t *testing.T) {
	tr := &trace.Trace{Name: "gaps", Procs: 4}
	// Bursts at t=0..9, t=1000..1009, one straggler at t=5000: a 100s window
	// width leaves dozens of empty slices between bursts.
	id := 1
	for _, base := range []int64{0, 1000, 5000} {
		n := 10
		if base == 5000 {
			n = 1
		}
		for i := 0; i < n; i++ {
			tr.Jobs = append(tr.Jobs, &trace.Job{ID: id, Submit: base + int64(i), Runtime: 5, Request: 10, Procs: 1})
			id++
		}
	}
	cfg := Config{WindowSeconds: 100, Overlap: 4, MinJobs: 1}
	cuts := cfg.cutIndices(tr)
	want := []int{0, 10, 20, 21}
	if len(cuts) != len(want) {
		t.Fatalf("cuts = %v, want %v", cuts, want)
	}
	for i := range want {
		if cuts[i] != want[i] {
			t.Fatalf("cuts = %v, want %v", cuts, want)
		}
	}
	// And the stitched replay over those windows is exact.
	seq := sequentialResult(t, tr, strategies[1].mk)
	sh := shardedResult(t, tr, strategies[1].mk, cfg)
	if bad, ok := recordsEqual(seq.Records, sh.Records); !ok {
		t.Fatalf("gap trace: %d records differ", bad)
	}

	// Job-count mode must be unchanged by the new field.
	jc := Config{Window: 7, Overlap: 4, MinJobs: 1}
	cuts = jc.cutIndices(tr)
	if cuts[0] != 0 || cuts[len(cuts)-1] != tr.Len() || len(cuts) != 4 {
		t.Fatalf("job-count cuts = %v", cuts)
	}
}
