package shard

import (
	"testing"

	"repro/internal/trace"
)

// TestAutoFlanksSpanDrains pins the structural property auto-sizing relies
// on: on a regularly draining workload the pre-pass finds drain points, and
// every surviving auto-sized window's leading flank starts exactly at a
// drain (or 0) while its trailing flank ends at a drain (or the trace end)
// — the exact-by-construction geometry. Kept cuts must still tile the trace
// and every window's replay range must cover its proper region.
func TestAutoFlanksSpanDrains(t *testing.T) {
	tr := moderateLoadTrace(2500)
	dp := analyzeDrains(tr)
	if len(dp.drains) < 2 {
		t.Fatalf("pre-pass found %d drains on the moderate-load surrogate; the detector is broken or the trace is saturated", len(dp.drains))
	}
	isDrain := make(map[int]bool, len(dp.drains))
	for _, d := range dp.drains {
		isDrain[d] = true
	}
	sc := Config{Window: 400, MinJobs: 1} // Overlap 0 = auto
	cuts, flanks := autoFlanks(tr, sc, sc.cutIndices(tr))
	if cuts[0] != 0 || cuts[len(cuts)-1] != tr.Len() {
		t.Fatalf("kept cuts %v do not tile [0,%d)", cuts, tr.Len())
	}
	if len(cuts)-1 < 2 {
		t.Fatalf("auto-sizing merged the moderate-load trace down to %d windows; drains should be in reach", len(cuts)-1)
	}
	for w, fl := range flanks {
		if fl.lo > cuts[w] || fl.hi < cuts[w+1] {
			t.Fatalf("window %d: flanks [%d,%d) do not cover proper region [%d,%d)",
				w, fl.lo, fl.hi, cuts[w], cuts[w+1])
		}
		if fl.lo != 0 && !isDrain[fl.lo] {
			t.Errorf("window %d: leading flank %d is not a drain point", w, fl.lo)
		}
		if fl.hi != tr.Len() && !isDrain[fl.hi] {
			t.Errorf("window %d: trailing flank %d is not a drain point", w, fl.hi)
		}
		if w > 0 && fl.lo <= cuts[w-1] {
			t.Errorf("window %d: warm-up from %d reaches past the previous kept cut %d — the cut should have merged",
				w, fl.lo, cuts[w-1])
		}
	}
}

// TestAutoOverlapDifferential is the auto-sizing analogue of
// TestShardDifferential: with Overlap 0 the derived flanks must make the
// stitched replay byte-identical to sequential for every heuristic strategy
// on both surrogate archives — no hand-tuned overlap anywhere.
func TestAutoOverlapDifferential(t *testing.T) {
	cfg := Config{Window: 625, MinJobs: 1} // Overlap 0 = auto
	traces := []*trace.Trace{
		trace.ScaleLoad(trace.SyntheticSDSCSP2(2500, 1), 0.5),
		trace.ScaleLoad(trace.SyntheticHPC2N(2500, 3), 0.5),
	}
	for _, tr := range traces {
		for _, s := range strategies {
			if testing.Short() && (s.name == "conservative" || s.name == "slack") && tr.Name == "SDSC-SP2" {
				continue // profile-based strategies dominate the runtime
			}
			seq := sequentialResult(t, tr, s.mk)
			sh := shardedResult(t, tr, s.mk, cfg)
			if bad, ok := recordsEqual(seq.Records, sh.Records); !ok {
				t.Errorf("%s/%s: %d of %d records differ between sequential and auto-sized sharded replay",
					tr.Name, s.name, bad, len(seq.Records))
				continue
			}
			if seq.Summary != sh.Summary {
				t.Errorf("%s/%s: summaries differ: sequential %+v, auto-sized %+v",
					tr.Name, s.name, seq.Summary, sh.Summary)
			}
		}
	}
}

// TestAutoOverlapTimeWindows covers the wall-clock window geometry under
// auto-sizing: cuts come from WindowSeconds but flanks are still job-index
// drains, and the stitch stays byte-identical.
func TestAutoOverlapTimeWindows(t *testing.T) {
	tr := moderateLoadTrace(2500)
	mk := strategies[1].mk // EASY
	span := tr.Jobs[tr.Len()-1].Submit - tr.Jobs[0].Submit
	cfg := Config{WindowSeconds: span / 4, MinJobs: 1}
	seq := sequentialResult(t, tr, mk)
	sh := shardedResult(t, tr, mk, cfg)
	if bad, ok := recordsEqual(seq.Records, sh.Records); !ok {
		t.Fatalf("%d of %d records differ under auto-sized wall-clock windows", bad, len(seq.Records))
	}
	if seq.Summary != sh.Summary {
		t.Fatalf("summaries differ: sequential %+v, auto-sized %+v", seq.Summary, sh.Summary)
	}
}

// TestAutoOverlapSaturatedMerges documents the no-drain contract: a
// near-saturated workload has busy periods too long for drains to be in
// reach, so auto-sizing merges the unreachable cuts — degrading to fewer,
// larger windows instead of a drifting stitch — and the replay stays
// byte-identical to sequential (well inside the 10% tolerance the explicit
// Overlap override documents; see DESIGN.md §7/§11).
func TestAutoOverlapSaturatedMerges(t *testing.T) {
	tr := trace.ScaleLoad(trace.SyntheticSDSCSP2(2500, 1), 0.9)
	sc := Config{Window: 625, MinJobs: 1}
	proposed := sc.cutIndices(tr)
	cuts, _ := autoFlanks(tr, sc, proposed)
	if len(cuts) >= len(proposed) {
		t.Fatalf("saturated trace kept all %d proposed cuts; expected merges", len(proposed))
	}
	mk := strategies[1].mk // EASY
	seq := sequentialResult(t, tr, mk)
	sh := shardedResult(t, tr, mk, sc)
	if bad, ok := recordsEqual(seq.Records, sh.Records); !ok {
		t.Fatalf("%d of %d records differ on the saturated trace; merging should keep the stitch exact",
			bad, len(seq.Records))
	}
	if seq.Summary != sh.Summary {
		t.Fatalf("summaries differ: sequential %+v, auto-sized %+v", seq.Summary, sh.Summary)
	}
	t.Logf("saturated auto-sizing: %d of %d proposed windows survived, stitch exact",
		len(cuts)-1, len(proposed)-1)
}

// TestExplicitOverlapUnchanged pins that an explicit Overlap still produces
// the historical fixed symmetric flanks around every proposed cut — the
// knob remains an override and existing configurations replay exactly as
// before.
func TestExplicitOverlapUnchanged(t *testing.T) {
	tr := moderateLoadTrace(2500)
	sc := Config{Window: 625, Overlap: 512, MinJobs: 1}
	proposed := sc.cutIndices(tr)
	cuts, flanks := autoFlanks(tr, sc, proposed)
	if len(cuts) != len(proposed) {
		t.Fatalf("explicit overlap changed the cuts: %v -> %v", proposed, cuts)
	}
	for w, fl := range flanks {
		wantLo := max(cuts[w]-512, 0)
		wantHi := min(cuts[w+1]+512, tr.Len())
		if fl.lo != wantLo || fl.hi != wantHi {
			t.Fatalf("window %d: explicit overlap flanks [%d,%d), want [%d,%d)",
				w, fl.lo, fl.hi, wantLo, wantHi)
		}
	}
}
