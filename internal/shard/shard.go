// Package shard replays long traces as overlapping windows simulated in
// parallel and stitched back into a single result stream, so paper-scale
// end-to-end replays stop being a single-threaded bottleneck (ROADMAP:
// "Trace sharding for long replays"; cf. the split-window evaluation of
// Deep Back-Filling, arXiv:2401.09910).
//
// # Window/overlap model
//
// A trace of n jobs is cut into ceil(n/Window) consecutive windows of
// Window jobs — or, with Config.WindowSeconds, into windows owning the jobs
// submitted within consecutive fixed-width slices of simulated time (empty
// slices vanish), which keeps window sizing independent of arrival
// burstiness. Either way window w owns a contiguous index range
// [cuts[w], cuts[w+1]) — its "proper" region — but replays the wider range
//
//	[cuts[w] - Overlap, cuts[w+1] + Overlap)
//
// clamped to the trace. The leading Overlap jobs are the warm-up: replaying
// them from a cold cluster rebuilds the backlog (queue + running set) the
// sequential replay would have accumulated by the window start. The trailing
// Overlap jobs are the cool-down: they supply the future arrivals that
// compete with end-of-window jobs before those jobs start (a later arrival
// can backfill into a gap and change an earlier job's start, but only while
// that job is still waiting). Records are kept only for the proper region;
// both flanks are discarded.
//
// # Determinism and exactness
//
// Scheduling in this simulator is memoryless beyond the engine state:
// backfillers rebuild their profiles from the running set every round, so
// the state (clock, queue, running) plus the remaining arrivals fully
// determines the rest of the schedule. If at any instant inside the warm-up
// region the window replay's state coincides with the sequential replay's —
// in particular at any drain point, where both are empty — the two evolve
// identically from there on, and the window's proper records are exact.
// Batch traces drain regularly (arrival lulls), so with Overlap spanning a
// drain interval the stitched replay is byte-identical to the sequential
// one; the differential test pins this for the synthetic archives. With
// insufficient overlap the stitch degrades gracefully: records stay exact
// except for jobs whose wait straddles an unconverged boundary, and the
// aggregate error is bounded by the documented tolerance (DESIGN.md §7).
//
// Stitched records are returned in trace (submission) order — window w
// writes its proper records into the slots [w*Window, (w+1)*Window) of one
// shared slice — so the output is deterministic and independent of worker
// count and window completion order.
package shard

import (
	"fmt"
	"runtime"

	"repro/internal/backfill"
	"repro/internal/metrics"
	"repro/internal/pool"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/trace"
)

// DefaultMinJobs is the auto-off threshold: traces shorter than this replay
// sequentially even when sharding is configured, so short tests and eval
// sequences are untouched by the sharded path.
const DefaultMinJobs = 2048

// Config selects the sharded-replay geometry. The zero value disables
// sharding entirely.
type Config struct {
	// Window is the number of jobs each window owns. 0 disables job-count
	// windows.
	Window int
	// WindowSeconds, when > 0, cuts windows at fixed simulated-time
	// boundaries instead of fixed job counts: window k owns the jobs
	// submitted in [t0 + k*WindowSeconds, t0 + (k+1)*WindowSeconds), with t0
	// the trace's first submit time and empty windows skipped. Wall-clock
	// cuts keep window sizing independent of arrival burstiness on archives
	// with very uneven rates. Takes precedence over Window when both are
	// set. Overlap remains job-based either way — the warm-up/cool-down
	// exactness argument is about backlog depth, not elapsed time.
	WindowSeconds int64
	// Overlap is the number of jobs replayed on each flank of a window
	// (warm-up before, cool-down after) and discarded. Larger overlaps make
	// the stitch exact at the cost of duplicated simulation work.
	//
	// Overlap 0 (with sharding enabled) selects drain-aware auto-sizing: a
	// linear pre-pass over the trace detects drain points, pins every
	// window's flanks to them (exact by construction), and merges windows
	// whose cut cannot reach a drain economically — a workload that never
	// drains degrades to fewer, larger windows rather than a drifting
	// stitch, collapsing to the sequential replay in the limit. See
	// autosize.go. An explicit Overlap > 0 keeps the historical fixed
	// symmetric flanks and their documented tolerance.
	Overlap int
	// MinJobs is the auto-off threshold (DefaultMinJobs when 0): traces
	// with fewer jobs replay sequentially.
	MinJobs int
	// Workers bounds the number of concurrently simulated windows when
	// Replay creates its own pool (0 = GOMAXPROCS). Ignored when the caller
	// supplies a pool.
	Workers int
}

// Enabled reports whether sharding is configured at all.
func (c Config) Enabled() bool { return c.Window > 0 || c.WindowSeconds > 0 }

// Active reports whether a trace of n jobs would actually be sharded: the
// config must be enabled and the trace at least MinJobs long.
func (c Config) Active(n int) bool {
	m := c.MinJobs
	if m <= 0 {
		m = DefaultMinJobs
	}
	return c.Enabled() && n >= m
}

// WorkerCount resolves Workers (0 = GOMAXPROCS).
func (c Config) WorkerCount() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// Replay replays t under cfg, sharding it per sc when the trace is long
// enough. The backfiller must be nil or backfill.Cloneable to shard (each
// window needs private scratch state); a non-cloneable backfiller, a
// configured Probe, or a trace below the threshold all fall back to a
// sequential replay. Windows run as weight-1 cells on p, or on a private
// pool of sc.WorkerCount() tokens when p is nil.
//
// Records are always returned in trace (submission) order — including on
// the sequential fallback — and the Summary is computed over that order, so
// Replay's output for a given (trace, config) is identical whether or not
// sharding engaged, modulo the overlap-convergence argument above.
func Replay(t *trace.Trace, cfg sim.Config, sc Config, p *pool.Pool) (*sim.Result, error) {
	if cfg.Probe != nil {
		return sequential(t, cfg)
	}
	mkBF := func() backfill.Backfiller { return cfg.Backfiller }
	if cfg.Backfiller != nil {
		c, ok := cfg.Backfiller.(backfill.Cloneable)
		if !ok {
			return sequential(t, cfg)
		}
		mkBF = func() backfill.Backfiller { return c.Fresh() }
	}
	return ReplayScenario(t, cfg.Policy, cfg.Scenario, mkBF, sc, p)
}

// ReplayWith is Replay for callers that construct backfillers themselves
// (e.g. core.EvaluateAgent's greedy clones): mkBF is invoked once per
// window — or once total on the sequential path — and each returned
// instance is used by exactly one engine.
func ReplayWith(t *trace.Trace, policy sched.Policy, mkBF func() backfill.Backfiller, sc Config, p *pool.Pool) (*sim.Result, error) {
	return ReplayScenario(t, policy, sched.Scenario{}, mkBF, sc, p)
}

// ReplayScenario is ReplayWith with a scheduling scenario threaded into every
// window's engine. Scenario state regenerates from (clock, queue, running) —
// starvation wake events are re-queued when jobs re-enter a window's queue —
// so the warm-up convergence argument is unchanged: coinciding states still
// evolve identically.
func ReplayScenario(t *trace.Trace, policy sched.Policy, scn sched.Scenario, mkBF func() backfill.Backfiller, sc Config, p *pool.Pool) (*sim.Result, error) {
	n := t.Len()
	if !sc.Active(n) {
		return sequential(t, sim.Config{Policy: policy, Scenario: scn, Backfiller: mkBF()})
	}
	cuts := sc.cutIndices(t)
	if len(cuts) <= 2 {
		return sequential(t, sim.Config{Policy: policy, Scenario: scn, Backfiller: mkBF()})
	}
	// Auto-sizing may merge windows whose cut cannot reach a drain; a fully
	// undrainable trace collapses to one window, i.e. the sequential replay.
	cuts, flanks := autoFlanks(t, sc, cuts)
	numWin := len(cuts) - 1
	if numWin <= 1 {
		return sequential(t, sim.Config{Policy: policy, Scenario: scn, Backfiller: mkBF()})
	}
	index := jobIndex(t)
	records := make([]metrics.Record, n)
	errs := make([]error, numWin)
	if p == nil {
		p = pool.New(sc.WorkerCount())
	}
	g := p.NewGroup()
	for w := 0; w < numWin; w++ {
		w := w
		g.Go(1, func() error {
			errs[w] = replayWindow(t, sim.Config{Policy: policy, Scenario: scn, Backfiller: mkBF()},
				cuts[w], cuts[w+1], flanks[w], index, records)
			return nil // indexed slots give deterministic error selection
		})
	}
	_ = g.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return &sim.Result{Records: records, Summary: metrics.Summarize(records, t.Procs)}, nil
}

// cutIndices returns the proper-region boundaries in job-index space:
// cuts[w] .. cuts[w+1] is window w's owned range, covering [0, n) exactly.
// Job-count mode cuts every Window jobs; wall-clock mode cuts where a job's
// submit time crosses a WindowSeconds boundary (traces are submit-sorted, so
// time windows are contiguous index ranges; empty windows vanish).
func (c Config) cutIndices(t *trace.Trace) []int {
	n := t.Len()
	if c.WindowSeconds > 0 {
		cuts := make([]int, 1, 16)
		t0 := t.Jobs[0].Submit
		w := c.WindowSeconds
		cur := int64(0) // window id of the previous job
		for i := 1; i < n; i++ {
			if id := (t.Jobs[i].Submit - t0) / w; id != cur {
				cuts = append(cuts, i)
				cur = id
			}
		}
		return append(cuts, n)
	}
	cuts := make([]int, 0, (n+c.Window-1)/c.Window+1)
	for i := 0; i < n; i += c.Window {
		cuts = append(cuts, i)
	}
	return append(cuts, n)
}

// replayWindow simulates one window's extended range [fl.lo, fl.hi) on a
// fresh engine and writes the proper region [propStart, propEnd)'s records
// into their trace-order slots of out. The replay stops as soon as every
// owned job has started — a record's End is fixed at start time — so the
// drain of the cool-down region is never simulated.
func replayWindow(t *trace.Trace, cfg sim.Config, propStart, propEnd int, fl flank,
	index map[*trace.Job]int, out []metrics.Record) error {
	lo, hi := fl.lo, fl.hi
	// The sub-trace shares job pointers with t: engines never mutate jobs,
	// so concurrent windows can read them race-free.
	sub := &trace.Trace{Name: t.Name, Procs: t.Procs, Mem: t.Mem, Jobs: t.Jobs[lo:hi]}
	e, err := sim.NewEngine(sub, cfg)
	if err != nil {
		return err
	}
	need := propEnd - propStart
	seen, done := 0, 0
	for seen < need {
		if !e.Step() {
			return fmt.Errorf("shard: window [%d,%d) drained with %d of %d owned jobs unstarted",
				propStart, propEnd, need-seen, need)
		}
		recs := e.Records()
		for ; done < len(recs); done++ {
			r := recs[done]
			if i := index[r.Job]; i >= propStart && i < propEnd {
				out[i] = r
				seen++
			}
		}
	}
	return nil
}

// sequential is the fallback path: a plain engine replay whose records are
// then reordered into trace order so the Replay contract holds either way.
func sequential(t *trace.Trace, cfg sim.Config) (*sim.Result, error) {
	res, err := sim.Run(t, cfg)
	if err != nil {
		return nil, err
	}
	index := jobIndex(t)
	ordered := make([]metrics.Record, t.Len())
	for _, r := range res.Records {
		i, ok := index[r.Job]
		if !ok {
			return nil, fmt.Errorf("shard: record for job %d not in trace", r.Job.ID)
		}
		ordered[i] = r
	}
	return &sim.Result{Records: ordered, Summary: metrics.Summarize(ordered, t.Procs)}, nil
}

// jobIndex maps each job pointer to its position in the trace. Built once
// per replay and read-only afterwards, so windows may share it.
func jobIndex(t *trace.Trace) map[*trace.Job]int {
	m := make(map[*trace.Job]int, t.Len())
	for i, j := range t.Jobs {
		m[j] = i
	}
	return m
}
