package shard

import (
	"repro/internal/trace"
)

// Drain-aware window auto-sizing (DESIGN.md §11).
//
// The warm-up exactness argument needs the flank to contain an instant where
// the window replay's state coincides with the sequential replay's; the one
// state reachable from a cold start is the empty system, so the flank must
// span a drain point — an arrival that finds no job running or queued. A
// fixed Config.Overlap is a guess at how far back such a point lies: too
// small and the stitch drifts, too large and every window re-simulates jobs
// it did not need. Auto-sizing replaces the guess with a pre-pass over the
// submit-sorted trace that detects drain points directly and derives the
// window geometry from them.
//
// Drain detection replays the trace through two O(n log n) machine models —
// no engine, no backfiller, just a completion heap and a queue:
//
//   - FCFS head-blocking: jobs start strictly in submission order, the head
//     waits for its processors. The least work-conserving discipline in the
//     strategy matrix; its busy periods are the longest.
//   - Greedy fill: any queued job starts the moment its processors are free.
//     The most aggressive discipline; its busy periods are the shortest but
//     end at different instants (running long jobs earlier can push a
//     completion past a gap the FCFS model drains in).
//
// An index where BOTH models find running+queued at zero is declared a
// drain. Every real strategy (FCFS with or without EASY/conservative/slack
// backfilling) interleaves these two extremes, so an arrival that finds both
// models empty almost surely finds the real engine empty too. "Almost": a
// backfiller may keep a job running across a gap both models drain in, so
// this is a well-grounded heuristic, not a proof — the property tests in
// autosize_test.go pin byte-identity empirically on the surrogate archives.
//
// Auto mode is exact by construction, never tolerance-based: each window's
// leading flank starts at a drain (warm-up from a coinciding empty state)
// and its trailing flank ends at a drain or the trace end (every job before
// a drain has completed before any job after it arrives, so later arrivals
// cannot perturb owned records). When a proposed cut cannot reach a drain
// economically — the latest drain at or before it lies at or before the
// previous kept cut, so warming up would re-replay at least the entire
// previous window — the cut is dropped and its window merges into the
// previous one. A workload that never drains (a saturated archive, or a
// multi-thousand-node composition that is never simultaneously empty over a
// million jobs) therefore degrades to fewer, larger windows — in the limit
// one, which is the sequential replay itself — instead of emitting silently
// drifting records. Fixed-tolerance sharding remains available as the
// explicit Overlap > 0 override (DESIGN.md §7).

// flank is one window's resolved replay range endpoints in job-index space.
type flank struct {
	lo, hi int
}

// drainProfile is the result of the auto-sizing pre-pass: the job indices
// whose arrival finds both machine models empty, sorted ascending. Index 0
// always qualifies — a replay from a cold start is by definition at a drain.
type drainProfile struct {
	drains []int
}

// analyzeDrains runs the pre-pass once per replay.
func analyzeDrains(t *trace.Trace) drainProfile {
	fcfsDrains := modelDrains(t, false)
	greedyDrains := modelDrains(t, true)
	inGreedy := make(map[int]struct{}, len(greedyDrains))
	for _, d := range greedyDrains {
		inGreedy[d] = struct{}{}
	}
	drains := []int{0}
	for _, d := range fcfsDrains {
		if _, ok := inGreedy[d]; ok && d != 0 {
			drains = append(drains, d)
		}
	}
	return drainProfile{drains: drains}
}

// runEntry is one running job in the model: its completion time and width.
type runEntry struct {
	end   int64
	procs int
}

// runHeap is a minimal binary min-heap on completion time.
type runHeap []runEntry

func (h *runHeap) push(e runEntry) {
	*h = append(*h, e)
	i := len(*h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if (*h)[p].end <= (*h)[i].end {
			break
		}
		(*h)[p], (*h)[i] = (*h)[i], (*h)[p]
		i = p
	}
}

func (h *runHeap) pop() runEntry {
	old := *h
	top := old[0]
	n := len(old) - 1
	old[0] = old[n]
	*h = old[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		s := i
		if l < n && old[l].end < old[s].end {
			s = l
		}
		if r < n && old[r].end < old[s].end {
			s = r
		}
		if s == i {
			break
		}
		old[i], old[s] = old[s], old[i]
		i = s
	}
	return top
}

// queued is one waiting job in the model.
type queued struct {
	run   int64
	procs int
}

// modelDrains replays the trace through one discipline model and returns the
// indices whose arrival finds the model empty. greedy selects the fill
// discipline; false is FCFS head-blocking.
func modelDrains(t *trace.Trace, greedy bool) (drains []int) {
	m := t.Procs
	if m <= 0 {
		m = 1
	}
	free := m
	var running runHeap
	var queue []queued
	head := 0 // FIFO head into queue; compacted when it outgrows the tail

	// startQueued starts every queued job the discipline allows at time now.
	startQueued := func(now int64) {
		if greedy {
			for changed := true; changed; {
				changed = false
				for i := head; i < len(queue); i++ {
					if queue[i].procs <= free {
						free -= queue[i].procs
						running.push(runEntry{end: now + queue[i].run, procs: queue[i].procs})
						queue = append(queue[:i], queue[i+1:]...)
						changed = true
						break
					}
				}
			}
		} else {
			for head < len(queue) && queue[head].procs <= free {
				free -= queue[head].procs
				running.push(runEntry{end: now + queue[head].run, procs: queue[head].procs})
				head++
			}
			if head > 64 && head*2 > len(queue) {
				queue = append(queue[:0], queue[head:]...)
				head = 0
			}
		}
	}

	for i, j := range t.Jobs {
		s := j.Submit
		// Retire completions up to the arrival, starting queued jobs at each
		// completion instant.
		for len(running) > 0 && running[0].end <= s {
			e := running[0].end
			for len(running) > 0 && running[0].end == e {
				free += running.pop().procs
			}
			startQueued(e)
		}
		if i > 0 && len(running)+(len(queue)-head) == 0 {
			drains = append(drains, i)
		}
		// Arrival: effective occupancy is the engine's (runtime capped at the
		// request — schedulers kill overruns), width clamped to the machine.
		r := j.Runtime
		if j.Request > 0 && r > j.Request {
			r = j.Request
		}
		if r < 0 {
			r = 0
		}
		p := j.Procs
		if p > m {
			p = m
		}
		if p < 1 {
			p = 1
		}
		queue = append(queue, queued{run: r, procs: p})
		startQueued(s)
	}
	return drains
}

// autoFlanks resolves the final window geometry: the kept proper-region cuts
// and each surviving window's replay range. Explicit overlap keeps the
// historical symmetric flanks around every proposed cut; overlap 0 with
// sharding enabled means auto:
//
//   - A proposed cut survives only if the latest drain at or before it lies
//     strictly after the previous kept cut; otherwise warming up from that
//     drain would re-replay at least the entire previous window, so the cut
//     is dropped and the windows merge. Surviving warm-ups are therefore
//     each shorter than the window before them (total duplicated work below
//     2x sequential, and in practice a tiny fraction — drains are dense on
//     archives light enough to shard exactly).
//   - A surviving window's leading flank is that drain; its trailing flank
//     is the earliest drain at or past the next kept cut, or the trace end.
//     The trailing reach costs little: replayWindow stops as soon as every
//     owned job has started, which on a draining workload happens well
//     before the flank is exhausted.
//
// The returned cuts always start at 0 and end at t.Len(); callers fall back
// to a sequential replay when only one window survives.
func autoFlanks(t *trace.Trace, sc Config, cuts []int) ([]int, []flank) {
	n := t.Len()
	if sc.Overlap > 0 {
		numWin := len(cuts) - 1
		fl := make([]flank, numWin)
		for w := 0; w < numWin; w++ {
			fl[w] = flank{lo: max(cuts[w]-sc.Overlap, 0), hi: min(cuts[w+1]+sc.Overlap, n)}
		}
		return cuts, fl
	}
	dp := analyzeDrains(t)
	kept := []int{0}
	los := []int{0}
	for _, c := range cuts[1 : len(cuts)-1] {
		d := latestDrainAtOrBefore(dp.drains, c)
		if d > kept[len(kept)-1] {
			kept = append(kept, c)
			los = append(los, d)
		}
	}
	kept = append(kept, n)
	fl := make([]flank, len(kept)-1)
	for w := range fl {
		fl[w] = flank{lo: los[w], hi: earliestDrainAtOrAfter(dp.drains, kept[w+1], n)}
	}
	return kept, fl
}

// latestDrainAtOrBefore returns the largest drain <= c. drains is sorted and
// starts with 0, so the result is always defined.
func latestDrainAtOrBefore(drains []int, c int) int {
	d := 0
	for lo, hi := 0, len(drains); lo < hi; {
		mid := int(uint(lo+hi) >> 1)
		if drains[mid] <= c {
			d = drains[mid]
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return d
}

// earliestDrainAtOrAfter returns the smallest drain >= c, or n when no drain
// follows c (the window then replays through the trace end).
func earliestDrainAtOrAfter(drains []int, c, n int) int {
	if c >= n {
		return n
	}
	d := n
	for lo, hi := 0, len(drains); lo < hi; {
		mid := int(uint(lo+hi) >> 1)
		if drains[mid] >= c {
			d = drains[mid]
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return d
}
