// Agent sharding lives in an external test package: core imports shard (for
// EvalConfig.Shard), so an in-package test importing core would cycle.
package shard_test

import (
	"testing"

	"repro/internal/backfill"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/sched"
	"repro/internal/shard"
	"repro/internal/sim"
	"repro/internal/trace"
)

// trainTinyAgent trains the RL backfiller for two quick epochs on a small
// synthetic trace — enough PPO updates that the greedy policy is a real
// (non-initialisation) network, cheap enough for the unit suite.
func trainTinyAgent(t *testing.T) *core.Agent {
	t.Helper()
	cfg := core.QuickTrainConfig()
	cfg.Obs.MaxObs = 16
	cfg.TrajPerEpoch = 4
	cfg.EpisodeLen = 64
	cfg.PPO.PiIters = 3
	cfg.PPO.VIters = 3
	cfg.Seed = 23
	cfg.Workers = 2
	trainer, err := core.NewTrainer(trace.SyntheticSDSCSP2(400, 4), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := trainer.Train(2, nil); err != nil {
		t.Fatal(err)
	}
	return trainer.Agent()
}

func agentRecordsEqual(a, b []metrics.Record) (int, bool) {
	if len(a) != len(b) {
		return -1, false
	}
	bad := 0
	for i := range a {
		if a[i].Job.ID != b[i].Job.ID || a[i].Start != b[i].Start || a[i].End != b[i].End {
			bad++
		}
	}
	return bad, bad == 0
}

// TestShardDifferentialAgent extends TestShardDifferential's guarantee to
// the RL-agent replay path, end to end: a tiny in-test-trained greedy agent
// (cloned per window via core.Agent.Fresh) replayed through overlapping
// windows is byte-identical — records and summary — to its sequential
// replay. This is the ROADMAP's "shard the agent replay path" item: the
// greedy agent is deterministic per state, so the warm-up flank rebuilds
// exactly the backlog the sequential replay saw.
func TestShardDifferentialAgent(t *testing.T) {
	agent := trainTinyAgent(t)
	tr := trace.ScaleLoad(trace.SyntheticSDSCSP2(1500, 1), 0.5)
	mk := func() backfill.Backfiller { return agent.Fresh() }

	seq, err := shard.Replay(tr, sim.Config{Policy: sched.FCFS{}, Backfiller: mk()}, shard.Config{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	sh, err := shard.ReplayWith(tr, sched.FCFS{}, mk, shard.Config{Window: 375, Overlap: 512, MinJobs: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if bad, ok := agentRecordsEqual(seq.Records, sh.Records); !ok {
		t.Fatalf("RLBF: %d of %d records differ between sequential and sharded replay",
			bad, len(seq.Records))
	}
	if seq.Summary != sh.Summary {
		t.Fatalf("RLBF: summaries differ: sequential %+v, sharded %+v", seq.Summary, sh.Summary)
	}
}

// TestShardAgentDeterministicAcrossWorkers pins that the agent windows — each
// holding its own Fresh clone and batched scratch — stitch identically at any
// worker count.
func TestShardAgentDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("agent training skipped in -short mode")
	}
	agent := trainTinyAgent(t)
	tr := trace.ScaleLoad(trace.SyntheticSDSCSP2(1200, 1), 0.5)
	mk := func() backfill.Backfiller { return agent.Fresh() }
	cfg := shard.Config{Window: 300, Overlap: 512, MinJobs: 1}
	var ref *sim.Result
	for _, w := range []int{1, 4} {
		cfg.Workers = w
		res, err := shard.ReplayWith(tr, sched.FCFS{}, mk, cfg, nil)
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = res
			continue
		}
		if bad, ok := agentRecordsEqual(ref.Records, res.Records); !ok {
			t.Fatalf("Workers=%d: %d records differ from Workers=1", w, bad)
		}
		if ref.Summary != res.Summary {
			t.Fatalf("Workers=%d: summary differs from Workers=1", w)
		}
	}
}
