package experiments

import (
	"fmt"
	"io"

	"repro/internal/backfill"
	"repro/internal/pool"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/trace"
)

// LoadSweep is an extension experiment (DESIGN.md §5): how the heuristic
// backfilling strategies compare as the offered load scales. It compresses
// the SDSC-SP2 surrogate's arrivals by factors 0.5-2.0 and reports bsld for
// no backfilling, EASY, SJF-ordered EASY, conservative and slack-based
// backfilling under FCFS. Every (factor, strategy) point is a cell on the
// worker pool — weight 1 normally, or the shard worker count when
// Scale.Shard splits long replays into parallel windows — each scaling the
// trace and constructing its backfiller privately. The crossover structure (aggressive EASY gaining on
// conservative as load rises) is the classic result this checks.
func LoadSweep(sc Scale, p *pool.Pool, _ io.Writer) (*Table, error) {
	p = sc.cellPool(p)
	base := trace.SyntheticSDSCSP2(sc.TraceJobs, sc.Seed+1)
	est := backfill.RequestTime{}
	strategies := []struct {
		name string
		mk   func() backfill.Backfiller
	}{
		{"none", func() backfill.Backfiller { return nil }},
		{"EASY", func() backfill.Backfiller { return backfill.NewEASY(est) }},
		{"EASY-SJF", func() backfill.Backfiller { return &backfill.EASY{Est: est, Order: backfill.SJFOrder} }},
		{"conservative", func() backfill.Backfiller { return backfill.NewConservative(est) }},
		{"slack-0.5", func() backfill.Backfiller { return backfill.NewSlack(est) }},
	}
	factors := []float64{0.5, 0.75, 1.0, 1.5, 2.0}

	header := []string{"load factor"}
	for _, s := range strategies {
		header = append(header, s.name)
	}
	tbl := &Table{
		Title:  "Load sweep: bsld vs arrival compression (SDSC-SP2, FCFS base)",
		Header: header,
		Notes: []string{
			fmt.Sprintf("scale=%s jobs=%d seed=%d", sc.Name, sc.TraceJobs, sc.Seed),
			"factor f divides inter-arrival gaps by f (f>1 = more load)",
		},
	}

	weight := sc.shardWeight(p, base.Len())
	grid, err := runGridWeighted(p, weight, len(factors), len(strategies), func(fi, si int) (string, error) {
		scaled := trace.ScaleLoad(base, factors[fi]) // returns a private clone
		res, err := replayShardable(scaled, sim.Config{Policy: sched.FCFS{}, Backfiller: strategies[si].mk()}, sc.Shard, weight)
		if err != nil {
			return "", err
		}
		return f2(res.Summary.MeanBSLD), nil
	})
	if err != nil {
		return nil, err
	}
	for fi, f := range factors {
		tbl.Rows = append(tbl.Rows, append([]string{fmt.Sprintf("%.2f", f)}, grid[fi]...))
	}
	return tbl, nil
}
