package experiments

import (
	"fmt"
	"io"

	"repro/internal/backfill"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/trace"
)

// LoadSweep is an extension experiment (DESIGN.md §5): how the heuristic
// backfilling strategies compare as the offered load scales. It compresses
// the SDSC-SP2 surrogate's arrivals by factors 0.5-2.0 and reports bsld for
// no backfilling, EASY, SJF-ordered EASY, conservative and slack-based
// backfilling under FCFS. The crossover structure (aggressive EASY gaining
// on conservative as load rises) is the classic result this checks.
func LoadSweep(sc Scale, _ io.Writer) (*Table, error) {
	base := trace.SyntheticSDSCSP2(sc.TraceJobs, sc.Seed+1)
	est := backfill.RequestTime{}
	strategies := []struct {
		name string
		bf   backfill.Backfiller
	}{
		{"none", nil},
		{"EASY", backfill.NewEASY(est)},
		{"EASY-SJF", &backfill.EASY{Est: est, Order: backfill.SJFOrder}},
		{"conservative", backfill.NewConservative(est)},
		{"slack-0.5", backfill.NewSlack(est)},
	}
	header := []string{"load factor"}
	for _, s := range strategies {
		header = append(header, s.name)
	}
	tbl := &Table{
		Title:  "Load sweep: bsld vs arrival compression (SDSC-SP2, FCFS base)",
		Header: header,
		Notes: []string{
			fmt.Sprintf("scale=%s jobs=%d seed=%d", sc.Name, sc.TraceJobs, sc.Seed),
			"factor f divides inter-arrival gaps by f (f>1 = more load)",
		},
	}
	for _, f := range []float64{0.5, 0.75, 1.0, 1.5, 2.0} {
		scaled := trace.ScaleLoad(base, f)
		row := []string{fmt.Sprintf("%.2f", f)}
		for _, s := range strategies {
			res, err := sim.Run(scaled.Clone(), sim.Config{Policy: sched.FCFS{}, Backfiller: s.bf})
			if err != nil {
				return nil, err
			}
			row = append(row, f2(res.Summary.MeanBSLD))
		}
		tbl.Rows = append(tbl.Rows, row)
	}
	return tbl, nil
}
