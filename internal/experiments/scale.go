// Package experiments regenerates every table and figure of the paper's
// evaluation (§4): Figure 1's prediction-accuracy sweep, Figure 4's training
// curves, Table 2's workload characteristics, Table 4's scheduling
// performance and Table 5's cross-trace generality matrix, plus the
// ablations called out in DESIGN.md.
package experiments

import (
	"runtime"

	"repro/internal/backfill"
	"repro/internal/core"
	"repro/internal/ppo"
	"repro/internal/sched"
	"repro/internal/shard"
)

// Scale bundles the knobs that trade fidelity for wall-clock time. The
// simulator, agent and PPO code paths are identical at every scale; only the
// iteration counts change (see DESIGN.md's substitution table).
type Scale struct {
	Name string
	// TraceJobs is the number of jobs generated per workload (paper: the
	// first 10K jobs of each trace, §4.1.2).
	TraceJobs int
	// Epochs of PPO training per model.
	Epochs int
	// TrajPerEpoch and EpisodeLen follow §4.1.1 (paper: 100 x 256).
	TrajPerEpoch int
	EpisodeLen   int
	// MaxObs is MAX_OBSV_SIZE (paper: 128).
	MaxObs int
	// PiIters/VIters are the PPO update iterations (paper: 80).
	PiIters, VIters int
	// Eval is the paper's test protocol (10 sequences of 1024 jobs, §4.3).
	Eval core.EvalConfig
	// Seed roots all randomness.
	Seed uint64
	// Workers bounds parallelism (0 = GOMAXPROCS).
	Workers int
	// Shard, when enabled, replays whole-trace cells (conservative,
	// loadsweep) and — via RunMany propagating it into Eval.Shard — the
	// eval-protocol sequences as overlapping windows stitched in parallel
	// (internal/shard). Off by default at every named scale; rlbf-exp's
	// -shard-window/-shard-overlap flags switch it on.
	Shard shard.Config
	// Scn layers the scheduling scenario (priority tiers, starvation bound)
	// onto every cell: RunMany propagates it into Eval.Scn and trainConfig
	// threads it into training rollouts. Zero (the default at every named
	// scale) reproduces the paper's classic semantics; the "scenario"
	// experiment enables it locally on enriched workloads.
	Scn sched.Scenario
	// PerPolicyModels trains a separate RL model per base policy (the
	// paper's Table 4/5 protocol). When false, models are trained with FCFS
	// only and transferred to the other base policies — the generality the
	// paper itself reports ("the trained RL agent based on the FCFS
	// scheduler outperforms other combinations", §1) — halving training cost
	// at the reduced scales.
	PerPolicyModels bool
}

// PaperScale reproduces the paper's experimental dimensions. Expect hours of
// CPU time for the RL tables.
func PaperScale() Scale {
	return Scale{
		Name:            "paper",
		TraceJobs:       10000,
		Epochs:          60,
		TrajPerEpoch:    100,
		EpisodeLen:      256,
		MaxObs:          128,
		PiIters:         80,
		VIters:          80,
		Eval:            core.DefaultEvalConfig(),
		Seed:            2023,
		PerPolicyModels: true,
	}
}

// QuickScale runs the identical experiments at a laptop-feasible size
// (roughly an hour of CPU for the full RL table set); it is calibrated so
// the trained agents reach EASY parity or better on the SDSC-SP2 surrogate
// (see EXPERIMENTS.md).
func QuickScale() Scale {
	return Scale{
		Name:         "quick",
		TraceJobs:    6000,
		Epochs:       35,
		TrajPerEpoch: 64,
		EpisodeLen:   256,
		MaxObs:       64,
		PiIters:      40,
		VIters:       40,
		Eval:         core.EvalConfig{Sequences: 5, SeqLen: 1024, Seed: 2023},
		Seed:         2023,
	}
}

// TinyScale is for tests and smoke runs (seconds).
func TinyScale() Scale {
	return Scale{
		Name:         "tiny",
		TraceJobs:    700,
		Epochs:       1,
		TrajPerEpoch: 4,
		EpisodeLen:   64,
		MaxObs:       16,
		PiIters:      2,
		VIters:       2,
		Eval:         core.EvalConfig{Sequences: 2, SeqLen: 128, Seed: 2023},
		Seed:         2023,
	}
}

// ByName returns a named scale (paper, quick, tiny).
func ByName(name string) (Scale, bool) {
	switch name {
	case "paper":
		return PaperScale(), true
	case "quick":
		return QuickScale(), true
	case "tiny":
		return TinyScale(), true
	}
	return Scale{}, false
}

func (s Scale) workers() int {
	if s.Workers > 0 {
		return s.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// trainConfig assembles the core.TrainConfig for one model.
func (s Scale) trainConfig(policy sched.Policy, est backfill.Estimator) core.TrainConfig {
	cfg := core.DefaultTrainConfig()
	cfg.BasePolicy = policy
	cfg.Est = est
	cfg.Obs.MaxObs = s.MaxObs
	cfg.TrajPerEpoch = s.TrajPerEpoch
	cfg.EpisodeLen = s.EpisodeLen
	cfg.Seed = s.Seed
	cfg.Workers = s.workers()
	cfg.PPO = ppo.DefaultConfig()
	cfg.PPO.PiIters = s.PiIters
	cfg.PPO.VIters = s.VIters
	cfg.PPO.MiniBatch = 2048
	cfg.Scn = s.Scn
	return cfg
}
