package experiments

import (
	"fmt"
	"io"

	"repro/internal/backfill"
	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/trace"
)

// trainVariant trains one model on the SDSC-SP2 surrogate with a config
// mutation and evaluates it (FCFS base).
func trainVariant(sc Scale, mutate func(*core.TrainConfig), log io.Writer) (float64, error) {
	tr := trace.SyntheticSDSCSP2(sc.TraceJobs, sc.Seed+1)
	cfg := sc.trainConfig(sched.FCFS{}, backfill.RequestTime{})
	mutate(&cfg)
	trainer, err := core.NewTrainer(tr, cfg)
	if err != nil {
		return 0, err
	}
	if _, err := trainer.Train(sc.Epochs, nil); err != nil {
		return 0, err
	}
	mean, _, err := core.EvaluateAgent(trainer.Agent(), tr, sched.FCFS{}, sc.Eval)
	return mean, err
}

// AblationSkip compares training with and without the learned skip action
// (DESIGN.md: the paper leaves the "stop backfilling" mechanism implicit).
func AblationSkip(sc Scale, log io.Writer) (*Table, error) {
	tbl := &Table{
		Title:  "Ablation: skip action (SDSC-SP2, FCFS base)",
		Header: []string{"variant", "bsld"},
		Notes:  []string{fmt.Sprintf("scale=%s", sc.Name)},
	}
	for _, skip := range []bool{true, false} {
		v, err := trainVariant(sc, func(c *core.TrainConfig) { c.Obs.SkipAction = skip }, log)
		if err != nil {
			return nil, err
		}
		tbl.AddRow(fmt.Sprintf("skip=%v", skip), f2(v))
	}
	return tbl, nil
}

// AblationPenalty sweeps the reservation-violation penalty (§3.4 calls for a
// "large negative reward"; how large matters).
func AblationPenalty(sc Scale, log io.Writer) (*Table, error) {
	tbl := &Table{
		Title:  "Ablation: violation penalty (SDSC-SP2, FCFS base)",
		Header: []string{"penalty", "bsld"},
		Notes:  []string{fmt.Sprintf("scale=%s", sc.Name)},
	}
	for _, pen := range []float64{0, -1, -5, -20} {
		pen := pen
		v, err := trainVariant(sc, func(c *core.TrainConfig) {
			c.ViolationPenalty = pen
			if pen == 0 {
				c.ViolationPenalty = -1e-9 // keep "zero" penalty from defaulting
			}
		}, log)
		if err != nil {
			return nil, err
		}
		tbl.AddRow(fmt.Sprintf("%.0f", pen), f2(v))
	}
	return tbl, nil
}

// AblationObs sweeps MAX_OBSV_SIZE (§3.3.2 fixes it at 128 but notes it is a
// configurable training parameter).
func AblationObs(sc Scale, log io.Writer) (*Table, error) {
	tbl := &Table{
		Title:  "Ablation: MAX_OBSV_SIZE (SDSC-SP2, FCFS base)",
		Header: []string{"MaxObs", "bsld"},
		Notes:  []string{fmt.Sprintf("scale=%s", sc.Name)},
	}
	for _, m := range []int{sc.MaxObs / 2, sc.MaxObs, sc.MaxObs * 2} {
		if m < 4 {
			continue
		}
		m := m
		v, err := trainVariant(sc, func(c *core.TrainConfig) { c.Obs.MaxObs = m }, log)
		if err != nil {
			return nil, err
		}
		tbl.AddRow(fmt.Sprintf("%d", m), f2(v))
	}
	return tbl, nil
}

// ConservativeCompare pits no-backfilling, EASY and conservative backfilling
// against each other on every workload (related-work baseline, §5).
func ConservativeCompare(sc Scale, _ io.Writer) (*Table, error) {
	tbl := &Table{
		Title:  "Baseline: no backfilling vs EASY vs conservative (FCFS base, whole trace)",
		Header: []string{"trace", "none", "EASY", "conservative"},
		Notes:  []string{fmt.Sprintf("scale=%s jobs=%d", sc.Name, sc.TraceJobs)},
	}
	for _, tr := range Workloads(sc.TraceJobs, sc.Seed) {
		est := estimatorFor(tr)
		row := []string{tr.Name}
		for _, bf := range []backfill.Backfiller{nil, backfill.NewEASY(est), backfill.NewConservative(est)} {
			res, err := sim.Run(tr.Clone(), sim.Config{Policy: sched.FCFS{}, Backfiller: bf})
			if err != nil {
				return nil, err
			}
			row = append(row, f2(res.Summary.MeanBSLD))
		}
		tbl.Rows = append(tbl.Rows, row)
	}
	return tbl, nil
}
