package experiments

import (
	"fmt"
	"io"

	"repro/internal/backfill"
	"repro/internal/core"
	"repro/internal/pool"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/trace"
)

// trainVariant trains one model on the SDSC-SP2 surrogate with a config
// mutation and evaluates it (FCFS base). Each variant is one weighted cell;
// the seed is fixed by the scale, so variants are independent of the order
// the pool runs them in. The cell already holds trainWeight tokens, so the
// final evaluation fans its sequences across the same workers instead of
// idling them (results are worker-count independent).
func trainVariant(sc Scale, mutate func(*core.TrainConfig), log io.Writer) (float64, error) {
	tr := trace.SyntheticSDSCSP2(sc.TraceJobs, sc.Seed+1)
	cfg := sc.trainConfig(sched.FCFS{}, backfill.RequestTime{})
	mutate(&cfg)
	trainer, err := core.NewTrainer(tr, cfg)
	if err != nil {
		return 0, err
	}
	if _, err := trainer.Train(sc.Epochs, nil); err != nil {
		return 0, err
	}
	eval := sc.Eval
	if eval.Workers == 0 {
		eval.Workers = sc.workers()
	}
	mean, _, err := core.EvaluateAgent(trainer.Agent(), tr, sched.FCFS{}, eval)
	return mean, err
}

// variantTable runs one training cell per (label, mutation) pair on the pool
// and assembles a two-column table in the given order.
func variantTable(sc Scale, p *pool.Pool, tbl *Table, labels []string,
	mutations []func(*core.TrainConfig), log io.Writer) (*Table, error) {
	p = sc.cellPool(p)
	sc = sc.clampToPool(p)
	vals := make([]string, len(mutations))
	err := runCells(p, sc.trainWeight(), len(mutations), func(i int) error {
		v, err := trainVariant(sc, mutations[i], log)
		if err != nil {
			return err
		}
		vals[i] = f2(v)
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i, label := range labels {
		tbl.AddRow(label, vals[i])
	}
	return tbl, nil
}

// AblationSkip compares training with and without the learned skip action
// (DESIGN.md: the paper leaves the "stop backfilling" mechanism implicit).
func AblationSkip(sc Scale, p *pool.Pool, log io.Writer) (*Table, error) {
	tbl := &Table{
		Title:  "Ablation: skip action (SDSC-SP2, FCFS base)",
		Header: []string{"variant", "bsld"},
		Notes:  []string{fmt.Sprintf("scale=%s", sc.Name)},
	}
	var labels []string
	var muts []func(*core.TrainConfig)
	for _, skip := range []bool{true, false} {
		skip := skip
		labels = append(labels, fmt.Sprintf("skip=%v", skip))
		muts = append(muts, func(c *core.TrainConfig) { c.Obs.SkipAction = skip })
	}
	return variantTable(sc, p, tbl, labels, muts, log)
}

// AblationPenalty sweeps the reservation-violation penalty (§3.4 calls for a
// "large negative reward"; how large matters).
func AblationPenalty(sc Scale, p *pool.Pool, log io.Writer) (*Table, error) {
	tbl := &Table{
		Title:  "Ablation: violation penalty (SDSC-SP2, FCFS base)",
		Header: []string{"penalty", "bsld"},
		Notes:  []string{fmt.Sprintf("scale=%s", sc.Name)},
	}
	var labels []string
	var muts []func(*core.TrainConfig)
	for _, pen := range []float64{0, -1, -5, -20} {
		pen := pen
		labels = append(labels, fmt.Sprintf("%.0f", pen))
		muts = append(muts, func(c *core.TrainConfig) {
			c.ViolationPenalty = pen
			if pen == 0 {
				c.ViolationPenalty = -1e-9 // keep "zero" penalty from defaulting
			}
		})
	}
	return variantTable(sc, p, tbl, labels, muts, log)
}

// AblationObs sweeps MAX_OBSV_SIZE (§3.3.2 fixes it at 128 but notes it is a
// configurable training parameter).
func AblationObs(sc Scale, p *pool.Pool, log io.Writer) (*Table, error) {
	tbl := &Table{
		Title:  "Ablation: MAX_OBSV_SIZE (SDSC-SP2, FCFS base)",
		Header: []string{"MaxObs", "bsld"},
		Notes:  []string{fmt.Sprintf("scale=%s", sc.Name)},
	}
	var labels []string
	var muts []func(*core.TrainConfig)
	for _, m := range []int{sc.MaxObs / 2, sc.MaxObs, sc.MaxObs * 2} {
		if m < 4 {
			continue
		}
		m := m
		labels = append(labels, fmt.Sprintf("%d", m))
		muts = append(muts, func(c *core.TrainConfig) { c.Obs.MaxObs = m })
	}
	return variantTable(sc, p, tbl, labels, muts, log)
}

// ConservativeCompare pits no-backfilling, EASY and conservative backfilling
// against each other on every workload (related-work baseline, §5). Each
// (workload, strategy) replay is a cell constructing its own backfiller —
// weight 1 normally, or the shard worker count when Scale.Shard splits the
// whole-trace replays into parallel windows.
func ConservativeCompare(sc Scale, p *pool.Pool, _ io.Writer) (*Table, error) {
	p = sc.cellPool(p)
	tbl := &Table{
		Title:  "Baseline: no backfilling vs EASY vs conservative (FCFS base, whole trace)",
		Header: []string{"trace", "none", "EASY", "conservative"},
		Notes:  []string{fmt.Sprintf("scale=%s jobs=%d", sc.Name, sc.TraceJobs)},
	}
	workloads := Workloads(sc.TraceJobs, sc.Seed)
	mkBF := []func(est backfill.Estimator) backfill.Backfiller{
		func(backfill.Estimator) backfill.Backfiller { return nil },
		func(est backfill.Estimator) backfill.Backfiller { return backfill.NewEASY(est) },
		func(est backfill.Estimator) backfill.Backfiller { return backfill.NewConservative(est) },
	}
	weight := sc.shardWeight(p, sc.TraceJobs)
	grid, err := runGridWeighted(p, weight, len(workloads), len(mkBF), func(wi, si int) (string, error) {
		tr := workloads[wi]
		res, err := replayShardable(tr.Clone(), sim.Config{Policy: sched.FCFS{}, Backfiller: mkBF[si](estimatorFor(tr))}, sc.Shard, weight)
		if err != nil {
			return "", err
		}
		return f2(res.Summary.MeanBSLD), nil
	})
	if err != nil {
		return nil, err
	}
	for wi, tr := range workloads {
		tbl.Rows = append(tbl.Rows, append([]string{tr.Name}, grid[wi]...))
	}
	return tbl, nil
}
