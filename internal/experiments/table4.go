package experiments

import (
	"fmt"
	"io"

	"repro/internal/backfill"
	"repro/internal/core"
	"repro/internal/pool"
	"repro/internal/sched"
	"repro/internal/trace"
)

// Table4 reproduces the headline result (§4.3): for each workload, the mean
// bounded slowdown over Eval.Sequences random Eval.SeqLen-job sequences under
// FCFS/SJF with EASY, EASY-AR and RLBackfilling, plus the WFP3+EASY and
// F1+EASY reference columns. RLBF models are trained per (policy, trace)
// pair, exactly as the paper's protocol implies (Table 5's diagonals match
// Table 4). The required models are prefetched as weighted pool cells, then
// every (workload, column) evaluation runs as an independent cell and the
// table assembles by index.
//
// Expected shape (paper): RLBF beats EASY(RT) on every trace and beats
// EASY-AR on the archive traces with FCFS; EASY columns are "-" for the
// Lublin traces, which have no user request times.
func Table4(sc Scale, zoo *Zoo, p *pool.Pool, log io.Writer) (*Table, error) {
	p = sc.cellPool(p)
	sc = sc.clampToPool(p)
	workloads := Workloads(sc.TraceJobs, sc.Seed)
	tbl := &Table{
		Title: "Table 4: bsld of base policy + backfilling strategy",
		Header: []string{"trace", "FCFS+EASY", "FCFS+EASY-AR", "FCFS+RLBF",
			"SJF+EASY", "SJF+EASY-AR", "SJF+RLBF", "WFP3+EASY", "F1+EASY"},
		Notes: []string{
			fmt.Sprintf("scale=%s: eval %d sequences x %d jobs, seed %d",
				sc.Name, sc.Eval.Sequences, sc.Eval.SeqLen, sc.Eval.Seed),
			"paper shape: RLBF < EASY everywhere; RLBF < EASY-AR on SDSC-SP2/HPC2N with FCFS",
		},
	}

	// Train every model the RLBF columns will evaluate before the cell grid
	// runs, so evaluation cells only ever hit the zoo cache.
	if err := zoo.Prefetch(p, sc, log, []sched.Policy{sched.FCFS{}, sched.SJF{}}, workloads); err != nil {
		return nil, err
	}

	cols := table4Columns(sc, zoo, log)
	grid, err := runGrid(p, len(workloads), len(cols), func(wi, ci int) (string, error) {
		return cols[ci].eval(workloads[wi])
	})
	if err != nil {
		return nil, err
	}
	for wi, tr := range workloads {
		tbl.Rows = append(tbl.Rows, append([]string{tr.Name}, grid[wi]...))
	}
	return tbl, nil
}

// table4Column is one column of Table 4: an evaluation of one workload under
// one (policy, strategy) pairing.
type table4Column struct {
	eval func(tr *trace.Trace) (string, error)
}

// table4Columns builds the eight column evaluators. Each cell constructs its
// own backfiller (they carry scratch state) and resolves the RL model from
// the already-populated zoo.
func table4Columns(sc Scale, zoo *Zoo, log io.Writer) []table4Column {
	heuristic := func(pol sched.Policy, mk func() backfill.Backfiller, rtOnly bool) table4Column {
		return table4Column{eval: func(tr *trace.Trace) (string, error) {
			// EASY on user request time: undefined for the Lublin traces.
			if rtOnly && isSynthetic(tr) {
				return "-", nil
			}
			mean, _, err := core.EvaluateStrategy(tr, pol, mk(), sc.Eval)
			if err != nil {
				return "", err
			}
			return f2(mean), nil
		}}
	}
	rl := func(pol sched.Policy) table4Column {
		return table4Column{eval: func(tr *trace.Trace) (string, error) {
			agent, _, err := zoo.Get(pol, tr, sc, log)
			if err != nil {
				return "", err
			}
			mean, _, err := core.EvaluateAgent(agent, tr, pol, sc.Eval)
			if err != nil {
				return "", err
			}
			return f2(mean), nil
		}}
	}
	// WFP3+EASY and F1+EASY reference columns (request time where available).
	ref := func(pol sched.Policy) table4Column {
		return table4Column{eval: func(tr *trace.Trace) (string, error) {
			var est backfill.Estimator = backfill.RequestTime{}
			if isSynthetic(tr) {
				est = backfill.ActualRuntime{}
			}
			mean, _, err := core.EvaluateStrategy(tr, pol, backfill.NewEASY(est), sc.Eval)
			if err != nil {
				return "", err
			}
			return f2(mean), nil
		}}
	}

	var cols []table4Column
	for _, pol := range []sched.Policy{sched.FCFS{}, sched.SJF{}} {
		pol := pol
		cols = append(cols,
			heuristic(pol, func() backfill.Backfiller { return backfill.NewEASY(backfill.RequestTime{}) }, true),
			heuristic(pol, func() backfill.Backfiller { return backfill.NewEASY(backfill.ActualRuntime{}) }, false),
			rl(pol),
		)
	}
	cols = append(cols, ref(sched.WFP3{}), ref(sched.F1{}))
	return cols
}
