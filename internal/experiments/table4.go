package experiments

import (
	"fmt"
	"io"

	"repro/internal/backfill"
	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/trace"
)

// Table4 reproduces the headline result (§4.3): for each workload, the mean
// bounded slowdown over Eval.Sequences random Eval.SeqLen-job sequences under
// FCFS/SJF with EASY, EASY-AR and RLBackfilling, plus the WFP3+EASY and
// F1+EASY reference columns. RLBF models are trained per (policy, trace)
// pair, exactly as the paper's protocol implies (Table 5's diagonals match
// Table 4).
//
// Expected shape (paper): RLBF beats EASY(RT) on every trace and beats
// EASY-AR on the archive traces with FCFS; EASY columns are "-" for the
// Lublin traces, which have no user request times.
func Table4(sc Scale, zoo *Zoo, log io.Writer) (*Table, error) {
	tbl := &Table{
		Title: "Table 4: bsld of base policy + backfilling strategy",
		Header: []string{"trace", "FCFS+EASY", "FCFS+EASY-AR", "FCFS+RLBF",
			"SJF+EASY", "SJF+EASY-AR", "SJF+RLBF", "WFP3+EASY", "F1+EASY"},
		Notes: []string{
			fmt.Sprintf("scale=%s: eval %d sequences x %d jobs, seed %d",
				sc.Name, sc.Eval.Sequences, sc.Eval.SeqLen, sc.Eval.Seed),
			"paper shape: RLBF < EASY everywhere; RLBF < EASY-AR on SDSC-SP2/HPC2N with FCFS",
		},
	}

	for _, tr := range Workloads(sc.TraceJobs, sc.Seed) {
		row := []string{tr.Name}
		cells, err := table4Row(sc, zoo, tr, log)
		if err != nil {
			return nil, err
		}
		row = append(row, cells...)
		tbl.Rows = append(tbl.Rows, row)
	}
	return tbl, nil
}

func table4Row(sc Scale, zoo *Zoo, tr *trace.Trace, log io.Writer) ([]string, error) {
	synthetic := isSynthetic(tr)
	evalHeuristic := func(p sched.Policy, bf backfill.Backfiller) (string, error) {
		mean, _, err := core.EvaluateStrategy(tr, p, bf, sc.Eval)
		if err != nil {
			return "", err
		}
		return f2(mean), nil
	}
	evalRL := func(p sched.Policy) (string, error) {
		agent, _, err := zoo.Get(p, tr, sc, log)
		if err != nil {
			return "", err
		}
		mean, _, err := core.EvaluateAgent(agent, tr, p, sc.Eval)
		if err != nil {
			return "", err
		}
		return f2(mean), nil
	}

	var cells []string
	for _, p := range []sched.Policy{sched.FCFS{}, sched.SJF{}} {
		// EASY on user request time: undefined for the Lublin traces.
		if synthetic {
			cells = append(cells, "-")
		} else {
			c, err := evalHeuristic(p, backfill.NewEASY(backfill.RequestTime{}))
			if err != nil {
				return nil, err
			}
			cells = append(cells, c)
		}
		c, err := evalHeuristic(p, backfill.NewEASY(backfill.ActualRuntime{}))
		if err != nil {
			return nil, err
		}
		cells = append(cells, c)
		c, err = evalRL(p)
		if err != nil {
			return nil, err
		}
		cells = append(cells, c)
	}
	// WFP3+EASY and F1+EASY reference columns (request time where available).
	refEst := backfill.Estimator(backfill.RequestTime{})
	if synthetic {
		refEst = backfill.ActualRuntime{}
	}
	for _, p := range []sched.Policy{sched.WFP3{}, sched.F1{}} {
		c, err := evalHeuristic(p, backfill.NewEASY(refEst))
		if err != nil {
			return nil, err
		}
		cells = append(cells, c)
	}
	return cells, nil
}
