package experiments

import (
	"fmt"

	"repro/internal/backfill"
	"repro/internal/pool"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Figure1 reproduces the paper's motivating experiment (§1, Figure 1):
// schedule the SDSC-SP2 workload with each base policy (FCFS, WFP3, SJF, F1)
// under EASY backfilling driven by runtime predictions of varying accuracy —
// the actual runtime (perfect prediction), actual +5/10/20/40/100 % noise,
// and the raw user request time — and report the average bounded slowdown.
// Every (policy, estimator) point is an independent cell on the worker pool
// (pass nil for a private pool); the grid assembles by index.
//
// Expected shape (paper): better prediction accuracy does NOT monotonically
// improve bsld; only SJF is best with the perfect prediction.
func Figure1(sc Scale, p *pool.Pool) (*Table, error) {
	p = sc.cellPool(p)
	tr := trace.SyntheticSDSCSP2(sc.TraceJobs, sc.Seed+1)

	// One estimator per column: AR, the noise levels, then RT.
	ests := []backfill.Estimator{backfill.ActualRuntime{}}
	for _, lvl := range []float64{0.05, 0.10, 0.20, 0.40, 1.00} {
		ests = append(ests, backfill.Noisy{Level: lvl, Seed: sc.Seed + 77})
	}
	ests = append(ests, backfill.RequestTime{})
	pols := sched.All()

	tbl := &Table{
		Title:  "Figure 1: bsld vs runtime-prediction accuracy on SDSC-SP2 (EASY backfilling)",
		Header: []string{"policy", "AR", "+5%", "+10%", "+20%", "+40%", "+100%", "RT"},
		Notes: []string{
			fmt.Sprintf("scale=%s jobs=%d seed=%d; estimates AR*(1+U(0,x)) per job", sc.Name, sc.TraceJobs, sc.Seed),
			"paper shape: non-monotone in accuracy for FCFS/WFP3/F1; SJF best at AR",
		},
	}

	grid, err := runGrid(p, len(pols), len(ests), func(pi, ci int) (string, error) {
		res, err := sim.Run(tr.Clone(), sim.Config{
			Policy:     pols[pi],
			Backfiller: backfill.NewEASY(ests[ci]),
		})
		if err != nil {
			return "", err
		}
		return f2(res.Summary.MeanBSLD), nil
	})
	if err != nil {
		return nil, err
	}
	for pi, pol := range pols {
		tbl.Rows = append(tbl.Rows, append([]string{pol.Name()}, grid[pi]...))
	}
	return tbl, nil
}
