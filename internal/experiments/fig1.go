package experiments

import (
	"fmt"

	"repro/internal/backfill"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Figure1 reproduces the paper's motivating experiment (§1, Figure 1):
// schedule the SDSC-SP2 workload with each base policy (FCFS, WFP3, SJF, F1)
// under EASY backfilling driven by runtime predictions of varying accuracy —
// the actual runtime (perfect prediction), actual +5/10/20/40/100 % noise,
// and the raw user request time — and report the average bounded slowdown.
//
// Expected shape (paper): better prediction accuracy does NOT monotonically
// improve bsld; only SJF is best with the perfect prediction.
func Figure1(sc Scale) (*Table, error) {
	tr := trace.SyntheticSDSCSP2(sc.TraceJobs, sc.Seed+1)
	levels := []float64{0, 0.05, 0.10, 0.20, 0.40, 1.00}

	tbl := &Table{
		Title:  "Figure 1: bsld vs runtime-prediction accuracy on SDSC-SP2 (EASY backfilling)",
		Header: []string{"policy", "AR", "+5%", "+10%", "+20%", "+40%", "+100%", "RT"},
		Notes: []string{
			fmt.Sprintf("scale=%s jobs=%d seed=%d; estimates AR*(1+U(0,x)) per job", sc.Name, sc.TraceJobs, sc.Seed),
			"paper shape: non-monotone in accuracy for FCFS/WFP3/F1; SJF best at AR",
		},
	}
	for _, p := range sched.All() {
		row := []string{p.Name()}
		for _, lvl := range levels {
			var est backfill.Estimator
			if lvl == 0 {
				est = backfill.ActualRuntime{}
			} else {
				est = backfill.Noisy{Level: lvl, Seed: sc.Seed + 77}
			}
			res, err := sim.Run(tr.Clone(), sim.Config{Policy: p, Backfiller: backfill.NewEASY(est)})
			if err != nil {
				return nil, err
			}
			row = append(row, f2(res.Summary.MeanBSLD))
		}
		res, err := sim.Run(tr.Clone(), sim.Config{Policy: p, Backfiller: backfill.NewEASY(backfill.RequestTime{})})
		if err != nil {
			return nil, err
		}
		row = append(row, f2(res.Summary.MeanBSLD))
		tbl.Rows = append(tbl.Rows, row)
	}
	return tbl, nil
}
