package experiments

import (
	"io"
	"strconv"
	"strings"
	"testing"
)

func TestScaleByName(t *testing.T) {
	for _, name := range []string{"paper", "quick", "tiny"} {
		sc, ok := ByName(name)
		if !ok || sc.Name != name {
			t.Fatalf("ByName(%q) failed", name)
		}
	}
	if _, ok := ByName("nope"); ok {
		t.Fatal("unknown scale accepted")
	}
}

func TestTableRendering(t *testing.T) {
	tbl := &Table{Title: "T", Header: []string{"a", "bb"}, Notes: []string{"n1"}}
	tbl.AddRow("1", "2")
	tbl.AddRow("333", "4")
	s := tbl.String()
	for _, want := range []string{"T", "a", "bb", "333", "note: n1"} {
		if !strings.Contains(s, want) {
			t.Fatalf("rendered table missing %q:\n%s", want, s)
		}
	}
	csv := tbl.CSV()
	if !strings.HasPrefix(csv, "a,bb\n") {
		t.Fatalf("CSV header wrong: %q", csv)
	}
	if !strings.Contains(csv, "333,4") {
		t.Fatalf("CSV rows wrong: %q", csv)
	}
}

func TestTableCSVEscaping(t *testing.T) {
	tbl := &Table{Header: []string{`he"ad`, "b,c"}}
	tbl.AddRow("x\ny", "plain")
	csv := tbl.CSV()
	if !strings.Contains(csv, `"he""ad"`) || !strings.Contains(csv, `"b,c"`) {
		t.Fatalf("CSV escaping wrong: %q", csv)
	}
}

func TestWorkloadsCoverTable2(t *testing.T) {
	ws := Workloads(500, 7)
	if len(ws) != 4 {
		t.Fatalf("%d workloads, want 4", len(ws))
	}
	names := map[string]bool{}
	for _, w := range ws {
		names[w.Name] = true
		if w.Len() != 500 {
			t.Fatalf("%s has %d jobs", w.Name, w.Len())
		}
		if err := w.Validate(); err != nil {
			t.Fatal(err)
		}
	}
	for _, want := range []string{"SDSC-SP2", "HPC2N", "Lublin-1", "Lublin-2"} {
		if !names[want] {
			t.Fatalf("missing workload %s", want)
		}
	}
}

func TestEstimatorForSyntheticUsesAR(t *testing.T) {
	ws := Workloads(50, 1)
	if estimatorFor(ws[0]).Name() != "RT" {
		t.Fatal("archive surrogate should use request time")
	}
	if estimatorFor(ws[2]).Name() != "AR" {
		t.Fatal("Lublin trace should use actual runtime")
	}
}

func TestFigure1Shape(t *testing.T) {
	sc := TinyScale()
	sc.TraceJobs = 400
	tbl, err := Figure1(sc, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 4 {
		t.Fatalf("Figure 1 has %d policy rows, want 4", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		if len(row) != 8 { // policy + 6 noise levels + RT
			t.Fatalf("Figure 1 row has %d cells: %v", len(row), row)
		}
		for _, cell := range row[1:] {
			v, err := strconv.ParseFloat(cell, 64)
			if err != nil || v < 1 {
				t.Fatalf("bad bsld cell %q", cell)
			}
		}
	}
}

func TestTable2Generated(t *testing.T) {
	sc := TinyScale()
	tbl := Table2(sc)
	if len(tbl.Rows) != 4 {
		t.Fatalf("Table 2 has %d rows", len(tbl.Rows))
	}
	// Lublin rows must be marked AR-only
	if tbl.Rows[2][len(tbl.Rows[2])-1] != "AR" {
		t.Fatalf("Lublin-1 runtime column = %q, want AR", tbl.Rows[2][len(tbl.Rows[2])-1])
	}
}

func TestConservativeCompare(t *testing.T) {
	sc := TinyScale()
	sc.TraceJobs = 200
	tbl, err := ConservativeCompare(sc, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 4 {
		t.Fatalf("%d rows", len(tbl.Rows))
	}
	// backfilling should never be dramatically worse than no backfilling
	for _, row := range tbl.Rows {
		none, _ := strconv.ParseFloat(row[1], 64)
		easy, _ := strconv.ParseFloat(row[2], 64)
		if easy > none*1.5+1 {
			t.Fatalf("EASY (%v) much worse than no backfilling (%v) on %s", easy, none, row[0])
		}
	}
}

func TestZooCachesModels(t *testing.T) {
	sc := TinyScale()
	sc.TraceJobs = 300
	zoo := NewZoo()
	ws := Workloads(sc.TraceJobs, sc.Seed)
	a1, curve, err := zoo.Get(fcfs(), ws[0], sc, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if len(curve) != sc.Epochs {
		t.Fatalf("curve has %d epochs", len(curve))
	}
	a2, _, err := zoo.Get(fcfs(), ws[0], sc, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if a1 != a2 {
		t.Fatal("zoo retrained an existing model")
	}
}

func TestRunManyUnknownName(t *testing.T) {
	if _, err := RunMany([]string{"bogus"}, TinyScale(), nil); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestNamesSorted(t *testing.T) {
	names := Names()
	if len(names) < 8 {
		t.Fatalf("registry has only %d experiments", len(names))
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatal("names not sorted")
		}
	}
}

// End-to-end: the cheap experiments run and render via RunMany.
func TestRunManyCheapExperiments(t *testing.T) {
	sc := TinyScale()
	sc.TraceJobs = 250
	out, err := RunMany([]string{"table2", "fig1", "conservative"}, sc, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Table 2", "Figure 1", "conservative"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q", want)
		}
	}
}

// End-to-end at tiny scale: Table 4 trains models and renders.
func TestTable4Tiny(t *testing.T) {
	if testing.Short() {
		t.Skip("RL experiment skipped in -short mode")
	}
	sc := TinyScale()
	sc.TraceJobs = 300
	sc.Eval = evalCfg(2, 100)
	zoo := NewZoo()
	tbl, err := Table4(sc, zoo, nil, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 4 {
		t.Fatalf("Table 4 has %d rows", len(tbl.Rows))
	}
	// Lublin rows report "-" for the request-time EASY columns
	for _, row := range tbl.Rows[2:] {
		if row[1] != "-" || row[4] != "-" {
			t.Fatalf("Lublin row should have '-' EASY cells: %v", row)
		}
	}
}

func TestLoadSweep(t *testing.T) {
	sc := TinyScale()
	sc.TraceJobs = 300
	tbl, err := LoadSweep(sc, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 5 {
		t.Fatalf("load sweep has %d rows", len(tbl.Rows))
	}
	// higher load must not reduce the no-backfilling bsld dramatically:
	// compare the f=0.5 and f=2.0 rows for the "none" column.
	lo, _ := strconv.ParseFloat(tbl.Rows[0][1], 64)
	hi, _ := strconv.ParseFloat(tbl.Rows[4][1], 64)
	if hi < lo {
		t.Fatalf("no-backfill bsld fell as load doubled: %v -> %v", lo, hi)
	}
}
