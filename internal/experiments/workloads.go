package experiments

import (
	"fmt"
	"io"
	"strings"
	"sync"

	"repro/internal/backfill"
	"repro/internal/core"
	"repro/internal/lublin"
	"repro/internal/pool"
	"repro/internal/sched"
	"repro/internal/trace"
)

// Workloads generates the paper's four evaluation traces (Table 2) at the
// given size: SDSC-SP2 and HPC2N surrogates plus Lublin-1 and Lublin-2.
func Workloads(n int, seed uint64) []*trace.Trace {
	return []*trace.Trace{
		trace.SyntheticSDSCSP2(n, seed+1),
		trace.SyntheticHPC2N(n, seed+2),
		lublin.Generate1(n, seed+3),
		lublin.Generate2(n, seed+4),
	}
}

// hugeSeedOff is the seed offset of the huge composition, continuing the
// per-workload offsets ResolveTrace assigns (sdsc-sp2 +1 ... lublin-2 +4).
const hugeSeedOff = 5

// IsBuiltin reports whether name resolves to a built-in generated workload
// (so n jobs are drawn from its generator) as opposed to an SWF file path.
// Callers that document different -n semantics for files versus generators
// (traceinfo reads whole files, but must cap generators somewhere) use this
// to decide what to pass ResolveTrace.
func IsBuiltin(name string) bool {
	switch strings.ToLower(name) {
	case "sdsc-sp2", "sdsc", "hpc2n", "lublin-1", "lublin1", "lublin-2", "lublin2", "huge", "lublin-huge":
		return true
	}
	return false
}

// ResolveTrace returns a workload by built-in name ("sdsc-sp2", "hpc2n",
// "lublin-1", "lublin-2", "huge", case-insensitive) generated with n jobs,
// or parses the argument as an SWF file path.
func ResolveTrace(nameOrPath string, n int, seed uint64) (*trace.Trace, error) {
	switch strings.ToLower(nameOrPath) {
	case "sdsc-sp2", "sdsc":
		return trace.SyntheticSDSCSP2(n, seed+1), nil
	case "hpc2n":
		return trace.SyntheticHPC2N(n, seed+2), nil
	case "lublin-1", "lublin1":
		return lublin.Generate1(n, seed+3), nil
	case "lublin-2", "lublin2":
		return lublin.Generate2(n, seed+4), nil
	case "huge", "lublin-huge":
		return HugeTrace(lublin.Huge(0, 0, 0), n, seed), nil
	}
	t, err := trace.LoadSWFFile(nameOrPath)
	if err != nil {
		return nil, fmt.Errorf("experiments: %q is neither a built-in workload nor a readable SWF file: %w", nameOrPath, err)
	}
	if n > 0 {
		t = t.Head(n)
	}
	return t, nil
}

// TraceStream is the streaming form of a built-in workload: the machine
// header plus a generator that hands jobs to yield in submit order, so CLI
// tools can write or summarize million-job workloads with flat RSS.
type TraceStream struct {
	Name  string
	Procs int
	Run   func(yield func(*trace.Job) error) error
}

// ResolveStream returns the streaming form of a built-in workload, using the
// same per-name seed offsets as ResolveTrace so the streamed jobs are
// byte-identical to the materialized ones. SWF paths (and unknown names)
// report ok=false; callers fall back to ResolveTrace.
func ResolveStream(name string, n int, seed uint64) (TraceStream, bool) {
	switch strings.ToLower(name) {
	case "sdsc-sp2", "sdsc":
		s := trace.SDSCSP2Spec()
		return synthStream(s, n, seed+1), true
	case "hpc2n":
		s := trace.HPC2NSpec()
		return synthStream(s, n, seed+2), true
	case "lublin-1", "lublin1":
		return lublinStream(lublin.Lublin1(), n, seed+3), true
	case "lublin-2", "lublin2":
		return lublinStream(lublin.Lublin2(), n, seed+4), true
	case "huge", "lublin-huge":
		return HugeStream(lublin.Huge(0, 0, 0), n, seed), true
	}
	return TraceStream{}, false
}

func synthStream(s trace.SynthSpec, n int, seed uint64) TraceStream {
	return TraceStream{Name: s.Name, Procs: s.Procs, Run: func(yield func(*trace.Job) error) error {
		return s.Stream(n, seed, yield)
	}}
}

func lublinStream(p lublin.Params, n int, seed uint64) TraceStream {
	return TraceStream{Name: p.Name, Procs: p.Procs, Run: func(yield func(*trace.Job) error) error {
		return p.Stream(n, seed, yield)
	}}
}

// HugeStream is the streaming form of a huge composition with explicit
// geometry (tracegen's -nodes/-streams/-load); it applies the same seed
// offset as ResolveTrace's "huge" case, so default-geometry output matches.
func HugeStream(spec lublin.HugeSpec, n int, seed uint64) TraceStream {
	return TraceStream{Name: spec.Name(), Procs: spec.Nodes, Run: func(yield func(*trace.Job) error) error {
		return spec.Stream(n, seed+hugeSeedOff, yield)
	}}
}

// HugeTrace materializes a huge composition under the same seed offset.
func HugeTrace(spec lublin.HugeSpec, n int, seed uint64) *trace.Trace {
	return spec.Generate(n, seed+hugeSeedOff)
}

// Estimator returns the reservation estimator appropriate for the workload
// (exported for the CLI tools).
func Estimator(t *trace.Trace) backfill.Estimator { return estimatorFor(t) }

// estimatorFor returns the reservation estimator for a workload: request
// time for real-trace surrogates, actual runtime for the Lublin traces
// (which carry no user estimates, §4.1.2).
func estimatorFor(t *trace.Trace) backfill.Estimator {
	if isSynthetic(t) {
		return backfill.ActualRuntime{}
	}
	return backfill.RequestTime{}
}

func isSynthetic(t *trace.Trace) bool {
	return t.Name == "Lublin-1" || t.Name == "Lublin-2" || t.Name == "Lublin-Huge"
}

// Zoo holds trained RLBackfilling models keyed by "<policy>/<trace>",
// shared by Table 4, Table 5 and Figure 4 (the paper trains one model per
// base policy and trace). It is concurrency-safe with singleflight
// semantics: concurrent Get calls for the same key block on ONE training
// run (the first caller trains, the rest wait on its completion), while
// requests for distinct keys proceed independently — no global training
// lock.
type Zoo struct {
	mu      sync.Mutex
	entries map[string]*zooEntry
}

// zooEntry is one singleflight slot: done closes when training finished
// (successfully or not); the result fields are immutable afterwards. A
// training error is sticky — retrying the identical deterministic training
// would fail identically.
type zooEntry struct {
	done  chan struct{}
	agent *core.Agent
	curve []core.EpochStats
	err   error
}

// NewZoo returns an empty model zoo.
func NewZoo() *Zoo {
	return &Zoo{entries: make(map[string]*zooEntry)}
}

func zooKey(policy sched.Policy, tr *trace.Trace) string {
	return policy.Name() + "/" + tr.Name
}

// normPolicy maps the requested base policy to the one actually trained:
// when the scale disables per-policy models, training always uses FCFS and
// the resulting agent is shared across base policies (the transfer the
// paper reports in §1/§4.4).
func (sc Scale) normPolicy(policy sched.Policy) sched.Policy {
	if !sc.PerPolicyModels {
		return sched.FCFS{}
	}
	return policy
}

// Get returns the model for (policy, trace), training it on first use.
func (z *Zoo) Get(policy sched.Policy, tr *trace.Trace, sc Scale, log io.Writer) (*core.Agent, []core.EpochStats, error) {
	policy = sc.normPolicy(policy)
	key := zooKey(policy, tr)
	z.mu.Lock()
	if e, ok := z.entries[key]; ok {
		z.mu.Unlock()
		<-e.done // singleflight: ride the in-flight (or finished) training
		return e.agent, e.curve, e.err
	}
	e := &zooEntry{done: make(chan struct{})}
	z.entries[key] = e
	z.mu.Unlock()

	e.agent, e.curve, e.err = z.train(policy, tr, sc, log)
	close(e.done)
	return e.agent, e.curve, e.err
}

// Prefetch trains every (policy, trace) model the caller will evaluate,
// as weighted cells on the shared pool, before evaluation cells run. Keys
// are deduplicated after policy normalization, and keys whose training
// already exists or is in flight (a concurrent experiment got there first —
// the Get singleflight guarantees one run per key) are skipped entirely, so
// redundant full-weight cells never act as pool-wide FIFO barriers; eval
// cells riding an in-flight training block on its completion in Get. Like
// runCells, Prefetch reports the lowest-index error (deterministic across
// runs) and stops launching trainings after the first failure.
func (z *Zoo) Prefetch(p *pool.Pool, sc Scale, log io.Writer, policies []sched.Policy, traces []*trace.Trace) error {
	sc = sc.clampToPool(p) // direct callers may pass a pool smaller than the scale
	type pair struct {
		pol sched.Policy
		tr  *trace.Trace
	}
	seen := make(map[string]bool)
	var pairs []pair
	for _, tr := range traces {
		for _, pol := range policies {
			np := sc.normPolicy(pol)
			key := zooKey(np, tr)
			if seen[key] || z.started(key) {
				continue
			}
			seen[key] = true
			pairs = append(pairs, pair{np, tr})
		}
	}
	return runCells(p, sc.trainWeight(), len(pairs), func(i int) error {
		_, _, err := z.Get(pairs[i].pol, pairs[i].tr, sc, log)
		return err
	})
}

// started reports whether a training for key exists (done or in flight).
func (z *Zoo) started(key string) bool {
	z.mu.Lock()
	defer z.mu.Unlock()
	return z.entries[key] != nil
}

// train runs one model's training (the singleflight leader's work).
func (z *Zoo) train(policy sched.Policy, tr *trace.Trace, sc Scale, log io.Writer) (*core.Agent, []core.EpochStats, error) {
	cfg := sc.trainConfig(policy, estimatorFor(tr))
	trainer, err := core.NewTrainer(tr, cfg)
	if err != nil {
		return nil, nil, err
	}
	if log != nil {
		fmt.Fprintf(log, "training RL-%s (base %s): %d epochs x %d traj x %d jobs\n",
			tr.Name, policy.Name(), sc.Epochs, sc.TrajPerEpoch, sc.EpisodeLen)
	}
	curve, err := trainer.Train(sc.Epochs, func(st core.EpochStats) {
		if log != nil {
			fmt.Fprintf(log, "  epoch %2d: bsld=%.2f baseline=%.2f reward=%+.3f steps=%d violations=%d\n",
				st.Epoch, st.MeanBSLD, st.BaselineBSLD, st.MeanReward, st.Steps, st.Violations)
		}
	})
	if err != nil {
		return nil, nil, err
	}
	return trainer.Agent(), curve, nil
}
