package experiments

import (
	"fmt"
	"io"
	"strings"
	"sync"

	"repro/internal/backfill"
	"repro/internal/core"
	"repro/internal/lublin"
	"repro/internal/sched"
	"repro/internal/trace"
)

// Workloads generates the paper's four evaluation traces (Table 2) at the
// given size: SDSC-SP2 and HPC2N surrogates plus Lublin-1 and Lublin-2.
func Workloads(n int, seed uint64) []*trace.Trace {
	return []*trace.Trace{
		trace.SyntheticSDSCSP2(n, seed+1),
		trace.SyntheticHPC2N(n, seed+2),
		lublin.Generate1(n, seed+3),
		lublin.Generate2(n, seed+4),
	}
}

// ResolveTrace returns a workload by built-in name ("sdsc-sp2", "hpc2n",
// "lublin-1", "lublin-2", case-insensitive) generated with n jobs, or parses
// the argument as an SWF file path.
func ResolveTrace(nameOrPath string, n int, seed uint64) (*trace.Trace, error) {
	switch strings.ToLower(nameOrPath) {
	case "sdsc-sp2", "sdsc":
		return trace.SyntheticSDSCSP2(n, seed+1), nil
	case "hpc2n":
		return trace.SyntheticHPC2N(n, seed+2), nil
	case "lublin-1", "lublin1":
		return lublin.Generate1(n, seed+3), nil
	case "lublin-2", "lublin2":
		return lublin.Generate2(n, seed+4), nil
	}
	t, err := trace.LoadSWFFile(nameOrPath)
	if err != nil {
		return nil, fmt.Errorf("experiments: %q is neither a built-in workload nor a readable SWF file: %w", nameOrPath, err)
	}
	if n > 0 {
		t = t.Head(n)
	}
	return t, nil
}

// Estimator returns the reservation estimator appropriate for the workload
// (exported for the CLI tools).
func Estimator(t *trace.Trace) backfill.Estimator { return estimatorFor(t) }

// estimatorFor returns the reservation estimator for a workload: request
// time for real-trace surrogates, actual runtime for the Lublin traces
// (which carry no user estimates, §4.1.2).
func estimatorFor(t *trace.Trace) backfill.Estimator {
	if isSynthetic(t) {
		return backfill.ActualRuntime{}
	}
	return backfill.RequestTime{}
}

func isSynthetic(t *trace.Trace) bool {
	return t.Name == "Lublin-1" || t.Name == "Lublin-2"
}

// Zoo holds trained RLBackfilling models keyed by "<policy>/<trace>",
// shared by Table 4 and Table 5 (the paper trains one model per base policy
// and trace).
type Zoo struct {
	mu     sync.Mutex
	models map[string]*core.Agent
	curves map[string][]core.EpochStats
}

// NewZoo returns an empty model zoo.
func NewZoo() *Zoo {
	return &Zoo{models: make(map[string]*core.Agent), curves: make(map[string][]core.EpochStats)}
}

func zooKey(policy sched.Policy, tr *trace.Trace) string {
	return policy.Name() + "/" + tr.Name
}

// Get returns the model for (policy, trace), training it on first use. When
// the scale disables per-policy models, training always uses FCFS and the
// resulting agent is shared across base policies (the transfer the paper
// reports in §1/§4.4).
func (z *Zoo) Get(policy sched.Policy, tr *trace.Trace, sc Scale, log io.Writer) (*core.Agent, []core.EpochStats, error) {
	if !sc.PerPolicyModels {
		policy = sched.FCFS{}
	}
	key := zooKey(policy, tr)
	z.mu.Lock()
	if a, ok := z.models[key]; ok {
		curve := z.curves[key]
		z.mu.Unlock()
		return a, curve, nil
	}
	z.mu.Unlock()

	cfg := sc.trainConfig(policy, estimatorFor(tr))
	trainer, err := core.NewTrainer(tr, cfg)
	if err != nil {
		return nil, nil, err
	}
	if log != nil {
		fmt.Fprintf(log, "training RL-%s (base %s): %d epochs x %d traj x %d jobs\n",
			tr.Name, policy.Name(), sc.Epochs, sc.TrajPerEpoch, sc.EpisodeLen)
	}
	curve, err := trainer.Train(sc.Epochs, func(st core.EpochStats) {
		if log != nil {
			fmt.Fprintf(log, "  epoch %2d: bsld=%.2f baseline=%.2f reward=%+.3f steps=%d violations=%d\n",
				st.Epoch, st.MeanBSLD, st.BaselineBSLD, st.MeanReward, st.Steps, st.Violations)
		}
	})
	if err != nil {
		return nil, nil, err
	}
	agent := trainer.Agent()
	z.mu.Lock()
	z.models[key] = agent
	z.curves[key] = curve
	z.mu.Unlock()
	return agent, curve, nil
}
