package experiments

import (
	"errors"
	"sync/atomic"

	"repro/internal/pool"
	"repro/internal/shard"
	"repro/internal/sim"
	"repro/internal/trace"
)

// errAborted reports that a fan-out was cut short because the shared pool
// was aborted by a failing sibling experiment. RunMany prefers the sibling's
// real error over this one when selecting what to report.
var errAborted = errors.New("aborted after another experiment failed")

// This file is the heart of the parallel cell runner (DESIGN.md §6.1): every
// experiment decomposes into independent, deterministically-seeded cells that
// execute on a shared bounded pool and assemble into tables BY INDEX — never
// by completion order — so the rendered output is bit-identical at any
// worker count.

// cellPool resolves the pool an experiment runs on: the shared RunMany pool
// when one is passed, or a private pool sized by the scale (direct callers
// such as benchmarks and the CLI with a single experiment).
func (s Scale) cellPool(p *pool.Pool) *pool.Pool {
	if p != nil {
		return p
	}
	return pool.New(s.workers())
}

// trainWeight is the pool weight of a cell that trains a model: training
// itself runs cfg.Workers rollout goroutines (see trainConfig), so the cell
// must hold that many tokens to keep the machine subscribed exactly once.
func (s Scale) trainWeight() int {
	return s.workers()
}

// shardWeight resolves the pool weight of a cell replaying a jobs-long
// trace under the scale's shard config: the windows it will actually fan
// out, clamped to the shard worker budget and to the pool so an undersized
// pool degrades the fan-out instead of deadlocking (a cell must never wait
// for tokens it already holds). A cell whose trace is below the activation
// threshold replays sequentially and holds a single token like any other
// weight-1 cell.
func (s Scale) shardWeight(p *pool.Pool, jobs int) int {
	if !s.Shard.Active(jobs) {
		return 1
	}
	// Wall-clock windows (WindowSeconds, which takes precedence over Window,
	// matching shard.Config.cutIndices) can't be counted from the job count
	// alone; the worker budget bounds them instead (a weight above the real
	// window count only under-subscribes, never deadlocks).
	windows := jobs
	if s.Shard.Window > 0 && s.Shard.WindowSeconds == 0 {
		windows = (jobs + s.Shard.Window - 1) / s.Shard.Window
	}
	return min(s.Shard.WorkerCount(), p.Capacity(), windows)
}

// replayShardable replays one cell's trace, sharding it per cfg when the
// trace is long enough. workers is the token weight the cell holds (see
// shardWeight): the windows run on a private pool of exactly that size, so
// the cell's real parallelism equals its declared weight.
func replayShardable(tr *trace.Trace, simCfg sim.Config, cfg shard.Config, workers int) (*sim.Result, error) {
	if !cfg.Active(tr.Len()) {
		return sim.Run(tr, simCfg)
	}
	cfg.Workers = workers
	return shard.Replay(tr, simCfg, cfg, nil)
}

// clampToPool bounds the scale's parallelism to the pool its cells run on,
// so a training cell's internal fan-out (trainConfig.Workers) never exceeds
// the tokens it can actually hold — with a pool smaller than the scale's
// worker count, an unclamped training would oversubscribe the machine.
// Training results are independent of the worker count (see core.TrainConfig
// and TestRunManyDeterministicAcrossWorkers), so clamping never changes
// outputs.
func (s Scale) clampToPool(p *pool.Pool) Scale {
	if w := p.Capacity(); s.workers() > w {
		s.Workers = w
	}
	return s
}

// runCells executes n independent cells on the pool, each of weight tokens.
// Every cell writes its result into its own indexed slot inside fn; errors
// are collected per index and the lowest-index error is returned, so error
// reporting is deterministic. A failure aborts the shared pool (fail-fast):
// in-flight cells finish, but cells not yet started — in this group AND in
// every sibling experiment sharing the pool — are skipped, so a paper-scale
// run does not burn hours after its result is already lost. A group whose
// cells were skipped by a sibling's abort returns errAborted rather than
// nil, so its experiment stops instead of proceeding on missing results.
func runCells(p *pool.Pool, weight, n int, fn func(i int) error) error {
	g := p.NewGroup()
	errs := make([]error, n)
	var skipped atomic.Bool
	for i := 0; i < n; i++ {
		i := i
		g.Go(weight, func() error {
			if p.Aborted() {
				skipped.Store(true)
				return nil
			}
			if err := fn(i); err != nil {
				errs[i] = err
				p.Abort()
			}
			return errs[i]
		})
	}
	werr := g.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	if werr != nil { // unreachable backstop: indexed slots cover every error
		return werr
	}
	if skipped.Load() {
		return errAborted
	}
	return nil
}

// runGrid evaluates a rows x cols grid of weight-1 cells on the pool and
// returns the cell strings row by row — the shape shared by every
// replay-style experiment (one simulation per table cell).
func runGrid(p *pool.Pool, rows, cols int, cell func(r, c int) (string, error)) ([][]string, error) {
	return runGridWeighted(p, 1, rows, cols, cell)
}

// runGridWeighted is runGrid with an explicit per-cell pool weight: a cell
// that internally fans out (a sharded whole-trace replay runs weight many
// windows on a private pool) holds that many tokens, the same discipline
// training cells use, so concurrent cells never oversubscribe the machine.
func runGridWeighted(p *pool.Pool, weight, rows, cols int, cell func(r, c int) (string, error)) ([][]string, error) {
	flat := make([]string, rows*cols)
	err := runCells(p, weight, len(flat), func(i int) error {
		v, err := cell(i/cols, i%cols)
		if err != nil {
			return err
		}
		flat[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := make([][]string, rows)
	for r := range out {
		out[r] = flat[r*cols : (r+1)*cols]
	}
	return out, nil
}
