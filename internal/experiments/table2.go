package experiments

import (
	"fmt"

	"repro/internal/trace"
)

// table2Targets are the characteristics the paper reports (Table 2).
var table2Targets = map[string]struct {
	size   int
	it, rt float64
	nt     float64
}{
	"SDSC-SP2": {128, 1055, 6687, 11},
	"HPC2N":    {240, 538, 17024, 6},
	"Lublin-1": {256, 771, 4862, 22},
	"Lublin-2": {256, 460, 1695, 39},
}

// Table2 regenerates the workload-characteristics table and shows how the
// generated surrogates compare with the paper's reported values. For the
// Lublin traces the paper's rt column is the actual runtime (they carry no
// user estimates); for the archive traces it is the requested time.
func Table2(sc Scale) *Table {
	tbl := &Table{
		Title:  "Table 2: job trace characteristics (generated vs paper)",
		Header: []string{"trace", "size", "it(s)", "it(paper)", "rt(s)", "rt(paper)", "nt", "nt(paper)", "runtime"},
		Notes:  []string{fmt.Sprintf("scale=%s jobs=%d seed=%d", sc.Name, sc.TraceJobs, sc.Seed)},
	}
	for _, tr := range Workloads(sc.TraceJobs, sc.Seed) {
		s := trace.ComputeStats(tr)
		want := table2Targets[tr.Name]
		rt := s.MeanRequest
		kind := "both"
		if isSynthetic(tr) {
			rt = s.MeanRuntime
			kind = "AR"
		}
		tbl.AddRow(tr.Name,
			fmt.Sprintf("%d", s.Procs),
			fmt.Sprintf("%.0f", s.MeanInterarrival), fmt.Sprintf("%.0f", want.it),
			fmt.Sprintf("%.0f", rt), fmt.Sprintf("%.0f", want.rt),
			fmt.Sprintf("%.1f", s.MeanProcs), fmt.Sprintf("%.0f", want.nt),
			kind)
	}
	return tbl
}
