package experiments

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"

	"repro/internal/pool"
)

// Runner executes one named experiment at a scale, fanning its cells across
// the given worker pool (nil = a private pool sized by the scale), and
// returns the rendered result.
type Runner func(sc Scale, p *pool.Pool, log io.Writer) (string, error)

// Registry maps experiment IDs (as used by `rlbf-exp -exp`) to runners. RL
// experiments share one model zoo per invocation of RunMany.
func registry(zoo *Zoo) map[string]Runner {
	return map[string]Runner{
		"fig1": func(sc Scale, p *pool.Pool, _ io.Writer) (string, error) {
			t, err := Figure1(sc, p)
			return render(t, err)
		},
		"table2": func(sc Scale, _ *pool.Pool, _ io.Writer) (string, error) {
			return Table2(sc).String(), nil
		},
		"fig4": func(sc Scale, p *pool.Pool, log io.Writer) (string, error) {
			t, err := Figure4(sc, zoo, p, log)
			return render(t, err)
		},
		"table4": func(sc Scale, p *pool.Pool, log io.Writer) (string, error) {
			t, err := Table4(sc, zoo, p, log)
			return render(t, err)
		},
		"table5": func(sc Scale, p *pool.Pool, log io.Writer) (string, error) {
			t, err := Table5(sc, zoo, p, log)
			return render(t, err)
		},
		"ablation-skip": func(sc Scale, p *pool.Pool, log io.Writer) (string, error) {
			t, err := AblationSkip(sc, p, log)
			return render(t, err)
		},
		"ablation-penalty": func(sc Scale, p *pool.Pool, log io.Writer) (string, error) {
			t, err := AblationPenalty(sc, p, log)
			return render(t, err)
		},
		"ablation-obs": func(sc Scale, p *pool.Pool, log io.Writer) (string, error) {
			t, err := AblationObs(sc, p, log)
			return render(t, err)
		},
		"conservative": func(sc Scale, p *pool.Pool, log io.Writer) (string, error) {
			t, err := ConservativeCompare(sc, p, log)
			return render(t, err)
		},
		"loadsweep": func(sc Scale, p *pool.Pool, log io.Writer) (string, error) {
			t, err := LoadSweep(sc, p, log)
			return render(t, err)
		},
		"scenario": func(sc Scale, p *pool.Pool, log io.Writer) (string, error) {
			t, err := ScenarioCompare(sc, zoo, p, log)
			return render(t, err)
		},
	}
}

func render(t *Table, err error) (string, error) {
	if err != nil {
		return "", err
	}
	return t.String(), nil
}

// Names lists the available experiment IDs.
func Names() []string {
	r := registry(NewZoo())
	names := make([]string, 0, len(r))
	for k := range r {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// RunMany executes the named experiments (or all of them for "all")
// concurrently against one shared model zoo and one shared worker pool sized
// by sc.Workers (GOMAXPROCS when 0), writing line-atomic, experiment-prefixed
// progress to log, and returns the rendered tables concatenated in request
// order. Cells are deterministically seeded and results assemble by index,
// so the returned string is byte-identical at any worker count.
func RunMany(names []string, sc Scale, log io.Writer) (string, error) {
	// One knob shards everything: whole-trace replay cells read sc.Shard
	// directly, eval-protocol sequences get it through the eval config. A
	// caller that configured Eval.Shard on its own (leaving Scale.Shard off)
	// keeps its setting.
	if sc.Shard.Enabled() {
		sc.Eval.Shard = sc.Shard
	}
	// Likewise for the scheduling scenario: one Scale knob reaches both the
	// training rollouts (trainConfig) and the eval-protocol engines.
	if sc.Scn.Enabled() {
		sc.Eval.Scn = sc.Scn
	}
	zoo := NewZoo()
	reg := registry(zoo)
	if len(names) == 1 && names[0] == "all" {
		names = Names()
	}
	for _, n := range names {
		if _, ok := reg[n]; !ok {
			return "", fmt.Errorf("experiments: unknown experiment %q (have %s)", n, strings.Join(Names(), ", "))
		}
	}

	p := pool.New(sc.workers())
	mux := newLogMux(log)
	outs := make([]string, len(names))
	errs := make([]error, len(names))
	var wg sync.WaitGroup
	for i, n := range names {
		wg.Add(1)
		go func(i int, name string, run Runner) {
			// Experiment coordinators hold no pool tokens themselves — they
			// only submit cells and block on results — so any number of them
			// can run without oversubscribing the machine.
			defer wg.Done()
			w := mux.prefix("[" + name + "] ")
			defer w.Flush()
			fmt.Fprintf(w, "== running %s (scale %s) ==\n", name, sc.Name)
			outs[i], errs[i] = run(sc, p, w)
			if errs[i] != nil {
				p.Abort() // fail-fast: stop sibling experiments' pending cells
			}
		}(i, n, reg[n])
	}
	wg.Wait()

	// Prefer the real failure over the errAborted echoes of experiments that
	// were cut short by it; among real failures, lowest index wins.
	for i, err := range errs {
		if err != nil && !errors.Is(err, errAborted) {
			return "", fmt.Errorf("experiments: %s: %w", names[i], err)
		}
	}
	for i, err := range errs {
		if err != nil {
			return "", fmt.Errorf("experiments: %s: %w", names[i], err)
		}
	}
	var out strings.Builder
	for _, s := range outs {
		out.WriteString(s)
		out.WriteString("\n")
	}
	return out.String(), nil
}
