package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Runner executes one named experiment at a scale and returns the rendered
// result.
type Runner func(sc Scale, log io.Writer) (string, error)

// Registry maps experiment IDs (as used by `rlbf-exp -exp`) to runners. RL
// experiments share one model zoo per invocation of RunMany.
func registry(zoo *Zoo) map[string]Runner {
	return map[string]Runner{
		"fig1": func(sc Scale, _ io.Writer) (string, error) {
			t, err := Figure1(sc)
			return render(t, err)
		},
		"table2": func(sc Scale, _ io.Writer) (string, error) {
			return Table2(sc).String(), nil
		},
		"fig4": func(sc Scale, log io.Writer) (string, error) {
			t, err := Figure4(sc, zoo, log)
			return render(t, err)
		},
		"table4": func(sc Scale, log io.Writer) (string, error) {
			t, err := Table4(sc, zoo, log)
			return render(t, err)
		},
		"table5": func(sc Scale, log io.Writer) (string, error) {
			t, err := Table5(sc, zoo, log)
			return render(t, err)
		},
		"ablation-skip": func(sc Scale, log io.Writer) (string, error) {
			t, err := AblationSkip(sc, log)
			return render(t, err)
		},
		"ablation-penalty": func(sc Scale, log io.Writer) (string, error) {
			t, err := AblationPenalty(sc, log)
			return render(t, err)
		},
		"ablation-obs": func(sc Scale, log io.Writer) (string, error) {
			t, err := AblationObs(sc, log)
			return render(t, err)
		},
		"conservative": func(sc Scale, log io.Writer) (string, error) {
			t, err := ConservativeCompare(sc, log)
			return render(t, err)
		},
		"loadsweep": func(sc Scale, log io.Writer) (string, error) {
			t, err := LoadSweep(sc, log)
			return render(t, err)
		},
	}
}

func render(t *Table, err error) (string, error) {
	if err != nil {
		return "", err
	}
	return t.String(), nil
}

// Names lists the available experiment IDs.
func Names() []string {
	r := registry(NewZoo())
	names := make([]string, 0, len(r))
	for k := range r {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// RunMany executes the named experiments (or all of them for "all") sharing
// one model zoo, writing progress to log, and returns the concatenated
// rendered tables.
func RunMany(names []string, sc Scale, log io.Writer) (string, error) {
	zoo := NewZoo()
	reg := registry(zoo)
	if len(names) == 1 && names[0] == "all" {
		names = Names()
	}
	var out strings.Builder
	for _, n := range names {
		run, ok := reg[n]
		if !ok {
			return "", fmt.Errorf("experiments: unknown experiment %q (have %s)", n, strings.Join(Names(), ", "))
		}
		if log != nil {
			fmt.Fprintf(log, "== running %s (scale %s) ==\n", n, sc.Name)
		}
		s, err := run(sc, log)
		if err != nil {
			return "", fmt.Errorf("experiments: %s: %w", n, err)
		}
		out.WriteString(s)
		out.WriteString("\n")
	}
	return out.String(), nil
}
