package experiments

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/pool"
	"repro/internal/sched"
)

// The acceptance bar of the parallel cell runner: the rendered output of the
// full experiment set must be byte-identical at any worker count. Cells are
// seeded per (cell, sequence) and assemble by index, so scheduling order
// must not be observable.
func TestRunManyDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("RL experiment skipped in -short mode")
	}
	sc := TinyScale()
	sc.TraceJobs = 300
	sc.Eval = evalCfg(2, 100)

	var ref string
	for _, w := range []int{1, 4, 8} {
		sc.Workers = w
		out, err := RunMany([]string{"all"}, sc, io.Discard)
		if err != nil {
			t.Fatalf("Workers=%d: %v", w, err)
		}
		if ref == "" {
			ref = out
			continue
		}
		if out != ref {
			t.Fatalf("RunMany output differs between Workers=1 and Workers=%d:\n--- w=1 ---\n%s\n--- w=%d ---\n%s",
				w, ref, w, out)
		}
	}
}

// countingLogWriter counts training announcements; safe for concurrent use.
type countingLogWriter struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (w *countingLogWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.Write(p)
}

func (w *countingLogWriter) trainings() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return strings.Count(w.buf.String(), "training RL-")
}

// TestZooSingleflight hammers one (policy, trace) key from many goroutines:
// exactly one training must run, every caller must get the same agent, and
// the path must be clean under -race (the CI race job runs this).
func TestZooSingleflight(t *testing.T) {
	if testing.Short() {
		t.Skip("RL experiment skipped in -short mode")
	}
	sc := TinyScale()
	sc.TraceJobs = 300
	sc.Eval = evalCfg(2, 100)
	tr := Workloads(sc.TraceJobs, sc.Seed)[0]
	zoo := NewZoo()
	log := &countingLogWriter{}

	const callers = 8
	agents := make([]*core.Agent, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			a, _, err := zoo.Get(fcfs(), tr, sc, log)
			if err != nil {
				t.Error(err)
				return
			}
			agents[i] = a
		}(i)
	}
	wg.Wait()
	for i := 1; i < callers; i++ {
		if agents[i] != agents[0] {
			t.Fatalf("caller %d got a different agent instance", i)
		}
	}
	if n := log.trainings(); n != 1 {
		t.Fatalf("%d trainings ran for one key, want 1 (singleflight)", n)
	}
}

// Concurrent prefetches from two "experiments" must also dedupe onto one
// training per key.
func TestZooPrefetchDedupes(t *testing.T) {
	if testing.Short() {
		t.Skip("RL experiment skipped in -short mode")
	}
	sc := TinyScale()
	sc.TraceJobs = 300
	sc.Eval = evalCfg(2, 100)
	workloads := Workloads(sc.TraceJobs, sc.Seed)[:2]
	zoo := NewZoo()
	p := pool.New(4)
	log := &countingLogWriter{}

	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := zoo.Prefetch(p, sc, log, []sched.Policy{fcfs()}, workloads); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if n := log.trainings(); n != len(workloads) {
		t.Fatalf("%d trainings for %d keys prefetched twice, want %d", n, len(workloads), len(workloads))
	}
}

func TestLogMuxPrefixesWholeLines(t *testing.T) {
	var buf bytes.Buffer
	mux := newLogMux(&buf)
	w := mux.prefix("[t4] ")
	fmt.Fprintf(w, "hello %d\nworld\n", 7)
	w2 := mux.prefix("[t5] ")
	fmt.Fprint(w2, "partial")
	fmt.Fprint(w2, " line\n")
	w2.Flush() // nothing pending: no-op
	fmt.Fprint(w, "tail with no newline")
	w.Flush()
	got := buf.String()
	want := "[t4] hello 7\n[t4] world\n[t5] partial line\n[t4] tail with no newline\n"
	if got != want {
		t.Fatalf("log mux output:\n%q\nwant:\n%q", got, want)
	}
}

// Interleaved concurrent writers must still emit whole prefixed lines.
func TestLogMuxConcurrent(t *testing.T) {
	var buf bytes.Buffer
	mux := newLogMux(&buf)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := mux.prefix(fmt.Sprintf("[w%d] ", i))
			for k := 0; k < 50; k++ {
				fmt.Fprintf(w, "line %d\n", k)
			}
		}(i)
	}
	wg.Wait()
	for _, line := range strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n") {
		if !strings.HasPrefix(line, "[w") || !strings.Contains(line, "] line ") {
			t.Fatalf("shredded log line: %q", line)
		}
	}
}

// RunMany must keep writing nothing when log is nil (io.Discard path) and
// still render concurrently.
func TestRunManyNilLog(t *testing.T) {
	sc := TinyScale()
	sc.TraceJobs = 250
	sc.Workers = 4
	out, err := RunMany([]string{"table2", "fig1", "loadsweep"}, sc, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Table 2", "Figure 1", "Load sweep"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q", want)
		}
	}
}

// After a cell fails, runCells must skip the cells it has not started yet
// (fail-fast) and still report the lowest-index error deterministically.
func TestRunCellsFailsFastAndDeterministically(t *testing.T) {
	p := pool.New(1) // serial: cells run in submission order
	var ran []int
	err := runCells(p, 1, 6, func(i int) error {
		ran = append(ran, i)
		if i >= 2 {
			return fmt.Errorf("cell %d failed", i)
		}
		return nil
	})
	if err == nil || err.Error() != "cell 2 failed" {
		t.Fatalf("err = %v, want lowest-index failure (cell 2)", err)
	}
	if len(ran) != 3 { // cells 0,1,2 ran; 3-5 skipped by the latch
		t.Fatalf("ran cells %v, want fail-fast skip after the first error", ran)
	}
}

// A group handed an already-aborted pool (a sibling experiment failed) must
// skip its cells AND report errAborted, so its experiment stops instead of
// proceeding on missing results (e.g. fig4 falling back to inline training).
func TestRunCellsReportsAbortFromSibling(t *testing.T) {
	p := pool.New(1)
	p.Abort()
	err := runCells(p, 1, 3, func(i int) error {
		t.Errorf("cell %d ran on an aborted pool", i)
		return nil
	})
	if !errors.Is(err, errAborted) {
		t.Fatalf("err = %v, want errAborted", err)
	}
}
