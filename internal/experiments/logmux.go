package experiments

import (
	"bytes"
	"io"
	"sync"
)

// logMux serializes progress logging from concurrent experiments and
// training cells onto one underlying writer. Each experiment gets a
// prefixWriter; whole lines are emitted atomically under the shared mutex,
// so `== running table4 ==` headers and epoch lines never shred even when
// several cells log at once.
type logMux struct {
	mu sync.Mutex
	w  io.Writer
}

func newLogMux(w io.Writer) *logMux {
	if w == nil {
		w = io.Discard
	}
	return &logMux{w: w}
}

// prefix returns a writer that emits each complete line prefixed with tag.
func (m *logMux) prefix(tag string) *prefixWriter {
	return &prefixWriter{mux: m, tag: []byte(tag)}
}

// prefixWriter buffers partial writes until a newline, then writes
// tag+line in one call under the mux mutex. It is safe for concurrent use
// by multiple goroutines (e.g. two training cells of one experiment).
type prefixWriter struct {
	mux *logMux
	tag []byte
	buf []byte
}

// Write implements io.Writer. Errors from the underlying writer are
// swallowed: progress logging must never fail an experiment.
func (w *prefixWriter) Write(p []byte) (int, error) {
	w.mux.mu.Lock()
	defer w.mux.mu.Unlock()
	w.buf = append(w.buf, p...)
	for {
		nl := bytes.IndexByte(w.buf, '\n')
		if nl < 0 {
			break
		}
		line := make([]byte, 0, len(w.tag)+nl+1)
		line = append(line, w.tag...)
		line = append(line, w.buf[:nl+1]...)
		w.mux.w.Write(line)
		w.buf = w.buf[nl+1:]
	}
	return len(p), nil
}

// Flush emits any trailing partial line (without a newline terminator).
func (w *prefixWriter) Flush() {
	w.mux.mu.Lock()
	defer w.mux.mu.Unlock()
	if len(w.buf) == 0 {
		return
	}
	line := append(append([]byte(nil), w.tag...), w.buf...)
	line = append(line, '\n')
	w.mux.w.Write(line)
	w.buf = w.buf[:0]
}
