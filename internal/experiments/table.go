package experiments

import (
	"fmt"
	"strings"
)

// Table is a rendered experiment result: a title, column headers and string
// cells, printable as aligned text or CSV.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	// Notes hold provenance (scale, seeds, expected shape vs the paper).
	Notes []string
}

// AddRow appends a row of cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the table as aligned monospace text.
func (t *Table) String() string {
	var sb strings.Builder
	if t.Title != "" {
		sb.WriteString(t.Title + "\n")
		sb.WriteString(strings.Repeat("=", len(t.Title)) + "\n")
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			if i < len(widths) {
				fmt.Fprintf(&sb, "%-*s", widths[i], c)
			} else {
				sb.WriteString(c)
			}
		}
		sb.WriteString("\n")
	}
	writeRow(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		sb.WriteString("note: " + n + "\n")
	}
	return sb.String()
}

// CSV renders the table as comma-separated values (headers first).
func (t *Table) CSV() string {
	var sb strings.Builder
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	cells := make([]string, len(t.Header))
	for i, h := range t.Header {
		cells[i] = esc(h)
	}
	sb.WriteString(strings.Join(cells, ",") + "\n")
	for _, row := range t.Rows {
		out := make([]string, len(row))
		for i, c := range row {
			out[i] = esc(c)
		}
		sb.WriteString(strings.Join(out, ",") + "\n")
	}
	return sb.String()
}

func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
