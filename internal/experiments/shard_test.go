package experiments

import (
	"testing"

	"repro/internal/pool"
	"repro/internal/shard"
)

// TestConservativeCompareSharded pins that switching the whole-trace replay
// cells to the sharded pipeline leaves the rendered table unchanged. The
// tiny workloads are saturated, so the overlap is set past the trace length
// — every window replays the full range and keeps its own slice — making
// the stitch structurally exact regardless of drain behaviour. The second
// run drives the cells through a one-token pool, pinning that the shard
// fan-out clamps to an undersized pool instead of deadlocking.
func TestConservativeCompareSharded(t *testing.T) {
	sc := TinyScale()
	sc.TraceJobs = 200
	want, err := ConservativeCompare(sc, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	sc.Shard = shard.Config{Window: 50, Overlap: 400, MinJobs: 1, Workers: 4}
	for name, p := range map[string]*pool.Pool{"private": nil, "one-token": pool.New(1)} {
		got, err := ConservativeCompare(sc, p, nil)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got.String() != want.String() {
			t.Fatalf("%s: sharded table differs from sequential:\n--- sequential ---\n%s\n--- sharded ---\n%s",
				name, want.String(), got.String())
		}
	}
}

// TestLoadSweepSharded is the same pin for the load-compression sweep.
func TestLoadSweepSharded(t *testing.T) {
	sc := TinyScale()
	sc.TraceJobs = 200
	want, err := LoadSweep(sc, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	sc.Shard = shard.Config{Window: 50, Overlap: 400, MinJobs: 1, Workers: 2}
	got, err := LoadSweep(sc, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.String() != want.String() {
		t.Fatalf("sharded load sweep differs from sequential:\n--- sequential ---\n%s\n--- sharded ---\n%s",
			want.String(), got.String())
	}
}
