package experiments

import (
	"repro/internal/core"
	"repro/internal/sched"
)

func fcfs() sched.Policy { return sched.FCFS{} }

func evalCfg(sequences, seqLen int) core.EvalConfig {
	return core.EvalConfig{Sequences: sequences, SeqLen: seqLen, Seed: 7}
}
