package experiments

import (
	"fmt"
	"io"

	"repro/internal/backfill"
	"repro/internal/core"
	"repro/internal/pool"
	"repro/internal/sched"
)

// Table5 reproduces the generality matrix (§4.4): a model trained on trace X
// (column RL-X) is applied to every trace Y (rows), under FCFS and SJF base
// policies. The EASY and EASY-AR columns are the heuristic baselines on the
// same sequences. Models are prefetched through the pool (sharing the zoo
// singleflight with Table 4), then every (base, Y, column) evaluation is an
// independent cell assembled by index.
//
// Expected shape (paper): RL-X transferred to Y still beats EASY in most
// cells, and the diagonal is not always the best column entry.
func Table5(sc Scale, zoo *Zoo, p *pool.Pool, log io.Writer) (*Table, error) {
	p = sc.cellPool(p)
	sc = sc.clampToPool(p)
	workloads := Workloads(sc.TraceJobs, sc.Seed)
	bases := []sched.Policy{sched.FCFS{}, sched.SJF{}}
	header := []string{"trace", "EASY", "EASY-AR"}
	for _, tr := range workloads {
		header = append(header, "RL-"+tr.Name)
	}
	tbl := &Table{
		Title:  "Table 5: generality — model trained on X (columns) applied to trace Y (rows)",
		Header: header,
		Notes: []string{
			fmt.Sprintf("scale=%s: eval %d sequences x %d jobs, seed %d",
				sc.Name, sc.Eval.Sequences, sc.Eval.SeqLen, sc.Eval.Seed),
			"paper shape: transferred models beat EASY in most cells",
		},
	}

	if err := zoo.Prefetch(p, sc, log, bases, workloads); err != nil {
		return nil, err
	}

	// Cell grid: one row per (base policy, trace Y), with the EASY and
	// EASY-AR baselines plus one transferred model per source trace X.
	nCols := 2 + len(workloads)
	grid, err := runGrid(p, len(bases)*len(workloads), nCols, func(r, ci int) (string, error) {
		base := bases[r/len(workloads)]
		y := workloads[r%len(workloads)]
		switch {
		case ci == 0: // EASY on user request time
			if isSynthetic(y) {
				return "-", nil
			}
			mean, _, err := core.EvaluateStrategy(y, base, backfill.NewEASY(backfill.RequestTime{}), sc.Eval)
			if err != nil {
				return "", err
			}
			return f2(mean), nil
		case ci == 1: // EASY-AR
			mean, _, err := core.EvaluateStrategy(y, base, backfill.NewEASY(backfill.ActualRuntime{}), sc.Eval)
			if err != nil {
				return "", err
			}
			return f2(mean), nil
		default: // model trained on X, applied to Y
			x := workloads[ci-2]
			agent, _, err := zoo.Get(base, x, sc, log)
			if err != nil {
				return "", err
			}
			mean, _, err := core.EvaluateAgent(agent, y, base, sc.Eval)
			if err != nil {
				return "", err
			}
			return f2(mean), nil
		}
	})
	if err != nil {
		return nil, err
	}

	for bi, base := range bases {
		tbl.AddRow(fmt.Sprintf("[%s as the base scheduling policy]", base.Name()))
		for yi, y := range workloads {
			tbl.Rows = append(tbl.Rows, append([]string{y.Name}, grid[bi*len(workloads)+yi]...))
		}
	}
	return tbl, nil
}
