package experiments

import (
	"fmt"
	"io"

	"repro/internal/backfill"
	"repro/internal/core"
	"repro/internal/sched"
)

// Table5 reproduces the generality matrix (§4.4): a model trained on trace X
// (column RL-X) is applied to every trace Y (rows), under FCFS and SJF base
// policies. The EASY and EASY-AR columns are the heuristic baselines on the
// same sequences.
//
// Expected shape (paper): RL-X transferred to Y still beats EASY in most
// cells, and the diagonal is not always the best column entry.
func Table5(sc Scale, zoo *Zoo, log io.Writer) (*Table, error) {
	workloads := Workloads(sc.TraceJobs, sc.Seed)
	header := []string{"trace", "EASY", "EASY-AR"}
	for _, tr := range workloads {
		header = append(header, "RL-"+tr.Name)
	}
	tbl := &Table{
		Title:  "Table 5: generality — model trained on X (columns) applied to trace Y (rows)",
		Header: header,
		Notes: []string{
			fmt.Sprintf("scale=%s: eval %d sequences x %d jobs, seed %d",
				sc.Name, sc.Eval.Sequences, sc.Eval.SeqLen, sc.Eval.Seed),
			"paper shape: transferred models beat EASY in most cells",
		},
	}

	for _, base := range []sched.Policy{sched.FCFS{}, sched.SJF{}} {
		tbl.AddRow(fmt.Sprintf("[%s as the base scheduling policy]", base.Name()))
		// Train (or fetch) one model per source trace under this base policy.
		for _, y := range workloads {
			row := []string{y.Name}
			if isSynthetic(y) {
				row = append(row, "-")
			} else {
				mean, _, err := core.EvaluateStrategy(y, base, backfill.NewEASY(backfill.RequestTime{}), sc.Eval)
				if err != nil {
					return nil, err
				}
				row = append(row, f2(mean))
			}
			mean, _, err := core.EvaluateStrategy(y, base, backfill.NewEASY(backfill.ActualRuntime{}), sc.Eval)
			if err != nil {
				return nil, err
			}
			row = append(row, f2(mean))
			for _, x := range workloads {
				agent, _, err := zoo.Get(base, x, sc, log)
				if err != nil {
					return nil, err
				}
				m, _, err := core.EvaluateAgent(agent, y, base, sc.Eval)
				if err != nil {
					return nil, err
				}
				row = append(row, f2(m))
			}
			tbl.Rows = append(tbl.Rows, row)
		}
	}
	return tbl, nil
}
