package experiments

import (
	"fmt"
	"io"

	"repro/internal/pool"
	"repro/internal/sched"
)

// Figure4 reproduces the training curves (§4.2): RLBackfilling trained with
// the FCFS base policy on each of the four traces; one row per epoch with
// the epoch's mean bsld (the y-axis of the paper's plots) and mean reward.
// The four trainings run as weighted cells on the worker pool (deduplicated
// with any concurrent experiment via the zoo singleflight); curves assemble
// in workload order from the zoo cache.
//
// Expected shape (paper): bsld falls / reward rises with epochs; the
// synthetic Lublin traces converge faster than the archive traces.
func Figure4(sc Scale, zoo *Zoo, p *pool.Pool, log io.Writer) (*Table, error) {
	p = sc.cellPool(p)
	sc = sc.clampToPool(p)
	workloads := Workloads(sc.TraceJobs, sc.Seed)
	header := []string{"epoch"}
	for _, tr := range workloads {
		header = append(header, tr.Name+" bsld", tr.Name+" reward")
	}
	tbl := &Table{
		Title:  "Figure 4: RLBackfilling training curves (FCFS base policy)",
		Header: header,
		Notes: []string{
			fmt.Sprintf("scale=%s: %d epochs x %d traj x %d jobs, MaxObs=%d", sc.Name, sc.Epochs, sc.TrajPerEpoch, sc.EpisodeLen, sc.MaxObs),
			"paper shape: bsld decreases with training; synthetic traces converge fastest",
		},
	}

	if err := zoo.Prefetch(p, sc, log, []sched.Policy{sched.FCFS{}}, workloads); err != nil {
		return nil, err
	}

	curves := make([][]string, sc.Epochs)
	for i := range curves {
		curves[i] = []string{fmt.Sprintf("%d", i)}
	}
	for _, tr := range workloads {
		_, curve, err := zoo.Get(sched.FCFS{}, tr, sc, log)
		if err != nil {
			return nil, err
		}
		for i := 0; i < sc.Epochs; i++ {
			if i < len(curve) {
				curves[i] = append(curves[i], f2(curve[i].MeanBSLD), fmt.Sprintf("%+.3f", curve[i].MeanReward))
			} else {
				curves[i] = append(curves[i], "-", "-")
			}
		}
	}
	tbl.Rows = curves
	return tbl, nil
}
