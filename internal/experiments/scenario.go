package experiments

import (
	"fmt"
	"io"

	"repro/internal/backfill"
	"repro/internal/core"
	"repro/internal/pool"
	"repro/internal/sched"
	"repro/internal/trace"
)

// DefaultScenario is the enriched-semantics configuration the scenario
// experiment defaults to: priority tiers honoured, with a starvation bound of
// 4x the requested runtime (kube-batch's StarvationThreshold shape — a job
// whose wait reaches four times its request becomes blocking).
func DefaultScenario() sched.Scenario {
	return sched.Scenario{Priorities: true, StarvationBound: 4}
}

// scenarioEnrichSpec is the workload enrichment the scenario experiment uses:
// proportional-with-lognormal-spread memory demands on a machine provisioned
// at the default per-processor capacity, and three geometric priority tiers.
func scenarioEnrichSpec(seed uint64) trace.EnrichSpec {
	return trace.EnrichSpec{MemDist: trace.MemDistProp, PriorityTiers: 3, Seed: seed}
}

// ScenarioWorkloads returns the archive surrogates (SDSC-SP2, HPC2N) enriched
// with memory demands and priority tiers — the prioritized procs+mem variants
// the scenario experiment schedules. Enrichment is deterministic in (n, seed),
// and the "+sc" trace names keep zoo models distinct from the classic ones.
func ScenarioWorkloads(n int, seed uint64) ([]*trace.Trace, error) {
	spec := scenarioEnrichSpec(seed)
	base := []*trace.Trace{
		trace.SyntheticSDSCSP2(n, seed+1),
		trace.SyntheticHPC2N(n, seed+2),
	}
	out := make([]*trace.Trace, len(base))
	for i, t := range base {
		e, err := trace.Enrich(t, spec)
		if err != nil {
			return nil, err
		}
		out[i] = e
	}
	return out, nil
}

// ScenarioCompare evaluates the enriched-scenario semantics end to end: each
// prioritized procs+mem surrogate is scheduled under FCFS/SJF/WFP3 crossed
// with EASY, conservative and slack backfilling — every engine running with
// priority tiers and the starvation bound active — plus an RL agent trained
// directly on the enriched workload (FCFS base, the paper's transfer choice).
// Columns are mean bounded slowdowns under the eval protocol, so the table
// reads like Table 4 restricted to the scenario dimensions.
func ScenarioCompare(sc Scale, zoo *Zoo, p *pool.Pool, log io.Writer) (*Table, error) {
	p = sc.cellPool(p)
	sc = sc.clampToPool(p)
	scn := sc.Scn
	if !scn.Enabled() {
		scn = DefaultScenario()
	}
	sc.Scn = scn
	sc.Eval.Scn = scn

	workloads, err := ScenarioWorkloads(sc.TraceJobs, sc.Seed)
	if err != nil {
		return nil, err
	}
	tbl := &Table{
		Title: "Scenario: bsld on prioritized procs+mem workloads (tiers + starvation bound)",
		Header: []string{"trace", "FCFS+EASY", "FCFS+CONS", "FCFS+SLACK",
			"SJF+EASY", "SJF+CONS", "SJF+SLACK",
			"WFP3+EASY", "WFP3+CONS", "WFP3+SLACK", "FCFS+RLBF"},
		Notes: []string{
			fmt.Sprintf("scale=%s: eval %d sequences x %d jobs, seed %d",
				sc.Name, sc.Eval.Sequences, sc.Eval.SeqLen, sc.Eval.Seed),
			fmt.Sprintf("scenario: priorities=%v starvation-bound=%.1f; mem dist %s, %d tiers",
				scn.Priorities, scn.StarvationBound, trace.MemDistProp, scenarioEnrichSpec(sc.Seed).PriorityTiers),
		},
	}

	if err := zoo.Prefetch(p, sc, log, []sched.Policy{sched.FCFS{}}, workloads); err != nil {
		return nil, err
	}

	cols := scenarioColumns(sc, zoo, log, scn)
	grid, err := runGrid(p, len(workloads), len(cols), func(wi, ci int) (string, error) {
		return cols[ci].eval(workloads[wi])
	})
	if err != nil {
		return nil, err
	}
	for wi, tr := range workloads {
		tbl.Rows = append(tbl.Rows, append([]string{tr.Name}, grid[wi]...))
	}
	return tbl, nil
}

// scenarioColumns builds the column evaluators: three backfilling heuristics
// per base policy (each scenario-aware) and the RL agent. Every cell
// constructs its own backfiller — they carry scratch state.
func scenarioColumns(sc Scale, zoo *Zoo, log io.Writer, scn sched.Scenario) []table4Column {
	heuristic := func(pol sched.Policy, mk func(est backfill.Estimator) backfill.Backfiller) table4Column {
		return table4Column{eval: func(tr *trace.Trace) (string, error) {
			mean, _, err := core.EvaluateStrategy(tr, pol, mk(estimatorFor(tr)), sc.Eval)
			if err != nil {
				return "", err
			}
			return f2(mean), nil
		}}
	}
	var cols []table4Column
	for _, pol := range []sched.Policy{sched.FCFS{}, sched.SJF{}, sched.WFP3{}} {
		pol := pol
		cols = append(cols,
			heuristic(pol, func(est backfill.Estimator) backfill.Backfiller {
				return &backfill.EASY{Est: est, Scn: scn}
			}),
			heuristic(pol, func(est backfill.Estimator) backfill.Backfiller {
				// Conservative needs no scenario knob: the engine's queue
				// order plus zero-slip reservations already honour tiers and
				// bounds (see internal/backfill/conservative.go).
				return backfill.NewConservative(est)
			}),
			heuristic(pol, func(est backfill.Estimator) backfill.Backfiller {
				s := backfill.NewSlack(est)
				s.Scn = scn
				return s
			}),
		)
	}
	cols = append(cols, table4Column{eval: func(tr *trace.Trace) (string, error) {
		agent, _, err := zoo.Get(sched.FCFS{}, tr, sc, log)
		if err != nil {
			return "", err
		}
		mean, _, err := core.EvaluateAgent(agent, tr, sched.FCFS{}, sc.Eval)
		if err != nil {
			return "", err
		}
		return f2(mean), nil
	}})
	return cols
}
