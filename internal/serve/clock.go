package serve

import (
	"sync"
	"time"
)

// Clock abstracts wall time so tests can drive the daemon deterministically.
// The scheduler maps wall time to simulation time through its TimeScale
// (simulated seconds per wall second); only Now participates in that
// mapping. After is used for the engine's next-event timer and the snapshot
// cadence — a clock may return a nil channel to disable timers entirely, in
// which case the scheduler advances only when commands arrive (the manual
// test clock does exactly that).
type Clock interface {
	Now() time.Time
	After(d time.Duration) <-chan time.Time
}

// RealClock is the production clock.
type RealClock struct{}

// Now implements Clock.
func (RealClock) Now() time.Time { return time.Now() }

// After implements Clock.
func (RealClock) After(d time.Duration) <-chan time.Time { return time.After(d) }

// ManualClock is a test clock advanced explicitly. After returns nil (a
// never-firing channel), so a scheduler on a manual clock is driven purely
// by commands: tests Advance the clock and then issue a Sync (or any other
// command) to make the engine catch up — which makes every schedule
// reproducible bit-for-bit, the property the crash-recovery and
// predicted-start tests pin.
type ManualClock struct {
	mu sync.Mutex
	t  time.Time
}

// NewManualClock starts a manual clock at the given instant.
func NewManualClock(at time.Time) *ManualClock { return &ManualClock{t: at} }

// Now implements Clock.
func (c *ManualClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

// After implements Clock: manual clocks have no timers.
func (c *ManualClock) After(time.Duration) <-chan time.Time { return nil }

// Advance moves the clock forward.
func (c *ManualClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}
