package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
)

// Submission validation. The limits are deliberately generous — they exist to
// reject garbage (negative sizes, NaN-ish giants that overflow downstream
// arithmetic, megabyte idempotency keys), not to encode site policy. Both the
// HTTP decode path and the direct Scheduler.Submit API enforce them, so a
// malformed request can never reach the WAL: replay would otherwise faithfully
// reproduce the poison on every recovery.
const (
	// MaxProcs bounds a single job's processor request (2^24; the engine's
	// free-list arithmetic stays far from int overflow).
	MaxProcs = 1 << 24
	// MaxMem bounds a job's memory request in abstract units.
	MaxMem = 1 << 40
	// MaxRuntime bounds runtime and the user estimate, in simulated seconds
	// (2^40 ≈ 35k simulated years; anything larger is garbage, and sums of
	// valid times still fit comfortably in int64).
	MaxRuntime = 1 << 40
	// MaxPriority bounds the priority tier magnitude.
	MaxPriority = 1 << 20
	// MaxIdemKey bounds the idempotency key length in bytes (it is persisted
	// in every snapshot and WAL submit record).
	MaxIdemKey = 256
	// maxRequestBody bounds the JSON body of a submission.
	maxRequestBody = 1 << 16
)

// ValidationError reports a rejected field. The HTTP layer renders it as a
// structured 400 body: {"error": "...", "field": "procs"}.
type ValidationError struct {
	Field string `json:"field"`
	Msg   string `json:"error"`
}

func (e *ValidationError) Error() string {
	return fmt.Sprintf("serve: invalid %s: %s", e.Field, e.Msg)
}

func invalidf(field, format string, args ...any) *ValidationError {
	return &ValidationError{Field: field, Msg: fmt.Sprintf(format, args...)}
}

// Validate checks a submission against the admission limits.
func (req *JobRequest) Validate() error {
	switch {
	case req.Procs <= 0:
		return invalidf("procs", "must be at least 1, got %d", req.Procs)
	case req.Procs > MaxProcs:
		return invalidf("procs", "must be at most %d, got %d", MaxProcs, req.Procs)
	}
	switch {
	case req.Mem < 0:
		return invalidf("mem", "must not be negative, got %d", req.Mem)
	case req.Mem > MaxMem:
		return invalidf("mem", "must be at most %d, got %d", MaxMem, req.Mem)
	}
	switch {
	case req.Runtime <= 0:
		return invalidf("runtime", "must be at least 1 second, got %d", req.Runtime)
	case req.Runtime > MaxRuntime:
		return invalidf("runtime", "must be at most %d, got %d", MaxRuntime, req.Runtime)
	}
	switch {
	case req.Request < 0:
		return invalidf("request", "must not be negative (0 means runtime), got %d", req.Request)
	case req.Request > MaxRuntime:
		return invalidf("request", "must be at most %d, got %d", MaxRuntime, req.Request)
	}
	if req.Priority < -MaxPriority || req.Priority > MaxPriority {
		return invalidf("priority", "must be within ±%d, got %d", MaxPriority, req.Priority)
	}
	if len(req.IdemKey) > MaxIdemKey {
		return invalidf("idempotency-key", "must be at most %d bytes, got %d", MaxIdemKey, len(req.IdemKey))
	}
	return nil
}

// decodeJobRequest reads and validates a submission body. Every failure mode
// maps to a *ValidationError so the HTTP layer answers 400 with a structured
// body instead of a bare string: oversized bodies, trailing garbage, unknown
// fields (likely a typo'd field silently ignored otherwise), JSON numbers
// that are not integers or overflow int64 (NaN and Inf are not JSON and fail
// here too), and out-of-range values.
func decodeJobRequest(w http.ResponseWriter, r *http.Request) (JobRequest, error) {
	var req JobRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return JobRequest{}, decodeError(err)
	}
	if err := dec.Decode(&struct{}{}); err != io.EOF {
		return JobRequest{}, invalidf("body", "trailing data after the JSON object")
	}
	req.IdemKey = r.Header.Get("Idempotency-Key")
	if err := req.Validate(); err != nil {
		return JobRequest{}, err
	}
	return req, nil
}

// decodeError converts a json decode failure into a field-scoped
// ValidationError where the standard library lets us.
func decodeError(err error) error {
	var typeErr *json.UnmarshalTypeError
	var syntaxErr *json.SyntaxError
	var maxErr *http.MaxBytesError
	switch {
	case errors.As(err, &typeErr):
		field := typeErr.Field
		if field == "" {
			field = "body"
		}
		return invalidf(field, "cannot parse %s as %s", typeErr.Value, typeErr.Type)
	case errors.As(err, &syntaxErr):
		return invalidf("body", "malformed JSON at offset %d", syntaxErr.Offset)
	case errors.As(err, &maxErr):
		return invalidf("body", "request body exceeds %d bytes", maxRequestBody)
	case errors.Is(err, io.EOF), errors.Is(err, io.ErrUnexpectedEOF):
		return invalidf("body", "empty or truncated JSON body")
	case strings.Contains(err.Error(), "unknown field"):
		return invalidf("body", "%v", err)
	default:
		return invalidf("body", "%v", err)
	}
}
