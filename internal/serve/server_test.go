package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/backfill"
	"repro/internal/replica"
	"repro/internal/sched"
	"repro/internal/wal"
)

// newTestDaemon spins a real-clock daemon at high time scale behind an
// httptest server.
func newTestDaemon(t *testing.T, procs int, scale float64) (*Scheduler, *Server, *httptest.Server) {
	t.Helper()
	s, err := New(Config{
		Name: "test", Procs: procs,
		Policy:     sched.FCFS{},
		Backfiller: backfill.NewConservative(backfill.RequestTime{}),
		TimeScale:  scale,
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	sv := NewServer(s, 64, 0)
	ts := httptest.NewServer(sv.Handler())
	t.Cleanup(ts.Close)
	return s, sv, ts
}

func post(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	data, _ := json.Marshal(body)
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp, buf.Bytes()
}

// TestServeConcurrentClients hammers one daemon with concurrent submitters,
// status pollers and cancelers, then drains and checks the books balance:
// every accepted job is either recorded (started), still queued or pending,
// or canceled. This is the primary -race -cpu 1,4 target.
func TestServeConcurrentClients(t *testing.T) {
	s, _, ts := newTestDaemon(t, 64, 10000)
	const workers, perWorker = 16, 25
	var wg sync.WaitGroup
	var accepted atomic.Int64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				resp, body := post(t, ts.URL+"/v1/jobs", JobRequest{Procs: 1 + (w+i)%8, Runtime: int64(10 + i*7)})
				if resp.StatusCode != http.StatusAccepted {
					t.Errorf("submit: status %d: %s", resp.StatusCode, body)
					return
				}
				accepted.Add(1)
				var res SubmitResult
				if err := json.Unmarshal(body, &res); err != nil {
					t.Errorf("submit response: %v", err)
					return
				}
				switch i % 3 {
				case 0:
					r, err := http.Get(fmt.Sprintf("%s/v1/jobs/%d", ts.URL, res.ID))
					if err != nil {
						t.Errorf("status: %v", err)
						return
					}
					r.Body.Close()
				case 1:
					req, _ := http.NewRequest(http.MethodDelete, fmt.Sprintf("%s/v1/jobs/%d", ts.URL, res.ID), nil)
					r, err := http.DefaultClient.Do(req)
					if err != nil {
						t.Errorf("cancel: %v", err)
						return
					}
					r.Body.Close()
				}
			}
		}(w)
	}
	wg.Wait()
	st, err := s.Drain()
	if err != nil {
		t.Fatal(err)
	}
	total := int64(len(st.Records) + len(st.Queued) + len(st.Pending) + len(st.Canceled))
	if accepted.Load() != int64(workers*perWorker) || total != accepted.Load() {
		t.Fatalf("accounting: accepted %d, records %d + queued %d + pending %d + canceled %d = %d",
			accepted.Load(), len(st.Records), len(st.Queued), len(st.Pending), len(st.Canceled), total)
	}
}

// TestServeDrainRejectsNewWork pins the drain contract: once draining,
// submissions get 503, health goes unhealthy, but status queries still work.
func TestServeDrainRejectsNewWork(t *testing.T) {
	s, _, ts := newTestDaemon(t, 8, 1000)
	resp, body := post(t, ts.URL+"/v1/jobs", JobRequest{Procs: 1, Runtime: 100})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, body)
	}
	var res SubmitResult
	json.Unmarshal(body, &res)

	s.StartDraining()
	resp, _ = post(t, ts.URL+"/v1/jobs", JobRequest{Procs: 1, Runtime: 100})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining: %d, want 503", resp.StatusCode)
	}
	r, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz while draining: %d, want 503", r.StatusCode)
	}
	r, err = http.Get(fmt.Sprintf("%s/v1/jobs/%d", ts.URL, res.ID))
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusOK {
		t.Fatalf("status while draining: %d, want 200", r.StatusCode)
	}
	if _, err := s.Drain(); err != nil {
		t.Fatal(err)
	}
	resp, _ = post(t, ts.URL+"/v1/jobs", JobRequest{Procs: 1, Runtime: 1})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit after drain: %d, want 503", resp.StatusCode)
	}
}

// TestServeStatusCodes checks the error paths of the HTTP surface.
func TestServeStatusCodes(t *testing.T) {
	s, _, ts := newTestDaemon(t, 8, 1000)
	defer s.Drain()

	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad body: %d, want 400", resp.StatusCode)
	}
	resp, _ = post(t, ts.URL+"/v1/jobs", JobRequest{Procs: 99, Runtime: 10})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("too-wide job: %d, want 400", resp.StatusCode)
	}
	r, err := http.Get(ts.URL + "/v1/jobs/424242")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job: %d, want 404", r.StatusCode)
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/424242", nil)
	r, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusConflict {
		t.Fatalf("cancel unknown job: %d, want 409", r.StatusCode)
	}
	r, err = http.Get(ts.URL + "/v1/jobs/zero")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad id: %d, want 400", r.StatusCode)
	}
}

// TestServeMetricsEndpoint pins the Prometheus exposition: after traffic the
// counters and latency histogram series must be present.
func TestServeMetricsEndpoint(t *testing.T) {
	s, _, ts := newTestDaemon(t, 8, 1000)
	defer s.Drain()
	for i := 0; i < 5; i++ {
		resp, body := post(t, ts.URL+"/v1/jobs", JobRequest{Procs: 1, Runtime: 60})
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit: %d %s", resp.StatusCode, body)
		}
	}
	r, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(r.Body)
	r.Body.Close()
	out := buf.String()
	for _, want := range []string{
		"rlbf_submissions_total 5",
		"# TYPE rlbf_decision_latency_seconds histogram",
		"rlbf_submit_latency_seconds_count 5",
		`rlbf_decision_latency_seconds_bucket{le="+Inf"}`,
		"# TYPE rlbf_queue_depth gauge",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("metrics output missing %q:\n%s", want, out)
		}
	}
}

// TestServeStatz checks the accounting endpoint over HTTP.
func TestServeStatz(t *testing.T) {
	s, _, ts := newTestDaemon(t, 8, 1000)
	defer s.Drain()
	post(t, ts.URL+"/v1/jobs", JobRequest{Procs: 4, Runtime: 300})
	r, err := http.Get(ts.URL + "/statz")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	var st Stats
	if err := json.NewDecoder(r.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Accepted != 1 || st.Procs != 8 || st.Name != "test" {
		t.Fatalf("statz %+v", st)
	}
}

// TestServeIdempotencyHeader pins the HTTP contract of the Idempotency-Key
// header: a replayed key gets the original job back and the daemon accepts
// only one copy.
func TestServeIdempotencyHeader(t *testing.T) {
	s, _, ts := newTestDaemon(t, 8, 1000)
	defer s.Drain()

	submit := func() SubmitResult {
		t.Helper()
		data, _ := json.Marshal(JobRequest{Procs: 1, Runtime: 60})
		req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/jobs", bytes.NewReader(data))
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("Idempotency-Key", "retry-1")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit: %d", resp.StatusCode)
		}
		var res SubmitResult
		if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
			t.Fatal(err)
		}
		return res
	}
	first := submit()
	if first.Duplicate {
		t.Fatalf("first submission marked duplicate: %+v", first)
	}
	second := submit()
	if !second.Duplicate || second.ID != first.ID {
		t.Fatalf("retry got %+v, want duplicate of job %d", second, first.ID)
	}
	stats, err := s.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Accepted != 1 {
		t.Fatalf("accepted %d, want 1", stats.Accepted)
	}
}

// TestServeLoadShedding pins the overload contract: once the admission queue
// is full, further requests are shed immediately with 429 + Retry-After
// instead of being parked, and the parked requests still complete.
func TestServeLoadShedding(t *testing.T) {
	clk := NewManualClock(time.Unix(1700000000, 0))
	s, err := New(testConfig(clk))
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	defer s.Drain()
	sv := NewServer(s, 1, 1) // one handler slot, one waiter
	ts := httptest.NewServer(sv.Handler())
	defer ts.Close()

	// Hold the only slot so HTTP requests park in Acquire.
	if sv.slots.Acquire(1) == 0 {
		t.Fatal("could not take the handler slot")
	}
	done := make(chan int, 2)
	for i := 0; i < 2; i++ {
		go func() {
			r, err := http.Get(ts.URL + "/statz")
			if err != nil {
				done <- -1
				return
			}
			r.Body.Close()
			done <- r.StatusCode
		}()
	}
	for i := 0; sv.inflight.Load() < 2 && i < 400; i++ {
		time.Sleep(5 * time.Millisecond)
	}
	if sv.inflight.Load() != 2 {
		t.Fatalf("inflight %d, want 2 parked requests", sv.inflight.Load())
	}

	r, err := http.Get(ts.URL + "/statz")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow request: %d, want 429", r.StatusCode)
	}
	if r.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	if s.mShed.Value() != 1 {
		t.Fatalf("shed counter %d, want 1", s.mShed.Value())
	}

	sv.slots.Release(1)
	for i := 0; i < 2; i++ {
		if code := <-done; code != http.StatusOK {
			t.Fatalf("parked request finished with %d, want 200", code)
		}
	}
}

// TestServeHealthzDegraded pins that a durability failure is surfaced through
// /healthz and /metrics while the daemon keeps accepting work.
func TestServeHealthzDegraded(t *testing.T) {
	dir := t.TempDir()
	ffs := wal.NewFaultFS(wal.OSFS{})
	clk := NewManualClock(time.Unix(1700000000, 0))
	cfg := walConfig(clk, dir, ffs, 0)
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	sv := NewServer(s, 8, 0)
	ts := httptest.NewServer(sv.Handler())
	defer ts.Close()

	health := func() replica.Health {
		t.Helper()
		r, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer r.Body.Close()
		if r.StatusCode != http.StatusOK {
			t.Fatalf("healthz: %d, want 200", r.StatusCode)
		}
		var h replica.Health
		if err := json.NewDecoder(r.Body).Decode(&h); err != nil {
			t.Fatal(err)
		}
		return h
	}
	if h := health(); h.Status != "ok" || h.Role != "primary" || h.Gen == 0 {
		t.Fatalf("healthy daemon reports %+v", h)
	}

	ffs.FailSyncsAfter(0)
	resp, body := post(t, ts.URL+"/v1/jobs", JobRequest{Procs: 1, Runtime: 60})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit during disk failure: %d %s (degraded mode must keep accepting)", resp.StatusCode, body)
	}
	if h := health(); h.Status != "degraded" || h.Reason == "" {
		t.Fatalf("degraded daemon reports %+v", h)
	}
	r, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(r.Body)
	r.Body.Close()
	if !strings.Contains(buf.String(), "rlbf_degraded 1") {
		t.Fatal("metrics missing rlbf_degraded 1")
	}
	ffs.FailSyncsAfter(-1) // let the drain snapshot land
	if _, err := s.Drain(); err != nil {
		t.Fatal(err)
	}
}
