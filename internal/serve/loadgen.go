package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
	"repro/internal/stats"
)

// LoadConfig drives a load-generation run against a live daemon.
type LoadConfig struct {
	// BaseURL is the daemon address, e.g. http://127.0.0.1:8080.
	BaseURL string
	// Submitters is the number of concurrent client goroutines.
	Submitters int
	// Duration bounds the wall-clock run.
	Duration time.Duration
	// Rate is the target aggregate submission rate in jobs/second; 0 means
	// unpaced (each submitter loops as fast as the daemon replies).
	Rate float64
	// MaxProcs caps the processor width of generated jobs (default 8).
	MaxProcs int
	// MaxRuntime caps generated runtimes in simulated seconds (default 3600).
	MaxRuntime int64
	// StatusEvery issues a status query after every Nth submission per
	// worker (0 disables status traffic).
	StatusEvery int
	// CancelEvery cancels every Nth submitted job per worker (0 disables
	// cancellation traffic).
	CancelEvery int
	// Seed makes the generated workload reproducible.
	Seed uint64
}

// LoadReport summarizes a load run from the client's side.
type LoadReport struct {
	Submitters    int     `json:"submitters"`
	DurationSec   float64 `json:"duration_sec"`
	Submitted     int64   `json:"submitted"`
	Rejected      int64   `json:"rejected"`
	Errors        int64   `json:"errors"`
	StatusQueries int64   `json:"status_queries"`
	Cancels       int64   `json:"cancels"`
	Throughput    float64 `json:"throughput_jobs_per_sec"`
	SubmitP50Ms   float64 `json:"submit_p50_ms"`
	SubmitP90Ms   float64 `json:"submit_p90_ms"`
	SubmitP99Ms   float64 `json:"submit_p99_ms"`
	SubmitMaxMs   float64 `json:"submit_max_ms"`
	Server        *Stats  `json:"server,omitempty"`
}

// RunLoad floods the daemon at BaseURL with concurrent submitters and
// reports client-observed latency quantiles plus the server's own
// accounting. This is the harness behind the serve-load CI gate: thousands
// of goroutines sharing one pooled HTTP client, each submitting a random but
// seed-reproducible job stream, optionally mixing in status and cancel
// traffic to exercise every command path under contention.
func RunLoad(cfg LoadConfig) (*LoadReport, error) {
	if cfg.Submitters < 1 {
		cfg.Submitters = 1
	}
	if cfg.MaxProcs < 1 {
		cfg.MaxProcs = 8
	}
	if cfg.MaxRuntime < 1 {
		cfg.MaxRuntime = 3600
	}
	client := &http.Client{
		Timeout: 30 * time.Second,
		Transport: &http.Transport{
			MaxIdleConns:        cfg.Submitters,
			MaxIdleConnsPerHost: cfg.Submitters,
		},
	}
	// Client-side latency histogram: reuse the daemon's lock-free histogram
	// so thousands of submitters record without a contended mutex.
	hist := metrics.NewRegistry().NewHistogram("loadgen_submit_seconds", "client submit latency", nil)
	var submitted, rejected, errCount, statusQ, cancels atomic.Int64

	var pace time.Duration
	if cfg.Rate > 0 {
		pace = time.Duration(float64(cfg.Submitters) / cfg.Rate * float64(time.Second))
	}
	deadline := time.Now().Add(cfg.Duration)
	var wg sync.WaitGroup
	for w := 0; w < cfg.Submitters; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := stats.NewRNG(cfg.Seed + uint64(w)*0x9e3779b97f4a7c15)
			if pace > 0 {
				// Stagger worker phases so paced submitters do not arrive in
				// lockstep bursts.
				time.Sleep(time.Duration(rng.Uint64() % uint64(pace)))
			}
			n := 0
			for time.Now().Before(deadline) {
				req := JobRequest{
					Procs:   1 + int(rng.Uint64()%uint64(cfg.MaxProcs)),
					Runtime: 1 + int64(rng.Uint64()%uint64(cfg.MaxRuntime)),
				}
				req.Request = req.Runtime + int64(rng.Uint64()%600)
				t0 := time.Now()
				res, code, err := postJob(client, cfg.BaseURL, req)
				hist.Observe(time.Since(t0).Seconds())
				switch {
				case err != nil:
					errCount.Add(1)
				case code == http.StatusAccepted:
					submitted.Add(1)
				default:
					rejected.Add(1)
				}
				n++
				if err == nil && res != nil {
					if cfg.StatusEvery > 0 && n%cfg.StatusEvery == 0 {
						if getStatus(client, cfg.BaseURL, res.ID) == nil {
							statusQ.Add(1)
						}
					}
					if cfg.CancelEvery > 0 && n%cfg.CancelEvery == 0 {
						if cancelJob(client, cfg.BaseURL, res.ID) == nil {
							cancels.Add(1)
						}
					}
				}
				if pace > 0 {
					time.Sleep(pace)
				}
			}
		}(w)
	}
	wg.Wait()

	rep := &LoadReport{
		Submitters:    cfg.Submitters,
		DurationSec:   cfg.Duration.Seconds(),
		Submitted:     submitted.Load(),
		Rejected:      rejected.Load(),
		Errors:        errCount.Load(),
		StatusQueries: statusQ.Load(),
		Cancels:       cancels.Load(),
		Throughput:    float64(submitted.Load()) / cfg.Duration.Seconds(),
		SubmitP50Ms:   hist.Quantile(0.5) * 1000,
		SubmitP90Ms:   hist.Quantile(0.9) * 1000,
		SubmitP99Ms:   hist.Quantile(0.99) * 1000,
		SubmitMaxMs:   hist.Max() * 1000,
	}
	if st, err := getStatz(client, cfg.BaseURL); err == nil {
		rep.Server = st
	}
	return rep, nil
}

func postJob(c *http.Client, base string, req JobRequest) (*SubmitResult, int, error) {
	body, _ := json.Marshal(req)
	resp, err := c.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, 0, err
	}
	defer drainClose(resp)
	if resp.StatusCode != http.StatusAccepted {
		return nil, resp.StatusCode, nil
	}
	var res SubmitResult
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		return nil, resp.StatusCode, err
	}
	return &res, resp.StatusCode, nil
}

func getStatus(c *http.Client, base string, id int) error {
	resp, err := c.Get(fmt.Sprintf("%s/v1/jobs/%d", base, id))
	if err != nil {
		return err
	}
	drainClose(resp)
	return nil
}

func cancelJob(c *http.Client, base string, id int) error {
	req, err := http.NewRequest(http.MethodDelete, fmt.Sprintf("%s/v1/jobs/%d", base, id), nil)
	if err != nil {
		return err
	}
	resp, err := c.Do(req)
	if err != nil {
		return err
	}
	drainClose(resp)
	return nil
}

func getStatz(c *http.Client, base string) (*Stats, error) {
	resp, err := c.Get(base + "/statz")
	if err != nil {
		return nil, err
	}
	defer drainClose(resp)
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, err
	}
	return &st, nil
}

func drainClose(resp *http.Response) {
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
}
