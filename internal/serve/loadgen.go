package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
	"repro/internal/stats"
)

// LoadConfig drives a load-generation run against a live daemon.
type LoadConfig struct {
	// BaseURL is the daemon address, e.g. http://127.0.0.1:8080.
	BaseURL string
	// Submitters is the number of concurrent client goroutines.
	Submitters int
	// Duration bounds the wall-clock run.
	Duration time.Duration
	// Rate is the target aggregate submission rate in jobs/second; 0 means
	// unpaced (each submitter loops as fast as the daemon replies).
	Rate float64
	// MaxProcs caps the processor width of generated jobs (default 8).
	MaxProcs int
	// MaxRuntime caps generated runtimes in simulated seconds (default 3600).
	MaxRuntime int64
	// StatusEvery issues a status query after every Nth submission per
	// worker (0 disables status traffic).
	StatusEvery int
	// CancelEvery cancels every Nth submitted job per worker (0 disables
	// cancellation traffic).
	CancelEvery int
	// Seed makes the generated workload reproducible.
	Seed uint64
	// Retries is the retry budget per logical submission: connection
	// failures, 5xx responses and 429 load shedding are retried with
	// jittered exponential backoff (honoring Retry-After) up to this many
	// extra attempts. Every submission carries an idempotency key, so a
	// retry whose predecessor actually landed cannot double-enqueue. 0
	// disables retries.
	Retries int
}

// LoadReport summarizes a load run from the client's side.
type LoadReport struct {
	Submitters    int     `json:"submitters"`
	DurationSec   float64 `json:"duration_sec"`
	Submitted     int64   `json:"submitted"`
	Rejected      int64   `json:"rejected"`
	Errors        int64   `json:"errors"`
	Retries       int64   `json:"retries"`
	Shed          int64   `json:"shed"`
	Duplicates    int64   `json:"duplicates"`
	StatusQueries int64   `json:"status_queries"`
	Cancels       int64   `json:"cancels"`
	Throughput    float64 `json:"throughput_jobs_per_sec"`
	SubmitP50Ms   float64 `json:"submit_p50_ms"`
	SubmitP90Ms   float64 `json:"submit_p90_ms"`
	SubmitP99Ms   float64 `json:"submit_p99_ms"`
	SubmitMaxMs   float64 `json:"submit_max_ms"`
	Server        *Stats  `json:"server,omitempty"`
}

// RunLoad floods the daemon at BaseURL with concurrent submitters and
// reports client-observed latency quantiles plus the server's own
// accounting. This is the harness behind the serve-load CI gate: thousands
// of goroutines sharing one pooled HTTP client, each submitting a random but
// seed-reproducible job stream, optionally mixing in status and cancel
// traffic to exercise every command path under contention.
func RunLoad(cfg LoadConfig) (*LoadReport, error) {
	if cfg.Submitters < 1 {
		cfg.Submitters = 1
	}
	if cfg.MaxProcs < 1 {
		cfg.MaxProcs = 8
	}
	if cfg.MaxRuntime < 1 {
		cfg.MaxRuntime = 3600
	}
	client := &http.Client{
		Timeout: 30 * time.Second,
		Transport: &http.Transport{
			MaxIdleConns:        cfg.Submitters,
			MaxIdleConnsPerHost: cfg.Submitters,
		},
	}
	// Client-side latency histogram: reuse the daemon's lock-free histogram
	// so thousands of submitters record without a contended mutex.
	hist := metrics.NewRegistry().NewHistogram("loadgen_submit_seconds", "client submit latency", nil)
	var submitted, rejected, errCount, statusQ, cancels, retries, shed, dups atomic.Int64

	var pace time.Duration
	if cfg.Rate > 0 {
		pace = time.Duration(float64(cfg.Submitters) / cfg.Rate * float64(time.Second))
	}
	deadline := time.Now().Add(cfg.Duration)
	var wg sync.WaitGroup
	for w := 0; w < cfg.Submitters; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := stats.NewRNG(cfg.Seed + uint64(w)*0x9e3779b97f4a7c15)
			if pace > 0 {
				// Stagger worker phases so paced submitters do not arrive in
				// lockstep bursts.
				time.Sleep(time.Duration(rng.Uint64() % uint64(pace)))
			}
			n := 0
			for time.Now().Before(deadline) {
				req := JobRequest{
					Procs:   1 + int(rng.Uint64()%uint64(cfg.MaxProcs)),
					Runtime: 1 + int64(rng.Uint64()%uint64(cfg.MaxRuntime)),
				}
				req.Request = req.Runtime + int64(rng.Uint64()%600)
				req.IdemKey = fmt.Sprintf("lg-%x-%d-%d", cfg.Seed, w, n)
				t0 := time.Now()
				res, code, nTries, err := submitRetry(client, cfg, req, rng, deadline, &shed)
				hist.Observe(time.Since(t0).Seconds())
				retries.Add(nTries)
				switch {
				case err != nil:
					errCount.Add(1)
				case code == http.StatusAccepted:
					submitted.Add(1)
					if res != nil && res.Duplicate {
						dups.Add(1)
					}
				default:
					rejected.Add(1)
				}
				n++
				if err == nil && res != nil {
					if cfg.StatusEvery > 0 && n%cfg.StatusEvery == 0 {
						if getStatus(client, cfg.BaseURL, res.ID) == nil {
							statusQ.Add(1)
						}
					}
					if cfg.CancelEvery > 0 && n%cfg.CancelEvery == 0 {
						if cancelJob(client, cfg.BaseURL, res.ID) == nil {
							cancels.Add(1)
						}
					}
				}
				if pace > 0 {
					time.Sleep(pace)
				}
			}
		}(w)
	}
	wg.Wait()

	rep := &LoadReport{
		Submitters:    cfg.Submitters,
		DurationSec:   cfg.Duration.Seconds(),
		Submitted:     submitted.Load(),
		Rejected:      rejected.Load(),
		Errors:        errCount.Load(),
		Retries:       retries.Load(),
		Shed:          shed.Load(),
		Duplicates:    dups.Load(),
		StatusQueries: statusQ.Load(),
		Cancels:       cancels.Load(),
		Throughput:    float64(submitted.Load()) / cfg.Duration.Seconds(),
		SubmitP50Ms:   hist.Quantile(0.5) * 1000,
		SubmitP90Ms:   hist.Quantile(0.9) * 1000,
		SubmitP99Ms:   hist.Quantile(0.99) * 1000,
		SubmitMaxMs:   hist.Max() * 1000,
	}
	if st, err := getStatz(client, cfg.BaseURL); err == nil {
		rep.Server = st
	}
	return rep, nil
}

// submitRetry posts one logical submission, retrying transport failures,
// 429 load shedding and 5xx responses with jittered exponential backoff
// (10ms doubling to 1s, Retry-After honored as a floor) until the attempt
// budget or the run deadline runs out. It returns the total number of
// retries taken; the caller classifies the final outcome.
func submitRetry(c *http.Client, cfg LoadConfig, req JobRequest, rng *stats.RNG, deadline time.Time, shed *atomic.Int64) (*SubmitResult, int, int64, error) {
	var nRetries int64
	backoff := 10 * time.Millisecond
	for {
		res, code, retryAfter, err := postJob(c, cfg.BaseURL, req)
		if code == http.StatusTooManyRequests {
			shed.Add(1)
		}
		retryable := err != nil || code == http.StatusTooManyRequests || code >= 500
		if !retryable || nRetries >= int64(cfg.Retries) {
			return res, code, nRetries, err
		}
		// Jitter in [backoff/2, 3*backoff/2) decorrelates the retry storm a
		// daemon restart would otherwise face.
		d := backoff/2 + time.Duration(rng.Uint64()%uint64(backoff))
		if retryAfter > d {
			d = retryAfter
		}
		if time.Now().Add(d).After(deadline) {
			return res, code, nRetries, err
		}
		time.Sleep(d)
		if backoff < time.Second {
			backoff *= 2
		}
		nRetries++
	}
}

func postJob(c *http.Client, base string, req JobRequest) (*SubmitResult, int, time.Duration, error) {
	body, _ := json.Marshal(req)
	hreq, err := http.NewRequest(http.MethodPost, base+"/v1/jobs", bytes.NewReader(body))
	if err != nil {
		return nil, 0, 0, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	if req.IdemKey != "" {
		hreq.Header.Set("Idempotency-Key", req.IdemKey)
	}
	resp, err := c.Do(hreq)
	if err != nil {
		return nil, 0, 0, err
	}
	defer drainClose(resp)
	var retryAfter time.Duration
	if s := resp.Header.Get("Retry-After"); s != "" {
		if secs, err := strconv.Atoi(s); err == nil && secs > 0 {
			retryAfter = time.Duration(secs) * time.Second
		}
	}
	if resp.StatusCode != http.StatusAccepted {
		return nil, resp.StatusCode, retryAfter, nil
	}
	var res SubmitResult
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		return nil, resp.StatusCode, retryAfter, err
	}
	return &res, resp.StatusCode, retryAfter, nil
}

func getStatus(c *http.Client, base string, id int) error {
	resp, err := c.Get(fmt.Sprintf("%s/v1/jobs/%d", base, id))
	if err != nil {
		return err
	}
	drainClose(resp)
	return nil
}

func cancelJob(c *http.Client, base string, id int) error {
	req, err := http.NewRequest(http.MethodDelete, fmt.Sprintf("%s/v1/jobs/%d", base, id), nil)
	if err != nil {
		return err
	}
	resp, err := c.Do(req)
	if err != nil {
		return err
	}
	drainClose(resp)
	return nil
}

func getStatz(c *http.Client, base string) (*Stats, error) {
	resp, err := c.Get(base + "/statz")
	if err != nil {
		return nil, err
	}
	defer drainClose(resp)
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, err
	}
	return &st, nil
}

func drainClose(resp *http.Response) {
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
}
