package serve

import (
	"errors"
	"fmt"
	"log"
	"net/http"
	"os"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
	"repro/internal/replica"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/wal"
)

// Warm-standby replication, serve side (DESIGN.md §14). The primary's run
// goroutine mirrors every WAL append into the replica.Feed and publishes at
// round boundaries, so batch ends always coincide with history-digest
// samples; a Follower tails the feed, applies each batch through the same
// deterministic kernel, and byte-verifies its derived record stream against
// the primary's digest continuously. Failover is lease-based: a follower
// that cannot make stream progress for Config.Lease holds an election among
// its peers and, if best positioned, promotes — bumping the WAL generation,
// which doubles as the fencing token a restarting zombie primary checks
// before accepting writes.

// --- primary-side hooks (run goroutine only) ---

// publishRepl hands the WAL payloads appended since the last publish to the
// replication feed, stamped with the history cursor as of now. Called at
// round boundaries (end of advanceTo, after a cancel append), so a batch
// always ends at an instant where the digest is well-defined.
func (s *Scheduler) publishRepl() {
	if s.feed == nil || len(s.repPend) == 0 {
		return
	}
	n := len(s.repPend)
	s.feed.Publish(s.repPend, s.histCount, s.histDigest)
	s.repPend = nil
	s.mReplPublished.Add(int64(n))
	w := replLiveWindow(s.cfg)
	s.mReplFollowers.Set(int64(s.feed.Followers(w)))
	s.mReplLag.Set(int64(s.feed.Lag(w)))
}

// replWait is the semi-synchronous ack: after an fsync'd client-visible
// append, the primary waits (bounded) for a live follower to durably apply
// it, so an acked job survives the loss of this host. With no live follower
// the wait is skipped — replication is then async by necessity; a timeout
// degrades this one ack to async and is counted.
func (s *Scheduler) replWait() {
	if s.feed == nil || s.wlog == nil || s.role.Load() != RolePrimary {
		return
	}
	w := replLiveWindow(s.cfg)
	if !s.feed.HasFollower(w) {
		return
	}
	if !s.feed.WaitApplied(s.walGen, s.wlog.Records(), s.cfg.ReplAckTimeout, w) {
		s.mReplAckTimeouts.Inc()
		log.Printf("serve: %s: semi-sync replication ack timed out after %v; this ack degrades to async",
			s.cfg.Name, s.cfg.ReplAckTimeout)
	}
}

// HistoryFrames serves the first `to` history-log records for a follower
// bootstrap (replica.HistorySource). It reads the file rather than run-
// goroutine state: the bootstrap snapshot is only published after its
// history prefix was synced, so the file always holds at least `to` intact
// records by the time anyone asks.
func (s *Scheduler) HistoryFrames(to int) ([][]byte, error) {
	res, err := wal.Replay(s.fs, s.cfg.HistoryPath)
	if err != nil {
		return nil, err
	}
	if len(res.Records) < to {
		return nil, fmt.Errorf("serve: history holds %d records, bootstrap needs %d", len(res.Records), to)
	}
	return res.Records[:to], nil
}

// handleApply mirrors one replication batch (run goroutine, follower role):
// append each payload verbatim to the local WAL, apply it through the engine
// exactly as Recover's replay would, then compare the derived history cursor
// against the primary's. Divergence is a refusal: the replica stops rather
// than serve (or later promote) a forked history.
func (s *Scheduler) handleApply(b *applyBatch) (int, error) {
	if s.role.Load() != RoleFollower {
		return 0, ErrNotFollower
	}
	if s.degraded.Load() {
		return 0, fmt.Errorf("serve: follower degraded: %s", s.DegradedReason())
	}
	for i, p := range b.payloads {
		rec, err := decodeWalRec(p)
		if err != nil {
			return 0, fmt.Errorf("serve: apply batch record %d: %v", i, err)
		}
		switch rec.kind {
		case walKindSubmit:
			if err := s.eng.Inject(rec.job); err != nil {
				return 0, fmt.Errorf("serve: apply submit of job %d: %v", rec.job.ID, err)
			}
			s.submitted[rec.job.ID] = rec.job
			if rec.idem != "" {
				s.idem[rec.idem] = rec.job.ID
			}
			if rec.job.ID >= s.nextID {
				s.nextID = rec.job.ID + 1
			}
			s.mSubmits.Inc()
			if rec.job.Submit > s.replClock {
				s.replClock = rec.job.Submit
			}
		case walKindCancel:
			s.stepTo(rec.time)
			if s.eng.Cancel(rec.id) {
				s.mCancels.Inc()
			}
			s.canceledIDs[rec.id] = true
			if rec.time > s.replClock {
				s.replClock = rec.time
			}
		case walKindAdvance:
			s.stepTo(rec.time)
			if rec.time > s.replClock {
				s.replClock = rec.time
			}
		default:
			return 0, fmt.Errorf("serve: apply batch record %d has kind %d, not a command", i, rec.kind)
		}
		s.walAppend(p)
	}
	s.syncRecords()
	s.walSync() // the ack we send upstream must not outrun our own disk
	if s.degraded.Load() {
		return 0, fmt.Errorf("serve: follower degraded: %s", s.DegradedReason())
	}
	// The continuous byte-verification: our re-derived record stream must
	// carry the primary's exact digest at every batch boundary.
	if s.histCount != b.histCount || s.histDigest != b.histDigest {
		err := fmt.Errorf("%w: local %d records digest %08x vs primary %d records digest %08x",
			ErrReplicaDivergence, s.histCount, s.histDigest, b.histCount, b.histDigest)
		log.Printf("serve: %s: %v", s.cfg.Name, err)
		return 0, err
	}
	s.publishRepl() // keep our own feed current for chained followers / post-promotion rejoins
	s.mQueue.Set(int64(s.eng.QueueLen()))
	s.mFree.Set(int64(s.eng.FreeProcs()))
	s.mRunning.Set(int64(s.eng.RunningCount()))
	if b.rotateTo != 0 && b.rotateTo != s.walGen {
		s.compactTo(b.rotateTo)
		if s.degraded.Load() {
			return 0, fmt.Errorf("serve: follower rotation: %s", s.DegradedReason())
		}
	}
	if s.wlog == nil {
		return 0, errors.New("serve: follower wal closed")
	}
	return s.wlog.Records(), nil
}

// handlePromote (run goroutine) turns a verified follower into the primary.
func (s *Scheduler) handlePromote() error {
	if s.role.Load() != RoleFollower {
		return ErrNotFollower
	}
	if s.degraded.Load() {
		return fmt.Errorf("serve: promote: degraded: %s", s.DegradedReason())
	}
	// Re-anchor the wall→sim adapter: simulation resumes from the furthest
	// instant the stream proved, counted from this wall moment — the same
	// re-anchoring Recover performs after a crash.
	if s.replClock > s.simEpoch {
		s.simEpoch = s.replClock
	}
	if c := s.eng.Now(); c > s.simEpoch {
		s.simEpoch = c
	}
	s.wallEpoch = s.clock.Now()
	prevGen := s.walGen
	// Bump the generation BEFORE accepting writes: the rotation is the
	// fencing token. A zombie ex-primary restarting at prevGen now probes a
	// higher generation and fences itself.
	s.compact()
	if s.degraded.Load() {
		return fmt.Errorf("serve: promote: generation bump failed: %s", s.DegradedReason())
	}
	s.role.Store(RolePrimary)
	s.mRole.Set(int64(RolePrimary))
	s.mFailovers.Inc()
	s.leaderHint.Store("")
	s.gLeaseAge.Set(0)
	log.Printf("serve: %s: promoted to primary at generation %d (fencing token bumped from %d): recovery verified, %d derived records byte-checked against primary digest %08x, sim clock %d",
		s.cfg.Name, s.walGen, prevGen, s.histCount, s.histDigest, s.eng.Now())
	return nil
}

// --- follower construction and stream loop ---

// FollowConfig parameterizes a Follower beyond its Scheduler Config.
type FollowConfig struct {
	// Peers are candidate primaries (base URLs), tried in order.
	Peers []string
	// Poll is the long-poll wait per stream request; 0 defaults to
	// min(Lease/4, 1s) with a 50ms floor.
	Poll time.Duration
	// HTTP overrides the transport (tests inject replica.FaultTransport).
	HTTP *http.Client
	// Session identifies this follower in the primary's durability acks;
	// "" defaults to the scheduler name.
	Session string
}

// Follower is a warm-standby replica: a read-only Scheduler plus the stream
// loop that keeps it in lockstep with the primary and promotes it when the
// primary's lease expires.
type Follower struct {
	s     *Scheduler
	fc    FollowConfig
	lease time.Duration
	cl    *replica.Client
	gen   uint64
	seq   int
	stop  chan struct{}
	done  chan struct{}
	err   atomic.Value // error: divergence or unrecoverable stream state
}

// NewFollower builds a follower replica. With no usable local state it
// bootstraps synchronously from the first reachable peer (snapshot + history
// + verification); with local durability files it recovers in place —
// WITHOUT the generation bump a primary recovery performs — and resumes the
// stream at its local position, unless a reachable primary's position proves
// the local tail stale (then it re-bootstraps). Call Start to begin
// following.
func NewFollower(cfg Config, fc FollowConfig) (*Follower, error) {
	if cfg.WALPath == "" {
		return nil, errors.New("serve: follower requires Config.WALPath")
	}
	if len(fc.Peers) == 0 {
		return nil, errors.New("serve: follower requires at least one peer")
	}
	applyWALDefaults(&cfg)
	if fc.Session == "" {
		fc.Session = cfg.Name
	}

	var s *Scheduler
	var peer string
	local, localGen, localSeq := localPosition(cfg)
	if local {
		p, h := findPrimary(fc)
		if h != nil && (h.Gen != localGen || h.Applied < int64(localSeq)) {
			// The primary is on another generation (we missed a failover) or
			// behind our local tail (our last appends were never replicated
			// and acked): the local lineage cannot be trusted. Bootstrap
			// fresh from the primary's snapshot.
			log.Printf("serve: %s: local wal (gen %d, %d records) does not extend primary %s (gen %d, %d records); re-bootstrapping",
				cfg.Name, localGen, localSeq, p, h.Gen, h.Applied)
			local = false
			peer = p
		} else if h != nil {
			peer = p
		}
	}
	switch {
	case local:
		var err error
		s, _, err = recoverInternal(cfg, false)
		if err != nil {
			return nil, err
		}
		// Seed our own feed at the resumed mid-generation position so its
		// sequence numbers stay absolute; it cannot serve bootstraps until
		// the next rotation (the mid-generation state is not a rotation
		// snapshot), which Seed encodes by leaving the snapshot nil.
		if s.feed != nil {
			s.feed.Seed(s.walGen, int(s.walCount.Load()), s.histCount, s.histDigest)
		}
	default:
		var err error
		s, peer, err = bootstrapFollower(cfg, fc)
		if err != nil {
			return nil, err
		}
	}
	s.role.Store(RoleFollower)
	s.mRole.Set(int64(RoleFollower))
	if peer == "" {
		peer = fc.Peers[0]
	}
	s.leaderHint.Store(peer)
	f := &Follower{
		s: s, fc: fc, lease: cfg.Lease,
		cl:   &replica.Client{Base: peer, Session: fc.Session, HTTP: fc.HTTP},
		gen:  s.walGen,
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	f.seq = int(s.walCount.Load())
	log.Printf("serve: %s: following %s from generation %d, record %d", cfg.Name, peer, f.gen, f.seq)
	return f, nil
}

// localPosition peeks at the on-disk durability files without recovering.
func localPosition(cfg Config) (exists bool, gen uint64, seq int) {
	st, err := readStateFS(cfg.FS, cfg.SnapshotPath)
	if err != nil {
		return false, 0, 0
	}
	gen = st.WALGen
	if res, err := wal.Replay(cfg.FS, cfg.WALPath); err == nil && res.Gen == gen {
		seq = len(res.Records)
	}
	return true, gen, seq
}

// findPrimary probes the peers for one answering /healthz as primary.
func findPrimary(fc FollowConfig) (string, *replica.Health) {
	for _, p := range fc.Peers {
		h, err := (&replica.Client{Base: p, HTTP: fc.HTTP}).Health()
		if err == nil && h.Role == "primary" {
			return p, h
		}
	}
	return "", nil
}

// bootstrapData is one verified primary bootstrap: the rotation snapshot, its
// parsed state, and the history prefix whose digest matched the primary's.
type bootstrapData struct {
	gen        uint64
	state      []byte // raw snapshot JSON (persisted and fed to the local feed)
	st         *State
	frames     [][]byte // encoded history payloads, for the local history log
	prior      []metrics.Record
	histCount  int
	histDigest uint32
}

// fetchBootstrap pulls the primary's rotation snapshot and history prefix and
// byte-verifies the derived record stream against the primary's digest.
func fetchBootstrap(cl *replica.Client) (*bootstrapData, error) {
	sn, err := cl.Snapshot()
	if err != nil {
		return nil, err
	}
	st, err := parseState(sn.State)
	if err != nil {
		return nil, err
	}
	frames, err := cl.History(sn.HistCount)
	if err != nil {
		return nil, err
	}
	if len(frames) < sn.HistCount {
		return nil, fmt.Errorf("serve: follower bootstrap: primary served %d of %d history records", len(frames), sn.HistCount)
	}
	frames = frames[:sn.HistCount]
	var digest uint32
	prior := make([]metrics.Record, 0, len(frames))
	for i, p := range frames {
		rec, err := decodeWalRec(p)
		if err != nil || rec.kind != walKindRecord {
			return nil, fmt.Errorf("serve: follower bootstrap: history entry %d: %v", i, err)
		}
		prior = append(prior, metrics.Record{Job: rec.job, Start: rec.start, End: rec.end})
		digest = wal.Digest(digest, p)
	}
	if digest != sn.HistDigest {
		return nil, fmt.Errorf("%w: bootstrap history digest %08x vs primary %08x", ErrReplicaDivergence, digest, sn.HistDigest)
	}
	return &bootstrapData{
		gen: sn.Gen, state: sn.State, st: st, frames: frames,
		prior: prior, histCount: sn.HistCount, histDigest: digest,
	}, nil
}

// installBootstrap persists the bootstrap's durability triple (snapshot,
// history log, empty WAL at the snapshot generation) and points the
// scheduler's run-goroutine state at it. Any previously open logs must be
// closed by the caller.
func (s *Scheduler) installBootstrap(b *bootstrapData) error {
	if err := wal.WriteFileAtomic(s.fs, s.cfg.SnapshotPath, b.state); err != nil {
		return fmt.Errorf("serve: follower bootstrap: snapshot: %w", err)
	}
	hl, err := wal.Create(s.fs, s.cfg.HistoryPath, 1)
	if err != nil {
		return fmt.Errorf("serve: follower bootstrap: history log: %w", err)
	}
	for _, p := range b.frames {
		if err := hl.Append(p); err != nil {
			hl.Close()
			return fmt.Errorf("serve: follower bootstrap: history append: %w", err)
		}
	}
	if err := hl.Sync(); err != nil {
		hl.Close()
		return fmt.Errorf("serve: follower bootstrap: history sync: %w", err)
	}
	s.hlog = hl
	s.histCount = b.histCount
	s.histDigest = b.histDigest
	wl, err := wal.Create(s.fs, s.cfg.WALPath, b.gen)
	if err != nil {
		return fmt.Errorf("serve: follower bootstrap: wal: %w", err)
	}
	s.wlog = wl
	s.setGen(b.gen)
	s.walCount.Store(0)
	s.mWALBytes.Set(wl.Size())
	if s.feed != nil {
		s.feed.Rotate(b.gen, b.state, b.histCount, b.histDigest)
	}
	return nil
}

// bootstrapFollower pulls the primary's rotation snapshot and verified
// history prefix, persists a fresh local durability triple from them, and
// returns a scheduler positioned at (snapshot generation, record 0).
func bootstrapFollower(cfg Config, fc FollowConfig) (*Scheduler, string, error) {
	peer, _ := findPrimary(fc)
	if peer == "" {
		return nil, "", fmt.Errorf("serve: follower bootstrap: no reachable primary among %v", fc.Peers)
	}
	cl := &replica.Client{Base: peer, Session: fc.Session, HTTP: fc.HTTP}
	b, err := fetchBootstrap(cl)
	if err != nil {
		return nil, "", err
	}
	s, err := newFromStateWithPrior(cfg, b.st, b.prior)
	if err != nil {
		return nil, "", err
	}
	// Persist the local triple so a follower restart resumes in place.
	if err := s.installBootstrap(b); err != nil {
		return nil, "", err
	}
	return s, peer, nil
}

// handleReseed (run goroutine) replaces a follower's entire state with a
// fresh verified bootstrap — the recovery path for a follower whose stream
// position fell out of the primary's feed retention (it lagged more than one
// compaction behind). It is NewFollower's bootstrap applied in place, so the
// scheduler identity — HTTP bindings, metrics registry, command channel —
// survives the reset.
func (s *Scheduler) handleReseed(b *bootstrapData) error {
	if s.role.Load() != RoleFollower {
		return ErrNotFollower
	}
	if s.degraded.Load() {
		return fmt.Errorf("serve: reseed: degraded: %s", s.DegradedReason())
	}
	if b.st.Procs != s.cfg.Procs || b.st.Mem != s.cfg.Mem {
		return fmt.Errorf("serve: reseed: state machine %d procs/%d mem does not match config %d/%d",
			b.st.Procs, b.st.Mem, s.cfg.Procs, s.cfg.Mem)
	}
	rest := &trace.Trace{Name: s.cfg.Name, Procs: s.cfg.Procs, Mem: s.cfg.Mem, Jobs: b.st.Pending}
	snap := sim.Snapshot{Clock: b.st.SimClock, Queued: b.st.Queued, Running: b.st.Running}
	eng, err := sim.NewEngineFromSnapshot(rest, s.simConfig(), snap)
	if err != nil {
		return fmt.Errorf("serve: reseed: %w", err)
	}
	prevCount := s.histCount
	if s.hlog != nil {
		s.hlog.Close()
		s.hlog = nil
	}
	if s.wlog != nil {
		s.wlog.Close()
		s.wlog = nil
	}
	if err := s.installBootstrap(b); err != nil {
		// The old logs are gone and the new triple is incomplete: durability
		// is lost until an operator intervenes, exactly like a failed rotation.
		s.degrade("reseed", err)
		return err
	}
	s.eng = eng
	s.simEpoch = b.st.SimClock
	s.wallEpoch = s.clock.Now()
	s.replClock = b.st.SimClock
	s.nextID = b.st.NextID
	s.prior = b.prior
	s.recSeen = 0
	s.repPend = nil
	s.submitted = make(map[int]*trace.Job)
	s.started = make(map[int]metrics.Record)
	s.canceledIDs = make(map[int]bool)
	s.idem = make(map[string]int)
	s.predCache = make(map[int]int64)
	s.predStamp = -1
	for _, r := range b.prior {
		s.started[r.Job.ID] = r
		s.submitted[r.Job.ID] = r.Job
	}
	for _, j := range b.st.Queued {
		s.submitted[j.ID] = j
	}
	for _, j := range b.st.Pending {
		s.submitted[j.ID] = j
	}
	for _, id := range b.st.Canceled {
		s.canceledIDs[id] = true
	}
	for k, id := range b.st.Idem {
		s.idem[k] = id
	}
	if d := b.histCount - prevCount; d > 0 {
		s.mStarted.Add(int64(d))
	}
	s.mQueue.Set(int64(s.eng.QueueLen()))
	s.mFree.Set(int64(s.eng.FreeProcs()))
	s.mRunning.Set(int64(s.eng.RunningCount()))
	s.mReplReseeds.Inc()
	log.Printf("serve: %s: re-bootstrapped in place at generation %d (%d history records, digest %08x)",
		s.cfg.Name, b.gen, b.histCount, b.histDigest)
	return nil
}

// Scheduler exposes the follower's read-only scheduler for serving.
func (f *Follower) Scheduler() *Scheduler { return f.s }

// Err returns the terminal stream error, if the loop stopped on one
// (divergence, unrecoverable position). A promoted or stopped follower
// without error returns nil.
func (f *Follower) Err() error {
	if e, ok := f.err.Load().(error); ok {
		return e
	}
	return nil
}

// Start launches the scheduler loop and the stream loop.
func (f *Follower) Start() {
	f.s.Start()
	go f.loop()
}

// Stop halts the stream loop (the scheduler keeps serving reads; drain it
// separately). Safe to call after promotion.
func (f *Follower) Stop() {
	select {
	case <-f.stop:
	default:
		close(f.stop)
	}
	<-f.done
}

// Promote forces an immediate promotion (tests and operator tooling; the
// loop itself promotes on lease expiry).
func (f *Follower) Promote() error { return f.s.Promote() }

func (f *Follower) fail(err error) {
	f.err.Store(err)
	log.Printf("serve: %s: follower stream stopped: %v", f.s.cfg.Name, err)
}

func (f *Follower) poll() time.Duration {
	if f.fc.Poll > 0 {
		return f.fc.Poll
	}
	p := f.lease / 4
	if p > time.Second {
		p = time.Second
	}
	if p < 50*time.Millisecond {
		p = 50 * time.Millisecond
	}
	return p
}

// loop is the follower's stream loop: long-poll the primary, apply batches,
// monitor the lease, and on expiry run the election. It exits when the
// follower is stopped, promoted, or hits a terminal error.
func (f *Follower) loop() {
	defer close(f.done)
	poll := f.poll()
	last := time.Now() // last successful stream contact
	backoff := 50 * time.Millisecond
	for {
		select {
		case <-f.stop:
			return
		default:
		}
		if f.s.role.Load() != RoleFollower {
			return
		}
		f.s.gLeaseAge.Set(time.Since(last).Seconds())
		b, err := f.cl.Stream(f.gen, f.seq, f.seq, poll)
		if err == nil && b.SnapshotNeeded {
			// Our position fell out of the primary's retention window (more
			// than one compaction behind). The primary is alive — it answered —
			// so re-bootstrap in place from its current snapshot rather than
			// dying: a warm standby must survive arbitrary lag.
			log.Printf("serve: %s: stream position (gen %d, record %d) left the primary's feed; re-bootstrapping in place",
				f.s.cfg.Name, f.gen, f.seq)
			bd, ferr := fetchBootstrap(f.cl)
			if ferr == nil {
				if rerr := f.s.Reseed(bd); rerr != nil {
					f.fail(rerr) // local install failed: terminal
					return
				}
				f.gen, f.seq = bd.gen, 0
				last = time.Now()
				backoff = 50 * time.Millisecond
				continue
			}
			if errors.Is(ferr, ErrReplicaDivergence) {
				f.fail(ferr)
				return
			}
			err = ferr // transient fetch failure: the retry/lease path below
		}
		if err != nil {
			if time.Since(last) > f.lease {
				switch f.election() {
				case electPromote:
					if perr := f.s.Promote(); perr != nil {
						f.fail(perr)
					}
					return
				case electFollowNew, electWait:
					// Either way we granted a fresh lease: a new primary was
					// adopted, or a better-positioned peer gets its chance.
					last = time.Now()
				}
			}
			select {
			case <-time.After(backoff):
			case <-f.stop:
				return
			}
			backoff = min(backoff*2, 500*time.Millisecond)
			continue
		}
		backoff = 50 * time.Millisecond
		last = time.Now()
		f.s.gLeaseAge.Set(0)
		if b.Gen != f.gen {
			continue // stale response (duplicate delivery across a rotation)
		}
		recs := b.Records
		switch off := f.seq - b.Seq; {
		case off < 0:
			continue // gap — should not happen; re-request from our position
		case off >= len(recs):
			// Fully duplicate delivery. Unless it also carries the rotation
			// signal for exactly our position, there is nothing to do.
			if b.NextGen == 0 || f.seq != b.Seq+len(recs) {
				continue
			}
			recs = nil
		default:
			recs = recs[off:] // partial overlap: apply the fresh suffix
		}
		if len(recs) == 0 && b.NextGen == 0 {
			continue // idle long-poll timeout
		}
		seq, aerr := f.s.ApplyReplica(recs, b.HistCount, b.HistDigest, b.NextGen)
		if aerr != nil {
			f.fail(aerr)
			return
		}
		if b.NextGen != 0 {
			f.gen = b.NextGen
		}
		f.seq = seq
	}
}

type electOutcome int

const (
	electWait electOutcome = iota
	electPromote
	electFollowNew
)

// election decides what to do once the primary's lease has expired: adopt a
// reachable primary at our generation or newer, stand down for a
// better-positioned follower (more applied records; name as the
// deterministic tie-break), or promote ourselves.
func (f *Follower) election() electOutcome {
	myGen, myApplied, myName := f.s.WALGen(), f.s.WALApplied(), f.s.cfg.Name
	for _, p := range f.fc.Peers {
		h, err := (&replica.Client{Base: p, HTTP: f.fc.HTTP}).Health()
		if err != nil {
			continue
		}
		switch {
		case h.Role == "primary" && h.Gen >= myGen:
			f.cl = &replica.Client{Base: p, Session: f.fc.Session, HTTP: f.fc.HTTP}
			f.s.leaderHint.Store(p)
			log.Printf("serve: %s: adopting primary %s at generation %d", myName, p, h.Gen)
			return electFollowNew
		case h.Role == "follower":
			if h.Gen > myGen ||
				(h.Gen == myGen && h.Applied > myApplied) ||
				(h.Gen == myGen && h.Applied == myApplied && h.Name < myName) {
				log.Printf("serve: %s: standing down for better-positioned follower %s (gen %d, %d applied)",
					myName, p, h.Gen, h.Applied)
				return electWait
			}
		}
	}
	return electPromote
}

// --- fencing handshake for restarting primaries ---

// FenceCheck probes peers against the LOCAL ON-DISK generation at path
// before recovery runs (recovery itself compacts, which would bump the local
// generation and mask a tie with a promoted follower). It returns the peer
// and generation that fence us, or ok=false when no reachable peer is ahead.
func FenceCheck(cfg Config, peers []string, hc *http.Client) (peer string, peerGen uint64, fenced bool) {
	applyWALDefaults(&cfg)
	localGen, err := wal.PeekGen(cfg.FS, cfg.WALPath)
	if err != nil {
		if st, serr := readStateFS(cfg.FS, cfg.SnapshotPath); serr == nil {
			localGen = st.WALGen
		} else if errors.Is(err, os.ErrNotExist) {
			localGen = 0 // brand new daemon: any existing peer generation wins
		}
	}
	for _, p := range peers {
		h, herr := (&replica.Client{Base: p, HTTP: hc}).Health()
		if herr != nil {
			continue
		}
		if h.Gen > localGen && h.Gen > peerGen {
			peer, peerGen, fenced = p, h.Gen, true
		}
	}
	return peer, peerGen, fenced
}

// WatchPeers keeps probing peers in the background and fences the scheduler
// the moment any reachable peer reports a newer generation — the runtime
// guard against a zombie primary that was partitioned during a failover.
// Returns a stop function.
func WatchPeers(s *Scheduler, peers []string, every time.Duration, hc *http.Client) (stop func()) {
	if every <= 0 {
		every = time.Second
	}
	stopC := make(chan struct{})
	go func() {
		for {
			select {
			case <-stopC:
				return
			case <-time.After(every):
			}
			if s.role.Load() != RolePrimary {
				continue
			}
			for _, p := range peers {
				h, err := (&replica.Client{Base: p, HTTP: hc}).Health()
				if err != nil {
					continue
				}
				if h.Gen > s.WALGen() {
					s.Fence(p, h.Gen)
					break
				}
			}
		}
	}()
	return func() { close(stopC) }
}
