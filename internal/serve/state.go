package serve

import (
	"encoding/json"
	"fmt"

	"repro/internal/backfill"
	"repro/internal/metrics"
	"repro/internal/trace"
	"repro/internal/wal"
)

// stateVersion guards the snapshot wire format; bump on incompatible change.
// Version 1 files from before the WAL era parse unchanged: the durability
// fields below all default to zero, which is exactly their legacy meaning.
const stateVersion = 1

// State is the daemon's crash-recovery snapshot: the engine snapshot fields
// (clock, queue, running set, pending arrivals) plus the serve-layer
// bookkeeping (ID allocator, cancellation log, idempotency index, record
// history). A State plus the stream of future submissions fully determines
// the rest of the schedule — the same invariant sim.Snapshot provides for
// batch replays, extended over the live path. It marshals to plain JSON so
// operators can inspect snapshots with standard tools.
//
// In WAL mode (DESIGN.md §13) the on-disk snapshot carries the live state
// only: Records is stripped (the append-only history log holds the record
// stream) and WALGen/WALRecords/HistoryCount tie the snapshot to its logs,
// so a periodic snapshot costs O(live state), not O(history).
type State struct {
	Version  int                `json:"version"`
	Name     string             `json:"name"`
	Procs    int                `json:"procs"`
	Mem      int                `json:"mem,omitempty"`
	SimClock int64              `json:"sim_clock"`
	NextID   int                `json:"next_id"`
	Queued   []*trace.Job       `json:"queued,omitempty"`
	Running  []backfill.Running `json:"running,omitempty"`
	Pending  []*trace.Job       `json:"pending,omitempty"`
	Canceled []int              `json:"canceled,omitempty"`
	Records  []metrics.Record   `json:"records,omitempty"`
	// Idem maps idempotency keys to the job IDs they were assigned, so a
	// client retry after a crash still deduplicates.
	Idem map[string]int `json:"idem,omitempty"`
	// WALGen is the write-ahead log generation this snapshot extends;
	// recovery discards a log older than the snapshot's generation.
	WALGen uint64 `json:"wal_gen,omitempty"`
	// WALRecords is the number of records of generation WALGen already
	// reflected in this snapshot; recovery replays only the records after.
	WALRecords int `json:"wal_records,omitempty"`
	// HistoryCount is the number of history-log records at the snapshot
	// instant: entries before it are prior history, entries after it must
	// match what WAL replay re-derives (the byte-identity check).
	HistoryCount int `json:"history_count,omitempty"`
}

// WriteState crash-safely persists a state snapshot through the shared
// atomic-replace helper: temp file, fsync, rename, then fsync of the
// containing directory — the rename alone is not durable on ext4/xfs until
// the directory itself is synced.
func WriteState(path string, st *State) error {
	return writeStateFS(wal.OSFS{}, path, st)
}

func writeStateFS(fs wal.FS, path string, st *State) error {
	data, err := json.Marshal(st)
	if err != nil {
		return fmt.Errorf("serve: marshal state: %v", err)
	}
	return wal.WriteFileAtomic(fs, path, data)
}

// marshalState renders the snapshot JSON once, for callers that both persist
// it and hand it to the replication feed.
func marshalState(st *State) ([]byte, error) {
	data, err := json.Marshal(st)
	if err != nil {
		return nil, fmt.Errorf("serve: marshal state: %v", err)
	}
	return data, nil
}

// parseState validates snapshot bytes (the wire twin of readStateFS, used
// when the snapshot arrives over the replication bootstrap instead of from
// disk).
func parseState(data []byte) (*State, error) {
	var st State
	if err := json.Unmarshal(data, &st); err != nil {
		return nil, fmt.Errorf("serve: parse state: %v", err)
	}
	if st.Version != stateVersion {
		return nil, fmt.Errorf("serve: state has version %d, this build understands %d", st.Version, stateVersion)
	}
	if st.Procs <= 0 {
		return nil, fmt.Errorf("serve: state has non-positive machine size %d", st.Procs)
	}
	if st.NextID < 1 {
		st.NextID = 1
	}
	return &st, nil
}

// ReadState loads and validates a snapshot written by WriteState.
func ReadState(path string) (*State, error) {
	return readStateFS(wal.OSFS{}, path)
}

func readStateFS(fs wal.FS, path string) (*State, error) {
	data, err := fs.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var st State
	if err := json.Unmarshal(data, &st); err != nil {
		return nil, fmt.Errorf("serve: parse state %s: %v", path, err)
	}
	if st.Version != stateVersion {
		return nil, fmt.Errorf("serve: state %s has version %d, this build understands %d", path, st.Version, stateVersion)
	}
	if st.Procs <= 0 {
		return nil, fmt.Errorf("serve: state %s has non-positive machine size %d", path, st.Procs)
	}
	if st.NextID < 1 {
		st.NextID = 1
	}
	return &st, nil
}
