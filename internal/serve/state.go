package serve

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/backfill"
	"repro/internal/metrics"
	"repro/internal/trace"
)

// stateVersion guards the snapshot wire format; bump on incompatible change.
const stateVersion = 1

// State is the daemon's crash-recovery snapshot: the engine snapshot fields
// (clock, queue, running set, pending arrivals) plus the serve-layer
// bookkeeping (ID allocator, cancellation log, full record history). A State
// plus the stream of future submissions fully determines the rest of the
// schedule — the same invariant sim.Snapshot provides for batch replays,
// extended over the live path. It marshals to plain JSON so operators can
// inspect snapshots with standard tools.
type State struct {
	Version  int                `json:"version"`
	Name     string             `json:"name"`
	Procs    int                `json:"procs"`
	Mem      int                `json:"mem,omitempty"`
	SimClock int64              `json:"sim_clock"`
	NextID   int                `json:"next_id"`
	Queued   []*trace.Job       `json:"queued,omitempty"`
	Running  []backfill.Running `json:"running,omitempty"`
	Pending  []*trace.Job       `json:"pending,omitempty"`
	Canceled []int              `json:"canceled,omitempty"`
	Records  []metrics.Record   `json:"records,omitempty"`
}

// WriteState atomically persists a state snapshot: marshal to a temporary
// file in the target directory, fsync, rename. A crash mid-write leaves the
// previous snapshot intact.
func WriteState(path string, st *State) error {
	data, err := json.Marshal(st)
	if err != nil {
		return fmt.Errorf("serve: marshal state: %v", err)
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".rlbf-state-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// ReadState loads and validates a snapshot written by WriteState.
func ReadState(path string) (*State, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var st State
	if err := json.Unmarshal(data, &st); err != nil {
		return nil, fmt.Errorf("serve: parse state %s: %v", path, err)
	}
	if st.Version != stateVersion {
		return nil, fmt.Errorf("serve: state %s has version %d, this build understands %d", path, st.Version, stateVersion)
	}
	if st.Procs <= 0 {
		return nil, fmt.Errorf("serve: state %s has non-positive machine size %d", path, st.Procs)
	}
	if st.NextID < 1 {
		st.NextID = 1
	}
	return &st, nil
}
