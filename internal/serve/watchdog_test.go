package serve

import (
	"bytes"
	"log"
	"strings"
	"testing"
	"time"

	"repro/internal/backfill"
	"repro/internal/sched"
)

// TestServeWatchdogStalledRound pins the stuck-round watchdog: a scheduling
// pass that blows its budget raises rlbf_round_stalled, bumps the stall
// counter, and logs a goroutine dump exactly once; the gauge clears when the
// round completes.
func TestServeWatchdogStalledRound(t *testing.T) {
	var logBuf bytes.Buffer
	prev := log.Writer()
	log.SetOutput(&logBuf)
	defer log.SetOutput(prev)

	s, err := New(Config{
		Name: "wd", Procs: 8,
		Policy:      sched.FCFS{},
		Backfiller:  backfill.NewConservative(backfill.RequestTime{}),
		TimeScale:   1000,
		RoundBudget: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	release := make(chan struct{})
	slowOnce := make(chan struct{}, 1)
	slowOnce <- struct{}{}
	s.testSlow = func() {
		select {
		case <-slowOnce:
			<-release // only the first round stalls
		default:
		}
	}
	s.Start()

	sub := make(chan error, 1)
	go func() {
		_, err := s.Submit(JobRequest{Procs: 1, Runtime: 10})
		sub <- err
	}()
	// The stalled round must be detected while it is still in flight.
	deadline := time.Now().Add(5 * time.Second)
	for s.mRoundStalled.Value() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("watchdog never raised rlbf_round_stalled")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if s.mRoundStalls.Value() != 1 {
		t.Fatalf("rlbf_round_stalls_total = %d mid-stall, want 1", s.mRoundStalls.Value())
	}
	close(release)
	if err := <-sub; err != nil {
		t.Fatal(err)
	}
	// The gauge clears once the round ends; give the next tick time to see it.
	deadline = time.Now().Add(5 * time.Second)
	for s.mRoundStalled.Value() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("rlbf_round_stalled never cleared after the round completed")
		}
		time.Sleep(2 * time.Millisecond)
	}
	// Healthy rounds after the stall are not re-reported.
	if _, err := s.Submit(JobRequest{Procs: 1, Runtime: 10}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(30 * time.Millisecond)
	if got := s.mRoundStalls.Value(); got != 1 {
		t.Fatalf("rlbf_round_stalls_total = %d after recovery, want 1 (per-round report)", got)
	}
	out := logBuf.String()
	if !strings.Contains(out, "scheduling round stalled") || !strings.Contains(out, "goroutine") {
		t.Fatalf("stall log missing dump:\n%s", out)
	}
	if _, err := s.Drain(); err != nil {
		t.Fatal(err)
	}
}
