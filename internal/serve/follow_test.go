package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/replica"
	"repro/internal/wal"
)

// startReplicaPair builds a primary daemon behind an httptest server and a
// follower bootstrapped from it, both on one shared manual clock so the
// failover differential can compare against an uninterrupted reference run.
func startReplicaPair(t *testing.T, clk *ManualClock, compactEvery int, fc FollowConfig, mutP func(*Config)) (*Scheduler, Config, *httptest.Server, *Follower) {
	t.Helper()
	cfgP := walConfig(clk, t.TempDir(), wal.NewFaultFS(wal.OSFS{}), compactEvery)
	cfgP.Name = "alpha"
	if mutP != nil {
		mutP(&cfgP)
	}
	p, err := New(cfgP)
	if err != nil {
		t.Fatal(err)
	}
	p.Start()
	ts := httptest.NewServer(NewServer(p, 64, 0).Handler())
	t.Cleanup(ts.Close)

	cfgF := walConfig(clk, t.TempDir(), wal.NewFaultFS(wal.OSFS{}), compactEvery)
	cfgF.Name = "bravo"
	cfgF.Lease = time.Hour // tests drive promotion explicitly unless they shrink this
	fc.Peers = append([]string{ts.URL}, fc.Peers...)
	f, err := NewFollower(cfgF, fc)
	if err != nil {
		t.Fatal(err)
	}
	f.Start()
	t.Cleanup(func() { f.Stop() })
	return p, cfgP, ts, f
}

// waitCaughtUp blocks until the follower's (generation, applied) position
// equals the primary's.
func waitCaughtUp(t *testing.T, p, f *Scheduler, within time.Duration) {
	t.Helper()
	deadline := time.Now().Add(within)
	for {
		if p.WALGen() == f.WALGen() && p.WALApplied() == f.WALApplied() {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("follower never caught up: primary (gen %d, %d applied) vs follower (gen %d, %d applied)",
				p.WALGen(), p.WALApplied(), f.WALGen(), f.WALApplied())
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestServeFailoverDifferential is the tentpole: run half the script on the
// primary with a live follower streaming, SIGKILL the primary, promote the
// follower, run the rest of the script there — the complete record history
// must be byte-identical to one uninterrupted single-node run. Then restart
// the dead primary and pin the fencing handshake: it must refuse writes.
func TestServeFailoverDifferential(t *testing.T) {
	const n, cancelEvery = 160, 7
	ops := makeScript(97, n, 32, false)
	epoch := time.Unix(1700000000, 0)
	want := refRun(t, ops, epoch, cancelEvery)

	for _, compactEvery := range []int{0, 16} {
		t.Run(fmt.Sprintf("compactEvery=%d", compactEvery), func(t *testing.T) {
			clk := NewManualClock(epoch)
			p, cfgP, ts, f := startReplicaPair(t, clk, compactEvery, FollowConfig{}, nil)
			runScriptCancel(t, p, clk, ops[:100], 0, cancelEvery)
			waitCaughtUp(t, p, f.Scheduler(), 10*time.Second)
			genAtCrash := p.WALGen()
			if compactEvery > 0 && genAtCrash < 5 {
				t.Fatalf("generation %d after 100 submissions at CompactEvery=%d; the stream never rotated", genAtCrash, compactEvery)
			}

			// SIGKILL the primary mid-run: no drain, no handover.
			p.crash()
			ts.Close()
			f.Stop()
			if err := f.Err(); err != nil {
				t.Fatalf("follower stream error before promotion: %v", err)
			}
			if err := f.Promote(); err != nil {
				t.Fatalf("promote: %v", err)
			}
			p2 := f.Scheduler()
			if p2.Role() != "primary" {
				t.Fatalf("role %q after promotion", p2.Role())
			}
			if p2.WALGen() <= genAtCrash {
				t.Fatalf("promotion did not bump the fencing token: gen %d, primary died at %d", p2.WALGen(), genAtCrash)
			}

			// The script continues on the new primary as if nothing happened.
			runScriptCancel(t, p2, clk, ops[100:], 100, cancelEvery)

			// The dead primary restarts: the fencing handshake (probe peers
			// against the ON-DISK generation, before recovery bumps it) must
			// refuse it write service.
			ts2 := httptest.NewServer(NewServer(p2, 64, 0).Handler())
			defer ts2.Close()
			peer, peerGen, fenced := FenceCheck(cfgP, []string{ts2.URL}, nil)
			if !fenced || peerGen != p2.WALGen() {
				t.Fatalf("FenceCheck = (%q, %d, %v), want fenced by generation %d", peer, peerGen, fenced, p2.WALGen())
			}
			z, _, err := RecoverFenced(cfgP)
			if err != nil {
				t.Fatalf("zombie recover: %v", err)
			}
			if z.WALGen() != genAtCrash {
				t.Fatalf("fenced recovery rebased the zombie to generation %d; its lineage must stay at %d", z.WALGen(), genAtCrash)
			}
			z.Start()
			z.Fence(peer, peerGen)
			if _, err := z.Submit(JobRequest{Procs: 1, Runtime: 10}); !errors.Is(err, ErrFenced) {
				t.Fatalf("zombie submit: %v, want ErrFenced", err)
			}
			if st, err := z.Stats(); err != nil || st.FencedWrites < 1 {
				t.Fatalf("fenced writes %+v (err %v), want rlbf_fenced_total >= 1", st, err)
			}
			z.crash()

			clk.Advance(24 * time.Hour)
			st, err := p2.Drain()
			if err != nil {
				t.Fatal(err)
			}
			if got := renderRecords(st.Records); got != want {
				t.Fatalf("post-failover schedule differs from uninterrupted run:\n got:\n%s\nwant:\n%s", got, want)
			}
		})
	}
}

// TestServeFailoverFaultyTransport streams through a fault-injecting
// transport — drops, duplicates, stalls and corrupted chunks — and pins that
// the follower still converges to the primary's exact position with its
// digest verification intact.
func TestServeFailoverFaultyTransport(t *testing.T) {
	ops := makeScript(31, 400, 32, false)
	epoch := time.Unix(1700000000, 0)

	ft := &replica.FaultTransport{DropEvery: 5, DupEvery: 3, CorruptEvery: 7,
		StallEvery: 11, StallFor: 20 * time.Millisecond}
	clk := NewManualClock(epoch)
	// Bound the semi-sync waits: injected faults legitimately delay acks, and
	// each timeout degrades that one ack to async without losing the record.
	// The short poll keeps idle long-polls cycling, so the countdown faults
	// keep firing even when batches coalesce under scheduler load.
	p, _, ts, f := startReplicaPair(t, clk, 0,
		FollowConfig{HTTP: &http.Client{Transport: ft}, Poll: 25 * time.Millisecond},
		func(c *Config) { c.ReplAckTimeout = 100 * time.Millisecond })

	// Submit a base load, then keep feeding script ops until every fault kind
	// has provably hit the stream: how many stream responses the base load
	// spreads across depends on timing, and the corrupt countdown only runs
	// over record-carrying responses.
	runScriptCancel(t, p, clk, ops[:60], 0, 0)
	sent := 60
	for ; ; sent++ {
		_, drops, dups, corrupts, stalls := ft.Counts()
		if drops > 0 && dups > 0 && corrupts > 0 && stalls > 0 {
			break
		}
		if sent == len(ops) {
			requests, drops, dups, corrupts, stalls := ft.Counts()
			t.Fatalf("fault double idle after %d ops (%d requests: drops %d, dups %d, corrupts %d, stalls %d); test proves nothing",
				sent, requests, drops, dups, corrupts, stalls)
		}
		runScriptCancel(t, p, clk, ops[sent:sent+1], sent, 0)
		time.Sleep(10 * time.Millisecond) // let the follower poll between ops
	}
	want := refRun(t, ops[:sent], epoch, 0)
	// Still converged after the full fault menu.
	waitCaughtUp(t, p, f.Scheduler(), 30*time.Second)
	if err := f.Err(); err != nil {
		t.Fatalf("follower stream died under transport faults: %v", err)
	}

	p.crash()
	ts.Close()
	f.Stop()
	if err := f.Promote(); err != nil {
		t.Fatalf("promote after faulty stream: %v", err)
	}
	clk.Advance(24 * time.Hour)
	st, err := f.Scheduler().Drain()
	if err != nil {
		t.Fatal(err)
	}
	if got := renderRecords(st.Records); got != want {
		t.Fatalf("schedule after faulty-transport replication differs:\n got:\n%s\nwant:\n%s", got, want)
	}
}

// gatedTransport blocks /replica/stream requests until opened, so a test can
// deterministically hold a follower back while the primary compacts its
// position out of the feed's retention window.
type gatedTransport struct {
	open chan struct{}
}

func (g *gatedTransport) RoundTrip(r *http.Request) (*http.Response, error) {
	if r.URL.Path == "/replica/stream" {
		<-g.open
	}
	return http.DefaultTransport.RoundTrip(r)
}

// TestServeFollowerReseedsAfterLag holds the follower's stream shut while the
// primary rotates several generations past it, then releases it: the follower
// must re-bootstrap in place (not die), converge, and still produce the exact
// uninterrupted schedule after a failover.
func TestServeFollowerReseedsAfterLag(t *testing.T) {
	const n = 60
	ops := makeScript(41, n, 32, false)
	epoch := time.Unix(1700000000, 0)
	want := refRun(t, ops, epoch, 0)

	gt := &gatedTransport{open: make(chan struct{})}
	var openOnce sync.Once
	release := func() { openOnce.Do(func() { close(gt.open) }) }
	clk := NewManualClock(epoch)
	p, _, ts, f := startReplicaPair(t, clk, 8, FollowConfig{HTTP: &http.Client{Transport: gt}}, nil)
	t.Cleanup(release) // registered after the pair's f.Stop, so it runs first

	// The follower is gated at (gen 1, record 0); rotate far past it.
	runScriptCancel(t, p, clk, ops, 0, 0)
	if gen := p.WALGen(); gen < 4 {
		t.Fatalf("primary only reached generation %d; the follower's position never left the window", gen)
	}
	release()
	waitCaughtUp(t, p, f.Scheduler(), 15*time.Second)
	if err := f.Err(); err != nil {
		t.Fatalf("follower died instead of re-bootstrapping: %v", err)
	}
	if got := f.Scheduler().mReplReseeds.Value(); got < 1 {
		t.Fatalf("rlbf_repl_rebootstraps_total = %d, want >= 1", got)
	}

	p.crash()
	ts.Close()
	f.Stop()
	if err := f.Promote(); err != nil {
		t.Fatalf("promote after reseed: %v", err)
	}
	clk.Advance(24 * time.Hour)
	st, err := f.Scheduler().Drain()
	if err != nil {
		t.Fatal(err)
	}
	if got := renderRecords(st.Records); got != want {
		t.Fatalf("schedule after in-place re-bootstrap differs:\n got:\n%s\nwant:\n%s", got, want)
	}
}

// TestServeFollowerAutoPromote kills the primary and lets the lease do the
// work: no explicit Promote — the follower's own election must notice the
// expired lease, win (no better-positioned peer), and promote itself.
func TestServeFollowerAutoPromote(t *testing.T) {
	epoch := time.Unix(1700000000, 0)
	clk := NewManualClock(epoch)
	cfgP := walConfig(clk, t.TempDir(), wal.NewFaultFS(wal.OSFS{}), 0)
	cfgP.Name = "alpha"
	p, err := New(cfgP)
	if err != nil {
		t.Fatal(err)
	}
	p.Start()
	ts := httptest.NewServer(NewServer(p, 64, 0).Handler())
	defer ts.Close()

	cfgF := walConfig(clk, t.TempDir(), wal.NewFaultFS(wal.OSFS{}), 0)
	cfgF.Name = "bravo"
	cfgF.Lease = 300 * time.Millisecond
	f, err := NewFollower(cfgF, FollowConfig{Peers: []string{ts.URL}})
	if err != nil {
		t.Fatal(err)
	}
	f.Start()
	defer f.Stop()

	for i := 0; i < 5; i++ {
		clk.Advance(time.Second)
		if _, err := p.Submit(JobRequest{Procs: 2, Runtime: 100}); err != nil {
			t.Fatal(err)
		}
	}
	waitCaughtUp(t, p, f.Scheduler(), 10*time.Second)
	p.crash()
	ts.Close()

	deadline := time.Now().Add(15 * time.Second)
	for f.Scheduler().Role() != "primary" {
		if time.Now().After(deadline) {
			t.Fatalf("follower never auto-promoted (role %q, err %v)", f.Scheduler().Role(), f.Err())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := f.Err(); err != nil {
		t.Fatalf("auto-promotion surfaced error: %v", err)
	}
	// The promoted daemon accepts writes immediately.
	if _, err := f.Scheduler().Submit(JobRequest{Procs: 1, Runtime: 10}); err != nil {
		t.Fatalf("submit after auto-promotion: %v", err)
	}
	if _, err := f.Scheduler().Drain(); err != nil {
		t.Fatal(err)
	}
}

// TestServeFollowerReadOnly pins the follower's client-facing contract: writes
// answer 503 with Retry-After and an X-Rlbf-Leader hint; health reports the
// follower role and replication position.
func TestServeFollowerReadOnly(t *testing.T) {
	epoch := time.Unix(1700000000, 0)
	clk := NewManualClock(epoch)
	p, _, ts, f := startReplicaPair(t, clk, 0, FollowConfig{}, nil)
	clk.Advance(time.Second)
	if _, err := p.Submit(JobRequest{Procs: 2, Runtime: 100}); err != nil {
		t.Fatal(err)
	}
	waitCaughtUp(t, p, f.Scheduler(), 10*time.Second)

	tsF := httptest.NewServer(NewServer(f.Scheduler(), 64, 0).Handler())
	defer tsF.Close()
	resp, _ := post(t, tsF.URL+"/v1/jobs", JobRequest{Procs: 1, Runtime: 10})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("follower submit status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("follower 503 without Retry-After")
	}
	if leader := resp.Header.Get("X-Rlbf-Leader"); leader != ts.URL {
		t.Fatalf("leader hint %q, want %q", leader, ts.URL)
	}
	req, _ := http.NewRequest(http.MethodDelete, tsF.URL+"/v1/jobs/1", nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("follower cancel status %d, want 503", dresp.StatusCode)
	}
	hresp, err := http.Get(tsF.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h replica.Health
	if err := json.NewDecoder(hresp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if h.Role != "follower" || h.Gen != f.Scheduler().WALGen() || h.Name != "bravo" {
		t.Fatalf("follower health %+v", h)
	}
}
