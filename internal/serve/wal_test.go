package serve

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/wal"
)

// walConfig is testConfig plus the durability triple rooted in dir.
func walConfig(clk Clock, dir string, fs wal.FS, compactEvery int) Config {
	cfg := testConfig(clk)
	cfg.SnapshotPath = filepath.Join(dir, "state.json")
	cfg.WALPath = filepath.Join(dir, "cmd.wal")
	cfg.CompactEvery = compactEvery
	cfg.FS = fs
	return cfg
}

// runScriptCancel plays a script like runScript, canceling every cancelEvery-th
// job that did not start immediately. The cancel decision depends only on
// deterministic state, so reference and crash-recovered runs make the same
// calls.
func runScriptCancel(t *testing.T, s *Scheduler, clk *ManualClock, ops []scriptOp, from, cancelEvery int) {
	t.Helper()
	for i, op := range ops {
		clk.Advance(op.advance)
		res, err := s.Submit(op.req)
		if err != nil {
			t.Fatalf("submit %d: %v", from+i, err)
		}
		if cancelEvery > 0 && (from+i)%cancelEvery == 0 && !res.Started {
			if _, err := s.CancelJob(res.ID); err != nil {
				t.Fatalf("cancel %d: %v", res.ID, err)
			}
		}
	}
}

// refRun plays the whole script on a WAL-less daemon and returns the
// canonical record history — the uninterrupted run every recovery must match
// byte for byte.
func refRun(t *testing.T, ops []scriptOp, epoch time.Time, cancelEvery int) string {
	t.Helper()
	clk := NewManualClock(epoch)
	ref, err := New(testConfig(clk))
	if err != nil {
		t.Fatal(err)
	}
	ref.Start()
	runScriptCancel(t, ref, clk, ops, 0, cancelEvery)
	clk.Advance(24 * time.Hour)
	st, err := ref.Drain()
	if err != nil {
		t.Fatal(err)
	}
	return renderRecords(st.Records)
}

// TestServeWALCrashRecoveryByteIdentical is the tentpole differential: kill
// the daemon (no drain, no final snapshot, unsynced page cache discarded) at
// various points — including twice in one run — recover from snapshot + WAL
// tail, finish the script, and the complete schedule must be byte-identical
// to an uninterrupted run.
func TestServeWALCrashRecoveryByteIdentical(t *testing.T) {
	const n = 240
	ops := makeScript(41, n, 32, false)
	epoch := time.Unix(1700000000, 0)
	want := refRun(t, ops, epoch, 0)

	for _, crashAt := range [][]int{{1}, {120}, {n - 1}, {80, 160}} {
		t.Run(fmt.Sprint(crashAt), func(t *testing.T) {
			dir := t.TempDir()
			ffs := wal.NewFaultFS(wal.OSFS{})
			clk := NewManualClock(epoch)
			cfg := walConfig(clk, dir, ffs, 0)
			s, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			s.Start()
			next := 0
			for _, k := range crashAt {
				runScriptCancel(t, s, clk, ops[next:k], next, 0)
				next = k
				s.crash()
				if err := ffs.Crash(); err != nil {
					t.Fatal(err)
				}
				var info *RecoveryInfo
				if s, info, err = Recover(cfg); err != nil {
					t.Fatalf("recover at %d: %v", k, err)
				}
				if info.HistoryTruncated != 0 {
					t.Fatalf("recover at %d: %d orphan history entries, want 0", k, info.HistoryTruncated)
				}
				s.Start()
			}
			runScriptCancel(t, s, clk, ops[next:], next, 0)
			clk.Advance(24 * time.Hour)
			st, err := s.Drain()
			if err != nil {
				t.Fatal(err)
			}
			if got := renderRecords(st.Records); got != want {
				t.Fatalf("crash at %v: schedule differs from uninterrupted run:\n got:\n%s\nwant:\n%s", crashAt, got, want)
			}
			if len(st.Records) != n {
				t.Fatalf("crash at %v: %d records, want %d", crashAt, len(st.Records), n)
			}
		})
	}
}

// TestServeWALCancelReplay runs the differential with cancellation traffic in
// the WAL tail.
func TestServeWALCancelReplay(t *testing.T) {
	const n, cancelEvery = 200, 7
	ops := makeScript(87, n, 32, false)
	epoch := time.Unix(1700000000, 0)
	want := refRun(t, ops, epoch, cancelEvery)

	dir := t.TempDir()
	ffs := wal.NewFaultFS(wal.OSFS{})
	clk := NewManualClock(epoch)
	cfg := walConfig(clk, dir, ffs, 0)
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	runScriptCancel(t, s, clk, ops[:130], 0, cancelEvery)
	s.crash()
	if err := ffs.Crash(); err != nil {
		t.Fatal(err)
	}
	s, _, err = Recover(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	runScriptCancel(t, s, clk, ops[130:], 130, cancelEvery)
	clk.Advance(24 * time.Hour)
	st, err := s.Drain()
	if err != nil {
		t.Fatal(err)
	}
	if got := renderRecords(st.Records); got != want {
		t.Fatalf("cancel replay differs from uninterrupted run:\n got:\n%s\nwant:\n%s", got, want)
	}
}

// TestServeWALCompactionBoundsRecovery forces frequent rotations and checks
// both that they happen (generation climbs) and that they work: recovery
// replays only the records since the last snapshot, not the whole history,
// and the final schedule is still byte-identical.
func TestServeWALCompactionBoundsRecovery(t *testing.T) {
	const n, every = 240, 32
	ops := makeScript(63, n, 32, false)
	epoch := time.Unix(1700000000, 0)
	want := refRun(t, ops, epoch, 0)

	dir := t.TempDir()
	ffs := wal.NewFaultFS(wal.OSFS{})
	clk := NewManualClock(epoch)
	cfg := walConfig(clk, dir, ffs, every)
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	runScriptCancel(t, s, clk, ops[:200], 0, 0)
	s.crash()
	if err := ffs.Crash(); err != nil {
		t.Fatal(err)
	}
	s, info, err := Recover(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Each submission writes at most three records, and rotation triggers as
	// soon as the count crosses `every` — so the replayed tail is bounded by
	// one rotation window plus one command, independent of history length.
	if info.Applied > every+4 {
		t.Fatalf("recovery replayed %d records; compaction should bound the tail near %d", info.Applied, every)
	}
	if info.WALGen < 10 {
		t.Fatalf("generation %d after 200 submissions at CompactEvery=%d; rotations are not happening", info.WALGen, every)
	}
	if info.PriorRecords == 0 {
		t.Fatal("no prior records came from the history log")
	}
	s.Start()
	runScriptCancel(t, s, clk, ops[200:], 200, 0)
	clk.Advance(24 * time.Hour)
	st, err := s.Drain()
	if err != nil {
		t.Fatal(err)
	}
	if got := renderRecords(st.Records); got != want {
		t.Fatalf("compacted recovery differs from uninterrupted run:\n got:\n%s\nwant:\n%s", got, want)
	}
}

// TestServeWALTornTailRecovery chops bytes off the WAL after a crash: the
// torn record is dropped cleanly, recovery still succeeds, and — because a
// torn advance only delays event processing to the next advance — the final
// schedule remains byte-identical.
func TestServeWALTornTailRecovery(t *testing.T) {
	const n = 160
	ops := makeScript(29, n, 32, false)
	epoch := time.Unix(1700000000, 0)
	want := refRun(t, ops, epoch, 0)

	dir := t.TempDir()
	ffs := wal.NewFaultFS(wal.OSFS{})
	clk := NewManualClock(epoch)
	cfg := walConfig(clk, dir, ffs, 0)
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	runScriptCancel(t, s, clk, ops[:100], 0, 0)
	s.crash()
	if err := ffs.Crash(); err != nil {
		t.Fatal(err)
	}
	fi, err := os.Stat(cfg.WALPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(cfg.WALPath, fi.Size()-3); err != nil {
		t.Fatal(err)
	}
	s, info, err := Recover(cfg)
	if err != nil {
		t.Fatalf("recover with torn tail: %v", err)
	}
	if !info.TornWAL {
		t.Fatal("torn tail not reported")
	}
	s.Start()
	runScriptCancel(t, s, clk, ops[100:], 100, 0)
	clk.Advance(24 * time.Hour)
	st, err := s.Drain()
	if err != nil {
		t.Fatal(err)
	}
	if got := renderRecords(st.Records); got != want {
		t.Fatalf("torn-tail recovery differs from uninterrupted run:\n got:\n%s\nwant:\n%s", got, want)
	}
}

// TestServeWALIdempotentSubmitAcrossCrash pins that idempotency keys survive
// the crash: a client retrying its submission after the daemon restarts gets
// the original job back, never a duplicate enqueue.
func TestServeWALIdempotentSubmitAcrossCrash(t *testing.T) {
	dir := t.TempDir()
	ffs := wal.NewFaultFS(wal.OSFS{})
	epoch := time.Unix(1700000000, 0)
	clk := NewManualClock(epoch)
	cfg := walConfig(clk, dir, ffs, 0)
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	res1, err := s.Submit(JobRequest{Procs: 4, Runtime: 500, IdemKey: "alpha"})
	if err != nil {
		t.Fatal(err)
	}
	dup, err := s.Submit(JobRequest{Procs: 4, Runtime: 500, IdemKey: "alpha"})
	if err != nil || !dup.Duplicate || dup.ID != res1.ID {
		t.Fatalf("live duplicate: %+v err %v, want duplicate of job %d", dup, err, res1.ID)
	}
	s.crash()
	if err := ffs.Crash(); err != nil {
		t.Fatal(err)
	}
	s, _, err = Recover(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	dup2, err := s.Submit(JobRequest{Procs: 4, Runtime: 500, IdemKey: "alpha"})
	if err != nil || !dup2.Duplicate || dup2.ID != res1.ID {
		t.Fatalf("post-crash duplicate: %+v err %v, want duplicate of job %d", dup2, err, res1.ID)
	}
	fresh, err := s.Submit(JobRequest{Procs: 4, Runtime: 500, IdemKey: "beta"})
	if err != nil || fresh.Duplicate || fresh.ID == res1.ID {
		t.Fatalf("fresh key: %+v err %v, want a new job", fresh, err)
	}
	stats, err := s.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Accepted != 2 {
		t.Fatalf("accepted %d, want 2 (one original + one fresh, no duplicates)", stats.Accepted)
	}
	if _, err := s.Drain(); err != nil {
		t.Fatal(err)
	}
}

// TestServeWALDegradedMode pins graceful degradation: when the disk starts
// failing, the daemon flips to in-memory mode — surfacing it through
// Degraded/Stats — and keeps scheduling rather than dying with jobs queued.
func TestServeWALDegradedMode(t *testing.T) {
	dir := t.TempDir()
	ffs := wal.NewFaultFS(wal.OSFS{})
	epoch := time.Unix(1700000000, 0)
	clk := NewManualClock(epoch)
	cfg := walConfig(clk, dir, ffs, 0)
	ops := makeScript(17, 60, 32, false)
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	runScriptCancel(t, s, clk, ops[:30], 0, 0)
	if s.Degraded() {
		t.Fatal("degraded before any fault")
	}
	ffs.FailSyncsAfter(0)
	for i, op := range ops[30:] {
		clk.Advance(op.advance)
		if _, err := s.Submit(op.req); err != nil {
			t.Fatalf("submit %d during disk failure: %v (degraded mode must keep scheduling)", 30+i, err)
		}
	}
	if !s.Degraded() {
		t.Fatal("daemon not degraded after sync failures")
	}
	if s.DegradedReason() == "" {
		t.Fatal("degraded with no reason")
	}
	stats, err := s.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Degraded {
		t.Fatal("stats do not report degraded")
	}
	ffs.FailSyncsAfter(-1) // disk "recovers" so the drain snapshot can land
	clk.Advance(24 * time.Hour)
	st, err := s.Drain()
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Records) != 60 {
		t.Fatalf("%d records after degraded run, want 60", len(st.Records))
	}
}
