package serve

import (
	"fmt"
	"os"
	"testing"
	"time"

	"repro/internal/wal"
)

// TestServeHistoryTornTailRecovery damages the history log's tail after a
// crash — a clean mid-frame truncation and a garbage partial frame, the two
// shapes a torn write leaves — and pins that recovery repairs the log from
// the WAL replay and the finished schedule stays byte-identical to an
// uninterrupted run.
func TestServeHistoryTornTailRecovery(t *testing.T) {
	const n = 160
	ops := makeScript(53, n, 32, false)
	epoch := time.Unix(1700000000, 0)
	want := refRun(t, ops, epoch, 0)

	damage := map[string]struct {
		loses bool // the damage destroys a real record (repair must re-append)
		tear  func(t *testing.T, path string)
	}{
		"truncated mid-frame": {true, func(t *testing.T, path string) {
			fi, err := os.Stat(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.Truncate(path, fi.Size()-5); err != nil {
				t.Fatal(err)
			}
		}},
		"garbage partial frame": {false, func(t *testing.T, path string) {
			f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				t.Fatal(err)
			}
			// A frame header claiming 100 bytes, followed by only 4: the
			// replayer must stop at the valid prefix, not trust the length.
			if _, err := f.Write([]byte{100, 0, 0, 0, 0xde, 0xad, 0xbe, 0xef, 1, 2, 3, 4}); err != nil {
				t.Fatal(err)
			}
			f.Close()
		}},
	}
	for name, dmg := range damage {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			ffs := wal.NewFaultFS(wal.OSFS{})
			clk := NewManualClock(epoch)
			cfg := walConfig(clk, dir, ffs, 0)
			s, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			s.Start()
			runScriptCancel(t, s, clk, ops[:100], 0, 0)
			// Stop the loop without a drain snapshot but keep the page cache:
			// history is group-synced, so a full cache discard would leave a
			// bare header. The torn tail below IS the crash damage under test.
			s.crash()
			histPath := cfg.WALPath + ".hist" // New() defaults HistoryPath here
			if fi, err := os.Stat(histPath); err != nil || fi.Size() <= 16 {
				t.Fatalf("history log empty before damage (size %v, err %v); test proves nothing", fi, err)
			}
			dmg.tear(t, histPath)

			s, info, err := Recover(cfg)
			if err != nil {
				t.Fatalf("recover with torn history: %v", err)
			}
			if !info.TornHistory {
				t.Fatal("torn history tail not reported")
			}
			if dmg.loses && info.HistoryAppended == 0 {
				t.Fatal("recovery re-appended nothing; the torn entry was not repaired")
			}
			s.Start()
			runScriptCancel(t, s, clk, ops[100:], 100, 0)
			clk.Advance(24 * time.Hour)
			st, err := s.Drain()
			if err != nil {
				t.Fatal(err)
			}
			if got := renderRecords(st.Records); got != want {
				t.Fatalf("torn-history recovery differs from uninterrupted run:\n got:\n%s\nwant:\n%s", got, want)
			}
		})
	}
}

// TestServeHistoryShortWriteSweep injects a short write at a sweep of points
// in the live write path (WAL appends and history appends both pass through
// the same FS), letting the daemon degrade, then crashes and recovers. The
// durable prefix must always recover cleanly — whatever the torn frame hit —
// and the daemon must keep working afterwards.
func TestServeHistoryShortWriteSweep(t *testing.T) {
	ops := makeScript(71, 120, 32, false)
	epoch := time.Unix(1700000000, 0)
	for _, after := range []int{0, 3, 17, 44, 101} {
		t.Run(fmt.Sprint(after), func(t *testing.T) {
			dir := t.TempDir()
			ffs := wal.NewFaultFS(wal.OSFS{})
			clk := NewManualClock(epoch)
			cfg := walConfig(clk, dir, ffs, 0)
			s, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			s.Start()
			runScriptCancel(t, s, clk, ops[:40], 0, 0)
			ffs.ShortWrites(true)
			ffs.FailWritesAfter(after)
			// Keep submitting until the fault lands and the daemon degrades;
			// acks must keep flowing the whole time.
			for i, op := range ops[40:] {
				clk.Advance(op.advance)
				if _, err := s.Submit(op.req); err != nil {
					t.Fatalf("submit %d after write fault: %v (must degrade, not fail)", 40+i, err)
				}
				if s.Degraded() {
					break
				}
			}
			if !s.Degraded() {
				t.Fatal("write fault never tripped degraded mode")
			}
			s.crash()
			if err := ffs.Crash(); err != nil {
				t.Fatal(err)
			}
			ffs.FailWritesAfter(-1)
			ffs.ShortWrites(false)

			s, info, err := Recover(cfg)
			if err != nil {
				t.Fatalf("recover after short write at %d: %v", after, err)
			}
			// The replay re-derived and byte-verified every surviving record;
			// divergence would have failed Recover. The daemon must be fully
			// operational on the repaired logs.
			if info.Applied < 0 || info.Verified < 0 {
				t.Fatalf("nonsense recovery info: %+v", info)
			}
			s.Start()
			if _, err := s.Submit(JobRequest{Procs: 1, Runtime: 10}); err != nil {
				t.Fatalf("post-recovery submit: %v", err)
			}
			clk.Advance(24 * time.Hour)
			if _, err := s.Drain(); err != nil {
				t.Fatal(err)
			}
		})
	}
}
