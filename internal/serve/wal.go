package serve

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/metrics"
	"repro/internal/trace"
	"repro/internal/wal"
)

// Durability layer (DESIGN.md §13). Three files cooperate:
//
//	snapshot  (cfg.SnapshotPath)   live state, atomically replaced, O(state)
//	wal       (cfg.WALPath)        state-changing commands since the last
//	                               rotation: submit / cancel / clock advance
//	history   (cfg.HistoryPath)    append-only stream of every completed
//	                               record (job start+end), never rewritten
//
// Every state-changing command is framed, CRC'd and (unless WALNoSync)
// fsync'd into the WAL before the client sees its acknowledgement, so a
// SIGKILL at any instant loses no accepted submission. Recovery loads the
// snapshot, replays the WAL tail onto it and — because the kernel is
// deterministic — re-derives exactly the records the crashed process had
// produced; the history log is the witness: the re-derived stream is
// byte-compared against it. Job starts and finishes are not replayed as
// commands precisely because they are derived: a record is emitted at
// dispatch with its completion time fixed (no preemption), so the start
// entry subsumes the finish.

// WAL record kinds. The history log reuses the same framing with
// walKindRecord entries.
const (
	walKindSubmit  = 1
	walKindCancel  = 2
	walKindAdvance = 3
	walKindRecord  = 4
)

// walRec is one decoded WAL or history record.
type walRec struct {
	kind byte
	job  *trace.Job // submit, record
	id   int        // cancel
	time int64      // cancel, advance
	// start/end complete a walKindRecord entry.
	start, end int64
	idem       string
}

func appendJobFields(buf []byte, j *trace.Job) []byte {
	buf = binary.LittleEndian.AppendUint64(buf, uint64(j.ID))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(j.Submit))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(j.Runtime))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(j.Request))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(j.Procs))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(j.Mem))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(j.Priority))
	return buf
}

func decodeJobFields(p []byte) (*trace.Job, []byte, error) {
	if len(p) < 7*8 {
		return nil, nil, errors.New("serve: truncated job fields in wal record")
	}
	u := func(i int) int64 { return int64(binary.LittleEndian.Uint64(p[i*8:])) }
	j := &trace.Job{
		ID:       int(u(0)),
		Submit:   u(1),
		Runtime:  u(2),
		Request:  u(3),
		Procs:    int(u(4)),
		Mem:      int(u(5)),
		Priority: int(u(6)),
		Status:   1,
	}
	return j, p[7*8:], nil
}

func encodeSubmit(buf []byte, j *trace.Job, idem string) []byte {
	buf = append(buf, walKindSubmit)
	buf = appendJobFields(buf, j)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(idem)))
	buf = append(buf, idem...)
	return buf
}

func encodeCancel(buf []byte, id int, t int64) []byte {
	buf = append(buf, walKindCancel)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(id))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(t))
	return buf
}

func encodeAdvance(buf []byte, t int64) []byte {
	buf = append(buf, walKindAdvance)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(t))
	return buf
}

func encodeRecord(buf []byte, r metrics.Record) []byte {
	buf = append(buf, walKindRecord)
	buf = appendJobFields(buf, r.Job)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(r.Start))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(r.End))
	return buf
}

func decodeWalRec(p []byte) (walRec, error) {
	if len(p) == 0 {
		return walRec{}, errors.New("serve: empty wal record")
	}
	kind, body := p[0], p[1:]
	switch kind {
	case walKindSubmit:
		j, rest, err := decodeJobFields(body)
		if err != nil {
			return walRec{}, err
		}
		if len(rest) < 2 {
			return walRec{}, errors.New("serve: truncated idempotency key length")
		}
		n := int(binary.LittleEndian.Uint16(rest))
		if len(rest) < 2+n {
			return walRec{}, errors.New("serve: truncated idempotency key")
		}
		return walRec{kind: kind, job: j, idem: string(rest[2 : 2+n])}, nil
	case walKindCancel:
		if len(body) < 16 {
			return walRec{}, errors.New("serve: truncated cancel record")
		}
		return walRec{
			kind: kind,
			id:   int(binary.LittleEndian.Uint64(body)),
			time: int64(binary.LittleEndian.Uint64(body[8:])),
		}, nil
	case walKindAdvance:
		if len(body) < 8 {
			return walRec{}, errors.New("serve: truncated advance record")
		}
		return walRec{kind: kind, time: int64(binary.LittleEndian.Uint64(body))}, nil
	case walKindRecord:
		j, rest, err := decodeJobFields(body)
		if err != nil {
			return walRec{}, err
		}
		if len(rest) < 16 {
			return walRec{}, errors.New("serve: truncated record entry")
		}
		return walRec{
			kind:  kind,
			job:   j,
			start: int64(binary.LittleEndian.Uint64(rest)),
			end:   int64(binary.LittleEndian.Uint64(rest[8:])),
		}, nil
	default:
		return walRec{}, fmt.Errorf("serve: unknown wal record kind %d", kind)
	}
}

// --- scheduler-side logging hooks (run goroutine only) ---

// walActive reports whether the durability layer is up (configured and not
// degraded).
func (s *Scheduler) walActive() bool { return s.wlog != nil }

// degrade flips the daemon into degraded in-memory mode: the durability
// layer is closed, the reason is surfaced through /healthz, Stats and the
// rlbf_degraded gauge, and scheduling continues without persistence. The
// daemon prefers dropping durability over dropping jobs.
func (s *Scheduler) degrade(op string, err error) {
	if s.degraded.Load() {
		return
	}
	reason := fmt.Sprintf("%s: %v", op, err)
	s.degradedReason.Store(reason)
	s.degraded.Store(true)
	s.mDegraded.Set(1)
	if s.wlog != nil {
		s.wlog.Close()
		s.wlog = nil
	}
	if s.hlog != nil {
		s.hlog.Close()
		s.hlog = nil
	}
	log.Printf("serve: %s: durability lost (%s); continuing degraded in-memory", s.cfg.Name, reason)
	if s.feed != nil {
		// A degraded daemon cannot replicate (its WAL no longer advances).
		// With a live follower attached the follower holds the complete
		// acked history, so the right move is to stand down and let the
		// lease expiry promote it — continuing to accept writes here would
		// fork history the moment it does. Without followers, degraded
		// in-memory service remains the lesser evil.
		if s.feed.HasFollower(replLiveWindow(s.cfg)) && s.role.CompareAndSwap(RolePrimary, RoleFenced) {
			s.mRole.Set(int64(RoleFenced))
			log.Printf("serve: %s: durability lost with a live follower attached; self-fencing so the follower can take over", s.cfg.Name)
		}
		s.feed.Close()
	}
}

// replLiveWindow is how recently a follower session must have been heard
// from to count as alive. Stream long-polls are capped at one second
// server-side, so a healthy follower refreshes well inside this window.
func replLiveWindow(cfg Config) time.Duration {
	return max(3*cfg.ReplAckTimeout, 3*time.Second)
}

// Degraded reports whether the durability layer has failed and the daemon is
// running in-memory only.
func (s *Scheduler) Degraded() bool { return s.degraded.Load() }

// DegradedReason returns the first durability failure, or "".
func (s *Scheduler) DegradedReason() string {
	if r, ok := s.degradedReason.Load().(string); ok {
		return r
	}
	return ""
}

// walAppend frames one record into the WAL; failures degrade. The payload is
// also queued (copied — callers reuse encBuf) for the replication feed,
// published at the next round boundary so batch ends line up with history
// digest samples.
func (s *Scheduler) walAppend(payload []byte) {
	if s.wlog == nil {
		return
	}
	if err := s.wlog.Append(payload); err != nil {
		s.degrade("wal append", err)
		return
	}
	if s.feed != nil {
		s.repPend = append(s.repPend, append([]byte(nil), payload...))
	}
	s.mWALRecords.Inc()
	s.mWALBytes.Set(s.wlog.Size())
	s.walCount.Store(int64(s.wlog.Records()))
}

// walAdvance logs a clock advance that is about to fire engine events, so
// replay reaches the same instant before the same events.
func (s *Scheduler) walAdvance(now int64) {
	if s.wlog == nil {
		return
	}
	s.encBuf = encodeAdvance(s.encBuf[:0], now)
	s.walAppend(s.encBuf)
}

// walSync makes the WAL durable before a client acknowledgement. No-op when
// WALNoSync opted out of per-command fsync (group commit at snapshots only).
func (s *Scheduler) walSync() {
	if s.wlog == nil || s.cfg.WALNoSync {
		return
	}
	t0 := time.Now()
	err := s.wlog.Sync()
	s.hWALSync.Observe(time.Since(t0).Seconds())
	if err != nil {
		s.degrade("wal sync", err)
	}
}

// walHistory appends one completed record to the history log (group-synced
// at snapshot boundaries — history is re-derivable from the WAL, so it needs
// no per-record fsync).
func (s *Scheduler) walHistory(r metrics.Record) {
	if s.hlog == nil {
		return
	}
	s.encBuf = encodeRecord(s.encBuf[:0], r)
	if err := s.hlog.Append(s.encBuf); err != nil {
		s.degrade("history append", err)
		return
	}
	s.histCount++
	s.histDigest = wal.Digest(s.histDigest, s.encBuf)
}

// maybeCompact rotates the durability files once the WAL has accumulated
// CompactEvery records: sync history, atomically write a fresh live-state
// snapshot (generation g+1), then truncate the WAL by creating generation
// g+1. Both the per-snapshot write cost (O(live state)) and recovery replay
// (O(records since snapshot)) stay bounded instead of O(history). Followers
// never compact on their own — their rotations mirror the primary's via the
// stream, keeping generation numbers (the fencing tokens) aligned.
func (s *Scheduler) maybeCompact() {
	if s.wlog == nil || s.wlog.Records() < s.cfg.CompactEvery || s.role.Load() != RolePrimary {
		return
	}
	s.compact()
}

// compact writes a rotation snapshot and starts WAL generation walGen+1.
// Crash windows are all safe: before the snapshot rename the old
// snapshot+WAL pair is intact; between rename and rotation the new snapshot
// supersedes the old WAL, whose generation now reads as stale and is
// discarded on recovery.
func (s *Scheduler) compact() { s.compactTo(s.walGen + 1) }

// compactTo rotates to an explicit generation: the primary always targets
// walGen+1; a follower mirrors whatever generation the primary's stream
// announces.
func (s *Scheduler) compactTo(gen uint64) {
	if s.degraded.Load() {
		return
	}
	// Publish any pending records first so the feed's previous-generation
	// buffer is complete before it rotates.
	s.publishRepl()
	if s.hlog != nil {
		if err := s.hlog.Sync(); err != nil {
			s.degrade("history sync", err)
			return
		}
	}
	st, err := s.captureState()
	if err != nil {
		s.degrade("capture state", err)
		return
	}
	st.WALGen = gen
	st.WALRecords = 0
	st.Records = nil // the history log owns the record stream
	data, err := marshalState(st)
	if err != nil {
		s.degrade("snapshot marshal", err)
		return
	}
	if err := wal.WriteFileAtomic(s.fs, s.cfg.SnapshotPath, data); err != nil {
		s.degrade("snapshot write", err)
		return
	}
	if s.wlog != nil {
		s.wlog.Close()
	}
	wl, err := wal.Create(s.fs, s.cfg.WALPath, gen)
	if err != nil {
		s.wlog = nil
		s.degrade("wal rotate", err)
		return
	}
	s.wlog = wl
	s.setGen(gen)
	s.walCount.Store(0)
	s.mCompactions.Inc()
	s.mWALBytes.Set(wl.Size())
	if s.feed != nil {
		s.feed.Rotate(gen, data, s.histCount, s.histDigest)
	}
}

// setGen updates the run goroutine's generation and its atomic shadow.
func (s *Scheduler) setGen(gen uint64) {
	s.walGen = gen
	s.walGenA.Store(gen)
}

// writeSnapshot persists the current state outside the rotation path (the
// periodic timer, cmdSnapshot, drain). In WAL mode it writes the compact
// live-state form tied to the current generation; with the WAL degraded or
// unconfigured it writes the legacy self-contained snapshot with the full
// record history.
func (s *Scheduler) writeSnapshot(st *State) error {
	if s.cfg.SnapshotPath == "" {
		return nil
	}
	if !s.walActive() {
		return writeStateFS(s.fs, s.cfg.SnapshotPath, st)
	}
	if s.hlog != nil {
		if err := s.hlog.Sync(); err != nil {
			s.degrade("history sync", err)
			return err
		}
	}
	cp := *st
	cp.Records = nil
	cp.WALGen = s.walGen
	cp.WALRecords = s.wlog.Records()
	if err := writeStateFS(s.fs, s.cfg.SnapshotPath, &cp); err != nil {
		s.degrade("snapshot write", err)
		return err
	}
	return nil
}

// closeWAL syncs and closes the durability files (drain path).
func (s *Scheduler) closeWAL() {
	if s.wlog != nil {
		if err := s.wlog.Sync(); err != nil {
			s.degrade("wal sync", err)
		}
	}
	if s.hlog != nil {
		if err := s.hlog.Sync(); err != nil {
			s.degrade("history sync", err)
		}
	}
	if s.wlog != nil {
		s.wlog.Close()
		s.wlog = nil
	}
	if s.hlog != nil {
		s.hlog.Close()
		s.hlog = nil
	}
}

// initFreshWAL brings the durability files up for a brand-new daemon: an
// empty history log and, via compact, an initial snapshot plus WAL
// generation 1 — so recovery always finds a consistent triple, even after a
// crash seconds into the first run.
func (s *Scheduler) initFreshWAL() error {
	hl, err := wal.Create(s.fs, s.cfg.HistoryPath, 1)
	if err != nil {
		return fmt.Errorf("serve: create history log: %w", err)
	}
	s.hlog = hl
	s.walGen = 0
	s.compact() // writes snapshot gen 1, creates WAL gen 1
	if s.degraded.Load() {
		return fmt.Errorf("serve: init durability: %s", s.DegradedReason())
	}
	return nil
}

// --- recovery ---

// RecoveryInfo summarizes what Recover found and proved.
type RecoveryInfo struct {
	SnapshotLoaded bool  `json:"snapshot_loaded"`
	SnapshotClock  int64 `json:"snapshot_clock"`
	WALGen         uint64
	// PriorRecords came from the history log (completed before the
	// snapshot); Applied commands were replayed from the WAL tail; Rederived
	// records were produced by that replay; Verified of them were
	// byte-compared against the history log's post-snapshot entries.
	PriorRecords int
	Applied      int
	Rederived    int
	Verified     int
	// HistoryAppended history entries were missing (unsynced at the crash)
	// and re-written from the replay; HistoryTruncated orphan entries ran
	// ahead of the recoverable state and were dropped — replay re-derives
	// them identically as the clock re-advances.
	HistoryAppended  int
	HistoryTruncated int
	TornWAL          bool
	TornHistory      bool
	Elapsed          time.Duration
}

// ErrReplayDivergence reports that WAL replay produced a record stream that
// differs from the history log — determinism is broken or a file was
// tampered with, and the operator must intervene rather than trust either.
var ErrReplayDivergence = errors.New("serve: wal replay diverges from history log")

// Recover rebuilds a scheduler from the durability triple at
// cfg.SnapshotPath / cfg.WALPath / cfg.HistoryPath: load the snapshot (or
// start empty), replay the WAL tail, byte-verify the re-derived records
// against the history log, repair torn tails, and immediately compact so the
// next crash recovers from a fresh generation. Missing files are not errors
// — a daemon that crashed before its first snapshot recovers from whatever
// subset exists.
func Recover(cfg Config) (*Scheduler, *RecoveryInfo, error) {
	return recoverInternal(cfg, true)
}

// RecoverFenced is Recover for a daemon that already knows a peer holds a
// newer generation (FenceCheck): it rebuilds state for read service but skips
// the final compaction, so an unreplicated WAL tail is NOT rebased into a
// fresh generation that could tie with — while forking from — the promoted
// peer's lineage. The on-disk generation stays visibly stale, which lets a
// later -follow restart detect it and re-bootstrap from the new primary
// instead of resuming a forked history.
func RecoverFenced(cfg Config) (*Scheduler, *RecoveryInfo, error) {
	return recoverInternal(cfg, false)
}

// recoverInternal is Recover with the final compaction optional: a primary
// always compacts (bumping the generation, which doubles as taking a fresh
// fencing token); a restarting follower must NOT — its generation has to
// keep matching the primary's so the stream resumes in place.
func recoverInternal(cfg Config, compactAfter bool) (*Scheduler, *RecoveryInfo, error) {
	t0 := time.Now()
	if cfg.WALPath == "" {
		return nil, nil, errors.New("serve: Recover requires Config.WALPath")
	}
	applyWALDefaults(&cfg)
	fs := cfg.FS
	info := &RecoveryInfo{}

	// 1. Snapshot.
	var st *State
	switch loaded, err := readStateFS(fs, cfg.SnapshotPath); {
	case err == nil:
		st = loaded
		info.SnapshotLoaded = true
		info.SnapshotClock = st.SimClock
	case errors.Is(err, os.ErrNotExist):
	default:
		return nil, nil, err
	}

	// 2. History log: every record completed so far, split at the snapshot
	// boundary into prior history and the post-snapshot suffix the replay
	// must reproduce.
	var hres *wal.ReplayResult
	switch res, err := wal.Replay(fs, cfg.HistoryPath); {
	case err == nil:
		hres = res
		info.TornHistory = res.Torn
	case errors.Is(err, os.ErrNotExist):
		hres = &wal.ReplayResult{Gen: 1}
	default:
		return nil, nil, fmt.Errorf("serve: history log: %w", err)
	}
	histJobs := make([]metrics.Record, 0, len(hres.Records))
	for i, p := range hres.Records {
		rec, err := decodeWalRec(p)
		if err != nil || rec.kind != walKindRecord {
			return nil, nil, fmt.Errorf("serve: history entry %d: %v", i, err)
		}
		histJobs = append(histJobs, metrics.Record{Job: rec.job, Start: rec.start, End: rec.end})
	}
	histBase := 0
	if st != nil {
		histBase = st.HistoryCount
		if histBase > len(histJobs) {
			// The snapshot write syncs history first, so this means a file
			// was deleted or rolled back out-of-band. Recover what exists.
			log.Printf("serve: history log holds %d records, snapshot expects %d; continuing with what exists",
				len(histJobs), histBase)
			histBase = len(histJobs)
		}
	}

	// 3. Build the scheduler at the snapshot state, with prior history from
	// the history log rather than the snapshot body.
	var s *Scheduler
	var err error
	if st != nil {
		s, err = newFromStateWithPrior(cfg, st, histJobs[:histBase])
	} else {
		s, err = newEmpty(cfg)
	}
	if err != nil {
		return nil, nil, err
	}
	info.PriorRecords = histBase

	// 4. WAL tail: same generation as the snapshot, minus the prefix the
	// snapshot already reflects. A stale generation (crash inside compact,
	// after the snapshot rename and before the rotation) is wholly covered
	// by the snapshot and discarded.
	gen := uint64(1)
	skip := 0
	if st != nil {
		gen, skip = st.WALGen, st.WALRecords
		if gen == 0 {
			gen = 1 // legacy snapshot predating the WAL: adopt it as gen 1
			skip = 0
		}
	}
	var cmds [][]byte
	var wres *wal.ReplayResult
	switch res, err := wal.Replay(fs, cfg.WALPath); {
	case err == nil:
		wres = res
		info.TornWAL = wres.Torn
		switch {
		case wres.Gen == gen:
			if skip < len(wres.Records) {
				cmds = wres.Records[skip:]
			}
		case wres.Gen < gen:
			// Pre-rotation log; everything in it is inside the snapshot.
			wres = nil
		default:
			return nil, nil, fmt.Errorf("serve: wal generation %d is newer than snapshot generation %d — refusing to guess", wres.Gen, gen)
		}
	case errors.Is(err, os.ErrNotExist):
	default:
		return nil, nil, fmt.Errorf("serve: wal: %w", err)
	}

	// 5. Replay commands. The kernel is deterministic, so applying the same
	// submissions, cancellations and clock advances to the snapshot state
	// reproduces exactly the schedule the crashed process computed.
	maxClock := s.eng.Now()
	for i, p := range cmds {
		rec, err := decodeWalRec(p)
		if err != nil {
			return nil, nil, fmt.Errorf("serve: wal record %d: %v", skip+i, err)
		}
		switch rec.kind {
		case walKindSubmit:
			if err := s.eng.Inject(rec.job); err != nil {
				return nil, nil, fmt.Errorf("serve: replaying submit of job %d: %v", rec.job.ID, err)
			}
			s.submitted[rec.job.ID] = rec.job
			if rec.idem != "" {
				s.idem[rec.idem] = rec.job.ID
			}
			if rec.job.ID >= s.nextID {
				s.nextID = rec.job.ID + 1
			}
			s.mSubmits.Inc()
			if rec.job.Submit > maxClock {
				maxClock = rec.job.Submit
			}
		case walKindCancel:
			s.stepTo(rec.time)
			if s.eng.Cancel(rec.id) {
				s.mCancels.Inc()
			}
			s.canceledIDs[rec.id] = true
			if rec.time > maxClock {
				maxClock = rec.time
			}
		case walKindAdvance:
			s.stepTo(rec.time)
			if rec.time > maxClock {
				maxClock = rec.time
			}
		default:
			return nil, nil, fmt.Errorf("serve: wal record %d has kind %d, not a command", skip+i, rec.kind)
		}
	}
	info.Applied = len(cmds)

	// 6. Verify: the re-derived record stream must byte-match the history
	// log's post-snapshot suffix on their common prefix.
	rederived := s.eng.Records()
	info.Rederived = len(rederived)
	post := histJobs[histBase:]
	common := min(len(post), len(rederived))
	var enc []byte
	for i := 0; i < common; i++ {
		enc = encodeRecord(enc[:0], rederived[i])
		if !bytes.Equal(enc, hres.Records[histBase+i]) {
			return nil, nil, fmt.Errorf("%w: record %d: replay {job %d start %d end %d} vs history {job %d start %d end %d}",
				ErrReplayDivergence, histBase+i,
				rederived[i].Job.ID, rederived[i].Start, rederived[i].End,
				post[i].Job.ID, post[i].Start, post[i].End)
		}
	}
	info.Verified = common
	info.HistoryTruncated = len(post) - common

	// 7. Repair the history log: keep header + prior + verified entries
	// (dropping both any torn tail and any orphan entries that ran ahead of
	// the recoverable state — replay re-derives those identically), then
	// append the entries the crash lost.
	keep := histBase + common
	goodSize := int64(16) // wal header
	for _, p := range hres.Records[:keep] {
		goodSize += 8 + int64(len(p))
	}
	var hl *wal.Log
	if _, err := fs.Stat(cfg.HistoryPath); errors.Is(err, os.ErrNotExist) {
		hl, err = wal.Create(fs, cfg.HistoryPath, 1)
		if err != nil {
			return nil, nil, fmt.Errorf("serve: create history log: %w", err)
		}
	} else {
		hl, err = wal.OpenAppend(fs, cfg.HistoryPath, &wal.ReplayResult{
			Gen: hres.Gen, Records: hres.Records[:keep], GoodSize: goodSize,
		})
		if err != nil {
			return nil, nil, fmt.Errorf("serve: reopen history log: %w", err)
		}
	}
	s.hlog = hl
	s.histCount = keep
	s.histDigest = 0
	for _, p := range hres.Records[:keep] {
		s.histDigest = wal.Digest(s.histDigest, p)
	}
	for _, r := range rederived[common:] {
		s.walHistory(r)
		info.HistoryAppended++
	}

	// 8. Adopt the re-derived records into the daemon bookkeeping and
	// re-anchor the clock at the furthest instant the log proves was
	// reached.
	for _, r := range rederived {
		s.started[r.Job.ID] = r
		s.mStarted.Inc()
	}
	s.recSeen = len(rederived)
	if c := s.eng.Now(); c > maxClock {
		maxClock = c
	}
	if st != nil && st.SimClock > maxClock {
		maxClock = st.SimClock
	}
	s.simEpoch = maxClock
	s.replClock = maxClock
	s.setGen(gen)

	if compactAfter {
		// 9. Compact immediately: the next crash recovers from a fresh
		// snapshot and an empty WAL instead of re-replaying this tail, which
		// keeps crash-loop recovery time bounded.
		s.compact()
		if s.degraded.Load() {
			return nil, nil, fmt.Errorf("serve: post-recovery compaction: %s", s.DegradedReason())
		}
	} else {
		// 9'. Follower restart: reopen the WAL in place (torn tail repaired)
		// so the stream resumes at (gen, record count) instead of forking a
		// new generation.
		var wl *wal.Log
		if wres != nil {
			wl, err = wal.OpenAppend(fs, cfg.WALPath, wres)
		} else {
			wl, err = wal.Create(fs, cfg.WALPath, gen)
		}
		if err != nil {
			return nil, nil, fmt.Errorf("serve: reopen wal: %w", err)
		}
		s.wlog = wl
		s.walCount.Store(int64(wl.Records()))
		s.mWALBytes.Set(wl.Size())
	}
	info.WALGen = s.walGen
	info.Elapsed = time.Since(t0)
	return s, info, nil
}

// stepTo advances the engine through every event at or before t (the replay
// twin of advanceTo, without wall-clock metrics or WAL writes).
func (s *Scheduler) stepTo(t int64) {
	for {
		et, ok := s.eng.NextEventTime()
		if !ok || et > t {
			return
		}
		s.eng.Step()
	}
}
