package serve

import (
	"fmt"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/backfill"
	"repro/internal/metrics"
	"repro/internal/sched"
	"repro/internal/stats"
)

// scriptOp is one step of a deterministic daemon script: advance the manual
// clock, then submit a job.
type scriptOp struct {
	advance time.Duration
	req     JobRequest
}

// makeScript builds a reproducible submission script.
func makeScript(seed uint64, n, maxProcs int, priorities bool) []scriptOp {
	rng := stats.NewRNG(seed)
	ops := make([]scriptOp, n)
	for i := range ops {
		run := 1 + int64(rng.Uint64()%600)
		op := scriptOp{
			advance: time.Duration(rng.Uint64()%30) * time.Second,
			req: JobRequest{
				Procs:   1 + int(rng.Uint64()%uint64(maxProcs)),
				Runtime: run,
				// Request left 0: the daemon defaults it to Runtime, giving
				// exact estimates — the regime where conservative predictions
				// are provably stable.
			},
		}
		if priorities {
			op.req.Priority = int(rng.Uint64() % 3)
		}
		ops[i] = op
	}
	return ops
}

func testConfig(clk Clock) Config {
	return Config{
		Name: "test", Procs: 32,
		Policy:     sched.FCFS{},
		Backfiller: backfill.NewConservative(backfill.RequestTime{}),
		Estimator:  backfill.RequestTime{},
		TimeScale:  1,
		Clock:      clk,
	}
}

// renderRecords canonicalizes a record history for byte comparison.
func renderRecords(recs []metrics.Record) string {
	var sb strings.Builder
	for _, r := range recs {
		fmt.Fprintf(&sb, "%d %d %d %d %d\n", r.Job.ID, r.Job.Submit, r.Job.Procs, r.Start, r.End)
	}
	return sb.String()
}

func runScript(t *testing.T, s *Scheduler, clk *ManualClock, ops []scriptOp) {
	t.Helper()
	for _, op := range ops {
		clk.Advance(op.advance)
		if _, err := s.Submit(op.req); err != nil {
			t.Fatalf("submit: %v", err)
		}
	}
}

// TestSchedulerCrashRecoveryByteIdentical is the crash-recovery round trip
// the issue pins: run half a submission script, snapshot to JSON, abandon
// the daemon, resume a fresh one from the file, run the second half — and
// the merged schedule must be byte-identical to an uninterrupted run of the
// whole script.
func TestSchedulerCrashRecoveryByteIdentical(t *testing.T) {
	for _, seed := range []uint64{5, 21} {
		ops := makeScript(seed, 300, 32, false)
		half := len(ops) / 2
		epoch := time.Unix(1700000000, 0)

		// Uninterrupted reference.
		refClk := NewManualClock(epoch)
		ref, err := New(testConfig(refClk))
		if err != nil {
			t.Fatal(err)
		}
		ref.Start()
		runScript(t, ref, refClk, ops)
		refClk.Advance(24 * time.Hour) // let everything finish
		refState, err := ref.Drain()
		if err != nil {
			t.Fatal(err)
		}

		// Interrupted run: first half, snapshot to disk, kill.
		path := filepath.Join(t.TempDir(), "state.json")
		clk := NewManualClock(epoch)
		cfg := testConfig(clk)
		cfg.SnapshotPath = path
		first, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		first.Start()
		runScript(t, first, clk, ops[:half])
		if _, err := first.CaptureState(); err != nil {
			t.Fatal(err)
		}
		// Simulate the crash: stop the loop without using its drain state.
		if _, err := first.Drain(); err != nil {
			t.Fatal(err)
		}

		// Resume from the on-disk snapshot (full JSON round trip) and play
		// the rest of the script on the same wall clock.
		st, err := ReadState(path)
		if err != nil {
			t.Fatal(err)
		}
		resumed, err := NewFromState(testConfig(clk), st)
		if err != nil {
			t.Fatal(err)
		}
		resumed.Start()
		runScript(t, resumed, clk, ops[half:])
		clk.Advance(24 * time.Hour)
		finState, err := resumed.Drain()
		if err != nil {
			t.Fatal(err)
		}

		want := renderRecords(refState.Records)
		got := renderRecords(finState.Records)
		if got != want {
			t.Fatalf("seed %d: resumed schedule differs from uninterrupted run:\n got:\n%s\nwant:\n%s", seed, got, want)
		}
		if len(finState.Records) == 0 || len(finState.Records) != len(ops) {
			t.Fatalf("seed %d: %d records, want %d", seed, len(finState.Records), len(ops))
		}
	}
}

// TestSchedulerDrainSnapshotResumable pins that the snapshot written by
// Drain itself (not just CaptureState) resumes exactly.
func TestSchedulerDrainSnapshotResumable(t *testing.T) {
	ops := makeScript(9, 120, 32, false)
	epoch := time.Unix(1700000000, 0)

	refClk := NewManualClock(epoch)
	ref, err := New(testConfig(refClk))
	if err != nil {
		t.Fatal(err)
	}
	ref.Start()
	runScript(t, ref, refClk, ops)
	refClk.Advance(24 * time.Hour)
	refState, err := ref.Drain()
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "drain.json")
	clk := NewManualClock(epoch)
	cfg := testConfig(clk)
	cfg.SnapshotPath = path
	first, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	first.Start()
	runScript(t, first, clk, ops[:40])
	if _, err := first.Drain(); err != nil {
		t.Fatal(err)
	}
	st, err := ReadState(path)
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := NewFromState(testConfig(clk), st)
	if err != nil {
		t.Fatal(err)
	}
	resumed.Start()
	runScript(t, resumed, clk, ops[40:])
	clk.Advance(24 * time.Hour)
	finState, err := resumed.Drain()
	if err != nil {
		t.Fatal(err)
	}
	if got, want := renderRecords(finState.Records), renderRecords(refState.Records); got != want {
		t.Fatalf("drain-snapshot resume differs:\n got:\n%s\nwant:\n%s", got, want)
	}
}

// TestSchedulerPredictedStartNeverLater is the predicted-start consistency
// property: under conservative backfilling with exact runtime estimates, the
// /status predicted start of a waiting job never moves later as arrivals,
// starts and completions play out — and the job finally starts no later than
// its last prediction. (With overestimated requests early completions can
// produce Graham-style anomalies; exact estimates are the regime where
// conservative reservations are guarantees. See DESIGN.md §12.)
func TestSchedulerPredictedStartNeverLater(t *testing.T) {
	for _, seed := range []uint64{11, 33, 77} {
		ops := makeScript(seed, 250, 32, false)
		clk := NewManualClock(time.Unix(1700000000, 0))
		s, err := New(testConfig(clk))
		if err != nil {
			t.Fatal(err)
		}
		s.Start()

		last := map[int]int64{} // job -> latest observed prediction
		checkAll := func() {
			for id, prev := range last {
				st, err := s.Status(id)
				if err != nil {
					t.Fatal(err)
				}
				switch st.State {
				case "queued":
					if st.PredictedStart < 0 {
						continue
					}
					if st.PredictedStart > prev {
						t.Fatalf("seed %d: job %d predicted start moved later: %d -> %d", seed, id, prev, st.PredictedStart)
					}
					last[id] = st.PredictedStart
				case "running", "finished":
					if st.Start > prev {
						t.Fatalf("seed %d: job %d started at %d, later than last prediction %d", seed, id, st.Start, prev)
					}
					delete(last, id)
				default:
					t.Fatalf("seed %d: job %d in unexpected state %q", seed, id, st.State)
				}
			}
		}

		for _, op := range ops {
			clk.Advance(op.advance)
			res, err := s.Submit(op.req)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Started {
				if res.PredictedStart < 0 {
					t.Fatalf("seed %d: queued job %d got no prediction", seed, res.ID)
				}
				last[res.ID] = res.PredictedStart
			}
			checkAll()
		}
		clk.Advance(24 * time.Hour)
		if err := s.Sync(); err != nil {
			t.Fatal(err)
		}
		checkAll()
		if len(last) != 0 {
			t.Fatalf("seed %d: %d jobs never started", seed, len(last))
		}
		if _, err := s.Drain(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestSchedulerPredictedStartPriorityException extends the property to
// priority scheduling: a waiting job's prediction may move later only when a
// strictly higher-priority job arrived since the previous observation — the
// one legitimate preemption of a conservative reservation.
func TestSchedulerPredictedStartPriorityException(t *testing.T) {
	for _, seed := range []uint64{13, 57} {
		ops := makeScript(seed, 250, 32, true)
		clk := NewManualClock(time.Unix(1700000000, 0))
		cfg := testConfig(clk)
		cfg.Scenario = sched.Scenario{Priorities: true}
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		s.Start()

		type obs struct {
			pred     int64
			arrivals int // global arrival count at observation time
		}
		last := map[int]obs{}
		prio := map[int]int{}
		var arrivalPrio []int // priority of every arrival, in order
		sawException := false

		checkAll := func() {
			for id, prev := range last {
				st, err := s.Status(id)
				if err != nil {
					t.Fatal(err)
				}
				switch st.State {
				case "queued":
					if st.PredictedStart < 0 {
						continue
					}
					if st.PredictedStart > prev.pred {
						higher := false
						for _, p := range arrivalPrio[prev.arrivals:] {
							if p > prio[id] {
								higher = true
								break
							}
						}
						if !higher {
							t.Fatalf("seed %d: job %d (prio %d) predicted start moved %d -> %d with no higher-priority arrival",
								seed, id, prio[id], prev.pred, st.PredictedStart)
						}
						sawException = true
					}
					last[id] = obs{st.PredictedStart, len(arrivalPrio)}
				case "running", "finished":
					delete(last, id)
				}
			}
		}

		for _, op := range ops {
			clk.Advance(op.advance)
			res, err := s.Submit(op.req)
			if err != nil {
				t.Fatal(err)
			}
			prio[res.ID] = op.req.Priority
			arrivalPrio = append(arrivalPrio, op.req.Priority)
			if !res.Started && res.PredictedStart >= 0 {
				last[res.ID] = obs{res.PredictedStart, len(arrivalPrio)}
			}
			checkAll()
		}
		if !sawException {
			t.Logf("seed %d: no priority preemption observed (property held vacuously)", seed)
		}
		if _, err := s.Drain(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestSchedulerCancelAndStatus exercises cancellation and the status states
// through the command API.
func TestSchedulerCancelAndStatus(t *testing.T) {
	clk := NewManualClock(time.Unix(1700000000, 0))
	cfg := testConfig(clk)
	cfg.Procs = 2
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Start()

	wide, err := s.Submit(JobRequest{Procs: 2, Runtime: 100})
	if err != nil || !wide.Started {
		t.Fatalf("first job should start immediately: %+v err %v", wide, err)
	}
	queued, err := s.Submit(JobRequest{Procs: 2, Runtime: 50})
	if err != nil || queued.Started {
		t.Fatalf("second job should queue: %+v err %v", queued, err)
	}
	if queued.PredictedStart != wide.Submit+100 {
		t.Fatalf("queued prediction %d, want %d", queued.PredictedStart, wide.Submit+100)
	}
	if ok, _ := s.CancelJob(queued.ID); !ok {
		t.Fatal("canceling queued job failed")
	}
	if ok, _ := s.CancelJob(wide.ID); ok {
		t.Fatal("canceling running job should fail")
	}
	if ok, _ := s.CancelJob(999); ok {
		t.Fatal("canceling unknown job should fail")
	}
	st, _ := s.Status(queued.ID)
	if st.State != "canceled" {
		t.Fatalf("state %q, want canceled", st.State)
	}
	st, _ = s.Status(wide.ID)
	if st.State != "running" {
		t.Fatalf("state %q, want running", st.State)
	}
	st, _ = s.Status(999)
	if st.State != "unknown" {
		t.Fatalf("state %q, want unknown", st.State)
	}
	clk.Advance(200 * time.Second)
	st, _ = s.Status(wide.ID)
	if st.State != "finished" || st.End != wide.Submit+100 {
		t.Fatalf("state %+v, want finished at %d", st, wide.Submit+100)
	}
	stats, err := s.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Accepted != 2 || stats.Canceled != 1 || stats.Started != 1 || stats.Finished != 1 {
		t.Fatalf("stats %+v, want accepted 2 / canceled 1 / started 1 / finished 1", stats)
	}
	if _, err := s.Drain(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(JobRequest{Procs: 1, Runtime: 1}); err != ErrStopped {
		t.Fatalf("submit after drain: %v, want ErrStopped", err)
	}
}
