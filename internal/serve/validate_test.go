package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestValidateFields pins the admission limits field by field: each bad value
// is rejected with a *ValidationError naming exactly the offending field.
func TestValidateFields(t *testing.T) {
	ok := JobRequest{Procs: 4, Mem: 64, Runtime: 100, Request: 200, Priority: 3, IdemKey: "k"}
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid request rejected: %v", err)
	}
	cases := []struct {
		name  string
		mut   func(r *JobRequest)
		field string
	}{
		{"zero procs", func(r *JobRequest) { r.Procs = 0 }, "procs"},
		{"negative procs", func(r *JobRequest) { r.Procs = -3 }, "procs"},
		{"huge procs", func(r *JobRequest) { r.Procs = MaxProcs + 1 }, "procs"},
		{"negative mem", func(r *JobRequest) { r.Mem = -1 }, "mem"},
		{"huge mem", func(r *JobRequest) { r.Mem = MaxMem + 1 }, "mem"},
		{"zero runtime", func(r *JobRequest) { r.Runtime = 0 }, "runtime"},
		{"negative runtime", func(r *JobRequest) { r.Runtime = -10 }, "runtime"},
		{"huge runtime", func(r *JobRequest) { r.Runtime = MaxRuntime + 1 }, "runtime"},
		{"negative request", func(r *JobRequest) { r.Request = -1 }, "request"},
		{"huge request", func(r *JobRequest) { r.Request = MaxRuntime + 1 }, "request"},
		{"priority overflow", func(r *JobRequest) { r.Priority = MaxPriority + 1 }, "priority"},
		{"priority underflow", func(r *JobRequest) { r.Priority = -MaxPriority - 1 }, "priority"},
		{"giant idem key", func(r *JobRequest) { r.IdemKey = strings.Repeat("x", MaxIdemKey+1) }, "idempotency-key"},
	}
	for _, tc := range cases {
		req := ok
		tc.mut(&req)
		err := req.Validate()
		var ve *ValidationError
		if !errors.As(err, &ve) {
			t.Errorf("%s: err %v, want *ValidationError", tc.name, err)
			continue
		}
		if ve.Field != tc.field {
			t.Errorf("%s: field %q, want %q", tc.name, ve.Field, tc.field)
		}
	}
	// Boundary values are accepted: the limits reject garbage, not big jobs.
	max := JobRequest{Procs: MaxProcs, Mem: MaxMem, Runtime: MaxRuntime,
		Request: MaxRuntime, Priority: MaxPriority, IdemKey: strings.Repeat("k", MaxIdemKey)}
	if err := max.Validate(); err != nil {
		t.Fatalf("boundary request rejected: %v", err)
	}
}

// TestServeSubmitValidationHTTP pins the wire contract for bad submissions:
// every malformed body answers 400 with a structured {"error","field"} JSON
// body, and nothing reaches the scheduler.
func TestServeSubmitValidationHTTP(t *testing.T) {
	s, _, ts := newTestDaemon(t, 16, 1000)
	cases := []struct {
		name  string
		body  string
		field string
	}{
		{"malformed json", `{not json`, "body"},
		{"empty body", ``, "body"},
		{"trailing garbage", `{"procs":1,"runtime":10} extra`, "body"},
		{"second object", `{"procs":1,"runtime":10}{"procs":2}`, "body"},
		{"unknown field", `{"procs":1,"runtime":10,"proc":2}`, "body"},
		{"wrong type", `{"procs":"four","runtime":10}`, "procs"},
		{"float procs", `{"procs":1.5,"runtime":10}`, "procs"},
		{"int64 overflow", `{"procs":1,"runtime":99999999999999999999999999}`, "runtime"},
		{"negative runtime", `{"procs":1,"runtime":-5}`, "runtime"},
		{"zero procs", `{"procs":0,"runtime":10}`, "procs"},
		{"huge procs", `{"procs":99999999,"runtime":10}`, "procs"},
		{"oversized body", `{"procs":1,"runtime":10,` +
			`"priority":` + strings.Repeat("1", maxRequestBody+16) + `}`, "body"},
	}
	for _, tc := range cases {
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (body %s)", tc.name, resp.StatusCode, buf.String())
			continue
		}
		var ve struct {
			Error string `json:"error"`
			Field string `json:"field"`
		}
		if err := json.Unmarshal(buf.Bytes(), &ve); err != nil {
			t.Errorf("%s: 400 body is not JSON: %q", tc.name, buf.String())
			continue
		}
		if ve.Error == "" || ve.Field != tc.field {
			t.Errorf("%s: body %q, want structured error on field %q", tc.name, buf.String(), tc.field)
		}
	}
	// The poison never reached the engine: a clean submit still works and is
	// the first accepted job.
	res, err := s.Submit(JobRequest{Procs: 1, Runtime: 10})
	if err != nil {
		t.Fatal(err)
	}
	if res.ID != 1 {
		t.Fatalf("first valid job got ID %d; a rejected request leaked through", res.ID)
	}
}

// FuzzJobRequestDecode drives arbitrary bytes through the HTTP decode path:
// whatever the input, the decoder must not panic and must either produce a
// Validate-clean request or a *ValidationError.
func FuzzJobRequestDecode(f *testing.F) {
	f.Add([]byte(`{"procs":1,"runtime":10}`))
	f.Add([]byte(`{"procs":-1}`))
	f.Add([]byte(`{"procs":1e309,"runtime":10}`))
	f.Add([]byte(`{"procs":1,"runtime":10}{"x":`))
	f.Add([]byte(`[1,2,3]`))
	f.Add([]byte(`"procs"`))
	f.Add([]byte{0xff, 0xfe, 0x00})
	f.Fuzz(func(t *testing.T, body []byte) {
		r := httptest.NewRequest(http.MethodPost, "/v1/jobs", bytes.NewReader(body))
		r.Header.Set("Idempotency-Key", "fuzz")
		w := httptest.NewRecorder()
		req, err := decodeJobRequest(w, r)
		if err != nil {
			var ve *ValidationError
			if !errors.As(err, &ve) {
				t.Fatalf("decode error %v is not a *ValidationError", err)
			}
			return
		}
		if verr := req.Validate(); verr != nil {
			t.Fatalf("decode accepted a request that Validate rejects: %+v (%v)", req, verr)
		}
	})
}
