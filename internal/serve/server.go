package serve

import (
	"encoding/json"
	"errors"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"

	"repro/internal/pool"
	"repro/internal/replica"
)

// Server is the HTTP/JSON front end over a Scheduler. Request handling is
// bounded by an internal/pool semaphore: at most MaxInflight requests hold a
// slot at once, and up to maxQueued more wait FIFO inside Acquire — under
// overload the daemon degrades to bounded queueing, and past the queue bound
// it sheds load with 429 + Retry-After instead of letting latency and
// goroutine count grow without limit. Submissions carry an optional
// Idempotency-Key header, so a shed or timed-out request can be retried
// without risk of double-enqueueing.
//
// Routes:
//
//	POST   /v1/jobs        submit a job        (JobRequest -> SubmitResult)
//	GET    /v1/jobs/{id}   job status          (JobStatus)
//	DELETE /v1/jobs/{id}   cancel a job        ({"id":N,"canceled":bool})
//	GET    /statz          daemon accounting   (Stats)
//	GET    /metrics        Prometheus text exposition
//	GET    /healthz        liveness (ok / degraded, 503 once draining)
type Server struct {
	sched    *Scheduler
	slots    *pool.Pool
	maxLoad  int64
	inflight atomic.Int64 // requests holding or waiting for a slot
}

// NewServer wraps a scheduler. maxInflight bounds concurrently handled
// requests (< 1 defaults to 256); maxQueued bounds how many more may wait
// for a slot before load shedding kicks in (< 1 defaults to 4×maxInflight).
func NewServer(s *Scheduler, maxInflight, maxQueued int) *Server {
	if maxInflight < 1 {
		maxInflight = 256
	}
	if maxQueued < 1 {
		maxQueued = 4 * maxInflight
	}
	return &Server{sched: s, slots: pool.New(maxInflight), maxLoad: int64(maxInflight + maxQueued)}
}

// Handler returns the daemon's route mux.
func (sv *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/jobs", sv.bounded(sv.handleJobs))
	mux.HandleFunc("/v1/jobs/", sv.bounded(sv.handleJob))
	mux.HandleFunc("/statz", sv.bounded(sv.handleStatz))
	mux.HandleFunc("/metrics", sv.handleMetrics)
	mux.HandleFunc("/healthz", sv.handleHealthz)
	if feed := sv.sched.Feed(); feed != nil {
		// Replication endpoints (stream/snapshot/history) for followers.
		// Deliberately outside the admission semaphore: replication must keep
		// flowing while client load is being shed.
		replica.NewHandler(feed, sv.sched).Register(mux)
	}
	return mux
}

// bounded wraps a handler with the admission semaphore and its shedding
// bound: a request that would make the waiting line exceed maxQueued is
// turned away immediately with 429 + Retry-After, never parked.
func (sv *Server) bounded(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if sv.inflight.Add(1) > sv.maxLoad {
			sv.inflight.Add(-1)
			sv.sched.mShed.Inc()
			w.Header().Set("Retry-After", "1")
			httpError(w, http.StatusTooManyRequests, "admission queue full, retry later")
			return
		}
		defer sv.inflight.Add(-1)
		if sv.slots.Acquire(1) == 0 {
			httpError(w, http.StatusServiceUnavailable, "server shutting down")
			return
		}
		defer sv.slots.Release(1)
		h(w, r)
	}
}

// Close aborts the admission pool, releasing queued requests with a 503.
func (sv *Server) Close() { sv.slots.Abort() }

func (sv *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	req, err := decodeJobRequest(w, r)
	if err != nil {
		writeValidation(w, err)
		return
	}
	res, err := sv.sched.Submit(req)
	if sv.writeRoleError(w, err) {
		return
	}
	switch {
	case errors.Is(err, ErrDraining):
		httpError(w, http.StatusServiceUnavailable, err.Error())
	case errors.Is(err, ErrStopped):
		httpError(w, http.StatusServiceUnavailable, err.Error())
	case err != nil:
		writeValidation(w, err)
	default:
		writeJSON(w, http.StatusAccepted, res)
	}
}

// writeRoleError maps replica-role refusals: a follower answers 503 with a
// Retry-After and a leader hint so clients fail over; a fenced ex-primary
// answers 409 — retrying here is pointless, the generation is stale for good.
func (sv *Server) writeRoleError(w http.ResponseWriter, err error) bool {
	switch {
	case errors.Is(err, ErrFollower):
		w.Header().Set("Retry-After", "1")
		if leader := sv.sched.LeaderHint(); leader != "" {
			w.Header().Set("X-Rlbf-Leader", leader)
		}
		httpError(w, http.StatusServiceUnavailable, err.Error())
		return true
	case errors.Is(err, ErrFenced):
		httpError(w, http.StatusConflict, err.Error())
		return true
	}
	return false
}

// writeValidation renders a validation failure as a structured 400 body
// ({"error": ..., "field": ...}); other errors keep the plain error shape.
func writeValidation(w http.ResponseWriter, err error) {
	var ve *ValidationError
	if errors.As(err, &ve) {
		writeJSON(w, http.StatusBadRequest, ve)
		return
	}
	httpError(w, http.StatusBadRequest, err.Error())
}

func (sv *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	idStr := strings.TrimPrefix(r.URL.Path, "/v1/jobs/")
	id, err := strconv.Atoi(idStr)
	if err != nil || id < 1 {
		httpError(w, http.StatusBadRequest, "bad job id "+idStr)
		return
	}
	switch r.Method {
	case http.MethodGet:
		st, err := sv.sched.Status(id)
		if err != nil {
			httpError(w, http.StatusServiceUnavailable, err.Error())
			return
		}
		code := http.StatusOK
		if st.State == "unknown" {
			code = http.StatusNotFound
		}
		writeJSON(w, code, st)
	case http.MethodDelete:
		ok, err := sv.sched.CancelJob(id)
		if sv.writeRoleError(w, err) {
			return
		}
		if err != nil {
			httpError(w, http.StatusServiceUnavailable, err.Error())
			return
		}
		code := http.StatusOK
		if !ok {
			code = http.StatusConflict // already started, finished, or unknown
		}
		writeJSON(w, code, map[string]any{"id": id, "canceled": ok})
	default:
		httpError(w, http.StatusMethodNotAllowed, "GET or DELETE only")
	}
}

func (sv *Server) handleStatz(w http.ResponseWriter, r *http.Request) {
	st, err := sv.sched.Stats()
	if err != nil {
		httpError(w, http.StatusServiceUnavailable, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (sv *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	sv.sched.Registry().WritePrometheus(w)
}

// handleHealthz reports liveness plus the replica position (name, role, WAL
// generation, applied records) that peers' election and fencing probes read.
// Degraded (durability lost, scheduling continues in-memory) still answers
// 200 so orchestrators don't kill a daemon that is holding live jobs, but the
// status and reason flag it for alerting; draining answers 503 so load
// balancers stop routing here — the body still carries the position, because
// a fencing probe against a draining peer must see its generation.
func (sv *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	h := replica.Health{
		Status:  "ok",
		Name:    sv.sched.cfg.Name,
		Role:    sv.sched.Role(),
		Gen:     sv.sched.WALGen(),
		Applied: sv.sched.WALApplied(),
		LeaseMS: sv.sched.gLeaseAge.Value() * 1000,
	}
	code := http.StatusOK
	switch {
	case sv.sched.Draining():
		h.Status, h.Reason = "draining", "draining"
		code = http.StatusServiceUnavailable
	case sv.sched.Degraded():
		h.Status, h.Reason = "degraded", sv.sched.DegradedReason()
	}
	writeJSON(w, code, h)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}
