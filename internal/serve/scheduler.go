// Package serve turns the batch scheduling simulator into a long-lived
// scheduler service: a single authoritative sim.Engine driven in real or
// scaled time by streaming job submissions, cancellations and status queries
// from many concurrent clients (DESIGN.md §12).
//
// The concurrency model is single-writer: every engine mutation happens on
// one goroutine (run), which consumes commands from an unbuffered channel.
// HTTP handlers — bounded by the shared internal/pool semaphore — only ever
// send commands and wait for replies, so the scheduling kernel needs no
// locks and stays exactly the deterministic batch kernel. The clock adapter
// maps wall time to simulation seconds (simNow = simEpoch + elapsed *
// TimeScale); between commands the goroutine sleeps until the next pending
// engine event's wall deadline. Periodic snapshots give crash recovery:
// CaptureState marshals the engine snapshot plus the daemon bookkeeping, and
// NewFromState resumes a byte-identical schedule.
package serve

import (
	"errors"
	"fmt"
	"log"
	"maps"
	"runtime"
	"sort"
	"sync/atomic"
	"time"

	"repro/internal/backfill"
	"repro/internal/metrics"
	"repro/internal/replica"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/wal"
)

// Config assembles a scheduler daemon.
type Config struct {
	// Name labels the deployment (snapshot files, logs).
	Name string
	// Procs and Mem size the machine (Mem 0 disables the memory dimension).
	Procs, Mem int
	// Policy is the base scheduling policy; required.
	Policy sched.Policy
	// Backfiller runs when the head job cannot start; nil disables
	// backfilling.
	Backfiller backfill.Backfiller
	// Scenario layers priority tiers / starvation bounds onto the policy.
	Scenario sched.Scenario
	// Estimator predicts runtimes for reservations and predicted-start
	// answers; nil defaults to RequestTime (plain EASY semantics).
	Estimator backfill.Estimator
	// TimeScale is simulated seconds per wall-clock second; 0 defaults to 1
	// (real time). 3600 runs an hour of cluster time per second.
	TimeScale float64
	// Clock abstracts wall time; nil defaults to RealClock.
	Clock Clock
	// SnapshotPath, when non-empty, receives periodic JSON state snapshots
	// (atomic tmp+rename) and the final drain snapshot.
	SnapshotPath string
	// SnapshotEvery is the wall-clock snapshot cadence; 0 disables periodic
	// snapshots (the drain snapshot still happens).
	SnapshotEvery time.Duration
	// PredictCap bounds the queue depth up to which predicted starts are
	// computed: projecting is O(queue) profile placements, so a deep backlog
	// would turn every status query into a full plan. 0 defaults to 4096;
	// beyond the cap /status reports the job queued without a prediction.
	PredictCap int
	// Registry receives the daemon's metrics; nil creates a private one.
	Registry *metrics.Registry
	// WALPath, when non-empty, enables the durability layer (DESIGN.md §13):
	// every state-changing command is appended to a checksummed write-ahead
	// log and fsync'd before the client sees its acknowledgement, so a crash
	// at any instant loses no accepted work. Requires SnapshotPath.
	WALPath string
	// HistoryPath is the append-only completed-record log paired with the
	// WAL; "" defaults to WALPath + ".hist".
	HistoryPath string
	// CompactEvery rotates the durability files once the WAL holds this many
	// records (snapshot + fresh generation), bounding both log growth and
	// recovery replay. 0 defaults to 4096.
	CompactEvery int
	// WALNoSync skips the per-command fsync (group commit at snapshot and
	// compaction boundaries only). Faster, but a crash may lose the last
	// acknowledged commands — recovery stays consistent, not complete.
	WALNoSync bool
	// FS abstracts the filesystem for fault-injection tests; nil = the real
	// one.
	FS wal.FS
	// Lease is the failover lease: a follower that cannot make stream
	// progress against its primary for this long promotes itself. Also
	// advertised via /healthz so operators see the configured window. 0
	// defaults to 3s.
	Lease time.Duration
	// Peers lists the other replicas' base URLs. A restarting primary
	// probes them before recovery: any peer at a higher WAL generation
	// means this daemon was failed over while down, and it fences itself.
	Peers []string
	// RoundBudget arms the stuck-round watchdog: if one scheduling pass
	// (command handling plus its engine advance) exceeds the budget, the
	// watchdog sets rlbf_round_stalled and logs a full goroutine dump.
	// 0 disables.
	RoundBudget time.Duration
	// ReplAckTimeout bounds the semi-synchronous replication ack: with a
	// live follower attached, submit/cancel acks wait up to this long for
	// the follower to durably apply the record before degrading (for that
	// ack) to asynchronous replication. 0 defaults to 1s.
	ReplAckTimeout time.Duration
}

// applyWALDefaults resolves the durability defaults shared by the
// constructors and Recover.
func applyWALDefaults(cfg *Config) {
	if cfg.FS == nil {
		cfg.FS = wal.OSFS{}
	}
	if cfg.WALPath != "" && cfg.HistoryPath == "" {
		cfg.HistoryPath = cfg.WALPath + ".hist"
	}
	if cfg.CompactEvery <= 0 {
		cfg.CompactEvery = 4096
	}
	if cfg.Lease <= 0 {
		cfg.Lease = 3 * time.Second
	}
	if cfg.ReplAckTimeout <= 0 {
		cfg.ReplAckTimeout = time.Second
	}
}

// Errors the command API returns.
var (
	// ErrDraining rejects submissions once drain has begun.
	ErrDraining = errors.New("serve: draining, not accepting submissions")
	// ErrStopped rejects every command after the scheduler loop has exited.
	ErrStopped = errors.New("serve: scheduler stopped")
	// ErrFollower rejects writes on a replica that is following a primary.
	ErrFollower = errors.New("serve: not primary (following)")
	// ErrFenced rejects writes on a fenced ex-primary: a peer holds a
	// newer WAL generation, so accepting anything here would fork history.
	ErrFenced = errors.New("serve: fenced: a newer primary generation exists")
	// ErrNotFollower rejects Promote on a scheduler that is not following.
	ErrNotFollower = errors.New("serve: promote: not a follower")
	// ErrReplicaDivergence reports that applying the primary's stream
	// produced a derived record stream whose digest differs from the
	// primary's — determinism is broken and the replica must not be
	// trusted (and in particular must never promote itself).
	ErrReplicaDivergence = errors.New("serve: replica diverges from primary history digest")
)

// Replica roles. A scheduler is born a primary; NewFollower constructs
// followers; Fence demotes a zombie primary.
const (
	RolePrimary int32 = iota
	RoleFollower
	RoleFenced
)

func roleName(r int32) string {
	switch r {
	case RoleFollower:
		return "follower"
	case RoleFenced:
		return "fenced"
	default:
		return "primary"
	}
}

// JobRequest is a client submission.
type JobRequest struct {
	Procs    int   `json:"procs"`
	Mem      int   `json:"mem,omitempty"`
	Runtime  int64 `json:"runtime"`
	Request  int64 `json:"request,omitempty"`
	Priority int   `json:"priority,omitempty"`
	// IdemKey, when non-empty, deduplicates retries: a key already seen
	// returns the original job's acknowledgement (Duplicate set) instead of
	// enqueueing a second copy. Carried by the Idempotency-Key HTTP header,
	// persisted through snapshots and the WAL.
	IdemKey string `json:"-"`
}

// SubmitResult acknowledges a submission.
type SubmitResult struct {
	ID             int   `json:"id"`
	Submit         int64 `json:"submit"`
	Started        bool  `json:"started"`
	PredictedStart int64 `json:"predicted_start"` // -1 when unavailable
	// Duplicate marks a replayed acknowledgement for an idempotency key that
	// was already accepted.
	Duplicate bool `json:"duplicate,omitempty"`
}

// JobStatus answers "when will my job start?".
type JobStatus struct {
	ID             int    `json:"id"`
	State          string `json:"state"` // queued, running, finished, canceled, unknown
	Submit         int64  `json:"submit,omitempty"`
	PredictedStart int64  `json:"predicted_start,omitempty"` // -1 when unavailable
	Start          int64  `json:"start,omitempty"`
	End            int64  `json:"end,omitempty"`
	Wait           int64  `json:"wait,omitempty"`
}

// Stats is the daemon's live accounting (the /statz endpoint).
type Stats struct {
	Name            string  `json:"name"`
	SimClock        int64   `json:"sim_clock"`
	TimeScale       float64 `json:"time_scale"`
	Procs           int     `json:"procs"`
	FreeProcs       int     `json:"free_procs"`
	QueueDepth      int     `json:"queue_depth"`
	PendingArrivals int     `json:"pending_arrivals"`
	Running         int     `json:"running"`
	Accepted        int64   `json:"accepted"`
	Canceled        int64   `json:"canceled"`
	Started         int64   `json:"started"`
	Finished        int64   `json:"finished"`
	Decisions       int64   `json:"decisions"`
	DecisionP50Ms   float64 `json:"decision_p50_ms"`
	DecisionP99Ms   float64 `json:"decision_p99_ms"`
	DecisionMaxMs   float64 `json:"decision_max_ms"`
	SubmitP50Ms     float64 `json:"submit_p50_ms"`
	SubmitP99Ms     float64 `json:"submit_p99_ms"`
	SubmitMaxMs     float64 `json:"submit_max_ms"`
	Draining        bool    `json:"draining"`
	WALGen          uint64  `json:"wal_gen,omitempty"`
	WALRecords      int64   `json:"wal_records_total,omitempty"`
	WALBytes        int64   `json:"wal_bytes,omitempty"`
	Compactions     int64   `json:"wal_compactions,omitempty"`
	WALSyncP99Ms    float64 `json:"wal_sync_p99_ms,omitempty"`
	Shed            int64   `json:"shed,omitempty"`
	Degraded        bool    `json:"degraded,omitempty"`
	Role            string  `json:"role,omitempty"`
	ReplFollowers   int     `json:"repl_followers,omitempty"`
	ReplLag         int     `json:"repl_lag_records,omitempty"`
	ReplAckTimeouts int64   `json:"repl_ack_timeouts,omitempty"`
	FencedWrites    int64   `json:"fenced_writes,omitempty"`
	Failovers       int64   `json:"failovers,omitempty"`
	RoundStalls     int64   `json:"round_stalls,omitempty"`
}

type cmdKind int

const (
	cmdSubmit cmdKind = iota
	cmdCancel
	cmdStatus
	cmdStats
	cmdSync
	cmdSnapshot
	cmdDrain
	cmdApply
	cmdPromote
	cmdReseed
)

type command struct {
	kind   cmdKind
	req    JobRequest
	id     int
	batch  *applyBatch
	reseed *bootstrapData
	reply  chan reply
}

// applyBatch is one replication batch handed to the run goroutine: WAL
// payloads to mirror and apply, the primary's history cursor at the batch
// end, and an optional rotation to mirror afterwards.
type applyBatch struct {
	payloads   [][]byte
	histCount  int
	histDigest uint32
	rotateTo   uint64
}

type reply struct {
	sub    SubmitResult
	status JobStatus
	ok     bool
	stats  Stats
	state  *State
	seq    int // follower position after a cmdApply
	err    error
}

// Scheduler owns the live engine. Construct with New or NewFromState, call
// Start, and issue commands through the exported methods; every method is
// safe for concurrent use (they serialize on the command channel).
type Scheduler struct {
	cfg   Config
	clock Clock
	scale float64
	est   backfill.Estimator

	wallEpoch time.Time
	simEpoch  int64

	cmds     chan command
	done     chan struct{}
	killC    chan struct{}
	draining atomic.Bool

	// Degraded mode: flipped (never cleared) by the run goroutine when the
	// durability layer fails; read by /healthz and Stats.
	degraded       atomic.Bool
	degradedReason atomic.Value // string

	// Replication. role is written by the run goroutine (promote) and by
	// Fence; feed is the primary-side stream buffer (nil without a WAL).
	// walGenA/walCount shadow the run-goroutine walGen/wlog.Records() for
	// lock-free reads from /healthz and the fencing probes. roundT0 is the
	// watchdog's start-of-round stamp (0 = idle).
	role       atomic.Int32
	leaderHint atomic.Value // string: primary base URL, set on followers
	feed       *replica.Feed
	walGenA    atomic.Uint64
	walCount   atomic.Int64
	roundT0    atomic.Int64
	testSlow   func() // test hook: injected delay inside a round

	// Everything below is owned by the run goroutine.
	fs         wal.FS
	wlog       *wal.Log // command write-ahead log; nil = WAL off or degraded
	hlog       *wal.Log // append-only completed-record history
	walGen     uint64
	histCount  int
	histDigest uint32   // chained CRC32C over history payloads
	repPend    [][]byte // WAL payloads appended since the last feed publish
	replClock  int64    // furthest instant seen in applied batches (follower)
	encBuf     []byte
	idem       map[string]int // idempotency key -> assigned job ID

	eng       *sim.Engine
	pred      backfill.Predictor
	qbuf      []*trace.Job
	planBuf   []backfill.PlannedStart
	predCache map[int]int64
	predStamp int64 // decisions count the cache was built at
	predClock int64 // sim clock the cache was built at

	nextID      int
	submitted   map[int]*trace.Job
	canceledIDs map[int]bool
	started     map[int]metrics.Record
	recSeen     int
	prior       []metrics.Record // records carried over from a resumed state

	reg        *metrics.Registry
	mSubmits   *metrics.Counter
	mCancels   *metrics.Counter
	mStatus    *metrics.Counter
	mDecisions *metrics.Counter
	mStarted   *metrics.Counter
	mQueue     *metrics.Gauge
	mFree      *metrics.Gauge
	mRunning   *metrics.Gauge
	hDecision  *metrics.Histogram
	hSubmit    *metrics.Histogram

	mShed        *metrics.Counter
	mWALRecords  *metrics.Counter
	mWALBytes    *metrics.Gauge
	mCompactions *metrics.Counter
	mDegraded    *metrics.Gauge
	hWALSync     *metrics.Histogram

	mRole            *metrics.Gauge
	mFenced          *metrics.Counter
	mFailovers       *metrics.Counter
	mReplFollowers   *metrics.Gauge
	mReplLag         *metrics.Gauge
	mReplPublished   *metrics.Counter
	mReplAckTimeouts *metrics.Counter
	mReplReseeds     *metrics.Counter
	gLeaseAge        *metrics.FGauge
	mRoundStalled    *metrics.Gauge
	mRoundStalls     *metrics.Counter
}

// New prepares a scheduler over an empty cluster, initializing the
// durability files when WALPath is configured. Call Start to begin serving.
func New(cfg Config) (*Scheduler, error) {
	s, err := newEmpty(cfg)
	if err != nil {
		return nil, err
	}
	if s.cfg.WALPath != "" {
		if err := s.initFreshWAL(); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// newEmpty builds the in-memory scheduler over an empty cluster without
// touching the durability files (Recover attaches them itself).
func newEmpty(cfg Config) (*Scheduler, error) {
	s, err := newScheduler(cfg)
	if err != nil {
		return nil, err
	}
	eng, err := sim.NewLiveEngine(cfg.Name, cfg.Procs, cfg.Mem, s.simConfig())
	if err != nil {
		return nil, err
	}
	s.eng = eng
	s.nextID = 1
	return s, nil
}

// NewFromState resumes a scheduler from a legacy self-contained snapshot
// (record history embedded in the state). WAL-mode recovery goes through
// Recover instead, which also replays the log tail.
func NewFromState(cfg Config, st *State) (*Scheduler, error) {
	return newFromStateWithPrior(cfg, st, st.Records)
}

// newFromStateWithPrior rebuilds the engine via sim.NewEngineFromSnapshot
// with an explicit prior-record history (embedded in the snapshot for legacy
// states, loaded from the history log in WAL mode), and re-anchors the clock
// adapter so simulation time continues from the snapshot clock.
func newFromStateWithPrior(cfg Config, st *State, prior []metrics.Record) (*Scheduler, error) {
	if st.Procs != cfg.Procs || st.Mem != cfg.Mem {
		return nil, fmt.Errorf("serve: state machine %d procs/%d mem does not match config %d/%d",
			st.Procs, st.Mem, cfg.Procs, cfg.Mem)
	}
	s, err := newScheduler(cfg)
	if err != nil {
		return nil, err
	}
	rest := &trace.Trace{Name: cfg.Name, Procs: cfg.Procs, Mem: cfg.Mem, Jobs: st.Pending}
	snap := sim.Snapshot{Clock: st.SimClock, Queued: st.Queued, Running: st.Running}
	eng, err := sim.NewEngineFromSnapshot(rest, s.simConfig(), snap)
	if err != nil {
		return nil, err
	}
	s.eng = eng
	s.simEpoch = st.SimClock
	s.nextID = st.NextID
	s.prior = prior
	for _, r := range prior {
		s.started[r.Job.ID] = r
		s.submitted[r.Job.ID] = r.Job
	}
	for _, j := range st.Queued {
		s.submitted[j.ID] = j
	}
	for _, j := range st.Pending {
		s.submitted[j.ID] = j
	}
	for _, id := range st.Canceled {
		s.canceledIDs[id] = true
	}
	for k, id := range st.Idem {
		s.idem[k] = id
	}
	s.mStarted.Add(int64(len(prior)))
	return s, nil
}

func newScheduler(cfg Config) (*Scheduler, error) {
	if cfg.Policy == nil {
		return nil, errors.New("serve: config needs a base scheduling policy")
	}
	if cfg.Procs <= 0 {
		return nil, fmt.Errorf("serve: non-positive machine size %d", cfg.Procs)
	}
	if cfg.TimeScale < 0 {
		return nil, fmt.Errorf("serve: negative time scale %g", cfg.TimeScale)
	}
	if cfg.WALPath != "" && cfg.SnapshotPath == "" {
		return nil, errors.New("serve: WALPath requires SnapshotPath (compaction writes snapshots)")
	}
	applyWALDefaults(&cfg)
	s := &Scheduler{
		cfg:         cfg,
		clock:       cfg.Clock,
		scale:       cfg.TimeScale,
		est:         cfg.Estimator,
		fs:          cfg.FS,
		cmds:        make(chan command),
		done:        make(chan struct{}),
		killC:       make(chan struct{}),
		submitted:   make(map[int]*trace.Job),
		canceledIDs: make(map[int]bool),
		started:     make(map[int]metrics.Record),
		idem:        make(map[string]int),
		predCache:   make(map[int]int64),
		predStamp:   -1,
		reg:         cfg.Registry,
	}
	if s.clock == nil {
		s.clock = RealClock{}
	}
	if s.scale == 0 {
		s.scale = 1
	}
	if s.est == nil {
		s.est = backfill.RequestTime{}
	}
	if s.cfg.PredictCap == 0 {
		s.cfg.PredictCap = 4096
	}
	if s.reg == nil {
		s.reg = metrics.NewRegistry()
	}
	s.wallEpoch = s.clock.Now()
	s.mSubmits = s.reg.NewCounter("rlbf_submissions_total", "Accepted job submissions.")
	s.mCancels = s.reg.NewCounter("rlbf_cancellations_total", "Successful job cancellations.")
	s.mStatus = s.reg.NewCounter("rlbf_status_queries_total", "Status queries served.")
	s.mDecisions = s.reg.NewCounter("rlbf_decisions_total", "Scheduling rounds (engine event batches).")
	s.mStarted = s.reg.NewCounter("rlbf_jobs_started_total", "Jobs dispatched to the cluster.")
	s.mQueue = s.reg.NewGauge("rlbf_queue_depth", "Waiting jobs.")
	s.mFree = s.reg.NewGauge("rlbf_free_procs", "Idle processors.")
	s.mRunning = s.reg.NewGauge("rlbf_running_jobs", "Executing jobs.")
	s.hDecision = s.reg.NewHistogram("rlbf_decision_latency_seconds",
		"Wall time of one scheduling round (engine event batch).", nil)
	s.hSubmit = s.reg.NewHistogram("rlbf_submit_latency_seconds",
		"Wall time to admit a submission and run its scheduling round.", nil)
	s.mShed = s.reg.NewCounter("rlbf_shed_total", "Submissions rejected by admission-queue load shedding.")
	s.mWALRecords = s.reg.NewCounter("rlbf_wal_records_total", "Records appended to the write-ahead log.")
	s.mWALBytes = s.reg.NewGauge("rlbf_wal_bytes", "Size of the current write-ahead log generation.")
	s.mCompactions = s.reg.NewCounter("rlbf_wal_compactions_total", "WAL compaction rotations.")
	s.mDegraded = s.reg.NewGauge("rlbf_degraded", "1 when durability has failed and scheduling continues in-memory.")
	s.hWALSync = s.reg.NewHistogram("rlbf_wal_sync_seconds", "Wall time of one WAL fsync.", nil)
	s.mRole = s.reg.NewGauge("rlbf_role", "Replica role: 0 primary, 1 follower, 2 fenced.")
	s.mFenced = s.reg.NewCounter("rlbf_fenced_total", "Writes refused because this replica is fenced (a newer primary generation exists).")
	s.mFailovers = s.reg.NewCounter("rlbf_failovers_total", "Promotions of this replica from follower to primary.")
	s.mReplFollowers = s.reg.NewGauge("rlbf_repl_followers", "Follower sessions heard from within the liveness window.")
	s.mReplLag = s.reg.NewGauge("rlbf_repl_lag_records", "Published WAL records not yet applied by the most advanced live follower.")
	s.mReplPublished = s.reg.NewCounter("rlbf_repl_published_total", "WAL records published to the replication feed.")
	s.mReplAckTimeouts = s.reg.NewCounter("rlbf_repl_ack_timeouts_total", "Semi-sync replication acks that timed out and degraded to async.")
	s.mReplReseeds = s.reg.NewCounter("rlbf_repl_rebootstraps_total", "Follower in-place re-bootstraps after falling out of the primary's feed retention window.")
	s.gLeaseAge = s.reg.NewFGauge("rlbf_lease_age_seconds", "Follower only: seconds since the last successful stream contact with the primary.")
	s.mRoundStalled = s.reg.NewGauge("rlbf_round_stalled", "1 while a scheduling round has exceeded its watchdog budget.")
	s.mRoundStalls = s.reg.NewCounter("rlbf_round_stalls_total", "Scheduling rounds that exceeded the watchdog budget.")
	if cfg.WALPath != "" {
		s.feed = replica.NewFeed()
	}
	return s, nil
}

func (s *Scheduler) simConfig() sim.Config {
	return sim.Config{Policy: s.cfg.Policy, Backfiller: s.cfg.Backfiller, Scenario: s.cfg.Scenario}
}

// Registry returns the metrics registry the daemon reports into.
func (s *Scheduler) Registry() *metrics.Registry { return s.reg }

// Feed returns the replication feed (nil without a WAL). The HTTP layer
// mounts replica.NewHandler over it.
func (s *Scheduler) Feed() *replica.Feed { return s.feed }

// Role returns the replica role as a string (primary, follower, fenced).
func (s *Scheduler) Role() string { return roleName(s.role.Load()) }

// WALGen returns the current WAL generation — the fencing token. Safe for
// concurrent use (it reads an atomic shadow of the run goroutine's state).
func (s *Scheduler) WALGen() uint64 { return s.walGenA.Load() }

// WALApplied returns the number of WAL records in the current generation,
// for peer election comparisons. Safe for concurrent use.
func (s *Scheduler) WALApplied() int64 { return s.walCount.Load() }

// LeaderHint returns the primary's base URL as known to a follower, or "".
func (s *Scheduler) LeaderHint() string {
	if v, ok := s.leaderHint.Load().(string); ok {
		return v
	}
	return ""
}

// Fence demotes this replica to the fenced role: peerGen at peer exceeds the
// local generation, meaning a follower was promoted while this daemon was
// primary (or down). All subsequent writes are refused with ErrFenced and
// counted in rlbf_fenced_total; reads keep working so operators can inspect
// the zombie's final state.
func (s *Scheduler) Fence(peer string, peerGen uint64) {
	if s.role.Swap(RoleFenced) == RoleFenced {
		return
	}
	if peer != "" {
		s.leaderHint.Store(peer)
	}
	s.mRole.Set(int64(RoleFenced))
	log.Printf("serve: %s: fenced: peer %s holds generation %d > local %d; refusing writes",
		s.cfg.Name, peer, peerGen, s.WALGen())
}

// Start launches the engine goroutine and, when RoundBudget is set, the
// stuck-round watchdog.
func (s *Scheduler) Start() {
	go s.run()
	if s.cfg.RoundBudget > 0 {
		go s.watchdog()
	}
}

// beginRound stamps the start of one scheduling pass for the watchdog;
// endRound clears it.
func (s *Scheduler) beginRound() { s.roundT0.Store(time.Now().UnixNano()) }
func (s *Scheduler) endRound()   { s.roundT0.Store(0) }

// watchdog polls the current round's age and raises rlbf_round_stalled — with
// a full goroutine dump in the log, so the stuck frame is captured while it
// is stuck — when one scheduling pass exceeds RoundBudget. The gauge clears
// when the round finally completes; each stalled round is reported once.
func (s *Scheduler) watchdog() {
	budget := s.cfg.RoundBudget
	tick := max(budget/8, 5*time.Millisecond)
	var reported int64
	for {
		select {
		case <-s.done:
			return
		case <-time.After(tick):
		}
		t0 := s.roundT0.Load()
		if t0 == 0 || t0 != reported {
			s.mRoundStalled.Set(0)
		}
		if t0 == 0 || t0 == reported {
			continue
		}
		if age := time.Duration(time.Now().UnixNano() - t0); age > budget {
			reported = t0
			s.mRoundStalled.Set(1)
			s.mRoundStalls.Inc()
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			log.Printf("serve: %s: scheduling round stalled: %v elapsed, budget %v; goroutine dump:\n%s",
				s.cfg.Name, age.Round(time.Millisecond), budget, buf[:n])
		}
	}
}

// StartDraining flips the daemon into drain mode: subsequent submissions are
// rejected with ErrDraining while cancellations and status queries keep
// working. Call Drain to stop the loop and collect the final state.
func (s *Scheduler) StartDraining() { s.draining.Store(true) }

// Draining reports whether drain mode is active.
func (s *Scheduler) Draining() bool { return s.draining.Load() }

// Submit admits one job at the current simulation time and runs its
// scheduling round. The reply carries the assigned ID and, when the queue is
// shallow enough (PredictCap), the job's projected start time.
func (s *Scheduler) Submit(req JobRequest) (SubmitResult, error) {
	r, err := s.do(command{kind: cmdSubmit, req: req})
	return r.sub, err
}

// CancelJob removes a waiting job. It reports false for jobs already
// started, finished or never seen.
func (s *Scheduler) CancelJob(id int) (bool, error) {
	r, err := s.do(command{kind: cmdCancel, id: id})
	return r.ok, err
}

// Status reports a job's state and projected start.
func (s *Scheduler) Status(id int) (JobStatus, error) {
	r, err := s.do(command{kind: cmdStatus, id: id})
	return r.status, err
}

// Stats returns the live accounting snapshot.
func (s *Scheduler) Stats() (Stats, error) {
	r, err := s.do(command{kind: cmdStats})
	return r.stats, err
}

// Sync advances the engine to the current simulation time and returns once
// every due event has been processed — the deterministic heartbeat manual
// clocks rely on.
func (s *Scheduler) Sync() error {
	_, err := s.do(command{kind: cmdSync})
	return err
}

// CaptureState advances to now and returns a consistent state snapshot
// (also written to SnapshotPath when configured).
func (s *Scheduler) CaptureState() (*State, error) {
	r, err := s.do(command{kind: cmdSnapshot})
	return r.state, err
}

// ApplyReplica mirrors one replication batch: the payloads are appended
// verbatim to the local WAL, applied to the engine (re-deriving the same
// schedule the primary computed), and the resulting history digest is
// compared against the primary's. rotateTo, when non-zero, rotates the local
// WAL to that generation afterwards, mirroring a primary compaction. It
// returns the local record count of the current generation — the follower's
// resumable stream position. Only meaningful on a follower.
func (s *Scheduler) ApplyReplica(payloads [][]byte, histCount int, histDigest uint32, rotateTo uint64) (int, error) {
	r, err := s.do(command{kind: cmdApply, batch: &applyBatch{
		payloads: payloads, histCount: histCount, histDigest: histDigest, rotateTo: rotateTo,
	}})
	return r.seq, err
}

// Reseed replaces a follower's state with a fresh verified bootstrap from the
// primary — the stream loop calls it when its position fell out of the
// primary's feed retention window. Only meaningful on a follower.
func (s *Scheduler) Reseed(b *bootstrapData) error {
	_, err := s.do(command{kind: cmdReseed, reseed: b})
	return err
}

// Promote turns a follower into the primary: the simulation clock re-anchors
// at the furthest applied instant, the WAL generation is bumped (the fencing
// token — a zombie ex-primary now probes a higher generation than its own
// and fences itself), and writes are accepted from here on.
func (s *Scheduler) Promote() error {
	_, err := s.do(command{kind: cmdPromote})
	return err
}

// Drain stops the scheduler loop: intake is closed, a final state snapshot
// is captured (and written to SnapshotPath when configured), and every
// subsequent command fails with ErrStopped. The returned state holds the
// complete record history for reporting.
func (s *Scheduler) Drain() (*State, error) {
	r, err := s.do(command{kind: cmdDrain})
	return r.state, err
}

// do sends one command to the engine goroutine and waits for its reply.
func (s *Scheduler) do(c command) (reply, error) {
	c.reply = make(chan reply, 1)
	select {
	case s.cmds <- c:
	case <-s.done:
		return reply{}, ErrStopped
	}
	r := <-c.reply
	return r, r.err
}

// run is the single-writer engine loop.
func (s *Scheduler) run() {
	defer close(s.done)
	var snapC <-chan time.Time
	if s.cfg.SnapshotEvery > 0 && s.cfg.SnapshotPath != "" {
		snapC = s.clock.After(s.cfg.SnapshotEvery)
	}
	for {
		var timerC <-chan time.Time
		// Only a primary self-advances: followers and fenced zombies move
		// their engines exclusively through applied stream batches, so their
		// schedules stay byte-aligned with the primary's.
		if s.role.Load() == RolePrimary {
			if t, ok := s.eng.NextEventTime(); ok {
				if d := s.wallUntil(t); d <= 0 {
					s.beginRound()
					s.advanceTo(s.simNow())
					s.endRound()
					continue
				} else {
					timerC = s.clock.After(d)
				}
			}
		}
		select {
		case c := <-s.cmds:
			s.beginRound()
			stop := s.handle(c)
			s.endRound()
			if stop {
				return
			}
			s.maybeCompact()
		case <-timerC:
			s.beginRound()
			s.advanceTo(s.simNow())
			s.endRound()
			s.maybeCompact()
		case <-snapC:
			s.beginRound()
			s.advanceNow()
			if st, err := s.captureState(); err == nil {
				_ = s.writeSnapshot(st)
			}
			s.endRound()
			snapC = s.clock.After(s.cfg.SnapshotEvery)
		case <-s.killC:
			// Test hook: die in place, like SIGKILL — no sync, no close, no
			// final snapshot.
			return
		}
	}
}

// crash terminates the run goroutine immediately without syncing or closing
// the durability files — the in-process stand-in for SIGKILL used by the
// crash-recovery tests.
func (s *Scheduler) crash() {
	close(s.killC)
	<-s.done
}

// simNow maps the wall clock to simulation seconds. The engine clock is a
// floor: simulation time never runs backwards even if the wall clock does.
func (s *Scheduler) simNow() int64 {
	elapsed := s.clock.Now().Sub(s.wallEpoch)
	now := s.simEpoch + int64(elapsed.Seconds()*s.scale)
	if ec := s.eng.Now(); now < ec {
		now = ec
	}
	return now
}

// wallUntil returns the wall-clock delay until simulation instant t.
func (s *Scheduler) wallUntil(t int64) time.Duration {
	deadline := s.wallEpoch.Add(time.Duration(float64(t-s.simEpoch) / s.scale * float64(time.Second)))
	return deadline.Sub(s.clock.Now())
}

// advanceNow advances a primary to the current simulation instant and
// returns it. On a follower or fenced replica the engine only moves via the
// replication stream, so reads are answered at the engine's own clock.
func (s *Scheduler) advanceNow() int64 {
	if s.role.Load() != RolePrimary {
		return s.eng.Now()
	}
	now := s.simNow()
	s.advanceTo(now)
	return now
}

// advanceTo processes every engine event due at or before simulation instant
// `now`, timing each event batch as one scheduling decision. When the
// advance will fire events, it is logged to the WAL first, so replay reaches
// the same instant before re-deriving the same events; idle advances write
// nothing.
func (s *Scheduler) advanceTo(now int64) {
	if t, ok := s.eng.NextEventTime(); ok && t <= now {
		s.walAdvance(now)
	}
	for {
		t, ok := s.eng.NextEventTime()
		if !ok || t > now {
			break
		}
		t0 := time.Now()
		s.eng.Step()
		s.hDecision.Observe(time.Since(t0).Seconds())
		s.mDecisions.Inc()
	}
	s.syncRecords()
	s.publishRepl()
	s.mQueue.Set(int64(s.eng.QueueLen()))
	s.mFree.Set(int64(s.eng.FreeProcs()))
	s.mRunning.Set(int64(s.eng.RunningCount()))
}

// syncRecords ingests newly appended engine records into the status map and
// the history log.
func (s *Scheduler) syncRecords() {
	recs := s.eng.Records()
	for ; s.recSeen < len(recs); s.recSeen++ {
		r := recs[s.recSeen]
		s.started[r.Job.ID] = r
		s.mStarted.Inc()
		s.walHistory(r)
	}
}

// handle executes one command; it reports true when the loop must exit.
func (s *Scheduler) handle(c command) bool {
	if s.testSlow != nil {
		s.testSlow()
	}
	switch c.kind {
	case cmdSubmit:
		sub, err := s.handleSubmit(c.req)
		c.reply <- reply{sub: sub, err: err}
	case cmdCancel:
		if err := s.writeAllowed(); err != nil {
			c.reply <- reply{err: err}
			return false
		}
		now := s.advanceNow()
		ok := false
		if !s.canceledIDs[c.id] {
			if _, startedAlready := s.started[c.id]; !startedAlready {
				ok = s.eng.Cancel(c.id)
			}
		}
		if ok {
			s.canceledIDs[c.id] = true
			s.mCancels.Inc()
			if s.wlog != nil {
				s.encBuf = encodeCancel(s.encBuf[:0], c.id, now)
				s.walAppend(s.encBuf)
				s.walSync()
				s.publishRepl()
				s.replWait()
			}
		}
		c.reply <- reply{ok: ok}
	case cmdStatus:
		s.mStatus.Inc()
		now := s.advanceNow()
		c.reply <- reply{status: s.statusOf(c.id, now)}
	case cmdStats:
		s.advanceNow()
		c.reply <- reply{stats: s.statsLocked()}
	case cmdSync:
		s.advanceNow()
		c.reply <- reply{}
	case cmdSnapshot:
		s.advanceNow()
		st, err := s.captureState()
		if err == nil {
			err = s.writeSnapshot(st)
		}
		c.reply <- reply{state: st, err: err}
	case cmdApply:
		seq, err := s.handleApply(c.batch)
		c.reply <- reply{seq: seq, err: err}
	case cmdPromote:
		c.reply <- reply{err: s.handlePromote()}
	case cmdReseed:
		c.reply <- reply{err: s.handleReseed(c.reseed)}
	case cmdDrain:
		s.draining.Store(true)
		s.advanceNow()
		st, err := s.captureState()
		if err == nil {
			err = s.writeSnapshot(st)
		}
		s.closeWAL()
		if s.feed != nil {
			s.feed.Close()
		}
		c.reply <- reply{state: st, err: err}
		return true
	}
	return false
}

// writeAllowed gates state-changing commands by role.
func (s *Scheduler) writeAllowed() error {
	switch s.role.Load() {
	case RoleFollower:
		return ErrFollower
	case RoleFenced:
		s.mFenced.Inc()
		log.Printf("serve: %s: fenced: write refused (generation %d is stale)", s.cfg.Name, s.WALGen())
		return ErrFenced
	}
	return nil
}

// handleSubmit admits one job at the current simulation instant. Events
// strictly before the submit time are processed first, then the arrival is
// injected and the engine advances through the submit instant — completions
// at that exact second are batched with the arrival into one scheduling
// round, matching the batch replay semantics (see sim.Engine.Step).
func (s *Scheduler) handleSubmit(req JobRequest) (SubmitResult, error) {
	if s.draining.Load() {
		return SubmitResult{}, ErrDraining
	}
	if err := s.writeAllowed(); err != nil {
		return SubmitResult{}, err
	}
	// Defense in depth: the HTTP layer validates before decoding reaches
	// here, but direct API users get the same contract.
	if err := req.Validate(); err != nil {
		return SubmitResult{}, err
	}
	if req.IdemKey != "" {
		if id, ok := s.idem[req.IdemKey]; ok {
			return s.duplicateAck(id), nil
		}
	}
	t0 := time.Now()
	now := s.simNow()
	s.advanceTo(now - 1)
	j := &trace.Job{
		ID:       s.nextID,
		Submit:   now,
		Runtime:  req.Runtime,
		Request:  req.Request,
		Procs:    req.Procs,
		Mem:      req.Mem,
		Priority: req.Priority,
		Status:   1,
	}
	if j.Request <= 0 {
		j.Request = j.Runtime // convenience: perfect user estimate
	}
	if err := s.eng.Inject(j); err != nil {
		return SubmitResult{}, err
	}
	s.nextID++
	s.submitted[j.ID] = j
	if req.IdemKey != "" {
		s.idem[req.IdemKey] = j.ID
	}
	if s.wlog != nil {
		s.encBuf = encodeSubmit(s.encBuf[:0], j, req.IdemKey)
		s.walAppend(s.encBuf)
	}
	s.advanceTo(now)
	s.walSync() // the ack below must not outrun the disk
	s.replWait()
	s.mSubmits.Inc()
	res := SubmitResult{ID: j.ID, Submit: now, PredictedStart: -1}
	if rec, ok := s.started[j.ID]; ok {
		res.Started = true
		res.PredictedStart = rec.Start
	} else if p, ok := s.predictedStart(j.ID, now); ok {
		res.PredictedStart = p
	}
	s.hSubmit.Observe(time.Since(t0).Seconds())
	return res, nil
}

// duplicateAck re-acknowledges a submission whose idempotency key was
// already accepted: the client retried after losing the original reply, so
// it gets the original job's identity back instead of a second enqueue.
func (s *Scheduler) duplicateAck(id int) SubmitResult {
	res := SubmitResult{ID: id, Duplicate: true, PredictedStart: -1}
	if j, ok := s.submitted[id]; ok {
		res.Submit = j.Submit
	}
	if rec, ok := s.started[id]; ok {
		res.Started = true
		res.PredictedStart = rec.Start
	}
	return res
}

// statusOf classifies a job after the engine has advanced to `now`.
func (s *Scheduler) statusOf(id int, now int64) JobStatus {
	if s.canceledIDs[id] {
		return JobStatus{ID: id, State: "canceled"}
	}
	if rec, ok := s.started[id]; ok {
		st := JobStatus{ID: id, Submit: rec.Job.Submit, Start: rec.Start, End: rec.End, Wait: rec.Wait()}
		if rec.End > now {
			st.State = "running"
		} else {
			st.State = "finished"
		}
		return st
	}
	j, ok := s.submitted[id]
	if !ok {
		return JobStatus{ID: id, State: "unknown"}
	}
	st := JobStatus{ID: id, State: "queued", Submit: j.Submit, PredictedStart: -1}
	if p, ok := s.predictedStart(id, now); ok {
		st.PredictedStart = p
		st.Wait = p - j.Submit
	}
	return st
}

// predictedStart answers from the reservation profile via the shared
// planner (backfill.Predictor), caching the full plan per engine state so a
// burst of status queries costs one projection. Queues beyond PredictCap are
// not projected (ok=false) — a deep backlog would make every query O(queue).
func (s *Scheduler) predictedStart(id int, now int64) (int64, bool) {
	decs := s.mDecisions.Value()
	if s.predStamp != decs || s.predClock != now {
		if s.eng.QueueLen() > s.cfg.PredictCap {
			return 0, false
		}
		s.qbuf = s.eng.AppendQueued(s.qbuf[:0])
		s.planBuf = s.pred.Project(s.eng, s.est, s.qbuf, s.planBuf[:0])
		clear(s.predCache)
		for _, p := range s.planBuf {
			s.predCache[p.Job.ID] = p.Start
		}
		s.predStamp = decs
		s.predClock = now
	}
	p, ok := s.predCache[id]
	return p, ok
}

// statsLocked assembles the Stats snapshot (run-goroutine only).
func (s *Scheduler) statsLocked() Stats {
	started := s.mStarted.Value()
	return Stats{
		Name:            s.cfg.Name,
		SimClock:        s.eng.Now(),
		TimeScale:       s.scale,
		Procs:           s.cfg.Procs,
		FreeProcs:       s.eng.FreeProcs(),
		QueueDepth:      s.eng.QueueLen(),
		PendingArrivals: s.eng.PendingArrivals(),
		Running:         s.eng.RunningCount(),
		Accepted:        s.mSubmits.Value(),
		Canceled:        s.mCancels.Value(),
		Started:         started,
		Finished:        started - int64(s.eng.RunningCount()),
		Decisions:       s.mDecisions.Value(),
		DecisionP50Ms:   s.hDecision.Quantile(0.5) * 1000,
		DecisionP99Ms:   s.hDecision.Quantile(0.99) * 1000,
		DecisionMaxMs:   s.hDecision.Max() * 1000,
		SubmitP50Ms:     s.hSubmit.Quantile(0.5) * 1000,
		SubmitP99Ms:     s.hSubmit.Quantile(0.99) * 1000,
		SubmitMaxMs:     s.hSubmit.Max() * 1000,
		Draining:        s.draining.Load(),
		WALGen:          s.walGen,
		WALRecords:      s.mWALRecords.Value(),
		WALBytes:        s.mWALBytes.Value(),
		Compactions:     s.mCompactions.Value(),
		WALSyncP99Ms:    s.hWALSync.Quantile(0.99) * 1000,
		Shed:            s.mShed.Value(),
		Degraded:        s.degraded.Load(),
		Role:            s.Role(),
		ReplFollowers:   int(s.mReplFollowers.Value()),
		ReplLag:         int(s.mReplLag.Value()),
		ReplAckTimeouts: s.mReplAckTimeouts.Value(),
		FencedWrites:    s.mFenced.Value(),
		Failovers:       s.mFailovers.Value(),
		RoundStalls:     s.mRoundStalls.Value(),
	}
}

// captureState snapshots the engine plus daemon bookkeeping into a portable
// State. Called on the run goroutine after advanceTo, so the snapshot is at
// a quiescent instant: every event at or before the current simulation time
// has been fully processed.
func (s *Scheduler) captureState() (*State, error) {
	snap := s.eng.Snapshot()
	st := &State{
		Version:  stateVersion,
		Name:     s.cfg.Name,
		Procs:    s.cfg.Procs,
		Mem:      s.cfg.Mem,
		SimClock: snap.Clock,
		NextID:   s.nextID,
		Queued:   snap.Queued,
		Running:  snap.Running,
		Pending:  s.eng.AppendPending(nil),
	}
	st.Records = append(append([]metrics.Record(nil), s.prior...), s.eng.Records()...)
	for id := range s.canceledIDs {
		st.Canceled = append(st.Canceled, id)
	}
	sort.Ints(st.Canceled)
	if len(s.idem) > 0 {
		st.Idem = maps.Clone(s.idem)
	}
	st.HistoryCount = s.histCount
	return st, nil
}
