package lublin

import (
	"math"

	"repro/internal/stats"
	"repro/internal/trace"
)

// HugeSpec composes k independent Lublin partition streams into one
// submit-sorted workload on a multi-thousand-node machine — the huge-scale
// scenario (ROADMAP: k8s-simulator magnitudes). Each stream is the Base
// model sized to one partition (jobs never exceed Base.Procs processors);
// the machine is Nodes processors wide and its utilization is steered to
// Load by tuning the per-stream inter-arrival scale.
//
// Unlike Params.Generate, which rescales against the full sample in a
// second pass, the huge path is strictly single-pass: each stream's runtime
// and gap scales come from a fixed-size calibration pre-sample drawn from a
// separate RNG, so a million-job trace streams job-by-job with flat RSS and
// no O(n) scalar arrays at all. The price is that realized aggregates track
// the targets statistically (law of large numbers over the pre-sample)
// instead of exactly; TestHugeLoadCalibration pins the tolerance.
type HugeSpec struct {
	Nodes   int     // machine size in processors
	Streams int     // independent partition streams
	Load    float64 // target machine utilization in (0, 1)
	Base    Params  // per-partition model; Base.Procs is the partition width
}

// Huge fills in the huge-scale defaults for any zero argument: a 4096-node
// machine, one Lublin-1 partition stream per Base.Procs nodes, and a target
// utilization of 0.8 (loaded enough for deep backlogs, below saturation so
// drain points still occur).
func Huge(nodes, streams int, load float64) HugeSpec {
	base := Lublin1()
	if nodes <= 0 {
		nodes = 4096
	}
	if streams <= 0 {
		streams = nodes / base.Procs
		if streams < 1 {
			streams = 1
		}
	}
	if load <= 0 {
		load = 0.8
	}
	return HugeSpec{Nodes: nodes, Streams: streams, Load: load, Base: base}
}

// Name is the trace name the spec generates under. The experiments layer
// treats it like the other Lublin traces: synthetic, no user estimates, so
// reservations use actual runtimes.
func (h HugeSpec) Name() string { return "Lublin-Huge" }

// hugeCalibSamples is the calibration pre-sample size per stream. Runtime
// shapes are the widest distribution being estimated; at 4096 draws the
// sample mean's relative error is a few percent, far inside the tolerance
// the load test pins.
const hugeCalibSamples = 4096

// calibrate estimates one stream's runtime scale (shape -> seconds hitting
// Base.MeanRuntime after the MaxRuntime cap) and gap scale (raw gamma draw
// -> seconds such that all Streams together occupy Load of the machine)
// from a pre-sample drawn off a calibration-only RNG.
func (h HugeSpec) calibrate(streamSeed uint64) (runScale, gapScale float64) {
	p := h.Base
	rng := stats.NewRNG(streamSeed ^ 0xc2b2ae3d27d4eb4f)
	shapes := make([]float64, hugeCalibSamples)
	widths := make([]int, hugeCalibSamples)
	var shapeSum, gapSum float64
	for i := range shapes {
		widths[i] = p.sampleProcs(rng)
		shapes[i] = p.runtimeShape(rng, widths[i])
		shapeSum += shapes[i]
		gapSum += rng.Gamma(p.AArr, p.BArr)
	}
	runScale = p.MeanRuntime * hugeCalibSamples / shapeSum
	// Occupancy is the mean of the per-job PRODUCT runtime*width: the model
	// correlates the two (the hyper-gamma mix shifts with job width), so
	// multiplying the separate means would understate the work by ~30%. The
	// MaxRuntime cap is applied per sample, as generation will.
	var workSum float64
	for i, v := range shapes {
		r := v * runScale
		if r > float64(p.MaxRuntime) {
			r = float64(p.MaxRuntime)
		}
		workSum += r * float64(widths[i])
	}
	meanWork := workSum / hugeCalibSamples
	// Load = Streams * meanWork / (itStream * Nodes), solved for the
	// per-stream inter-arrival time.
	itStream := float64(h.Streams) * meanWork / (h.Load * float64(h.Nodes))
	gapScale = itStream * hugeCalibSamples / gapSum
	return runScale, gapScale
}

// runtimeShape draws one raw runtime shape (the hyper-gamma in log space
// Params.Stream uses) for a job of the given width.
func (p Params) runtimeShape(rng *stats.RNG, procs int) float64 {
	mix := p.PA*float64(procs) + p.PB
	if mix < p.PMin {
		mix = p.PMin
	}
	if mix > p.PMax {
		mix = p.PMax
	}
	g := rng.HyperGamma(p.A1, p.B1, p.A2, p.B2, mix)
	v := math.Exp(g * 0.9)
	if v > 1e7 {
		v = 1e7
	}
	return v
}

// hugeWeeklyAmp modulates the arrival rate on a 7-day cycle on top of the
// per-stream diurnal one, peaking midweek and bottoming out on the weekend.
// A day is short next to the model's multi-hour jobs, so the diurnal cycle
// alone stacks only a few hundred jobs of backlog on a 4096-node machine;
// the weekly swing sustains overload for days at a time, driving the
// reservation skyline thousands of segments deep — the regime archive
// workloads exhibit and the indexed FindStart exists for — while the
// weekend trough lets the backlog recover so replay cost stays linear in
// trace length.
const hugeWeeklyAmp = 0.5

// hugePart is one partition stream's generation state: its RNG, calibrated
// scales, submit clock, and the next job already drawn (the merge head).
type hugePart struct {
	p        Params
	rng      *stats.RNG
	runScale float64
	gapScale float64
	submit   float64
	user0    int // user-id offset so partitions have disjoint populations
	next     *trace.Job
}

// advance draws the stream's next job. The diurnal and weekly cycles
// modulate the gap by the stream's (scaled) submit clock.
func (st *hugePart) advance() {
	p := st.p
	procs := p.sampleProcs(st.rng)
	run := int64(math.Max(1, math.Round(p.runtimeShape(st.rng, procs)*st.runScale)))
	if run > p.MaxRuntime {
		run = p.MaxRuntime
	}
	w := 1 + p.DiurnalAmp*math.Sin(2*math.Pi*(math.Mod(st.submit, 86400)-14*3600)/86400)
	w *= 1 + hugeWeeklyAmp*math.Sin(2*math.Pi*(math.Mod(st.submit, 7*86400)-3*86400)/(7*86400))
	if w < 0.1 {
		w = 0.1
	}
	st.submit += st.rng.Gamma(p.AArr, p.BArr) / w * st.gapScale
	st.next = &trace.Job{
		Submit:  int64(st.submit),
		Runtime: run,
		Request: run, // synthetic: no user estimate, as with Lublin-1/2
		Procs:   procs,
		User:    st.user0 + 1 + st.rng.Intn(p.Users),
		Status:  1,
	}
}

// Stream generates n jobs merged across all partition streams in submit
// order and hands each to yield as it is built. Job IDs are 1..n in merged
// order and submit times are rebased so the first job arrives at 0 (the
// Trace invariants). Ties between streams break toward the lowest stream
// index, so the merge is deterministic. Stops on the first yield error.
func (h HugeSpec) Stream(n int, seed uint64, yield func(*trace.Job) error) error {
	if n <= 0 || h.Streams <= 0 {
		return nil
	}
	parts := make([]*hugePart, h.Streams)
	for s := range parts {
		streamSeed := seed + uint64(s)*0x9e3779b97f4a7c15
		runScale, gapScale := h.calibrate(streamSeed)
		parts[s] = &hugePart{
			p:        h.Base,
			rng:      stats.NewRNG(streamSeed),
			runScale: runScale,
			gapScale: gapScale,
			user0:    s * h.Base.Users,
		}
		parts[s].advance()
	}
	var base int64
	for id := 1; id <= n; id++ {
		// The stream count is small (one per partition), so a linear min
		// scan beats heap bookkeeping; strict < keeps ties on the lowest
		// stream index.
		min := 0
		for s := 1; s < len(parts); s++ {
			if parts[s].next.Submit < parts[min].next.Submit {
				min = s
			}
		}
		j := parts[min].next
		parts[min].advance()
		if id == 1 {
			base = j.Submit
		}
		j.ID = id
		j.Submit -= base
		if err := yield(j); err != nil {
			return err
		}
	}
	return nil
}

// Generate materializes a Stream into a trace (for in-memory replay and the
// huge benchmarks).
func (h HugeSpec) Generate(n int, seed uint64) *trace.Trace {
	t := &trace.Trace{Name: h.Name(), Procs: h.Nodes}
	if n > 0 {
		t.Jobs = make([]*trace.Job, 0, n)
		_ = h.Stream(n, seed, func(j *trace.Job) error {
			t.Jobs = append(t.Jobs, j)
			return nil
		})
	}
	return t
}
