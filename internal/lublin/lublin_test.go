package lublin

import (
	"math"
	"testing"

	"repro/internal/trace"
)

func within(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.Abs(got-want) > tol*want {
		t.Fatalf("%s = %v, want %v (±%.0f%%)", name, got, want, tol*100)
	}
}

func TestLublin1MatchesTable2(t *testing.T) {
	tr := Generate1(10000, 42)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	s := trace.ComputeStats(tr)
	if s.Procs != 256 {
		t.Fatalf("size = %d, want 256", s.Procs)
	}
	within(t, "it", s.MeanInterarrival, 771, 0.08)
	within(t, "rt", s.MeanRuntime, 4862, 0.10)
	within(t, "nt", s.MeanProcs, 22, 0.35)
}

func TestLublin2MatchesTable2(t *testing.T) {
	tr := Generate2(10000, 42)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	s := trace.ComputeStats(tr)
	if s.Procs != 256 {
		t.Fatalf("size = %d, want 256", s.Procs)
	}
	within(t, "it", s.MeanInterarrival, 460, 0.08)
	within(t, "rt", s.MeanRuntime, 1695, 0.10)
	within(t, "nt", s.MeanProcs, 39, 0.35)
}

func TestLublinRequestEqualsRuntime(t *testing.T) {
	// Synthetic traces have no user estimates (paper §4.1.2): request == AR.
	tr := Generate1(2000, 7)
	for _, j := range tr.Jobs {
		if j.Request != j.Runtime {
			t.Fatalf("job %d: request %d != runtime %d", j.ID, j.Request, j.Runtime)
		}
	}
}

func TestLublinDeterminism(t *testing.T) {
	a := Generate2(500, 3)
	b := Generate2(500, 3)
	for i := range a.Jobs {
		if *a.Jobs[i] != *b.Jobs[i] {
			t.Fatalf("job %d differs for identical seeds", i)
		}
	}
}

func TestLublinSeedsDiffer(t *testing.T) {
	a := Generate1(500, 1)
	b := Generate1(500, 2)
	same := 0
	for i := range a.Jobs {
		if a.Jobs[i].Runtime == b.Jobs[i].Runtime && a.Jobs[i].Procs == b.Jobs[i].Procs {
			same++
		}
	}
	if same == len(a.Jobs) {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestLublinRuntimeMixDependsOnSize(t *testing.T) {
	// With PA < 0 larger jobs use the second gamma component more often;
	// verify the size-runtime coupling is active by checking that the model
	// produces a broad runtime distribution (heavy tail), not a point mass.
	tr := Generate1(5000, 9)
	var small, large int
	for _, j := range tr.Jobs {
		if j.Runtime < 600 {
			small++
		}
		if j.Runtime > 24*3600 {
			large++
		}
	}
	if small == 0 || large == 0 {
		t.Fatalf("runtime distribution lacks spread: %d short, %d day-plus of %d", small, large, len(tr.Jobs))
	}
}

func TestLublinBoundedBySize(t *testing.T) {
	tr := Generate2(3000, 11)
	for _, j := range tr.Jobs {
		if j.Procs < 1 || j.Procs > 256 {
			t.Fatalf("job %d procs %d out of machine bounds", j.ID, j.Procs)
		}
	}
}

func TestGenerateZero(t *testing.T) {
	tr := Generate1(0, 1)
	if tr.Len() != 0 || tr.Procs != 256 {
		t.Fatalf("empty generation wrong: %d jobs, %d procs", tr.Len(), tr.Procs)
	}
}
