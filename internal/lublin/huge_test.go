package lublin

import (
	"testing"

	"repro/internal/trace"
)

// TestLublinStreamMatchesGenerate pins that the streaming generator yields
// exactly the jobs Generate materializes for both presets.
func TestLublinStreamMatchesGenerate(t *testing.T) {
	for _, p := range []Params{Lublin1(), Lublin2()} {
		want := p.Generate(1500, 11)
		var got []*trace.Job
		if err := p.Stream(1500, 11, func(j *trace.Job) error {
			got = append(got, j)
			return nil
		}); err != nil {
			t.Fatalf("%s: stream error: %v", p.Name, err)
		}
		if len(got) != want.Len() {
			t.Fatalf("%s: stream yielded %d jobs, generate %d", p.Name, len(got), want.Len())
		}
		for i, j := range got {
			if *j != *want.Jobs[i] {
				t.Fatalf("%s: job %d differs: stream %+v, generate %+v", p.Name, i, *j, *want.Jobs[i])
			}
		}
	}
}

// TestHugeStreamMatchesGenerate pins the composition's two entry points
// against each other.
func TestHugeStreamMatchesGenerate(t *testing.T) {
	h := Huge(1024, 4, 0.8)
	want := h.Generate(5000, 2)
	i := 0
	if err := h.Stream(5000, 2, func(j *trace.Job) error {
		if *j != *want.Jobs[i] {
			t.Fatalf("job %d differs: stream %+v, generate %+v", i, *j, *want.Jobs[i])
		}
		i++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if i != want.Len() {
		t.Fatalf("stream yielded %d jobs, generate %d", i, want.Len())
	}
}

// TestHugeInvariants checks the merged composition obeys the Trace
// invariants and the partition geometry: submit-sorted starting at 0,
// IDs 1..n in order, job widths within one partition, users drawn from
// disjoint per-partition populations.
func TestHugeInvariants(t *testing.T) {
	h := Huge(0, 0, 0) // defaults: 4096 nodes, 16 streams, load 0.8
	if h.Nodes != 4096 || h.Streams != 16 || h.Load != 0.8 {
		t.Fatalf("defaults: %+v", h)
	}
	tr := h.Generate(20000, 1)
	if tr.Name != "Lublin-Huge" || tr.Procs != 4096 {
		t.Fatalf("trace header: name %q procs %d", tr.Name, tr.Procs)
	}
	if tr.Jobs[0].Submit != 0 {
		t.Fatalf("first submit %d, want 0", tr.Jobs[0].Submit)
	}
	maxUser := h.Streams * h.Base.Users
	var prev int64
	for i, j := range tr.Jobs {
		if j.ID != i+1 {
			t.Fatalf("job %d has ID %d", i, j.ID)
		}
		if j.Submit < prev {
			t.Fatalf("job %d submit %d < previous %d (merge out of order)", i, j.Submit, prev)
		}
		prev = j.Submit
		if j.Procs < 1 || j.Procs > h.Base.Procs {
			t.Fatalf("job %d width %d outside partition [1,%d]", i, j.Procs, h.Base.Procs)
		}
		if j.Runtime < 1 || j.Runtime > h.Base.MaxRuntime {
			t.Fatalf("job %d runtime %d outside [1,%d]", i, j.Runtime, h.Base.MaxRuntime)
		}
		if j.Request != j.Runtime {
			t.Fatalf("job %d request %d != runtime %d (synthetic traces carry no estimate)", i, j.Request, j.Runtime)
		}
		if j.User < 1 || j.User > maxUser {
			t.Fatalf("job %d user %d outside [1,%d]", i, j.User, maxUser)
		}
	}
}

// TestHugeLoadCalibration checks the single-pass calibration steers the
// offered load — sum(runtime*procs) over span*nodes — to the target within
// the statistical tolerance the pre-sample admits.
func TestHugeLoadCalibration(t *testing.T) {
	h := Huge(0, 0, 0)
	tr := h.Generate(60000, 1)
	var work float64
	for _, j := range tr.Jobs {
		work += float64(j.Runtime) * float64(j.Procs)
	}
	span := float64(tr.Jobs[tr.Len()-1].Submit - tr.Jobs[0].Submit)
	load := work / (span * float64(h.Nodes))
	if load < 0.8*h.Load || load > 1.2*h.Load {
		t.Fatalf("offered load %.3f, want within 20%% of target %.2f", load, h.Load)
	}
	t.Logf("huge composition: offered load %.3f (target %.2f), %d jobs over %.1f days",
		load, h.Load, tr.Len(), span/86400)
}
