// Package lublin implements the Lublin-Feitelson workload model ("The
// workload on parallel supercomputers: modeling the characteristics of rigid
// jobs", JPDC 2003), which the paper uses to generate its two synthetic
// traces (Lublin-1, Lublin-2).
//
// The structural model follows the published one:
//
//   - job sizes: a job is serial with probability PSerial; otherwise
//     log2(size) is drawn from a two-stage uniform distribution and rounded
//     to a power of two with probability PPow2;
//   - runtimes: a hyper-gamma distribution whose first-component probability
//     depends linearly on the job size, p(n) = PA*n + PB (larger jobs tend to
//     run longer);
//   - arrivals: gamma-distributed inter-arrival gaps modulated by a diurnal
//     cycle.
//
// The original C implementation's constants target 1990s machines; the two
// presets here keep the structure but are calibrated (and covered by tests)
// to reproduce the aggregate statistics the paper reports in Table 2 for
// Lublin-1 (size 256, it 771 s, rt 4862 s, nt 22) and Lublin-2 (size 256,
// it 460 s, rt 1695 s, nt 39). Synthetic traces carry only actual runtimes;
// as in the paper, the request time equals the actual runtime (no user
// estimate exists), which is why the paper omits EASY (request-time) results
// for them.
package lublin

import (
	"math"

	"repro/internal/stats"
	"repro/internal/trace"
)

// Params holds the Lublin-Feitelson model parameters.
type Params struct {
	Name  string
	Procs int // machine size

	// Size model.
	PSerial, PPow2                float64
	LogLo, LogMed, LogHi, LogProb float64

	// Runtime model: hyper-gamma components Gamma(A1,B1) and Gamma(A2,B2)
	// over log-runtime-like shapes; mixing probability p(n) = PA*n + PB
	// clamped to [PMin, PMax]. The drawn value is interpreted as
	// exp(g)-seconds scaled to hit MeanRuntime on average.
	A1, B1, A2, B2 float64
	PA, PB         float64
	PMin, PMax     float64
	MeanRuntime    float64 // target mean actual runtime (rt in Table 2)
	MaxRuntime     int64

	// Arrival model: Gamma(AArr, BArr) inter-arrival gaps with diurnal
	// modulation amplitude DiurnalAmp, rescaled to MeanInterarrival.
	AArr, BArr       float64
	DiurnalAmp       float64
	MeanInterarrival float64

	Users int
}

// Lublin1 returns the preset reproducing the paper's Lublin-1 trace
// (moderate load, medium jobs: it 771 s, rt 4862 s, nt 22).
func Lublin1() Params {
	return Params{
		Name:    "Lublin-1",
		Procs:   256,
		PSerial: 0.20, PPow2: 0.75,
		LogLo: 1.0, LogMed: 4.0, LogHi: 8.0, LogProb: 0.70,
		A1: 4.2, B1: 0.94, A2: 312, B2: 0.03,
		PA: -0.0015, PB: 0.70, PMin: 0.25, PMax: 0.95,
		MeanRuntime: 4862, MaxRuntime: 5 * 24 * 3600,
		AArr: 0.45, BArr: 1.0, DiurnalAmp: 0.6,
		MeanInterarrival: 771,
		Users:            80,
	}
}

// Lublin2 returns the preset reproducing the paper's Lublin-2 trace
// (heavier load, wider jobs, shorter runtimes: it 460 s, rt 1695 s, nt 39).
func Lublin2() Params {
	return Params{
		Name:    "Lublin-2",
		Procs:   256,
		PSerial: 0.10, PPow2: 0.75,
		LogLo: 2.0, LogMed: 5.2, LogHi: 8.0, LogProb: 0.65,
		A1: 4.2, B1: 0.94, A2: 312, B2: 0.03,
		PA: -0.0015, PB: 0.80, PMin: 0.3, PMax: 0.95,
		MeanRuntime: 1695, MaxRuntime: 2 * 24 * 3600,
		AArr: 0.45, BArr: 1.0, DiurnalAmp: 0.6,
		MeanInterarrival: 460,
		Users:            120,
	}
}

// Generate produces an n-job trace from the model, deterministically for a
// given seed.
func (p Params) Generate(n int, seed uint64) *trace.Trace {
	t := &trace.Trace{Name: p.Name, Procs: p.Procs}
	if n > 0 {
		t.Jobs = make([]*trace.Job, 0, n)
		_ = p.Stream(n, seed, func(j *trace.Job) error {
			t.Jobs = append(t.Jobs, j)
			return nil
		})
	}
	return t
}

// Stream produces the same n jobs Generate does — same RNG consumption
// order, hence byte-identical jobs — but hands each one to yield as it is
// built instead of materializing a job slice, so million-job archives can be
// written straight to disk with flat RSS. The model's global rescale (sample
// mean -> Table 2 targets) still needs one scalar per job per pass (an int
// and two float64s); what streaming avoids is the job structs themselves,
// which dominate the footprint. Stream stops and returns the first error
// yield reports.
func (p Params) Stream(n int, seed uint64, yield func(*trace.Job) error) error {
	rng := stats.NewRNG(seed)
	if n <= 0 {
		return nil
	}

	procs := make([]int, n)
	for i := range procs {
		procs[i] = p.sampleProcs(rng)
	}

	// Hyper-gamma runtime shapes in log space (runtimeShape: the draw is a
	// log-runtime-like quantity, exp maps it to a heavy-tailed positive
	// shape), then rescaled so the sample mean hits MeanRuntime.
	shapes := make([]float64, n)
	var sum float64
	for i := range shapes {
		shapes[i] = p.runtimeShape(rng, procs[i])
		sum += shapes[i]
	}
	scale := p.MeanRuntime * float64(n) / sum

	// Inter-arrival gaps: gamma with a diurnal cycle, rescaled to the mean.
	gaps := make([]float64, n)
	var gapSum float64
	tNow := 0.0
	for i := range gaps {
		w := 1 + p.DiurnalAmp*math.Sin(2*math.Pi*(math.Mod(tNow, 86400)-14*3600)/86400)
		if w < 0.1 {
			w = 0.1
		}
		g := rng.Gamma(p.AArr, p.BArr) / w
		gaps[i] = g
		gapSum += g
		tNow += g
	}
	gapScale := p.MeanInterarrival * float64(n) / gapSum

	var submit float64
	for i := 0; i < n; i++ {
		if i > 0 {
			submit += gaps[i] * gapScale
		}
		run := int64(math.Max(1, math.Round(shapes[i]*scale)))
		if run > p.MaxRuntime {
			run = p.MaxRuntime
		}
		j := &trace.Job{
			ID:      i + 1,
			Submit:  int64(submit),
			Runtime: run,
			// Synthetic traces have no user estimate; request = actual
			// runtime (paper §4.1.2).
			Request: run,
			Procs:   procs[i],
			User:    1 + rng.Intn(p.Users),
			Status:  1,
		}
		if err := yield(j); err != nil {
			return err
		}
	}
	return nil
}

func (p Params) sampleProcs(rng *stats.RNG) int {
	if rng.Bool(p.PSerial) {
		return 1
	}
	l := rng.TwoStageUniform(p.LogLo, p.LogMed, p.LogHi, p.LogProb)
	var v int
	if rng.Bool(p.PPow2) {
		v = 1 << int(math.Round(l))
	} else {
		v = int(math.Round(math.Pow(2, l)))
	}
	if v < 1 {
		v = 1
	}
	if v > p.Procs {
		v = p.Procs
	}
	return v
}

// Generate1 generates an n-job Lublin-1 trace.
func Generate1(n int, seed uint64) *trace.Trace { return Lublin1().Generate(n, seed) }

// Generate2 generates an n-job Lublin-2 trace.
func Generate2(n int, seed uint64) *trace.Trace { return Lublin2().Generate(n, seed) }
