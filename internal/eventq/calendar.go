package eventq

// Queue is the simulator's event queue, ordered by (Time, Kind, Seq) exactly
// like Heap but organised as a calendar (bucket) queue (Brown 1988): pending
// events hash by time into a ring of fixed-width buckets and a cursor walks
// the ring monotonically, so Push and Pop are O(1) amortised instead of
// O(log n) sift operations — the classic structure for discrete-event
// simulators whose pending set (here: the running jobs' completions) stays
// roughly stationary in time.
//
// Storage is an index-linked slab: events live in one reusable []Event slab
// and each bucket is just an int32 head into a per-slot next-index list, so
// pushes and pops write a single slab slot and a couple of int32 links —
// no per-bucket slices to grow, no pointer-bearing memmoves for the garbage
// collector to barrier (the naive [][]Event layout loses its heap win to
// exactly that traffic).
//
// Events beyond the calendar horizon (base + buckets x width) overflow into
// a Heap; whenever the cursor advances, matured overflow events migrate into
// the window, so at rest every overflow event is no earlier than the horizon
// and pop order over the combined structure is the exact total order. Events
// at or before the cursor (pushed "in the past", which the engine does when
// a job both starts and finishes within the current batch horizon) land in
// the cursor's bucket, whose comparator scan orders them correctly. The
// queue re-sizes itself to the pending-event distribution: when the
// population outgrows the ring the calendar is rebuilt with the bucket count
// tracking the population and the width tracking the mean inter-event gap;
// when the ring badly outgrows a shrinking population it is rebuilt smaller
// so cursor walks over empty buckets stay bounded.
//
// Small populations skip the calendar entirely: below promoteAt pending
// events the queue runs as a plain binary heap (a 4-level sift is close to
// free, and the cursor machinery would be pure overhead for the short-queue
// phases of a replay) and promotes to the calendar only when the population
// outgrows it, demoting back with wide hysteresis.
//
// The zero value is ready to use. Seq is assigned on Push in insertion
// order; the property tests pin pop order against Heap on fuzzed batches.
type Queue struct {
	seq int

	slab []Event // slot storage; slabNext links slots into bucket lists
	next []int32 // next slot in the same bucket, -1 = end of list
	free int32   // freelist head over vacated slots, -1 = none

	heads []int32 // ring of bucket list heads, -1 = empty bucket
	cur   int     // ring index of the current (earliest) bucket
	base  int64   // start of the current bucket's time slice
	width int64   // time covered by one bucket
	n     int     // events stored in buckets (excluding overflow)

	overflow Heap // events at or beyond the horizon when pushed

	// cachedMin memoises the slab slot of the current minimum between
	// queries: the engine peeks the same event two or three times before
	// popping it (batch-time probe, drain-loop condition, then the pop), and
	// the binary heap answered those in O(1) from h[0]. Invalidated by any
	// push or pop.
	cachedMin int32

	// ops counts pushes and pops since the last rebuild; a rebuild triggered
	// by overflow imbalance (window width or anchor gone stale while the
	// population stayed level, so the size triggers never fire) is allowed
	// only after at least Len() operations, keeping its O(n) cost amortised
	// O(1) and rebuild thrash impossible.
	ops int

	scratch []Event // rebuild staging, reused
}

const (
	minBuckets = 16
	maxBuckets = 1 << 12
	nilSlot    = -1

	// promoteAt / demoteAt bound the heap-mode population: below ~promoteAt
	// events a 4-level binary heap is close to free and the calendar's
	// cursor-and-bucket machinery is pure overhead, so the queue starts as a
	// plain heap (heads == nil) and only builds the calendar once the
	// population outgrows it. The wide hysteresis gap makes mode switches
	// (O(n) migrations) impossible to thrash.
	promoteAt = 64
	demoteAt  = 16
)

// Len returns the number of queued events.
func (q *Queue) Len() int { return q.n + q.overflow.Len() }

// Push inserts an event, stamping its insertion sequence.
func (q *Queue) Push(e Event) {
	e.Seq = q.seq
	q.seq++
	if q.heads == nil {
		// Heap mode: the whole population lives in the overflow heap.
		q.overflow.Push(e)
		if q.overflow.Len() > promoteAt {
			q.rebuild() // promote: drains the heap into a sized calendar
		}
		return
	}
	q.place(e)
	q.cachedMin = nilSlot
	q.ops++
	// Grow when the population outgrows the ring; re-anchor (amortised) when
	// most pending events sit in the overflow heap — a mis-sized width or
	// stale anchor would otherwise degrade the calendar to a heap with
	// migration overhead on top.
	if q.Len() > 2*len(q.heads) && len(q.heads) < maxBuckets {
		q.rebuild()
	} else if q.overflow.Len() > q.n+16 && q.ops > q.Len() {
		q.rebuild()
	}
}

// Peek returns the earliest event without removing it. ok is false when the
// queue is empty.
func (q *Queue) Peek() (Event, bool) {
	if q.heads == nil {
		return q.overflow.Peek()
	}
	if q.Len() == 0 {
		return Event{}, false
	}
	mi := q.cachedMin
	if mi == nilSlot {
		q.advance()
		mi = q.scanMin()
		q.cachedMin = mi
	}
	return q.slab[mi], true
}

// Pop removes and returns the earliest event. ok is false when the queue is
// empty.
func (q *Queue) Pop() (Event, bool) {
	if q.heads == nil {
		return q.overflow.Pop()
	}
	if q.Len() == 0 {
		return Event{}, false
	}
	mi := q.cachedMin
	if mi == nilSlot {
		q.advance()
		mi = q.scanMin()
	}
	q.cachedMin = nilSlot
	e := q.slab[mi]
	q.unlink(mi)
	q.ops++
	if q.Len() < demoteAt {
		q.demote()
	} else if nb := len(q.heads); nb > minBuckets && q.Len() < nb/8 {
		// Shrink when the ring has badly outgrown the population, so cursor
		// walks over empty buckets stay bounded.
		q.rebuild()
	}
	return e, true
}

// demote returns the queue to heap mode: the remaining population is pushed
// into the overflow heap (Seq preserved, so order is unchanged) and the
// calendar dismantled.
func (q *Queue) demote() {
	for i := range q.heads {
		for s := q.heads[i]; s != nilSlot; s = q.next[s] {
			q.overflow.Push(q.slab[s])
		}
	}
	q.heads = nil
	clear(q.slab)
	q.slab = q.slab[:0]
	q.next = q.next[:0]
	q.free = nilSlot
	q.cachedMin = nilSlot
	q.ops = 0
	q.n = 0
}

// scanMin returns the slab index of the comparator-least event in the
// current (non-empty) bucket.
func (q *Queue) scanMin() int32 {
	mi := q.heads[q.cur]
	for i := q.next[mi]; i != nilSlot; i = q.next[i] {
		if less(q.slab[i], q.slab[mi]) {
			mi = i
		}
	}
	return mi
}

// unlink removes slot s from the current bucket's list and returns it to the
// freelist.
func (q *Queue) unlink(s int32) {
	if q.heads[q.cur] == s {
		q.heads[q.cur] = q.next[s]
	} else {
		for p := q.heads[q.cur]; ; p = q.next[p] {
			if q.next[p] == s {
				q.next[p] = q.next[s]
				break
			}
		}
	}
	q.slab[s] = Event{} // drop the payload reference
	q.next[s] = q.free
	q.free = s
	q.n--
}

// place routes an event to its bucket, or to the overflow heap when it lies
// at or beyond the horizon. Events before the current bucket's slice go into
// the current bucket (the comparator scan orders them).
func (q *Queue) place(e Event) {
	nb := int64(len(q.heads))
	d := e.Time - q.base
	switch {
	case d < 0:
		d = 0
	case d >= nb*q.width:
		q.overflow.Push(e)
		return
	default:
		d /= q.width
	}
	i := q.cur + int(d)
	if i >= len(q.heads) {
		i -= len(q.heads)
	}
	s := q.free
	if s == nilSlot {
		s = int32(len(q.slab))
		q.slab = append(q.slab, Event{})
		q.next = append(q.next, nilSlot)
	} else {
		q.free = q.next[s]
	}
	q.slab[s] = e
	q.next[s] = q.heads[i]
	q.heads[i] = s
	q.n++
}

// advance moves the cursor to the first non-empty bucket, migrating matured
// overflow events into the window as the horizon grows, and jumping straight
// to the overflow's earliest event when the ring is empty. Callers guarantee
// Len() > 0.
func (q *Queue) advance() {
	for {
		if q.heads[q.cur] != nilSlot {
			return
		}
		if q.n == 0 {
			// Ring empty: jump the window to the earliest overflow event.
			e, ok := q.overflow.Peek()
			if !ok {
				return
			}
			q.cur = 0
			q.base = e.Time
			q.drainOverflow()
			continue
		}
		q.cur++
		if q.cur == len(q.heads) {
			q.cur = 0
		}
		q.base += q.width
		q.drainOverflow()
	}
}

// drainOverflow migrates overflow events that now fall inside the window.
func (q *Queue) drainOverflow() {
	horizon := q.base + int64(len(q.heads))*q.width
	for {
		e, ok := q.overflow.Peek()
		if !ok || e.Time >= horizon {
			return
		}
		q.overflow.Pop()
		q.place(e)
	}
}

// rebuild re-sizes the calendar to the current population: the bucket count
// tracks the number of pending events (one event per bucket on average) and
// the bucket width their mean spacing, re-anchored at the earliest pending
// time. O(n), amortised across the pushes/pops that triggered it.
func (q *Queue) rebuild() {
	q.cachedMin = nilSlot // slots are about to be relinked
	q.ops = 0
	events := q.scratch[:0]
	for i := range q.heads {
		for s := q.heads[i]; s != nilSlot; s = q.next[s] {
			events = append(events, q.slab[s])
		}
		q.heads[i] = nilSlot
	}
	for {
		e, ok := q.overflow.Pop()
		if !ok {
			break
		}
		events = append(events, e)
	}
	n := len(events)
	if n == 0 {
		q.scratch = events
		return
	}
	minT, maxT := events[0].Time, events[0].Time
	for _, e := range events[1:] {
		if e.Time < minT {
			minT = e.Time
		}
		if e.Time > maxT {
			maxT = e.Time
		}
	}
	nb := minBuckets
	for nb < n && nb < maxBuckets {
		nb *= 2
	}
	if len(q.heads) != nb {
		q.heads = make([]int32, nb)
	}
	for i := range q.heads {
		q.heads[i] = nilSlot
	}
	clear(q.slab)
	for i := range q.next {
		q.next[i] = nilSlot
	}
	q.slab = q.slab[:0]
	q.next = q.next[:0]
	q.free = nilSlot
	q.width = (maxT - minT + int64(n)) / int64(n) // ~mean gap, >= 1
	q.cur = 0
	q.base = minT
	q.n = 0
	for _, e := range events {
		q.place(e)
	}
	q.scratch = events[:0]
}
