// Package eventq provides the binary-heap event queue used by the
// discrete-event scheduling simulator. The optimised engine feeds arrivals
// lazily from the submit-sorted trace and queues only Finish events here
// (see internal/sim); the Arrive kind and the Finish-before-Arrive ordering
// contract are retained for the reference kernel the differential test pins
// the engine against, and for callers that do queue both kinds.
package eventq

// Kind distinguishes the event types of the scheduling simulator.
type Kind int

const (
	// Arrive is a job submission event.
	Arrive Kind = iota
	// Finish is a job completion event.
	Finish
)

// Event is one timed simulator event. Payload carries the subject (a job).
type Event struct {
	Time    int64
	Kind    Kind
	Seq     int // insertion sequence, breaks ties deterministically
	Payload any
}

// Queue is a min-heap of events ordered by (Time, Kind, Seq): completions at
// time t are processed before arrivals at t so freed processors are visible
// to the newly arrived job, and insertion order breaks remaining ties for
// determinism. The zero value is ready to use.
type Queue struct {
	h   []Event
	seq int
}

// Len returns the number of queued events.
func (q *Queue) Len() int { return len(q.h) }

// Push inserts an event.
func (q *Queue) Push(e Event) {
	e.Seq = q.seq
	q.seq++
	q.h = append(q.h, e)
	q.up(len(q.h) - 1)
}

// Peek returns the earliest event without removing it. ok is false when the
// queue is empty.
func (q *Queue) Peek() (Event, bool) {
	if len(q.h) == 0 {
		return Event{}, false
	}
	return q.h[0], true
}

// Pop removes and returns the earliest event. ok is false when the queue is
// empty.
func (q *Queue) Pop() (Event, bool) {
	if len(q.h) == 0 {
		return Event{}, false
	}
	top := q.h[0]
	last := len(q.h) - 1
	q.h[0] = q.h[last]
	q.h = q.h[:last]
	if last > 0 {
		q.down(0)
	}
	return top, true
}

func (q *Queue) less(i, j int) bool {
	a, b := q.h[i], q.h[j]
	if a.Time != b.Time {
		return a.Time < b.Time
	}
	if a.Kind != b.Kind {
		// Finish < Arrive at equal times: completions free resources first.
		return a.Kind == Finish && b.Kind == Arrive
	}
	return a.Seq < b.Seq
}

func (q *Queue) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			return
		}
		q.h[i], q.h[parent] = q.h[parent], q.h[i]
		i = parent
	}
}

func (q *Queue) down(i int) {
	n := len(q.h)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && q.less(l, smallest) {
			smallest = l
		}
		if r < n && q.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			return
		}
		q.h[i], q.h[smallest] = q.h[smallest], q.h[i]
		i = smallest
	}
}
