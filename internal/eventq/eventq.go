// Package eventq provides the event queue of the discrete-event scheduling
// simulator. The optimised engine feeds arrivals lazily from the
// submit-sorted trace and queues only Finish events here (see internal/sim);
// the Arrive kind and the Finish-before-Arrive ordering contract are
// retained for the reference kernel the differential test pins the engine
// against, and for callers that do queue both kinds.
//
// Queue is a calendar (bucket) queue: pending events hash into fixed-width
// time buckets walked by a monotonically advancing cursor, with a binary
// heap absorbing events beyond the calendar horizon (see calendar.go). Heap
// is that binary heap on its own — the pre-calendar implementation, kept
// both as the overflow structure and as the golden model the property tests
// pin the calendar's pop order against. Both order events identically, by
// (Time, Kind, Seq).
package eventq

// Kind distinguishes the event types of the scheduling simulator.
type Kind int

const (
	// Arrive is a job submission event.
	Arrive Kind = iota
	// Finish is a job completion event.
	Finish
	// Wake is a timed no-op that forces a scheduling round: the engine
	// queues one at each waiting job's starvation-transition instant so that
	// aging-based rank changes take effect on time even when no completion
	// or arrival happens to land there. Wakes order after Finish and Arrive
	// at equal times — the round must see the freed processors and the new
	// arrivals it is being woken for.
	Wake
)

// rank maps kinds to their same-timestamp processing order: completions
// free resources first, then arrivals, then wake ticks.
func rank(k Kind) int {
	switch k {
	case Finish:
		return 0
	case Arrive:
		return 1
	default:
		return 2
	}
}

// Event is one timed simulator event. Payload carries the subject (a job).
type Event struct {
	Time    int64
	Kind    Kind
	Seq     int // insertion sequence, breaks ties deterministically
	Payload any
}

// less is the total event order shared by the heap and the calendar queue:
// completions at time t are processed before arrivals at t so freed
// processors are visible to the newly arrived job, and insertion order
// breaks remaining ties for determinism.
func less(a, b Event) bool {
	if a.Time != b.Time {
		return a.Time < b.Time
	}
	if a.Kind != b.Kind {
		// Finish < Arrive < Wake at equal times: completions free resources
		// first, and wake ticks observe everything else.
		return rank(a.Kind) < rank(b.Kind)
	}
	return a.Seq < b.Seq
}

// Heap is a min-heap of events ordered by (Time, Kind, Seq). Unlike Queue it
// does not assign Seq — callers (the calendar queue, tests) manage insertion
// sequence themselves. The zero value is ready to use.
type Heap struct {
	h []Event
}

// Len returns the number of heaped events.
func (q *Heap) Len() int { return len(q.h) }

// Push inserts an event, preserving its Seq.
func (q *Heap) Push(e Event) {
	q.h = append(q.h, e)
	q.up(len(q.h) - 1)
}

// Peek returns the earliest event without removing it. ok is false when the
// heap is empty.
func (q *Heap) Peek() (Event, bool) {
	if len(q.h) == 0 {
		return Event{}, false
	}
	return q.h[0], true
}

// Pop removes and returns the earliest event. ok is false when the heap is
// empty.
func (q *Heap) Pop() (Event, bool) {
	if len(q.h) == 0 {
		return Event{}, false
	}
	top := q.h[0]
	last := len(q.h) - 1
	q.h[0] = q.h[last]
	q.h[last] = Event{} // drop the payload reference
	q.h = q.h[:last]
	if last > 0 {
		q.down(0)
	}
	return top, true
}

func (q *Heap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !less(q.h[i], q.h[parent]) {
			return
		}
		q.h[i], q.h[parent] = q.h[parent], q.h[i]
		i = parent
	}
}

func (q *Heap) down(i int) {
	n := len(q.h)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && less(q.h[l], q.h[smallest]) {
			smallest = l
		}
		if r < n && less(q.h[r], q.h[smallest]) {
			smallest = r
		}
		if smallest == i {
			return
		}
		q.h[i], q.h[smallest] = q.h[smallest], q.h[i]
		i = smallest
	}
}
