package eventq

import (
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/stats"
)

func TestEmptyQueue(t *testing.T) {
	var q Queue
	if q.Len() != 0 {
		t.Fatal("fresh queue not empty")
	}
	if _, ok := q.Pop(); ok {
		t.Fatal("Pop on empty queue reported ok")
	}
	if _, ok := q.Peek(); ok {
		t.Fatal("Peek on empty queue reported ok")
	}
}

func TestOrdering(t *testing.T) {
	var q Queue
	q.Push(Event{Time: 30, Kind: Arrive})
	q.Push(Event{Time: 10, Kind: Arrive})
	q.Push(Event{Time: 20, Kind: Finish})
	times := []int64{}
	for q.Len() > 0 {
		e, _ := q.Pop()
		times = append(times, e.Time)
	}
	want := []int64{10, 20, 30}
	for i := range want {
		if times[i] != want[i] {
			t.Fatalf("pop order %v, want %v", times, want)
		}
	}
}

func TestFinishBeforeArriveAtSameTime(t *testing.T) {
	var q Queue
	q.Push(Event{Time: 5, Kind: Arrive, Payload: "a"})
	q.Push(Event{Time: 5, Kind: Finish, Payload: "f"})
	e, _ := q.Pop()
	if e.Kind != Finish {
		t.Fatal("Finish must be processed before Arrive at the same timestamp")
	}
}

func TestFIFOAmongTies(t *testing.T) {
	var q Queue
	for i := 0; i < 10; i++ {
		q.Push(Event{Time: 7, Kind: Arrive, Payload: i})
	}
	for i := 0; i < 10; i++ {
		e, _ := q.Pop()
		if e.Payload.(int) != i {
			t.Fatalf("tie-break not FIFO: got %v at position %d", e.Payload, i)
		}
	}
}

func TestPeekDoesNotRemove(t *testing.T) {
	var q Queue
	q.Push(Event{Time: 1})
	if _, ok := q.Peek(); !ok || q.Len() != 1 {
		t.Fatal("Peek changed queue size")
	}
}

// TestCalendarMatchesHeap pins the calendar queue's pop order against the
// binary heap — the pre-calendar implementation kept as the golden model —
// on fuzzed event batches: clustered and spread times, both kinds, and
// interleaved pushes and pops (which slide the calendar window and exercise
// overflow migration, cursor jumps and rebuilds).
func TestCalendarMatchesHeap(t *testing.T) {
	for seed := uint64(1); seed <= 30; seed++ {
		rng := stats.NewRNG(seed)
		var cal Queue
		var heap Heap
		seq := 0
		// Time regimes per seed: tight clusters, wide spreads, and a drifting
		// "simulation clock" with completions scattered ahead of it.
		regime := seed % 3
		clock := int64(0)
		nextTime := func() int64 {
			switch regime {
			case 0:
				return rng.Int63n(50) // heavy ties, single-bucket clusters
			case 1:
				return rng.Int63n(1_000_000) // sparse, overflow-heavy
			default:
				clock += rng.Int63n(30)
				return clock + rng.Int63n(5000) // drifting window
			}
		}
		ops := int(rng.Int63n(400)) + 100
		for op := 0; op < ops; op++ {
			if rng.Bool(0.6) || cal.Len() == 0 {
				e := Event{Time: nextTime(), Kind: Kind(rng.Intn(2)), Payload: op}
				e.Seq = seq
				seq++
				heap.Push(e)
				cal.Push(e) // Queue re-stamps Seq; same counter, same value
			} else {
				ce, cok := cal.Pop()
				he, hok := heap.Pop()
				if cok != hok || ce != he {
					t.Fatalf("seed %d op %d: calendar popped %+v (%v), heap %+v (%v)",
						seed, op, ce, cok, he, hok)
				}
			}
			if cal.Len() != heap.Len() {
				t.Fatalf("seed %d op %d: calendar len %d, heap len %d", seed, op, cal.Len(), heap.Len())
			}
		}
		// Drain both completely.
		for heap.Len() > 0 {
			ce, cok := cal.Pop()
			he, hok := heap.Pop()
			if cok != hok || ce != he {
				t.Fatalf("seed %d drain: calendar popped %+v (%v), heap %+v (%v)", seed, ce, cok, he, hok)
			}
		}
		if cal.Len() != 0 {
			t.Fatalf("seed %d: calendar retains %d events after heap drained", seed, cal.Len())
		}
	}
}

// TestCalendarPeekMatchesPop pins that Peek always previews exactly the
// event the next Pop returns, across window advances and rebuilds.
func TestCalendarPeekMatchesPop(t *testing.T) {
	rng := stats.NewRNG(4)
	var q Queue
	for op := 0; op < 2000; op++ {
		if rng.Bool(0.55) || q.Len() == 0 {
			q.Push(Event{Time: rng.Int63n(10000), Kind: Kind(rng.Intn(2)), Payload: op})
		} else {
			pe, pok := q.Peek()
			ge, gok := q.Pop()
			if pok != gok || pe != ge {
				t.Fatalf("op %d: Peek %+v (%v) but Pop %+v (%v)", op, pe, pok, ge, gok)
			}
		}
	}
}

// Property: popping yields events in non-decreasing time order for any
// random push sequence, possibly interleaved with pops.
func TestHeapProperty(t *testing.T) {
	rng := stats.NewRNG(99)
	f := func(n uint8) bool {
		var q Queue
		m := int(n%100) + 1
		pushed := make([]int64, 0, m)
		for i := 0; i < m; i++ {
			tm := rng.Int63n(1000)
			q.Push(Event{Time: tm, Kind: Kind(rng.Intn(2))})
			pushed = append(pushed, tm)
			// occasionally pop mid-stream
			if rng.Bool(0.3) && q.Len() > 0 {
				e, _ := q.Pop()
				// remove one instance of e.Time from pushed
				for k, v := range pushed {
					if v == e.Time {
						pushed = append(pushed[:k], pushed[k+1:]...)
						break
					}
				}
			}
		}
		sort.Slice(pushed, func(i, j int) bool { return pushed[i] < pushed[j] })
		var prev int64 = -1
		idx := 0
		for q.Len() > 0 {
			e, ok := q.Pop()
			if !ok || e.Time < prev {
				return false
			}
			if idx >= len(pushed) || pushed[idx] != e.Time {
				return false
			}
			prev = e.Time
			idx++
		}
		return idx == len(pushed)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
