package backfill

import (
	"repro/internal/sched"
	"repro/internal/trace"
)

// Slack implements slack-based backfilling (Talby & Feitelson, IPPS/SPDP
// 1999), the third classic strategy the paper's related-work section cites
// alongside EASY and conservative: every waiting job holds a reservation,
// but a reservation may slip by up to the job's slack — Factor x its own
// estimated runtime — if that lets another job backfill. Factor 0 degenerates
// to conservative backfilling; large factors approach EASY's aggressiveness
// for non-head jobs while the head keeps a hard reservation.
type Slack struct {
	Est Estimator
	// Factor scales each job's allowed delay (default 0.5 when zero-valued
	// via NewSlack).
	Factor float64
	// Scn layers the starvation bound onto the slack: once a job's wait
	// reaches the bound its reservation stops slipping (limit pinned to the
	// base start — it becomes blocking, kube-batch StarvationThreshold
	// semantics). Priority tiers are honoured through the queue order the
	// engine hands in, which the base plan preserves. The zero scenario
	// reproduces classic slack backfilling exactly.
	Scn sched.Scenario

	// pl holds the reusable per-round profile, plan and limit scratch.
	pl planner
}

// NewSlack returns slack-based backfilling with the conventional 0.5 slack
// factor.
func NewSlack(est Estimator) *Slack { return &Slack{Est: est, Factor: 0.5} }

// Fresh implements Cloneable: same configuration, own scratch.
func (s *Slack) Fresh() Backfiller { return &Slack{Est: s.Est, Factor: s.Factor, Scn: s.Scn} }

// Name implements Backfiller.
func (s *Slack) Name() string { return "SLACK-" + s.Est.Name() }

// Backfill implements Backfiller. Rounds run in lenient mode (a failed
// reservation records its found start and moves on, Slack's historic
// behaviour); each job's limit is its base start plus Factor x its own
// estimate — except the head, which keeps a hard reservation.
func (s *Slack) Backfill(st State, head *trace.Job, queue []*trace.Job) {
	for {
		started := s.pl.backfillOne(st, s.Est, st.Now(), head, queue, false, s.setLimits)
		if started == nil {
			return
		}
		queue = removeStarted(queue, started)
	}
}

// setLimits allows every non-head job to slip by Factor x its estimated
// runtime past its base reserved start; the head not at all. With aging on,
// a job that is (or would become) starving by its base start loses its
// remaining slack: the limit is pinned back to max(base start, the instant
// it starts starving), so backfilling can no longer push it past the bound.
func (s *Slack) setLimits() {
	limit := s.pl.growLimits()
	aging := s.Scn.Aging()
	for i := range s.pl.plan {
		e := &s.pl.plan[i]
		limit[i] = e.start
		if i > 0 {
			limit[i] += int64(s.Factor * float64(e.dur))
			if aging {
				if sa := s.Scn.StarvesAt(e.job); sa < limit[i] {
					limit[i] = max(sa, e.start)
				}
			}
		}
	}
}
