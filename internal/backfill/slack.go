package backfill

import (
	"repro/internal/cluster"
	"repro/internal/trace"
)

// Slack implements slack-based backfilling (Talby & Feitelson, IPPS/SPDP
// 1999), the third classic strategy the paper's related-work section cites
// alongside EASY and conservative: every waiting job holds a reservation,
// but a reservation may slip by up to the job's slack — Factor x its own
// estimated runtime — if that lets another job backfill. Factor 0 degenerates
// to conservative backfilling; large factors approach EASY's aggressiveness
// for non-head jobs while the head keeps a hard reservation.
type Slack struct {
	Est Estimator
	// Factor scales each job's allowed delay (default 0.5 when zero-valued
	// via NewSlack).
	Factor float64
}

// NewSlack returns slack-based backfilling with the conventional 0.5 slack
// factor.
func NewSlack(est Estimator) *Slack { return &Slack{Est: est, Factor: 0.5} }

// Name implements Backfiller.
func (s *Slack) Name() string { return "SLACK-" + s.Est.Name() }

// Backfill implements Backfiller.
func (s *Slack) Backfill(st State, head *trace.Job, queue []*trace.Job) {
	for {
		started := s.backfillOne(st, head, queue)
		if started == nil {
			return
		}
		out := queue[:0]
		for _, j := range queue {
			if j != started {
				out = append(out, j)
			}
		}
		queue = out
	}
}

func (s *Slack) backfillOne(st State, head *trace.Job, queue []*trace.Job) *trace.Job {
	now := st.Now()
	baseStarts := s.reservationStarts(st, now, head, queue, nil)

	for _, cand := range queue {
		if cand.Procs > st.FreeProcs() {
			continue
		}
		newStarts := s.reservationStarts(st, now, head, queue, cand)
		if newStarts == nil {
			continue
		}
		ok := true
		for _, o := range append([]*trace.Job{head}, queue...) {
			if o == cand {
				continue
			}
			allowed := baseStarts[o.ID]
			if o != head {
				// non-head jobs may slip by Factor x their estimate
				allowed += int64(s.Factor * float64(s.Est.Estimate(o)))
			}
			if newStarts[o.ID] > allowed {
				ok = false
				break
			}
		}
		if ok {
			st.StartJob(cand)
			return cand
		}
	}
	return nil
}

// reservationStarts computes each job's planned start in submission of the
// profile implied by the running jobs, optionally with `runNow` started
// immediately. It returns nil if runNow cannot start now.
func (s *Slack) reservationStarts(st State, now int64, head *trace.Job, queue []*trace.Job, runNow *trace.Job) map[int]int64 {
	p := cluster.NewProfile(st.TotalProcs(), now)
	for _, r := range st.Running() {
		end := r.Start + s.Est.Estimate(r.Job)
		if end <= now {
			end = now + 1
		}
		_ = p.Reserve(now, end, r.Job.Procs)
	}
	if runNow != nil {
		dur := s.Est.Estimate(runNow)
		if p.MinFree(now, now+dur) < runNow.Procs {
			return nil
		}
		if err := p.Reserve(now, now+dur, runNow.Procs); err != nil {
			return nil
		}
	}
	starts := make(map[int]int64, len(queue)+1)
	for _, j := range append([]*trace.Job{head}, queue...) {
		if j == runNow {
			continue
		}
		dur := s.Est.Estimate(j)
		start := p.FindStart(now, dur, j.Procs)
		_ = p.Reserve(start, start+dur, j.Procs)
		starts[j.ID] = start
	}
	return starts
}
