package backfill

import (
	"repro/internal/cluster"
	"repro/internal/trace"
)

// Slack implements slack-based backfilling (Talby & Feitelson, IPPS/SPDP
// 1999), the third classic strategy the paper's related-work section cites
// alongside EASY and conservative: every waiting job holds a reservation,
// but a reservation may slip by up to the job's slack — Factor x its own
// estimated runtime — if that lets another job backfill. Factor 0 degenerates
// to conservative backfilling; large factors approach EASY's aggressiveness
// for non-head jobs while the head keeps a hard reservation.
type Slack struct {
	Est Estimator
	// Factor scales each job's allowed delay (default 0.5 when zero-valued
	// via NewSlack).
	Factor float64

	// Reusable scratch for the per-round profile and start maps.
	prof       cluster.Profile
	baseStarts map[int]int64
	newStarts  map[int]int64
}

// NewSlack returns slack-based backfilling with the conventional 0.5 slack
// factor.
func NewSlack(est Estimator) *Slack { return &Slack{Est: est, Factor: 0.5} }

// Fresh implements Cloneable: same estimator and slack factor, own scratch.
func (s *Slack) Fresh() Backfiller { return &Slack{Est: s.Est, Factor: s.Factor} }

// Name implements Backfiller.
func (s *Slack) Name() string { return "SLACK-" + s.Est.Name() }

// Backfill implements Backfiller.
func (s *Slack) Backfill(st State, head *trace.Job, queue []*trace.Job) {
	for {
		started := s.backfillOne(st, head, queue)
		if started == nil {
			return
		}
		out := queue[:0]
		for _, j := range queue {
			if j != started {
				out = append(out, j)
			}
		}
		queue = out
	}
}

func (s *Slack) backfillOne(st State, head *trace.Job, queue []*trace.Job) *trace.Job {
	now := st.Now()
	s.baseStarts, _ = s.reservationStarts(s.baseStarts, st, now, head, queue, nil)

	for _, cand := range queue {
		if cand.Procs > st.FreeProcs() {
			continue
		}
		var feasible bool
		s.newStarts, feasible = s.reservationStarts(s.newStarts, st, now, head, queue, cand)
		if !feasible {
			continue
		}
		ok := s.withinSlack(head, head)
		if ok {
			for _, o := range queue {
				if o == cand {
					continue
				}
				if !s.withinSlack(o, head) {
					ok = false
					break
				}
			}
		}
		if ok {
			st.StartJob(cand)
			return cand
		}
	}
	return nil
}

// withinSlack reports whether job o's new reserved start stays within its
// allowed slip: non-head jobs may slip by Factor x their estimate, the head
// not at all.
func (s *Slack) withinSlack(o, head *trace.Job) bool {
	allowed := s.baseStarts[o.ID]
	if o != head {
		allowed += int64(s.Factor * float64(s.Est.Estimate(o)))
	}
	return s.newStarts[o.ID] <= allowed
}

// reservationStarts fills dst with each job's planned start in the profile
// implied by the running jobs, optionally with `runNow` started immediately.
// It returns the (reused, possibly newly allocated) map, and false if
// runNow cannot start now.
func (s *Slack) reservationStarts(dst map[int]int64, st State, now int64, head *trace.Job, queue []*trace.Job, runNow *trace.Job) (map[int]int64, bool) {
	fillProfileFromRunning(&s.prof, st, s.Est, now)
	if runNow != nil {
		dur := s.Est.Estimate(runNow)
		if s.prof.MinFree(now, now+dur) < runNow.Procs {
			return dst, false
		}
		if err := s.prof.Reserve(now, now+dur, runNow.Procs); err != nil {
			return dst, false
		}
	}
	if dst == nil {
		dst = make(map[int]int64, len(queue)+1)
	} else {
		clear(dst)
	}
	place := func(j *trace.Job) {
		if j == runNow {
			return
		}
		dur := s.Est.Estimate(j)
		start := s.prof.FindStart(now, dur, j.Procs)
		_ = s.prof.Reserve(start, start+dur, j.Procs)
		dst[j.ID] = start
	}
	place(head)
	for _, j := range queue {
		place(j)
	}
	return dst, true
}
