package backfill

import (
	"repro/internal/trace"
)

// Slack implements slack-based backfilling (Talby & Feitelson, IPPS/SPDP
// 1999), the third classic strategy the paper's related-work section cites
// alongside EASY and conservative: every waiting job holds a reservation,
// but a reservation may slip by up to the job's slack — Factor x its own
// estimated runtime — if that lets another job backfill. Factor 0 degenerates
// to conservative backfilling; large factors approach EASY's aggressiveness
// for non-head jobs while the head keeps a hard reservation.
type Slack struct {
	Est Estimator
	// Factor scales each job's allowed delay (default 0.5 when zero-valued
	// via NewSlack).
	Factor float64

	// pl holds the reusable per-round profile, plan and limit scratch.
	pl planner
}

// NewSlack returns slack-based backfilling with the conventional 0.5 slack
// factor.
func NewSlack(est Estimator) *Slack { return &Slack{Est: est, Factor: 0.5} }

// Fresh implements Cloneable: same estimator and slack factor, own scratch.
func (s *Slack) Fresh() Backfiller { return &Slack{Est: s.Est, Factor: s.Factor} }

// Name implements Backfiller.
func (s *Slack) Name() string { return "SLACK-" + s.Est.Name() }

// Backfill implements Backfiller. Rounds run in lenient mode (a failed
// reservation records its found start and moves on, Slack's historic
// behaviour); each job's limit is its base start plus Factor x its own
// estimate — except the head, which keeps a hard reservation.
func (s *Slack) Backfill(st State, head *trace.Job, queue []*trace.Job) {
	for {
		started := s.pl.backfillOne(st, s.Est, st.Now(), head, queue, false, s.setLimits)
		if started == nil {
			return
		}
		queue = removeStarted(queue, started)
	}
}

// setLimits allows every non-head job to slip by Factor x its estimated
// runtime past its base reserved start; the head not at all.
func (s *Slack) setLimits() {
	limit := s.pl.growLimits()
	for i := range s.pl.plan {
		e := &s.pl.plan[i]
		limit[i] = e.start
		if i > 0 {
			limit[i] += int64(s.Factor * float64(e.dur))
		}
	}
}
