package backfill

import "repro/internal/trace"

// PlannedStart is one waiting job's projected start time under the current
// availability profile.
type PlannedStart struct {
	Job   *trace.Job
	Start int64
}

// Predictor projects start times for a waiting queue from the running set's
// reservation profile — the serve daemon's "when will my job start?" answer.
// It reuses the profile-backfiller planner: the profile is rebuilt from the
// running jobs' estimated completions, then every queued job is placed
// greedily in the given order (FindStart + reserve), and each job's found
// start is its projection. For conservative backfilling with the same
// estimator and the engine's queue order this reproduces exactly the base
// plan the next backfill round will compute, so the projection is the
// authoritative reservation; for EASY and slack it is the same
// profile-derived estimate conservative would give (those strategies protect
// fewer reservations, so jobs may in fact start earlier). Placement is
// lenient: an over-full profile records the found start instead of aborting,
// so malformed states still get an answer. A Predictor reuses its scratch
// across calls and is not goroutine-safe.
type Predictor struct {
	pl planner
}

// Project appends one PlannedStart per queued job (in queue order) to out
// and returns it. The queue must be in scheduling order — head first — as
// Engine.AppendQueued yields it; an empty queue appends nothing.
func (pr *Predictor) Project(st State, est Estimator, queue []*trace.Job, out []PlannedStart) []PlannedStart {
	if len(queue) == 0 {
		return out
	}
	now := st.Now()
	p := pr.pl.fill(st, est, now)
	pr.pl.plan = pr.pl.plan[:0]
	for _, j := range queue {
		pr.pl.placeBase(p, est, now, j, false)
	}
	for _, e := range pr.pl.plan {
		out = append(out, PlannedStart{Job: e.job, Start: e.start})
	}
	return out
}
