// Package backfill implements the heuristic backfilling strategies the paper
// builds on and compares against: EASY backfilling driven by pluggable
// runtime estimators (user request time, ideal actual-runtime prediction, or
// noisy predictions), and conservative backfilling as the classic
// related-work baseline. The reinforcement-learning backfiller in
// internal/core plugs into the same Backfiller interface.
package backfill

import (
	"sort"

	"repro/internal/trace"
)

// Running describes one executing job as seen by a backfiller.
type Running struct {
	Job   *trace.Job
	Start int64
}

// State is the simulator surface a backfiller may use. It is defined here
// (and implemented by internal/sim) so backfilling strategies stay decoupled
// from the engine.
type State interface {
	// Now returns the current simulation time.
	Now() int64
	// FreeProcs returns the number of idle processors.
	FreeProcs() int
	// TotalProcs returns the machine size.
	TotalProcs() int
	// Running returns the currently executing jobs (any order). The slice
	// may be the engine's live bookkeeping: callers must treat it as
	// read-only and must not retain it across StartJob calls.
	Running() []Running
	// StartJob begins executing a waiting job immediately. It panics if the
	// job does not fit; callers must check FreeProcs first.
	StartJob(j *trace.Job)
}

// MemState is implemented by States whose machine carries the memory
// dimension. It is optional so that procs-only engines (and test fakes)
// need not know memory exists; backfillers probe for it via MemOf.
type MemState interface {
	// FreeMem returns the idle memory units.
	FreeMem() int
	// TotalMem returns the machine memory capacity; 0 disables the
	// dimension even if jobs carry memory requests.
	TotalMem() int
}

// MemOf returns the state's free and total memory, or (0, 0) when the state
// has no memory dimension. A zero total is the single switch that turns
// every memory comparison in this package into a no-op.
func MemOf(st State) (free, total int) {
	if ms, ok := st.(MemState); ok {
		if t := ms.TotalMem(); t > 0 {
			return ms.FreeMem(), t
		}
	}
	return 0, 0
}

// memDemand returns the job's memory request, or 0 when the dimension is
// off (memTotal == 0), so comparisons against free/extra memory degenerate
// to 0 <= x.
func memDemand(j *trace.Job, memTotal int) int {
	if memTotal == 0 {
		return 0
	}
	return j.Mem
}

// Backfiller selects lower-priority jobs to run when the head of the queue
// cannot start. Backfill is invoked with the head job (the paper's "relative
// job", rjob) and the rest of the waiting queue in base-policy order; the
// implementation starts zero or more of those jobs via st.StartJob.
type Backfiller interface {
	Name() string
	Backfill(st State, head *trace.Job, queue []*trace.Job)
}

// Cloneable is implemented by backfillers that can hand out independent
// instances of themselves. Backfillers carry per-replay scratch state by
// design (see DESIGN.md §6), so a single instance must never be shared
// between concurrent simulations; parallel evaluation (core.EvalConfig
// Workers > 1) calls Fresh once per worker instead.
type Cloneable interface {
	Backfiller
	// Fresh returns a new backfiller with the same configuration and
	// untouched scratch state.
	Fresh() Backfiller
}

// Reservation is the head job's earliest-start guarantee under a given
// estimator: the shadow time at which enough resources free up, and the
// resources left over ("extra") at that moment.
type Reservation struct {
	Shadow   int64 // earliest estimated start time of the head job
	Extra    int   // processors free at Shadow beyond the head's need
	ExtraMem int   // memory free at Shadow beyond the head's need (0 when off)
}

// jobEnd decorates one running job with its estimated completion so the
// estimator runs exactly once per job per reservation, not inside the sort
// comparator.
type jobEnd struct {
	end   int64
	id    int
	procs int
	mem   int
}

// jobEnds orders by (end, id) — a total order (IDs are unique), so any sort
// algorithm produces the same permutation. The pointer-receiver sort.Sort
// form keeps the per-reservation sort allocation-free (sort.Slice's closure
// escapes on every call).
type jobEnds []jobEnd

func (s *jobEnds) Len() int      { return len(*s) }
func (s *jobEnds) Swap(i, j int) { (*s)[i], (*s)[j] = (*s)[j], (*s)[i] }
func (s *jobEnds) Less(i, j int) bool {
	a, b := (*s)[i], (*s)[j]
	if a.end != b.end {
		return a.end < b.end
	}
	return a.id < b.id
}

// ReservationScratch holds the reusable decoration buffer for reservation
// computations. Backfillers that compute reservations on every round (EASY,
// the RL agent) should embed one to keep the hot path allocation-free. The
// zero value is ready to use; a scratch is not goroutine-safe.
type ReservationScratch struct {
	ends jobEnds
}

// Compute derives the head job's reservation from the running jobs'
// estimated completions (start + estimate). This is the core EASY
// bookkeeping (§2.1.3); the RL agent reuses it to detect reservation
// violations. With a memory dimension the shadow is the first completion at
// which both the processor and the memory demand are met; without one, the
// memory terms are identically zero and the walk is the classic one.
func (s *ReservationScratch) Compute(st State, head *trace.Job, est Estimator) Reservation {
	free := st.FreeProcs()
	memFree, memTotal := MemOf(st)
	needMem := memDemand(head, memTotal)
	if free >= head.Procs && memFree >= needMem {
		return Reservation{Shadow: st.Now(), Extra: free - head.Procs, ExtraMem: memFree - needMem}
	}
	running := st.Running()
	if cap(s.ends) < len(running) {
		s.ends = make([]jobEnd, len(running))
	}
	s.ends = s.ends[:len(running)]
	for i, r := range running {
		s.ends[i] = jobEnd{end: r.Start + est.Estimate(r.Job), id: r.Job.ID, procs: r.Job.Procs, mem: memDemand(r.Job, memTotal)}
	}
	sort.Sort(&s.ends)
	avail := free
	availMem := memFree
	for _, r := range s.ends {
		avail += r.procs
		availMem += r.mem
		if avail >= head.Procs && availMem >= needMem {
			end := r.end
			if end < st.Now() {
				// The job has outlived its estimate (possible when the
				// estimator underestimates); it can finish at any moment.
				end = st.Now()
			}
			return Reservation{Shadow: end, Extra: avail - head.Procs, ExtraMem: availMem - needMem}
		}
	}
	// Unreachable for valid traces (head.Procs <= machine size), but return
	// a conservative answer instead of panicking on malformed input.
	return Reservation{Shadow: st.Now(), Extra: 0}
}

// ComputeReservation is the convenience form of ReservationScratch.Compute
// for call sites outside the simulation hot path.
func ComputeReservation(st State, head *trace.Job, est Estimator) Reservation {
	var s ReservationScratch
	return s.Compute(st, head, est)
}
