// Package backfill implements the heuristic backfilling strategies the paper
// builds on and compares against: EASY backfilling driven by pluggable
// runtime estimators (user request time, ideal actual-runtime prediction, or
// noisy predictions), and conservative backfilling as the classic
// related-work baseline. The reinforcement-learning backfiller in
// internal/core plugs into the same Backfiller interface.
package backfill

import (
	"sort"

	"repro/internal/trace"
)

// Running describes one executing job as seen by a backfiller.
type Running struct {
	Job   *trace.Job
	Start int64
}

// State is the simulator surface a backfiller may use. It is defined here
// (and implemented by internal/sim) so backfilling strategies stay decoupled
// from the engine.
type State interface {
	// Now returns the current simulation time.
	Now() int64
	// FreeProcs returns the number of idle processors.
	FreeProcs() int
	// TotalProcs returns the machine size.
	TotalProcs() int
	// Running returns the currently executing jobs (any order).
	Running() []Running
	// StartJob begins executing a waiting job immediately. It panics if the
	// job does not fit; callers must check FreeProcs first.
	StartJob(j *trace.Job)
}

// Backfiller selects lower-priority jobs to run when the head of the queue
// cannot start. Backfill is invoked with the head job (the paper's "relative
// job", rjob) and the rest of the waiting queue in base-policy order; the
// implementation starts zero or more of those jobs via st.StartJob.
type Backfiller interface {
	Name() string
	Backfill(st State, head *trace.Job, queue []*trace.Job)
}

// Reservation is the head job's earliest-start guarantee under a given
// estimator: the shadow time at which enough processors free up, and the
// processors left over ("extra") at that moment.
type Reservation struct {
	Shadow int64 // earliest estimated start time of the head job
	Extra  int   // processors free at Shadow beyond the head's need
}

// ComputeReservation derives the head job's reservation from the running
// jobs' estimated completions (start + estimate). This is the core EASY
// bookkeeping (§2.1.3); the RL agent reuses it to detect reservation
// violations.
func ComputeReservation(st State, head *trace.Job, est Estimator) Reservation {
	free := st.FreeProcs()
	if free >= head.Procs {
		return Reservation{Shadow: st.Now(), Extra: free - head.Procs}
	}
	running := append([]Running(nil), st.Running()...)
	sort.Slice(running, func(a, b int) bool {
		ea := running[a].Start + est.Estimate(running[a].Job)
		eb := running[b].Start + est.Estimate(running[b].Job)
		if ea != eb {
			return ea < eb
		}
		return running[a].Job.ID < running[b].Job.ID
	})
	avail := free
	for _, r := range running {
		avail += r.Job.Procs
		if avail >= head.Procs {
			end := r.Start + est.Estimate(r.Job)
			if end < st.Now() {
				// The job has outlived its estimate (possible when the
				// estimator underestimates); it can finish at any moment.
				end = st.Now()
			}
			return Reservation{Shadow: end, Extra: avail - head.Procs}
		}
	}
	// Unreachable for valid traces (head.Procs <= machine size), but return
	// a conservative answer instead of panicking on malformed input.
	return Reservation{Shadow: st.Now(), Extra: 0}
}
