package backfill

import (
	"repro/internal/trace"
)

// Conservative implements conservative backfilling (Mu'alem & Feitelson
// 2001), the classic related-work baseline (§5): every waiting job gets a
// reservation in a future availability profile, and a candidate may be
// backfilled only if starting it now delays no earlier reservation. It is
// stricter than EASY (which protects only the head job) and is used here as
// an ablation baseline rather than a paper table entry.
//
// Scenario semantics come for free: the engine hands the queue over in
// scenario order (starving first, then priority tiers), the base plan
// reserves in that order so higher tiers hold earlier reservations, and the
// zero-slip limits already guarantee no reservation — starving or not — ever
// moves later. On memory-carrying machines every reservation spans both
// resource dimensions via the shared planner's vector profile.
type Conservative struct {
	Est Estimator

	// pl holds the reusable per-round profile, plan and limit scratch.
	pl planner
}

// NewConservative returns conservative backfilling with the given estimator.
func NewConservative(est Estimator) *Conservative { return &Conservative{Est: est} }

// Fresh implements Cloneable: same estimator, own scratch.
func (c *Conservative) Fresh() Backfiller { return &Conservative{Est: c.Est} }

// Name implements Backfiller.
func (c *Conservative) Name() string { return "CONS-" + c.Est.Name() }

// Backfill implements Backfiller. Each round plans reservations for the head
// and every queued job, then starts the first candidate whose immediate
// execution moves nobody's reserved start later — the limit of every job is
// exactly its base start (no slip allowed). Rounds repeat until no candidate
// is admissible.
func (c *Conservative) Backfill(st State, head *trace.Job, queue []*trace.Job) {
	for {
		started := c.pl.backfillOne(st, c.Est, st.Now(), head, queue, true, c.setLimits)
		if started == nil {
			return
		}
		queue = removeStarted(queue, started)
	}
}

// setLimits pins every job to its base reserved start: conservative
// backfilling tolerates zero slip.
func (c *Conservative) setLimits() {
	limit := c.pl.growLimits()
	for i := range c.pl.plan {
		limit[i] = c.pl.plan[i].start
	}
}
