package backfill

import (
	"repro/internal/cluster"
	"repro/internal/trace"
)

// Conservative implements conservative backfilling (Mu'alem & Feitelson
// 2001), the classic related-work baseline (§5): every waiting job gets a
// reservation in a future availability profile, and a candidate may be
// backfilled only if starting it now delays no earlier reservation. It is
// stricter than EASY (which protects only the head job) and is used here as
// an ablation baseline rather than a paper table entry.
type Conservative struct {
	Est Estimator
}

// NewConservative returns conservative backfilling with the given estimator.
func NewConservative(est Estimator) *Conservative { return &Conservative{Est: est} }

// Name implements Backfiller.
func (c *Conservative) Name() string { return "CONS-" + c.Est.Name() }

// Backfill implements Backfiller.
func (c *Conservative) Backfill(st State, head *trace.Job, queue []*trace.Job) {
	for {
		started := c.backfillOne(st, head, queue)
		if started == nil {
			return
		}
		// remove the started job from the local queue view
		out := queue[:0]
		for _, j := range queue {
			if j != started {
				out = append(out, j)
			}
		}
		queue = out
	}
}

// backfillOne builds the availability profile (running jobs + reservations
// for the head and every queued job in order) and starts the first candidate
// whose immediate execution leaves all reservations intact. It returns the
// started job, or nil.
func (c *Conservative) backfillOne(st State, head *trace.Job, queue []*trace.Job) *trace.Job {
	now := st.Now()

	reserve := func(p *cluster.Profile, skip *trace.Job) bool {
		// head first, then the queued jobs in policy order
		jobs := append([]*trace.Job{head}, queue...)
		for _, j := range jobs {
			if j == skip {
				continue
			}
			dur := c.Est.Estimate(j)
			start := p.FindStart(now, dur, j.Procs)
			if err := p.Reserve(start, start+dur, j.Procs); err != nil {
				return false
			}
		}
		return true
	}

	baseline := c.profile(st, now)
	if !reserve(baseline, nil) {
		return nil
	}
	starts := c.reservationStarts(st, now, head, queue)

	for _, j := range queue {
		if j.Procs > st.FreeProcs() {
			continue
		}
		// Tentatively run j now, then re-reserve everyone else; accept only
		// if nobody's start moves later.
		p := c.profile(st, now)
		dur := c.Est.Estimate(j)
		if p.MinFree(now, now+dur) < j.Procs {
			continue
		}
		if err := p.Reserve(now, now+dur, j.Procs); err != nil {
			continue
		}
		ok := true
		jobs := append([]*trace.Job{head}, queue...)
		for _, o := range jobs {
			if o == j {
				continue
			}
			odur := c.Est.Estimate(o)
			s := p.FindStart(now, odur, o.Procs)
			if err := p.Reserve(s, s+odur, o.Procs); err != nil {
				ok = false
				break
			}
			if s > starts[o.ID] {
				ok = false
				break
			}
		}
		if ok {
			st.StartJob(j)
			return j
		}
	}
	return nil
}

// profile builds the availability profile implied by the running jobs'
// estimated completions.
func (c *Conservative) profile(st State, now int64) *cluster.Profile {
	p := cluster.NewProfile(st.TotalProcs(), now)
	for _, r := range st.Running() {
		end := r.Start + c.Est.Estimate(r.Job)
		if end <= now {
			end = now + 1 // overdue job: assume it releases imminently
		}
		// Running jobs always fit by construction.
		_ = p.Reserve(now, end, r.Job.Procs)
	}
	return p
}

// reservationStarts computes each waiting job's reserved start under the
// current profile, used as the "no one gets later" yardstick.
func (c *Conservative) reservationStarts(st State, now int64, head *trace.Job, queue []*trace.Job) map[int]int64 {
	p := c.profile(st, now)
	starts := make(map[int]int64, len(queue)+1)
	for _, j := range append([]*trace.Job{head}, queue...) {
		dur := c.Est.Estimate(j)
		s := p.FindStart(now, dur, j.Procs)
		_ = p.Reserve(s, s+dur, j.Procs)
		starts[j.ID] = s
	}
	return starts
}
