package backfill

import (
	"repro/internal/cluster"
	"repro/internal/trace"
)

// Conservative implements conservative backfilling (Mu'alem & Feitelson
// 2001), the classic related-work baseline (§5): every waiting job gets a
// reservation in a future availability profile, and a candidate may be
// backfilled only if starting it now delays no earlier reservation. It is
// stricter than EASY (which protects only the head job) and is used here as
// an ablation baseline rather than a paper table entry.
type Conservative struct {
	Est Estimator

	// Reusable scratch: the availability profile and reservation-start map
	// are rebuilt on every round, so their storage is kept across calls.
	prof   cluster.Profile
	starts map[int]int64
}

// NewConservative returns conservative backfilling with the given estimator.
func NewConservative(est Estimator) *Conservative { return &Conservative{Est: est} }

// Fresh implements Cloneable: same estimator, own profile and start-map
// scratch.
func (c *Conservative) Fresh() Backfiller { return &Conservative{Est: c.Est} }

// Name implements Backfiller.
func (c *Conservative) Name() string { return "CONS-" + c.Est.Name() }

// Backfill implements Backfiller.
func (c *Conservative) Backfill(st State, head *trace.Job, queue []*trace.Job) {
	for {
		started := c.backfillOne(st, head, queue)
		if started == nil {
			return
		}
		// remove the started job from the local queue view
		out := queue[:0]
		for _, j := range queue {
			if j != started {
				out = append(out, j)
			}
		}
		queue = out
	}
}

// reserveAll re-reserves the head and then every queued job in policy order
// on p, skipping `skip`. When record is non-nil each job's reserved start is
// stored there; when limits is non-nil a job whose start lands after its
// limit aborts the pass. It returns false when a reservation fails or a
// limit is exceeded.
func (c *Conservative) reserveAll(p *cluster.Profile, now int64, head *trace.Job, queue []*trace.Job, skip *trace.Job, record, limits map[int]int64) bool {
	place := func(j *trace.Job) bool {
		if j == skip {
			return true
		}
		dur := c.Est.Estimate(j)
		start := p.FindStart(now, dur, j.Procs)
		if err := p.Reserve(start, start+dur, j.Procs); err != nil {
			return false
		}
		if record != nil {
			record[j.ID] = start
		}
		return limits == nil || start <= limits[j.ID]
	}
	if !place(head) {
		return false
	}
	for _, j := range queue {
		if !place(j) {
			return false
		}
	}
	return true
}

// backfillOne builds the availability profile (running jobs + reservations
// for the head and every queued job in order) and starts the first candidate
// whose immediate execution leaves all reservations intact. It returns the
// started job, or nil.
func (c *Conservative) backfillOne(st State, head *trace.Job, queue []*trace.Job) *trace.Job {
	now := st.Now()

	// One feasibility-and-recording pass: each waiting job's reserved start
	// under the current profile is the "no one gets later" yardstick.
	if c.starts == nil {
		c.starts = make(map[int]int64, len(queue)+1)
	} else {
		clear(c.starts)
	}
	if !c.reserveAll(c.profile(st, now), now, head, queue, nil, c.starts, nil) {
		return nil
	}

	for _, j := range queue {
		if j.Procs > st.FreeProcs() {
			continue
		}
		// Tentatively run j now, then re-reserve everyone else; accept only
		// if nobody's start moves later.
		p := c.profile(st, now)
		dur := c.Est.Estimate(j)
		if p.MinFree(now, now+dur) < j.Procs {
			continue
		}
		if err := p.Reserve(now, now+dur, j.Procs); err != nil {
			continue
		}
		if c.reserveAll(p, now, head, queue, j, nil, c.starts) {
			st.StartJob(j)
			return j
		}
	}
	return nil
}

// profile resets the scratch profile to the availability implied by the
// running jobs' estimated completions. The returned profile is valid until
// the next profile call.
func (c *Conservative) profile(st State, now int64) *cluster.Profile {
	fillProfileFromRunning(&c.prof, st, c.Est, now)
	return &c.prof
}
