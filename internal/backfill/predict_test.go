package backfill

import (
	"sort"
	"testing"

	"repro/internal/stats"
	"repro/internal/trace"
)

// naiveProject is the reference predictor: an explicit reservation list and
// an O(candidates x reservations) earliest-fit search per queued job. The
// planner-backed Predictor must agree exactly.
func naiveProject(st *memState, est Estimator, queue []*trace.Job) []int64 {
	type resv struct {
		start, end int64
		procs      int
	}
	var rs []resv
	now := st.Now()
	for _, r := range st.Running() {
		end := r.Start + est.Estimate(r.Job)
		if end <= now {
			end = now + 1 // overdue: assumed to release imminently, like planner.fill
		}
		rs = append(rs, resv{start: now, end: end, procs: r.Job.Procs})
	}
	fits := func(t, dur int64, procs int) bool {
		// Demand changes only at reservation boundaries; checking every
		// boundary inside the window (plus its start) is exact.
		cands := []int64{t}
		for _, r := range rs {
			if r.start > t && r.start < t+dur {
				cands = append(cands, r.start)
			}
		}
		for _, c := range cands {
			used := 0
			for _, r := range rs {
				if r.start <= c && c < r.end {
					used += r.procs
				}
			}
			if used+procs > st.TotalProcs() {
				return false
			}
		}
		return true
	}
	var out []int64
	for _, j := range queue {
		dur := est.Estimate(j)
		// Candidate starts: now and every reservation end.
		cands := []int64{now}
		for _, r := range rs {
			if r.end > now {
				cands = append(cands, r.end)
			}
		}
		sort.Slice(cands, func(a, b int) bool { return cands[a] < cands[b] })
		var s int64 = -1
		for _, c := range cands {
			if fits(c, dur, j.Procs) {
				s = c
				break
			}
		}
		if s < 0 { // cannot happen for valid jobs (procs <= total)
			s = now
		}
		rs = append(rs, resv{start: s, end: s + dur, procs: j.Procs})
		out = append(out, s)
	}
	return out
}

func TestPredictorMatchesNaiveReference(t *testing.T) {
	rng := stats.NewRNG(41)
	var pred Predictor
	for trial := 0; trial < 60; trial++ {
		total := 4 + int(rng.Uint64()%13)
		st := &memState{now: int64(rng.Uint64() % 1000), free: total, total: total}
		nRun := int(rng.Uint64() % 5)
		for i := 0; i < nRun; i++ {
			p := 1 + int(rng.Uint64()%uint64(total))
			if st.free < p {
				break
			}
			run := 10 + int64(rng.Uint64()%500)
			j := job(100+i, 0, run, run+int64(rng.Uint64()%100), p)
			start := st.now - int64(rng.Uint64()%600) // may be overdue
			st.running = append(st.running, Running{Job: j, Start: start})
			st.free -= p
		}
		var queue []*trace.Job
		nQ := 1 + int(rng.Uint64()%8)
		for i := 0; i < nQ; i++ {
			run := 5 + int64(rng.Uint64()%400)
			queue = append(queue, job(200+i, st.now, run, run, 1+int(rng.Uint64()%uint64(total))))
		}

		got := pred.Project(st, RequestTime{}, queue, nil)
		want := naiveProject(st, RequestTime{}, queue)
		if len(got) != len(queue) {
			t.Fatalf("trial %d: %d projections for %d queued jobs", trial, len(got), len(queue))
		}
		for i := range got {
			if got[i].Job != queue[i] {
				t.Fatalf("trial %d: projection %d is for job %d, want %d", trial, i, got[i].Job.ID, queue[i].ID)
			}
			if got[i].Start != want[i] {
				t.Fatalf("trial %d: job %d projected start %d, naive reference %d (now=%d total=%d)",
					trial, queue[i].ID, got[i].Start, want[i], st.now, total)
			}
		}
	}
}

func TestPredictorEmptyQueue(t *testing.T) {
	var pred Predictor
	st := &memState{now: 5, free: 8, total: 8}
	if out := pred.Project(st, RequestTime{}, nil, nil); len(out) != 0 {
		t.Fatalf("empty queue projected %d entries", len(out))
	}
}

func TestPredictorImmediateFit(t *testing.T) {
	var pred Predictor
	st := &memState{now: 7, free: 8, total: 8}
	q := []*trace.Job{job(1, 7, 10, 10, 4), job(2, 7, 10, 10, 4), job(3, 7, 10, 10, 4)}
	out := pred.Project(st, RequestTime{}, q, nil)
	// Jobs 1 and 2 fill the machine immediately; job 3 waits for the first
	// reservations to end at 17.
	if out[0].Start != 7 || out[1].Start != 7 || out[2].Start != 17 {
		t.Fatalf("starts %d/%d/%d, want 7/7/17", out[0].Start, out[1].Start, out[2].Start)
	}
}
