package backfill

import (
	"sort"

	"repro/internal/trace"
)

// CandidateOrder selects the order in which EASY scans backfill candidates.
type CandidateOrder int

const (
	// PolicyOrder keeps the base scheduling policy's queue order (classic
	// EASY behaviour).
	PolicyOrder CandidateOrder = iota
	// SJFOrder scans shortest-estimate-first. The paper's reward baseline
	// (§3.4) is FCFS scheduling with SJF-ordered backfilling.
	SJFOrder
)

// EASY implements aggressive (single-reservation) EASY backfilling (Lifka
// 1995, §2.1.3 of the paper): when the head job cannot start, compute its
// reservation and start any later job that fits the free processors and
// either finishes (per the estimator) before the shadow time or only uses
// the extra processors.
type EASY struct {
	// Est supplies predicted runtimes for both the reservation and the
	// candidate-fit test. RequestTime{} gives plain EASY; ActualRuntime{}
	// gives the paper's EASY-AR; Noisy{...} gives Figure 1's error sweep.
	Est Estimator
	// Order controls candidate scan order (PolicyOrder by default).
	Order CandidateOrder

	// Reusable scratch: EASY runs on every blocked scheduling event, so the
	// candidate decoration and reservation buffers are kept across calls.
	res   ReservationScratch
	cands []estimated
}

// estimated decorates a candidate with its runtime estimate, computed once
// per backfill round rather than per comparison and again per scan.
type estimated struct {
	job *trace.Job
	est int64
}

// NewEASY returns EASY backfilling with the given estimator and the classic
// policy-order candidate scan.
func NewEASY(est Estimator) *EASY { return &EASY{Est: est} }

// Fresh implements Cloneable: same estimator and scan order, own scratch.
func (e *EASY) Fresh() Backfiller { return &EASY{Est: e.Est, Order: e.Order} }

// Name implements Backfiller.
func (e *EASY) Name() string {
	n := "EASY-" + e.Est.Name()
	if e.Order == SJFOrder {
		n += "-SJF"
	}
	return n
}

// Backfill implements Backfiller.
func (e *EASY) Backfill(st State, head *trace.Job, queue []*trace.Job) {
	res := e.res.Compute(st, head, e.Est)
	now := st.Now()
	free := st.FreeProcs()
	extra := res.Extra

	if cap(e.cands) < len(queue) {
		e.cands = make([]estimated, len(queue))
	}
	cands := e.cands[:len(queue)]
	for i, j := range queue {
		cands[i] = estimated{job: j, est: e.Est.Estimate(j)}
	}
	if e.Order == SJFOrder {
		sort.SliceStable(cands, func(a, b int) bool {
			if cands[a].est != cands[b].est {
				return cands[a].est < cands[b].est
			}
			return cands[a].job.ID < cands[b].job.ID
		})
	}

	for _, c := range cands {
		j := c.job
		if j.Procs > free {
			continue
		}
		endsByShadow := now+c.est <= res.Shadow
		usesExtraOnly := j.Procs <= extra
		if !endsByShadow && !usesExtraOnly {
			continue
		}
		st.StartJob(j)
		free -= j.Procs
		if !endsByShadow {
			// The job runs past the shadow time, so it permanently consumes
			// part of the head job's surplus.
			extra -= j.Procs
		}
		if free == 0 {
			return
		}
	}
}
