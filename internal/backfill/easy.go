package backfill

import (
	"sort"

	"repro/internal/sched"
	"repro/internal/trace"
)

// CandidateOrder selects the order in which EASY scans backfill candidates.
type CandidateOrder int

const (
	// PolicyOrder keeps the base scheduling policy's queue order (classic
	// EASY behaviour).
	PolicyOrder CandidateOrder = iota
	// SJFOrder scans shortest-estimate-first. The paper's reward baseline
	// (§3.4) is FCFS scheduling with SJF-ordered backfilling.
	SJFOrder
)

// EASY implements aggressive (single-reservation) EASY backfilling (Lifka
// 1995, §2.1.3 of the paper): when the head job cannot start, compute its
// reservation and start any later job that fits the free processors and
// either finishes (per the estimator) before the shadow time or only uses
// the extra processors.
type EASY struct {
	// Est supplies predicted runtimes for both the reservation and the
	// candidate-fit test. RequestTime{} gives plain EASY; ActualRuntime{}
	// gives the paper's EASY-AR; Noisy{...} gives Figure 1's error sweep.
	Est Estimator
	// Order controls candidate scan order (PolicyOrder by default).
	Order CandidateOrder
	// Scn layers priority tiers and the starvation bound onto the scan:
	// with aging on, every starving queued job's reservation becomes
	// blocking (kube-batch StarvationThreshold semantics) — a candidate
	// must respect the head's AND every starving job's shadow/extra. The
	// zero scenario reproduces classic EASY exactly.
	Scn sched.Scenario

	// Reusable scratch: EASY runs on every blocked scheduling event, so the
	// candidate decoration and reservation buffers are kept across calls.
	res   ReservationScratch
	cands []estimated
	prots []protection
}

// estimated decorates a candidate with its runtime estimate (and, when a
// scenario is active, its scan-order keys), computed once per backfill round
// rather than per comparison and again per scan.
type estimated struct {
	job      *trace.Job
	est      int64
	starving bool
	pri      int
}

// protection is one starving job's blocking reservation during a round.
type protection struct {
	job *trace.Job
	res Reservation
}

// NewEASY returns EASY backfilling with the given estimator and the classic
// policy-order candidate scan.
func NewEASY(est Estimator) *EASY { return &EASY{Est: est} }

// Fresh implements Cloneable: same configuration, own scratch.
func (e *EASY) Fresh() Backfiller { return &EASY{Est: e.Est, Order: e.Order, Scn: e.Scn} }

// Name implements Backfiller.
func (e *EASY) Name() string {
	n := "EASY-" + e.Est.Name()
	if e.Order == SJFOrder {
		n += "-SJF"
	}
	return n
}

// Backfill implements Backfiller.
func (e *EASY) Backfill(st State, head *trace.Job, queue []*trace.Job) {
	res := e.res.Compute(st, head, e.Est)
	now := st.Now()
	free := st.FreeProcs()
	memFree, memTotal := MemOf(st)
	extra := res.Extra
	extraMem := res.ExtraMem

	// With aging on, every starving queued job gets its own blocking
	// reservation, computed EASY-style against the running set. Candidates
	// must then clear the head's shadow AND every starving job's.
	e.prots = e.prots[:0]
	if e.Scn.Aging() {
		for _, j := range queue {
			if e.Scn.Starving(j, now) {
				e.prots = append(e.prots, protection{job: j, res: e.res.Compute(st, j, e.Est)})
			}
		}
	}

	scnOrder := e.Scn.Enabled()
	if cap(e.cands) < len(queue) {
		e.cands = make([]estimated, len(queue))
	}
	cands := e.cands[:len(queue)]
	for i, j := range queue {
		cands[i] = estimated{job: j, est: e.Est.Estimate(j)}
		if scnOrder {
			cands[i].starving = e.Scn.Starving(j, now)
			cands[i].pri = j.Priority
		}
	}
	if e.Order == SJFOrder {
		if scnOrder {
			// Starving first, then higher tiers, then the classic
			// shortest-estimate order. With uniform tiers and nobody
			// starving this is exactly the classic comparison.
			pri := e.Scn.Priorities
			sort.SliceStable(cands, func(a, b int) bool {
				if cands[a].starving != cands[b].starving {
					return cands[a].starving
				}
				if pri && cands[a].pri != cands[b].pri {
					return cands[a].pri > cands[b].pri
				}
				if cands[a].est != cands[b].est {
					return cands[a].est < cands[b].est
				}
				return cands[a].job.ID < cands[b].job.ID
			})
		} else {
			sort.SliceStable(cands, func(a, b int) bool {
				if cands[a].est != cands[b].est {
					return cands[a].est < cands[b].est
				}
				return cands[a].job.ID < cands[b].job.ID
			})
		}
	}

	for _, c := range cands {
		j := c.job
		jm := memDemand(j, memTotal)
		if j.Procs > free || jm > memFree {
			continue
		}
		end := now + c.est
		endsByShadow := end <= res.Shadow
		usesExtraOnly := j.Procs <= extra && jm <= extraMem
		if !endsByShadow && !usesExtraOnly {
			continue
		}
		clear := true
		for pi := range e.prots {
			p := &e.prots[pi]
			if p.job == j {
				continue // a starving job is not blocked by its own reservation
			}
			if end <= p.res.Shadow || (j.Procs <= p.res.Extra && jm <= p.res.ExtraMem) {
				continue
			}
			clear = false
			break
		}
		if !clear {
			continue
		}
		st.StartJob(j)
		free -= j.Procs
		memFree -= jm
		if !endsByShadow {
			// The job runs past the shadow time, so it permanently consumes
			// part of the head job's surplus.
			extra -= j.Procs
			extraMem -= jm
		}
		for pi := 0; pi < len(e.prots); pi++ {
			p := &e.prots[pi]
			if p.job == j {
				// The starving job itself started; its reservation is moot.
				e.prots = append(e.prots[:pi], e.prots[pi+1:]...)
				pi--
				continue
			}
			if end > p.res.Shadow {
				p.res.Extra -= j.Procs
				p.res.ExtraMem -= jm
			}
		}
		if free == 0 {
			return
		}
	}
}
