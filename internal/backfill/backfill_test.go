package backfill

import (
	"testing"

	"repro/internal/trace"
)

// memState is an in-memory backfill.State for unit tests.
type memState struct {
	now     int64
	free    int
	total   int
	running []Running
	started []*trace.Job
}

func (m *memState) Now() int64         { return m.now }
func (m *memState) FreeProcs() int     { return m.free }
func (m *memState) TotalProcs() int    { return m.total }
func (m *memState) Running() []Running { return m.running }
func (m *memState) StartJob(j *trace.Job) {
	if j.Procs > m.free {
		panic("memState: job does not fit")
	}
	m.free -= j.Procs
	m.started = append(m.started, j)
	m.running = append(m.running, Running{Job: j, Start: m.now})
}

func job(id int, submit, run, req int64, procs int) *trace.Job {
	return &trace.Job{ID: id, Submit: submit, Runtime: run, Request: req, Procs: procs}
}

func TestComputeReservationImmediateFit(t *testing.T) {
	st := &memState{now: 50, free: 8, total: 8}
	head := job(1, 0, 10, 10, 4)
	res := ComputeReservation(st, head, RequestTime{})
	if res.Shadow != 50 || res.Extra != 4 {
		t.Fatalf("reservation %+v, want shadow 50 extra 4", res)
	}
}

func TestComputeReservationWaitsForRunning(t *testing.T) {
	st := &memState{now: 10, free: 2, total: 10, running: []Running{
		{Job: job(1, 0, 100, 120, 4), Start: 0}, // est end 120
		{Job: job(2, 0, 100, 60, 4), Start: 5},  // est end 65
	}}
	head := job(3, 10, 50, 50, 8)
	res := ComputeReservation(st, head, RequestTime{})
	// free 2 + job2's 4 at t=65 = 6 < 8; + job1's 4 at t=120 = 10 >= 8
	if res.Shadow != 120 {
		t.Fatalf("shadow = %d, want 120", res.Shadow)
	}
	if res.Extra != 2 {
		t.Fatalf("extra = %d, want 2", res.Extra)
	}
}

func TestComputeReservationEstimatorMatters(t *testing.T) {
	st := &memState{now: 0, free: 0, total: 8, running: []Running{
		{Job: job(1, 0, 30, 100, 8), Start: 0}, // actual 30, requested 100
	}}
	head := job(2, 0, 10, 10, 8)
	rt := ComputeReservation(st, head, RequestTime{})
	ar := ComputeReservation(st, head, ActualRuntime{})
	if rt.Shadow != 100 || ar.Shadow != 30 {
		t.Fatalf("shadows rt=%d ar=%d, want 100/30 (Figure 2's trade-off)", rt.Shadow, ar.Shadow)
	}
}

func TestComputeReservationOverdueJob(t *testing.T) {
	// The running job's estimate already expired: shadow clamps to now.
	st := &memState{now: 500, free: 0, total: 8, running: []Running{
		{Job: job(1, 0, 600, 100, 8), Start: 0}, // est end 100 < now
	}}
	head := job(2, 400, 10, 10, 8)
	res := ComputeReservation(st, head, RequestTime{})
	if res.Shadow != 500 {
		t.Fatalf("shadow = %d, want clamped to now=500", res.Shadow)
	}
}

func TestEASYBackfillOrderPolicyVsSJF(t *testing.T) {
	mk := func() *memState {
		return &memState{now: 0, free: 3, total: 10, running: []Running{
			{Job: job(1, 0, 100, 100, 7), Start: 0},
		}}
	}
	head := job(2, 0, 50, 50, 10)
	// Queue order (policy): long-ish first. Both fit in free=3 and end
	// before shadow 100; with only 3 free procs, only one can start.
	q := func() []*trace.Job {
		return []*trace.Job{job(3, 1, 90, 90, 3), job(4, 2, 10, 10, 3)}
	}

	pol := NewEASY(RequestTime{})
	stP := mk()
	pol.Backfill(stP, head, q())
	if len(stP.started) != 1 || stP.started[0].ID != 3 {
		t.Fatalf("policy order started %v, want job 3 first", ids(stP.started))
	}

	sjf := &EASY{Est: RequestTime{}, Order: SJFOrder}
	stS := mk()
	sjf.Backfill(stS, head, q())
	if len(stS.started) != 1 || stS.started[0].ID != 4 {
		t.Fatalf("SJF order started %v, want job 4 first", ids(stS.started))
	}
}

func ids(js []*trace.Job) []int {
	out := make([]int, len(js))
	for i, j := range js {
		out[i] = j.ID
	}
	return out
}

func TestEASYConsumesExtraOnlyOnce(t *testing.T) {
	// extra = 2; two long 2-proc jobs want to backfill; only the first may
	// take the extra processors, otherwise the head is delayed.
	st := &memState{now: 0, free: 4, total: 10, running: []Running{
		{Job: job(1, 0, 100, 100, 6), Start: 0},
	}}
	head := job(2, 0, 50, 50, 8) // shadow 100, extra (4+6)-8 = 2
	long1 := job(3, 1, 500, 500, 2)
	long2 := job(4, 2, 500, 500, 2)
	NewEASY(RequestTime{}).Backfill(st, head, []*trace.Job{long1, long2})
	if len(st.started) != 1 || st.started[0].ID != 3 {
		t.Fatalf("started %v, want only job 3 (extra budget exhausted)", ids(st.started))
	}
}

func TestEASYStopsWhenMachineFull(t *testing.T) {
	st := &memState{now: 0, free: 2, total: 10, running: []Running{
		{Job: job(1, 0, 100, 100, 8), Start: 0},
	}}
	head := job(2, 0, 50, 50, 10)
	short1 := job(3, 1, 10, 10, 2)
	short2 := job(4, 2, 10, 10, 2)
	NewEASY(RequestTime{}).Backfill(st, head, []*trace.Job{short1, short2})
	if len(st.started) != 1 {
		t.Fatalf("started %d jobs with only 2 free procs", len(st.started))
	}
}

func TestEstimatorNames(t *testing.T) {
	if (RequestTime{}).Name() != "RT" || (ActualRuntime{}).Name() != "AR" {
		t.Fatal("estimator names wrong")
	}
	if (Noisy{Level: 0.2}).Name() != "AR+20%" {
		t.Fatalf("noisy name = %q", Noisy{Level: 0.2}.Name())
	}
}

func TestNoisyEstimatorBounds(t *testing.T) {
	j := job(7, 0, 1000, 9999, 1)
	for _, lvl := range []float64{0.05, 0.1, 0.2, 0.4, 1.0} {
		est := Noisy{Level: lvl, Seed: 42}
		v := est.Estimate(j)
		if v < 1000 || float64(v) > 1000*(1+lvl)+1 {
			t.Fatalf("level %v: estimate %d outside [1000, %v]", lvl, v, 1000*(1+lvl))
		}
	}
	// level 0 equals the actual runtime
	if (Noisy{Level: 0}).Estimate(j) != 1000 {
		t.Fatal("zero-noise estimate != AR")
	}
}

func TestNoisySeedChangesDraw(t *testing.T) {
	j := job(7, 0, 1000, 9999, 1)
	a := Noisy{Level: 1.0, Seed: 1}.Estimate(j)
	b := Noisy{Level: 1.0, Seed: 2}.Estimate(j)
	if a == b {
		t.Fatal("different seeds produced identical noise (suspicious)")
	}
}

func TestEstimatorsFloorAtOne(t *testing.T) {
	z := &trace.Job{ID: 1, Runtime: 0, Request: 0, Procs: 1}
	if (RequestTime{}).Estimate(z) < 1 || (ActualRuntime{}).Estimate(z) < 1 {
		t.Fatal("estimates must be >= 1")
	}
}

func TestConservativeDoesNotDelayAnyReservation(t *testing.T) {
	// Head waits for t=100 (8 procs). A second queued job (4 procs, 50s)
	// reserves right after. A candidate that would delay the *second* job's
	// reservation must be rejected even if the head is unaffected.
	st := &memState{now: 0, free: 2, total: 10, running: []Running{
		{Job: job(1, 0, 100, 100, 8), Start: 0},
	}}
	head := job(2, 0, 200, 200, 10)
	second := job(3, 1, 50, 50, 2) // could start now; it is a candidate too
	c := NewConservative(RequestTime{})
	c.Backfill(st, head, []*trace.Job{second})
	// job 3 fits now and delays nobody: it must start
	if len(st.started) != 1 || st.started[0].ID != 3 {
		t.Fatalf("conservative refused a harmless backfill: %v", ids(st.started))
	}
}

func TestConservativeName(t *testing.T) {
	if NewConservative(RequestTime{}).Name() != "CONS-RT" {
		t.Fatal("conservative name wrong")
	}
	if NewEASY(ActualRuntime{}).Name() != "EASY-AR" {
		t.Fatal("easy name wrong")
	}
	if (&EASY{Est: RequestTime{}, Order: SJFOrder}).Name() != "EASY-RT-SJF" {
		t.Fatal("easy sjf name wrong")
	}
}
