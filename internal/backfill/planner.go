package backfill

import (
	"math"

	"repro/internal/cluster"
	"repro/internal/trace"
)

// planEntry is one job's base placement in a backfill round: its runtime
// estimate and the start FindStart assigned under the round's base profile.
type planEntry struct {
	job   *trace.Job
	dur   int64
	start int64
}

// planner is the shared per-round machinery of the profile-based backfillers
// (Conservative, Slack). A round builds the availability profile from the
// running set exactly once (one bulk ResetSpans sweep), records every
// waiting job's base reservation under a checkpoint, and then trial-places
// each candidate under its own checkpoint — rollback restores the base
// profile in O(touched segments), so nothing is ever rebuilt within a round
// (DESIGN.md §9). All storage is reused across rounds; a planner is not
// goroutine-safe (backfillers are cloned per worker, see Cloneable).
type planner struct {
	prof   cluster.VecProfile
	spans  []cluster.Span
	plan   []planEntry // base placement, in policy order: head first, then queue
	limit  []int64     // latest admissible start per plan entry during trials
	sufMin []int64     // sufMin[i] = min base start over plan[i:]
}

// fill resets the profile to the availability implied by the running jobs'
// estimated completions. A job that has outlived its estimate (end <= now)
// is assumed to release imminently (now + 1). Running jobs always fit by
// construction. On a memory-carrying machine (MemState with TotalMem > 0)
// the profile tracks both dimensions; otherwise it is the scalar skyline.
func (pl *planner) fill(st State, est Estimator, now int64) *cluster.VecProfile {
	running := st.Running()
	_, memTotal := MemOf(st)
	pl.spans = pl.spans[:0]
	for _, r := range running {
		end := r.Start + est.Estimate(r.Job)
		if end <= now {
			end = now + 1
		}
		pl.spans = append(pl.spans, cluster.Span{End: end, Procs: r.Job.Procs, Mem: memDemand(r.Job, memTotal)})
	}
	pl.prof.ResetSpans(st.TotalProcs(), memTotal, now, pl.spans)
	return &pl.prof
}

// basePlan places the head and then every queued job in order under a
// checkpoint, recording each base start, and rolls the profile back. In
// strict mode a failed reservation aborts the round (Conservative); lenient
// mode records the found start and moves on (Slack, matching its historic
// semantics). On success it also fills the suffix minima of the base starts
// that the trial fast path keys on.
func (pl *planner) basePlan(p *cluster.VecProfile, est Estimator, now int64, head *trace.Job, queue []*trace.Job, strict bool) bool {
	pl.plan = pl.plan[:0]
	mark := p.Checkpoint()
	ok := pl.placeBase(p, est, now, head, strict)
	if ok {
		for _, j := range queue {
			if !pl.placeBase(p, est, now, j, strict) {
				ok = false
				break
			}
		}
	}
	p.Rollback(mark)
	if !ok {
		return false
	}
	n := len(pl.plan)
	if cap(pl.sufMin) < n+1 {
		pl.sufMin = make([]int64, n+1)
	}
	pl.sufMin = pl.sufMin[:n+1]
	pl.sufMin[n] = math.MaxInt64
	for i := n - 1; i >= 0; i-- {
		pl.sufMin[i] = min(pl.plan[i].start, pl.sufMin[i+1])
	}
	return true
}

func (pl *planner) placeBase(p *cluster.VecProfile, est Estimator, now int64, j *trace.Job, strict bool) bool {
	dur := est.Estimate(j)
	s := p.FindStart(now, dur, j.Procs, j.Mem)
	if err := p.ReserveFound(s, s+dur, j.Procs, j.Mem); err != nil && strict {
		return false
	}
	pl.plan = append(pl.plan, planEntry{job: j, dur: dur, start: s})
	return true
}

// growLimits sizes the limit slice to the current plan.
func (pl *planner) growLimits() []int64 {
	n := len(pl.plan)
	if cap(pl.limit) < n {
		pl.limit = make([]int64, n)
	}
	pl.limit = pl.limit[:n]
	return pl.limit
}

// trial re-places every planned job except plan[ci] (the candidate, already
// reserved at [now, candEnd)) and reports whether everyone's new start stays
// within its limit. It aborts on the first violation — the verdict is
// already decided.
//
// Fast path: while every re-placed job has landed exactly on its base start
// AND the loop has not yet passed the candidate's own slot, the trial
// profile differs from the base profile only by the candidate's reservation
// over [now, candEnd). A job whose base window starts at or after candEnd is
// then disjoint from that difference, so it is (a) still feasible at its
// base start and (b) cannot start earlier (the trial profile is pointwise no
// freer elsewhere) — it re-places exactly at base with no search. Past the
// candidate's slot the trial profile also lacks the candidate's base
// reservation, which can open earlier holes and cascade, so every later job
// gets a full search. When the candidate is the final slot and the whole
// remaining suffix is disjoint (sufMin), the trial is accepted outright.
func (pl *planner) trial(p *cluster.VecProfile, now int64, ci int, candEnd int64, strict bool) bool {
	exact := true
	last := len(pl.plan) - 1
	for i := range pl.plan {
		if i == ci {
			continue
		}
		e := &pl.plan[i]
		if exact && i < ci {
			if ci == last && pl.sufMin[i] >= candEnd {
				return true
			}
			if e.start >= candEnd {
				if err := p.ReserveFound(e.start, e.start+e.dur, e.job.Procs, e.job.Mem); err != nil && strict {
					return false
				}
				continue
			}
		}
		s := p.FindStart(now, e.dur, e.job.Procs, e.job.Mem)
		if err := p.ReserveFound(s, s+e.dur, e.job.Procs, e.job.Mem); err != nil && strict {
			return false
		}
		if s > pl.limit[i] {
			return false
		}
		if s != e.start {
			exact = false
		}
	}
	return true
}

// backfillOne runs one round for a profile-based strategy: build the base
// profile, record the base plan (with `limits` filled by the caller via
// setLimits), and start the first candidate whose immediate execution keeps
// every other job within its limit. Returns the started job, or nil.
func (pl *planner) backfillOne(st State, est Estimator, now int64, head *trace.Job, queue []*trace.Job, strict bool, setLimits func()) *trace.Job {
	p := pl.fill(st, est, now)
	if !pl.basePlan(p, est, now, head, queue, strict) {
		return nil
	}
	setLimits()
	free := st.FreeProcs()
	memFree, memTotal := MemOf(st)
	for ci := 1; ci < len(pl.plan); ci++ {
		cand := pl.plan[ci]
		if cand.job.Procs > free || memDemand(cand.job, memTotal) > memFree {
			continue
		}
		candEnd := now + cand.dur
		mark := p.Checkpoint()
		if err := p.Reserve(now, candEnd, cand.job.Procs, cand.job.Mem); err != nil {
			p.Rollback(mark)
			continue
		}
		ok := pl.trial(p, now, ci, candEnd, strict)
		p.Rollback(mark)
		if ok {
			st.StartJob(cand.job)
			return cand.job
		}
	}
	return nil
}

// removeStarted drops a started job from the local queue view between
// rounds (shared by the profile-based strategies' Backfill loops).
func removeStarted(queue []*trace.Job, started *trace.Job) []*trace.Job {
	out := queue[:0]
	for _, j := range queue {
		if j != started {
			out = append(out, j)
		}
	}
	return out
}
