package backfill

import (
	"testing"

	"repro/internal/trace"
)

func TestSlackName(t *testing.T) {
	if NewSlack(RequestTime{}).Name() != "SLACK-RT" {
		t.Fatal("slack name wrong")
	}
}

func TestSlackBackfillsHarmlessJob(t *testing.T) {
	st := &memState{now: 0, free: 2, total: 10, running: []Running{
		{Job: job(1, 0, 100, 100, 8), Start: 0},
	}}
	head := job(2, 0, 50, 50, 10)
	short := job(3, 1, 50, 50, 2) // finishes before the head's reservation
	NewSlack(RequestTime{}).Backfill(st, head, []*trace.Job{short})
	if len(st.started) != 1 || st.started[0].ID != 3 {
		t.Fatalf("slack refused a harmless backfill: %v", ids(st.started))
	}
}

func TestSlackNeverDelaysHead(t *testing.T) {
	// The head has zero slack: a candidate that would push the head's start
	// beyond its reservation must be rejected no matter the factor.
	st := &memState{now: 0, free: 2, total: 10, running: []Running{
		{Job: job(1, 0, 100, 100, 8), Start: 0},
	}}
	head := job(2, 0, 50, 50, 10)
	long := job(3, 1, 500, 500, 2) // runs way past the head's shadow
	s := &Slack{Est: RequestTime{}, Factor: 10}
	s.Backfill(st, head, []*trace.Job{long})
	if len(st.started) != 0 {
		t.Fatalf("slack delayed the head by starting %v", ids(st.started))
	}
}

func TestSlackFactorLoosensNonHeadReservations(t *testing.T) {
	// Machine 10. Running: 8 procs until t=100. Queue (policy order):
	// head (10 procs, starts at 100), mid (2 procs, 100s), cand (2 procs, 60s).
	// mid reserves [0,100) on the 2 free procs; starting cand now pushes
	// mid's start to 60 (a 60s delay = 0.6x mid's 100s estimate).
	// Factor 0 (conservative) must refuse; factor 1.0 must accept.
	mk := func() (*memState, *trace.Job, []*trace.Job) {
		st := &memState{now: 0, free: 2, total: 10, running: []Running{
			{Job: job(1, 0, 100, 100, 8), Start: 0},
		}}
		head := job(2, 0, 50, 50, 10)
		mid := job(3, 1, 100, 100, 2)
		cand := job(4, 2, 60, 60, 2)
		return st, head, []*trace.Job{mid, cand}
	}

	st0, head0, q0 := mk()
	(&Slack{Est: RequestTime{}, Factor: 0}).Backfill(st0, head0, q0)
	for _, j := range st0.started {
		if j.ID == 4 {
			t.Fatal("factor 0 (conservative) accepted a delaying backfill")
		}
	}

	st1, head1, q1 := mk()
	(&Slack{Est: RequestTime{}, Factor: 1.0}).Backfill(st1, head1, q1)
	startedMid := false
	for _, j := range st1.started {
		if j.ID == 3 {
			startedMid = true
		}
	}
	// mid itself fits now and delays nobody, so it must start under any
	// factor; with factor 1.0 there is room for it.
	if !startedMid {
		t.Fatalf("slack failed to start the immediately-runnable job: %v", ids(st1.started))
	}
}

func TestSlackSkipsOversizedCandidates(t *testing.T) {
	st := &memState{now: 0, free: 2, total: 10, running: []Running{
		{Job: job(1, 0, 100, 100, 8), Start: 0},
	}}
	head := job(2, 0, 50, 50, 10)
	wide := job(3, 1, 10, 10, 4) // wider than the 2 free procs
	NewSlack(RequestTime{}).Backfill(st, head, []*trace.Job{wide})
	if len(st.started) != 0 {
		t.Fatal("slack started a job that does not fit")
	}
}
