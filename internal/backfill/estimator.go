package backfill

import (
	"fmt"

	"repro/internal/stats"
	"repro/internal/trace"
)

// Estimator predicts a job's runtime for backfilling decisions. The paper's
// central observation (§1, Figures 1-2) is that the choice of estimator
// trades the head job's reservation tightness against backfilling
// opportunity, and that higher accuracy does not imply better schedules.
type Estimator interface {
	Name() string
	// Estimate returns the predicted runtime in seconds (always >= 1).
	Estimate(j *trace.Job) int64
}

// RequestTime estimates with the user-provided wall time (plain EASY).
type RequestTime struct{}

// Name implements Estimator.
func (RequestTime) Name() string { return "RT" }

// Estimate implements Estimator.
func (RequestTime) Estimate(j *trace.Job) int64 { return maxI64(j.Request, 1) }

// ActualRuntime estimates with the job's true runtime — the "ideal
// prediction" the paper's EASY-AR baseline uses.
type ActualRuntime struct{}

// Name implements Estimator.
func (ActualRuntime) Name() string { return "AR" }

// Estimate implements Estimator.
func (ActualRuntime) Estimate(j *trace.Job) int64 { return maxI64(j.Runtime, 1) }

// Noisy perturbs the actual runtime with a per-job multiplicative
// overestimate: estimate = AR * (1 + U(0, Level)). A Level of 0.2 is the
// paper's "+20%" point in Figure 1. Estimates are fixed per job (sampled
// once, deterministically from Seed and the job ID) so the same job is
// always predicted consistently within a simulation.
type Noisy struct {
	Level float64
	Seed  uint64
}

// Name implements Estimator.
func (n Noisy) Name() string { return fmt.Sprintf("AR+%.0f%%", n.Level*100) }

// Estimate implements Estimator.
func (n Noisy) Estimate(j *trace.Job) int64 {
	if n.Level <= 0 {
		return maxI64(j.Runtime, 1)
	}
	// A per-job RNG keyed by (Seed, ID) gives a fixed, reproducible
	// perturbation without maintaining a map.
	r := stats.NewRNG(n.Seed ^ (uint64(j.ID)*0x9e3779b97f4a7c15 + 0x1234567))
	f := 1 + r.Float64()*n.Level
	est := int64(float64(maxI64(j.Runtime, 1)) * f)
	return maxI64(est, 1)
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
