package cluster

// Block min/max index over the skyline (DESIGN.md §11).
//
// When a profile's backlog grows past a few hundred segments — the regime of
// conservative/slack backfilling over a million-job trace, where thousands of
// queued reservations stack up — the monotonic FindStart walk degrades to
// O(walked segments) per query. The index partitions the segment slice into
// contiguous blocks of ~idxBlockSize segments, each carrying the minimum and
// maximum free count of its members. A query that has already walked two
// blocks' worth of segments escapes to blockwise advancing (escapeWalk): a
// block whose max free is below the request cannot contain a feasible
// segment, and one whose min free is at or above it cannot contain a
// blocker, so whole blocks are skipped in O(1) and only boundary blocks are
// scanned — O(S/B + B + touched blocks) per long query instead of
// O(walked), while short queries stay on the plain walk and never pay the
// index's constants. MinFree combines block minima the same way.
//
// The index is an acceleration overlay, never a semantic one: the segment
// slice stays the canonical representation, every query dispatches to the
// plain walk when the index is off, and the indexed paths answer
// byte-identically to the walk (pinned by the fuzz differential in
// index_test.go). It engages only past a segment-count threshold — shallow
// profiles (the paper's 10K-job benches) never pay for it — with hysteresis
// so a backlog oscillating around the threshold does not rebuild per op.
//
// Incremental maintenance keeps block bounds *conservative*, not exact:
// the invariant is containment — b.min <= true min and b.max >= true max of
// the block's members — which is all the query paths need, since bounds are
// only ever used to prune (a block can be skipped when its bound proves no
// member qualifies; a bound that is merely loose costs a scan, never a wrong
// answer). Containment is maintainable in O(1) where exactness is not:
// a boundary insertion (ensureBoundary) widens the owning block's bounds by
// the inserted value (split at 2x the target size, re-summarised exactly);
// a seam removal (mergeAt) shrinks the owning block's count and leaves its
// bounds alone (membership only shrank); a range update (addRange) shifts
// fully covered blocks by delta exactly and widens the moving bound of the
// at-most-two partial boundary blocks by delta. The profile's reserve-trial/
// rollback churn — the dominant cost of conservative-backfilling replay —
// therefore pays a few integer adds per op instead of O(B) block recomputes.
// Loose bounds self-heal at query time: when a block's bound forces a member
// scan that comes up empty, the scan already touched every member, so the
// block is re-summarised exactly on the spot (makeBlock) and the next query
// skips it outright. A stale block thus wastes at most one scan before it is
// repaired, and answers are byte-identical to the walk throughout (pinned by
// the fuzz differential in index_test.go, which checks containment after
// every op).

const (
	// idxBlockSize is the target segments per block; blocks split at twice
	// this. 64 keeps a block scan inside two cache lines of segments while
	// the block walk stays ~S/64 long.
	idxBlockSize = 64
	// idxEnableAt / idxDisableAt bound the hysteresis: the index is built
	// when the skyline grows to idxEnableAt segments and dropped when it
	// shrinks below idxDisableAt. Shallow profiles stay on the plain walk.
	idxEnableAt  = 512
	idxDisableAt = 256
	// idxBoundCap clamps conservatively widened bounds so that pathological
	// mutation streams (millions of trial/rollback widenings on a block no
	// query ever repairs) cannot overflow int32. Containment survives the
	// clamp: real free counts are nowhere near +-2^30.
	idxBoundCap = 1 << 30
)

// blockIdx summarises one contiguous run of n segments.
type blockIdx struct {
	n        int32 // segments in this block
	min, max int32 // min/max Free over those segments
}

// DefaultIndexThreshold is the process-wide fallback for profiles that have
// no per-Profile override (SetIndexThreshold 0): > 0 engages the index at
// that many segments, < 0 disables indexing, 0 keeps the built-in default.
// It exists for end-to-end A/B measurement — benchmarks flip it to compare
// indexed and plain-walk replays through engines that construct their own
// profiles — and is read at query/maintenance time, so it must not be
// changed while replays run concurrently.
var DefaultIndexThreshold int

// SetIndexThreshold overrides the segment count at which the block index
// engages: n > 0 enables it at n segments (hysteresis at n/2), n < 0
// disables indexing entirely, n == 0 restores the default (or the
// process-wide DefaultIndexThreshold when set). The override survives
// Reset/ResetSpans. Query results are identical at any setting — the
// threshold only moves the walk/index crossover — so this is a tuning and
// testing knob, not a semantic one.
func (p *Profile) SetIndexThreshold(n int) {
	p.idxThreshold = n
	p.reindex()
}

func (p *Profile) idxEnableThreshold() int {
	n := p.idxThreshold
	if n == 0 {
		n = DefaultIndexThreshold
	}
	switch {
	case n < 0:
		return int(^uint(0) >> 1) // never
	case n > 0:
		return n
	}
	return idxEnableAt
}

func (p *Profile) idxDisableThreshold() int {
	n := p.idxThreshold
	if n == 0 {
		n = DefaultIndexThreshold
	}
	switch {
	case n < 0:
		return 0
	case n > 0:
		return max(n/2, 1)
	}
	return idxDisableAt
}

// reindex rebuilds or drops the index to match the current skyline; used
// after bulk rewrites of the segment slice (ResetSpans) and threshold
// changes, where incremental maintenance has nothing to start from.
func (p *Profile) reindex() {
	if len(p.segs) >= p.idxEnableThreshold() {
		p.buildIndex()
	} else {
		p.dropIndex()
	}
}

func (p *Profile) dropIndex() {
	p.idxOn = false
	p.blocks = p.blocks[:0]
}

func (p *Profile) buildIndex() {
	p.blocks = p.blocks[:0]
	for s := 0; s < len(p.segs); s += idxBlockSize {
		e := min(s+idxBlockSize, len(p.segs))
		p.blocks = append(p.blocks, makeBlock(p.segs[s:e]))
	}
	p.idxOn = true
}

// makeBlock summarises segs exactly.
func makeBlock(segs []segment) blockIdx {
	b := blockIdx{n: int32(len(segs)), min: int32(segs[0].Free), max: int32(segs[0].Free)}
	for _, s := range segs[1:] {
		if int32(s.Free) < b.min {
			b.min = int32(s.Free)
		}
		if int32(s.Free) > b.max {
			b.max = int32(s.Free)
		}
	}
	return b
}

// locateBlock returns the index of the block containing segment position i
// and the segment index of that block's first member. Positions at or past
// the end land in the last block (callers only use this for appends).
func (p *Profile) locateBlock(i int) (bi, s int) {
	for bi = range p.blocks {
		n := int(p.blocks[bi].n)
		if i < s+n || bi == len(p.blocks)-1 {
			return bi, s
		}
		s += n
	}
	return 0, 0
}

// idxInsert maintains the index after a segment with the given free count
// was inserted at position i (or appended when i was the old length). When
// the index is off it only checks the enable threshold.
func (p *Profile) idxInsert(i, free int) {
	if !p.idxOn {
		if len(p.segs) >= p.idxEnableThreshold() {
			p.buildIndex()
		}
		return
	}
	bi, s := p.locateBlock(i)
	b := &p.blocks[bi]
	b.n++
	if int32(free) < b.min {
		b.min = int32(free)
	}
	if int32(free) > b.max {
		b.max = int32(free)
	}
	if int(b.n) >= 2*idxBlockSize {
		p.splitBlock(bi, s)
	}
}

// splitBlock halves block bi (whose first member is segment s) in place.
func (p *Profile) splitBlock(bi, s int) {
	n := int(p.blocks[bi].n)
	half := n / 2
	left := makeBlock(p.segs[s : s+half])
	right := makeBlock(p.segs[s+half : s+n])
	p.blocks = append(p.blocks, blockIdx{})
	copy(p.blocks[bi+2:], p.blocks[bi+1:])
	p.blocks[bi] = left
	p.blocks[bi+1] = right
}

// idxRemove maintains the index after the segment at (pre-removal) position
// i was removed: the owning block shrinks and keeps its bounds — membership
// only shrank, so the old bounds still contain the survivors (a removal can
// tighten the true range but never escape it). Empty blocks vanish.
func (p *Profile) idxRemove(i int) {
	if !p.idxOn {
		return
	}
	bi, _ := p.locateBlock(i)
	b := &p.blocks[bi]
	b.n--
	if b.n == 0 {
		p.blocks = append(p.blocks[:bi], p.blocks[bi+1:]...)
	}
	if len(p.segs) < p.idxDisableThreshold() {
		p.dropIndex()
	}
}

// idxRangeAdd maintains the index after delta was added to the free counts
// of segment positions [i, j): fully covered blocks shift min/max by delta
// exactly; the at-most-two partial boundary blocks widen the one bound the
// update can move (delta < 0 can only lower the min, delta > 0 only raise
// the max) in O(1), leaving the other bound valid as-is. Queries retighten
// widened blocks when a bound-forced scan comes up empty (nextBelow /
// nextAtLeast), so this is the cheap half of the self-healing contract.
func (p *Profile) idxRangeAdd(i, j, delta int) {
	if !p.idxOn || j <= i {
		return
	}
	bi, s := p.locateBlock(i)
	for s < j && bi < len(p.blocks) {
		b := &p.blocks[bi]
		n := int(b.n)
		switch {
		case i <= s && s+n <= j:
			b.min += int32(delta)
			b.max += int32(delta)
		case delta < 0:
			if b.min += int32(delta); b.min < -idxBoundCap {
				b.min = -idxBoundCap
			}
		default:
			if b.max += int32(delta); b.max > idxBoundCap {
				b.max = idxBoundCap
			}
		}
		s += n
		bi++
	}
}

// nextBelow returns the first segment index k >= i with Free < procs,
// together with its block coordinates, or k = -1 when no such segment
// exists. (bi, s) must be the block coordinates of a position <= i. A block
// whose conservative min forced a full-member scan that found nothing had a
// stale bound; the scan already touched every member, so the block is
// re-summarised exactly before moving on (the healing half of the
// containment contract).
func (p *Profile) nextBelow(i, bi, s, procs int) (k, kbi, ks int) {
	for bi < len(p.blocks) {
		b := p.blocks[bi]
		e := s + int(b.n)
		if int(b.min) < procs {
			lo := max(i, s)
			for k = lo; k < e; k++ {
				if p.segs[k].Free < procs {
					return k, bi, s
				}
			}
			if lo == s {
				p.blocks[bi] = makeBlock(p.segs[s:e])
			}
		}
		s = e
		bi++
		i = s
	}
	return -1, 0, 0
}

// nextAtLeast returns the first segment index k >= i with Free >= procs,
// together with its block coordinates, or k = -1 when no such segment
// exists. (bi, s) must be the block coordinates of a position <= i.
// Full-block scans that come up empty retighten the stale bound, as in
// nextBelow.
func (p *Profile) nextAtLeast(i, bi, s, procs int) (k, kbi, ks int) {
	for bi < len(p.blocks) {
		b := p.blocks[bi]
		e := s + int(b.n)
		if int(b.max) >= procs {
			lo := max(i, s)
			for k = lo; k < e; k++ {
				if p.segs[k].Free >= procs {
					return k, bi, s
				}
			}
			if lo == s {
				p.blocks[bi] = makeBlock(p.segs[s:e])
			}
		}
		s = e
		bi++
		i = s
	}
	return -1, 0, 0
}

// escapeWalk is the number of segments a query walks plainly before escaping
// to blockwise skipping. Most FindStart/MinFree calls on an organically deep
// backlog resolve within a block or two — the plain walk over a contiguous
// slice is already optimal there, and paying locateBlock plus per-block
// bookkeeping up front made the indexed path a net loss on real replays.
// Escaping only after two blocks' worth of segments keeps short queries at
// walk cost while long queries — the ones the index exists for — amortise
// the one-time escape over the blocks they skip. Variable, not const, so
// the fuzz differential can force the blockwise path from step zero.
var escapeWalk = 2 * idxBlockSize

// findStartBlockwise continues FindStart's monotonic candidate advance from
// segment position i (candidate cand, window end end) over the block index.
// Each round finds the first blocking segment inside the candidate window
// (nextBelow skipping blocks with min >= procs); if the window is clear the
// candidate stands. Otherwise the candidate jumps past the *entire* blocking
// run to the next feasible segment (nextAtLeast skipping blocks with
// max < procs) — exactly where the walk's one-segment-at-a-time advance
// would land it, since a candidate sitting on a blocking segment always
// re-jumps. The defensive fallback (blocked open-ended tail) mirrors the
// walk verbatim — cand >= the caller's original `after`, so clamping to
// cand is identical to clamping to after — and answers are byte-identical
// (index_test.go fuzz differential).
func (p *Profile) findStartBlockwise(i int, cand, end int64, procs int) int64 {
	n := len(p.segs)
	duration := end - cand
	bi, s := p.locateBlock(i)
	for {
		k, kbi, ks := p.nextBelow(i, bi, s, procs)
		if k < 0 || p.segs[k].Time >= end {
			return cand // window cleared before any blocker begins
		}
		if k+1 >= n {
			break // blocked open-ended tail: walk fallback below
		}
		j, jbi, js := p.nextAtLeast(k+1, kbi, ks, procs)
		if j < 0 {
			break // everything to the end blocks: walk fallback below
		}
		cand = p.segs[j].Time
		end = cand + duration
		i, bi, s = j, jbi, js
	}
	last := p.segs[n-1].Time
	if last < cand {
		last = cand
	}
	return last
}

// minFreeBlockwise continues MinFree's scan from segment position i with
// running minimum m. Conservative block minima prune, they are never taken
// as values: a block whose min bound is already >= m cannot improve the
// running minimum (the true min is at least the bound), so it is skipped in
// O(1); any other block is member-scanned. The caller has established
// segs[i].Time < end.
func (p *Profile) minFreeBlockwise(i int, end int64, m int) int {
	// Last segment whose span intersects the window: the last one starting
	// strictly before end.
	j := p.seek(end)
	if p.segs[j].Time >= end {
		j--
	}
	bi, s := p.locateBlock(i)
	k := i
	for k <= j {
		b := p.blocks[bi]
		e := s + int(b.n)
		if int(b.min) >= m {
			k = e
		} else {
			hi := min(e-1, j)
			for ; k <= hi; k++ {
				if p.segs[k].Free < m {
					m = p.segs[k].Free
				}
			}
		}
		s = e
		bi++
	}
	return m
}
