package cluster

import (
	"testing"

	"repro/internal/stats"
)

// checkIndex validates the block index against the segment slice it claims
// to summarise: blocks partition segs exactly, and every block's bounds
// *contain* the true min/max of its members — the containment invariant
// conservative maintenance guarantees (bounds may be loose after partial
// range updates until a query-side scan retightens them, but must never
// exclude a member). Called after every op in the fuzz below, so any
// containment break in incremental maintenance is caught at the op that
// caused it.
func checkIndex(t *testing.T, p *Profile, ctx string) {
	t.Helper()
	if !p.idxOn {
		if len(p.blocks) != 0 {
			t.Fatalf("%s: index off but %d blocks retained", ctx, len(p.blocks))
		}
		return
	}
	s := 0
	for bi, b := range p.blocks {
		if b.n <= 0 {
			t.Fatalf("%s: block %d has n=%d", ctx, bi, b.n)
		}
		if s+int(b.n) > len(p.segs) {
			t.Fatalf("%s: blocks overrun segs (%d > %d)", ctx, s+int(b.n), len(p.segs))
		}
		want := makeBlock(p.segs[s : s+int(b.n)])
		if b.min > want.min || b.max < want.max {
			t.Fatalf("%s: block %d (segs [%d,%d)) bounds %d/%d exclude true range %d/%d",
				ctx, bi, s, s+int(b.n), b.min, b.max, want.min, want.max)
		}
		s += int(b.n)
	}
	if s != len(p.segs) {
		t.Fatalf("%s: blocks cover %d of %d segments", ctx, s, len(p.segs))
	}
}

// TestProfileIndexDifferential drives an always-indexed profile and a
// never-indexed twin through identical random op sequences — reserves
// (FindStart-placed, arbitrary, and ReserveFound), checkpoint/rollback
// nests, ResetSpans rebuilds, and FreeAt/MinFree/FindStart probes including
// degenerate durations — and requires identical answers and segment lists
// throughout, with the index validated against the skyline after every op.
// The monotonic walk is the golden model, mirroring
// TestProfileDifferentialOldVsNew one layer down. escapeWalk is forced to 0
// so every indexed query takes the blockwise path from its first step —
// the small skylines here would otherwise rarely walk far enough to escape
// (the deep differential below covers the hybrid escape at its default).
func TestProfileIndexDifferential(t *testing.T) {
	defer func(old int) { escapeWalk = old }(escapeWalk)
	escapeWalk = 0
	for seed := uint64(1); seed <= 40; seed++ {
		r := stats.NewRNG(seed)
		total := []int{1, 4, 32, 100}[r.Intn(4)]
		from := r.Int63n(200) - 100
		idx := NewProfile(total, from)
		idx.SetIndexThreshold(2) // engage the index almost immediately
		walk := NewProfile(total, from)
		walk.SetIndexThreshold(-1) // never index: pure monotonic walk
		var marks []struct{ i, w int }
		for step := 0; step < 160; step++ {
			switch r.Intn(6) {
			case 0: // reserve, FindStart-placed
				procs := r.Intn(total+4) + 1
				dur := r.Int63n(200) + 1
				after := from + r.Int63n(400) - 50
				sIdx := idx.FindStart(after, dur, procs)
				sWalk := walk.FindStart(after, dur, procs)
				if sIdx != sWalk {
					t.Fatalf("seed %d step %d: FindStart(%d,%d,%d) = %d, walk %d",
						seed, step, after, dur, procs, sIdx, sWalk)
				}
				errIdx := idx.Reserve(sIdx, sIdx+dur, procs)
				errWalk := walk.Reserve(sWalk, sWalk+dur, procs)
				if (errIdx == nil) != (errWalk == nil) {
					t.Fatalf("seed %d step %d: reserve disagreement: idx %v, walk %v",
						seed, step, errIdx, errWalk)
				}
			case 1: // arbitrary reserve (often rejected), sometimes ReserveFound
				procs := r.Intn(total+4) + 1
				start := from + r.Int63n(500) - 150
				end := start + r.Int63n(250) - 20
				var errIdx, errWalk error
				if r.Bool(0.3) && idx.MinFree(start, end) >= procs && end > start && procs <= total {
					errIdx = idx.ReserveFound(start, end, procs)
					errWalk = walk.ReserveFound(start, end, procs)
				} else {
					errIdx = idx.Reserve(start, end, procs)
					errWalk = walk.Reserve(start, end, procs)
				}
				if (errIdx == nil) != (errWalk == nil) {
					t.Fatalf("seed %d step %d: reserve [%d,%d)x%d: idx %v, walk %v",
						seed, step, start, end, procs, errIdx, errWalk)
				}
			case 2: // point and range probes
				at := from + r.Int63n(500) - 150
				if a, b := idx.FreeAt(at), walk.FreeAt(at); a != b {
					t.Fatalf("seed %d step %d: FreeAt(%d) = %d, walk %d", seed, step, at, a, b)
				}
				lo := from + r.Int63n(500) - 150
				hi := lo + r.Int63n(300) - 30
				if a, b := idx.MinFree(lo, hi), walk.MinFree(lo, hi); a != b {
					t.Fatalf("seed %d step %d: MinFree(%d,%d) = %d, walk %d", seed, step, lo, hi, a, b)
				}
			case 3: // FindStart probe, including zero/negative durations
				procs := r.Intn(total+4) + 1
				dur := r.Int63n(200) - 10
				after := from + r.Int63n(500) - 150
				if a, b := idx.FindStart(after, dur, procs), walk.FindStart(after, dur, procs); a != b {
					t.Fatalf("seed %d step %d: FindStart(%d,%d,%d) = %d, walk %d",
						seed, step, after, dur, procs, a, b)
				}
			case 4: // checkpoint / rollback
				if len(marks) > 0 && r.Bool(0.5) {
					mk := marks[len(marks)-1]
					marks = marks[:len(marks)-1]
					idx.Rollback(mk.i)
					walk.Rollback(mk.w)
				} else {
					marks = append(marks, struct{ i, w int }{idx.Checkpoint(), walk.Checkpoint()})
				}
			case 5: // ResetSpans rebuild (rarely: it wipes the interesting state)
				if !r.Bool(0.15) {
					continue
				}
				spans := make([]Span, r.Intn(6))
				spans2 := make([]Span, len(spans))
				for i := range spans {
					spans[i] = Span{
						End:   from + r.Int63n(400) - 20,
						Procs: r.Intn(total/2+2) + 1,
					}
					spans2[i] = spans[i]
				}
				idx.ResetSpans(total, from, spans)
				walk.ResetSpans(total, from, spans2)
				marks = marks[:0]
			}
			if len(idx.segs) != len(walk.segs) {
				t.Fatalf("seed %d step %d: %d segments, walk %d", seed, step, len(idx.segs), len(walk.segs))
			}
			for i := range idx.segs {
				if idx.segs[i] != walk.segs[i] {
					t.Fatalf("seed %d step %d: segment %d = %+v, walk %+v",
						seed, step, i, idx.segs[i], walk.segs[i])
				}
			}
			checkIndex(t, idx, "idx twin")
			if walk.idxOn {
				t.Fatalf("seed %d step %d: walk twin grew an index", seed, step)
			}
		}
	}
}

// deepProfile builds a skyline with roughly 2*n segments by reserving
// staggered non-overlapping windows (each contributes a reserved segment and
// a full-capacity gap), checkpointing halfway so the caller can exercise
// rollback across the indexed regime.
func deepProfile(total int, n int, r *stats.RNG) (*Profile, int) {
	p := NewProfile(total, 0)
	mark := -1
	for i := 0; i < n; i++ {
		if i == n/2 {
			mark = p.Checkpoint()
		}
		procs := r.Intn(total-1) + 1
		start := int64(i) * 100
		dur := r.Int63n(60) + 20
		_ = p.Reserve(start, start+dur, procs)
	}
	return p, mark
}

// TestProfileIndexDeepDifferential exercises the index in its natural
// regime: thousands of segments, the default threshold engaging on its own,
// probes compared against a never-indexed twin, then a rollback across
// half the skyline with the index still valid afterwards.
func TestProfileIndexDeepDifferential(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		r1 := stats.NewRNG(seed)
		r2 := stats.NewRNG(seed)
		const total, jobs = 512, 800
		idx, markIdx := deepProfile(total, jobs, r1)
		walk := NewProfile(total, 0)
		walk.SetIndexThreshold(-1)
		walkDeep, markWalk := func() (*Profile, int) {
			p := walk
			mark := -1
			for i := 0; i < jobs; i++ {
				if i == jobs/2 {
					mark = p.Checkpoint()
				}
				procs := r2.Intn(total-1) + 1
				start := int64(i) * 100
				dur := r2.Int63n(60) + 20
				_ = p.Reserve(start, start+dur, procs)
			}
			return p, mark
		}()
		if !idx.Indexed() {
			t.Fatalf("seed %d: %d segments did not engage the default index threshold", seed, idx.Segments())
		}
		if walkDeep.Indexed() {
			t.Fatal("walk twin indexed despite threshold -1")
		}
		checkIndex(t, idx, "deep build")
		probe := stats.NewRNG(seed + 100)
		horizon := int64(jobs) * 100
		for q := 0; q < 400; q++ {
			procs := probe.Intn(total+10) + 1
			dur := probe.Int63n(500) + 1
			after := probe.Int63n(horizon + 2000)
			if a, b := idx.FindStart(after, dur, procs), walkDeep.FindStart(after, dur, procs); a != b {
				t.Fatalf("seed %d probe %d: FindStart(%d,%d,%d) = %d, walk %d",
					seed, q, after, dur, procs, a, b)
			}
			lo := probe.Int63n(horizon)
			hi := lo + probe.Int63n(3000) - 100
			if a, b := idx.MinFree(lo, hi), walkDeep.MinFree(lo, hi); a != b {
				t.Fatalf("seed %d probe %d: MinFree(%d,%d) = %d, walk %d", seed, q, lo, hi, a, b)
			}
		}
		idx.Rollback(markIdx)
		walkDeep.Rollback(markWalk)
		checkIndex(t, idx, "after rollback")
		if len(idx.segs) != len(walkDeep.segs) {
			t.Fatalf("seed %d: %d segments after rollback, walk %d", seed, len(idx.segs), len(walkDeep.segs))
		}
		for i := range idx.segs {
			if idx.segs[i] != walkDeep.segs[i] {
				t.Fatalf("seed %d: segment %d after rollback = %+v, walk %+v",
					seed, i, idx.segs[i], walkDeep.segs[i])
			}
		}
	}
}

// TestProfileIndexHysteresis pins the engage/drop behaviour: the index
// builds when the skyline grows to the enable threshold and drops when a
// rollback shrinks it below the disable threshold, without ever changing an
// answer (the differential above covers the answers; this covers the state).
func TestProfileIndexHysteresis(t *testing.T) {
	p := NewProfile(64, 0)
	p.SetIndexThreshold(16)
	if p.Indexed() {
		t.Fatal("fresh profile indexed")
	}
	mark := p.Checkpoint()
	for i := 0; i < 12; i++ { // 2 segments each: well past enable=16
		start := int64(i) * 100
		_ = p.Reserve(start, start+50, i%8+1)
	}
	if !p.Indexed() {
		t.Fatalf("index did not engage at %d segments (threshold 16)", p.Segments())
	}
	checkIndex(t, p, "grown")
	p.Rollback(mark)
	if p.Segments() != 1 {
		t.Fatalf("rollback left %d segments", p.Segments())
	}
	if p.Indexed() {
		t.Fatal("index survived shrinking below the disable threshold")
	}
	// Reset with the override still in place re-applies it.
	for i := 0; i < 12; i++ {
		start := int64(i) * 100
		_ = p.Reserve(start, start+50, i%8+1)
	}
	if !p.Indexed() {
		t.Fatal("index did not re-engage after rollback")
	}
	p.Reset(64, 0)
	if p.Indexed() {
		t.Fatal("Reset kept the index on a 1-segment skyline")
	}
	p.SetIndexThreshold(-1)
	for i := 0; i < 400; i++ {
		start := int64(i) * 100
		_ = p.Reserve(start, start+50, i%8+1)
	}
	if p.Indexed() {
		t.Fatal("threshold -1 still built an index")
	}
}

// TestVecProfileIndexWidth1 pins the degenerate case the planner relies on:
// a VecProfile with the memory dimension off and the index engaged answers
// FindStart/MinFree exactly like a never-indexed scalar profile.
func TestVecProfileIndexWidth1(t *testing.T) {
	r := stats.NewRNG(11)
	v := NewVecProfile(128, 0, 0)
	v.SetIndexThreshold(4)
	p := NewProfile(128, 0)
	p.SetIndexThreshold(-1)
	for i := 0; i < 300; i++ {
		procs := r.Intn(100) + 1
		dur := r.Int63n(300) + 1
		after := r.Int63n(20000)
		sv := v.FindStart(after, dur, procs, 0)
		sp := p.FindStart(after, dur, procs)
		if sv != sp {
			t.Fatalf("step %d: vec FindStart %d, scalar walk %d", i, sv, sp)
		}
		_ = v.ReserveFound(sv, sv+dur, procs, 0)
		_ = p.ReserveFound(sp, sp+dur, procs)
		lo := r.Int63n(20000)
		hi := lo + r.Int63n(500)
		if a, b := v.MinFree(lo, hi), p.MinFree(lo, hi); a != b {
			t.Fatalf("step %d: vec MinFree %d, scalar walk %d", i, a, b)
		}
	}
	if !v.p.Indexed() {
		t.Fatalf("vec procs dimension never engaged its index (%d segments)", v.p.Segments())
	}
}

// TestProfileIndexedQueryAllocs pins the indexed query paths at zero
// allocations: FindStart and MinFree over a deep indexed skyline must not
// allocate, or the per-job scoring hot path regresses.
func TestProfileIndexedQueryAllocs(t *testing.T) {
	r := stats.NewRNG(3)
	p, _ := deepProfile(512, 800, r)
	if !p.Indexed() {
		t.Fatalf("deep profile not indexed (%d segments)", p.Segments())
	}
	i := 0
	allocs := testing.AllocsPerRun(200, func() {
		after := int64(i%70000) * 1
		_ = p.FindStart(after, int64(i%900)+30, i%500+1)
		_ = p.MinFree(after, after+int64(i%5000)+100)
		i++
	})
	if allocs != 0 {
		t.Fatalf("indexed FindStart/MinFree allocate %.1f allocs/op, want 0", allocs)
	}
}
