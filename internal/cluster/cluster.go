// Package cluster models the homogeneous HPC machine the paper schedules on
// (§3.2: "we assume the HPC environment is homogeneous"): a pool of
// interchangeable processors with allocation bookkeeping, plus a future
// availability profile used by reservation-based (conservative) backfilling.
package cluster

import "fmt"

// Cluster tracks processor allocations for running jobs.
type Cluster struct {
	total int
	free  int
	alloc map[int]int // job ID -> processors held
}

// New creates a cluster with n processors. It panics if n <= 0 (a machine
// must have capacity; the paper's traces use 128-256).
func New(n int) *Cluster {
	if n <= 0 {
		panic(fmt.Sprintf("cluster: non-positive machine size %d", n))
	}
	return &Cluster{total: n, free: n, alloc: make(map[int]int)}
}

// Total returns the machine size.
func (c *Cluster) Total() int { return c.total }

// Free returns the number of idle processors.
func (c *Cluster) Free() int { return c.free }

// Used returns the number of busy processors.
func (c *Cluster) Used() int { return c.total - c.free }

// Running returns the number of jobs currently holding processors.
func (c *Cluster) Running() int { return len(c.alloc) }

// Utilization returns the busy fraction in [0, 1].
func (c *Cluster) Utilization() float64 { return float64(c.Used()) / float64(c.total) }

// Fits reports whether a job needing procs processors can start now.
func (c *Cluster) Fits(procs int) bool { return procs > 0 && procs <= c.free }

// Alloc reserves procs processors for job id. It returns an error if the job
// already holds an allocation or the request cannot be satisfied.
func (c *Cluster) Alloc(id, procs int) error {
	if procs <= 0 {
		return fmt.Errorf("cluster: job %d requested %d procs", id, procs)
	}
	if _, ok := c.alloc[id]; ok {
		return fmt.Errorf("cluster: job %d already allocated", id)
	}
	if procs > c.free {
		return fmt.Errorf("cluster: job %d needs %d procs, only %d free", id, procs, c.free)
	}
	c.alloc[id] = procs
	c.free -= procs
	return nil
}

// Release frees the processors held by job id.
func (c *Cluster) Release(id int) error {
	procs, ok := c.alloc[id]
	if !ok {
		return fmt.Errorf("cluster: job %d has no allocation", id)
	}
	delete(c.alloc, id)
	c.free += procs
	return nil
}

// Holding returns the processors held by job id (0 if none).
func (c *Cluster) Holding(id int) int { return c.alloc[id] }

// Reset returns the cluster to the fully idle state.
func (c *Cluster) Reset() {
	c.free = c.total
	c.alloc = make(map[int]int)
}
