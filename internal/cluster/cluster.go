// Package cluster models the homogeneous HPC machine the paper schedules on
// (§3.2: "we assume the HPC environment is homogeneous"): a pool of
// interchangeable processors with allocation bookkeeping, plus a future
// availability profile used by reservation-based (conservative) backfilling.
// The machine optionally carries a second resource dimension (memory, in
// abstract units); a zero memory capacity disables that dimension and keeps
// every operation identical to the classic procs-only model.
package cluster

import "fmt"

// grant records one job's allocation across both resource dimensions.
type grant struct {
	procs int
	mem   int
}

// Cluster tracks processor (and optionally memory) allocations for running
// jobs.
type Cluster struct {
	total    int
	free     int
	memTotal int // 0 = memory dimension off
	memFree  int
	alloc    map[int]grant // job ID -> resources held
}

// New creates a cluster with n processors and no memory dimension. It panics
// if n <= 0 (a machine must have capacity; the paper's traces use 128-256).
func New(n int) *Cluster {
	return NewWithMem(n, 0)
}

// NewWithMem creates a cluster with n processors and mem memory units; mem 0
// disables the memory dimension. It panics if n <= 0 or mem < 0.
func NewWithMem(n, mem int) *Cluster {
	if n <= 0 {
		panic(fmt.Sprintf("cluster: non-positive machine size %d", n))
	}
	if mem < 0 {
		panic(fmt.Sprintf("cluster: negative memory capacity %d", mem))
	}
	return &Cluster{total: n, free: n, memTotal: mem, memFree: mem, alloc: make(map[int]grant)}
}

// Total returns the machine size.
func (c *Cluster) Total() int { return c.total }

// Free returns the number of idle processors.
func (c *Cluster) Free() int { return c.free }

// TotalMem returns the machine memory capacity (0 = dimension off).
func (c *Cluster) TotalMem() int { return c.memTotal }

// FreeMem returns the idle memory units (0 when the dimension is off).
func (c *Cluster) FreeMem() int { return c.memFree }

// Used returns the number of busy processors.
func (c *Cluster) Used() int { return c.total - c.free }

// Running returns the number of jobs currently holding processors.
func (c *Cluster) Running() int { return len(c.alloc) }

// Utilization returns the busy fraction in [0, 1].
func (c *Cluster) Utilization() float64 { return float64(c.Used()) / float64(c.total) }

// Fits reports whether a job needing procs processors can start now.
func (c *Cluster) Fits(procs int) bool { return procs > 0 && procs <= c.free }

// FitsRes reports whether a job needing procs processors and mem memory can
// start now. Memory is ignored when the dimension is off.
func (c *Cluster) FitsRes(procs, mem int) bool {
	if !c.Fits(procs) {
		return false
	}
	return c.memTotal == 0 || mem <= c.memFree
}

// Alloc reserves procs processors for job id. It returns an error if the job
// already holds an allocation or the request cannot be satisfied.
func (c *Cluster) Alloc(id, procs int) error {
	return c.AllocRes(id, procs, 0)
}

// AllocRes reserves procs processors and mem memory units for job id. Memory
// is ignored (not charged) when the dimension is off.
func (c *Cluster) AllocRes(id, procs, mem int) error {
	if procs <= 0 {
		return fmt.Errorf("cluster: job %d requested %d procs", id, procs)
	}
	if _, ok := c.alloc[id]; ok {
		return fmt.Errorf("cluster: job %d already allocated", id)
	}
	if procs > c.free {
		return fmt.Errorf("cluster: job %d needs %d procs, only %d free", id, procs, c.free)
	}
	if c.memTotal == 0 {
		mem = 0
	} else if mem > c.memFree {
		return fmt.Errorf("cluster: job %d needs %d mem, only %d free", id, mem, c.memFree)
	}
	c.alloc[id] = grant{procs: procs, mem: mem}
	c.free -= procs
	c.memFree -= mem
	return nil
}

// Release frees the resources held by job id.
func (c *Cluster) Release(id int) error {
	g, ok := c.alloc[id]
	if !ok {
		return fmt.Errorf("cluster: job %d has no allocation", id)
	}
	delete(c.alloc, id)
	c.free += g.procs
	c.memFree += g.mem
	return nil
}

// Holding returns the processors held by job id (0 if none).
func (c *Cluster) Holding(id int) int { return c.alloc[id].procs }

// HoldingMem returns the memory units held by job id (0 if none).
func (c *Cluster) HoldingMem(id int) int { return c.alloc[id].mem }

// Reset returns the cluster to the fully idle state.
func (c *Cluster) Reset() {
	c.free = c.total
	c.memFree = c.memTotal
	c.alloc = make(map[int]grant)
}
