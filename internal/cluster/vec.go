package cluster

// VecProfile generalises the skyline Profile to a small fixed resource
// vector: processors plus an optional memory dimension. It is a thin
// composition of per-dimension scalar profiles — the procs dimension IS a
// scalar Profile, so with the memory dimension off every operation is a
// direct delegation and the width-1 cost model (FindStart, Checkpoint,
// Rollback, ResetSpans) is exactly the PR 5 skyline's. The fuzz differential
// in profile_test pins that segment-for-segment.
//
// A feasible start time must satisfy both dimensions simultaneously.
// FindStart alternates the two scalar searches to a fixed point: each
// dimension's FindStart is monotone (never returns a time before its lower
// bound) and idempotent once feasible, so the alternation only moves the
// candidate forward and stops at the first time both dimensions accept —
// the earliest jointly feasible start.
type VecProfile struct {
	p      Profile // processors
	m      Profile // memory units; valid only when hasMem
	hasMem bool

	memSpans []Span // scratch for ResetSpans
}

// VecMark pairs the per-dimension checkpoint marks.
type VecMark struct {
	p, m int
}

// NewVecProfile creates a profile with total processors and memTotal memory
// units (0 = memory dimension off) all free from time `from` onwards.
func NewVecProfile(total, memTotal int, from int64) *VecProfile {
	v := &VecProfile{}
	v.Reset(total, memTotal, from)
	return v
}

// Reset reinitialises both dimensions in place, reusing their storage.
func (v *VecProfile) Reset(total, memTotal int, from int64) {
	v.p.Reset(total, from)
	v.hasMem = memTotal > 0
	if v.hasMem {
		v.m.Reset(memTotal, from)
	}
}

// HasMem reports whether the memory dimension is active.
func (v *VecProfile) HasMem() bool { return v.hasMem }

// Total returns the processor capacity.
func (v *VecProfile) Total() int { return v.p.total }

// TotalMem returns the memory capacity (0 when the dimension is off).
func (v *VecProfile) TotalMem() int {
	if !v.hasMem {
		return 0
	}
	return v.m.total
}

// ResetSpans reinitialises both dimensions with every span reserved over
// [from, span.End): span.Procs processors and span.Mem memory units. Spans
// without memory (Mem <= 0) simply do not appear in the memory skyline. The
// spans slice is reordered in place (by the procs-dimension build).
func (v *VecProfile) ResetSpans(total, memTotal int, from int64, spans []Span) {
	v.hasMem = memTotal > 0
	if v.hasMem {
		// Build the memory skyline first: the procs build reorders spans,
		// but the mem scratch is copied out before that happens anyway.
		v.memSpans = v.memSpans[:0]
		for _, s := range spans {
			if s.Mem > 0 {
				v.memSpans = append(v.memSpans, Span{End: s.End, Procs: s.Mem})
			}
		}
		v.m.ResetSpans(memTotal, from, v.memSpans)
	}
	v.p.ResetSpans(total, from, spans)
}

// SetIndexThreshold overrides the block-index engagement threshold on both
// dimensions (see Profile.SetIndexThreshold).
func (v *VecProfile) SetIndexThreshold(n int) {
	v.p.SetIndexThreshold(n)
	v.m.SetIndexThreshold(n)
}

// FreeAt returns the free processors at time t.
func (v *VecProfile) FreeAt(t int64) int { return v.p.FreeAt(t) }

// FreeMemAt returns the free memory units at time t (the full capacity,
// i.e. 0, when the dimension is off).
func (v *VecProfile) FreeMemAt(t int64) int {
	if !v.hasMem {
		return 0
	}
	return v.m.FreeAt(t)
}

// MinFree returns the minimum free processors over [start, end).
func (v *VecProfile) MinFree(start, end int64) int { return v.p.MinFree(start, end) }

// MinFreeMem returns the minimum free memory units over [start, end).
func (v *VecProfile) MinFreeMem(start, end int64) int {
	if !v.hasMem {
		return 0
	}
	return v.m.MinFree(start, end)
}

// Fits reports whether a (procs, mem) demand fits at every instant of
// [start, end). Memory is ignored when the dimension is off or undemanded.
func (v *VecProfile) Fits(start, end int64, procs, mem int) bool {
	if v.p.MinFree(start, end) < procs {
		return false
	}
	return !v.hasMem || mem <= 0 || v.m.MinFree(start, end) >= mem
}

// Reserve subtracts (procs, mem) over [start, end). Feasibility is checked
// on both dimensions before either is touched, so a failed reserve leaves
// the whole vector profile unchanged — there are no partial reservations.
func (v *VecProfile) Reserve(start, end int64, procs, mem int) error {
	if !v.hasMem || mem <= 0 {
		return v.p.Reserve(start, end, procs)
	}
	if procs <= 0 || end <= start {
		return v.p.Reserve(start, end, procs) // canonical validation errors
	}
	if v.p.MinFree(start, end) < procs {
		return v.p.Reserve(start, end, procs) // canonical capacity error
	}
	if err := v.m.Reserve(start, end, mem); err != nil {
		return err
	}
	return v.p.ReserveFound(start, end, procs) // pre-checked above
}

// ReserveFound is Reserve for windows the caller located via FindStart (or
// otherwise proved feasible on both dimensions): the capacity pre-scans are
// skipped. Malformed arguments fall back to the fully checked Reserve.
func (v *VecProfile) ReserveFound(start, end int64, procs, mem int) error {
	if !v.hasMem || mem <= 0 {
		return v.p.ReserveFound(start, end, procs)
	}
	if procs <= 0 || procs > v.p.total || mem > v.m.total || end <= start {
		return v.Reserve(start, end, procs, mem)
	}
	if err := v.p.ReserveFound(start, end, procs); err != nil {
		return err
	}
	return v.m.ReserveFound(start, end, mem)
}

// Checkpoint marks both dimensions and returns the paired mark.
func (v *VecProfile) Checkpoint() VecMark {
	mk := VecMark{p: v.p.Checkpoint()}
	if v.hasMem {
		mk.m = v.m.Checkpoint()
	}
	return mk
}

// Rollback undoes every reserve made since the matching Checkpoint on both
// dimensions. The mark is consumed.
func (v *VecProfile) Rollback(mk VecMark) {
	v.p.Rollback(mk.p)
	if v.hasMem {
		v.m.Rollback(mk.m)
	}
}

// FindStart returns the earliest time >= after at which procs processors and
// mem memory units are simultaneously free for `duration` seconds. With the
// memory dimension off (or no memory demand) this is exactly the scalar
// walk; otherwise the two scalar searches alternate to a fixed point (see
// the type comment for why that converges on the earliest joint start).
func (v *VecProfile) FindStart(after, duration int64, procs, mem int) int64 {
	cand := v.p.FindStart(after, duration, procs)
	if !v.hasMem || mem <= 0 {
		return cand
	}
	for {
		c2 := v.m.FindStart(cand, duration, mem)
		if c2 == cand {
			return cand
		}
		c3 := v.p.FindStart(c2, duration, procs)
		if c3 == c2 {
			return c2
		}
		cand = c3
	}
}
