package cluster

import (
	"testing"

	"repro/internal/stats"
)

// ---- width-1 differential: the vector profile with the memory dimension
// off must be the scalar skyline, segment for segment ----

// TestVecProfileWidth1Differential drives a memless VecProfile and a scalar
// Profile through identical random op sequences — FindStart-placed and
// arbitrary reserves, point/range probes, checkpoint/rollback — and requires
// identical answers and an identical procs-dimension segment list throughout.
// This is the acceptance argument that the PR's generalisation costs the
// classic scalar path nothing semantically.
func TestVecProfileWidth1Differential(t *testing.T) {
	for seed := uint64(1); seed <= 40; seed++ {
		r := stats.NewRNG(seed)
		total := []int{1, 4, 32, 100}[r.Intn(4)]
		from := r.Int63n(200) - 100
		vec := NewVecProfile(total, 0, from)
		ref := NewProfile(total, from)
		var vmk VecMark
		var rmk int
		open := false
		for step := 0; step < 150; step++ {
			switch r.Intn(6) {
			case 0: // reserve, FindStart-placed
				procs := r.Intn(total+4) + 1
				dur := r.Int63n(200) + 1
				after := from + r.Int63n(400) - 50
				sV := vec.FindStart(after, dur, procs, 0)
				sR := ref.FindStart(after, dur, procs)
				if sV != sR {
					t.Fatalf("seed %d step %d: FindStart = %d, scalar %d", seed, step, sV, sR)
				}
				errV := vec.Reserve(sV, sV+dur, procs, 0)
				errR := ref.Reserve(sR, sR+dur, procs)
				if (errV == nil) != (errR == nil) {
					t.Fatalf("seed %d step %d: reserve: vec %v, scalar %v", seed, step, errV, errR)
				}
			case 1: // arbitrary reserve (often rejected)
				procs := r.Intn(total+4) + 1
				start := from + r.Int63n(500) - 150
				end := start + r.Int63n(250) - 20
				errV := vec.ReserveFound(start, end, procs, 0)
				errR := ref.ReserveFound(start, end, procs)
				if (errV == nil) != (errR == nil) {
					t.Fatalf("seed %d step %d: ReserveFound [%d,%d)x%d: vec %v, scalar %v",
						seed, step, start, end, procs, errV, errR)
				}
			case 2: // probes
				at := from + r.Int63n(500) - 150
				if a, b := vec.FreeAt(at), ref.FreeAt(at); a != b {
					t.Fatalf("seed %d step %d: FreeAt(%d) = %d, scalar %d", seed, step, at, a, b)
				}
				lo := from + r.Int63n(500) - 150
				hi := lo + r.Int63n(300) - 30
				if a, b := vec.MinFree(lo, hi), ref.MinFree(lo, hi); a != b {
					t.Fatalf("seed %d step %d: MinFree = %d, scalar %d", seed, step, a, b)
				}
				if vec.FreeMemAt(at) != 0 || vec.MinFreeMem(lo, hi) != 0 || vec.TotalMem() != 0 {
					t.Fatalf("seed %d step %d: memless profile reports memory", seed, step)
				}
			case 3: // FindStart probe with a memory demand: ignored when off
				procs := r.Intn(total+4) + 1
				dur := r.Int63n(200) - 10
				after := from + r.Int63n(500) - 150
				mem := r.Intn(100)
				if a, b := vec.FindStart(after, dur, procs, mem), ref.FindStart(after, dur, procs); a != b {
					t.Fatalf("seed %d step %d: FindStart = %d, scalar %d", seed, step, a, b)
				}
			case 4:
				if !open {
					vmk, rmk = vec.Checkpoint(), ref.Checkpoint()
					open = true
				}
			case 5:
				if open {
					vec.Rollback(vmk)
					ref.Rollback(rmk)
					open = false
				}
			}
			if len(vec.p.segs) != len(ref.segs) {
				t.Fatalf("seed %d step %d: %d segments, scalar %d", seed, step, len(vec.p.segs), len(ref.segs))
			}
			for i := range ref.segs {
				if vec.p.segs[i] != ref.segs[i] {
					t.Fatalf("seed %d step %d: segment %d = %+v, scalar %+v",
						seed, step, i, vec.p.segs[i], ref.segs[i])
				}
			}
		}
	}
}

// ---- width-2 differential against a per-timestep counter pair ----

// naiveVec is the simplest two-dimension reference: one counter array per
// dimension, reservations applied to both or neither.
type naiveVec struct {
	p, m *naiveProfile
}

func newNaiveVec(total, memTotal int, from int64, horizon int) *naiveVec {
	return &naiveVec{
		p: newNaiveProfile(total, from, horizon),
		m: newNaiveProfile(memTotal, from, horizon),
	}
}

func (n *naiveVec) fits(start, end int64, procs, mem int) bool {
	for t := start; t < end; t++ {
		if n.p.freeAt(t) < procs || n.m.freeAt(t) < mem {
			return false
		}
	}
	return true
}

func (n *naiveVec) reserve(start, end int64, procs, mem int) bool {
	if !n.fits(start, end, procs, mem) {
		return false
	}
	n.p.reserve(start, end, procs)
	n.m.reserve(start, end, mem)
	return true
}

// findStart scans every instant for the earliest jointly feasible window.
func (n *naiveVec) findStart(after, dur int64, procs, mem int, horizon int64) int64 {
	for s := after; s+dur <= horizon; s++ {
		if n.fits(s, s+dur, procs, mem) {
			return s
		}
	}
	return -1
}

// TestVecProfileNaiveDifferential checks the two-dimension profile against
// the counter-pair reference: joint FindStart answers, reserve feasibility
// and the full free functions of both dimensions after every accepted
// sequence.
func TestVecProfileNaiveDifferential(t *testing.T) {
	const horizon = 1500
	for seed := uint64(1); seed <= 25; seed++ {
		r := stats.NewRNG(seed)
		total := []int{2, 16, 64}[r.Intn(3)]
		memTotal := []int{8, 100, 1000}[r.Intn(3)]
		v := NewVecProfile(total, memTotal, 0)
		n := newNaiveVec(total, memTotal, 0, horizon)
		for i := 0; i < 50; i++ {
			procs := r.Intn(total) + 1
			mem := r.Intn(memTotal + 1) // 0 = procs-only job
			dur := r.Int63n(120) + 1
			after := r.Int63n(horizon / 2)
			start := v.FindStart(after, dur, procs, mem)
			if start+dur > horizon/2+horizon/4 {
				continue // stay well inside the naive model's bounded horizon
			}
			if ns := n.findStart(after, dur, procs, mem, horizon); ns != start {
				t.Fatalf("seed %d op %d: FindStart(%d,%d,%d,%d) = %d, naive %d",
					seed, i, after, dur, procs, mem, start, ns)
			}
			err := v.Reserve(start, start+dur, procs, mem)
			ok := n.reserve(start, start+dur, procs, mem)
			if (err == nil) != ok {
				t.Fatalf("seed %d op %d: reserve [%d,%d)x(%d,%d): skyline %v, naive %v",
					seed, i, start, start+dur, procs, mem, err, ok)
			}
		}
		for tm := int64(0); tm < horizon; tm++ {
			if a, b := v.FreeAt(tm), n.p.freeAt(tm); a != b {
				t.Fatalf("seed %d: FreeAt(%d) = %d, naive %d", seed, tm, a, b)
			}
			if a, b := v.FreeMemAt(tm), n.m.freeAt(tm); a != b {
				t.Fatalf("seed %d: FreeMemAt(%d) = %d, naive %d", seed, tm, a, b)
			}
		}
	}
}

// ---- targeted unit tests ----

// TestVecProfileNoPartialReserve pins the all-or-nothing contract: a reserve
// that fails on the memory dimension must leave the processor skyline
// untouched (and vice versa), even through the ReserveFound fallbacks.
func TestVecProfileNoPartialReserve(t *testing.T) {
	v := NewVecProfile(10, 100, 0)
	if err := v.Reserve(0, 10, 4, 90); err != nil {
		t.Fatalf("setup reserve: %v", err)
	}
	// procs fit (6 free), mem does not (10 free < 20).
	if err := v.Reserve(0, 10, 6, 20); err == nil {
		t.Fatal("expected memory-capacity error")
	}
	if got := v.FreeAt(5); got != 6 {
		t.Fatalf("procs dimension mutated by failed reserve: free=%d, want 6", got)
	}
	if got := v.FreeMemAt(5); got != 10 {
		t.Fatalf("mem dimension mutated by failed reserve: free=%d, want 10", got)
	}
	// mem fits, procs do not.
	if err := v.Reserve(0, 10, 7, 5); err == nil {
		t.Fatal("expected procs-capacity error")
	}
	if got := v.FreeMemAt(5); got != 10 {
		t.Fatalf("mem dimension mutated by failed procs reserve: free=%d, want 10", got)
	}
}

// TestVecProfileFindStartJoint pins the alternating fixed point on a case
// where neither dimension alone determines the answer: the earliest procs
// window and the earliest mem window are disjoint, and the joint start is
// later than both.
func TestVecProfileFindStartJoint(t *testing.T) {
	v := NewVecProfile(10, 100, 0)
	// Procs busy over [0,50): only 2 free. Mem busy over [50,100): 10 free.
	if err := v.Reserve(0, 50, 8, 1); err != nil {
		t.Fatalf("reserve: %v", err)
	}
	if err := v.Reserve(50, 100, 1, 90); err != nil {
		t.Fatalf("reserve: %v", err)
	}
	// 4 procs + 20 mem for 10s: procs admit t>=50, mem then pushes to 100.
	if got := v.FindStart(0, 10, 4, 20); got != 100 {
		t.Fatalf("FindStart = %d, want 100", got)
	}
	// A job that threads the needle: 2 procs + 20 mem fits immediately.
	if got := v.FindStart(0, 10, 2, 20); got != 0 {
		t.Fatalf("FindStart = %d, want 0", got)
	}
	// Memory-only pressure: 4 procs + 95 mem must wait for the mem release.
	if got := v.FindStart(0, 10, 4, 95); got != 100 {
		t.Fatalf("FindStart = %d, want 100", got)
	}
}

// TestVecProfileRollbackBothDims verifies the paired checkpoint restores the
// exact segment lists of both dimensions.
func TestVecProfileRollbackBothDims(t *testing.T) {
	r := stats.NewRNG(11)
	v := NewVecProfile(16, 200, 0)
	if err := v.Reserve(10, 40, 5, 50); err != nil {
		t.Fatalf("setup: %v", err)
	}
	beforeP := append([]segment(nil), v.p.segs...)
	beforeM := append([]segment(nil), v.m.segs...)
	mk := v.Checkpoint()
	for i := 0; i < 30; i++ {
		procs := r.Intn(16) + 1
		mem := r.Intn(120)
		dur := r.Int63n(60) + 1
		s := v.FindStart(r.Int63n(100), dur, procs, mem)
		_ = v.ReserveFound(s, s+dur, procs, mem)
	}
	v.Rollback(mk)
	if len(v.p.segs) != len(beforeP) || len(v.m.segs) != len(beforeM) {
		t.Fatalf("rollback changed segment counts: procs %d->%d, mem %d->%d",
			len(beforeP), len(v.p.segs), len(beforeM), len(v.m.segs))
	}
	for i := range beforeP {
		if v.p.segs[i] != beforeP[i] {
			t.Fatalf("procs segment %d = %+v, want %+v", i, v.p.segs[i], beforeP[i])
		}
	}
	for i := range beforeM {
		if v.m.segs[i] != beforeM[i] {
			t.Fatalf("mem segment %d = %+v, want %+v", i, v.m.segs[i], beforeM[i])
		}
	}
}

// TestVecProfileResetSpans checks the bulk build: memless spans appear only
// in the procs skyline, and both free functions reflect the span set.
func TestVecProfileResetSpans(t *testing.T) {
	var v VecProfile
	spans := []Span{
		{End: 100, Procs: 4, Mem: 30},
		{End: 50, Procs: 2},           // procs-only job
		{End: 200, Procs: 1, Mem: 60}, // mem-heavy job
	}
	v.ResetSpans(8, 100, 0, spans)
	if got := v.FreeAt(0); got != 1 {
		t.Fatalf("FreeAt(0) = %d, want 1", got)
	}
	if got := v.FreeMemAt(0); got != 10 {
		t.Fatalf("FreeMemAt(0) = %d, want 10", got)
	}
	if got := v.FreeAt(60); got != 3 {
		t.Fatalf("FreeAt(60) = %d, want 3", got)
	}
	if got := v.FreeAt(150); got != 7 {
		t.Fatalf("FreeAt(150) = %d, want 7", got)
	}
	if got := v.FreeMemAt(150); got != 40 {
		t.Fatalf("FreeMemAt(150) = %d, want 40", got)
	}
	if got := v.FreeMemAt(250); got != 100 {
		t.Fatalf("FreeMemAt(250) = %d, want 100", got)
	}
	// Rebuild without memory: the dimension switches off cleanly. (A fresh
	// span list — ResetSpans reordered the first one in place.)
	v.ResetSpans(8, 0, 0, []Span{{End: 100, Procs: 4, Mem: 30}})
	if v.HasMem() || v.TotalMem() != 0 || v.FreeMemAt(0) != 0 {
		t.Fatal("memless rebuild left the memory dimension on")
	}
	if got := v.FreeAt(0); got != 4 {
		t.Fatalf("FreeAt(0) after rebuild = %d, want 4", got)
	}
}
