package cluster

import (
	"testing"

	"repro/internal/stats"
)

// ---- reference implementations ----

// oldProfile is the pre-rewrite linear-scan profile, kept verbatim as the
// golden model: the indexed skyline must answer every query identically.
type oldProfile struct {
	total int
	segs  []segment
}

func newOldProfile(total int, from int64) *oldProfile {
	return &oldProfile{total: total, segs: []segment{{Time: from, Free: total}}}
}

func (p *oldProfile) FreeAt(t int64) int {
	free := p.segs[0].Free
	for _, s := range p.segs {
		if s.Time > t {
			break
		}
		free = s.Free
	}
	return free
}

func (p *oldProfile) MinFree(start, end int64) int {
	if end <= start {
		return p.FreeAt(start)
	}
	min := p.total
	for i, s := range p.segs {
		segStart := s.Time
		var segEnd int64
		if i+1 < len(p.segs) {
			segEnd = p.segs[i+1].Time
		} else {
			segEnd = end
			if segEnd < segStart {
				segEnd = segStart
			}
		}
		if segEnd <= start || segStart >= end {
			if segStart >= end {
				break
			}
			continue
		}
		if s.Free < min {
			min = s.Free
		}
	}
	return min
}

func (p *oldProfile) Reserve(start, end int64, procs int) error {
	if procs <= 0 || end <= start {
		return errSkip
	}
	if p.MinFree(start, end) < procs {
		return errSkip
	}
	p.split(start)
	p.split(end)
	for i := range p.segs {
		if p.segs[i].Time >= start && p.segs[i].Time < end {
			p.segs[i].Free -= procs
		}
	}
	p.coalesce()
	return nil
}

func (p *oldProfile) FindStart(after, duration int64, procs int) int64 {
	if procs > p.total {
		procs = p.total
	}
	if duration <= 0 {
		duration = 1
	}
	if p.MinFree(after, after+duration) >= procs {
		return after
	}
	for _, s := range p.segs {
		if s.Time > after && p.MinFree(s.Time, s.Time+duration) >= procs {
			return s.Time
		}
	}
	last := p.segs[len(p.segs)-1].Time
	if last < after {
		last = after
	}
	return last
}

func (p *oldProfile) split(t int64) {
	if t <= p.segs[0].Time {
		return
	}
	for i, s := range p.segs {
		if s.Time == t {
			return
		}
		if s.Time > t {
			prev := p.segs[i-1].Free
			p.segs = append(p.segs, segment{})
			copy(p.segs[i+1:], p.segs[i:])
			p.segs[i] = segment{Time: t, Free: prev}
			return
		}
	}
	p.segs = append(p.segs, segment{Time: t, Free: p.segs[len(p.segs)-1].Free})
}

func (p *oldProfile) coalesce() {
	out := p.segs[:1]
	for _, s := range p.segs[1:] {
		if s.Free == out[len(out)-1].Free {
			continue
		}
		out = append(out, s)
	}
	p.segs = out
}

type skipError struct{}

func (skipError) Error() string { return "reference reserve rejected" }

var errSkip = skipError{}

// naiveProfile models the free function as one counter per timestep over a
// bounded horizon — the simplest possible reference for range updates.
type naiveProfile struct {
	total int
	from  int64
	free  []int // free[t - from] for t in [from, from+len)
}

func newNaiveProfile(total int, from int64, horizon int) *naiveProfile {
	n := &naiveProfile{total: total, from: from, free: make([]int, horizon)}
	for i := range n.free {
		n.free[i] = total
	}
	return n
}

func (n *naiveProfile) reserve(start, end int64, procs int) bool {
	lo, hi := start-n.from, end-n.from
	if lo < 0 {
		lo = 0
	}
	for t := lo; t < hi && t < int64(len(n.free)); t++ {
		if n.free[t] < procs {
			return false
		}
	}
	for t := lo; t < hi && t < int64(len(n.free)); t++ {
		n.free[t] -= procs
	}
	return true
}

func (n *naiveProfile) freeAt(t int64) int {
	i := t - n.from
	if i < 0 {
		i = 0
	}
	if i >= int64(len(n.free)) {
		i = int64(len(n.free)) - 1
	}
	return n.free[i]
}

// ---- direct edge-case unit tests ----

func TestProfileFreeAtBeforeStart(t *testing.T) {
	p := NewProfile(10, 100)
	if got := p.FreeAt(0); got != 10 {
		t.Fatalf("FreeAt before profile start = %d, want 10", got)
	}
	_ = p.Reserve(100, 200, 4)
	if got := p.FreeAt(0); got != 6 {
		t.Fatalf("FreeAt before start must report the first segment (6), got %d", got)
	}
	if got := p.FreeAt(250); got != 10 {
		t.Fatalf("FreeAt on the open tail = %d, want 10", got)
	}
}

func TestProfileMinFreeBeforeStart(t *testing.T) {
	p := NewProfile(8, 100)
	_ = p.Reserve(100, 200, 3)
	if got := p.MinFree(0, 50); got != 8 {
		t.Fatalf("MinFree on a window entirely before the profile = %d, want total 8", got)
	}
	if got := p.MinFree(0, 150); got != 5 {
		t.Fatalf("MinFree straddling the profile start = %d, want 5", got)
	}
	if got := p.MinFree(50, 50); got != 5 {
		t.Fatalf("empty window MinFree must report FreeAt(start)=5, got %d", got)
	}
}

func TestProfileMinFreeBoundaryEqualWindows(t *testing.T) {
	p := NewProfile(8, 0)
	_ = p.Reserve(10, 20, 3)
	// Window ending exactly at a reservation start must not see it.
	if got := p.MinFree(0, 10); got != 8 {
		t.Fatalf("MinFree(0,10) = %d, want 8 (end-exclusive)", got)
	}
	// Window starting exactly at a reservation end must not see it.
	if got := p.MinFree(20, 30); got != 8 {
		t.Fatalf("MinFree(20,30) = %d, want 8", got)
	}
	// Window exactly coinciding with the reservation.
	if got := p.MinFree(10, 20); got != 5 {
		t.Fatalf("MinFree(10,20) = %d, want 5", got)
	}
}

func TestProfileMinFreeOpenTail(t *testing.T) {
	p := NewProfile(8, 0)
	_ = p.Reserve(0, 100, 2)
	if got := p.MinFree(50, 1<<40); got != 6 {
		t.Fatalf("MinFree over reservation + open tail = %d, want 6", got)
	}
	if got := p.MinFree(100, 1<<40); got != 8 {
		t.Fatalf("MinFree on the open tail alone = %d, want 8", got)
	}
}

func TestProfileFindStartProcsAboveTotal(t *testing.T) {
	p := NewProfile(4, 0)
	_ = p.Reserve(0, 50, 4)
	// procs > total clamps to the machine size: the earliest instant the
	// whole machine is free.
	if got := p.FindStart(0, 10, 9); got != 50 {
		t.Fatalf("FindStart with procs > total = %d, want 50", got)
	}
}

func TestProfileFindStartBeforeStart(t *testing.T) {
	p := NewProfile(4, 100)
	if got := p.FindStart(0, 10, 4); got != 0 {
		t.Fatalf("FindStart before profile start on an idle machine = %d, want 0", got)
	}
	_ = p.Reserve(100, 200, 4)
	// A window from t=95 overlaps the full reservation at 100; first fit is 200.
	if got := p.FindStart(95, 10, 4); got != 200 {
		t.Fatalf("FindStart(95,10,4) = %d, want 200", got)
	}
	// A 5-second window starting at 95 clears before the reservation.
	if got := p.FindStart(95, 5, 4); got != 95 {
		t.Fatalf("FindStart(95,5,4) = %d, want 95", got)
	}
}

func TestProfileFindStartZeroDuration(t *testing.T) {
	p := NewProfile(4, 0)
	_ = p.Reserve(0, 10, 4)
	// duration <= 0 is clamped to 1.
	if got := p.FindStart(0, 0, 1); got != 10 {
		t.Fatalf("FindStart with zero duration = %d, want 10", got)
	}
}

func TestProfileReserveExtendsTail(t *testing.T) {
	p := NewProfile(4, 0)
	if err := p.Reserve(1000, 2000, 2); err != nil {
		t.Fatal(err)
	}
	if p.FreeAt(500) != 4 || p.FreeAt(1500) != 2 || p.FreeAt(2500) != 4 {
		t.Fatalf("tail-extending reservation wrong: %d %d %d",
			p.FreeAt(500), p.FreeAt(1500), p.FreeAt(2500))
	}
}

// ---- checkpoint / rollback ----

func TestProfileRollbackRestoresExactly(t *testing.T) {
	p := NewProfile(16, 0)
	_ = p.Reserve(0, 100, 5)
	_ = p.Reserve(50, 150, 3)
	before := append([]segment(nil), p.segs...)

	mark := p.Checkpoint()
	if err := p.Reserve(10, 60, 4); err != nil {
		t.Fatal(err)
	}
	if err := p.Reserve(120, 300, 8); err != nil {
		t.Fatal(err)
	}
	_ = p.Reserve(0, 1000, 100) // rejected: must not be journaled
	p.Rollback(mark)

	if len(p.segs) != len(before) {
		t.Fatalf("segment count after rollback: %d, want %d", len(p.segs), len(before))
	}
	for i := range before {
		if p.segs[i] != before[i] {
			t.Fatalf("segment %d after rollback: %+v, want %+v", i, p.segs[i], before[i])
		}
	}
}

func TestProfileNestedCheckpoints(t *testing.T) {
	p := NewProfile(8, 0)
	outer := p.Checkpoint()
	_ = p.Reserve(0, 10, 2)
	afterOuter := append([]segment(nil), p.segs...)

	inner := p.Checkpoint()
	_ = p.Reserve(5, 20, 3)
	_ = p.Reserve(0, 4, 1)
	p.Rollback(inner)

	if len(p.segs) != len(afterOuter) {
		t.Fatalf("inner rollback: %d segments, want %d", len(p.segs), len(afterOuter))
	}
	for i := range afterOuter {
		if p.segs[i] != afterOuter[i] {
			t.Fatalf("inner rollback segment %d: %+v, want %+v", i, p.segs[i], afterOuter[i])
		}
	}
	p.Rollback(outer)
	if len(p.segs) != 1 || p.segs[0] != (segment{Time: 0, Free: 8}) {
		t.Fatalf("outer rollback did not restore the fresh profile: %+v", p.segs)
	}
}

func TestProfileRollbackFuzz(t *testing.T) {
	for seed := uint64(1); seed <= 20; seed++ {
		r := stats.NewRNG(seed)
		p := NewProfile(32, 0)
		// A random base load.
		for i := 0; i < 10; i++ {
			procs := r.Intn(8) + 1
			dur := r.Int63n(300) + 1
			start := p.FindStart(r.Int63n(500), dur, procs)
			_ = p.Reserve(start, start+dur, procs)
		}
		before := append([]segment(nil), p.segs...)
		mark := p.Checkpoint()
		// A random trial: FindStart-placed and arbitrary (possibly rejected)
		// reservations interleaved.
		for i := 0; i < 15; i++ {
			procs := r.Intn(40) + 1 // occasionally > total: always rejected
			dur := r.Int63n(400) + 1
			if r.Bool(0.5) {
				start := p.FindStart(r.Int63n(800), dur, procs)
				_ = p.Reserve(start, start+dur, procs)
			} else {
				start := r.Int63n(1200) - 100
				_ = p.Reserve(start, start+dur, procs)
			}
		}
		p.Rollback(mark)
		if len(p.segs) != len(before) {
			t.Fatalf("seed %d: %d segments after rollback, want %d", seed, len(p.segs), len(before))
		}
		for i := range before {
			if p.segs[i] != before[i] {
				t.Fatalf("seed %d: segment %d = %+v, want %+v", seed, i, p.segs[i], before[i])
			}
		}
	}
}

// ---- differential fuzz: new vs old vs naive ----

// TestProfileDifferentialOldVsNew drives the indexed skyline and the verbatim
// pre-rewrite implementation through identical random op sequences — reserves
// (feasible and infeasible, in- and out-of-range), FreeAt, MinFree and
// FindStart probes — and requires identical answers and identical segment
// lists throughout.
func TestProfileDifferentialOldVsNew(t *testing.T) {
	for seed := uint64(1); seed <= 40; seed++ {
		r := stats.NewRNG(seed)
		total := []int{1, 4, 32, 100}[r.Intn(4)]
		from := r.Int63n(200) - 100
		neu := NewProfile(total, from)
		old := newOldProfile(total, from)
		for step := 0; step < 120; step++ {
			switch r.Intn(4) {
			case 0: // reserve, FindStart-placed
				procs := r.Intn(total+4) + 1
				dur := r.Int63n(200) + 1
				after := from + r.Int63n(400) - 50
				sNew := neu.FindStart(after, dur, procs)
				sOld := old.FindStart(after, dur, procs)
				if sNew != sOld {
					t.Fatalf("seed %d step %d: FindStart(%d,%d,%d) = %d, old %d",
						seed, step, after, dur, procs, sNew, sOld)
				}
				errNew := neu.Reserve(sNew, sNew+dur, procs)
				errOld := old.Reserve(sOld, sOld+dur, procs)
				if (errNew == nil) != (errOld == nil) {
					t.Fatalf("seed %d step %d: reserve disagreement: new %v, old %v",
						seed, step, errNew, errOld)
				}
			case 1: // arbitrary reserve (often rejected)
				procs := r.Intn(total+4) + 1
				start := from + r.Int63n(500) - 150
				end := start + r.Int63n(250) - 20
				errNew := neu.Reserve(start, end, procs)
				errOld := old.Reserve(start, end, procs)
				if (errNew == nil) != (errOld == nil) {
					t.Fatalf("seed %d step %d: reserve [%d,%d)x%d: new %v, old %v",
						seed, step, start, end, procs, errNew, errOld)
				}
			case 2: // point and range probes
				at := from + r.Int63n(500) - 150
				if a, b := neu.FreeAt(at), old.FreeAt(at); a != b {
					t.Fatalf("seed %d step %d: FreeAt(%d) = %d, old %d", seed, step, at, a, b)
				}
				lo := from + r.Int63n(500) - 150
				hi := lo + r.Int63n(300) - 30
				if a, b := neu.MinFree(lo, hi), old.MinFree(lo, hi); a != b {
					t.Fatalf("seed %d step %d: MinFree(%d,%d) = %d, old %d", seed, step, lo, hi, a, b)
				}
			case 3: // FindStart probe, including zero/negative durations
				procs := r.Intn(total+4) + 1
				dur := r.Int63n(200) - 10
				after := from + r.Int63n(500) - 150
				if a, b := neu.FindStart(after, dur, procs), old.FindStart(after, dur, procs); a != b {
					t.Fatalf("seed %d step %d: FindStart(%d,%d,%d) = %d, old %d",
						seed, step, after, dur, procs, a, b)
				}
			}
			if len(neu.segs) != len(old.segs) {
				t.Fatalf("seed %d step %d: %d segments, old %d", seed, step, len(neu.segs), len(old.segs))
			}
			for i := range neu.segs {
				if neu.segs[i] != old.segs[i] {
					t.Fatalf("seed %d step %d: segment %d = %+v, old %+v",
						seed, step, i, neu.segs[i], old.segs[i])
				}
			}
		}
	}
}

// TestProfileDifferentialNaive checks the skyline against a per-timestep
// counter array: after any accepted reservation sequence the free function
// must agree at every instant of the horizon.
func TestProfileDifferentialNaive(t *testing.T) {
	const horizon = 2000
	for seed := uint64(1); seed <= 25; seed++ {
		r := stats.NewRNG(seed)
		total := []int{2, 16, 64}[r.Intn(3)]
		p := NewProfile(total, 0)
		n := newNaiveProfile(total, 0, horizon)
		for i := 0; i < 60; i++ {
			procs := r.Intn(total) + 1
			dur := r.Int63n(150) + 1
			start := p.FindStart(r.Int63n(horizon/2), dur, procs)
			if start+dur > horizon {
				continue // keep the naive model's bounded horizon authoritative
			}
			err := p.Reserve(start, start+dur, procs)
			ok := n.reserve(start, start+dur, procs)
			if (err == nil) != ok {
				t.Fatalf("seed %d: reserve [%d,%d)x%d: skyline %v, naive %v",
					seed, start, start+dur, procs, err, ok)
			}
		}
		for tm := int64(0); tm < horizon; tm++ {
			if a, b := p.FreeAt(tm), n.freeAt(tm); a != b {
				t.Fatalf("seed %d: FreeAt(%d) = %d, naive %d", seed, tm, a, b)
			}
		}
	}
}

// TestProfileCanonicalForm pins the representation invariant the O(touched)
// rollback relies on: no two adjacent segments ever share a free count.
func TestProfileCanonicalForm(t *testing.T) {
	r := stats.NewRNG(7)
	p := NewProfile(24, 0)
	check := func() {
		for i := 1; i < len(p.segs); i++ {
			if p.segs[i].Free == p.segs[i-1].Free {
				t.Fatalf("adjacent segments %d,%d share free=%d: %+v",
					i-1, i, p.segs[i].Free, p.segs)
			}
			if p.segs[i].Time <= p.segs[i-1].Time {
				t.Fatalf("segments out of order at %d: %+v", i, p.segs)
			}
		}
	}
	for i := 0; i < 200; i++ {
		procs := r.Intn(24) + 1
		dur := r.Int63n(100) + 1
		start := p.FindStart(r.Int63n(1000), dur, procs)
		_ = p.Reserve(start, start+dur, procs)
		check()
		if r.Bool(0.2) {
			mark := p.Checkpoint()
			s := p.FindStart(r.Int63n(1000), 50, 3)
			_ = p.Reserve(s, s+50, 3)
			check()
			p.Rollback(mark)
			check()
		}
	}
}
