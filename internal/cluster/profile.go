package cluster

import (
	"fmt"
	"slices"
)

// Profile is a piecewise-constant availability profile: the number of free
// processors as a function of future time. Conservative backfilling keeps one
// reservation per queued job in such a profile; EASY derives its single
// shadow-time reservation from it as well.
//
// The representation is an indexed skyline: segments sorted by start time,
// always coalesced (no two adjacent segments share a Free count), looked up
// by binary search. All queries run in O(log S + touched segments) instead of
// scanning from the first segment, and FindStart is a single monotonic
// candidate walk instead of a per-boundary MinFree re-scan (DESIGN.md §9).
//
// Trial placements are supported transactionally: Checkpoint marks the
// current state and journals every subsequent Reserve; Rollback undoes them
// in O(touched segments) by applying the inverse range updates in reverse
// order. Because the coalesced segment list is the unique canonical
// representation of the free function, a rollback restores the segment slice
// byte-identically — profile-based backfillers exploit this to trial-place a
// whole queue per candidate without ever rebuilding the profile from the
// running set.
type Profile struct {
	total int
	segs  []segment // sorted by Time; segs[i] spans [segs[i].Time, segs[i+1].Time)

	// journal records reserves made while a checkpoint is active (marks > 0)
	// so Rollback can undo them; Reset and Rollback shrink it in place.
	journal []resv
	marks   int

	// Block min/max acceleration index over segs (index.go); engaged only
	// past a segment-count threshold so shallow profiles pay nothing.
	blocks       []blockIdx
	idxOn        bool
	idxThreshold int // SetIndexThreshold override; 0 = defaults
}

type segment struct {
	Time int64
	Free int
}

// resv is one journaled reservation (the arguments of a successful Reserve).
type resv struct {
	start, end int64
	procs      int
}

// NewProfile creates a profile with all processors free from time `from`
// onwards.
func NewProfile(total int, from int64) *Profile {
	if total <= 0 {
		panic(fmt.Sprintf("cluster: non-positive profile capacity %d", total))
	}
	return &Profile{total: total, segs: []segment{{Time: from, Free: total}}}
}

// Total returns the profile capacity.
func (p *Profile) Total() int { return p.total }

// Segments returns the current skyline depth (number of coalesced segments).
// Deep-backlog benchmarks and the index tests use it to confirm they are in
// the regime they mean to exercise.
func (p *Profile) Segments() int { return len(p.segs) }

// Indexed reports whether the block acceleration index is currently engaged.
func (p *Profile) Indexed() bool { return p.idxOn }

// Reset reinitialises the profile in place — all processors free from time
// `from` onwards — reusing the segment and journal storage. Reservation-based
// backfillers rebuild a profile on every round; resetting one instead of
// allocating keeps that loop garbage-free. Any open checkpoints are
// discarded.
func (p *Profile) Reset(total int, from int64) {
	if total <= 0 {
		panic(fmt.Sprintf("cluster: non-positive profile capacity %d", total))
	}
	p.total = total
	p.segs = append(p.segs[:0], segment{Time: from, Free: total})
	p.journal = p.journal[:0]
	p.marks = 0
	p.reindex()
}

// Span is one bulk reservation for ResetSpans: Procs processors held from
// the profile start until End. Mem is the memory dimension's demand, used
// only by VecProfile.ResetSpans; the scalar profile ignores it.
type Span struct {
	End   int64
	Procs int
	Mem   int
}

// ResetSpans reinitialises the profile to capacity total from `from` with
// every span reserved over [from, span.End) — exactly equivalent to Reset
// followed by one Reserve per span (in any order; the free function is
// order-independent and the coalesced representation canonical), but built
// in a single sorted sweep: O(R log R) instead of R incremental reserves of
// O(log S + touched) each. The spans slice is reordered in place.
//
// Profile-based backfillers rebuild their base profile from the running set
// every round; this is that round prologue's fast path. Spans that could not
// all be reserved (over capacity, non-positive procs, End <= from) fall back
// to the literal reserve-per-span sequence so rejection behaviour matches
// the incremental path exactly.
func (p *Profile) ResetSpans(total int, from int64, spans []Span) {
	p.Reset(total, from)
	if len(spans) == 0 {
		return
	}
	sum := 0
	for _, s := range spans {
		if s.Procs <= 0 || s.End <= from {
			sum = total + 1 // force the fallback
			break
		}
		sum += s.Procs
	}
	if sum > total {
		for _, s := range spans {
			_ = p.Reserve(from, s.End, s.Procs)
		}
		return
	}
	sortSpans(spans)
	free := total - sum
	p.segs = append(p.segs[:0], segment{Time: from, Free: free})
	for i := 0; i < len(spans); {
		end := spans[i].End
		for ; i < len(spans) && spans[i].End == end; i++ {
			free += spans[i].Procs
		}
		// free strictly increases (procs > 0), so the skyline stays canonical.
		p.segs = append(p.segs, segment{Time: end, Free: free})
	}
	p.reindex()
}

// sortSpans orders spans by End. Running sets are small (tens of jobs), so a
// direct insertion sort beats the generic comparator for the common case;
// larger sets fall through to the library sort. Equal ends may land in any
// order — ResetSpans only accumulates them, so the profile is unaffected.
func sortSpans(spans []Span) {
	if len(spans) > 64 {
		slices.SortFunc(spans, func(a, b Span) int {
			switch {
			case a.End < b.End:
				return -1
			case a.End > b.End:
				return 1
			default:
				return 0
			}
		})
		return
	}
	for i := 1; i < len(spans); i++ {
		s := spans[i]
		j := i - 1
		for j >= 0 && spans[j].End > s.End {
			spans[j+1] = spans[j]
			j--
		}
		spans[j+1] = s
	}
}

// seek returns the index of the segment containing t (the last segment whose
// start is <= t), clamped to 0 for times before the profile start.
func (p *Profile) seek(t int64) int {
	lo, hi := 0, len(p.segs)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if p.segs[mid].Time <= t {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == 0 {
		return 0
	}
	return lo - 1
}

// FreeAt returns the free processors at time t. Times before the profile
// start report the first segment's value.
func (p *Profile) FreeAt(t int64) int {
	return p.segs[p.seek(t)].Free
}

// MinFree returns the minimum free processors over [start, end). A window
// entirely before the profile start reports the full capacity (nothing is
// reserved before the profile begins); an empty window reports FreeAt(start).
func (p *Profile) MinFree(start, end int64) int {
	if end <= start {
		return p.FreeAt(start)
	}
	i := p.seek(start)
	if p.segs[i].Time >= end {
		return p.total // window entirely before the first segment
	}
	min := p.segs[i].Free
	steps := 0
	for i++; i < len(p.segs) && p.segs[i].Time < end; i++ {
		// Same hybrid escape as FindStart: long scans go blockwise.
		if steps >= escapeWalk && p.idxOn {
			return p.minFreeBlockwise(i, end, min)
		}
		steps++
		if p.segs[i].Free < min {
			min = p.segs[i].Free
		}
	}
	return min
}

// Reserve subtracts procs free processors over [start, end). It returns an
// error (leaving the profile unchanged) if any instant in the window lacks
// capacity. While a checkpoint is active the reservation is journaled so
// Rollback can undo it.
func (p *Profile) Reserve(start, end int64, procs int) error {
	if procs <= 0 {
		return fmt.Errorf("cluster: reserve of %d procs", procs)
	}
	if end <= start {
		return fmt.Errorf("cluster: empty reservation window [%d,%d)", start, end)
	}
	if p.MinFree(start, end) < procs {
		return fmt.Errorf("cluster: insufficient capacity for %d procs in [%d,%d)", procs, start, end)
	}
	p.addRange(start, end, -procs)
	if p.marks > 0 {
		p.journal = append(p.journal, resv{start: start, end: end, procs: procs})
	}
	return nil
}

// ReserveFound is Reserve for windows the caller has just located via
// FindStart: when procs fits the machine, FindStart only returns windows
// whose every overlapping segment has Free >= procs, so the capacity
// pre-scan is skipped. The one case FindStart cannot vouch for —
// procs > Total, which it searches with a clamped value — and malformed
// windows fall back to the fully checked Reserve, keeping the observable
// behaviour (including rejections) identical.
func (p *Profile) ReserveFound(start, end int64, procs int) error {
	if procs <= 0 || procs > p.total || end <= start {
		return p.Reserve(start, end, procs)
	}
	p.addRange(start, end, -procs)
	if p.marks > 0 {
		p.journal = append(p.journal, resv{start: start, end: end, procs: procs})
	}
	return nil
}

// Checkpoint marks the current profile state and returns a mark for Rollback.
// Checkpoints nest (LIFO): roll back an inner mark before an outer one.
// Reserves made while any checkpoint is open are journaled; Reset discards
// all open checkpoints.
func (p *Profile) Checkpoint() int {
	p.marks++
	return len(p.journal)
}

// Rollback undoes every Reserve made since the matching Checkpoint by
// applying the inverse range updates in reverse order, restoring the segment
// list byte-identically in O(touched segments). The mark is consumed.
func (p *Profile) Rollback(mark int) {
	for k := len(p.journal) - 1; k >= mark; k-- {
		r := p.journal[k]
		p.addRange(r.start, r.end, r.procs)
	}
	p.journal = p.journal[:mark]
	p.marks--
}

// FindStart returns the earliest time >= after at which procs processors are
// simultaneously free for `duration` seconds.
//
// The earliest feasible start is either `after` itself or a segment boundary
// (the free function is piecewise constant, so feasibility can only change at
// boundaries). The walk advances a single candidate monotonically: whenever a
// segment inside the candidate's window lacks capacity, every start up to
// that segment's end would still overlap it, so the candidate jumps straight
// there. Each segment between `after` and the answer is visited at most once
// — O(log S + walked) total, not O(boundaries x MinFree).
func (p *Profile) FindStart(after, duration int64, procs int) int64 {
	if procs > p.total {
		procs = p.total // cannot exceed machine; caller validates job size
	}
	if duration <= 0 {
		duration = 1
	}
	cand := after
	end := cand + duration
	n := len(p.segs)
	steps := 0
	for i := p.seek(cand); ; {
		// Hybrid escape: a walk that has already crossed two blocks' worth
		// of segments is in the deep-backlog regime — hand the advance to
		// the block index, which skips whole blocks per comparison. Short
		// walks (the overwhelmingly common case) never pay for the index.
		if steps >= escapeWalk && p.idxOn {
			return p.findStartBlockwise(i, cand, end, procs)
		}
		steps++
		if p.segs[i].Time >= end {
			return cand // window cleared before this segment begins
		}
		if p.segs[i].Free >= procs {
			i++
			if i >= n {
				return cand // open-ended tail covers the rest of the window
			}
			continue
		}
		// Blocking segment: every candidate before its end still overlaps it.
		if i+1 >= n {
			// A blocked open-ended tail cannot clear (unreachable for finite
			// reservations — the tail is always fully free); mirror the
			// pre-rewrite fallback of the last boundary.
			last := p.segs[n-1].Time
			if last < after {
				last = after
			}
			return last
		}
		i++
		cand = p.segs[i].Time
		end = cand + duration
	}
}

// ensureBoundary guarantees a segment starts exactly at t and returns its
// index. Times at or before the profile start map to segment 0; times past
// the last boundary extend the skyline.
func (p *Profile) ensureBoundary(t int64) int {
	if t <= p.segs[0].Time {
		return 0
	}
	lo, hi := 0, len(p.segs)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if p.segs[mid].Time < t {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(p.segs) && p.segs[lo].Time == t {
		return lo
	}
	p.segs = append(p.segs, segment{})
	copy(p.segs[lo+1:], p.segs[lo:])
	p.segs[lo] = segment{Time: t, Free: p.segs[lo-1].Free}
	p.idxInsert(lo, p.segs[lo].Free)
	return lo
}

// addRange adds delta to the free count of every instant in [start, end)
// (clamped to the profile start) and re-coalesces at the two seams. Interior
// segments shift uniformly, so adjacent inequality is preserved there; only
// the boundary pairs can merge, keeping the representation canonical in
// O(log S + touched segments).
func (p *Profile) addRange(start, end int64, delta int) {
	if end <= start {
		return
	}
	i := p.ensureBoundary(start)
	j := p.ensureBoundary(end)
	for k := i; k < j; k++ {
		p.segs[k].Free += delta
	}
	p.idxRangeAdd(i, j, delta)
	p.mergeAt(j) // j first: merging there leaves indices <= i untouched
	p.mergeAt(i)
}

// mergeAt removes the boundary between segments i-1 and i when both sides
// have the same free count.
func (p *Profile) mergeAt(i int) {
	if i <= 0 || i >= len(p.segs) {
		return
	}
	if p.segs[i].Free == p.segs[i-1].Free {
		p.segs = append(p.segs[:i], p.segs[i+1:]...)
		p.idxRemove(i)
	}
}
