package cluster

import "fmt"

// Profile is a piecewise-constant availability profile: the number of free
// processors as a function of future time. Conservative backfilling keeps one
// reservation per queued job in such a profile; EASY derives its single
// shadow-time reservation from it as well.
type Profile struct {
	total int
	segs  []segment // sorted by Time; segs[i] spans [segs[i].Time, segs[i+1].Time)
}

type segment struct {
	Time int64
	Free int
}

// NewProfile creates a profile with all processors free from time `from`
// onwards.
func NewProfile(total int, from int64) *Profile {
	if total <= 0 {
		panic(fmt.Sprintf("cluster: non-positive profile capacity %d", total))
	}
	return &Profile{total: total, segs: []segment{{Time: from, Free: total}}}
}

// Total returns the profile capacity.
func (p *Profile) Total() int { return p.total }

// Reset reinitialises the profile in place — all processors free from time
// `from` onwards — reusing the segment storage. Reservation-based
// backfillers rebuild a profile on every round; resetting one instead of
// allocating keeps that loop garbage-free.
func (p *Profile) Reset(total int, from int64) {
	if total <= 0 {
		panic(fmt.Sprintf("cluster: non-positive profile capacity %d", total))
	}
	p.total = total
	p.segs = append(p.segs[:0], segment{Time: from, Free: total})
}

// FreeAt returns the free processors at time t. Times before the profile
// start report the first segment's value.
func (p *Profile) FreeAt(t int64) int {
	free := p.segs[0].Free
	for _, s := range p.segs {
		if s.Time > t {
			break
		}
		free = s.Free
	}
	return free
}

// MinFree returns the minimum free processors over [start, end).
func (p *Profile) MinFree(start, end int64) int {
	if end <= start {
		return p.FreeAt(start)
	}
	min := p.total
	cur := p.segs[0].Free
	for i, s := range p.segs {
		segStart := s.Time
		var segEnd int64
		if i+1 < len(p.segs) {
			segEnd = p.segs[i+1].Time
		} else {
			segEnd = end // open-ended tail
			if segEnd < segStart {
				segEnd = segStart
			}
		}
		cur = s.Free
		if segEnd <= start || segStart >= end {
			if segStart >= end {
				break
			}
			continue
		}
		if cur < min {
			min = cur
		}
	}
	_ = cur
	return min
}

// Reserve subtracts procs free processors over [start, end). It returns an
// error (leaving the profile unchanged) if any instant in the window lacks
// capacity.
func (p *Profile) Reserve(start, end int64, procs int) error {
	if procs <= 0 {
		return fmt.Errorf("cluster: reserve of %d procs", procs)
	}
	if end <= start {
		return fmt.Errorf("cluster: empty reservation window [%d,%d)", start, end)
	}
	if p.MinFree(start, end) < procs {
		return fmt.Errorf("cluster: insufficient capacity for %d procs in [%d,%d)", procs, start, end)
	}
	p.split(start)
	p.split(end)
	for i := range p.segs {
		if p.segs[i].Time >= start && p.segs[i].Time < end {
			p.segs[i].Free -= procs
		}
	}
	p.coalesce()
	return nil
}

// FindStart returns the earliest time >= after at which procs processors are
// simultaneously free for `duration` seconds.
func (p *Profile) FindStart(after, duration int64, procs int) int64 {
	if procs > p.total {
		procs = p.total // cannot exceed machine; caller validates job size
	}
	if duration <= 0 {
		duration = 1
	}
	// Candidate start times: `after` and every segment boundary after it
	// (checked in place — this runs per reservation in the backfilling hot
	// path, so no candidate slice is materialised).
	if p.MinFree(after, after+duration) >= procs {
		return after
	}
	for _, s := range p.segs {
		if s.Time > after && p.MinFree(s.Time, s.Time+duration) >= procs {
			return s.Time
		}
	}
	// The tail segment always has Free == total eventually only if nothing is
	// reserved forever; reservations are finite, so the last boundary works.
	last := p.segs[len(p.segs)-1].Time
	if last < after {
		last = after
	}
	return last
}

// split ensures a segment boundary exists at time t.
func (p *Profile) split(t int64) {
	if t <= p.segs[0].Time {
		return
	}
	for i, s := range p.segs {
		if s.Time == t {
			return
		}
		if s.Time > t {
			prev := p.segs[i-1].Free
			p.segs = append(p.segs, segment{})
			copy(p.segs[i+1:], p.segs[i:])
			p.segs[i] = segment{Time: t, Free: prev}
			return
		}
	}
	p.segs = append(p.segs, segment{Time: t, Free: p.segs[len(p.segs)-1].Free})
}

// coalesce merges adjacent segments with equal free counts.
func (p *Profile) coalesce() {
	out := p.segs[:1]
	for _, s := range p.segs[1:] {
		if s.Free == out[len(out)-1].Free {
			continue
		}
		out = append(out, s)
	}
	p.segs = out
}
