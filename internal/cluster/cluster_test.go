package cluster

import (
	"testing"
	"testing/quick"

	"repro/internal/stats"
)

func TestNewPanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(0) did not panic")
		}
	}()
	New(0)
}

func TestAllocRelease(t *testing.T) {
	c := New(10)
	if err := c.Alloc(1, 4); err != nil {
		t.Fatal(err)
	}
	if c.Free() != 6 || c.Used() != 4 || c.Running() != 1 {
		t.Fatalf("state after alloc: free=%d used=%d running=%d", c.Free(), c.Used(), c.Running())
	}
	if c.Holding(1) != 4 {
		t.Fatalf("Holding(1) = %d", c.Holding(1))
	}
	if err := c.Release(1); err != nil {
		t.Fatal(err)
	}
	if c.Free() != 10 || c.Running() != 0 {
		t.Fatalf("state after release: free=%d running=%d", c.Free(), c.Running())
	}
}

func TestAllocErrors(t *testing.T) {
	c := New(10)
	if err := c.Alloc(1, 0); err == nil {
		t.Fatal("zero-proc alloc accepted")
	}
	if err := c.Alloc(1, 11); err == nil {
		t.Fatal("oversubscription accepted")
	}
	if err := c.Alloc(1, 5); err != nil {
		t.Fatal(err)
	}
	if err := c.Alloc(1, 2); err == nil {
		t.Fatal("double allocation accepted")
	}
	if err := c.Alloc(2, 6); err == nil {
		t.Fatal("alloc beyond free accepted")
	}
	if err := c.Release(99); err == nil {
		t.Fatal("release of unknown job accepted")
	}
}

func TestFits(t *testing.T) {
	c := New(8)
	if !c.Fits(8) || c.Fits(9) || c.Fits(0) {
		t.Fatal("Fits boundary conditions wrong")
	}
}

func TestUtilization(t *testing.T) {
	c := New(4)
	if c.Utilization() != 0 {
		t.Fatal("idle utilization not 0")
	}
	_ = c.Alloc(1, 2)
	if c.Utilization() != 0.5 {
		t.Fatalf("utilization = %v, want 0.5", c.Utilization())
	}
}

func TestReset(t *testing.T) {
	c := New(4)
	_ = c.Alloc(1, 4)
	c.Reset()
	if c.Free() != 4 || c.Running() != 0 {
		t.Fatal("Reset did not restore idle state")
	}
}

// Property: any random alloc/release sequence keeps 0 <= free <= total and
// free + sum(held) == total.
func TestClusterInvariants(t *testing.T) {
	rng := stats.NewRNG(5)
	f := func(seed uint16) bool {
		r := stats.NewRNG(uint64(seed))
		c := New(64)
		held := map[int]int{}
		for step := 0; step < 200; step++ {
			if r.Bool(0.6) {
				id := r.Intn(100)
				procs := r.Intn(70) + 1
				if err := c.Alloc(id, procs); err == nil {
					if _, dup := held[id]; dup {
						return false // duplicate alloc must have errored
					}
					held[id] = procs
				}
			} else if len(held) > 0 {
				// release a random held job
				for id := range held {
					if err := c.Release(id); err != nil {
						return false
					}
					delete(held, id)
					break
				}
			}
			sum := 0
			for _, p := range held {
				sum += p
			}
			if c.Free() < 0 || c.Free() > 64 || c.Free()+sum != 64 {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 100, Values: nil}
	_ = rng
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestProfileBasics(t *testing.T) {
	p := NewProfile(10, 0)
	if p.FreeAt(0) != 10 || p.FreeAt(1e9) != 10 {
		t.Fatal("fresh profile not fully free")
	}
	if err := p.Reserve(10, 20, 4); err != nil {
		t.Fatal(err)
	}
	if p.FreeAt(5) != 10 || p.FreeAt(10) != 6 || p.FreeAt(19) != 6 || p.FreeAt(20) != 10 {
		t.Fatalf("free profile wrong: %d %d %d %d", p.FreeAt(5), p.FreeAt(10), p.FreeAt(19), p.FreeAt(20))
	}
}

func TestProfileOverlappingReservations(t *testing.T) {
	p := NewProfile(10, 0)
	if err := p.Reserve(0, 100, 6); err != nil {
		t.Fatal(err)
	}
	if err := p.Reserve(50, 150, 4); err != nil {
		t.Fatal(err)
	}
	if p.FreeAt(75) != 0 {
		t.Fatalf("FreeAt(75) = %d, want 0", p.FreeAt(75))
	}
	if err := p.Reserve(60, 70, 1); err == nil {
		t.Fatal("over-capacity reservation accepted")
	}
	if p.FreeAt(75) != 0 {
		t.Fatal("failed reservation mutated profile")
	}
}

func TestProfileReserveErrors(t *testing.T) {
	p := NewProfile(4, 0)
	if err := p.Reserve(10, 10, 1); err == nil {
		t.Fatal("empty window accepted")
	}
	if err := p.Reserve(0, 10, 0); err == nil {
		t.Fatal("zero procs accepted")
	}
	if err := p.Reserve(0, 10, 5); err == nil {
		t.Fatal("beyond capacity accepted")
	}
}

func TestProfileFindStart(t *testing.T) {
	p := NewProfile(10, 0)
	_ = p.Reserve(0, 100, 8) // only 2 free until t=100
	if got := p.FindStart(0, 50, 2); got != 0 {
		t.Fatalf("FindStart small job = %d, want 0", got)
	}
	if got := p.FindStart(0, 50, 5); got != 100 {
		t.Fatalf("FindStart big job = %d, want 100", got)
	}
	if got := p.FindStart(150, 50, 5); got != 150 {
		t.Fatalf("FindStart after reservations = %d, want 150", got)
	}
}

func TestProfileFindStartBetweenReservations(t *testing.T) {
	p := NewProfile(10, 0)
	_ = p.Reserve(0, 50, 10)
	_ = p.Reserve(100, 200, 10)
	// a 40s 10-proc job fits exactly in the [50,100) hole
	if got := p.FindStart(0, 40, 10); got != 50 {
		t.Fatalf("FindStart = %d, want 50", got)
	}
	// a 60s job does not fit in the hole; must wait until 200
	if got := p.FindStart(0, 60, 10); got != 200 {
		t.Fatalf("FindStart = %d, want 200", got)
	}
}

func TestProfileMinFree(t *testing.T) {
	p := NewProfile(8, 0)
	_ = p.Reserve(10, 20, 3)
	_ = p.Reserve(15, 30, 2)
	if got := p.MinFree(0, 10); got != 8 {
		t.Fatalf("MinFree(0,10) = %d", got)
	}
	if got := p.MinFree(0, 16); got != 3 {
		t.Fatalf("MinFree(0,16) = %d", got)
	}
	if got := p.MinFree(20, 40); got != 6 {
		t.Fatalf("MinFree(20,40) = %d", got)
	}
}

// Property: after any sequence of reservations found via FindStart, the
// profile never goes negative anywhere.
func TestProfileNeverNegative(t *testing.T) {
	f := func(seed uint16) bool {
		r := stats.NewRNG(uint64(seed))
		p := NewProfile(32, 0)
		for i := 0; i < 50; i++ {
			procs := r.Intn(32) + 1
			dur := r.Int63n(500) + 1
			start := p.FindStart(r.Int63n(1000), dur, procs)
			if err := p.Reserve(start, start+dur, procs); err != nil {
				return false
			}
		}
		// scan a fine grid
		for tm := int64(0); tm < 3000; tm += 7 {
			if p.FreeAt(tm) < 0 || p.FreeAt(tm) > 32 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
