package ppo

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/nn"
	"repro/internal/stats"
)

func TestGAEMatchesBruteForce(t *testing.T) {
	f := func(seed uint16) bool {
		r := stats.NewRNG(uint64(seed))
		n := r.Intn(20) + 1
		rewards := make([]float64, n)
		values := make([]float64, n)
		for i := range rewards {
			rewards[i] = r.Normal(0, 1)
			values[i] = r.Normal(0, 1)
		}
		gamma, lambda := 0.97, 0.9
		adv, ret := GAE(rewards, values, gamma, lambda)

		// brute force
		for tt := 0; tt < n; tt++ {
			// advantage: sum_k (gamma*lambda)^k * delta_{t+k}
			want := 0.0
			for k := 0; tt+k < n; k++ {
				nextV := 0.0
				if tt+k+1 < n {
					nextV = values[tt+k+1]
				}
				delta := rewards[tt+k] + gamma*nextV - values[tt+k]
				want += math.Pow(gamma*lambda, float64(k)) * delta
			}
			if math.Abs(adv[tt]-want) > 1e-9 {
				return false
			}
			// rewards-to-go
			wantRet := 0.0
			for k := 0; tt+k < n; k++ {
				wantRet += math.Pow(gamma, float64(k)) * rewards[tt+k]
			}
			if math.Abs(ret[tt]-wantRet) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestGAETerminalOnlyReward(t *testing.T) {
	// gamma=1: the terminal reward propagates undiscounted to every step's
	// return — the structure the backfilling episodes use (§3.4).
	rewards := []float64{0, 0, 0, 5}
	values := []float64{0, 0, 0, 0}
	_, ret := GAE(rewards, values, 1.0, 0.97)
	for i, v := range ret {
		if v != 5 {
			t.Fatalf("ret[%d] = %v, want 5", i, v)
		}
	}
}

func TestNormalize(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	normalize(xs)
	if math.Abs(stats.Mean(xs)) > 1e-12 {
		t.Fatalf("normalized mean %v", stats.Mean(xs))
	}
	var sq float64
	for _, x := range xs {
		sq += x * x
	}
	if math.Abs(sq/4-1) > 1e-9 {
		t.Fatalf("normalized variance %v", sq/4)
	}
	cs := []float64{7, 7, 7}
	normalize(cs)
	for _, v := range cs {
		if v != 0 {
			t.Fatal("constant input should normalise to zeros")
		}
	}
}

// mkPPO builds a small agent with deterministic init.
func mkPPO(featDim, slots int, cfg Config) *PPO {
	rng := stats.NewRNG(99)
	policy := nn.NewMLP([]int{featDim, 16, 8, 1}, nn.ReLU, rng)
	value := nn.NewMLP([]int{featDim * slots, 16, 1}, nn.Tanh, rng)
	return New(policy, value, cfg)
}

// banditTrajectories builds a contextual-bandit dataset: two candidate rows;
// choosing the row whose first feature is larger yields reward 1, else 0.
func banditTrajectories(p *PPO, rng *stats.RNG, nTraj, featDim, slots int) []Trajectory {
	trajs := make([]Trajectory, nTraj)
	cache := nn.NewCache(p.Policy)
	vcache := nn.NewCache(p.Value)
	scores := make([]float64, slots)
	for ti := range trajs {
		obs := make([][]float64, slots)
		mask := make([]bool, slots)
		flat := make([]float64, featDim*slots)
		best := 0
		bestV := -1.0
		for i := 0; i < slots; i++ {
			row := make([]float64, featDim)
			for k := range row {
				row[k] = rng.Float64()
			}
			obs[i] = row
			mask[i] = true
			copy(flat[i*featDim:], row)
			if row[0] > bestV {
				bestV = row[0]
				best = i
			}
		}
		probs := p.Distribution(obs, mask, cache, scores)
		a := nn.SampleCategorical(probs, rng)
		reward := 0.0
		if a == best {
			reward = 1
		}
		trajs[ti] = Trajectory{Steps: []Step{{
			Obs: obs, FlatObs: flat, Mask: mask, Action: a,
			LogP:   nn.LogProb(probs, a),
			Value:  p.ValueOf(flat, vcache),
			Reward: reward,
		}}}
	}
	return trajs
}

// The integration test: PPO must learn the pick-the-larger-feature bandit.
func TestPPOLearnsBandit(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PiIters = 20
	cfg.VIters = 20
	cfg.MiniBatch = 0
	cfg.Workers = 2
	cfg.Seed = 7
	const featDim, slots = 3, 2
	p := mkPPO(featDim, slots, cfg)
	rng := stats.NewRNG(3)

	accuracy := func() float64 {
		cache := nn.NewCache(p.Policy)
		scores := make([]float64, slots)
		hits := 0
		const trials = 500
		r := stats.NewRNG(123)
		for i := 0; i < trials; i++ {
			obs := make([][]float64, slots)
			mask := []bool{true, true}
			best, bestV := 0, -1.0
			for k := 0; k < slots; k++ {
				row := []float64{r.Float64(), r.Float64(), r.Float64()}
				obs[k] = row
				if row[0] > bestV {
					bestV, best = row[0], k
				}
			}
			probs := p.Distribution(obs, mask, cache, scores)
			if nn.Argmax(probs) == best {
				hits++
			}
		}
		return float64(hits) / trials
	}

	before := accuracy()
	for epoch := 0; epoch < 15; epoch++ {
		trajs := banditTrajectories(p, rng, 200, featDim, slots)
		st := p.Update(trajs)
		if st.Steps != 200 {
			t.Fatalf("update saw %d steps", st.Steps)
		}
	}
	after := accuracy()
	if after < 0.9 {
		t.Fatalf("PPO failed to learn bandit: accuracy %.2f -> %.2f", before, after)
	}
}

func TestUpdateEmptyTrajectories(t *testing.T) {
	p := mkPPO(3, 2, DefaultConfig())
	st := p.Update([]Trajectory{{}, {}})
	if st.Steps != 0 || st.PiIters != 0 {
		t.Fatalf("empty update did something: %+v", st)
	}
}

func TestKLEarlyStopping(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PiIters = 80
	cfg.VIters = 1
	cfg.TargetKL = 1e-9 // absurdly tight: must stop almost immediately
	cfg.MiniBatch = 0
	p := mkPPO(3, 2, cfg)
	rng := stats.NewRNG(5)
	trajs := banditTrajectories(p, rng, 50, 3, 2)
	st := p.Update(trajs)
	if st.PiIters > 5 {
		t.Fatalf("KL early stop did not trigger: %d iterations", st.PiIters)
	}
}

func TestMinibatchSelection(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MiniBatch = 4
	p := mkPPO(2, 2, cfg)
	idx := []int{0, 1, 2, 3, 4, 5, 6, 7}
	b := p.minibatch(idx)
	if len(b) != 4 {
		t.Fatalf("minibatch size %d", len(b))
	}
	seen := map[int]bool{}
	for _, v := range b {
		if v < 0 || v > 7 || seen[v] {
			t.Fatalf("bad minibatch %v", b)
		}
		seen[v] = true
	}
	cfg.MiniBatch = 0
	p2 := mkPPO(2, 2, cfg)
	if got := p2.minibatch(idx); len(got) != 8 {
		t.Fatalf("full batch size %d", len(got))
	}
}

func TestValueRegression(t *testing.T) {
	// With PiIters=0, Update reduces critic MSE on a fixed target.
	cfg := DefaultConfig()
	cfg.PiIters = 0
	cfg.VIters = 150
	cfg.MiniBatch = 0
	cfg.VLR = 1e-2
	p := mkPPO(2, 2, cfg)
	rng := stats.NewRNG(11)
	var trajs []Trajectory
	for i := 0; i < 100; i++ {
		flat := []float64{rng.Float64(), rng.Float64(), rng.Float64(), rng.Float64()}
		target := flat[0] + flat[1] // learnable function
		trajs = append(trajs, Trajectory{Steps: []Step{{
			Obs: [][]float64{{1, 0}, {0, 1}}, FlatObs: flat,
			Mask: []bool{true, true}, Action: 0, LogP: math.Log(0.5),
			Value: 0, Reward: target,
		}}})
	}
	st := p.Update(trajs)
	if st.VLossLast >= st.VLossInit {
		t.Fatalf("value loss did not decrease: %v -> %v", st.VLossInit, st.VLossLast)
	}
	if st.VLossLast > 0.05 {
		t.Fatalf("value loss too high after regression: %v", st.VLossLast)
	}
}

func TestUpdateDeterministicForFixedSeed(t *testing.T) {
	build := func() (*PPO, []Trajectory) {
		cfg := DefaultConfig()
		cfg.PiIters = 5
		cfg.VIters = 5
		cfg.Workers = 3 // parallel reduction must stay deterministic
		cfg.Seed = 42
		p := mkPPO(3, 2, cfg)
		rng := stats.NewRNG(9)
		return p, banditTrajectories(p, rng, 60, 3, 2)
	}
	p1, t1 := build()
	p2, t2 := build()
	p1.Update(t1)
	p2.Update(t2)
	for l := range p1.Policy.W {
		for i := range p1.Policy.W[l].Data {
			if p1.Policy.W[l].Data[i] != p2.Policy.W[l].Data[i] {
				t.Fatalf("policy weights diverged at layer %d index %d", l, i)
			}
		}
	}
}

func TestDistributionMasksInvalidRows(t *testing.T) {
	p := mkPPO(3, 3, DefaultConfig())
	cache := nn.NewCache(p.Policy)
	scores := make([]float64, 3)
	obs := [][]float64{{1, 2, 3}, {4, 5, 6}, {7, 8, 9}}
	probs := p.Distribution(obs, []bool{true, false, true}, cache, scores)
	if probs[1] != 0 {
		t.Fatal("masked row received probability")
	}
	if math.Abs(probs[0]+probs[2]-1) > 1e-12 {
		t.Fatal("valid probabilities do not sum to 1")
	}
}
