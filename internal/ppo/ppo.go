// Package ppo implements Proximal Policy Optimization (Schulman et al. 2017)
// in the style of OpenAI Spinning Up — the algorithm the paper trains
// RLBackfilling with (§2.2.1, §4.1.1): clipped surrogate objective,
// GAE-lambda advantages, separate policy ("actor") and value ("critic")
// networks updated with Adam for a fixed number of iterations per epoch with
// KL-divergence early stopping.
//
// The policy here is the paper's kernel network (§3.3.1): a small MLP is
// applied to each candidate's feature vector to produce one score per
// candidate, and a masked softmax over the scores yields the action
// distribution. The value network (§3.3.2) is an ordinary MLP over the
// flattened observation.
package ppo

import (
	"math"
	"sync"

	"repro/internal/nn"
	"repro/internal/stats"
)

// Step is one decision recorded during a rollout.
type Step struct {
	// Obs holds one feature vector per action slot (the kernel network is
	// applied to each). Only rows with Mask true are selectable.
	Obs [][]float64
	// FlatObs is the fixed-size flattened observation for the value network.
	FlatObs []float64
	// Mask marks selectable rows.
	Mask []bool
	// Action is the sampled row index.
	Action int
	// LogP is log pi(a|s) at collection time.
	LogP float64
	// Value is V(s) at collection time.
	Value float64
	// Reward is the immediate reward credited to this step.
	Reward float64
}

// Trajectory is a full episode of steps.
type Trajectory struct {
	Steps []Step
}

// Config holds the PPO hyper-parameters. Defaults (§4.1.1 and Spinning Up):
// clip 0.2, lr 1e-3, 80 policy and value iterations, target KL 0.01,
// gamma 1 (terminal-only rewards), lambda 0.97.
type Config struct {
	ClipRatio   float64
	PiLR        float64
	VLR         float64
	PiIters     int
	VIters      int
	TargetKL    float64
	Gamma       float64
	Lambda      float64
	EntropyCoef float64
	// MiniBatch limits the samples used per update iteration (0 = full
	// batch, as in Spinning Up).
	MiniBatch int
	// Workers is the gradient/rollout parallelism (<=1 = serial).
	Workers int
	Seed    uint64
}

// DefaultConfig returns the paper/Spinning Up defaults.
func DefaultConfig() Config {
	return Config{
		ClipRatio:   0.2,
		PiLR:        1e-3,
		VLR:         1e-3,
		PiIters:     80,
		VIters:      80,
		TargetKL:    0.01,
		Gamma:       1.0,
		Lambda:      0.97,
		EntropyCoef: 0.01,
		MiniBatch:   4096,
		Workers:     1,
		Seed:        1,
	}
}

// PPO holds the actor-critic networks and their optimisers.
type PPO struct {
	Policy *nn.MLP // kernel network: featDim -> ... -> 1
	Value  *nn.MLP // value network: flatDim -> ... -> 1
	Cfg    Config

	piOpt *nn.Adam
	vOpt  *nn.Adam
	rng   *stats.RNG
}

// New wires the networks to fresh Adam optimisers.
func New(policy, value *nn.MLP, cfg Config) *PPO {
	return &PPO{
		Policy: policy,
		Value:  value,
		Cfg:    cfg,
		piOpt:  nn.NewAdam(policy, cfg.PiLR),
		vOpt:   nn.NewAdam(value, cfg.VLR),
		rng:    stats.NewRNG(cfg.Seed + 0x5bd1e995),
	}
}

// Distribution runs the kernel network over every row of obs and returns the
// masked-softmax action distribution. cache must match Policy's shape;
// scores is scratch of len(obs). Both may be reused across calls.
func (p *PPO) Distribution(obs [][]float64, mask []bool, cache *nn.Cache, scores []float64) []float64 {
	for i, row := range obs {
		if !mask[i] {
			scores[i] = 0
			continue
		}
		scores[i] = p.Policy.Forward(row, cache)[0]
	}
	return nn.MaskedSoftmax(scores[:len(obs)], mask)
}

// ValueOf evaluates the critic on a flattened observation.
func (p *PPO) ValueOf(flat []float64, cache *nn.Cache) float64 {
	return p.Value.Forward(flat, cache)[0]
}

// UpdateStats reports what one Update did.
type UpdateStats struct {
	Steps      int
	PiIters    int
	VIters     int
	KL         float64
	Entropy    float64
	PiLossInit float64
	PiLossLast float64
	VLossInit  float64
	VLossLast  float64
}

// Update performs one PPO epoch over the collected trajectories: GAE
// advantage estimation, normalised advantages, PiIters clipped-surrogate
// policy steps with KL early stopping, and VIters value-regression steps.
func (p *PPO) Update(trajs []Trajectory) UpdateStats {
	var steps []Step
	var advs, rets []float64
	for _, tr := range trajs {
		if len(tr.Steps) == 0 {
			continue
		}
		rewards := make([]float64, len(tr.Steps))
		values := make([]float64, len(tr.Steps))
		for i, s := range tr.Steps {
			rewards[i] = s.Reward
			values[i] = s.Value
		}
		adv, ret := GAE(rewards, values, p.Cfg.Gamma, p.Cfg.Lambda)
		steps = append(steps, tr.Steps...)
		advs = append(advs, adv...)
		rets = append(rets, ret...)
	}
	st := UpdateStats{Steps: len(steps)}
	if len(steps) == 0 {
		return st
	}
	normalize(advs)

	workers := p.Cfg.Workers
	if workers < 1 {
		workers = 1
	}

	// ---- policy updates ----
	idx := make([]int, len(steps))
	for i := range idx {
		idx[i] = i
	}
	for iter := 0; iter < p.Cfg.PiIters; iter++ {
		batch := p.minibatch(idx)
		loss, kl, ent := p.policyStep(steps, advs, batch, workers)
		if iter == 0 {
			st.PiLossInit = loss
			st.Entropy = ent
		}
		st.PiLossLast = loss
		st.KL = kl
		st.PiIters = iter + 1
		if p.Cfg.TargetKL > 0 && kl > 1.5*p.Cfg.TargetKL {
			break
		}
	}

	// ---- value updates ----
	for iter := 0; iter < p.Cfg.VIters; iter++ {
		batch := p.minibatch(idx)
		loss := p.valueStep(steps, rets, batch, workers)
		if iter == 0 {
			st.VLossInit = loss
		}
		st.VLossLast = loss
		st.VIters = iter + 1
	}
	return st
}

// minibatch returns the sample indices for one update iteration, shuffling
// in place when a minibatch size is configured.
func (p *PPO) minibatch(idx []int) []int {
	mb := p.Cfg.MiniBatch
	if mb <= 0 || mb >= len(idx) {
		return idx
	}
	// partial Fisher-Yates: the first mb entries become a uniform sample
	for i := 0; i < mb; i++ {
		j := i + p.rng.Intn(len(idx)-i)
		idx[i], idx[j] = idx[j], idx[i]
	}
	return idx[:mb]
}

// policyStep computes one clipped-surrogate gradient step over the batch and
// returns (loss, approxKL, entropy).
func (p *PPO) policyStep(steps []Step, advs []float64, batch []int, workers int) (loss, kl, ent float64) {
	grads := make([]*nn.Grads, workers)
	losses := make([]float64, workers)
	kls := make([]float64, workers)
	ents := make([]float64, workers)
	clip := p.Cfg.ClipRatio

	var wg sync.WaitGroup
	chunk := (len(batch) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		if lo >= len(batch) {
			break
		}
		hi := lo + chunk
		if hi > len(batch) {
			hi = len(batch)
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			g := nn.NewGrads(p.Policy)
			cache := nn.NewCache(p.Policy)
			var scores, dscore []float64
			var caches []*nn.Cache
			for _, si := range batch[lo:hi] {
				s := &steps[si]
				n := len(s.Obs)
				if cap(scores) < n {
					scores = make([]float64, n)
					dscore = make([]float64, n)
				}
				scores = scores[:n]
				dscore = dscore[:n]
				for len(caches) < n {
					caches = append(caches, nn.NewCache(p.Policy))
				}
				// forward every selectable row, keeping per-row caches
				for i, row := range s.Obs {
					if !s.Mask[i] {
						scores[i] = 0
						continue
					}
					scores[i] = p.Policy.Forward(row, caches[i])[0]
				}
				probs := nn.MaskedSoftmax(scores, s.Mask)
				newLogP := nn.LogProb(probs, s.Action)
				ratio := math.Exp(newLogP - s.LogP)
				adv := advs[si]

				// clipped surrogate: L = -min(ratio*A, clip(ratio)*A)
				unclipped := ratio * adv
				clipped := clampF(ratio, 1-clip, 1+clip) * adv
				obj := math.Min(unclipped, clipped)
				losses[w] += -obj
				kls[w] += s.LogP - newLogP
				ents[w] += nn.Entropy(probs)

				// dL/dlogp: zero when the clip branch saturates
				var dlogp float64
				if unclipped <= clipped {
					dlogp = -ratio * adv
				}
				nn.SoftmaxLogProbGrad(probs, s.Mask, s.Action, dscore)
				if p.Cfg.EntropyCoef > 0 {
					entGrad := make([]float64, n)
					nn.SoftmaxEntropyGrad(probs, s.Mask, entGrad)
					for i := range dscore {
						dscore[i] = dlogp*dscore[i] - p.Cfg.EntropyCoef*entGrad[i]
					}
				} else {
					for i := range dscore {
						dscore[i] *= dlogp
					}
				}
				for i := range s.Obs {
					if !s.Mask[i] || dscore[i] == 0 {
						continue
					}
					p.Policy.Backward(caches[i], []float64{dscore[i]}, g)
				}
			}
			grads[w] = g
			_ = cache
		}(w, lo, hi)
	}
	wg.Wait()

	total := nn.NewGrads(p.Policy)
	for _, g := range grads {
		if g != nil {
			total.Add(g)
		}
	}
	n := float64(len(batch))
	total.Scale(1 / n)
	p.piOpt.Step(p.Policy, total)
	for w := 0; w < workers; w++ {
		loss += losses[w]
		kl += kls[w]
		ent += ents[w]
	}
	return loss / n, kl / n, ent / n
}

// valueStep computes one mean-squared-error regression step for the critic
// and returns the loss.
func (p *PPO) valueStep(steps []Step, rets []float64, batch []int, workers int) float64 {
	grads := make([]*nn.Grads, workers)
	losses := make([]float64, workers)

	var wg sync.WaitGroup
	chunk := (len(batch) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		if lo >= len(batch) {
			break
		}
		hi := lo + chunk
		if hi > len(batch) {
			hi = len(batch)
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			g := nn.NewGrads(p.Value)
			cache := nn.NewCache(p.Value)
			for _, si := range batch[lo:hi] {
				s := &steps[si]
				v := p.Value.Forward(s.FlatObs, cache)[0]
				diff := v - rets[si]
				losses[w] += diff * diff
				p.Value.Backward(cache, []float64{2 * diff}, g)
			}
			grads[w] = g
		}(w, lo, hi)
	}
	wg.Wait()

	total := nn.NewGrads(p.Value)
	for _, g := range grads {
		if g != nil {
			total.Add(g)
		}
	}
	n := float64(len(batch))
	total.Scale(1 / n)
	p.vOpt.Step(p.Value, total)
	var loss float64
	for w := 0; w < workers; w++ {
		loss += losses[w]
	}
	return loss / n
}

// GAE computes generalised advantage estimates and discounted rewards-to-go
// for one episode (terminal value 0).
func GAE(rewards, values []float64, gamma, lambda float64) (adv, ret []float64) {
	n := len(rewards)
	adv = make([]float64, n)
	ret = make([]float64, n)
	var lastAdv, lastRet float64
	for t := n - 1; t >= 0; t-- {
		var nextV float64
		if t+1 < n {
			nextV = values[t+1]
		}
		delta := rewards[t] + gamma*nextV - values[t]
		lastAdv = delta + gamma*lambda*lastAdv
		adv[t] = lastAdv
		lastRet = rewards[t] + gamma*lastRet
		ret[t] = lastRet
	}
	return adv, ret
}

// normalize shifts and scales xs to zero mean and unit variance in place
// (no-op for constant inputs).
func normalize(xs []float64) {
	if len(xs) == 0 {
		return
	}
	m := stats.Mean(xs)
	var sq float64
	for _, x := range xs {
		d := x - m
		sq += d * d
	}
	sd := math.Sqrt(sq / float64(len(xs)))
	if sd < 1e-12 {
		for i := range xs {
			xs[i] = 0
		}
		return
	}
	for i := range xs {
		xs[i] = (xs[i] - m) / sd
	}
}

func clampF(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
