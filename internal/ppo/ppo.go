// Package ppo implements Proximal Policy Optimization (Schulman et al. 2017)
// in the style of OpenAI Spinning Up — the algorithm the paper trains
// RLBackfilling with (§2.2.1, §4.1.1): clipped surrogate objective,
// GAE-lambda advantages, separate policy ("actor") and value ("critic")
// networks updated with Adam for a fixed number of iterations per epoch with
// KL-divergence early stopping.
//
// The policy here is the paper's kernel network (§3.3.1): a small MLP is
// applied to each candidate's feature vector to produce one score per
// candidate, and a masked softmax over the scores yields the action
// distribution. The value network (§3.3.2) is an ordinary MLP over the
// flattened observation.
package ppo

import (
	"math"
	"sync"

	"repro/internal/nn"
	"repro/internal/stats"
)

// Step is one decision recorded during a rollout.
type Step struct {
	// Obs holds one feature vector per action slot (the kernel network is
	// applied to each). Only rows with Mask true are selectable.
	Obs [][]float64
	// FlatObs is the fixed-size flattened observation for the value network.
	FlatObs []float64
	// Mask marks selectable rows.
	Mask []bool
	// Action is the sampled row index.
	Action int
	// LogP is log pi(a|s) at collection time.
	LogP float64
	// Value is V(s) at collection time.
	Value float64
	// Reward is the immediate reward credited to this step.
	Reward float64
}

// Trajectory is a full episode of steps.
type Trajectory struct {
	Steps []Step
}

// Config holds the PPO hyper-parameters. Defaults (§4.1.1 and Spinning Up):
// clip 0.2, lr 1e-3, 80 policy and value iterations, target KL 0.01,
// gamma 1 (terminal-only rewards), lambda 0.97.
type Config struct {
	ClipRatio   float64
	PiLR        float64
	VLR         float64
	PiIters     int
	VIters      int
	TargetKL    float64
	Gamma       float64
	Lambda      float64
	EntropyCoef float64
	// MiniBatch limits the samples used per update iteration (0 = full
	// batch, as in Spinning Up).
	MiniBatch int
	// Workers is the gradient/rollout parallelism (<=1 = serial).
	Workers int
	Seed    uint64
}

// DefaultConfig returns the paper/Spinning Up defaults.
func DefaultConfig() Config {
	return Config{
		ClipRatio:   0.2,
		PiLR:        1e-3,
		VLR:         1e-3,
		PiIters:     80,
		VIters:      80,
		TargetKL:    0.01,
		Gamma:       1.0,
		Lambda:      0.97,
		EntropyCoef: 0.01,
		MiniBatch:   4096,
		Workers:     1,
		Seed:        1,
	}
}

// PPO holds the actor-critic networks and their optimisers. An instance is
// not safe for concurrent Update calls: the per-worker scratch below is
// reused across iterations (that reuse is what removes the per-iteration
// allocation churn from the update hot path).
type PPO struct {
	Policy *nn.MLP // kernel network: featDim -> ... -> 1
	Value  *nn.MLP // value network: flatDim -> ... -> 1
	Cfg    Config

	piOpt *nn.Adam
	vOpt  *nn.Adam
	rng   *stats.RNG

	// persistent update scratch, grown on demand
	pi      []*piScratch
	v       []*vScratch
	piTotal *nn.Grads
	vTotal  *nn.Grads
	idx     []int
}

// piScratch is one policy-update worker's reusable state: gradient
// accumulator, batch cache sized to the widest observation seen, and the
// per-decision score/prob/gradient vectors.
type piScratch struct {
	g       *nn.Grads
	bc      *nn.BatchCache
	gradOut *nn.Mat
	scores  []float64
	probs   []float64
	dscore  []float64
	gather  []int
	loss    float64
	kl      float64
	ent     float64
}

func (s *piScratch) ensure(policy *nn.MLP, n int) {
	if cap(s.scores) < n {
		s.scores = make([]float64, n)
		s.probs = make([]float64, n)
		s.dscore = make([]float64, n)
		s.gather = make([]int, n)
	}
	if s.bc == nil || s.bc.Cap() < n {
		s.bc = nn.NewBatchCache(policy, n)
		s.gradOut = nn.NewMat(n, 1)
	}
}

// valueBatchRows bounds the value-network batch matrix: large enough that
// the GEMM amortises, small enough that the cache stays ~1 MB at the paper's
// 1290-wide flat observation.
const valueBatchRows = 128

// vScratch is one value-update worker's reusable state.
type vScratch struct {
	g       *nn.Grads
	bc      *nn.BatchCache
	gradOut *nn.Mat
	loss    float64
}

// piScratches returns (growing if needed) one policy scratch per worker.
func (p *PPO) piScratches(workers int) []*piScratch {
	for len(p.pi) < workers {
		p.pi = append(p.pi, &piScratch{g: nn.NewGrads(p.Policy)})
	}
	if p.piTotal == nil {
		p.piTotal = nn.NewGrads(p.Policy)
	}
	return p.pi
}

// vScratches returns (growing if needed) one value scratch per worker.
func (p *PPO) vScratches(workers int) []*vScratch {
	for len(p.v) < workers {
		p.v = append(p.v, &vScratch{
			g:       nn.NewGrads(p.Value),
			bc:      nn.NewBatchCache(p.Value, valueBatchRows),
			gradOut: nn.NewMat(valueBatchRows, 1),
		})
	}
	if p.vTotal == nil {
		p.vTotal = nn.NewGrads(p.Value)
	}
	return p.v
}

// New wires the networks to fresh Adam optimisers.
func New(policy, value *nn.MLP, cfg Config) *PPO {
	return &PPO{
		Policy: policy,
		Value:  value,
		Cfg:    cfg,
		piOpt:  nn.NewAdam(policy, cfg.PiLR),
		vOpt:   nn.NewAdam(value, cfg.VLR),
		rng:    stats.NewRNG(cfg.Seed + 0x5bd1e995),
	}
}

// Distribution runs the kernel network over every row of obs and returns the
// masked-softmax action distribution. cache must match Policy's shape;
// scores is scratch of len(obs). Both may be reused across calls.
func (p *PPO) Distribution(obs [][]float64, mask []bool, cache *nn.Cache, scores []float64) []float64 {
	for i, row := range obs {
		if !mask[i] {
			scores[i] = 0
			continue
		}
		scores[i] = p.Policy.Forward(row, cache)[0]
	}
	return nn.MaskedSoftmax(scores[:len(obs)], mask)
}

// ValueOf evaluates the critic on a flattened observation.
func (p *PPO) ValueOf(flat []float64, cache *nn.Cache) float64 {
	return p.Value.Forward(flat, cache)[0]
}

// UpdateStats reports what one Update did.
type UpdateStats struct {
	Steps      int
	PiIters    int
	VIters     int
	KL         float64
	Entropy    float64
	PiLossInit float64
	PiLossLast float64
	VLossInit  float64
	VLossLast  float64
}

// Update performs one PPO epoch over the collected trajectories: GAE
// advantage estimation, normalised advantages, PiIters clipped-surrogate
// policy steps with KL early stopping, and VIters value-regression steps.
func (p *PPO) Update(trajs []Trajectory) UpdateStats {
	var steps []Step
	var advs, rets []float64
	for _, tr := range trajs {
		if len(tr.Steps) == 0 {
			continue
		}
		rewards := make([]float64, len(tr.Steps))
		values := make([]float64, len(tr.Steps))
		for i, s := range tr.Steps {
			rewards[i] = s.Reward
			values[i] = s.Value
		}
		adv, ret := GAE(rewards, values, p.Cfg.Gamma, p.Cfg.Lambda)
		steps = append(steps, tr.Steps...)
		advs = append(advs, adv...)
		rets = append(rets, ret...)
	}
	st := UpdateStats{Steps: len(steps)}
	if len(steps) == 0 {
		return st
	}
	normalize(advs)

	workers := p.Cfg.Workers
	if workers < 1 {
		workers = 1
	}

	// ---- policy updates ----
	if cap(p.idx) < len(steps) {
		p.idx = make([]int, len(steps))
	}
	idx := p.idx[:len(steps)]
	for i := range idx {
		idx[i] = i
	}
	for iter := 0; iter < p.Cfg.PiIters; iter++ {
		batch := p.minibatch(idx)
		loss, kl, ent := p.policyStep(steps, advs, batch, workers)
		if iter == 0 {
			st.PiLossInit = loss
			st.Entropy = ent
		}
		st.PiLossLast = loss
		st.KL = kl
		st.PiIters = iter + 1
		if p.Cfg.TargetKL > 0 && kl > 1.5*p.Cfg.TargetKL {
			break
		}
	}

	// ---- value updates ----
	for iter := 0; iter < p.Cfg.VIters; iter++ {
		batch := p.minibatch(idx)
		loss := p.valueStep(steps, rets, batch, workers)
		if iter == 0 {
			st.VLossInit = loss
		}
		st.VLossLast = loss
		st.VIters = iter + 1
	}
	return st
}

// minibatch returns the sample indices for one update iteration, shuffling
// in place when a minibatch size is configured.
func (p *PPO) minibatch(idx []int) []int {
	mb := p.Cfg.MiniBatch
	if mb <= 0 || mb >= len(idx) {
		return idx
	}
	// partial Fisher-Yates: the first mb entries become a uniform sample
	for i := 0; i < mb; i++ {
		j := i + p.rng.Intn(len(idx)-i)
		idx[i], idx[j] = idx[j], idx[i]
	}
	return idx[:mb]
}

// policyStep computes one clipped-surrogate gradient step over the batch and
// returns (loss, approxKL, entropy). Each worker scores its decisions with
// one ForwardBatch over the selectable rows and backpropagates them with one
// BackwardBatch, instead of a Forward/Backward pair per candidate row; the
// batched kernels' accumulation-order contract keeps the resulting gradients
// bit-identical to the per-row loop at any Workers value.
func (p *PPO) policyStep(steps []Step, advs []float64, batch []int, workers int) (loss, kl, ent float64) {
	scratch := p.piScratches(workers)
	clip := p.Cfg.ClipRatio

	var wg sync.WaitGroup
	chunk := (len(batch) + workers - 1) / workers
	active := 0
	for w := 0; w < workers; w++ {
		lo := w * chunk
		if lo >= len(batch) {
			break
		}
		hi := lo + chunk
		if hi > len(batch) {
			hi = len(batch)
		}
		active++
		wg.Add(1)
		go func(s *piScratch, lo, hi int) {
			defer wg.Done()
			s.g.Zero()
			s.loss, s.kl, s.ent = 0, 0, 0
			for _, si := range batch[lo:hi] {
				p.policyStepOne(s, &steps[si], advs[si], clip)
			}
		}(scratch[w], lo, hi)
	}
	wg.Wait()

	total := p.piTotal
	total.Zero()
	for w := 0; w < active; w++ {
		total.Add(scratch[w].g)
	}
	n := float64(len(batch))
	total.Scale(1 / n)
	p.piOpt.Step(p.Policy, total)
	for w := 0; w < active; w++ {
		loss += scratch[w].loss
		kl += scratch[w].kl
		ent += scratch[w].ent
	}
	return loss / n, kl / n, ent / n
}

// policyStepOne processes one recorded decision: batched forward over the
// selectable rows, surrogate loss, and batched backward of the score
// gradients into s.g.
func (p *PPO) policyStepOne(s *piScratch, st *Step, adv, clip float64) {
	n := len(st.Obs)
	s.ensure(p.Policy, n)

	// gather + score the selectable rows with one batched forward (masked
	// rows score 0 and never reach the backward pass, exactly like the
	// per-row loop); s.bc keeps the forward cache in gather order for the
	// BackwardBatch below.
	probs, k := p.Policy.ScoreMasked(st.Obs, st.Mask, s.bc, s.gather, s.scores[:n], s.probs[:n])
	newLogP := nn.LogProb(probs, st.Action)
	ratio := math.Exp(newLogP - st.LogP)

	// clipped surrogate: L = -min(ratio*A, clip(ratio)*A)
	unclipped := ratio * adv
	clipped := clampF(ratio, 1-clip, 1+clip) * adv
	obj := math.Min(unclipped, clipped)
	s.loss += -obj
	s.kl += st.LogP - newLogP
	s.ent += nn.Entropy(probs)

	// dL/dlogp: zero when the clip branch saturates
	var dlogp float64
	if unclipped <= clipped {
		dlogp = -ratio * adv
	}
	dscore := s.dscore[:n]
	nn.SoftmaxPolicyGrad(probs, st.Mask, st.Action, dlogp, p.Cfg.EntropyCoef, dscore)

	gradOut := s.gradOut
	gradOut.Rows = k
	anyGrad := false
	for j := 0; j < k; j++ {
		d := dscore[s.gather[j]]
		gradOut.Data[j] = d
		anyGrad = anyGrad || d != 0
	}
	if anyGrad {
		p.Policy.BackwardBatch(s.bc, gradOut, s.g)
	}
}

// valueStep computes one mean-squared-error regression step for the critic
// and returns the loss. Each worker assembles its share of the minibatch
// into valueBatchRows-row blocks and runs one ForwardBatch+BackwardBatch per
// block; gradients and loss are bit-identical to the per-row loop.
func (p *PPO) valueStep(steps []Step, rets []float64, batch []int, workers int) float64 {
	scratch := p.vScratches(workers)

	var wg sync.WaitGroup
	chunk := (len(batch) + workers - 1) / workers
	active := 0
	for w := 0; w < workers; w++ {
		lo := w * chunk
		if lo >= len(batch) {
			break
		}
		hi := lo + chunk
		if hi > len(batch) {
			hi = len(batch)
		}
		active++
		wg.Add(1)
		go func(s *vScratch, lo, hi int) {
			defer wg.Done()
			s.g.Zero()
			s.loss = 0
			flatDim := p.Value.Sizes[0]
			for start := lo; start < hi; start += valueBatchRows {
				end := start + valueBatchRows
				if end > hi {
					end = hi
				}
				nb := end - start
				in := s.bc.Input(nb)
				for r, si := range batch[start:end] {
					if len(steps[si].FlatObs) != flatDim {
						panic("ppo: step FlatObs width does not match the value network")
					}
					copy(in.Row(r), steps[si].FlatObs)
				}
				out := p.Value.ForwardBatch(in, s.bc)
				gradOut := s.gradOut
				gradOut.Rows = nb
				for r, si := range batch[start:end] {
					diff := out.At(r, 0) - rets[si]
					s.loss += diff * diff
					gradOut.Data[r] = 2 * diff
				}
				p.Value.BackwardBatch(s.bc, gradOut, s.g)
			}
		}(scratch[w], lo, hi)
	}
	wg.Wait()

	total := p.vTotal
	total.Zero()
	for w := 0; w < active; w++ {
		total.Add(scratch[w].g)
	}
	n := float64(len(batch))
	total.Scale(1 / n)
	p.vOpt.Step(p.Value, total)
	var loss float64
	for w := 0; w < active; w++ {
		loss += scratch[w].loss
	}
	return loss / n
}

// GAE computes generalised advantage estimates and discounted rewards-to-go
// for one episode (terminal value 0).
func GAE(rewards, values []float64, gamma, lambda float64) (adv, ret []float64) {
	n := len(rewards)
	adv = make([]float64, n)
	ret = make([]float64, n)
	var lastAdv, lastRet float64
	for t := n - 1; t >= 0; t-- {
		var nextV float64
		if t+1 < n {
			nextV = values[t+1]
		}
		delta := rewards[t] + gamma*nextV - values[t]
		lastAdv = delta + gamma*lambda*lastAdv
		adv[t] = lastAdv
		lastRet = rewards[t] + gamma*lastRet
		ret[t] = lastRet
	}
	return adv, ret
}

// normalize shifts and scales xs to zero mean and unit variance in place
// (no-op for constant inputs).
func normalize(xs []float64) {
	if len(xs) == 0 {
		return
	}
	m := stats.Mean(xs)
	var sq float64
	for _, x := range xs {
		d := x - m
		sq += d * d
	}
	sd := math.Sqrt(sq / float64(len(xs)))
	if sd < 1e-12 {
		for i := range xs {
			xs[i] = 0
		}
		return
	}
	for i := range xs {
		xs[i] = (xs[i] - m) / sd
	}
}

func clampF(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
