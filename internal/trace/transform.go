package trace

import (
	"fmt"
	"math"
	"sort"
)

// The transforms in this file are the standard workload-manipulation
// operations of trace-driven scheduling studies (cf. the Parallel Workloads
// Archive guidelines): scaling offered load, filtering, and merging. All
// return new traces and leave their inputs untouched.

// ScaleLoad multiplies the offered load by `factor` by dividing every
// inter-arrival gap by it (factor > 1 compresses arrivals = more load). Job
// shapes are unchanged. It panics if factor <= 0.
func ScaleLoad(t *Trace, factor float64) *Trace {
	if factor <= 0 {
		panic(fmt.Sprintf("trace: ScaleLoad factor %v", factor))
	}
	c := t.Clone()
	if len(c.Jobs) == 0 {
		return c
	}
	var acc float64
	var prevOrig int64 = c.Jobs[0].Submit
	base := c.Jobs[0].Submit
	c.Jobs[0].Submit = base
	for i := 1; i < len(c.Jobs); i++ {
		gap := float64(c.Jobs[i].Submit - prevOrig)
		prevOrig = c.Jobs[i].Submit
		acc += gap / factor
		c.Jobs[i].Submit = base + int64(math.Round(acc))
	}
	return c
}

// Filter returns the jobs for which keep returns true (submit times are NOT
// rebased; use Rebase if needed).
func Filter(t *Trace, keep func(*Job) bool) *Trace {
	c := &Trace{Name: t.Name, Procs: t.Procs, Mem: t.Mem}
	for _, j := range t.Jobs {
		if keep(j) {
			c.Jobs = append(c.Jobs, j.Clone())
		}
	}
	return c
}

// Rebase shifts submit times so the first job arrives at 0.
func Rebase(t *Trace) *Trace {
	c := t.Clone()
	rebase(c.Jobs)
	return c
}

// Merge interleaves several traces by submission time onto one machine of
// the given size, renumbering job IDs to stay unique. Jobs wider than the
// target machine are rejected with an error.
func Merge(procs int, traces ...*Trace) (*Trace, error) {
	out := &Trace{Name: "merged", Procs: procs}
	for _, t := range traces {
		for _, j := range t.Jobs {
			if j.Procs > procs {
				return nil, fmt.Errorf("trace: job %d of %s needs %d procs > merged machine %d",
					j.ID, t.Name, j.Procs, procs)
			}
			out.Jobs = append(out.Jobs, j.Clone())
		}
	}
	sort.SliceStable(out.Jobs, func(a, b int) bool {
		return out.Jobs[a].Submit < out.Jobs[b].Submit
	})
	for i, j := range out.Jobs {
		j.ID = i + 1
	}
	rebase(out.Jobs)
	return out, nil
}

// WithRequestFactor returns a copy where every request time is
// actual*factor (rounded, floored at the actual runtime) — a synthetic
// estimate used to study over-estimation sensitivity when a trace lacks
// user-provided requests.
func WithRequestFactor(t *Trace, factor float64) *Trace {
	if factor < 1 {
		factor = 1
	}
	c := t.Clone()
	for _, j := range c.Jobs {
		j.Request = int64(math.Round(float64(j.Runtime) * factor))
		if j.Request < j.Runtime {
			j.Request = j.Runtime
		}
		if j.Request < 1 {
			j.Request = 1
		}
	}
	return c
}
