// Package trace provides the batch-job model, Standard Workload Format (SWF)
// parsing and writing, workload statistics, job-sequence sampling, and
// statistical surrogate generators for the archive traces the paper evaluates
// on (SDSC-SP2, HPC2N).
package trace

import "fmt"

// Job is one batch job, following the Standard Workload Format field naming
// (Table 1 of the paper; Feitelson et al., "Experience with using the
// Parallel Workloads Archive"). Times are in seconds.
type Job struct {
	// ID is the job number (1-based in SWF files).
	ID int
	// Submit is the submission time relative to the trace start (s_t).
	Submit int64
	// Runtime is the actual runtime observed after execution (AR).
	Runtime int64
	// Request is the user-provided runtime estimate / wall time (r_t).
	// Schedulers kill jobs that exceed it, so users overestimate.
	Request int64
	// Procs is the number of requested processors (n_t).
	Procs int
	// Mem is the total requested memory in abstract capacity units (the SWF
	// requested-memory column times the processor count). Zero means the job
	// carries no memory demand; scheduling treats the memory dimension as
	// absent unless the trace declares a machine capacity (Trace.Mem > 0).
	Mem int
	// Priority is the job's priority tier; higher values are more urgent.
	// Zero is the default tier, so priority-free traces are all-zero and
	// scheduling under them is identical to the priority-unaware code path.
	Priority int
	// User, Group and Executable are optional SWF identity fields, kept so
	// that parsed traces round-trip; they do not influence scheduling.
	User, Group, Executable int
	// Queue and Partition are optional SWF fields.
	Queue, Partition int
	// Status is the SWF completion status (1 = completed). Synthetic jobs
	// use 1.
	Status int
}

// Validate reports whether the job has the minimal attributes scheduling
// requires.
func (j *Job) Validate() error {
	if j.Procs <= 0 {
		return fmt.Errorf("trace: job %d has non-positive processor count %d", j.ID, j.Procs)
	}
	if j.Runtime < 0 {
		return fmt.Errorf("trace: job %d has negative runtime %d", j.ID, j.Runtime)
	}
	if j.Request <= 0 {
		return fmt.Errorf("trace: job %d has non-positive request time %d", j.ID, j.Request)
	}
	if j.Submit < 0 {
		return fmt.Errorf("trace: job %d has negative submit time %d", j.ID, j.Submit)
	}
	if j.Mem < 0 {
		return fmt.Errorf("trace: job %d has negative memory request %d", j.ID, j.Mem)
	}
	if j.Priority < 0 {
		return fmt.Errorf("trace: job %d has negative priority %d", j.ID, j.Priority)
	}
	return nil
}

// Clone returns a copy of the job.
func (j *Job) Clone() *Job {
	c := *j
	return &c
}

// Trace is an ordered collection of jobs plus the size of the machine that
// produced (or should run) them.
type Trace struct {
	// Name identifies the workload (e.g. "SDSC-SP2").
	Name string
	// Procs is the total number of processors in the cluster.
	Procs int
	// Mem is the total machine memory in the same abstract units as Job.Mem.
	// Zero disables the memory dimension: jobs may still carry Mem values
	// (e.g. parsed from an SWF file), but no scheduler constrains on them.
	Mem int
	// Jobs are sorted by non-decreasing submit time.
	Jobs []*Job
}

// Len returns the number of jobs.
func (t *Trace) Len() int { return len(t.Jobs) }

// Clone deep-copies the trace.
func (t *Trace) Clone() *Trace {
	c := &Trace{Name: t.Name, Procs: t.Procs, Mem: t.Mem, Jobs: make([]*Job, len(t.Jobs))}
	for i, j := range t.Jobs {
		c.Jobs[i] = j.Clone()
	}
	return c
}

// Validate checks every job and the trace-level invariants (sorted submits,
// jobs fit the machine).
func (t *Trace) Validate() error {
	if t.Procs <= 0 {
		return fmt.Errorf("trace: %q has non-positive machine size %d", t.Name, t.Procs)
	}
	var prev int64
	for i, j := range t.Jobs {
		if err := j.Validate(); err != nil {
			return err
		}
		if j.Procs > t.Procs {
			return fmt.Errorf("trace: job %d requests %d procs > machine size %d", j.ID, j.Procs, t.Procs)
		}
		if t.Mem > 0 && j.Mem > t.Mem {
			return fmt.Errorf("trace: job %d requests %d mem > machine capacity %d", j.ID, j.Mem, t.Mem)
		}
		if j.Submit < prev {
			return fmt.Errorf("trace: job at index %d submitted at %d before previous %d", i, j.Submit, prev)
		}
		prev = j.Submit
	}
	return nil
}

// Head returns a trace containing the first n jobs (or all of them if the
// trace is shorter), sharing job pointers with the original.
func (t *Trace) Head(n int) *Trace {
	if n > len(t.Jobs) {
		n = len(t.Jobs)
	}
	return &Trace{Name: t.Name, Procs: t.Procs, Mem: t.Mem, Jobs: t.Jobs[:n]}
}
