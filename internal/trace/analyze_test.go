package trace

import (
	"math"
	"strings"
	"testing"
)

func TestAnalyzeBasics(t *testing.T) {
	tr := SyntheticSDSCSP2(3000, 5)
	a := Analyze(tr)
	if a.Stats.Jobs != 3000 {
		t.Fatalf("jobs = %d", a.Stats.Jobs)
	}
	if a.Runtime.Mean <= 0 || a.Request.Mean < a.Runtime.Mean {
		t.Fatalf("runtime/request means inconsistent: %v vs %v", a.Runtime.Mean, a.Request.Mean)
	}
	if a.SerialF <= 0 || a.SerialF >= 1 {
		t.Fatalf("serial fraction %v implausible", a.SerialF)
	}
	if a.Pow2F < a.SerialF {
		t.Fatal("power-of-two fraction must include serial jobs")
	}
	if a.Users <= 1 {
		t.Fatalf("users = %d", a.Users)
	}
	if a.OfferedLoad <= 0 || a.OfferedLoad > 1.5 {
		t.Fatalf("offered load %v implausible", a.OfferedLoad)
	}
	// the surrogate arrivals are much burstier than Poisson
	if a.BurstinessCV < 1.1 {
		t.Fatalf("burstiness CV %v; surrogate should exceed Poisson (1.0)", a.BurstinessCV)
	}
	var hourSum float64
	for _, h := range a.HourlyArrivals {
		hourSum += h
	}
	if math.Abs(hourSum-1) > 1e-9 {
		t.Fatalf("hourly fractions sum to %v", hourSum)
	}
	s := a.String()
	for _, want := range []string{"runtime", "arrivals", "users", "load"} {
		if !strings.Contains(s, want) {
			t.Fatalf("analysis report missing %q", want)
		}
	}
}

func TestAnalyzeEmpty(t *testing.T) {
	a := Analyze(&Trace{Name: "e", Procs: 4})
	if a.Stats.Jobs != 0 || a.OfferedLoad != 0 {
		t.Fatalf("empty analysis: %+v", a.Stats)
	}
}

func TestUtilizationTimeline(t *testing.T) {
	// one job using the full machine for [0, 100), then idle until 200
	se := [][3]int64{{0, 100, 4}}
	tl := UtilizationTimeline(se, 4, 4)
	if len(tl) != 4 {
		t.Fatalf("timeline has %d buckets", len(tl))
	}
	if tl[0] != 1 || tl[1] != 1 {
		t.Fatalf("busy phase wrong: %v", tl)
	}
	se = append(se, [3]int64{100, 200, 2})
	tl = UtilizationTimeline(se, 4, 4)
	if tl[2] != 0.5 || tl[3] != 0.5 {
		t.Fatalf("half-busy phase wrong: %v", tl)
	}
}

func TestUtilizationTimelineEdgeCases(t *testing.T) {
	if UtilizationTimeline(nil, 4, 4) != nil {
		t.Fatal("empty input should yield nil")
	}
	if UtilizationTimeline([][3]int64{{0, 0, 2}}, 4, 4) != nil {
		t.Fatal("zero-span input should yield nil")
	}
}

func TestScaleLoadCompressesArrivals(t *testing.T) {
	tr := SyntheticSDSCSP2(500, 9)
	twice := ScaleLoad(tr, 2)
	orig := ComputeStats(tr).MeanInterarrival
	scaled := ComputeStats(twice).MeanInterarrival
	if math.Abs(scaled-orig/2) > orig*0.02 {
		t.Fatalf("scaled interarrival %v, want ~%v", scaled, orig/2)
	}
	// shapes untouched
	for i := range tr.Jobs {
		if twice.Jobs[i].Runtime != tr.Jobs[i].Runtime || twice.Jobs[i].Procs != tr.Jobs[i].Procs {
			t.Fatal("ScaleLoad changed job shapes")
		}
	}
	if err := twice.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestScaleLoadPanicsOnBadFactor(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ScaleLoad(0) did not panic")
		}
	}()
	ScaleLoad(SyntheticSDSCSP2(10, 1), 0)
}

func TestFilterAndRebase(t *testing.T) {
	tr := SyntheticSDSCSP2(200, 3)
	wide := Filter(tr, func(j *Job) bool { return j.Procs >= 8 })
	for _, j := range wide.Jobs {
		if j.Procs < 8 {
			t.Fatal("Filter kept a narrow job")
		}
	}
	if wide.Len() == 0 || wide.Len() == tr.Len() {
		t.Fatalf("filter had no effect: %d of %d", wide.Len(), tr.Len())
	}
	rb := Rebase(wide)
	if rb.Jobs[0].Submit != 0 {
		t.Fatal("Rebase did not zero the first submit")
	}
}

func TestMerge(t *testing.T) {
	a := SyntheticSDSCSP2(100, 1)
	b := SyntheticHPC2N(100, 2)
	m, err := Merge(256, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if m.Len() != 200 {
		t.Fatalf("merged %d jobs", m.Len())
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	ids := map[int]bool{}
	for _, j := range m.Jobs {
		if ids[j.ID] {
			t.Fatal("duplicate IDs after merge")
		}
		ids[j.ID] = true
	}
	// merging onto a too-small machine fails
	if _, err := Merge(2, a); err == nil {
		t.Fatal("merge onto tiny machine accepted")
	}
}

func TestWithRequestFactor(t *testing.T) {
	tr := SyntheticSDSCSP2(100, 4)
	doubled := WithRequestFactor(tr, 2)
	for i, j := range doubled.Jobs {
		orig := tr.Jobs[i]
		if j.Request < orig.Runtime {
			t.Fatal("request fell below runtime")
		}
		want := int64(math.Round(float64(orig.Runtime) * 2))
		if j.Request != want && j.Request != orig.Runtime {
			t.Fatalf("request %d, want %d", j.Request, want)
		}
	}
	// factor < 1 clamps to 1
	same := WithRequestFactor(tr, 0.5)
	for i, j := range same.Jobs {
		if j.Request != tr.Jobs[i].Runtime {
			t.Fatal("factor < 1 should clamp request to runtime")
		}
	}
}
