package trace

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/stats"
)

func TestJobValidate(t *testing.T) {
	good := &Job{ID: 1, Submit: 0, Runtime: 10, Request: 20, Procs: 4}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid job rejected: %v", err)
	}
	cases := []*Job{
		{ID: 2, Runtime: 10, Request: 20, Procs: 0},
		{ID: 3, Runtime: -1, Request: 20, Procs: 1},
		{ID: 4, Runtime: 10, Request: 0, Procs: 1},
		{ID: 5, Submit: -1, Runtime: 10, Request: 20, Procs: 1},
	}
	for _, j := range cases {
		if err := j.Validate(); err == nil {
			t.Fatalf("invalid job %d accepted", j.ID)
		}
	}
}

func TestTraceValidate(t *testing.T) {
	tr := &Trace{Name: "x", Procs: 8, Jobs: []*Job{
		{ID: 1, Submit: 0, Runtime: 5, Request: 5, Procs: 4},
		{ID: 2, Submit: 10, Runtime: 5, Request: 5, Procs: 8},
	}}
	if err := tr.Validate(); err != nil {
		t.Fatalf("valid trace rejected: %v", err)
	}
	tr.Jobs[1].Procs = 9
	if err := tr.Validate(); err == nil {
		t.Fatal("oversized job accepted")
	}
	tr.Jobs[1].Procs = 8
	tr.Jobs[1].Submit = -5
	if err := tr.Validate(); err == nil {
		t.Fatal("out-of-order submits accepted")
	}
}

func TestCloneIndependence(t *testing.T) {
	tr := &Trace{Name: "x", Procs: 8, Jobs: []*Job{{ID: 1, Runtime: 5, Request: 5, Procs: 1}}}
	c := tr.Clone()
	c.Jobs[0].Runtime = 99
	if tr.Jobs[0].Runtime != 5 {
		t.Fatal("Clone shares job storage")
	}
}

func TestHead(t *testing.T) {
	tr := SyntheticSDSCSP2(100, 1)
	h := tr.Head(10)
	if h.Len() != 10 {
		t.Fatalf("Head(10) has %d jobs", h.Len())
	}
	if h2 := tr.Head(1000); h2.Len() != 100 {
		t.Fatalf("Head(1000) has %d jobs", h2.Len())
	}
}

const sampleSWF = `; Trace: test
; MaxProcs: 64
; UnixStartTime: 0
1 100 5 360 4 -1 -1 4 600 -1 1 7 3 2 1 1 -1 -1
2 160 0 10 1 -1 -1 1 100 -1 1 8 3 2 1 1 -1 -1
3 200 0 -1 2 -1 -1 2 100 -1 0 8 3 2 1 1 -1 -1
4 300 0 50 -1 -1 -1 8 -1 -1 1 9 3 2 1 1 -1 -1
`

func TestParseSWF(t *testing.T) {
	tr, err := ParseSWF(strings.NewReader(sampleSWF), "test")
	if err != nil {
		t.Fatal(err)
	}
	if tr.Procs != 64 {
		t.Fatalf("MaxProcs = %d, want 64", tr.Procs)
	}
	// job 3 has runtime -1 and must be filtered
	if len(tr.Jobs) != 3 {
		t.Fatalf("parsed %d jobs, want 3", len(tr.Jobs))
	}
	j := tr.Jobs[0]
	if j.ID != 1 || j.Submit != 0 || j.Runtime != 360 || j.Request != 600 || j.Procs != 4 {
		t.Fatalf("job 1 parsed as %+v", j)
	}
	// submit rebased: job 2 at 160-100=60
	if tr.Jobs[1].Submit != 60 {
		t.Fatalf("job 2 submit = %d, want 60", tr.Jobs[1].Submit)
	}
	// job 4: request <= 0 falls back to runtime
	j4 := tr.Jobs[2]
	if j4.Request != 50 || j4.Procs != 8 {
		t.Fatalf("job 4 parsed as %+v", j4)
	}
}

func TestParseSWFBadLine(t *testing.T) {
	if _, err := ParseSWF(strings.NewReader("1 2 3\n"), "bad"); err == nil {
		t.Fatal("short line accepted")
	}
	if _, err := ParseSWF(strings.NewReader("1 x 3 4 5 6 7 8 9 10\n"), "bad"); err == nil {
		t.Fatal("non-numeric field accepted")
	}
}

func TestParseSWFNoHeaderDerivesProcs(t *testing.T) {
	tr, err := ParseSWF(strings.NewReader("1 0 0 10 4 -1 -1 16 20 -1 1 1 1 1 1 1 -1 -1\n"), "x")
	if err != nil {
		t.Fatal(err)
	}
	if tr.Procs != 16 {
		t.Fatalf("derived procs = %d, want 16", tr.Procs)
	}
}

func TestSWFRoundTrip(t *testing.T) {
	rng := stats.NewRNG(5)
	f := func(n uint8) bool {
		m := int(n%40) + 1
		orig := &Trace{Name: "rt", Procs: 256}
		var submit int64
		for i := 0; i < m; i++ {
			submit += rng.Int63n(1000)
			run := rng.Int63n(5000) + 1
			orig.Jobs = append(orig.Jobs, &Job{
				ID: i + 1, Submit: submit, Runtime: run,
				Request: run + rng.Int63n(5000), Procs: rng.Intn(256) + 1,
				User: rng.Intn(50), Group: rng.Intn(5), Executable: rng.Intn(20),
				Queue: 1, Partition: 1, Status: 1,
			})
		}
		rebase(orig.Jobs)
		var sb strings.Builder
		if err := WriteSWF(&sb, orig); err != nil {
			return false
		}
		got, err := ParseSWF(strings.NewReader(sb.String()), "rt")
		if err != nil {
			return false
		}
		if got.Procs != orig.Procs || len(got.Jobs) != len(orig.Jobs) {
			return false
		}
		for i, j := range got.Jobs {
			o := orig.Jobs[i]
			if j.ID != o.ID || j.Submit != o.Submit || j.Runtime != o.Runtime ||
				j.Request != o.Request || j.Procs != o.Procs {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestSyntheticSDSCSP2MatchesTable2(t *testing.T) {
	tr := SyntheticSDSCSP2(10000, 42)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	s := ComputeStats(tr)
	checkWithin(t, "size", float64(s.Procs), 128, 0)
	checkWithin(t, "it", s.MeanInterarrival, 1055, 0.08)
	checkWithin(t, "rt", s.MeanRequest, 6687, 0.08)
	checkWithin(t, "nt", s.MeanProcs, 11, 0.30)
	if s.MeanOverestimate < 1.3 {
		t.Fatalf("mean overestimation factor %.2f too small to be realistic", s.MeanOverestimate)
	}
}

func TestSyntheticHPC2NMatchesTable2(t *testing.T) {
	tr := SyntheticHPC2N(10000, 42)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	s := ComputeStats(tr)
	checkWithin(t, "size", float64(s.Procs), 240, 0)
	checkWithin(t, "it", s.MeanInterarrival, 538, 0.08)
	checkWithin(t, "rt", s.MeanRequest, 17024, 0.08)
	checkWithin(t, "nt", s.MeanProcs, 6, 0.35)
}

func checkWithin(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if tol == 0 {
		if got != want {
			t.Fatalf("%s = %v, want %v", name, got, want)
		}
		return
	}
	if math.Abs(got-want) > tol*want {
		t.Fatalf("%s = %v, want %v (±%.0f%%)", name, got, want, tol*100)
	}
}

func TestSyntheticDeterminism(t *testing.T) {
	a := SyntheticSDSCSP2(500, 7)
	b := SyntheticSDSCSP2(500, 7)
	for i := range a.Jobs {
		if *a.Jobs[i] != *b.Jobs[i] {
			t.Fatalf("job %d differs between identical seeds", i)
		}
	}
	c := SyntheticSDSCSP2(500, 8)
	same := 0
	for i := range a.Jobs {
		if a.Jobs[i].Runtime == c.Jobs[i].Runtime {
			same++
		}
	}
	if same == len(a.Jobs) {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestSyntheticRequestGEQRuntime(t *testing.T) {
	tr := SyntheticHPC2N(5000, 3)
	for _, j := range tr.Jobs {
		if j.Request < j.Runtime {
			t.Fatalf("job %d: request %d < runtime %d", j.ID, j.Request, j.Runtime)
		}
	}
}

func TestSampleSequence(t *testing.T) {
	tr := SyntheticSDSCSP2(1000, 1)
	rng := stats.NewRNG(2)
	s := SampleSequence(tr, rng, 100)
	if s.Len() != 100 {
		t.Fatalf("sample has %d jobs", s.Len())
	}
	if s.Jobs[0].Submit != 0 {
		t.Fatalf("sample not rebased: first submit %d", s.Jobs[0].Submit)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	// mutation must not touch the source
	s.Jobs[0].Runtime = 123456789
	for _, j := range tr.Jobs {
		if j.Runtime == 123456789 {
			t.Fatal("sample shares storage with source trace")
		}
	}
}

func TestSampleSequenceWholeTrace(t *testing.T) {
	tr := SyntheticSDSCSP2(50, 1)
	s := SampleSequence(tr, stats.NewRNG(1), 500)
	if s.Len() != 50 {
		t.Fatalf("whole-trace sample has %d jobs", s.Len())
	}
}

func TestSplit(t *testing.T) {
	tr := SyntheticSDSCSP2(100, 1)
	train, test := Split(tr, 0.8)
	if train.Len() != 80 || test.Len() != 20 {
		t.Fatalf("split sizes %d/%d", train.Len(), test.Len())
	}
	if test.Jobs[0].Submit != 0 {
		t.Fatal("test half not rebased")
	}
}

func TestSliceBounds(t *testing.T) {
	tr := SyntheticSDSCSP2(10, 1)
	s := Slice(tr, -5, 3)
	if s.Len() != 3 {
		t.Fatalf("Slice(-5,3) has %d jobs", s.Len())
	}
	s = Slice(tr, 8, 10)
	if s.Len() != 2 {
		t.Fatalf("Slice(8,10) has %d jobs", s.Len())
	}
}

func TestComputeStatsEmpty(t *testing.T) {
	s := ComputeStats(&Trace{Name: "empty", Procs: 4})
	if s.Jobs != 0 || s.MeanProcs != 0 {
		t.Fatalf("unexpected stats for empty trace: %+v", s)
	}
	_ = s.String()
}
