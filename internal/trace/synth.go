package trace

import (
	"math"

	"repro/internal/stats"
)

// SynthSpec parameterises the statistical surrogate generator used in place
// of the Parallel Workloads Archive files (which cannot be fetched in an
// offline build). The generator reproduces the aggregate characteristics the
// paper reports in Table 2 — machine size, mean inter-arrival time, mean
// requested runtime and mean requested processors — together with the
// qualitative properties backfilling depends on: heavy-tailed runtimes,
// power-of-two-biased job sizes, a diurnal arrival cycle, and user
// over-estimation of wall time.
type SynthSpec struct {
	Name  string
	Procs int // machine size

	MeanInterarrival float64 // target mean seconds between submissions
	MeanRequest      float64 // target mean requested time (seconds)

	// Job-size model: with probability PSerial the job is serial; otherwise
	// log2(size) follows a two-stage uniform distribution over
	// [LogLo, LogMed, LogHi] with first-stage probability LogProb, and with
	// probability PPow2 the size is rounded to a power of two.
	PSerial, PPow2                float64
	LogLo, LogMed, LogHi, LogProb float64

	// Runtime model: runtimes are lognormal shapes (sigma = RunSigma),
	// rescaled so that the mean *request* time matches MeanRequest. The
	// request factor is 1 + Exponential(OverMean-1), i.e. users overestimate
	// by OverMean on average (Mu'alem & Feitelson report large, skewed
	// overestimation on the SP2 traces).
	RunSigma float64
	OverMean float64

	// MaxRequest caps requested time (seconds); typical queue limit.
	MaxRequest int64

	// Diurnal arrival cycle: the instantaneous arrival rate is modulated by
	// 1 + DiurnalAmp*sin(2*pi*(t-peak)/day), peaking mid-afternoon.
	DiurnalAmp float64

	// ArrivalShape is the gamma shape of the inter-arrival gaps (1 =
	// exponential/Poisson). Archive traces are far burstier than Poisson —
	// shapes well below 1 produce the submission bursts and deep queues that
	// give real traces their high bounded slowdowns.
	ArrivalShape float64

	// Users is the size of the synthetic user population.
	Users int
}

// SDSCSP2Spec returns the surrogate parameters for the SDSC-SP2 trace
// (Table 2: size 128, it 1055 s, rt 6687 s, nt 11).
func SDSCSP2Spec() SynthSpec {
	return SynthSpec{
		Name:             "SDSC-SP2",
		Procs:            128,
		MeanInterarrival: 1055,
		MeanRequest:      6687,
		PSerial:          0.25,
		PPow2:            0.65,
		LogLo:            0.5,
		LogMed:           3.0,
		LogHi:            7.0,
		LogProb:          0.75,
		RunSigma:         1.7,
		OverMean:         2.2,
		MaxRequest:       5 * 24 * 3600,
		DiurnalAmp:       0.5,
		ArrivalShape:     0.28,
		Users:            100,
	}
}

// HPC2NSpec returns the surrogate parameters for the HPC2N trace
// (Table 2: size 240, it 538 s, rt 17024 s, nt 6).
func HPC2NSpec() SynthSpec {
	return SynthSpec{
		Name:             "HPC2N",
		Procs:            240,
		MeanInterarrival: 538,
		MeanRequest:      17024,
		PSerial:          0.35,
		PPow2:            0.55,
		LogLo:            0.0,
		LogMed:           1.8,
		LogHi:            7.9,
		LogProb:          0.85,
		RunSigma:         2.0,
		OverMean:         4.0,
		MaxRequest:       10 * 24 * 3600,
		DiurnalAmp:       0.6,
		ArrivalShape:     0.30,
		Users:            200,
	}
}

// Generate produces n jobs according to the spec, deterministically for a
// given seed.
func (s SynthSpec) Generate(n int, seed uint64) *Trace {
	t := &Trace{Name: s.Name, Procs: s.Procs}
	if n > 0 {
		t.Jobs = make([]*Job, 0, n)
		_ = s.Stream(n, seed, func(j *Job) error {
			t.Jobs = append(t.Jobs, j)
			return nil
		})
	}
	return t
}

// Stream produces the same n jobs Generate does — same RNG consumption
// order, hence byte-identical jobs — handing each one to yield as it is
// built instead of materializing a job slice (see lublin.Params.Stream for
// the rationale: the global rescale passes keep one scalar per job, the job
// structs themselves never accumulate). Stream stops and returns the first
// error yield reports.
func (s SynthSpec) Stream(n int, seed uint64, yield func(*Job) error) error {
	rng := stats.NewRNG(seed)
	if n <= 0 {
		return nil
	}

	procs := make([]int, n)
	for i := range procs {
		procs[i] = s.sampleProcs(rng)
	}

	// Raw runtime shapes and per-job overestimation factors; rescaled below
	// so the mean request hits the Table 2 target.
	runShape := make([]float64, n)
	overF := make([]float64, n)
	cap4sigma := math.Exp(4 * s.RunSigma) // clamp the lognormal tail
	var reqSum float64
	for i := range runShape {
		v := rng.LogNormal(0, s.RunSigma)
		if v > cap4sigma {
			v = cap4sigma
		}
		runShape[i] = v
		// Users overestimate short jobs wildly (a crashed job requested for
		// hours) but request long jobs accurately (queue limits force it) —
		// the pattern Mu'alem & Feitelson report. Damping the factor by the
		// runtime shape keeps the per-job ratio mean high while letting the
		// aggregate actual load approach the requested load.
		f := 1 + rng.Exponential(math.Max(s.OverMean-1, 0.01))/(1+math.Log1p(v))
		overF[i] = f
		reqSum += v * f
	}
	scale := s.MeanRequest * float64(n) / reqSum
	// The MaxRequest cap truncates the distribution's tail, pulling the mean
	// below the target; compensate by iterating the scale against the capped
	// mean (a fixed point is reached within a few rounds).
	for iter := 0; iter < 8; iter++ {
		var capped float64
		for i := range runShape {
			v := runShape[i] * overF[i] * scale
			if v > float64(s.MaxRequest) {
				v = float64(s.MaxRequest)
			}
			capped += v
		}
		cappedMean := capped / float64(n)
		if math.Abs(cappedMean-s.MeanRequest) < 0.001*s.MeanRequest {
			break
		}
		scale *= s.MeanRequest / cappedMean
	}

	// Inter-arrival gaps with a diurnal cycle, rescaled to the target mean.
	gaps := make([]float64, n)
	var gapSum float64
	tNow := 0.0
	for i := range gaps {
		w := 1 + s.DiurnalAmp*math.Sin(2*math.Pi*(math.Mod(tNow, 86400)-14*3600)/86400)
		if w < 0.1 {
			w = 0.1
		}
		shape := s.ArrivalShape
		if shape <= 0 || shape >= 1 {
			shape = 1
		}
		// Gamma with mean MeanInterarrival/w; shape < 1 concentrates mass
		// near zero (bursts) with a heavy tail (lulls).
		g := rng.Gamma(shape, s.MeanInterarrival/(w*shape))
		gaps[i] = g
		gapSum += g
		tNow += g
	}
	gapScale := s.MeanInterarrival * float64(n) / gapSum

	var submit float64
	for i := 0; i < n; i++ {
		if i > 0 {
			submit += gaps[i] * gapScale
		}
		run := int64(math.Max(1, math.Round(runShape[i]*scale)))
		req := int64(math.Round(runShape[i] * overF[i] * scale))
		if req < run {
			req = run
		}
		if req > s.MaxRequest {
			req = s.MaxRequest
			if run > req {
				run = req
			}
		}
		j := &Job{
			ID:      i + 1,
			Submit:  int64(submit),
			Runtime: run,
			Request: req,
			Procs:   procs[i],
			User:    1 + rng.Intn(maxInt(s.Users, 1)),
			Status:  1,
		}
		if err := yield(j); err != nil {
			return err
		}
	}
	return nil
}

func (s SynthSpec) sampleProcs(rng *stats.RNG) int {
	if rng.Bool(s.PSerial) {
		return 1
	}
	l := rng.TwoStageUniform(s.LogLo, s.LogMed, s.LogHi, s.LogProb)
	var p int
	if rng.Bool(s.PPow2) {
		p = 1 << int(math.Round(l))
	} else {
		p = int(math.Round(math.Pow(2, l)))
	}
	if p < 1 {
		p = 1
	}
	if p > s.Procs {
		p = s.Procs
	}
	return p
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// SyntheticSDSCSP2 generates an n-job SDSC-SP2 surrogate trace.
func SyntheticSDSCSP2(n int, seed uint64) *Trace { return SDSCSP2Spec().Generate(n, seed) }

// SyntheticHPC2N generates an n-job HPC2N surrogate trace.
func SyntheticHPC2N(n int, seed uint64) *Trace { return HPC2NSpec().Generate(n, seed) }
