package trace

import (
	"fmt"
	"math"

	"repro/internal/stats"
)

// Memory-distribution names accepted by EnrichSpec.MemDist / tracegen's
// -mem-dist flag.
const (
	MemDistNone    = "none"
	MemDistProp    = "prop"    // proportional to procs with lognormal noise
	MemDistUniform = "uniform" // uniform fraction of the machine
)

// DefaultMemPerProc is the machine memory per processor, in the same
// abstract units as Job.Mem, used when an enrichment spec does not override
// it. 4096 reads naturally as "4 GB per core in MB units" but nothing
// downstream depends on the unit.
const DefaultMemPerProc = 4096

// EnrichSpec parameterises the scenario enrichment transform that upgrades a
// classic procs-only trace into a multi-resource, priority-tiered one. The
// zero value is a no-op (memory off, priorities off).
type EnrichSpec struct {
	// MemDist selects the per-job memory model; see the MemDist* constants.
	// "" is equivalent to MemDistNone.
	MemDist string
	// MemPerProc sets the machine capacity to Procs*MemPerProc units;
	// DefaultMemPerProc when zero.
	MemPerProc int
	// PriorityTiers is the number of priority tiers (0..Tiers-1). Tiers are
	// drawn with geometric weights so that each higher tier is roughly half
	// as common as the one below — urgent jobs are rare, as in production
	// queues. Values <= 1 leave every job at tier 0.
	PriorityTiers int
	// Seed drives the deterministic draws; the same trace, spec and seed
	// always produce the same enrichment.
	Seed uint64
}

// Enabled reports whether the spec changes anything.
func (s EnrichSpec) Enabled() bool {
	return (s.MemDist != "" && s.MemDist != MemDistNone) || s.PriorityTiers > 1
}

// Validate rejects unknown distribution names before any work happens.
func (s EnrichSpec) Validate() error {
	switch s.MemDist {
	case "", MemDistNone, MemDistProp, MemDistUniform:
		return nil
	}
	return fmt.Errorf("trace: unknown memory distribution %q", s.MemDist)
}

// Enrich returns a clone of t with per-job memory requests and priority
// tiers assigned according to the spec. The clone's name gains a "+sc"
// suffix so enriched surrogates are cached and estimated separately from
// their classic counterparts. A disabled spec still clones but changes
// nothing (including the name).
func Enrich(t *Trace, spec EnrichSpec) (*Trace, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	c := t.Clone()
	if !spec.Enabled() {
		return c, nil
	}
	c.Name = t.Name + "+sc"
	rng := stats.NewRNG(spec.Seed ^ 0x5ce9a6107)
	memOn := spec.MemDist != "" && spec.MemDist != MemDistNone
	perProc := spec.MemPerProc
	if perProc <= 0 {
		perProc = DefaultMemPerProc
	}
	if memOn {
		c.Mem = c.Procs * perProc
	}
	for _, j := range c.Jobs {
		if memOn {
			j.Mem = drawMem(rng, spec.MemDist, j.Procs, perProc, c.Mem)
		}
		if spec.PriorityTiers > 1 {
			j.Priority = drawTier(rng, spec.PriorityTiers)
		}
	}
	return c, nil
}

// drawMem samples one job's total memory request in [1, capacity].
func drawMem(rng *stats.RNG, dist string, procs, perProc, capacity int) int {
	var m float64
	switch dist {
	case MemDistProp:
		// Lognormal noise around the job's proportional share: median ~0.7x
		// its per-core allotment, occasionally oversubscribed, so memory
		// binds for some jobs but not most — the regime where a second
		// resource dimension actually changes schedules.
		m = float64(procs) * float64(perProc) * rng.LogNormal(-0.35, 0.75)
	case MemDistUniform:
		// Uniform fraction of the whole machine, independent of width:
		// narrow jobs can be memory-hogs, the classic anti-correlated case.
		m = rng.Uniform(0, 0.5) * float64(capacity)
	}
	mem := int(math.Round(m))
	if mem < 1 {
		mem = 1
	}
	if mem > capacity {
		mem = capacity
	}
	return mem
}

// drawTier samples a priority tier in [0, tiers) with geometric weights
// (P(tier k) ∝ 2^-k), so tier 0 holds roughly half the jobs and each higher
// tier halves again.
func drawTier(rng *stats.RNG, tiers int) int {
	for k := 0; k < tiers-1; k++ {
		if rng.Bool(0.5) {
			return k
		}
	}
	return tiers - 1
}
