package trace

import (
	"bytes"
	"testing"
)

// TestSynthStreamMatchesGenerate pins that the streaming generator yields
// exactly the jobs Generate materializes — same RNG consumption, same
// values — for both surrogate specs.
func TestSynthStreamMatchesGenerate(t *testing.T) {
	for _, spec := range []SynthSpec{SDSCSP2Spec(), HPC2NSpec()} {
		want := spec.Generate(1500, 7)
		var got []*Job
		if err := spec.Stream(1500, 7, func(j *Job) error {
			got = append(got, j)
			return nil
		}); err != nil {
			t.Fatalf("%s: stream error: %v", spec.Name, err)
		}
		if len(got) != want.Len() {
			t.Fatalf("%s: stream yielded %d jobs, generate %d", spec.Name, len(got), want.Len())
		}
		for i, j := range got {
			if *j != *want.Jobs[i] {
				t.Fatalf("%s: job %d differs: stream %+v, generate %+v", spec.Name, i, *j, *want.Jobs[i])
			}
		}
	}
}

// TestStreamStopsOnYieldError pins the early-exit contract.
func TestStreamStopsOnYieldError(t *testing.T) {
	spec := SDSCSP2Spec()
	count := 0
	err := spec.Stream(100, 1, func(j *Job) error {
		count++
		if count == 10 {
			return errStop
		}
		return nil
	})
	if err != errStop {
		t.Fatalf("stream returned %v, want the yield error", err)
	}
	if count != 10 {
		t.Fatalf("stream yielded %d jobs after the error, want 10", count)
	}
}

type stopErr struct{}

func (stopErr) Error() string { return "stop" }

var errStop = stopErr{}

// TestSWFWriterMatchesWriteSWF pins the streaming writer's refactor: the
// header plus per-job rows written through SWFWriter must be byte-identical
// to WriteSWF's output, including the memory header and queue-encoded
// priority tiers of an enriched trace.
func TestSWFWriterMatchesWriteSWF(t *testing.T) {
	tr, err := Enrich(SyntheticSDSCSP2(400, 3),
		EnrichSpec{MemDist: MemDistProp, PriorityTiers: 3, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	var whole, streamed bytes.Buffer
	if err := WriteSWF(&whole, tr); err != nil {
		t.Fatal(err)
	}
	sw, err := NewSWFWriter(&streamed, tr.Name, tr.Procs, tr.Mem)
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range tr.Jobs {
		if err := sw.WriteJob(j); err != nil {
			t.Fatal(err)
		}
	}
	if err := sw.Flush(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(whole.Bytes(), streamed.Bytes()) {
		t.Fatalf("streamed SWF output differs from WriteSWF (%d vs %d bytes)",
			streamed.Len(), whole.Len())
	}
}

// TestStatsAccumMatchesComputeStats drives the accumulator and the (slice
// free, but historically slice-based) ComputeStats over the same enriched
// trace and requires identical results, including the float bits of every
// mean — the accumulator sums in the same job order the slices did.
func TestStatsAccumMatchesComputeStats(t *testing.T) {
	tr, err := Enrich(SyntheticHPC2N(800, 5),
		EnrichSpec{MemDist: MemDistUniform, PriorityTiers: 4, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	want := ComputeStats(tr)
	acc := NewStatsAccum(tr.Name, tr.Procs, tr.Mem)
	for _, j := range tr.Jobs {
		acc.Add(j)
	}
	got := acc.Stats()
	if got.String() != want.String() {
		t.Fatalf("accumulated stats render differently:\n got %s\nwant %s", got.String(), want.String())
	}
	if got.MeanInterarrival != want.MeanInterarrival || got.MeanRequest != want.MeanRequest ||
		got.MeanRuntime != want.MeanRuntime || got.MeanProcs != want.MeanProcs ||
		got.MeanOverestimate != want.MeanOverestimate || got.MeanMem != want.MeanMem ||
		got.Span != want.Span || got.Jobs != want.Jobs ||
		got.MaxJobProcs != want.MaxJobProcs || got.MaxJobMem != want.MaxJobMem ||
		got.JobsWithMem != want.JobsWithMem || got.PriorityMax != want.PriorityMax {
		t.Fatalf("accumulated stats differ:\n got %+v\nwant %+v", got, want)
	}
	if len(got.PriorityDist) != len(want.PriorityDist) {
		t.Fatalf("priority dist sizes differ: %v vs %v", got.PriorityDist, want.PriorityDist)
	}
	for tier, n := range want.PriorityDist {
		if got.PriorityDist[tier] != n {
			t.Fatalf("tier %d count %d, want %d", tier, got.PriorityDist[tier], n)
		}
	}
}
