package trace

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/stats"
)

// Analysis is a deep workload characterisation beyond the Table 2 means:
// distribution summaries, arrival patterns and per-user concentration. It is
// what one inspects to judge whether a surrogate trace behaves like its
// archive original.
type Analysis struct {
	Stats Stats

	Runtime  stats.Summary // actual runtimes (s)
	Request  stats.Summary // requested times (s)
	Procs    stats.Summary // requested processors
	Gaps     stats.Summary // inter-arrival gaps (s)
	Overest  stats.Summary // request/actual per job
	SerialF  float64       // fraction of single-processor jobs
	Pow2F    float64       // fraction of power-of-two-sized jobs
	Users    int           // distinct users
	TopUserF float64       // fraction of jobs from the most active user
	// OfferedLoad is sum(runtime*procs) / (span*machine) — the demand the
	// workload places on the machine, independent of any scheduler.
	OfferedLoad float64
	// HourlyArrivals is the fraction of submissions per hour-of-day (len 24),
	// showing the diurnal cycle.
	HourlyArrivals [24]float64
	// BurstinessCV is the coefficient of variation of inter-arrival gaps
	// (1 = Poisson; archive traces are typically well above 1).
	BurstinessCV float64
}

// Analyze computes the full characterisation.
func Analyze(t *Trace) Analysis {
	a := Analysis{Stats: ComputeStats(t)}
	if len(t.Jobs) == 0 {
		return a
	}
	var runs, reqs, procs, gaps, overs []float64
	users := map[int]int{}
	var prev int64
	serial, pow2 := 0, 0
	var area float64
	for i, j := range t.Jobs {
		runs = append(runs, float64(j.Runtime))
		reqs = append(reqs, float64(j.Request))
		procs = append(procs, float64(j.Procs))
		if i > 0 {
			gaps = append(gaps, float64(j.Submit-prev))
		}
		prev = j.Submit
		if j.Runtime > 0 {
			overs = append(overs, float64(j.Request)/float64(j.Runtime))
		}
		if j.Procs == 1 {
			serial++
		}
		if j.Procs&(j.Procs-1) == 0 {
			pow2++
		}
		users[j.User]++
		area += float64(j.Runtime) * float64(j.Procs)
		hour := (j.Submit / 3600) % 24
		a.HourlyArrivals[hour]++
	}
	n := float64(len(t.Jobs))
	a.Runtime = stats.Summarize(runs)
	a.Request = stats.Summarize(reqs)
	a.Procs = stats.Summarize(procs)
	a.Gaps = stats.Summarize(gaps)
	a.Overest = stats.Summarize(overs)
	a.SerialF = float64(serial) / n
	a.Pow2F = float64(pow2) / n
	a.Users = len(users)
	top := 0
	for _, c := range users {
		if c > top {
			top = c
		}
	}
	a.TopUserF = float64(top) / n
	span := t.Jobs[len(t.Jobs)-1].Submit - t.Jobs[0].Submit
	if span > 0 && t.Procs > 0 {
		a.OfferedLoad = area / (float64(span) * float64(t.Procs))
	}
	for i := range a.HourlyArrivals {
		a.HourlyArrivals[i] /= n
	}
	if a.Gaps.Mean > 0 {
		a.BurstinessCV = a.Gaps.Std / a.Gaps.Mean
	}
	return a
}

// String renders a multi-line report.
func (a Analysis) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n", a.Stats)
	fmt.Fprintf(&sb, "  runtime   mean %8.0fs median %8.0fs p90 %8.0fs max %8.0fs\n",
		a.Runtime.Mean, a.Runtime.Median, a.Runtime.P90, a.Runtime.Max)
	fmt.Fprintf(&sb, "  request   mean %8.0fs median %8.0fs p90 %8.0fs max %8.0fs\n",
		a.Request.Mean, a.Request.Median, a.Request.P90, a.Request.Max)
	fmt.Fprintf(&sb, "  procs     mean %8.1f  median %8.0f  p90 %8.0f  max %8.0f\n",
		a.Procs.Mean, a.Procs.Median, a.Procs.P90, a.Procs.Max)
	fmt.Fprintf(&sb, "  arrivals  mean gap %6.0fs  cv %.2f (1 = Poisson)\n", a.Gaps.Mean, a.BurstinessCV)
	fmt.Fprintf(&sb, "  shape     serial %4.1f%%  power-of-two %4.1f%%  overest median %.2fx\n",
		a.SerialF*100, a.Pow2F*100, a.Overest.Median)
	fmt.Fprintf(&sb, "  users     %d distinct, top user %4.1f%% of jobs\n", a.Users, a.TopUserF*100)
	fmt.Fprintf(&sb, "  load      offered %4.1f%% of machine capacity\n", a.OfferedLoad*100)
	return sb.String()
}

// UtilizationTimeline reconstructs machine usage over time from completed
// schedule records expressed as (start, end, procs) triples; it returns the
// per-interval busy fraction sampled at `buckets` uniform points of the
// makespan. It is a post-hoc analysis helper for schedule results.
func UtilizationTimeline(startEnds [][3]int64, machineProcs int, buckets int) []float64 {
	if len(startEnds) == 0 || buckets <= 0 || machineProcs <= 0 {
		return nil
	}
	var lo, hi int64
	lo = startEnds[0][0]
	for _, se := range startEnds {
		if se[0] < lo {
			lo = se[0]
		}
		if se[1] > hi {
			hi = se[1]
		}
	}
	if hi <= lo {
		return nil
	}
	type ev struct {
		t int64
		d int
	}
	evs := make([]ev, 0, 2*len(startEnds))
	for _, se := range startEnds {
		evs = append(evs, ev{se[0], int(se[2])}, ev{se[1], -int(se[2])})
	}
	sort.Slice(evs, func(a, b int) bool {
		if evs[a].t != evs[b].t {
			return evs[a].t < evs[b].t
		}
		return evs[a].d < evs[b].d
	})
	out := make([]float64, buckets)
	used := 0
	ei := 0
	span := hi - lo
	for b := 0; b < buckets; b++ {
		at := lo + span*int64(b)/int64(buckets)
		for ei < len(evs) && evs[ei].t <= at {
			used += evs[ei].d
			ei++
		}
		out[b] = float64(used) / float64(machineProcs)
	}
	return out
}
