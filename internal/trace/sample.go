package trace

import "repro/internal/stats"

// SampleSequence extracts a random contiguous sequence of n jobs from the
// trace, cloning the jobs and rebasing submit times so the first job arrives
// at time 0. This mirrors the paper's evaluation protocol (§4.3): random
// 256-job sequences for training and 1024-job sequences for testing. If the
// trace has fewer than n jobs the whole trace is returned.
func SampleSequence(t *Trace, rng *stats.RNG, n int) *Trace {
	if n >= len(t.Jobs) {
		c := t.Clone()
		rebase(c.Jobs)
		return c
	}
	start := rng.Intn(len(t.Jobs) - n + 1)
	return Slice(t, start, n)
}

// Slice clones n jobs starting at index start and rebases their submit times
// to 0.
func Slice(t *Trace, start, n int) *Trace {
	if start < 0 {
		start = 0
	}
	if start+n > len(t.Jobs) {
		n = len(t.Jobs) - start
	}
	c := &Trace{Name: t.Name, Procs: t.Procs, Mem: t.Mem, Jobs: make([]*Job, 0, n)}
	for _, j := range t.Jobs[start : start+n] {
		c.Jobs = append(c.Jobs, j.Clone())
	}
	rebase(c.Jobs)
	return c
}

// Split partitions the trace into a training prefix containing frac of the
// jobs and a testing suffix with the remainder. Both halves share the clone
// semantics of Slice (independent jobs, rebased submit times).
func Split(t *Trace, frac float64) (train, test *Trace) {
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	cut := int(float64(len(t.Jobs)) * frac)
	return Slice(t, 0, cut), Slice(t, cut, len(t.Jobs)-cut)
}
