package trace

import (
	"fmt"

	"repro/internal/stats"
)

// Stats summarises the characteristics Table 2 of the paper reports for each
// workload.
type Stats struct {
	Name             string
	Jobs             int
	Procs            int     // machine size
	MeanInterarrival float64 // it (seconds)
	MeanRequest      float64 // rt (seconds)
	MeanRuntime      float64 // actual runtime mean (seconds)
	MeanProcs        float64 // nt
	MaxJobProcs      int
	Span             int64 // submit-time span (seconds)
	MeanOverestimate float64
}

// ComputeStats derives workload statistics from a trace.
func ComputeStats(t *Trace) Stats {
	s := Stats{Name: t.Name, Jobs: len(t.Jobs), Procs: t.Procs}
	if len(t.Jobs) == 0 {
		return s
	}
	var gaps, reqs, runs, procs, overs []float64
	var prev int64
	for i, j := range t.Jobs {
		if i > 0 {
			gaps = append(gaps, float64(j.Submit-prev))
		}
		prev = j.Submit
		reqs = append(reqs, float64(j.Request))
		runs = append(runs, float64(j.Runtime))
		procs = append(procs, float64(j.Procs))
		if j.Runtime > 0 {
			overs = append(overs, float64(j.Request)/float64(j.Runtime))
		}
		if j.Procs > s.MaxJobProcs {
			s.MaxJobProcs = j.Procs
		}
	}
	s.MeanInterarrival = stats.Mean(gaps)
	s.MeanRequest = stats.Mean(reqs)
	s.MeanRuntime = stats.Mean(runs)
	s.MeanProcs = stats.Mean(procs)
	s.MeanOverestimate = stats.Mean(overs)
	s.Span = t.Jobs[len(t.Jobs)-1].Submit - t.Jobs[0].Submit
	return s
}

// String renders the statistics in a Table 2-like row.
func (s Stats) String() string {
	return fmt.Sprintf("%-10s jobs=%-6d size=%-4d it=%-7.0f rt=%-7.0f ar=%-7.0f nt=%-5.1f over=%.2f",
		s.Name, s.Jobs, s.Procs, s.MeanInterarrival, s.MeanRequest, s.MeanRuntime, s.MeanProcs, s.MeanOverestimate)
}
