package trace

import (
	"fmt"
	"strings"

	"repro/internal/stats"
)

// Stats summarises the characteristics Table 2 of the paper reports for each
// workload.
type Stats struct {
	Name             string
	Jobs             int
	Procs            int     // machine size
	MeanInterarrival float64 // it (seconds)
	MeanRequest      float64 // rt (seconds)
	MeanRuntime      float64 // actual runtime mean (seconds)
	MeanProcs        float64 // nt
	MaxJobProcs      int
	Span             int64 // submit-time span (seconds)
	MeanOverestimate float64

	// Scenario dimensions; all zero for classic procs-only traces.
	Mem          int     // machine memory capacity (0 = dimension off)
	JobsWithMem  int     // jobs carrying a memory request
	MeanMem      float64 // mean memory request over jobs with one
	MaxJobMem    int
	PriorityMax  int         // highest tier seen
	PriorityDist map[int]int // tier -> job count; nil when all jobs are tier 0
}

// ComputeStats derives workload statistics from a trace.
func ComputeStats(t *Trace) Stats {
	s := Stats{Name: t.Name, Jobs: len(t.Jobs), Procs: t.Procs, Mem: t.Mem}
	if len(t.Jobs) == 0 {
		return s
	}
	var gaps, reqs, runs, procs, overs, mems []float64
	var prev int64
	for i, j := range t.Jobs {
		if i > 0 {
			gaps = append(gaps, float64(j.Submit-prev))
		}
		prev = j.Submit
		reqs = append(reqs, float64(j.Request))
		runs = append(runs, float64(j.Runtime))
		procs = append(procs, float64(j.Procs))
		if j.Runtime > 0 {
			overs = append(overs, float64(j.Request)/float64(j.Runtime))
		}
		if j.Procs > s.MaxJobProcs {
			s.MaxJobProcs = j.Procs
		}
		if j.Mem > 0 {
			s.JobsWithMem++
			mems = append(mems, float64(j.Mem))
			if j.Mem > s.MaxJobMem {
				s.MaxJobMem = j.Mem
			}
		}
		if j.Priority > s.PriorityMax {
			s.PriorityMax = j.Priority
		}
	}
	s.MeanMem = stats.Mean(mems)
	if s.PriorityMax > 0 {
		s.PriorityDist = make(map[int]int)
		for _, j := range t.Jobs {
			s.PriorityDist[j.Priority]++
		}
	}
	s.MeanInterarrival = stats.Mean(gaps)
	s.MeanRequest = stats.Mean(reqs)
	s.MeanRuntime = stats.Mean(runs)
	s.MeanProcs = stats.Mean(procs)
	s.MeanOverestimate = stats.Mean(overs)
	s.Span = t.Jobs[len(t.Jobs)-1].Submit - t.Jobs[0].Submit
	return s
}

// String renders the statistics in a Table 2-like row. Scenario dimensions
// (memory, priority tiers) are appended only when the trace carries them, so
// classic procs-only traces render exactly as before.
func (s Stats) String() string {
	row := fmt.Sprintf("%-10s jobs=%-6d size=%-4d it=%-7.0f rt=%-7.0f ar=%-7.0f nt=%-5.1f over=%.2f",
		s.Name, s.Jobs, s.Procs, s.MeanInterarrival, s.MeanRequest, s.MeanRuntime, s.MeanProcs, s.MeanOverestimate)
	if s.Mem > 0 || s.JobsWithMem > 0 {
		row += fmt.Sprintf(" mem=%d memjobs=%d meanmem=%.0f", s.Mem, s.JobsWithMem, s.MeanMem)
	}
	if s.PriorityMax > 0 {
		row += fmt.Sprintf(" tiers=%d", s.PriorityMax+1)
	}
	return row
}

// PriorityTable renders the tier distribution as "tier:count" pairs in
// ascending tier order, or "" when the trace is priority-free.
func (s Stats) PriorityTable() string {
	if s.PriorityDist == nil {
		return ""
	}
	var b strings.Builder
	for tier := 0; tier <= s.PriorityMax; tier++ {
		n, ok := s.PriorityDist[tier]
		if !ok {
			continue
		}
		if b.Len() > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%d:%d", tier, n)
	}
	return b.String()
}
