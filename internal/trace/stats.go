package trace

import (
	"fmt"
	"strings"
)

// Stats summarises the characteristics Table 2 of the paper reports for each
// workload.
type Stats struct {
	Name             string
	Jobs             int
	Procs            int     // machine size
	MeanInterarrival float64 // it (seconds)
	MeanRequest      float64 // rt (seconds)
	MeanRuntime      float64 // actual runtime mean (seconds)
	MeanProcs        float64 // nt
	MaxJobProcs      int
	Span             int64 // submit-time span (seconds)
	MeanOverestimate float64

	// Scenario dimensions; all zero for classic procs-only traces.
	Mem          int     // machine memory capacity (0 = dimension off)
	JobsWithMem  int     // jobs carrying a memory request
	MeanMem      float64 // mean memory request over jobs with one
	MaxJobMem    int
	PriorityMax  int         // highest tier seen
	PriorityDist map[int]int // tier -> job count; nil when all jobs are tier 0
}

// ComputeStats derives workload statistics from a trace.
func ComputeStats(t *Trace) Stats {
	a := NewStatsAccum(t.Name, t.Procs, t.Mem)
	for _, j := range t.Jobs {
		a.Add(j)
	}
	return a.Stats()
}

// StatsAccum accumulates the Table 2 statistics one job at a time, so a
// streamed workload (experiments.ResolveStream, lublin.HugeSpec.Stream) can
// be summarized without ever materializing a job slice. Jobs must arrive in
// submit order, as they do in a trace. ComputeStats is built on the
// accumulator, so the two paths agree bit-for-bit: every mean is a single
// linear sum in job order, exactly the summation stats.Mean performed over
// the per-job slices.
type StatsAccum struct {
	s           Stats
	firstSubmit int64
	prevSubmit  int64
	gapSum      float64
	reqSum      float64
	runSum      float64
	procSum     float64
	overSum     float64
	overN       int
	memSum      float64
	dist        map[int]int
}

// NewStatsAccum starts a summary for a machine of the given name, processor
// count and total memory capacity (0 = memory dimension off).
func NewStatsAccum(name string, procs, mem int) *StatsAccum {
	return &StatsAccum{
		s:    Stats{Name: name, Procs: procs, Mem: mem},
		dist: make(map[int]int),
	}
}

// Add folds one job into the summary.
func (a *StatsAccum) Add(j *Job) {
	if a.s.Jobs == 0 {
		a.firstSubmit = j.Submit
	} else {
		a.gapSum += float64(j.Submit - a.prevSubmit)
	}
	a.prevSubmit = j.Submit
	a.s.Jobs++
	a.reqSum += float64(j.Request)
	a.runSum += float64(j.Runtime)
	a.procSum += float64(j.Procs)
	if j.Runtime > 0 {
		a.overSum += float64(j.Request) / float64(j.Runtime)
		a.overN++
	}
	if j.Procs > a.s.MaxJobProcs {
		a.s.MaxJobProcs = j.Procs
	}
	if j.Mem > 0 {
		a.s.JobsWithMem++
		a.memSum += float64(j.Mem)
		if j.Mem > a.s.MaxJobMem {
			a.s.MaxJobMem = j.Mem
		}
	}
	if j.Priority > a.s.PriorityMax {
		a.s.PriorityMax = j.Priority
	}
	a.dist[j.Priority]++
}

// Stats finalizes and returns the summary; the accumulator may keep
// receiving jobs afterwards (Stats is a snapshot).
func (a *StatsAccum) Stats() Stats {
	s := a.s
	if s.Jobs == 0 {
		return s
	}
	if n := s.Jobs - 1; n > 0 {
		s.MeanInterarrival = a.gapSum / float64(n)
	}
	s.MeanRequest = a.reqSum / float64(s.Jobs)
	s.MeanRuntime = a.runSum / float64(s.Jobs)
	s.MeanProcs = a.procSum / float64(s.Jobs)
	if a.overN > 0 {
		s.MeanOverestimate = a.overSum / float64(a.overN)
	}
	if s.JobsWithMem > 0 {
		s.MeanMem = a.memSum / float64(s.JobsWithMem)
	}
	if s.PriorityMax > 0 {
		s.PriorityDist = make(map[int]int, len(a.dist))
		for tier, n := range a.dist {
			s.PriorityDist[tier] = n
		}
	}
	s.Span = a.prevSubmit - a.firstSubmit
	return s
}

// String renders the statistics in a Table 2-like row. Scenario dimensions
// (memory, priority tiers) are appended only when the trace carries them, so
// classic procs-only traces render exactly as before.
func (s Stats) String() string {
	row := fmt.Sprintf("%-10s jobs=%-6d size=%-4d it=%-7.0f rt=%-7.0f ar=%-7.0f nt=%-5.1f over=%.2f",
		s.Name, s.Jobs, s.Procs, s.MeanInterarrival, s.MeanRequest, s.MeanRuntime, s.MeanProcs, s.MeanOverestimate)
	if s.Mem > 0 || s.JobsWithMem > 0 {
		row += fmt.Sprintf(" mem=%d memjobs=%d meanmem=%.0f", s.Mem, s.JobsWithMem, s.MeanMem)
	}
	if s.PriorityMax > 0 {
		row += fmt.Sprintf(" tiers=%d", s.PriorityMax+1)
	}
	return row
}

// PriorityTable renders the tier distribution as "tier:count" pairs in
// ascending tier order, or "" when the trace is priority-free.
func (s Stats) PriorityTable() string {
	if s.PriorityDist == nil {
		return ""
	}
	var b strings.Builder
	for tier := 0; tier <= s.PriorityMax; tier++ {
		n, ok := s.PriorityDist[tier]
		if !ok {
			continue
		}
		if b.Len() > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%d:%d", tier, n)
	}
	return b.String()
}
