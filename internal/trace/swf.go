package trace

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// SWF field indices (0-based) per the Standard Workload Format definition.
const (
	swfJobNumber = iota
	swfSubmitTime
	swfWaitTime
	swfRunTime
	swfAllocProcs
	swfAvgCPUTime
	swfUsedMemory
	swfReqProcs
	swfReqTime
	swfReqMemory
	swfStatus
	swfUserID
	swfGroupID
	swfExecutable
	swfQueue
	swfPartition
	swfPrecedingJob
	swfThinkTime
	swfNumFields
)

// ParseSWF reads a Standard Workload Format stream. Header comment lines
// (starting with ';') are scanned for "MaxProcs:" / "MaxNodes:" to determine
// the machine size and "MaxMemory:" (KB per processor) for the memory
// capacity; name is attached to the returned trace. Jobs with non-positive
// runtime or processor counts (failed or malformed records) are skipped,
// mirroring how the paper's simulator (RLScheduler) loads traces. Submit
// times are rebased so the first job arrives at 0.
//
// Memory requests come from the requested-memory column (SWF field 10,
// KB per processor), falling back to used memory (field 7); Job.Mem stores
// the total (per-processor value times processors) in KB. The memory
// dimension stays inert unless the header declares a capacity (Trace.Mem).
//
// SWF has no dedicated priority field; per the format definition the queue
// number is the conventional priority carrier ("queues may be used to
// indicate priority"), so Job.Priority mirrors the queue column. Priority is
// likewise inert unless a scheduling scenario enables tiers.
func ParseSWF(r io.Reader, name string) (*Trace, error) {
	t := &Trace{Name: name}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, ";") {
			parseSWFHeader(line, t)
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < swfReqTime+1 {
			return nil, fmt.Errorf("trace: swf line %d has %d fields, want >= %d", lineNo, len(fields), swfReqTime+1)
		}
		vals := make([]int64, swfNumFields)
		for i := range vals {
			vals[i] = -1
		}
		for i, f := range fields {
			if i >= swfNumFields {
				break
			}
			v, err := strconv.ParseFloat(f, 64)
			if err != nil {
				return nil, fmt.Errorf("trace: swf line %d field %d: %v", lineNo, i+1, err)
			}
			vals[i] = int64(v)
		}
		j := jobFromSWF(vals)
		if j == nil {
			continue // filtered record
		}
		t.Jobs = append(t.Jobs, j)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: reading swf: %w", err)
	}
	rebase(t.Jobs)
	if t.Procs == 0 {
		t.Procs = maxProcsOf(t.Jobs)
	}
	if t.Mem > 0 {
		// The header stored per-processor KB; scale to the machine total now
		// that the processor count is final. Per-job requests are clamped to
		// the capacity: the requested-memory column is per-processor, so the
		// ceil rounding on write can otherwise nudge a capacity-sized job a
		// few KB past the machine on a round trip.
		t.Mem *= t.Procs
		for _, j := range t.Jobs {
			if j.Mem > t.Mem {
				j.Mem = t.Mem
			}
		}
	}
	return t, nil
}

// jobFromSWF converts one SWF record to a Job, or nil if the record should
// be filtered out.
func jobFromSWF(v []int64) *Job {
	procs := v[swfReqProcs]
	if procs <= 0 {
		procs = v[swfAllocProcs]
	}
	run := v[swfRunTime]
	req := v[swfReqTime]
	if req <= 0 {
		req = run
	}
	if procs <= 0 || run <= 0 || req <= 0 || v[swfSubmitTime] < 0 {
		return nil
	}
	memPerProc := v[swfReqMemory]
	if memPerProc <= 0 {
		memPerProc = v[swfUsedMemory]
	}
	mem := int64(0)
	if memPerProc > 0 {
		mem = memPerProc * procs
	}
	pri := v[swfQueue]
	if pri < 0 {
		pri = 0
	}
	return &Job{
		ID:         int(v[swfJobNumber]),
		Submit:     v[swfSubmitTime],
		Runtime:    run,
		Request:    req,
		Procs:      int(procs),
		Mem:        int(mem),
		Priority:   int(pri),
		User:       int(v[swfUserID]),
		Group:      int(v[swfGroupID]),
		Executable: int(v[swfExecutable]),
		Queue:      int(v[swfQueue]),
		Partition:  int(v[swfPartition]),
		Status:     int(v[swfStatus]),
	}
}

func parseSWFHeader(line string, t *Trace) {
	body := strings.TrimSpace(strings.TrimLeft(line, "; "))
	for _, key := range []string{"MaxProcs:", "MaxNodes:"} {
		if strings.HasPrefix(body, key) {
			val := strings.TrimSpace(strings.TrimPrefix(body, key))
			if n, err := strconv.Atoi(strings.Fields(val + " x")[0]); err == nil && n > 0 {
				// MaxProcs takes precedence over MaxNodes when both appear.
				if key == "MaxProcs:" || t.Procs == 0 {
					t.Procs = n
				}
			}
		}
	}
	// MaxMemory is KB per processor; the machine capacity is resolved to
	// total KB once the processor count is known (see ParseSWF).
	if strings.HasPrefix(body, "MaxMemory:") {
		val := strings.TrimSpace(strings.TrimPrefix(body, "MaxMemory:"))
		if n, err := strconv.Atoi(strings.Fields(val + " x")[0]); err == nil && n > 0 {
			t.Mem = n // placeholder: per-proc KB, scaled after parsing
		}
	}
}

func rebase(jobs []*Job) {
	if len(jobs) == 0 {
		return
	}
	base := jobs[0].Submit
	for _, j := range jobs {
		j.Submit -= base
	}
}

func maxProcsOf(jobs []*Job) int {
	m := 0
	for _, j := range jobs {
		if j.Procs > m {
			m = j.Procs
		}
	}
	return m
}

// LoadSWFFile parses the SWF file at path; the trace name is derived from
// the file name.
func LoadSWFFile(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	name := path
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		name = path[i+1:]
	}
	name = strings.TrimSuffix(name, ".swf")
	return ParseSWF(f, name)
}

// SWFWriter streams jobs to a Standard Workload Format stream one row at a
// time, so million-job archives can be written as they are generated without
// ever materializing a job slice (the RSS stays flat regardless of trace
// length). NewSWFWriter emits the header; WriteJob appends one record; Flush
// drains the buffer. WriteSWF is the materialized convenience built on top,
// so the two paths produce byte-identical output.
type SWFWriter struct {
	bw *bufio.Writer
}

// NewSWFWriter writes the SWF header — Trace name, MaxProcs, and (when mem,
// the total machine memory in KB, is positive) MaxMemory in the per-processor
// convention ParseSWF expects — and returns a writer ready for job rows.
func NewSWFWriter(w io.Writer, name string, procs, mem int) (*SWFWriter, error) {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "; Trace: %s\n; MaxProcs: %d\n", name, procs); err != nil {
		return nil, err
	}
	if mem > 0 && procs > 0 {
		if _, err := fmt.Fprintf(bw, "; MaxMemory: %d\n", (mem+procs-1)/procs); err != nil {
			return nil, err
		}
	}
	if _, err := fmt.Fprintf(bw, "; Generated by the rlbackfill reproduction\n"); err != nil {
		return nil, err
	}
	return &SWFWriter{bw: bw}, nil
}

// WriteJob appends one SWF record. Wait time and CPU time are written as -1
// (unknown); requested memory is written per processor (SWF convention), and
// priority tiers ride the queue column when the job has no queue of its own,
// matching how ParseSWF recovers them.
func (sw *SWFWriter) WriteJob(j *Job) error {
	status := j.Status
	if status == 0 {
		status = 1
	}
	memPerProc := int64(-1)
	if j.Mem > 0 && j.Procs > 0 {
		memPerProc = int64((j.Mem + j.Procs - 1) / j.Procs)
	}
	queue := j.Queue
	if queue == 0 && j.Priority > 0 {
		queue = j.Priority
	}
	_, err := fmt.Fprintf(sw.bw, "%d %d -1 %d %d -1 -1 %d %d %d %d %d %d %d %d %d -1 -1\n",
		j.ID, j.Submit, j.Runtime, j.Procs, j.Procs, j.Request, memPerProc, status,
		j.User, j.Group, j.Executable, queue, j.Partition)
	return err
}

// Flush drains the write buffer; call once after the last WriteJob.
func (sw *SWFWriter) Flush() error { return sw.bw.Flush() }

// WriteSWF writes the trace in Standard Workload Format, including MaxProcs
// and (when the memory dimension is active) MaxMemory headers, so that
// generated workloads can be consumed by other SWF tools.
func WriteSWF(w io.Writer, t *Trace) error {
	sw, err := NewSWFWriter(w, t.Name, t.Procs, t.Mem)
	if err != nil {
		return err
	}
	for _, j := range t.Jobs {
		if err := sw.WriteJob(j); err != nil {
			return err
		}
	}
	return sw.Flush()
}

// SaveSWFFile writes the trace to path in SWF format.
func SaveSWFFile(path string, t *Trace) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteSWF(f, t); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
