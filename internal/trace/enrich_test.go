package trace

import (
	"bytes"
	"testing"
)

func enrichFixture() *Trace {
	return SyntheticSDSCSP2(200, 42)
}

func TestEnrichDeterministic(t *testing.T) {
	spec := EnrichSpec{MemDist: MemDistProp, PriorityTiers: 3, Seed: 9}
	a, err := Enrich(enrichFixture(), spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Enrich(enrichFixture(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if a.Mem != b.Mem || a.Name != b.Name || a.Len() != b.Len() {
		t.Fatalf("header mismatch: %v/%v/%d vs %v/%v/%d", a.Mem, a.Name, a.Len(), b.Mem, b.Name, b.Len())
	}
	for i := range a.Jobs {
		ja, jb := a.Jobs[i], b.Jobs[i]
		if ja.Mem != jb.Mem || ja.Priority != jb.Priority {
			t.Fatalf("job %d: (%d,%d) vs (%d,%d)", ja.ID, ja.Mem, ja.Priority, jb.Mem, jb.Priority)
		}
	}
}

func TestEnrichBoundsAndValidity(t *testing.T) {
	base := enrichFixture()
	tiers := 4
	tr, err := Enrich(base, EnrichSpec{MemDist: MemDistProp, PriorityTiers: tiers, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Name != base.Name+"+sc" {
		t.Fatalf("name = %q, want %q", tr.Name, base.Name+"+sc")
	}
	if want := tr.Procs * DefaultMemPerProc; tr.Mem != want {
		t.Fatalf("capacity = %d, want %d", tr.Mem, want)
	}
	seenTier := make(map[int]bool)
	for _, j := range tr.Jobs {
		if j.Mem < 1 || j.Mem > tr.Mem {
			t.Fatalf("job %d mem %d outside [1,%d]", j.ID, j.Mem, tr.Mem)
		}
		if j.Priority < 0 || j.Priority >= tiers {
			t.Fatalf("job %d priority %d outside [0,%d)", j.ID, j.Priority, tiers)
		}
		seenTier[j.Priority] = true
	}
	if len(seenTier) < 2 {
		t.Fatalf("only %d tiers drawn across %d jobs; want a spread", len(seenTier), tr.Len())
	}
	// An enriched trace must still pass full validation (the simulator
	// rejects invalid ones outright).
	if err := tr.Validate(); err != nil {
		t.Fatalf("enriched trace invalid: %v", err)
	}
	// The base trace must be untouched (Enrich clones).
	for _, j := range base.Jobs {
		if j.Mem != 0 || j.Priority != 0 {
			t.Fatalf("base trace mutated: job %d mem=%d pri=%d", j.ID, j.Mem, j.Priority)
		}
	}
}

func TestEnrichDisabledIsNoOp(t *testing.T) {
	base := enrichFixture()
	for _, spec := range []EnrichSpec{{}, {MemDist: MemDistNone}, {PriorityTiers: 1}} {
		if spec.Enabled() {
			t.Fatalf("spec %+v should be disabled", spec)
		}
		tr, err := Enrich(base, spec)
		if err != nil {
			t.Fatal(err)
		}
		if tr.Name != base.Name || tr.Mem != 0 {
			t.Fatalf("disabled spec changed trace: name %q mem %d", tr.Name, tr.Mem)
		}
	}
}

func TestEnrichRejectsUnknownDist(t *testing.T) {
	if _, err := Enrich(enrichFixture(), EnrichSpec{MemDist: "zipf"}); err == nil {
		t.Fatal("unknown distribution accepted")
	}
}

// TestEnrichSWFRoundTrip writes an enriched trace to SWF and parses it back:
// priorities ride the queue column exactly; memory is stored per processor
// with ceil rounding, so each job's total comes back within procs-1 units
// (and never above the machine capacity).
func TestEnrichSWFRoundTrip(t *testing.T) {
	tr, err := Enrich(enrichFixture(), EnrichSpec{MemDist: MemDistUniform, PriorityTiers: 3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteSWF(&buf, tr); err != nil {
		t.Fatal(err)
	}
	back, err := ParseSWF(&buf, tr.Name)
	if err != nil {
		t.Fatal(err)
	}
	if back.Mem != tr.Mem {
		t.Fatalf("capacity: wrote %d, parsed %d", tr.Mem, back.Mem)
	}
	if back.Len() != tr.Len() {
		t.Fatalf("jobs: wrote %d, parsed %d", tr.Len(), back.Len())
	}
	for i, j := range tr.Jobs {
		g := back.Jobs[i]
		if g.Priority != j.Priority {
			t.Fatalf("job %d priority: wrote %d, parsed %d", j.ID, j.Priority, g.Priority)
		}
		if g.Mem < j.Mem || g.Mem > j.Mem+j.Procs-1 {
			if g.Mem != tr.Mem { // capacity clamp is the one legal exception
				t.Fatalf("job %d mem: wrote %d (procs %d), parsed %d", j.ID, j.Mem, j.Procs, g.Mem)
			}
		}
		if g.Mem > back.Mem {
			t.Fatalf("job %d mem %d > capacity %d after round trip", j.ID, g.Mem, back.Mem)
		}
	}
	if err := back.Validate(); err != nil {
		t.Fatalf("round-tripped trace invalid: %v", err)
	}
}
